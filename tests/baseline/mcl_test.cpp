#include "baseline/mcl.hpp"

#include <gtest/gtest.h>

#include "eval/partition_metrics.hpp"
#include "graph/generators.hpp"

namespace gpclust::baseline {
namespace {

TEST(Mcl, SeparatesTwoCliques) {
  graph::EdgeList e;
  for (VertexId i = 0; i < 8; ++i) {
    for (VertexId j = i + 1; j < 8; ++j) {
      e.add(i, j);
      e.add(i + 8, j + 8);
    }
  }
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  MclStats stats;
  const auto c = mcl_cluster(g, {}, &stats);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 2u);
  EXPECT_TRUE(stats.converged);
  const auto labels = c.labels();
  for (VertexId i = 1; i < 8; ++i) {
    EXPECT_EQ(labels[0], labels[i]);
    EXPECT_EQ(labels[8], labels[8 + i]);
  }
  EXPECT_NE(labels[0], labels[8]);
}

TEST(Mcl, SplitsBridgedCliques) {
  // Two 10-cliques joined by a single edge: MCL's inflation cuts the
  // bridge (single-linkage would not).
  graph::EdgeList e;
  for (VertexId i = 0; i < 10; ++i) {
    for (VertexId j = i + 1; j < 10; ++j) {
      e.add(i, j);
      e.add(i + 10, j + 10);
    }
  }
  e.add(0, 10);
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const auto c = mcl_cluster(g);
  EXPECT_EQ(c.num_clusters(), 2u);
}

TEST(Mcl, IsolatedVerticesAreSingletons) {
  graph::EdgeList e(6);
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const auto c = mcl_cluster(g);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 4u);  // triangle + three singletons
}

TEST(Mcl, HigherInflationGivesFinerClusters) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 6;
  cfg.min_family_size = 10;
  cfg.max_family_size = 20;
  cfg.intra_family_edge_prob = 0.5;
  cfg.intra_superfamily_edge_prob = 0.05;
  cfg.seed = 3;
  const auto pg = graph::generate_planted_families(cfg);

  MclParams coarse;
  coarse.inflation = 1.4;
  MclParams fine;
  fine.inflation = 4.0;
  const auto c_coarse = mcl_cluster(pg.graph, coarse);
  const auto c_fine = mcl_cluster(pg.graph, fine);
  EXPECT_LE(c_coarse.num_clusters(), c_fine.num_clusters());
}

TEST(Mcl, RecoversPlantedFamilies) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 8;
  cfg.min_family_size = 12;
  cfg.max_family_size = 25;
  cfg.intra_family_edge_prob = 0.8;
  cfg.intra_superfamily_edge_prob = 0.0;
  cfg.noise_edges_per_vertex = 0.0;
  cfg.seed = 9;
  const auto pg = graph::generate_planted_families(cfg);
  const auto c = mcl_cluster(pg.graph);
  const auto conf = eval::compare_partitions(
      eval::labels_with_singletons(c.filtered(2)), pg.family);
  EXPECT_GT(conf.ppv(), 0.95);
  EXPECT_GT(conf.sensitivity(), 0.8);
}

TEST(Mcl, Validation) {
  const auto g = graph::generate_erdos_renyi(10, 0.5, 1);
  MclParams params;
  params.inflation = 1.0;
  EXPECT_THROW(mcl_cluster(g, params), InvalidArgument);
  params = MclParams{};
  params.max_column_entries = 0;
  EXPECT_THROW(mcl_cluster(g, params), InvalidArgument);
}

TEST(Mcl, EmptyGraph) {
  const graph::CsrGraph g;
  EXPECT_EQ(mcl_cluster(g).num_clusters(), 0u);
}

TEST(Mcl, DeterministicAcrossRuns) {
  const auto g = graph::generate_erdos_renyi(100, 0.08, 17);
  auto a = mcl_cluster(g);
  auto b = mcl_cluster(g);
  a.normalize();
  b.normalize();
  EXPECT_EQ(a.digest(), b.digest());
}

}  // namespace
}  // namespace gpclust::baseline
