#include "baseline/gos_kneighbor.hpp"

#include <gtest/gtest.h>

#include "graph/connected_components.hpp"
#include "graph/generators.hpp"

namespace gpclust::baseline {
namespace {

graph::CsrGraph clique(std::size_t n, std::size_t extra_isolated = 0) {
  graph::EdgeList e(n + extra_isolated);
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) e.add(i, j);
  }
  return graph::CsrGraph::from_edge_list(std::move(e));
}

TEST(GosKNeighbor, CliqueWithEnoughSharedNeighborsClusters) {
  // In a 12-clique every adjacent pair shares 10 open + 2 closed = 12.
  const auto g = clique(12);
  GosKNeighborParams p;
  p.k = 10;
  const auto c = gos_kneighbor_cluster(g, p);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 1u);
}

TEST(GosKNeighbor, SmallCliqueFallsBelowK) {
  // In a 6-clique adjacent pairs share 4 open + 2 closed = 6 < 10.
  const auto g = clique(6);
  GosKNeighborParams p;
  p.k = 10;
  const auto c = gos_kneighbor_cluster(g, p);
  EXPECT_EQ(c.num_clusters(), 6u);  // all singletons
}

TEST(GosKNeighbor, OpenNeighborhoodVariant) {
  const auto g = clique(12);
  GosKNeighborParams p;
  p.k = 10;
  p.closed_neighborhood = false;  // adjacent pairs share exactly 10
  EXPECT_EQ(gos_kneighbor_cluster(g, p).num_clusters(), 1u);
  p.k = 11;
  EXPECT_EQ(gos_kneighbor_cluster(g, p).num_clusters(), 12u);
}

TEST(GosKNeighbor, ChainsLooselyBridgedCliques) {
  // Two 12-cliques sharing 11 bridge vertices... simpler: two cliques
  // joined by enough common members get chained into one cluster — the
  // fixed-k failure mode the paper criticizes.
  graph::EdgeList e;
  // Clique A: 0..11; clique B: 6..17 (overlap 6..11).
  for (VertexId i = 0; i < 12; ++i) {
    for (VertexId j = i + 1; j < 12; ++j) e.add(i, j);
  }
  for (VertexId i = 6; i < 18; ++i) {
    for (VertexId j = i + 1; j < 18; ++j) e.add(i, j);
  }
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  GosKNeighborParams p;
  p.k = 10;
  const auto c = gos_kneighbor_cluster(g, p);
  EXPECT_EQ(c.num_clusters(), 1u) << "overlapping cliques chain together";
}

TEST(GosKNeighbor, SingletonsReported) {
  const auto g = clique(12, 3);
  GosKNeighborParams p;
  p.k = 10;
  const auto c = gos_kneighbor_cluster(g, p);
  EXPECT_EQ(c.num_clusters(), 4u);  // clique + 3 singletons
  EXPECT_TRUE(c.is_partition());
}

TEST(GosKNeighbor, KOneWithClosedNeighborhoodIsSingleLinkage) {
  const auto g = graph::generate_erdos_renyi(100, 0.03, 5);
  GosKNeighborParams p;
  p.k = 1;  // any edge qualifies (closed neighborhood >= 2)
  const auto c = gos_kneighbor_cluster(g, p);
  const auto cc = graph::connected_components(g);
  EXPECT_EQ(c.num_clusters(), cc.num_components);
}

TEST(GosKNeighbor, Validation) {
  const auto g = clique(4);
  GosKNeighborParams p;
  p.k = 0;
  EXPECT_THROW(gos_kneighbor_cluster(g, p), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::baseline
