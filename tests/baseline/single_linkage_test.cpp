#include "baseline/single_linkage.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gpclust::baseline {
namespace {

TEST(SingleLinkage, ClustersAreConnectedComponents) {
  graph::EdgeList e(7);
  e.add(0, 1);
  e.add(1, 2);
  e.add(4, 5);
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const auto c = single_linkage_cluster(g);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 4u);  // {0,1,2}, {4,5}, {3}, {6}
  const auto labels = c.labels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[4]);
}

TEST(SingleLinkage, SingleEdgeChainsEverything) {
  // The known failure mode: one noise edge merges two families.
  graph::EdgeList e;
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) {
      e.add(i, j);
      e.add(i + 5, j + 5);
    }
  }
  e.add(0, 5);  // single bridge
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  EXPECT_EQ(single_linkage_cluster(g).num_clusters(), 1u);
}

TEST(SingleLinkage, EmptyGraph) {
  const graph::CsrGraph g;
  EXPECT_EQ(single_linkage_cluster(g).num_clusters(), 0u);
}

}  // namespace
}  // namespace gpclust::baseline
