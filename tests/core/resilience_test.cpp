// ResiliencePolicy behavior of the device pipeline under injected faults:
// adaptive batch backoff on OOM, bounded retries charged to the modeled
// timeline, graceful CPU degradation, and the invariant that every
// recovery path produces a partition bit-identical to SerialShingler with
// an empty arena afterwards.

#include <gtest/gtest.h>

#include "core/gpclust.hpp"
#include "core/serial_pclust.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"

namespace gpclust {
namespace {

graph::CsrGraph resilience_test_graph() {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 8;
  cfg.min_family_size = 5;
  cfg.max_family_size = 16;
  cfg.num_singletons = 6;
  cfg.seed = 314;
  return graph::generate_planted_families(cfg).graph;
}

core::ShinglingParams resilience_test_params() {
  core::ShinglingParams params;
  params.c1 = 8;
  params.c2 = 4;
  return params;
}

u64 serial_digest(const graph::CsrGraph& g,
                  const core::ShinglingParams& params) {
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();
  return serial.digest();
}

/// Runs GpClust under `plan` and returns the normalized digest, asserting
/// arena hygiene on the way out.
u64 run_with_plan(const graph::CsrGraph& g,
                  const core::ShinglingParams& params, fault::FaultPlan& plan,
                  fault::ResilienceMode mode, obs::Tracer& tracer,
                  core::GpClustReport* report = nullptr,
                  bool device_aggregation = false,
                  std::size_t max_batch_elements = 73) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
  core::GpClustOptions options;
  options.max_batch_elements = max_batch_elements;
  options.device_aggregation = device_aggregation;
  options.tracer = &tracer;
  options.fault_plan = &plan;
  options.resilience.mode = mode;
  auto result = core::GpClust(ctx, params, options).cluster(g, report);
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);
  EXPECT_EQ(ctx.fault_plan(), nullptr);  // scoped binding undone
  result.normalize();
  return result.digest();
}

TEST(Resilience, OffModePropagatesInjectedFaults) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();

  for (const char* spec : {"oom@alloc:2", "xfer_fail@h2d:1",
                           "kernel_fail@kernel:4", "xfer_fail@d2h:0"}) {
    auto plan = fault::FaultPlan::parse(spec);
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
    core::GpClustOptions options;
    options.max_batch_elements = 73;
    options.fault_plan = &plan;
    core::GpClust gp(ctx, params, options);
    EXPECT_THROW(gp.cluster(g), DeviceError) << spec;
    EXPECT_EQ(ctx.arena().used(), 0u) << spec;
    EXPECT_GE(plan.injected(), 1u) << spec;
  }
}

TEST(Resilience, InjectedOomHalvesBatchesAndStaysIdentical) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();
  const u64 expected = serial_digest(g, params);

  auto plan = fault::FaultPlan::parse("oom@alloc:2");
  obs::Tracer tracer;
  core::GpClustReport report;
  EXPECT_EQ(run_with_plan(g, params, plan, fault::ResilienceMode::Retry,
                          tracer, &report),
            expected);
  EXPECT_EQ(plan.injected(), 1u);
  // The OOM surfaced as a batch replan (the acceptance-criterion counter),
  // not as a retry or a fallback.
  EXPECT_GE(tracer.counter("batch_replans"), 1u);
  EXPECT_GE(report.pass1.num_batch_replans + report.pass2.num_batch_replans,
            1u);
  EXPECT_EQ(tracer.counter("cpu_fallbacks"), 0u);
  EXPECT_FALSE(report.pass1.cpu_fallback);
  EXPECT_FALSE(report.pass2.cpu_fallback);
}

TEST(Resilience, TransientFaultRetriesAndChargesModeledTime) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();
  const u64 expected = serial_digest(g, params);

  // Fault-free baseline for the modeled device time.
  obs::Tracer clean_tracer;
  auto clean_plan = fault::FaultPlan::parse("");
  core::GpClustReport clean_report;
  ASSERT_EQ(run_with_plan(g, params, clean_plan, fault::ResilienceMode::Off,
                          clean_tracer, &clean_report),
            expected);

  auto plan = fault::FaultPlan::parse("xfer_fail@h2d:1,kernel_fail@kernel:6");
  obs::Tracer tracer;
  core::GpClustReport report;
  EXPECT_EQ(run_with_plan(g, params, plan, fault::ResilienceMode::Retry,
                          tracer, &report),
            expected);
  EXPECT_EQ(plan.injected(), 2u);
  EXPECT_EQ(tracer.counter("retries"), 2u);
  EXPECT_EQ(report.pass1.num_retries + report.pass2.num_retries, 2u);
  EXPECT_EQ(tracer.counter("cpu_fallbacks"), 0u);

  // Retry backoff is charged to the modeled timeline and attributed to a
  // ".retry" phase span (EXPERIMENTS.md: retry cost is modeled device
  // time, never host time).
  EXPECT_GT(tracer.modeled_total("pass1.retry").value, 0.0);
  EXPECT_GT(report.gpu_seconds, clean_report.gpu_seconds);
  bool found_retry_span = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "pass1.retry.kernel") {
      EXPECT_EQ(e.domain, obs::Domain::DeviceModeled);
      found_retry_span = true;
    }
  }
  EXPECT_TRUE(found_retry_span);
}

TEST(Resilience, RetryModeThrowsTypedErrorWhenExhausted) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();

  // Persistent transfer faults outlast max_retries in Retry mode.
  auto plan = fault::FaultPlan::parse("xfer_fail@h2d:0-9999");
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
  core::GpClustOptions options;
  options.max_batch_elements = 73;
  options.fault_plan = &plan;
  options.resilience.mode = fault::ResilienceMode::Retry;
  core::GpClust gp(ctx, params, options);
  EXPECT_THROW(gp.cluster(g), TransferError);
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);
}

TEST(Resilience, FallbackSurvivesPersistentKernelFaults) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();
  const u64 expected = serial_digest(g, params);

  auto plan = fault::FaultPlan::parse("kernel_fail@kernel:0-999999");
  obs::Tracer tracer;
  core::GpClustReport report;
  EXPECT_EQ(run_with_plan(g, params, plan, fault::ResilienceMode::Fallback,
                          tracer, &report),
            expected);
  // Both passes degraded to the CPU (aggregation is CPU-side by default).
  EXPECT_GE(tracer.counter("cpu_fallbacks"), 2u);
  EXPECT_TRUE(report.pass1.cpu_fallback);
  EXPECT_TRUE(report.pass2.cpu_fallback);
  EXPECT_GT(tracer.counter("retries"), 0u);
}

TEST(Resilience, FallbackCoversDeviceAggregation) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();
  const u64 expected = serial_digest(g, params);

  auto plan = fault::FaultPlan::parse("kernel_fail@kernel:0-999999");
  obs::Tracer tracer;
  EXPECT_EQ(run_with_plan(g, params, plan, fault::ResilienceMode::Fallback,
                          tracer, nullptr, /*device_aggregation=*/true),
            expected);
  // Passes and both aggregations fell back.
  EXPECT_GE(tracer.counter("cpu_fallbacks"), 4u);
}

TEST(Resilience, MidStreamFaultAfterCommittedBatchesStaysIdentical) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();
  const u64 expected = serial_digest(g, params);

  // A late persistent kernel fault: several batches commit on the device,
  // then the rest of the pass must finish on the CPU. Split-list state in
  // flight at the failure point must survive into the fallback.
  auto plan = fault::FaultPlan::parse("kernel_fail@kernel:40-999999");
  obs::Tracer tracer;
  EXPECT_EQ(run_with_plan(g, params, plan, fault::ResilienceMode::Fallback,
                          tracer, nullptr, false, /*max_batch_elements=*/7),
            expected);
  EXPECT_GE(tracer.counter("cpu_fallbacks"), 1u);
  EXPECT_GT(tracer.counter("batches"), 0u);
}

TEST(Resilience, RealOomOnTinyArenaFallsBackToCpu) {
  const auto g = resilience_test_graph();
  const auto params = resilience_test_params();
  const u64 expected = serial_digest(g, params);

  // 32 bytes of device memory: even a one-element batch cannot fit, so
  // the pass hits genuine (not injected) OOM at the batch-size floor and
  // the whole input is processed on the CPU.
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(32));
  obs::Tracer tracer;
  core::GpClustOptions options;
  options.tracer = &tracer;
  options.resilience.mode = fault::ResilienceMode::Fallback;
  auto result = core::GpClust(ctx, params, options).cluster(g);
  result.normalize();
  EXPECT_EQ(result.digest(), expected);
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_GE(tracer.counter("cpu_fallbacks"), 2u);

  // The same configuration without resilience is a hard error.
  device::DeviceContext strict(device::DeviceSpec::small_test_device(32));
  core::GpClustOptions off;
  EXPECT_THROW(core::GpClust(strict, params, off).cluster(g), DeviceError);
  EXPECT_EQ(strict.arena().used(), 0u);
}

}  // namespace
}  // namespace gpclust
