#include "core/cluster_report.hpp"

#include <gtest/gtest.h>

namespace gpclust::core {
namespace {

// Helper: build a bipartite shingle graph from explicit lists.
BipartiteShingleGraph make_graph(std::vector<std::vector<u32>> lists) {
  BipartiteShingleGraph g;
  g.offsets.push_back(0);
  for (auto& l : lists) {
    g.members.insert(g.members.end(), l.begin(), l.end());
    g.offsets.push_back(g.members.size());
  }
  return g;
}

TEST(ReportDenseSubgraphs, PartitionUnionsComponentVertices) {
  // G_I: shingle 0 -> {0,1}, shingle 1 -> {1,2}, shingle 2 -> {5,6}.
  const auto gi = make_graph({{0, 1}, {1, 2}, {5, 6}});
  // G_II: one second-level shingle connecting S1 nodes 0 and 1; another
  // containing only node 2.
  const auto gii = make_graph({{0, 1}, {2}});
  const auto c = report_dense_subgraphs(gi, gii, 8, ReportMode::Partition);
  EXPECT_TRUE(c.is_partition());
  const auto labels = c.labels();
  // {0,1,2} unioned through the first component.
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  // {5,6} unioned through the second.
  EXPECT_EQ(labels[5], labels[6]);
  EXPECT_NE(labels[0], labels[5]);
  // 3,4,7 remain singletons.
  EXPECT_NE(labels[3], labels[4]);
  EXPECT_NE(labels[3], labels[0]);
}

TEST(ReportDenseSubgraphs, OverlappingReportsComponentsOnly) {
  const auto gi = make_graph({{0, 1}, {1, 2}, {5, 6}});
  const auto gii = make_graph({{0, 1}, {2}});
  const auto c = report_dense_subgraphs(gi, gii, 8, ReportMode::Overlapping);
  ASSERT_EQ(c.num_clusters(), 2u);
  // Clusters are deduplicated unions; singletons 3,4,7 are not reported.
  std::vector<std::vector<VertexId>> expect = {{0, 1, 2}, {5, 6}};
  auto clusters = c.clusters();
  std::sort(clusters.begin(), clusters.end());
  EXPECT_EQ(clusters, expect);
}

TEST(ReportDenseSubgraphs, OverlapPossibleInOverlappingMode) {
  // Vertex 1 participates in two different S1 shingles that end up in two
  // different G_II components.
  const auto gi = make_graph({{0, 1}, {1, 2}});
  const auto gii = make_graph({{0}, {1}});
  const auto c = report_dense_subgraphs(gi, gii, 3, ReportMode::Overlapping);
  ASSERT_EQ(c.num_clusters(), 2u);
  EXPECT_FALSE(c.is_partition());
}

TEST(ReportDenseSubgraphs, PartitionMergesThroughSharedVertex) {
  // Same setup as above but partition mode: union-find chains both
  // components through vertex 1 into one cluster.
  const auto gi = make_graph({{0, 1}, {1, 2}});
  const auto gii = make_graph({{0}, {1}});
  const auto c = report_dense_subgraphs(gi, gii, 3, ReportMode::Partition);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 1u);
}

TEST(ReportDenseSubgraphs, EmptyGiiLeavesAllSingletons) {
  const auto gi = make_graph({{0, 1}});
  const auto gii = make_graph({});
  const auto c = report_dense_subgraphs(gi, gii, 4, ReportMode::Partition);
  EXPECT_EQ(c.num_clusters(), 4u);
  const auto o = report_dense_subgraphs(gi, gii, 4, ReportMode::Overlapping);
  EXPECT_EQ(o.num_clusters(), 0u);
}

TEST(ReportDenseSubgraphs, SharedSecondLevelShingleMergesS1Nodes) {
  // A single G_II node listing three S1 shingles merges all their vertices.
  const auto gi = make_graph({{0}, {1}, {2}});
  const auto gii = make_graph({{0, 1, 2}});
  const auto c = report_dense_subgraphs(gi, gii, 3, ReportMode::Partition);
  EXPECT_EQ(c.num_clusters(), 1u);
}

TEST(ReportDenseSubgraphs, RejectsDanglingS1Reference) {
  const auto gi = make_graph({{0}});
  const auto gii = make_graph({{5}});
  EXPECT_THROW(report_dense_subgraphs(gi, gii, 2, ReportMode::Partition),
               InvalidArgument);
}

}  // namespace
}  // namespace gpclust::core
