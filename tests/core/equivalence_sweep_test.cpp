// Parameterized sweep of the central invariant (DESIGN.md #1): the serial
// pClust and the device gpClust pipelines produce bit-identical partitions
// for every parameter combination, graph shape, and reporting mode.

#include <gtest/gtest.h>

#include <tuple>

#include "core/gpclust.hpp"
#include "graph/generators.hpp"

namespace gpclust::core {
namespace {

using SweepParam = std::tuple<u32 /*s*/, u32 /*c1*/, int /*graph kind*/,
                              ReportMode>;

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

graph::CsrGraph make_graph(int kind) {
  switch (kind) {
    case 0:  // sparse random
      return graph::generate_erdos_renyi(250, 0.02, 101);
    case 1:  // dense random
      return graph::generate_erdos_renyi(120, 0.25, 102);
    case 2: {  // planted families with singletons
      graph::PlantedFamilyConfig cfg;
      cfg.num_families = 10;
      cfg.min_family_size = 6;
      cfg.max_family_size = 30;
      cfg.num_singletons = 20;
      cfg.seed = 103;
      return graph::generate_planted_families(cfg).graph;
    }
    default:  // heavy-tailed degrees
      return graph::generate_power_law(300, 8.0, 1.8, 104);
  }
}

TEST_P(EquivalenceSweep, SerialAndDeviceBitIdentical) {
  const auto [s, c1, kind, mode] = GetParam();
  const auto g = make_graph(kind);

  ShinglingParams params;
  params.s1 = params.s2 = s;
  params.c1 = c1;
  params.c2 = std::max<u32>(1, c1 / 2);
  params.seed = 555;
  params.mode = mode;

  auto serial = SerialShingler(params).cluster(g);

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
  GpClustOptions options;
  options.max_batch_elements = 97;  // prime-sized batches force odd splits
  auto device_result = GpClust(ctx, params, options).cluster(g);

  serial.normalize();
  device_result.normalize();
  EXPECT_EQ(serial.digest(), device_result.digest());
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, EquivalenceSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),     // s
                       ::testing::Values(5u, 40u),        // c1
                       ::testing::Values(0, 1, 2, 3),     // graph kind
                       ::testing::Values(ReportMode::Partition,
                                         ReportMode::Overlapping)));

}  // namespace
}  // namespace gpclust::core
