// Tests for the device-side shingle-graph aggregation extension
// (aggregate_tuples_device) and its GpClust integration.

#include <gtest/gtest.h>

#include "core/gpclust.hpp"
#include "core/serial_pclust.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace gpclust::core {
namespace {

ShingleTuples random_tuples(std::size_t n, u64 seed, u64 shingle_range = 200,
                            u32 owner_range = 50) {
  util::Xoshiro256 rng(seed);
  ShingleTuples t;
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.next_below(shingle_range),
             static_cast<u32>(rng.next_below(owner_range)));
  }
  return t;
}

void expect_same_graph(const BipartiteShingleGraph& a,
                       const BipartiteShingleGraph& b) {
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.members, b.members);
}

class DeviceAggregationTest : public ::testing::Test {
 protected:
  device::DeviceContext ctx_{device::DeviceSpec::small_test_device(8 << 20)};
};

TEST_F(DeviceAggregationTest, MatchesCpuAggregation) {
  auto cpu_tuples = random_tuples(5000, 1);
  auto dev_tuples = random_tuples(5000, 1);
  const auto cpu = aggregate_tuples(std::move(cpu_tuples));
  const auto dev = aggregate_tuples_device(ctx_, std::move(dev_tuples));
  expect_same_graph(cpu, dev);
}

TEST_F(DeviceAggregationTest, SmallBatchesForceMultiChunkMerge) {
  for (std::size_t batch : {1u, 7u, 100u, 1024u}) {
    auto cpu_tuples = random_tuples(3000, 2);
    auto dev_tuples = random_tuples(3000, 2);
    const auto cpu = aggregate_tuples(std::move(cpu_tuples));
    const auto dev =
        aggregate_tuples_device(ctx_, std::move(dev_tuples), batch);
    expect_same_graph(cpu, dev);
  }
}

TEST_F(DeviceAggregationTest, EmptyTuples) {
  const auto g = aggregate_tuples_device(ctx_, ShingleTuples{});
  EXPECT_EQ(g.num_left(), 0u);
}

TEST_F(DeviceAggregationTest, ChargesDeviceTime) {
  ctx_.reset_timeline();
  auto tuples = random_tuples(10000, 3);
  aggregate_tuples_device(ctx_, std::move(tuples));
  EXPECT_GT(ctx_.gpu_seconds(), 0.0);
  EXPECT_GT(ctx_.h2d_seconds(), 0.0);
  EXPECT_GT(ctx_.d2h_seconds(), 0.0);
  EXPECT_EQ(ctx_.arena().used(), 0u);
}

TEST_F(DeviceAggregationTest, GpClustWithDeviceAggregationMatchesSerial) {
  const auto g = graph::generate_erdos_renyi(250, 0.06, 77);
  ShinglingParams params;
  params.c1 = 20;
  params.c2 = 10;
  params.seed = 9;

  auto serial = SerialShingler(params).cluster(g);
  serial.normalize();

  GpClustOptions options;
  options.device_aggregation = true;
  GpClustReport report;
  auto accelerated = GpClust(ctx_, params, options).cluster(g, &report);
  accelerated.normalize();

  EXPECT_EQ(serial.digest(), accelerated.digest());
  EXPECT_GT(report.gpu_seconds, 0.0);
}

TEST_F(DeviceAggregationTest, DeviceAggregationShiftsTimeFromCpuToGpu) {
  const auto g = graph::generate_erdos_renyi(400, 0.1, 5);
  ShinglingParams params;
  params.c1 = 30;
  params.c2 = 15;

  GpClustReport cpu_report, dev_report;
  {
    GpClust gp(ctx_, params, {});
    gp.cluster(g, &cpu_report);
  }
  {
    GpClustOptions options;
    options.device_aggregation = true;
    GpClust gp(ctx_, params, options);
    gp.cluster(g, &dev_report);
  }
  EXPECT_GT(dev_report.gpu_seconds, cpu_report.gpu_seconds);
  EXPECT_GT(dev_report.h2d_seconds, cpu_report.h2d_seconds);
}

}  // namespace
}  // namespace gpclust::core
