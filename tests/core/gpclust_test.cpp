#include "core/gpclust.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace gpclust::core {
namespace {

ShinglingParams test_params() {
  ShinglingParams p;
  p.s1 = 2;
  p.c1 = 25;
  p.s2 = 2;
  p.c2 = 12;
  p.seed = 777;
  return p;
}

u64 serial_digest(const graph::CsrGraph& g, const ShinglingParams& p) {
  auto c = SerialShingler(p).cluster(g);
  c.normalize();
  return c.digest();
}

class GpClustTest : public ::testing::Test {
 protected:
  device::DeviceContext ctx_{device::DeviceSpec::small_test_device(32 << 20)};
};

TEST_F(GpClustTest, MatchesSerialOnRandomGraph) {
  const auto g = graph::generate_erdos_renyi(400, 0.04, 31);
  GpClust gp(ctx_, test_params());
  auto c = gp.cluster(g);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, test_params()));
}

TEST_F(GpClustTest, MatchesSerialOnPlantedFamilies) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 15;
  cfg.min_family_size = 8;
  cfg.max_family_size = 40;
  cfg.seed = 6;
  cfg.num_singletons = 25;
  const auto pg = graph::generate_planted_families(cfg);
  GpClust gp(ctx_, test_params());
  auto c = gp.cluster(pg.graph);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(pg.graph, test_params()));
  EXPECT_TRUE(c.is_partition());
}

TEST_F(GpClustTest, BatchSizeDoesNotChangeResult) {
  // Invariant 4 of DESIGN.md: batching (including splits) is transparent.
  const auto g = graph::generate_erdos_renyi(200, 0.08, 12);
  const u64 reference = serial_digest(g, test_params());
  for (std::size_t batch : {7u, 33u, 100u, 1000u, 100000u}) {
    GpClustOptions opt;
    opt.max_batch_elements = batch;
    GpClust gp(ctx_, test_params(), opt);
    auto c = gp.cluster(g);
    c.normalize();
    EXPECT_EQ(c.digest(), reference) << "batch size " << batch;
  }
}

TEST_F(GpClustTest, TinyBatchesForceSplitsAndStillMatch) {
  // Batch capacity below the max degree guarantees split adjacency lists.
  const auto g = graph::generate_erdos_renyi(120, 0.3, 3);
  GpClustOptions opt;
  opt.max_batch_elements = 5;
  GpClust gp(ctx_, test_params(), opt);
  GpClustReport report;
  auto c = gp.cluster(g, &report);
  EXPECT_GT(report.pass1.num_split_lists, 0u);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, test_params()));
}

TEST_F(GpClustTest, AsyncProducesIdenticalClustersWithSmallerMakespan) {
  const auto g = graph::generate_erdos_renyi(300, 0.1, 9);

  GpClustOptions sync_opt;
  GpClust sync_gp(ctx_, test_params(), sync_opt);
  GpClustReport sync_report;
  auto sync_c = sync_gp.cluster(g, &sync_report);
  sync_c.normalize();

  GpClustOptions async_opt;
  async_opt.pipeline.num_streams = 2;  // single-lane transfer overlap
  GpClust async_gp(ctx_, test_params(), async_opt);
  GpClustReport async_report;
  auto async_c = async_gp.cluster(g, &async_report);
  async_c.normalize();

  EXPECT_EQ(sync_c.digest(), async_c.digest());
  // Same work, overlapped: busy totals equal, makespan strictly smaller.
  EXPECT_NEAR(sync_report.gpu_seconds, async_report.gpu_seconds, 1e-9);
  EXPECT_NEAR(sync_report.d2h_seconds, async_report.d2h_seconds, 1e-9);
  EXPECT_LT(async_report.device_makespan, sync_report.device_makespan);
  // Sync mode: one stream, makespan == sum of components.
  EXPECT_NEAR(sync_report.device_makespan,
              sync_report.gpu_seconds + sync_report.h2d_seconds +
                  sync_report.d2h_seconds,
              1e-9);
}

TEST_F(GpClustTest, ReportBreakdownIsPopulated) {
  const auto g = graph::generate_erdos_renyi(150, 0.1, 2);
  GpClust gp(ctx_, test_params());
  GpClustReport report;
  gp.cluster(g, &report);
  EXPECT_GT(report.cpu_seconds, 0.0);
  EXPECT_GT(report.gpu_seconds, 0.0);
  EXPECT_GT(report.h2d_seconds, 0.0);
  EXPECT_GT(report.d2h_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.disk_seconds, 0.0);
  EXPECT_GT(report.pass1.num_batches, 0u);
  EXPECT_GT(report.pass2.num_batches, 0u);
  EXPECT_GT(report.pass1.num_tuples, 0u);
  EXPECT_GT(report.total_seconds(), report.cpu_seconds);
}

TEST_F(GpClustTest, DeviceMemoryFullyReleasedAfterRun) {
  const auto g = graph::generate_erdos_renyi(200, 0.05, 7);
  GpClust gp(ctx_, test_params());
  gp.cluster(g);
  EXPECT_EQ(ctx_.arena().used(), 0u);
  EXPECT_EQ(ctx_.arena().num_allocations(), 0u);
  EXPECT_GT(ctx_.arena().peak(), 0u);
}

TEST_F(GpClustTest, GraphLargerThanDeviceMemoryStillClusters) {
  // The whole point of batching: a graph whose adjacency data exceeds
  // device memory is processed batch by batch.
  device::DeviceContext tiny(device::DeviceSpec::small_test_device(1 << 12));
  const auto g = graph::generate_erdos_renyi(300, 0.2, 15);
  ASSERT_GT(g.num_adjacency_entries() * sizeof(VertexId),
            tiny.arena().capacity());
  GpClust gp(tiny, test_params());
  GpClustReport report;
  auto c = gp.cluster(g, &report);
  EXPECT_GT(report.pass1.num_batches, 1u);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, test_params()));
}

TEST_F(GpClustTest, EmptyGraph) {
  const graph::CsrGraph g;
  GpClust gp(ctx_, test_params());
  const auto c = gp.cluster(g);
  EXPECT_EQ(c.num_clusters(), 0u);
}

TEST_F(GpClustTest, ClusterFileMeasuresDiskTime) {
  const auto g = graph::generate_erdos_renyi(100, 0.1, 4);
  const auto path =
      (std::filesystem::temp_directory_path() / "gpclust_disk_test.bin")
          .string();
  graph::write_csr_binary(g, path);
  GpClust gp(ctx_, test_params());
  GpClustReport report;
  auto c = gp.cluster_file(path, &report);
  EXPECT_GT(report.disk_seconds, 0.0);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, test_params()));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gpclust::core
