#include "core/batching.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "util/rng.hpp"

namespace gpclust::core {
namespace {

TEST(PlanBatches, SingleBatchWhenEverythingFits) {
  // Lists of length 3, 2, 4.
  const std::vector<u64> offsets = {0, 3, 5, 9};
  const auto plan = plan_batches(offsets, 2, 100);
  ASSERT_EQ(plan.batches.size(), 1u);
  const auto& b = plan.batches[0];
  EXPECT_EQ(b.num_segments(), 3u);
  EXPECT_EQ(b.num_elements(), 9u);
  EXPECT_FALSE(b.has_split());
  EXPECT_EQ(plan.num_split_lists(), 0u);
}

TEST(PlanBatches, SkipsListsShorterThanS) {
  const std::vector<u64> offsets = {0, 1, 4, 5, 8};  // lengths 1,3,1,3
  const auto plan = plan_batches(offsets, 2, 100);
  ASSERT_EQ(plan.batches.size(), 1u);
  const auto& b = plan.batches[0];
  ASSERT_EQ(b.num_segments(), 2u);
  EXPECT_EQ(b.seg_list_ids[0], 1u);
  EXPECT_EQ(b.seg_list_ids[1], 3u);
  EXPECT_EQ(b.num_elements(), 6u);
}

TEST(PlanBatches, SplitsLongListAcrossBatches) {
  const std::vector<u64> offsets = {0, 10};  // one list of length 10
  const auto plan = plan_batches(offsets, 2, 4);
  ASSERT_EQ(plan.batches.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(plan.num_split_lists(), 1u);
  EXPECT_TRUE(plan.batches[0].has_split());
  EXPECT_EQ(plan.batches[0].seg_starts_list[0], 1);
  EXPECT_EQ(plan.batches[0].seg_ends_list[0], 0);
  EXPECT_EQ(plan.batches[1].seg_starts_list[0], 0);
  EXPECT_EQ(plan.batches[1].seg_ends_list[0], 0);
  EXPECT_EQ(plan.batches[2].seg_starts_list[0], 0);
  EXPECT_EQ(plan.batches[2].seg_ends_list[0], 1);
  EXPECT_EQ(plan.total_elements(), 10u);
}

TEST(PlanBatches, PacksMultipleListsPerBatch) {
  const std::vector<u64> offsets = {0, 2, 4, 6, 8};
  const auto plan = plan_batches(offsets, 2, 4);
  ASSERT_EQ(plan.batches.size(), 2u);
  EXPECT_EQ(plan.batches[0].num_segments(), 2u);
  EXPECT_EQ(plan.batches[1].num_segments(), 2u);
  EXPECT_EQ(plan.num_split_lists(), 0u);
}

TEST(PlanBatches, BoundaryStraddlingListIsSplit) {
  const std::vector<u64> offsets = {0, 3, 6};  // two lists of 3, capacity 4
  const auto plan = plan_batches(offsets, 2, 4);
  ASSERT_EQ(plan.batches.size(), 2u);
  // Batch 0: list 0 complete (3) + first element of list 1.
  EXPECT_EQ(plan.batches[0].num_segments(), 2u);
  EXPECT_EQ(plan.batches[0].seg_ends_list[1], 0);
  EXPECT_EQ(plan.batches[1].seg_starts_list[0], 0);
  EXPECT_EQ(plan.num_split_lists(), 1u);
}

TEST(PlanBatches, EveryElementCoveredExactlyOnce) {
  util::Xoshiro256 rng(3);
  std::vector<u64> offsets = {0};
  for (int i = 0; i < 100; ++i) {
    offsets.push_back(offsets.back() + rng.next_below(30));
  }
  const u32 s = 2;
  const auto plan = plan_batches(offsets, s, 17);

  std::vector<int> covered(offsets.back(), 0);
  for (const auto& b : plan.batches) {
    for (std::size_t seg = 0; seg < b.num_segments(); ++seg) {
      const u64 len = b.seg_offsets[seg + 1] - b.seg_offsets[seg];
      EXPECT_LE(b.num_elements(), 17u);
      for (u64 k = 0; k < len; ++k) ++covered[b.seg_global_begin[seg] + k];
    }
  }
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    const u64 len = offsets[i + 1] - offsets[i];
    const int expected = len >= s ? 1 : 0;
    for (u64 pos = offsets[i]; pos < offsets[i + 1]; ++pos) {
      EXPECT_EQ(covered[pos], expected) << "position " << pos;
    }
  }
}

TEST(PlanBatches, StageGathersCorrectValues) {
  const std::vector<u64> offsets = {0, 1, 4, 7};  // skip list 0 (len 1 < 2)
  const std::vector<u32> members = {9, 10, 11, 12, 20, 21, 22};
  const auto plan = plan_batches(offsets, 2, 100);
  std::vector<u32> staging;
  plan.batches[0].stage(members, staging);
  EXPECT_EQ(staging, (std::vector<u32>{10, 11, 12, 20, 21, 22}));
}

TEST(PlanBatches, EmptyInput) {
  const std::vector<u64> offsets = {0};
  const auto plan = plan_batches(offsets, 2, 10);
  EXPECT_TRUE(plan.batches.empty());
}

TEST(PlanBatches, AllListsTooShort) {
  const std::vector<u64> offsets = {0, 1, 2, 3};
  const auto plan = plan_batches(offsets, 5, 10);
  EXPECT_TRUE(plan.batches.empty());
}

TEST(PlanBatches, Validation) {
  EXPECT_THROW(plan_batches(std::span<const u64>{}, 2, 10), InvalidArgument);
  const std::vector<u64> offsets = {0, 2};
  EXPECT_THROW(plan_batches(offsets, 2, 0), InvalidArgument);
}

TEST(ListPieces, OnePiecePerLongEnoughList) {
  const std::vector<u64> offsets = {0, 1, 4, 4, 9};  // lens 1, 3, 0, 5
  const auto pieces = list_pieces(offsets, 2);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].list_id, 1u);
  EXPECT_EQ(pieces[0].global_begin, 1u);
  EXPECT_EQ(pieces[0].length, 3u);
  EXPECT_TRUE(pieces[0].starts_list && pieces[0].ends_list);
  EXPECT_EQ(pieces[1].list_id, 3u);
  EXPECT_EQ(pieces[1].length, 5u);
}

TEST(PlanBatchesFromPieces, MatchesDirectPlanOnRandomInputs) {
  util::Xoshiro256 rng(20130613);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<u64> offsets = {0};
    const std::size_t lists = 1 + rng.next_below(40);
    for (std::size_t i = 0; i < lists; ++i) {
      offsets.push_back(offsets.back() + rng.next_below(25));
    }
    const u32 s = 1 + static_cast<u32>(rng.next_below(4));
    const std::size_t cap = 1 + rng.next_below(30);

    const auto direct = plan_batches(offsets, s, cap);
    const auto via_pieces = plan_batches_from_pieces(list_pieces(offsets, s), cap);
    ASSERT_EQ(direct.batches.size(), via_pieces.batches.size());
    for (std::size_t b = 0; b < direct.batches.size(); ++b) {
      EXPECT_EQ(direct.batches[b].seg_offsets, via_pieces.batches[b].seg_offsets);
      EXPECT_EQ(direct.batches[b].seg_list_ids, via_pieces.batches[b].seg_list_ids);
      EXPECT_EQ(direct.batches[b].seg_global_begin,
                via_pieces.batches[b].seg_global_begin);
      EXPECT_EQ(direct.batches[b].seg_starts_list,
                via_pieces.batches[b].seg_starts_list);
      EXPECT_EQ(direct.batches[b].seg_ends_list,
                via_pieces.batches[b].seg_ends_list);
    }
  }
}

TEST(RemainingPieces, SkipsConsumedAndTrimsPartialPiece) {
  const std::vector<u64> offsets = {0, 4, 10};  // lens 4, 6
  const auto pieces = list_pieces(offsets, 2);

  // Nothing consumed: unchanged.
  auto rest = remaining_pieces(pieces, 0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_TRUE(rest[0].starts_list);

  // First list fully consumed, second untouched.
  rest = remaining_pieces(pieces, 4);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].list_id, 1u);
  EXPECT_TRUE(rest[0].starts_list);

  // Mid-second-list: the tail no longer starts its list (its head minima
  // are already merged into the pending accumulator) but still ends it.
  rest = remaining_pieces(pieces, 7);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].list_id, 1u);
  EXPECT_EQ(rest[0].global_begin, 7u);
  EXPECT_EQ(rest[0].length, 3u);
  EXPECT_FALSE(rest[0].starts_list);
  EXPECT_TRUE(rest[0].ends_list);

  // Everything consumed.
  EXPECT_TRUE(remaining_pieces(pieces, 10).empty());
  // Consuming more than exists is a caller bug.
  EXPECT_THROW(remaining_pieces(pieces, 11), InvalidArgument);
}

TEST(RemainingPieces, ReplanAfterPartialConsumptionCoversTheRest) {
  // The resilient pass pattern: plan at one size, commit a batch prefix,
  // replan the remainder at a smaller size. The new plan must cover
  // exactly the unconsumed elements with consistent start/end flags.
  const std::vector<u64> offsets = {0, 5, 8, 20, 22};
  const auto pieces = list_pieces(offsets, 2);
  const auto plan = plan_batches_from_pieces(pieces, 7);
  ASSERT_GE(plan.batches.size(), 2u);

  const std::size_t consumed = plan.batches[0].num_elements();
  const auto rest = remaining_pieces(pieces, consumed);
  const auto replan = plan_batches_from_pieces(rest, 3);

  std::size_t rest_elems = 0;
  for (const auto& p : rest) rest_elems += p.length;
  EXPECT_EQ(rest_elems, plan.total_elements() - consumed);
  EXPECT_EQ(replan.total_elements(), rest_elems);

  // Each list still has exactly one starting and one ending segment over
  // the union of committed and replanned batches.
  std::map<u32, int> starts, ends;
  for (std::size_t i = 0; i < plan.batches[0].num_segments(); ++i) {
    starts[plan.batches[0].seg_list_ids[i]] +=
        plan.batches[0].seg_starts_list[i];
    ends[plan.batches[0].seg_list_ids[i]] += plan.batches[0].seg_ends_list[i];
  }
  for (const auto& b : replan.batches) {
    for (std::size_t i = 0; i < b.num_segments(); ++i) {
      starts[b.seg_list_ids[i]] += b.seg_starts_list[i];
      ends[b.seg_list_ids[i]] += b.seg_ends_list[i];
    }
  }
  for (const auto& [list, count] : starts) {
    EXPECT_EQ(count, 1) << "list " << list;
  }
  for (const auto& [list, count] : ends) {
    EXPECT_EQ(count, 1) << "list " << list;
  }
}

}  // namespace
}  // namespace gpclust::core
