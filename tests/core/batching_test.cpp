#include "core/batching.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace gpclust::core {
namespace {

TEST(PlanBatches, SingleBatchWhenEverythingFits) {
  // Lists of length 3, 2, 4.
  const std::vector<u64> offsets = {0, 3, 5, 9};
  const auto plan = plan_batches(offsets, 2, 100);
  ASSERT_EQ(plan.batches.size(), 1u);
  const auto& b = plan.batches[0];
  EXPECT_EQ(b.num_segments(), 3u);
  EXPECT_EQ(b.num_elements(), 9u);
  EXPECT_FALSE(b.has_split());
  EXPECT_EQ(plan.num_split_lists(), 0u);
}

TEST(PlanBatches, SkipsListsShorterThanS) {
  const std::vector<u64> offsets = {0, 1, 4, 5, 8};  // lengths 1,3,1,3
  const auto plan = plan_batches(offsets, 2, 100);
  ASSERT_EQ(plan.batches.size(), 1u);
  const auto& b = plan.batches[0];
  ASSERT_EQ(b.num_segments(), 2u);
  EXPECT_EQ(b.seg_list_ids[0], 1u);
  EXPECT_EQ(b.seg_list_ids[1], 3u);
  EXPECT_EQ(b.num_elements(), 6u);
}

TEST(PlanBatches, SplitsLongListAcrossBatches) {
  const std::vector<u64> offsets = {0, 10};  // one list of length 10
  const auto plan = plan_batches(offsets, 2, 4);
  ASSERT_EQ(plan.batches.size(), 3u);  // 4 + 4 + 2
  EXPECT_EQ(plan.num_split_lists(), 1u);
  EXPECT_TRUE(plan.batches[0].has_split());
  EXPECT_EQ(plan.batches[0].seg_starts_list[0], 1);
  EXPECT_EQ(plan.batches[0].seg_ends_list[0], 0);
  EXPECT_EQ(plan.batches[1].seg_starts_list[0], 0);
  EXPECT_EQ(plan.batches[1].seg_ends_list[0], 0);
  EXPECT_EQ(plan.batches[2].seg_starts_list[0], 0);
  EXPECT_EQ(plan.batches[2].seg_ends_list[0], 1);
  EXPECT_EQ(plan.total_elements(), 10u);
}

TEST(PlanBatches, PacksMultipleListsPerBatch) {
  const std::vector<u64> offsets = {0, 2, 4, 6, 8};
  const auto plan = plan_batches(offsets, 2, 4);
  ASSERT_EQ(plan.batches.size(), 2u);
  EXPECT_EQ(plan.batches[0].num_segments(), 2u);
  EXPECT_EQ(plan.batches[1].num_segments(), 2u);
  EXPECT_EQ(plan.num_split_lists(), 0u);
}

TEST(PlanBatches, BoundaryStraddlingListIsSplit) {
  const std::vector<u64> offsets = {0, 3, 6};  // two lists of 3, capacity 4
  const auto plan = plan_batches(offsets, 2, 4);
  ASSERT_EQ(plan.batches.size(), 2u);
  // Batch 0: list 0 complete (3) + first element of list 1.
  EXPECT_EQ(plan.batches[0].num_segments(), 2u);
  EXPECT_EQ(plan.batches[0].seg_ends_list[1], 0);
  EXPECT_EQ(plan.batches[1].seg_starts_list[0], 0);
  EXPECT_EQ(plan.num_split_lists(), 1u);
}

TEST(PlanBatches, EveryElementCoveredExactlyOnce) {
  util::Xoshiro256 rng(3);
  std::vector<u64> offsets = {0};
  for (int i = 0; i < 100; ++i) {
    offsets.push_back(offsets.back() + rng.next_below(30));
  }
  const u32 s = 2;
  const auto plan = plan_batches(offsets, s, 17);

  std::vector<int> covered(offsets.back(), 0);
  for (const auto& b : plan.batches) {
    for (std::size_t seg = 0; seg < b.num_segments(); ++seg) {
      const u64 len = b.seg_offsets[seg + 1] - b.seg_offsets[seg];
      EXPECT_LE(b.num_elements(), 17u);
      for (u64 k = 0; k < len; ++k) ++covered[b.seg_global_begin[seg] + k];
    }
  }
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    const u64 len = offsets[i + 1] - offsets[i];
    const int expected = len >= s ? 1 : 0;
    for (u64 pos = offsets[i]; pos < offsets[i + 1]; ++pos) {
      EXPECT_EQ(covered[pos], expected) << "position " << pos;
    }
  }
}

TEST(PlanBatches, StageGathersCorrectValues) {
  const std::vector<u64> offsets = {0, 1, 4, 7};  // skip list 0 (len 1 < 2)
  const std::vector<u32> members = {9, 10, 11, 12, 20, 21, 22};
  const auto plan = plan_batches(offsets, 2, 100);
  std::vector<u32> staging;
  plan.batches[0].stage(members, staging);
  EXPECT_EQ(staging, (std::vector<u32>{10, 11, 12, 20, 21, 22}));
}

TEST(PlanBatches, EmptyInput) {
  const std::vector<u64> offsets = {0};
  const auto plan = plan_batches(offsets, 2, 10);
  EXPECT_TRUE(plan.batches.empty());
}

TEST(PlanBatches, AllListsTooShort) {
  const std::vector<u64> offsets = {0, 1, 2, 3};
  const auto plan = plan_batches(offsets, 5, 10);
  EXPECT_TRUE(plan.batches.empty());
}

TEST(PlanBatches, Validation) {
  EXPECT_THROW(plan_batches(std::span<const u64>{}, 2, 10), InvalidArgument);
  const std::vector<u64> offsets = {0, 2};
  EXPECT_THROW(plan_batches(offsets, 2, 0), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::core
