#include "core/shingle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace gpclust::core {
namespace {

const AffineHash kIdentity{.a = 1, .b = 0, .p = util::kMersenne61};

TEST(MinSImages, SelectsSmallestImagesAscending) {
  const std::vector<VertexId> gamma = {9, 3, 7, 1, 5};
  std::vector<u64> out(3);
  min_s_images(gamma, kIdentity, 3, out);
  EXPECT_EQ(out, (std::vector<u64>{1, 3, 5}));
}

TEST(MinSImages, PadsWhenListShorterThanS) {
  const std::vector<VertexId> gamma = {4, 2};
  std::vector<u64> out(4);
  min_s_images(gamma, kIdentity, 4, out);
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[1], 4u);
  EXPECT_EQ(out[2], kNoValue);
  EXPECT_EQ(out[3], kNoValue);
}

TEST(MinSImages, EmptyListAllPadding) {
  std::vector<u64> out(2);
  min_s_images({}, kIdentity, 2, out);
  EXPECT_EQ(out[0], kNoValue);
  EXPECT_EQ(out[1], kNoValue);
}

TEST(MinSImages, MatchesFullSortReference) {
  util::Xoshiro256 rng(5);
  const AffineHash h{.a = 987654321, .b = 123456789, .p = util::kMersenne61};
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<VertexId> gamma(1 + rng.next_below(100));
    for (auto& v : gamma) v = static_cast<VertexId>(rng.next_below(1 << 20));
    std::sort(gamma.begin(), gamma.end());
    gamma.erase(std::unique(gamma.begin(), gamma.end()), gamma.end());

    const u32 s = 1 + static_cast<u32>(rng.next_below(8));
    std::vector<u64> fast(s);
    min_s_images(gamma, h, s, fast);

    std::vector<u64> reference;
    for (VertexId v : gamma) reference.push_back(h(v));
    std::sort(reference.begin(), reference.end());
    reference.resize(s, kNoValue);
    EXPECT_EQ(fast, reference);
  }
}

TEST(MinSImages, OrderOfInputIrrelevant) {
  std::vector<VertexId> gamma = {10, 20, 30, 40, 50};
  std::vector<u64> a(2), b(2);
  const AffineHash h{.a = 123457, .b = 991, .p = util::kMersenne61};
  min_s_images(gamma, h, 2, a);
  std::reverse(gamma.begin(), gamma.end());
  min_s_images(gamma, h, 2, b);
  EXPECT_EQ(a, b);
}

TEST(MinSImagesHeap, MatchesInsertionSortVariant) {
  util::Xoshiro256 rng(7);
  const AffineHash h{.a = 1664525, .b = 1013904223, .p = util::kMersenne61};
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<VertexId> gamma(rng.next_below(120));
    for (auto& v : gamma) v = static_cast<VertexId>(rng.next_below(1 << 24));
    const u32 s = 1 + static_cast<u32>(rng.next_below(10));
    std::vector<u64> insertion(s), heap(s);
    min_s_images(gamma, h, s, insertion);
    min_s_images_heap(gamma, h, s, heap);
    EXPECT_EQ(insertion, heap);
  }
}

TEST(MergeMinima, MergesTwoPartials) {
  std::vector<u64> a = {1, 5, 9};
  const std::vector<u64> b = {2, 3, 10};
  merge_minima(a, b);
  EXPECT_EQ(a, (std::vector<u64>{1, 2, 3}));
}

TEST(MergeMinima, HandlesPadding) {
  std::vector<u64> a = {4, kNoValue};
  const std::vector<u64> b = {7, kNoValue};
  merge_minima(a, b);
  EXPECT_EQ(a, (std::vector<u64>{4, 7}));
}

TEST(MergeMinima, BothEmptyStaysEmpty) {
  std::vector<u64> a = {kNoValue, kNoValue};
  const std::vector<u64> b = {kNoValue, kNoValue};
  merge_minima(a, b);
  EXPECT_EQ(a[0], kNoValue);
  EXPECT_EQ(a[1], kNoValue);
}

TEST(MergeMinima, EquivalentToSingleShotOverUnion) {
  // Splitting a list into two pieces and merging their s-minima must give
  // the same result as computing the s-minima of the whole list — the
  // invariant the batch-split CPU merge relies on.
  util::Xoshiro256 rng(13);
  const AffineHash h{.a = 22801763489ULL, .b = 7, .p = util::kMersenne61};
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<VertexId> gamma(2 + rng.next_below(60));
    for (auto& v : gamma) v = static_cast<VertexId>(rng.next_below(1 << 22));
    const u32 s = 1 + static_cast<u32>(rng.next_below(6));
    const std::size_t cut = rng.next_below(gamma.size() + 1);

    std::vector<u64> whole(s), left(s), right(s);
    min_s_images(gamma, h, s, whole);
    min_s_images({gamma.data(), cut}, h, s, left);
    min_s_images({gamma.data() + cut, gamma.size() - cut}, h, s, right);
    merge_minima(left, right);
    EXPECT_EQ(left, whole);
  }
}

TEST(MergeMinima, SizeMismatchThrows) {
  std::vector<u64> a = {1, 2};
  const std::vector<u64> b = {1, 2, 3};
  EXPECT_THROW(merge_minima(a, b), InvalidArgument);
}

TEST(HashShingle, SameMinimaSameTrialSameId) {
  const std::vector<u64> m = {10, 20};
  EXPECT_EQ(hash_shingle(3, m), hash_shingle(3, m));
}

TEST(HashShingle, TrialsDoNotMix) {
  // "This [sorting] is done once for each random trial (so that shingles
  // from different trials do not get mixed)."
  const std::vector<u64> m = {10, 20};
  EXPECT_NE(hash_shingle(0, m), hash_shingle(1, m));
}

TEST(HashShingle, DifferentMinimaDifferentIds) {
  EXPECT_NE(hash_shingle(0, std::vector<u64>{10, 20}),
            hash_shingle(0, std::vector<u64>{10, 21}));
  EXPECT_NE(hash_shingle(0, std::vector<u64>{10, 20}),
            hash_shingle(0, std::vector<u64>{20, 10}));
}

TEST(HashShingle, IncompleteMinimaYieldNoShingle) {
  EXPECT_EQ(hash_shingle(0, std::vector<u64>{10, kNoValue}), kNoValue);
  EXPECT_EQ(hash_shingle(5, std::vector<u64>{kNoValue}), kNoValue);
}

}  // namespace
}  // namespace gpclust::core
