#include "core/clustering.hpp"

#include <gtest/gtest.h>

namespace gpclust::core {
namespace {

TEST(Clustering, BasicAccessors) {
  Clustering c({{0, 1}, {2}, {3, 4, 5}}, 6);
  EXPECT_EQ(c.num_clusters(), 3u);
  EXPECT_EQ(c.num_vertices(), 6u);
  EXPECT_EQ(c.total_members(), 6u);
  EXPECT_EQ(c.cluster(2).size(), 3u);
}

TEST(Clustering, RejectsOutOfRangeMember) {
  EXPECT_THROW(Clustering({{0, 7}}, 5), InvalidArgument);
}

TEST(Clustering, FilteredKeepsLargeClusters) {
  Clustering c({{0, 1, 2}, {3}, {4, 5}}, 6);
  const auto f = c.filtered(2);
  EXPECT_EQ(f.num_clusters(), 2u);
  EXPECT_EQ(f.total_members(), 5u);
  EXPECT_EQ(f.num_vertices(), 6u);
}

TEST(Clustering, IsPartitionDetectsOverlapAndGaps) {
  EXPECT_TRUE(Clustering({{0, 1}, {2}}, 3).is_partition());
  EXPECT_FALSE(Clustering({{0, 1}, {1, 2}}, 3).is_partition());  // overlap
  EXPECT_FALSE(Clustering({{0, 1}}, 3).is_partition());          // gap
}

TEST(Clustering, LabelsRoundTrip) {
  Clustering c({{2, 0}, {1, 3}}, 4);
  const auto labels = c.labels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[1], labels[3]);
  EXPECT_NE(labels[0], labels[1]);
}

TEST(Clustering, LabelsOnNonPartitionThrows) {
  Clustering c({{0, 1}}, 3);
  EXPECT_THROW(c.labels(), InvalidArgument);
}

TEST(Clustering, NormalizeIsCanonical) {
  Clustering a({{3, 1}, {0}, {5, 2, 4}}, 6);
  Clustering b({{0}, {2, 4, 5}, {1, 3}}, 6);
  a.normalize();
  b.normalize();
  EXPECT_EQ(a.clusters(), b.clusters());
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Clustering, DigestDistinguishesContents) {
  Clustering a({{0, 1}, {2}}, 3);
  Clustering b({{0, 2}, {1}}, 3);
  a.normalize();
  b.normalize();
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Clustering, SummaryMentionsCounts) {
  Clustering c({{0, 1, 2}}, 3);
  const auto s = c.summary();
  EXPECT_NE(s.find("1 clusters"), std::string::npos);
  EXPECT_NE(s.find("largest 3"), std::string::npos);
}

}  // namespace
}  // namespace gpclust::core
