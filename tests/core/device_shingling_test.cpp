#include "core/device_shingling.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/serial_pclust.hpp"
#include "graph/generators.hpp"

namespace gpclust::core {
namespace {

/// Canonical multiset view of tuples for order-independent comparison.
std::vector<std::pair<ShingleId, u32>> canon(const ShingleTuples& t) {
  std::vector<std::pair<ShingleId, u32>> out;
  out.reserve(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out.emplace_back(t.shingle[i], t.owner[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class DeviceShinglingTest : public ::testing::Test {
 protected:
  device::DeviceContext ctx_{device::DeviceSpec::small_test_device(8 << 20)};
  const HashFamily family_{20, util::kMersenne61, 4, 1};
};

TEST_F(DeviceShinglingTest, MatchesSerialExtraction) {
  const auto g = graph::generate_erdos_renyi(200, 0.05, 3);
  const auto serial =
      extract_shingles_serial(g.offsets(), g.adjacency(), family_, 2);
  auto device_tuples = extract_shingles_device(ctx_, g.offsets(),
                                               g.adjacency(), family_, 2, {});
  EXPECT_EQ(canon(serial), canon(device_tuples));
}

class BatchSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSizeSweep, TupleSetInvariantUnderBatching) {
  // DESIGN.md invariant 4 at the pass level, across batch sizes that force
  // zero, some, and per-element splits.
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  const HashFamily family(15, util::kMersenne61, 9, 1);
  const auto g = graph::generate_erdos_renyi(100, 0.15, 8);
  const auto serial =
      extract_shingles_serial(g.offsets(), g.adjacency(), family, 2);

  DevicePassOptions options;
  options.max_batch_elements = GetParam();
  DevicePassStats stats;
  auto tuples = extract_shingles_device(ctx, g.offsets(), g.adjacency(),
                                        family, 2, options, nullptr,
                                        "cpu", &stats);
  EXPECT_EQ(canon(serial), canon(tuples));
  EXPECT_GT(stats.num_batches, 0u);
  EXPECT_EQ(stats.num_tuples, serial.size());
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, BatchSizeSweep,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1000, 1u << 20));

TEST_F(DeviceShinglingTest, AsyncTuplesIdenticalToSync) {
  const auto g = graph::generate_erdos_renyi(150, 0.1, 6);
  DevicePassOptions sync_opt, async_opt;
  async_opt.num_streams = 2;  // single-lane transfer overlap
  auto sync_tuples = extract_shingles_device(ctx_, g.offsets(), g.adjacency(),
                                             family_, 2, sync_opt);
  auto async_tuples = extract_shingles_device(ctx_, g.offsets(), g.adjacency(),
                                              family_, 2, async_opt);
  EXPECT_EQ(canon(sync_tuples), canon(async_tuples));
}

TEST_F(DeviceShinglingTest, StatsReportSplits) {
  const auto g = graph::generate_erdos_renyi(60, 0.5, 2);  // high degree
  DevicePassOptions options;
  options.max_batch_elements = 10;  // far below max degree
  DevicePassStats stats;
  extract_shingles_device(ctx_, g.offsets(), g.adjacency(), family_, 2,
                          options, nullptr, "cpu", &stats);
  EXPECT_GT(stats.num_split_lists, 0u);
  EXPECT_GT(stats.num_batches, 1u);
}

TEST_F(DeviceShinglingTest, DefaultBatchSizeRespectsDeviceMemory) {
  const std::size_t batch = default_batch_elements(ctx_, 2);
  EXPECT_GE(batch, 1u);
  // Must leave room: the per-batch allocations for `batch` elements cannot
  // exceed the arena.
  EXPECT_LT(batch * 12, ctx_.arena().capacity());
}

TEST_F(DeviceShinglingTest, CpuMetricAccumulates) {
  const auto g = graph::generate_erdos_renyi(100, 0.1, 1);
  util::MetricsRegistry reg;
  extract_shingles_device(ctx_, g.offsets(), g.adjacency(), family_, 2, {},
                          &reg, "pass.cpu");
  EXPECT_GT(reg.get("pass.cpu"), 0.0);
}

TEST_F(DeviceShinglingTest, EmptyGraphYieldsNoTuples) {
  const std::vector<u64> offsets = {0};
  auto tuples = extract_shingles_device(ctx_, offsets, {}, family_, 2, {});
  EXPECT_EQ(tuples.size(), 0u);
}

TEST_F(DeviceShinglingTest, ChargesDeviceTime) {
  const auto g = graph::generate_erdos_renyi(100, 0.1, 2);
  ctx_.reset_timeline();
  extract_shingles_device(ctx_, g.offsets(), g.adjacency(), family_, 2, {});
  EXPECT_GT(ctx_.gpu_seconds(), 0.0);
  EXPECT_GT(ctx_.h2d_seconds(), 0.0);
  EXPECT_GT(ctx_.d2h_seconds(), 0.0);
}

}  // namespace
}  // namespace gpclust::core
