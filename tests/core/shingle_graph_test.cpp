#include "core/shingle_graph.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/rng.hpp"

namespace gpclust::core {
namespace {

TEST(AggregateTuples, EmptyInputYieldsEmptyGraph) {
  const auto g = aggregate_tuples(ShingleTuples{});
  EXPECT_EQ(g.num_left(), 0u);
  EXPECT_TRUE(g.members.empty());
}

TEST(AggregateTuples, GroupsByShingle) {
  ShingleTuples t;
  t.append(100, 1);
  t.append(200, 2);
  t.append(100, 3);
  t.append(200, 1);
  const auto g = aggregate_tuples(std::move(t));
  ASSERT_EQ(g.num_left(), 2u);
  // Groups ordered by shingle id; members ascending.
  const auto l0 = g.list(0);
  const auto l1 = g.list(1);
  EXPECT_EQ(std::vector<u32>(l0.begin(), l0.end()), (std::vector<u32>{1, 3}));
  EXPECT_EQ(std::vector<u32>(l1.begin(), l1.end()), (std::vector<u32>{1, 2}));
}

TEST(AggregateTuples, DuplicatePairsCollapse) {
  ShingleTuples t;
  t.append(5, 9);
  t.append(5, 9);
  t.append(5, 9);
  const auto g = aggregate_tuples(std::move(t));
  ASSERT_EQ(g.num_left(), 1u);
  EXPECT_EQ(g.list(0).size(), 1u);
}

TEST(AggregateTuples, OrderOfTuplesIrrelevant) {
  util::Xoshiro256 rng(21);
  ShingleTuples a, b;
  std::vector<std::pair<ShingleId, u32>> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back(rng.next_below(50), static_cast<u32>(rng.next_below(40)));
  }
  for (const auto& [s, o] : pairs) a.append(s, o);
  // Shuffle for b.
  for (std::size_t i = pairs.size(); i > 1; --i) {
    std::swap(pairs[i - 1], pairs[rng.next_below(i)]);
  }
  for (const auto& [s, o] : pairs) b.append(s, o);

  const auto ga = aggregate_tuples(std::move(a));
  const auto gb = aggregate_tuples(std::move(b));
  EXPECT_EQ(ga.offsets, gb.offsets);
  EXPECT_EQ(ga.members, gb.members);
}

TEST(AggregateTuples, MatchesMapBasedReference) {
  util::Xoshiro256 rng(33);
  ShingleTuples t;
  std::map<ShingleId, std::set<u32>> reference;
  for (int i = 0; i < 1000; ++i) {
    const ShingleId s = rng.next_below(100);
    const u32 o = static_cast<u32>(rng.next_below(64));
    t.append(s, o);
    reference[s].insert(o);
  }
  const auto g = aggregate_tuples(std::move(t));
  ASSERT_EQ(g.num_left(), reference.size());
  std::size_t i = 0;
  for (const auto& [shingle, owners] : reference) {
    const auto list = g.list(i++);
    EXPECT_EQ(std::set<u32>(list.begin(), list.end()), owners);
  }
}

TEST(AggregateTuples, MismatchedArraysThrow) {
  ShingleTuples t;
  t.shingle.push_back(1);
  EXPECT_THROW(aggregate_tuples(std::move(t)), InvalidArgument);
}

TEST(AggregateTuplesSharded, MatchesFlatAggregationForEveryShardCount) {
  util::Xoshiro256 rng(77);
  ShingleTuples base;
  for (int i = 0; i < 2000; ++i) {
    // Spread shingles over the whole u64 range, as real (hashed) ids do —
    // the shard map keys on the top bits.
    base.append(rng.next(), static_cast<u32>(rng.next_below(128)));
  }
  ShingleTuples flat_input = base;
  const auto flat = aggregate_tuples(std::move(flat_input));

  for (u32 shards : {1u, 2u, 3u, 7u, 16u, 64u}) {
    ShingleTuples input = base;
    const auto sharded = aggregate_tuples_sharded(std::move(input), shards);
    EXPECT_EQ(sharded.offsets, flat.offsets) << "shards=" << shards;
    EXPECT_EQ(sharded.members, flat.members) << "shards=" << shards;
  }
}

TEST(AggregateTuplesSharded, MoreShardsThanTuplesIsHarmless) {
  ShingleTuples t;
  t.append(100, 1);
  t.append(200, 2);
  t.append(100, 3);
  const auto g = aggregate_tuples_sharded(std::move(t), 4096);
  ASSERT_EQ(g.num_left(), 2u);
  const auto l0 = g.list(0);
  EXPECT_EQ(std::vector<u32>(l0.begin(), l0.end()), (std::vector<u32>{1, 3}));
}

TEST(AggregateTuplesSharded, EmptyInputAndSingleShingleEdgeCases) {
  EXPECT_EQ(aggregate_tuples_sharded(ShingleTuples{}, 16).num_left(), 0u);

  // Every tuple lands in one shard; the others stay empty.
  ShingleTuples t;
  for (u32 o = 0; o < 10; ++o) t.append(~u64{0}, 9 - o);
  const auto g = aggregate_tuples_sharded(std::move(t), 8);
  ASSERT_EQ(g.num_left(), 1u);
  EXPECT_EQ(g.list(0).size(), 10u);
  EXPECT_EQ(g.list(0).front(), 0u);  // sorted ascending inside the group
}

TEST(AggregateTuplesSharded, MismatchedArraysThrow) {
  ShingleTuples t;
  t.shingle.push_back(1);
  EXPECT_THROW(aggregate_tuples_sharded(std::move(t), 4), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::core
