#include "core/minhash.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gpclust::core {
namespace {

TEST(AffineHash, IsBijectiveOnSmallPrimeField) {
  const AffineHash h{.a = 3, .b = 5, .p = 17};
  std::set<u64> images;
  for (u64 v = 0; v < 17; ++v) images.insert(h(v));
  EXPECT_EQ(images.size(), 17u);
  for (u64 img : images) EXPECT_LT(img, 17u);
}

TEST(AffineHash, MatchesDirectFormula) {
  const AffineHash h{.a = 7, .b = 11, .p = 101};
  for (u64 v = 0; v < 50; ++v) EXPECT_EQ(h(v), (7 * v + 11) % 101);
}

TEST(AffineHash, LargeModulusNoOverflow) {
  const AffineHash h{.a = util::kMersenne61 - 1, .b = 12345,
                     .p = util::kMersenne61};
  // a = p-1 means h(v) = (p - v + b) mod p; check a couple of points.
  EXPECT_EQ(h(0), 12345u);
  EXPECT_EQ(h(1), 12344u);
  EXPECT_LT(h(999999999999ULL), util::kMersenne61);
}

TEST(HashFamily, DeterministicForSeedAndLevel) {
  const HashFamily a(10, util::kMersenne61, 42, 1);
  const HashFamily b(10, util::kMersenne61, 42, 1);
  for (u32 j = 0; j < 10; ++j) {
    EXPECT_EQ(a[j].a, b[j].a);
    EXPECT_EQ(a[j].b, b[j].b);
  }
}

TEST(HashFamily, LevelsProduceDifferentFamilies) {
  const HashFamily l1(10, util::kMersenne61, 42, 1);
  const HashFamily l2(10, util::kMersenne61, 42, 2);
  int same = 0;
  for (u32 j = 0; j < 10; ++j) {
    if (l1[j].a == l2[j].a && l1[j].b == l2[j].b) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(HashFamily, MembersAreDistinct) {
  const HashFamily fam(200, util::kMersenne61, 7, 1);
  std::set<std::pair<u64, u64>> pairs;
  for (u32 j = 0; j < fam.size(); ++j) pairs.insert({fam[j].a, fam[j].b});
  EXPECT_EQ(pairs.size(), 200u);
}

TEST(HashFamily, CoefficientAIsNeverZero) {
  const HashFamily fam(500, 101, 3, 1);  // small modulus stresses a=0 risk
  for (u32 j = 0; j < fam.size(); ++j) {
    EXPECT_GE(fam[j].a, 1u);
    EXPECT_LT(fam[j].a, 101u);
    EXPECT_LT(fam[j].b, 101u);
  }
}

TEST(HashFamily, Validation) {
  EXPECT_THROW(HashFamily(0, 101, 1, 1), InvalidArgument);
  EXPECT_THROW(HashFamily(5, 1, 1, 1), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::core
