// Statistical property tests for the min-wise shingling machinery
// (DESIGN.md invariant 2): the probability that two vertices share a
// min-s shingle tracks the Jaccard similarity of their neighborhoods.
// For s=1, P[same shingle] equals the Jaccard index exactly (Broder et
// al. [4]); we check the empirical rate over many independent trials.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/minhash.hpp"
#include "core/shingle.hpp"
#include "util/rng.hpp"

namespace gpclust::core {
namespace {

double jaccard(std::vector<VertexId> a, std::vector<VertexId> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<VertexId> inter, uni;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(uni));
  return static_cast<double>(inter.size()) / static_cast<double>(uni.size());
}

/// Empirical share of trials in which the two lists produce identical
/// min-s shingles.
double shared_shingle_rate(const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b, u32 s, u32 trials,
                           u64 seed) {
  const HashFamily fam(trials, util::kMersenne61, seed, 1);
  std::vector<u64> ma(s), mb(s);
  u32 same = 0;
  for (u32 j = 0; j < trials; ++j) {
    min_s_images(a, fam[j], s, ma);
    min_s_images(b, fam[j], s, mb);
    if (hash_shingle(j, ma) == hash_shingle(j, mb)) ++same;
  }
  return static_cast<double>(same) / trials;
}

/// Builds two neighbor lists with `shared` common elements and
/// `unique_each` private elements each.
std::pair<std::vector<VertexId>, std::vector<VertexId>> make_lists(
    std::size_t shared, std::size_t unique_each, util::Xoshiro256& rng) {
  std::vector<VertexId> common, a, b;
  for (std::size_t i = 0; i < shared; ++i) {
    common.push_back(static_cast<VertexId>(rng.next_below(1u << 30)));
  }
  a = common;
  b = common;
  for (std::size_t i = 0; i < unique_each; ++i) {
    a.push_back(static_cast<VertexId>(rng.next_below(1u << 30)));
    b.push_back(static_cast<VertexId>(rng.next_below(1u << 30)));
  }
  return {a, b};
}

TEST(MinWiseProperty, IdenticalSetsAlwaysShare) {
  util::Xoshiro256 rng(1);
  auto [a, _] = make_lists(30, 0, rng);
  EXPECT_DOUBLE_EQ(shared_shingle_rate(a, a, 2, 200, 5), 1.0);
}

TEST(MinWiseProperty, DisjointSetsNeverShare) {
  util::Xoshiro256 rng(2);
  auto [a, b] = make_lists(0, 25, rng);
  EXPECT_DOUBLE_EQ(shared_shingle_rate(a, b, 2, 200, 5), 0.0);
}

TEST(MinWiseProperty, SingleElementShingleMatchesJaccard) {
  // s=1: P[min-hash collision] == J(A,B). Use J = 0.5 (20 shared, 10+10).
  util::Xoshiro256 rng(3);
  auto [a, b] = make_lists(20, 10, rng);
  const double j = jaccard(a, b);
  ASSERT_NEAR(j, 0.5, 1e-9);
  const double rate = shared_shingle_rate(a, b, 1, 4000, 11);
  EXPECT_NEAR(rate, j, 0.04);
}

TEST(MinWiseProperty, RateIncreasesWithJaccard) {
  util::Xoshiro256 rng(4);
  auto [lo_a, lo_b] = make_lists(10, 20, rng);   // J ~ 0.2
  auto [hi_a, hi_b] = make_lists(40, 5, rng);    // J ~ 0.8
  const double lo = shared_shingle_rate(lo_a, lo_b, 2, 1000, 13);
  const double hi = shared_shingle_rate(hi_a, hi_b, 2, 1000, 13);
  EXPECT_LT(lo + 0.15, hi);
}

TEST(MinWiseProperty, SizeTwoShingleApproximatesJaccardSquared) {
  // For s=2 the match probability is close to J^2 when sets are large
  // (both minima must coincide; approximately independent events).
  util::Xoshiro256 rng(5);
  auto [a, b] = make_lists(60, 20, rng);  // J = 60/100 = 0.6
  const double j = jaccard(a, b);
  const double rate = shared_shingle_rate(a, b, 2, 4000, 17);
  EXPECT_NEAR(rate, j * j, 0.07);
}

class MinWiseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MinWiseSweep, S1RateTracksJaccardAcrossOverlaps) {
  const std::size_t shared = GetParam();
  util::Xoshiro256 rng(100 + shared);
  // Total union size fixed at 60: shared + 2 * unique = 60.
  const std::size_t unique_each = (60 - shared) / 2;
  auto [a, b] = make_lists(shared, unique_each, rng);
  const double j = jaccard(a, b);
  const double rate = shared_shingle_rate(a, b, 1, 3000, 23);
  EXPECT_NEAR(rate, j, 0.05) << "shared=" << shared;
}

INSTANTIATE_TEST_SUITE_P(OverlapLevels, MinWiseSweep,
                         ::testing::Values(0, 10, 20, 30, 40, 50, 58));

}  // namespace
}  // namespace gpclust::core
