#include "core/serial_pclust.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/shingle.hpp"
#include "graph/generators.hpp"

namespace gpclust::core {
namespace {

ShinglingParams small_params() {
  ShinglingParams p;
  p.s1 = 2;
  p.c1 = 30;
  p.s2 = 2;
  p.c2 = 15;
  p.seed = 99;
  return p;
}

TEST(ExtractShinglesSerial, OneTuplePerEligibleListPerTrial) {
  const std::vector<u64> offsets = {0, 3, 4, 8};  // lengths 3, 1, 4
  const std::vector<u32> members = {1, 2, 3, 9, 4, 5, 6, 7};
  const HashFamily fam(10, util::kMersenne61, 1, 1);
  const auto tuples = extract_shingles_serial(offsets, members, fam, 2);
  // Lists 0 and 2 are eligible (len >= 2), 10 trials each.
  EXPECT_EQ(tuples.size(), 20u);
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_TRUE(tuples.owner[i] == 0 || tuples.owner[i] == 2);
    EXPECT_NE(tuples.shingle[i], kNoValue);
  }
}

TEST(ExtractShinglesSerial, IdenticalListsShareAllShingles) {
  // Two vertices with identical neighborhoods must generate identical
  // shingles in every trial.
  const std::vector<u64> offsets = {0, 4, 8};
  const std::vector<u32> members = {10, 20, 30, 40, 10, 20, 30, 40};
  const HashFamily fam(25, util::kMersenne61, 5, 1);
  const auto tuples = extract_shingles_serial(offsets, members, fam, 2);
  ASSERT_EQ(tuples.size(), 50u);
  // Group by owner preserving order: trials are emitted in order.
  std::vector<ShingleId> a, b;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    (tuples.owner[i] == 0 ? a : b).push_back(tuples.shingle[i]);
  }
  EXPECT_EQ(a, b);
}

TEST(ExtractShinglesSerial, DisjointNeighborhoodsShareNothing) {
  const std::vector<u64> offsets = {0, 3, 6};
  const std::vector<u32> members = {1, 2, 3, 100, 200, 300};
  const HashFamily fam(40, util::kMersenne61, 5, 1);
  const auto tuples = extract_shingles_serial(offsets, members, fam, 2);
  std::set<ShingleId> a, b;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    (tuples.owner[i] == 0 ? a : b).insert(tuples.shingle[i]);
  }
  for (ShingleId s : a) EXPECT_EQ(b.count(s), 0u);
}

TEST(SerialShingler, RecoversPlantedCliques) {
  // Three disjoint 12-cliques must come back as three clusters.
  graph::EdgeList e;
  for (VertexId base : {0u, 12u, 24u}) {
    for (VertexId i = 0; i < 12; ++i) {
      for (VertexId j = i + 1; j < 12; ++j) e.add(base + i, base + j);
    }
  }
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const SerialShingler shingler(small_params());
  auto c = shingler.cluster(g);
  EXPECT_TRUE(c.is_partition());
  const auto big = c.filtered(2);
  ASSERT_EQ(big.num_clusters(), 3u);
  for (const auto& cluster : big.clusters()) EXPECT_EQ(cluster.size(), 12u);
  // Membership must match the planted cliques.
  const auto labels = c.labels();
  for (VertexId base : {0u, 12u, 24u}) {
    for (VertexId i = 1; i < 12; ++i) {
      EXPECT_EQ(labels[base], labels[base + i]);
    }
  }
  EXPECT_NE(labels[0], labels[12]);
  EXPECT_NE(labels[12], labels[24]);
}

TEST(SerialShingler, RecoversNoisyPlantedFamilies) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 8;
  cfg.min_family_size = 15;
  cfg.max_family_size = 30;
  cfg.intra_family_edge_prob = 0.9;
  cfg.intra_superfamily_edge_prob = 0.0;
  cfg.noise_edges_per_vertex = 0.0;
  cfg.seed = 4;
  const auto pg = graph::generate_planted_families(cfg);

  ShinglingParams p = small_params();
  p.c1 = 80;
  p.c2 = 40;
  const SerialShingler shingler(p);
  auto c = shingler.cluster(pg.graph);
  const auto labels = c.labels();

  // Most same-family pairs should be co-clustered (high sensitivity on
  // dense planted families), and no cross-family merging should occur in
  // a noise-free graph... cross-family merges are possible only through
  // shared shingles, which require shared neighbors; disjoint families
  // share none.
  std::size_t same_family_pairs = 0, co_clustered = 0;
  for (std::size_t u = 0; u < pg.graph.num_vertices(); ++u) {
    for (std::size_t v = u + 1; v < pg.graph.num_vertices(); ++v) {
      if (pg.family[u] != pg.family[v]) {
        EXPECT_NE(labels[u], labels[v]) << "cross-family merge";
      } else {
        ++same_family_pairs;
        if (labels[u] == labels[v]) ++co_clustered;
      }
    }
  }
  EXPECT_GT(static_cast<double>(co_clustered) /
                static_cast<double>(same_family_pairs),
            0.8);
}

TEST(SerialShingler, DeterministicAcrossRuns) {
  const auto g = graph::generate_erdos_renyi(300, 0.05, 8);
  const SerialShingler shingler(small_params());
  auto a = shingler.cluster(g);
  auto b = shingler.cluster(g);
  a.normalize();
  b.normalize();
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(SerialShingler, SeedChangesClustering) {
  const auto g = graph::generate_erdos_renyi(300, 0.03, 8);
  ShinglingParams p1 = small_params(), p2 = small_params();
  p2.seed = 12345;
  p1.c1 = p2.c1 = 5;  // few trials so randomness shows
  auto a = SerialShingler(p1).cluster(g);
  auto b = SerialShingler(p2).cluster(g);
  a.normalize();
  b.normalize();
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SerialShingler, MetricsShowShinglingDominates) {
  // The paper's profiling claim: ~80% of serial runtime is in the two
  // shingling levels. On a dense-enough graph the shingling phases must
  // dominate aggregation and reporting.
#if defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "timing-shape assertion: sanitizer instrumentation skews "
                  "the phase ratio";
#endif
  const auto g = graph::generate_erdos_renyi(400, 0.2, 10);
  ShinglingParams p = small_params();
  p.c1 = 100;
  p.c2 = 50;
  util::MetricsRegistry reg;
  SerialShingler(p).cluster(g, &reg);
  const double shingling =
      reg.get("serial.shingling1") + reg.get("serial.shingling2");
  const double total = shingling + reg.get("serial.aggregate1") +
                       reg.get("serial.aggregate2") + reg.get("serial.report");
  EXPECT_GT(shingling / total, 0.5);
}

TEST(SerialShingler, EmptyGraphYieldsNoClusters) {
  const graph::CsrGraph g;
  const auto c = SerialShingler(small_params()).cluster(g);
  EXPECT_EQ(c.num_clusters(), 0u);
}

TEST(SerialShingler, SingletonsStaySingletons) {
  graph::EdgeList e(10);  // vertices 5..9 isolated
  for (VertexId i = 0; i < 5; ++i) {
    for (VertexId j = i + 1; j < 5; ++j) e.add(i, j);
  }
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const auto c = SerialShingler(small_params()).cluster(g);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 6u);  // one 5-clique + 5 singletons
}

TEST(SerialShingler, ValidatesParams) {
  const auto g = graph::generate_erdos_renyi(10, 0.5, 1);
  ShinglingParams p = small_params();
  p.prime = 5;  // smaller than the vertex universe
  EXPECT_THROW(SerialShingler(p).cluster(g), InvalidArgument);
  p = small_params();
  p.c1 = 0;
  EXPECT_THROW(SerialShingler(p).cluster(g), InvalidArgument);
}

TEST(SerialShingler, OverlappingModeRuns) {
  const auto g = graph::generate_erdos_renyi(100, 0.15, 3);
  ShinglingParams p = small_params();
  p.mode = ReportMode::Overlapping;
  const auto c = SerialShingler(p).cluster(g);
  // Overlapping mode reports only component-induced clusters.
  for (const auto& cluster : c.clusters()) EXPECT_GE(cluster.size(), 1u);
}

}  // namespace
}  // namespace gpclust::core
