#include "core/component_decomposition.hpp"

#include <gtest/gtest.h>

#include "core/serial_pclust.hpp"
#include "graph/connected_components.hpp"
#include "graph/generators.hpp"

namespace gpclust::core {
namespace {

ShinglingParams small_params() {
  ShinglingParams p;
  p.c1 = 30;
  p.c2 = 15;
  p.seed = 5;
  return p;
}

TEST(InducedSubgraph, ExtractsAndRelabels) {
  // Path 0-1-2-3 plus edge 4-5; take {1, 2, 3, 5}.
  graph::EdgeList e(6);
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 3);
  e.add(4, 5);
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const auto sub = induced_subgraph(g, {1, 2, 3, 5});
  EXPECT_EQ(sub.num_vertices(), 4u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 1-2 -> 0-1, 2-3 -> 1-2
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 3));  // 1-5 never existed
}

TEST(InducedSubgraph, RequiresSortedVertices) {
  const auto g = graph::generate_erdos_renyi(10, 0.5, 1);
  EXPECT_THROW(induced_subgraph(g, {3, 1}), InvalidArgument);
}

TEST(ClusterByComponents, NoClusterSpansComponents) {
  // Decomposition is sound because Shingling never links vertices from
  // different components; relabeling changes the random permutations, so
  // results are equivalent in distribution, not bit-identical.
  const auto g = graph::generate_erdos_renyi(300, 0.01, 11);  // fragmented
  const SerialShingler shingler(small_params());

  ComponentDecompositionStats stats;
  const auto decomposed = cluster_by_components(
      g, [&](const graph::CsrGraph& sub) { return shingler.cluster(sub); },
      /*min_component_size=*/2, &stats);

  EXPECT_GT(stats.num_components, 1u);
  EXPECT_TRUE(decomposed.is_partition());
  const auto cc = graph::connected_components(g);
  for (const auto& cluster : decomposed.clusters()) {
    for (VertexId v : cluster) {
      EXPECT_EQ(cc.labels[v], cc.labels[cluster.front()])
          << "cluster spans two components";
    }
  }
}

TEST(ClusterByComponents, RecoversCliquesLikeWholeGraphRun) {
  // On disjoint cliques both the whole-graph run and the decomposed run
  // deterministically report exactly the cliques.
  graph::EdgeList e;
  for (VertexId base : {0u, 12u, 24u, 36u}) {
    for (VertexId i = 0; i < 12; ++i) {
      for (VertexId j = i + 1; j < 12; ++j) e.add(base + i, base + j);
    }
  }
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  const SerialShingler shingler(small_params());
  auto whole = shingler.cluster(g);
  auto decomposed = cluster_by_components(
      g, [&](const graph::CsrGraph& sub) { return shingler.cluster(sub); },
      /*min_component_size=*/2);
  whole.normalize();
  decomposed.normalize();
  EXPECT_EQ(whole.digest(), decomposed.digest());
}

TEST(ClusterByComponents, SmallComponentsBypassShingling) {
  // Two triangles + one isolated vertex; threshold 3 keeps triangles whole
  // without invoking the clusterer.
  graph::EdgeList e(7);
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(3, 4);
  e.add(4, 5);
  e.add(3, 5);
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  std::size_t calls = 0;
  const auto c = cluster_by_components(
      g,
      [&](const graph::CsrGraph& sub) {
        ++calls;
        return SerialShingler(small_params()).cluster(sub);
      },
      /*min_component_size=*/3);
  EXPECT_EQ(calls, 0u);
  EXPECT_TRUE(c.is_partition());
  EXPECT_EQ(c.num_clusters(), 3u);  // two triangles + singleton
}

TEST(ClusterByComponents, StatsPopulated) {
  const auto g = graph::generate_erdos_renyi(200, 0.02, 9);
  ComponentDecompositionStats stats;
  cluster_by_components(
      g,
      [&](const graph::CsrGraph& sub) {
        return SerialShingler(small_params()).cluster(sub);
      },
      3, &stats);
  EXPECT_GT(stats.num_components, 0u);
  EXPECT_GE(stats.num_components, stats.num_shingled_components);
  EXPECT_GT(stats.largest_component, 3u);
}

TEST(ClusterByComponents, RejectsNonPartitionClusterer) {
  const auto g = graph::generate_erdos_renyi(30, 0.5, 2);
  EXPECT_THROW(
      cluster_by_components(
          g,
          [](const graph::CsrGraph& sub) {
            return Clustering({{0}}, sub.num_vertices());  // not a partition
          },
          2),
      InvalidArgument);
}

TEST(ClusterByComponents, EmptyGraph) {
  const graph::CsrGraph g;
  const auto c = cluster_by_components(
      g, [](const graph::CsrGraph& sub) {
        return Clustering({}, sub.num_vertices());
      });
  EXPECT_EQ(c.num_clusters(), 0u);
}

}  // namespace
}  // namespace gpclust::core
