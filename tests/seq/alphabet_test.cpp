#include "seq/alphabet.hpp"

#include <gtest/gtest.h>

namespace gpclust::seq {
namespace {

TEST(Alphabet, RoundTripAllResidues) {
  for (std::size_t i = 0; i < kNumResidues; ++i) {
    const char c = residue_char(static_cast<u8>(i));
    EXPECT_EQ(residue_index(c), i);
  }
}

TEST(Alphabet, LowercaseAccepted) {
  EXPECT_EQ(residue_index('a'), residue_index('A'));
  EXPECT_EQ(residue_index('w'), residue_index('W'));
}

TEST(Alphabet, InvalidCharacterThrows) {
  EXPECT_THROW(residue_index('J'), InvalidArgument);
  EXPECT_THROW(residue_index('1'), InvalidArgument);
  EXPECT_THROW(residue_index(' '), InvalidArgument);
}

TEST(Alphabet, StandardResidueClassification) {
  EXPECT_TRUE(is_standard_residue('A'));
  EXPECT_TRUE(is_standard_residue('V'));
  EXPECT_FALSE(is_standard_residue('X'));
  EXPECT_FALSE(is_standard_residue('B'));
  EXPECT_FALSE(is_standard_residue('*'));
  EXPECT_FALSE(is_standard_residue('J'));
}

TEST(Alphabet, ProteinValidation) {
  EXPECT_TRUE(is_valid_protein("ACDEFGHIKLMNPQRSTVWY"));
  EXPECT_TRUE(is_valid_protein("mkv*"));
  EXPECT_FALSE(is_valid_protein("ACDEF GHI"));
  EXPECT_FALSE(is_valid_protein("ACDEF1"));
  EXPECT_TRUE(is_valid_protein(""));
}

TEST(Alphabet, ResidueCharOutOfRangeThrows) {
  EXPECT_THROW(residue_char(24), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::seq
