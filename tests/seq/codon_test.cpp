#include "seq/codon.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "seq/alphabet.hpp"

namespace gpclust::seq {
namespace {

TEST(Codon, KnownTranslations) {
  EXPECT_EQ(translate_codon("ATG"), 'M');  // start
  EXPECT_EQ(translate_codon("TGG"), 'W');
  EXPECT_EQ(translate_codon("TAA"), '*');
  EXPECT_EQ(translate_codon("TAG"), '*');
  EXPECT_EQ(translate_codon("TGA"), '*');
  EXPECT_EQ(translate_codon("GGG"), 'G');
  EXPECT_EQ(translate_codon("TTT"), 'F');
  EXPECT_EQ(translate_codon("aaa"), 'K');
}

TEST(Codon, AmbiguousCodonIsX) {
  EXPECT_EQ(translate_codon("ANG"), 'X');
  EXPECT_EQ(translate_codon("NNN"), 'X');
}

TEST(Codon, WrongLengthThrows) {
  EXPECT_THROW(translate_codon("AT"), InvalidArgument);
  EXPECT_THROW(translate_codon("ATGC"), InvalidArgument);
}

TEST(Codon, FullCodeCoversTwentyAminoAcidsAndStops) {
  std::map<char, int> counts;
  constexpr char kBases[4] = {'T', 'C', 'A', 'G'};
  for (char a : kBases) {
    for (char b : kBases) {
      for (char c : kBases) {
        ++counts[translate_codon(std::string{a, b, c})];
      }
    }
  }
  EXPECT_EQ(counts.size(), 21u);  // 20 amino acids + '*'
  EXPECT_EQ(counts['*'], 3);
  EXPECT_EQ(counts['M'], 1);
  EXPECT_EQ(counts['W'], 1);
  EXPECT_EQ(counts['L'], 6);
  EXPECT_EQ(counts['R'], 6);
  EXPECT_EQ(counts['S'], 6);
}

TEST(Codon, TranslateFrameShifts) {
  //               frame0: ATG AAA TGA -> M K *
  const std::string dna = "ATGAAATGA";
  EXPECT_EQ(translate_frame(dna, 0), "MK*");
  EXPECT_EQ(translate_frame(dna, 1), "*N");  // TGA AAT [GA dropped]
  EXPECT_EQ(translate_frame(dna, 2), "EM");  // GAA ATG [A dropped]
}

TEST(Codon, TranslateFrameEdgeCases) {
  EXPECT_EQ(translate_frame("AT", 0), "");
  EXPECT_EQ(translate_frame("ATG", 1), "");
  EXPECT_THROW(translate_frame("ATG", 3), InvalidArgument);
}

TEST(Codon, CodonsForRoundTrip) {
  // Every codon listed for an amino acid must translate back to it.
  for (std::size_t i = 0; i < kNumStandardResidues; ++i) {
    const char aa = kResidues[i];
    for (const auto& codon : codons_for(aa)) {
      EXPECT_EQ(translate_codon(codon), aa) << codon;
    }
  }
  for (const auto& codon : codons_for('*')) {
    EXPECT_EQ(translate_codon(codon), '*');
  }
}

TEST(Codon, CodonsForUnencodableThrows) {
  EXPECT_THROW(codons_for('B'), InvalidArgument);
  EXPECT_THROW(codons_for('X'), InvalidArgument);
}

TEST(Codon, BackTranslateRoundTrip) {
  util::Xoshiro256 rng(5);
  const std::string protein = "MKVLAAGGHTREQWCDNSPFIY";
  const std::string dna = back_translate(protein, rng);
  ASSERT_EQ(dna.size(), protein.size() * 3);
  EXPECT_EQ(translate_frame(dna, 0), protein);
}

TEST(Codon, BackTranslateUsesSynonymousVariety) {
  util::Xoshiro256 rng(6);
  std::set<std::string> variants;
  for (int i = 0; i < 50; ++i) {
    variants.insert(back_translate("LLLLLL", rng));  // L has 6 codons
  }
  EXPECT_GT(variants.size(), 10u);
}

}  // namespace
}  // namespace gpclust::seq
