#include "seq/orf_finder.hpp"

#include <gtest/gtest.h>

#include "seq/codon.hpp"
#include "seq/dna.hpp"
#include "util/rng.hpp"

namespace gpclust::seq {
namespace {

OrfFinderConfig short_config(std::size_t min_length = 5,
                             bool both_strands = true) {
  OrfFinderConfig cfg;
  cfg.min_length = min_length;
  cfg.both_strands = both_strands;
  return cfg;
}

TEST(OrfFinder, FindsEmbeddedOrfInFrameZero) {
  util::Xoshiro256 rng(1);
  const std::string protein = "MKVLAAGGHT";
  // Stop codons on both sides confine the ORF.
  const std::string dna = "TAA" + back_translate(protein, rng) + "TGA";
  const auto orfs = find_orfs(dna, "r", short_config(5, false));
  ASSERT_FALSE(orfs.empty());
  bool found = false;
  for (const auto& orf : orfs) {
    if (orf.residues == protein) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(OrfFinder, FindsOrfOnReverseStrand) {
  util::Xoshiro256 rng(2);
  const std::string protein = "MKVLAAGGHTWWYY";
  const std::string forward = "TAA" + back_translate(protein, rng) + "TGA";
  const std::string dna = reverse_complement(forward);
  const auto without_rc = find_orfs(dna, "r", short_config(10, false));
  const auto with_rc = find_orfs(dna, "r", short_config(10, true));
  bool found = false;
  for (const auto& orf : with_rc) {
    if (orf.residues == protein) found = true;
  }
  EXPECT_TRUE(found);
  for (const auto& orf : without_rc) {
    EXPECT_NE(orf.residues, protein) << "should need the reverse strand";
  }
}

TEST(OrfFinder, MinLengthFilters) {
  util::Xoshiro256 rng(3);
  const std::string dna =
      "TAA" + back_translate("MKVLA", rng) + "TGA";  // 5-residue ORF
  EXPECT_FALSE(find_orfs(dna, "r", short_config(5, false)).empty());
  // Only stretches >= 6 wanted: the 5-residue ORF disappears (other frames
  // may still produce stretches, so check no 5-residue survivor).
  for (const auto& orf : find_orfs(dna, "r", short_config(6, false))) {
    EXPECT_GE(orf.residues.size(), 6u);
  }
}

TEST(OrfFinder, StopFreeSequenceIsOneOrfPerFrame) {
  util::Xoshiro256 rng(4);
  const std::string dna = back_translate("MKVLAAGGHTMKVLAAGGHT", rng);
  const auto orfs = find_orfs(dna, "r", short_config(20, false));
  ASSERT_EQ(orfs.size(), 1u);  // frames 1/2 are shorter than 20
  EXPECT_EQ(orfs[0].residues.size(), 20u);
}

TEST(OrfFinder, IdsEncodeFrameAndIndex) {
  util::Xoshiro256 rng(5);
  const std::string dna = "TAA" + back_translate("MKVLAAGG", rng) + "TAG" +
                          back_translate("HTREQWCD", rng) + "TGA";
  const auto orfs = find_orfs(dna, "read9", short_config(8, false));
  ASSERT_GE(orfs.size(), 2u);
  EXPECT_EQ(orfs[0].id, "read9_f0_0");
  EXPECT_EQ(orfs[1].id, "read9_f0_1");
}

TEST(OrfFinder, SetOverloadConcatenates) {
  util::Xoshiro256 rng(6);
  SequenceSet reads;
  reads.push_back({"a", back_translate("MKVLAAGGHT", rng)});
  reads.push_back({"b", back_translate("WWYYHHTTRR", rng)});
  const auto orfs = find_orfs(reads, short_config(10, false));
  EXPECT_GE(orfs.size(), 2u);
}

TEST(OrfFinder, RejectsInvalidInput) {
  EXPECT_THROW(find_orfs("NOTDNA!", "r", short_config()), InvalidArgument);
  OrfFinderConfig cfg;
  cfg.min_length = 0;
  EXPECT_THROW(find_orfs("ACGT", "r", cfg), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::seq
