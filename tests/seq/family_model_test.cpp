#include "seq/family_model.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "seq/alphabet.hpp"

namespace gpclust::seq {
namespace {

FamilyModelConfig small_config() {
  FamilyModelConfig cfg;
  cfg.num_families = 10;
  cfg.min_members = 3;
  cfg.max_members = 12;
  cfg.min_ancestor_length = 60;
  cfg.max_ancestor_length = 120;
  cfg.num_background_orfs = 5;
  cfg.seed = 11;
  return cfg;
}

TEST(FamilyModel, Deterministic) {
  const auto a = generate_metagenome(small_config());
  const auto b = generate_metagenome(small_config());
  ASSERT_EQ(a.sequences.size(), b.sequences.size());
  for (std::size_t i = 0; i < a.sequences.size(); ++i) {
    EXPECT_EQ(a.sequences[i].residues, b.sequences[i].residues);
  }
  EXPECT_EQ(a.family, b.family);
}

TEST(FamilyModel, EveryFamilyRepresented) {
  const auto mg = generate_metagenome(small_config());
  std::map<u32, std::size_t> counts;
  for (u32 f : mg.family) ++counts[f];
  for (u32 f = 0; f < 10; ++f) EXPECT_GE(counts[f], 3u) << "family " << f;
}

TEST(FamilyModel, SequencesAreValidProteins) {
  const auto mg = generate_metagenome(small_config());
  for (const auto& s : mg.sequences) {
    EXPECT_TRUE(is_valid_protein(s.residues)) << s.id;
    EXPECT_GE(s.length(), 1u);
  }
}

TEST(FamilyModel, IdsAreUnique) {
  const auto mg = generate_metagenome(small_config());
  std::set<std::string> ids;
  for (const auto& s : mg.sequences) ids.insert(s.id);
  EXPECT_EQ(ids.size(), mg.sequences.size());
}

TEST(FamilyModel, BackgroundOrfsGetUniqueLabels) {
  const auto cfg = small_config();
  const auto mg = generate_metagenome(cfg);
  std::map<u32, std::size_t> counts;
  for (u32 f : mg.family) ++counts[f];
  std::size_t background = 0;
  for (const auto& [label, count] : counts) {
    if (label >= cfg.num_families) {
      EXPECT_EQ(count, 1u);
      ++background;
    }
  }
  EXPECT_EQ(background, cfg.num_background_orfs);
}

TEST(FamilyModel, FamilyMembersAreSimilarToEachOther) {
  // With a modest mutation rate, two members of one family should share
  // many more k-mers than two members of different families.
  auto cfg = small_config();
  cfg.substitution_rate = 0.05;
  cfg.fragment_min_fraction = 1.0;  // no truncation for this check
  cfg.indel_rate = 0.0;
  const auto mg = generate_metagenome(cfg);

  auto kmers = [](const std::string& s) {
    std::set<std::string> out;
    for (std::size_t i = 0; i + 4 <= s.size(); ++i) out.insert(s.substr(i, 4));
    return out;
  };
  auto overlap = [&](const std::string& a, const std::string& b) {
    const auto ka = kmers(a), kb = kmers(b);
    std::size_t shared = 0;
    for (const auto& k : ka) shared += kb.count(k);
    return static_cast<double>(shared) / static_cast<double>(ka.size());
  };

  // First two members of family 0 (same ancestor).
  std::vector<std::size_t> fam0, fam1;
  for (std::size_t i = 0; i < mg.family.size(); ++i) {
    if (mg.family[i] == 0) fam0.push_back(i);
    if (mg.family[i] == 1) fam1.push_back(i);
  }
  ASSERT_GE(fam0.size(), 2u);
  ASSERT_GE(fam1.size(), 1u);
  const double intra = overlap(mg.sequences[fam0[0]].residues,
                               mg.sequences[fam0[1]].residues);
  const double inter = overlap(mg.sequences[fam0[0]].residues,
                               mg.sequences[fam1[0]].residues);
  EXPECT_GT(intra, 0.4);
  EXPECT_LT(inter, 0.1);
}

TEST(FamilyModel, FragmentationShortensSequences) {
  auto cfg = small_config();
  cfg.fragment_min_fraction = 0.5;
  cfg.indel_rate = 0.0;
  const auto mg = generate_metagenome(cfg);
  for (std::size_t i = 0; i < mg.sequences.size(); ++i) {
    if (mg.family[i] >= cfg.num_families) continue;  // background
    EXPECT_LE(mg.sequences[i].length(), cfg.max_ancestor_length);
    EXPECT_GE(mg.sequences[i].length(),
              static_cast<std::size_t>(0.5 * 0.9 *
                                       static_cast<double>(
                                           cfg.min_ancestor_length)));
  }
}

TEST(FamilyModel, Validation) {
  FamilyModelConfig cfg;
  cfg.num_families = 0;
  EXPECT_THROW(generate_metagenome(cfg), InvalidArgument);
  cfg = FamilyModelConfig{};
  cfg.min_members = 5;
  cfg.max_members = 2;
  EXPECT_THROW(generate_metagenome(cfg), InvalidArgument);
  cfg = FamilyModelConfig{};
  cfg.fragment_min_fraction = 0.0;
  EXPECT_THROW(generate_metagenome(cfg), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::seq
