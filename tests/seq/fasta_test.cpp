#include "seq/fasta.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace gpclust::seq {
namespace {

class FastaTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "gpclust_fasta";
    std::filesystem::create_directories(dir);
    paths_.push_back((dir / name).string());
    return paths_.back();
  }
  void TearDown() override {
    for (const auto& p : paths_) std::filesystem::remove(p);
  }
  std::vector<std::string> paths_;
};

TEST_F(FastaTest, RoundTrip) {
  SequenceSet set = {{"orf1", "MKVLAAGGHTREQW"},
                     {"orf2", "ACDEFGHIKLMNPQRSTVWY"}};
  const auto path = temp_path("roundtrip.fa");
  write_fasta(set, path, 7);  // small width forces wrapping
  const auto loaded = read_fasta(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id, "orf1");
  EXPECT_EQ(loaded[0].residues, set[0].residues);
  EXPECT_EQ(loaded[1].residues, set[1].residues);
}

TEST_F(FastaTest, HeaderStopsAtWhitespace) {
  const auto path = temp_path("hdr.fa");
  {
    std::ofstream out(path);
    out << ">seq42 some description here\nMKV\n";
  }
  const auto loaded = read_fasta(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].id, "seq42");
}

TEST_F(FastaTest, MultiLineSequencesConcatenate) {
  const auto path = temp_path("multi.fa");
  {
    std::ofstream out(path);
    out << ">s\nMKV\nLAA\nGG\n";
  }
  EXPECT_EQ(read_fasta(path)[0].residues, "MKVLAAGG");
}

TEST_F(FastaTest, CarriageReturnsStripped) {
  const auto path = temp_path("crlf.fa");
  {
    std::ofstream out(path);
    out << ">s\r\nMKV\r\n";
  }
  EXPECT_EQ(read_fasta(path)[0].residues, "MKV");
}

TEST_F(FastaTest, RejectsDataBeforeHeader) {
  const auto path = temp_path("nohdr.fa");
  {
    std::ofstream out(path);
    out << "MKV\n";
  }
  EXPECT_THROW(read_fasta(path), ParseError);
}

TEST_F(FastaTest, RejectsInvalidResidue) {
  const auto path = temp_path("bad.fa");
  {
    std::ofstream out(path);
    out << ">s\nMK9V\n";
  }
  EXPECT_THROW(read_fasta(path), ParseError);
}

TEST_F(FastaTest, RejectsEmptyHeader) {
  const auto path = temp_path("empty_hdr.fa");
  {
    std::ofstream out(path);
    out << ">\nMKV\n";
  }
  EXPECT_THROW(read_fasta(path), ParseError);
}

TEST_F(FastaTest, MissingFileThrows) {
  EXPECT_THROW(read_fasta("/nonexistent/x.fa"), ParseError);
}

}  // namespace
}  // namespace gpclust::seq
