#include "seq/community_model.hpp"

#include <gtest/gtest.h>

#include "seq/dna.hpp"
#include "seq/orf_finder.hpp"

namespace gpclust::seq {
namespace {

CommunityConfig small_config() {
  CommunityConfig cfg;
  cfg.families.num_families = 6;
  cfg.families.min_members = 3;
  cfg.families.max_members = 6;
  cfg.families.min_ancestor_length = 60;
  cfg.families.max_ancestor_length = 100;
  cfg.families.seed = 11;
  cfg.num_genomes = 4;
  cfg.read_length = 300;
  cfg.coverage = 2.0;
  cfg.seed = 21;
  return cfg;
}

TEST(CommunityModel, ProducesValidDna) {
  const auto community = generate_community(small_config());
  ASSERT_EQ(community.genomes.size(), 4u);
  for (const auto& g : community.genomes) {
    EXPECT_TRUE(is_valid_dna(g.residues)) << g.id;
    EXPECT_GT(g.residues.size(), 100u);
  }
  EXPECT_FALSE(community.reads.empty());
  for (const auto& r : community.reads) {
    EXPECT_EQ(r.residues.size(), 300u);
    EXPECT_TRUE(is_valid_dna(r.residues));
  }
}

TEST(CommunityModel, Deterministic) {
  const auto a = generate_community(small_config());
  const auto b = generate_community(small_config());
  ASSERT_EQ(a.reads.size(), b.reads.size());
  for (std::size_t i = 0; i < a.reads.size(); ++i) {
    EXPECT_EQ(a.reads[i].residues, b.reads[i].residues);
  }
}

TEST(CommunityModel, ReadCountMatchesCoverage) {
  const auto cfg = small_config();
  const auto community = generate_community(cfg);
  std::size_t total = 0;
  for (const auto& g : community.genomes) total += g.residues.size();
  const double expected =
      cfg.coverage * static_cast<double>(total) /
      static_cast<double>(cfg.read_length);
  EXPECT_NEAR(static_cast<double>(community.reads.size()), expected,
              expected * 0.05 + 2);
}

TEST(CommunityModel, GenomesEncodeTheProteins) {
  // Every embedded protein must be recoverable from its genome by
  // six-frame translation (no read errors involved at the genome level).
  auto cfg = small_config();
  cfg.families.num_families = 3;
  cfg.families.max_members = 3;
  const auto community = generate_community(cfg);

  OrfFinderConfig orf_cfg;
  orf_cfg.min_length = 30;
  const auto orfs = find_orfs(community.genomes, orf_cfg);
  std::size_t recovered = 0;
  for (const auto& protein : community.proteins) {
    for (const auto& orf : orfs) {
      // The gene is embedded as ATG + protein + stop, so the ORF contains
      // M + protein as a substring of one frame's stretch.
      if (orf.residues.find(protein.residues) != std::string::npos) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_EQ(recovered, community.proteins.size());
}

TEST(CommunityModel, TruthCarriedThrough) {
  const auto community = generate_community(small_config());
  EXPECT_EQ(community.proteins.size(), community.family.size());
  EXPECT_EQ(community.num_families, 6u);
}

TEST(CommunityModel, Validation) {
  auto cfg = small_config();
  cfg.num_genomes = 0;
  EXPECT_THROW(generate_community(cfg), InvalidArgument);
  cfg = small_config();
  cfg.read_length = 10;
  EXPECT_THROW(generate_community(cfg), InvalidArgument);
  cfg = small_config();
  cfg.coverage = 0.0;
  EXPECT_THROW(generate_community(cfg), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::seq
