#include "seq/dna.hpp"

#include <gtest/gtest.h>

namespace gpclust::seq {
namespace {

TEST(Dna, Validation) {
  EXPECT_TRUE(is_valid_dna("ACGT"));
  EXPECT_TRUE(is_valid_dna("acgtn"));
  EXPECT_TRUE(is_valid_dna(""));
  EXPECT_FALSE(is_valid_dna("ACGU"));
  EXPECT_FALSE(is_valid_dna("AC GT"));
}

TEST(Dna, Complement) {
  EXPECT_EQ(complement('A'), 'T');
  EXPECT_EQ(complement('T'), 'A');
  EXPECT_EQ(complement('G'), 'C');
  EXPECT_EQ(complement('C'), 'G');
  EXPECT_EQ(complement('N'), 'N');
  EXPECT_EQ(complement('a'), 'T');
  EXPECT_THROW(complement('U'), InvalidArgument);
}

TEST(Dna, ReverseComplement) {
  EXPECT_EQ(reverse_complement("ATGC"), "GCAT");
  EXPECT_EQ(reverse_complement(""), "");
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
}

TEST(Dna, ReverseComplementIsInvolution) {
  const std::string s = "ATGCCGTAGGCTAN";
  EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
}

TEST(Dna, GcContent) {
  EXPECT_DOUBLE_EQ(gc_content("GGCC"), 1.0);
  EXPECT_DOUBLE_EQ(gc_content("AATT"), 0.0);
  EXPECT_DOUBLE_EQ(gc_content("ACGT"), 0.5);
  EXPECT_DOUBLE_EQ(gc_content("GNNA"), 0.5);  // N excluded
  EXPECT_DOUBLE_EQ(gc_content(""), 0.0);
}

}  // namespace
}  // namespace gpclust::seq
