// Comm-layer fault injection and rank failure semantics: typed CommError
// with rank/op identity, world abort instead of deadlock when a rank dies
// mid-collective, per-rank retry of injected comm faults, and rank-down
// shard reassignment with a bit-identical clustering.

#include <gtest/gtest.h>

#include "core/serial_pclust.hpp"
#include "dist/dist_shingling.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"

namespace gpclust::dist {
namespace {

graph::CsrGraph fault_test_graph() {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 6;
  cfg.min_family_size = 5;
  cfg.max_family_size = 14;
  cfg.num_singletons = 5;
  cfg.seed = 2718;
  return graph::generate_planted_families(cfg).graph;
}

core::ShinglingParams fault_test_params() {
  core::ShinglingParams params;
  params.c1 = 6;
  params.c2 = 3;
  return params;
}

u64 serial_digest(const graph::CsrGraph& g,
                  const core::ShinglingParams& params) {
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();
  return serial.digest();
}

TEST(CommFault, InjectedSendFaultIsTypedFatalWithoutResilience) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  auto plan = fault::FaultPlan::parse("comm_fail@send:0");
  // No hang: the failing rank aborts the world, blocked peers throw, and
  // the originating CommError is rethrown with its rank and operation.
  try {
    distributed_cluster(g, params, 3, nullptr, nullptr, &plan);
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.op(), "send");
    EXPECT_LT(e.rank(), 3u);
  }
  EXPECT_EQ(plan.injected(), 1u);
}

TEST(CommFault, InjectedRecvFaultIsTypedFatalWithoutResilience) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  auto plan = fault::FaultPlan::parse("comm_fail@recv:2");
  EXPECT_THROW(distributed_cluster(g, params, 2, nullptr, nullptr, &plan),
               CommError);
  EXPECT_GE(plan.injected(), 1u);
}

TEST(CommFault, RetriedCommFaultsProduceIdenticalClustering) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  const u64 expected = serial_digest(g, params);

  auto plan =
      fault::FaultPlan::parse("comm_fail@send:0,comm_fail@send:5,"
                              "comm_fail@recv:1,comm_fail@recv:7");
  fault::ResiliencePolicy policy;
  policy.mode = fault::ResilienceMode::Retry;
  obs::Tracer tracer;
  auto result =
      distributed_cluster(g, params, 3, nullptr, &tracer, &plan, policy);
  result.normalize();
  EXPECT_EQ(result.digest(), expected);
  EXPECT_EQ(plan.injected(), 4u);
  EXPECT_EQ(tracer.counter("comm_retries"), 4u);
  EXPECT_EQ(tracer.counter("rank_failures"), 0u);
}

TEST(CommFault, PersistentCommFaultExhaustsRetriesIntoCommError) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  auto plan = fault::FaultPlan::parse("comm_fail@send:0-999999");
  fault::ResiliencePolicy policy;
  policy.mode = fault::ResilienceMode::Retry;
  obs::Tracer tracer;
  EXPECT_THROW(
      distributed_cluster(g, params, 2, nullptr, &tracer, &plan, policy),
      CommError);
  EXPECT_GE(tracer.counter("rank_failures"), 1u);
}

TEST(CommFault, RankDownIsFatalWithoutResilience) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  auto plan = fault::FaultPlan::parse("rank_down@1");
  try {
    distributed_cluster(g, params, 3, nullptr, nullptr, &plan);
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.op(), "rank_down");
    EXPECT_EQ(e.rank(), 1u);
  }
}

TEST(CommFault, RankDownReassignsShardsBitIdentically) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  const u64 expected = serial_digest(g, params);

  fault::ResiliencePolicy policy;
  policy.mode = fault::ResilienceMode::Fallback;
  for (const char* spec : {"rank_down@2", "rank_down@0,rank_down@3"}) {
    auto plan = fault::FaultPlan::parse(spec);
    obs::Tracer tracer;
    DistStats stats;
    auto result =
        distributed_cluster(g, params, 4, &stats, &tracer, &plan, policy);
    result.normalize();
    EXPECT_EQ(result.digest(), expected) << spec;
    EXPECT_EQ(stats.ranks_reassigned, plan.num_ranks_down()) << spec;
    EXPECT_EQ(stats.num_ranks, 4 - plan.num_ranks_down()) << spec;
    EXPECT_EQ(tracer.counter("rank_reassignments"), plan.num_ranks_down())
        << spec;
  }
}

TEST(CommFault, AllRanksDownIsFatalEvenWithResilience) {
  const auto g = fault_test_graph();
  const auto params = fault_test_params();
  auto plan = fault::FaultPlan::parse("rank_down@0,rank_down@1");
  fault::ResiliencePolicy policy;
  policy.mode = fault::ResilienceMode::Fallback;
  EXPECT_THROW(
      distributed_cluster(g, params, 2, nullptr, nullptr, &plan, policy),
      CommError);
}

TEST(CommFault, ForeignExceptionIsWrappedWithRankIdentity) {
  try {
    run_ranks(3, [](Communicator& comm) {
      comm.barrier();
      if (comm.rank() == 1) throw std::logic_error("rank 1 exploded");
      // The other ranks block on a message that will never come; the
      // abort must wake them instead of deadlocking the join.
      if (comm.rank() != 1) comm.recv<u32>(1, 42);
    });
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.rank(), 1u);
    EXPECT_EQ(e.op(), "rank_main");
    EXPECT_NE(std::string(e.what()).find("rank 1 exploded"),
              std::string::npos);
  }
}

TEST(CommFault, AbortUnblocksBarrierWaiters) {
  try {
    run_ranks(3, [](Communicator& comm) {
      if (comm.rank() == 0) throw std::runtime_error("early death");
      comm.barrier();  // rank 0 never arrives
    });
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_EQ(e.rank(), 0u);
  }
}

TEST(CommFault, RankFailureIsCountedOnTracer) {
  obs::Tracer tracer;
  RankRunOptions options;
  options.tracer = &tracer;
  EXPECT_THROW(run_ranks(
                   2,
                   [](Communicator& comm) {
                     if (comm.rank() == 1) {
                       throw std::runtime_error("boom");
                     }
                   },
                   options),
               CommError);
  EXPECT_EQ(tracer.counter("rank_failures"), 1u);
}

}  // namespace
}  // namespace gpclust::dist
