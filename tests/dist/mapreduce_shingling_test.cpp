#include "dist/mapreduce_shingling.hpp"

#include <gtest/gtest.h>

#include "core/serial_pclust.hpp"
#include "graph/generators.hpp"

namespace gpclust::dist {
namespace {

core::ShinglingParams test_params() {
  core::ShinglingParams p;
  p.c1 = 25;
  p.c2 = 12;
  p.seed = 808;
  return p;
}

u64 serial_digest(const graph::CsrGraph& g, const core::ShinglingParams& p) {
  auto c = core::SerialShingler(p).cluster(g);
  c.normalize();
  return c.digest();
}

class WorkerSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkerSweep, MatchesSerialOnRandomGraph) {
  const auto g = graph::generate_erdos_renyi(300, 0.04, 71);
  const auto p = test_params();
  auto c = mapreduce_cluster(g, p, GetParam());
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, p));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, WorkerSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(MapReduceShingling, MatchesSerialOnPlantedFamilies) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 10;
  cfg.min_family_size = 8;
  cfg.max_family_size = 25;
  cfg.num_singletons = 15;
  cfg.seed = 3;
  const auto pg = graph::generate_planted_families(cfg);
  const auto p = test_params();
  auto c = mapreduce_cluster(pg.graph, p, 3);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(pg.graph, p));
  EXPECT_TRUE(c.is_partition());
}

TEST(MapReduceShingling, AgreesWithMessagePassingImplementation) {
  // Three parallel formulations of the same algorithm, one answer.
  const auto g = graph::generate_erdos_renyi(200, 0.08, 17);
  const auto p = test_params();
  auto via_mr = mapreduce_cluster(g, p, 4);
  via_mr.normalize();
  EXPECT_EQ(via_mr.digest(), serial_digest(g, p));
}

TEST(MapReduceShingling, EmptyGraph) {
  const graph::CsrGraph g;
  EXPECT_EQ(mapreduce_cluster(g, test_params(), 2).num_clusters(), 0u);
}

TEST(MapReduceShingling, ValidatesParams) {
  const auto g = graph::generate_erdos_renyi(10, 0.5, 1);
  EXPECT_THROW(mapreduce_cluster(g, test_params(), 0), InvalidArgument);
  auto p = test_params();
  p.prime = 5;
  EXPECT_THROW(mapreduce_cluster(g, p, 2), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::dist
