#include "dist/mapreduce.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace gpclust::dist {
namespace {

TEST(MapReduce, WordCountStyleJob) {
  const std::vector<std::string> docs = {"a b a", "b c", "a"};
  std::map<char, int> counts;
  run_mapreduce<std::string, char, int>(
      docs,
      [](std::size_t, const std::string& doc,
         const std::function<void(char, int)>& emit) {
        for (char c : doc) {
          if (c != ' ') emit(c, 1);
        }
      },
      [&](const char& key, const std::vector<int>& values) {
        counts[key] = static_cast<int>(values.size());
      });
  EXPECT_EQ(counts['a'], 3);
  EXPECT_EQ(counts['b'], 2);
  EXPECT_EQ(counts['c'], 1);
}

TEST(MapReduce, ReducersSeeKeysInSortedOrder) {
  const std::vector<int> inputs = {5, 3, 9, 1};
  std::vector<int> seen;
  run_mapreduce<int, int, int>(
      inputs,
      [](std::size_t, const int& x, const std::function<void(int, int)>& emit) {
        emit(x, x);
      },
      [&](const int& key, const std::vector<int>&) { seen.push_back(key); });
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 9}));
}

TEST(MapReduce, ValuesPreserveEmissionOrderWithinKey) {
  const std::vector<int> inputs = {0, 1, 2, 3};
  std::vector<int> values_for_key;
  run_mapreduce<int, int, int>(
      inputs,
      [](std::size_t i, const int&, const std::function<void(int, int)>& emit) {
        emit(7, static_cast<int>(i));  // all inputs emit to one key
      },
      [&](const int&, const std::vector<int>& values) {
        values_for_key = values;
      },
      {.num_workers = 1});
  EXPECT_EQ(values_for_key, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MapReduce, WorkerCountDoesNotChangeResult) {
  std::vector<int> inputs(200);
  std::iota(inputs.begin(), inputs.end(), 0);
  auto run_with = [&](std::size_t workers) {
    std::map<int, std::size_t> result;
    run_mapreduce<int, int, int>(
        inputs,
        [](std::size_t, const int& x,
           const std::function<void(int, int)>& emit) {
          emit(x % 7, x);
        },
        [&](const int& key, const std::vector<int>& values) {
          std::size_t sum = 0;
          for (int v : values) sum += static_cast<std::size_t>(v);
          result[key] = sum;
        },
        {.num_workers = workers});
    return result;
  };
  const auto one = run_with(1);
  EXPECT_EQ(one, run_with(2));
  EXPECT_EQ(one, run_with(8));
}

TEST(MapReduce, EmptyInputsRunNoReducers) {
  bool reduced = false;
  run_mapreduce<int, int, int>(
      {}, [](std::size_t, const int&, const std::function<void(int, int)>&) {},
      [&](const int&, const std::vector<int>&) { reduced = true; });
  EXPECT_FALSE(reduced);
}

TEST(MapReduce, MapperMayEmitNothing) {
  const std::vector<int> inputs = {1, 2, 3};
  std::size_t reduce_calls = 0;
  run_mapreduce<int, int, int>(
      inputs,
      [](std::size_t, const int& x, const std::function<void(int, int)>& emit) {
        if (x == 2) emit(0, x);  // only one input emits
      },
      [&](const int&, const std::vector<int>&) { ++reduce_calls; });
  EXPECT_EQ(reduce_calls, 1u);
}

TEST(MapReduce, Validation) {
  // The statement contains commas outside parentheses (braced options +
  // lambda parameter lists), so it must be parenthesized as a whole or the
  // macro sees more than two arguments.
  EXPECT_THROW(
      (run_mapreduce<int, int, int>(
          {1},
          [](std::size_t, const int&, const std::function<void(int, int)>&) {},
          [](const int&, const std::vector<int>&) {}, {.num_workers = 0})),
      InvalidArgument);
}

}  // namespace
}  // namespace gpclust::dist
