#include "dist/dist_shingling.hpp"

#include <gtest/gtest.h>

#include "core/serial_pclust.hpp"
#include "graph/generators.hpp"

namespace gpclust::dist {
namespace {

core::ShinglingParams test_params() {
  core::ShinglingParams p;
  p.c1 = 25;
  p.c2 = 12;
  p.seed = 321;
  return p;
}

u64 serial_digest(const graph::CsrGraph& g, const core::ShinglingParams& p) {
  auto c = core::SerialShingler(p).cluster(g);
  c.normalize();
  return c.digest();
}

class RankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RankSweep, MatchesSerialOnRandomGraph) {
  const auto g = graph::generate_erdos_renyi(300, 0.04, 61);
  const auto p = test_params();
  auto c = distributed_cluster(g, p, GetParam());
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, p));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, RankSweep,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(DistShingling, MatchesSerialOnPlantedFamilies) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 12;
  cfg.min_family_size = 8;
  cfg.max_family_size = 30;
  cfg.num_singletons = 20;
  cfg.seed = 77;
  const auto pg = graph::generate_planted_families(cfg);
  const auto p = test_params();
  auto c = distributed_cluster(pg.graph, p, 4);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(pg.graph, p));
  EXPECT_TRUE(c.is_partition());
}

TEST(DistShingling, OverlappingModeMatchesSerial) {
  const auto g = graph::generate_erdos_renyi(150, 0.1, 9);
  auto p = test_params();
  p.mode = core::ReportMode::Overlapping;
  auto c = distributed_cluster(g, p, 3);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, p));
}

TEST(DistShingling, MoreRanksThanVertices) {
  const auto g = graph::generate_erdos_renyi(6, 0.9, 5);
  const auto p = test_params();
  auto c = distributed_cluster(g, p, 16);
  c.normalize();
  EXPECT_EQ(c.digest(), serial_digest(g, p));
}

TEST(DistShingling, StatsReportExchanges) {
  const auto g = graph::generate_erdos_renyi(200, 0.08, 3);
  DistStats stats;
  distributed_cluster(g, test_params(), 4, &stats);
  EXPECT_EQ(stats.num_ranks, 4u);
  EXPECT_GT(stats.tuples_exchanged_pass1, 0u);
  EXPECT_GT(stats.tuples_exchanged_pass2, 0u);
}

TEST(DistShingling, EmptyGraph) {
  const graph::CsrGraph g;
  const auto c = distributed_cluster(g, test_params(), 3);
  EXPECT_EQ(c.num_clusters(), 0u);
}

TEST(DistShingling, ValidatesParams) {
  const auto g = graph::generate_erdos_renyi(10, 0.5, 1);
  auto p = test_params();
  p.prime = 5;
  EXPECT_THROW(distributed_cluster(g, p, 2), InvalidArgument);
  EXPECT_THROW(distributed_cluster(g, test_params(), 0), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::dist
