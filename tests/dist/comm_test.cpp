#include "dist/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace gpclust::dist {
namespace {

TEST(Comm, SendRecvPointToPoint) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<u32>(1, 7, {10, 20, 30});
    } else {
      EXPECT_EQ(comm.recv<u32>(0, 7), (std::vector<u32>{10, 20, 30}));
    }
  });
}

TEST(Comm, SelfSendWorks) {
  run_ranks(1, [](Communicator& comm) {
    comm.send<u64>(0, 1, {42});
    EXPECT_EQ(comm.recv<u64>(0, 1), (std::vector<u64>{42}));
  });
}

TEST(Comm, FifoOrderPerChannel) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (u32 i = 0; i < 50; ++i) comm.send<u32>(1, 3, {i});
    } else {
      for (u32 i = 0; i < 50; ++i) {
        EXPECT_EQ(comm.recv<u32>(0, 3)[0], i);
      }
    }
  });
}

TEST(Comm, TagsAreIndependentChannels) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<u32>(1, 1, {111});
      comm.send<u32>(1, 2, {222});
    } else {
      // Receive in reverse tag order: must not block or mix.
      EXPECT_EQ(comm.recv<u32>(0, 2)[0], 222u);
      EXPECT_EQ(comm.recv<u32>(0, 1)[0], 111u);
    }
  });
}

TEST(Comm, EmptyPayloadDelivered) {
  run_ranks(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send<u32>(1, 5, {});
    } else {
      EXPECT_TRUE(comm.recv<u32>(0, 5).empty());
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> before{0}, after{0};
  run_ranks(4, [&](Communicator& comm) {
    ++before;
    comm.barrier();
    EXPECT_EQ(before.load(), 4) << "barrier released too early";
    ++after;
    comm.barrier();
    EXPECT_EQ(after.load(), 4);
  });
}

TEST(Comm, AllToAllRoutesBuckets) {
  run_ranks(3, [](Communicator& comm) {
    // Rank r sends value 100*r + d to rank d.
    std::vector<std::vector<u32>> out(3);
    for (RankId d = 0; d < 3; ++d) {
      out[d] = {static_cast<u32>(100 * comm.rank() + d)};
    }
    const auto in = comm.all_to_all(out);
    for (RankId s = 0; s < 3; ++s) {
      ASSERT_EQ(in[s].size(), 1u);
      EXPECT_EQ(in[s][0], 100 * s + comm.rank());
    }
  });
}

TEST(Comm, GatherToRootConcatenatesInRankOrder) {
  run_ranks(4, [](Communicator& comm) {
    const std::vector<u32> mine = {static_cast<u32>(comm.rank()),
                                   static_cast<u32>(comm.rank())};
    const auto all = comm.gather_to_root(mine);
    if (comm.rank() == 0) {
      EXPECT_EQ(all, (std::vector<u32>{0, 0, 1, 1, 2, 2, 3, 3}));
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Comm, BroadcastReachesEveryRank) {
  run_ranks(3, [](Communicator& comm) {
    std::vector<u64> payload;
    if (comm.rank() == 0) payload = {7, 8, 9};
    EXPECT_EQ(comm.broadcast(payload), (std::vector<u64>{7, 8, 9}));
  });
}

TEST(Comm, AllReduceSum) {
  run_ranks(5, [](Communicator& comm) {
    EXPECT_EQ(comm.all_reduce_sum(comm.rank() + 1), 15u);  // 1+2+3+4+5
  });
}

TEST(Comm, ExclusivePrefixSum) {
  run_ranks(4, [](Communicator& comm) {
    // values 10, 20, 30, 40 -> prefixes 0, 10, 30, 60.
    const u64 prefix = comm.exclusive_prefix_sum(10 * (comm.rank() + 1));
    EXPECT_EQ(prefix, (std::vector<u64>{0, 10, 30, 60})[comm.rank()]);
  });
}

TEST(Comm, ExceptionsPropagateAfterJoin) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& comm) {
                           if (comm.rank() == 1) {
                             throw std::runtime_error("rank failure");
                           }
                         }),
               std::runtime_error);
}

TEST(Comm, Validation) {
  EXPECT_THROW(run_ranks(0, [](Communicator&) {}), InvalidArgument);
  run_ranks(2, [](Communicator& comm) {
    EXPECT_THROW(comm.send<u32>(5, 0, {1}), InvalidArgument);
  });
}

}  // namespace
}  // namespace gpclust::dist
