#include "align/homology_graph.hpp"

#include <gtest/gtest.h>

#include "seq/family_model.hpp"

namespace gpclust::align {
namespace {

TEST(HomologyGraph, ConnectsFamilyMembersNotStrangers) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 6;
  cfg.min_members = 4;
  cfg.max_members = 8;
  cfg.substitution_rate = 0.05;
  cfg.indel_rate = 0.0;
  cfg.fragment_min_fraction = 0.9;
  cfg.num_background_orfs = 10;
  cfg.seed = 3;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig hcfg;
  hcfg.num_threads = 1;
  HomologyGraphStats stats;
  const auto g = build_homology_graph(mg.sequences, hcfg, &stats);

  ASSERT_EQ(g.num_vertices(), mg.sequences.size());
  EXPECT_GT(stats.num_candidate_pairs, 0u);
  EXPECT_GT(g.num_edges(), 0u);

  // Edges must be overwhelmingly intra-family; background ORFs isolated.
  std::size_t intra = 0, inter = 0;
  for (std::size_t u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      if (v <= u) continue;
      (mg.family[u] == mg.family[v] ? intra : inter) += 1;
    }
  }
  EXPECT_GT(intra, 0u);
  EXPECT_EQ(inter, 0u);

  // Most family pairs should be recovered at this low divergence.
  std::size_t family_pairs = 0;
  for (std::size_t u = 0; u < mg.sequences.size(); ++u) {
    for (std::size_t v = u + 1; v < mg.sequences.size(); ++v) {
      if (mg.family[u] == mg.family[v]) ++family_pairs;
    }
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(family_pairs),
            0.6);
}

TEST(HomologyGraph, ThresholdControlsEdgeCount) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 4;
  cfg.min_members = 5;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.15;
  cfg.seed = 8;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig loose;
  loose.num_threads = 1;
  loose.min_score_per_residue = 0.5;
  loose.min_score = 20;
  HomologyGraphConfig strict = loose;
  strict.min_score_per_residue = 4.0;
  strict.min_score = 200;

  const auto g_loose = build_homology_graph(mg.sequences, loose);
  const auto g_strict = build_homology_graph(mg.sequences, strict);
  EXPECT_GE(g_loose.num_edges(), g_strict.num_edges());
  EXPECT_GT(g_loose.num_edges(), 0u);
}

TEST(HomologyGraph, IdentityThresholdPrunesEdges) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 4;
  cfg.min_members = 5;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.25;  // divergent members: moderate identity
  cfg.seed = 12;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig loose;
  loose.num_threads = 1;
  loose.min_score_per_residue = 0.3;
  loose.min_score = 15;
  HomologyGraphConfig strict = loose;
  strict.min_identity = 0.95;  // members differ by ~25% substitutions

  const auto g_loose = build_homology_graph(mg.sequences, loose);
  const auto g_strict = build_homology_graph(mg.sequences, strict);
  EXPECT_GT(g_loose.num_edges(), 0u);
  EXPECT_LT(g_strict.num_edges(), g_loose.num_edges());
}

TEST(HomologyGraph, ParallelAndSerialAgree) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 5;
  cfg.min_members = 4;
  cfg.max_members = 6;
  cfg.seed = 21;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig serial_cfg;
  serial_cfg.num_threads = 1;
  HomologyGraphConfig parallel_cfg;
  parallel_cfg.num_threads = 4;

  const auto a = build_homology_graph(mg.sequences, serial_cfg);
  const auto b = build_homology_graph(mg.sequences, parallel_cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.adjacency(), b.adjacency());
  EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(HomologyGraph, EmptyInput) {
  const auto g = build_homology_graph({}, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace gpclust::align
