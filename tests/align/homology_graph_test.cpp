#include "align/homology_graph.hpp"

#include <gtest/gtest.h>

#include "device/device_context.hpp"
#include "seq/family_model.hpp"

namespace gpclust::align {
namespace {

TEST(HomologyGraph, ConnectsFamilyMembersNotStrangers) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 6;
  cfg.min_members = 4;
  cfg.max_members = 8;
  cfg.substitution_rate = 0.05;
  cfg.indel_rate = 0.0;
  cfg.fragment_min_fraction = 0.9;
  cfg.num_background_orfs = 10;
  cfg.seed = 3;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig hcfg;
  hcfg.num_threads = 1;
  HomologyGraphStats stats;
  const auto g = build_homology_graph(mg.sequences, hcfg, &stats);

  ASSERT_EQ(g.num_vertices(), mg.sequences.size());
  EXPECT_GT(stats.num_candidate_pairs, 0u);
  EXPECT_GT(g.num_edges(), 0u);

  // Edges must be overwhelmingly intra-family; background ORFs isolated.
  std::size_t intra = 0, inter = 0;
  for (std::size_t u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      if (v <= u) continue;
      (mg.family[u] == mg.family[v] ? intra : inter) += 1;
    }
  }
  EXPECT_GT(intra, 0u);
  EXPECT_EQ(inter, 0u);

  // Most family pairs should be recovered at this low divergence.
  std::size_t family_pairs = 0;
  for (std::size_t u = 0; u < mg.sequences.size(); ++u) {
    for (std::size_t v = u + 1; v < mg.sequences.size(); ++v) {
      if (mg.family[u] == mg.family[v]) ++family_pairs;
    }
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(family_pairs),
            0.6);
}

TEST(HomologyGraph, ThresholdControlsEdgeCount) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 4;
  cfg.min_members = 5;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.15;
  cfg.seed = 8;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig loose;
  loose.num_threads = 1;
  loose.min_score_per_residue = 0.5;
  loose.min_score = 20;
  HomologyGraphConfig strict = loose;
  strict.min_score_per_residue = 4.0;
  strict.min_score = 200;

  const auto g_loose = build_homology_graph(mg.sequences, loose);
  const auto g_strict = build_homology_graph(mg.sequences, strict);
  EXPECT_GE(g_loose.num_edges(), g_strict.num_edges());
  EXPECT_GT(g_loose.num_edges(), 0u);
}

TEST(HomologyGraph, IdentityThresholdPrunesEdges) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 4;
  cfg.min_members = 5;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.25;  // divergent members: moderate identity
  cfg.seed = 12;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig loose;
  loose.num_threads = 1;
  loose.min_score_per_residue = 0.3;
  loose.min_score = 15;
  HomologyGraphConfig strict = loose;
  strict.min_identity = 0.95;  // members differ by ~25% substitutions

  const auto g_loose = build_homology_graph(mg.sequences, loose);
  const auto g_strict = build_homology_graph(mg.sequences, strict);
  EXPECT_GT(g_loose.num_edges(), 0u);
  EXPECT_LT(g_strict.num_edges(), g_loose.num_edges());
}

TEST(HomologyGraph, ParallelAndSerialAgree) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 5;
  cfg.min_members = 4;
  cfg.max_members = 6;
  cfg.seed = 21;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig serial_cfg;
  serial_cfg.num_threads = 1;
  HomologyGraphConfig parallel_cfg;
  parallel_cfg.num_threads = 4;

  const auto a = build_homology_graph(mg.sequences, serial_cfg);
  const auto b = build_homology_graph(mg.sequences, parallel_cfg);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.adjacency(), b.adjacency());
  EXPECT_EQ(a.offsets(), b.offsets());
}

TEST(HomologyGraph, EmptyInput) {
  const auto g = build_homology_graph({}, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(HomologyGraph, SimdAndScalarPathsProduceIdenticalGraphs) {
  // The acceptance bar for the fast path: switching the verify backend
  // must not move a single edge, in either seed mode.
  seq::FamilyModelConfig cfg;
  cfg.num_families = 6;
  cfg.min_members = 4;
  cfg.max_members = 7;
  cfg.substitution_rate = 0.12;
  cfg.indel_rate = 0.02;
  cfg.seed = 44;
  const auto mg = seq::generate_metagenome(cfg);

  for (SeedMode mode : {SeedMode::KmerCount, SeedMode::MaximalMatch}) {
    HomologyGraphConfig simd_cfg;
    simd_cfg.seed_mode = mode;
    simd_cfg.num_threads = 1;
    simd_cfg.verify_backend = VerifyBackend::HostSimd;
    HomologyGraphConfig scalar_cfg = simd_cfg;
    scalar_cfg.verify_backend = VerifyBackend::HostScalar;

    HomologyGraphStats simd_stats, scalar_stats;
    const auto g_simd = build_homology_graph(mg.sequences, simd_cfg, &simd_stats);
    const auto g_scalar =
        build_homology_graph(mg.sequences, scalar_cfg, &scalar_stats);
    EXPECT_EQ(g_simd.adjacency(), g_scalar.adjacency());
    EXPECT_EQ(g_simd.offsets(), g_scalar.offsets());
    EXPECT_EQ(simd_stats.num_score_alignments,
              scalar_stats.num_score_alignments);
    EXPECT_EQ(simd_stats.num_edges, scalar_stats.num_edges);
  }
}

TEST(HomologyGraph, SimdAndScalarAgreeWithIdentityThreshold) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 4;
  cfg.min_members = 4;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.2;
  cfg.seed = 63;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig simd_cfg;
  simd_cfg.num_threads = 1;
  simd_cfg.min_identity = 0.7;
  simd_cfg.min_score_per_residue = 0.5;
  simd_cfg.min_score = 20;
  HomologyGraphConfig scalar_cfg = simd_cfg;
  scalar_cfg.verify_backend = VerifyBackend::HostScalar;

  const auto g_simd = build_homology_graph(mg.sequences, simd_cfg);
  const auto g_scalar = build_homology_graph(mg.sequences, scalar_cfg);
  EXPECT_EQ(g_simd.adjacency(), g_scalar.adjacency());
  EXPECT_EQ(g_simd.offsets(), g_scalar.offsets());
}

TEST(HomologyGraph, StatsSeparateScoreAndTracedRuns) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 4;
  cfg.min_members = 4;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.1;
  cfg.seed = 91;
  const auto mg = seq::generate_metagenome(cfg);

  // Without an identity threshold no traceback ever runs, and every
  // candidate either hits the exact filter or one score DP.
  HomologyGraphConfig plain;
  plain.num_threads = 1;
  HomologyGraphStats s0;
  build_homology_graph(mg.sequences, plain, &s0);
  EXPECT_EQ(s0.num_traced_alignments, 0u);
  EXPECT_EQ(s0.num_alignments, s0.num_score_alignments);
  EXPECT_EQ(s0.num_score_alignments + s0.num_exact_rejects,
            s0.num_candidate_pairs);
  EXPECT_EQ(s0.simd.runs_8bit + s0.simd.rescues_16bit +
                s0.simd.scalar_fallbacks,
            s0.num_score_alignments);

  // With an identity threshold, traced DP runs add on top of score runs —
  // the former num_alignments = pairs.size() undercounted this work.
  HomologyGraphConfig with_identity = plain;
  with_identity.min_identity = 0.1;
  HomologyGraphStats s1;
  build_homology_graph(mg.sequences, with_identity, &s1);
  EXPECT_GT(s1.num_traced_alignments, 0u);
  EXPECT_EQ(s1.num_alignments,
            s1.num_score_alignments + s1.num_traced_alignments);
  EXPECT_GT(s1.num_alignments, s1.num_candidate_pairs - s1.num_exact_rejects);

  // Counter attribution is backend-independent: the scalar and
  // device-batched backends must report the exact same score/traced/reject
  // breakdown as the SIMD run above — a pair is scored exactly once no
  // matter where (or in how many batches) the DP runs.
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  for (HomologyGraphStats base : {s0, s1}) {
    HomologyGraphConfig cfg_scalar =
        base.num_traced_alignments > 0 ? with_identity : plain;
    cfg_scalar.verify_backend = VerifyBackend::HostScalar;
    HomologyGraphConfig cfg_device = cfg_scalar;
    cfg_device.verify_backend = VerifyBackend::DeviceBatched;
    cfg_device.device_verify.context = &ctx;
    cfg_device.device_verify.max_batch_pairs = 7;  // force multi-batch
    cfg_device.device_verify.num_streams = 2;

    HomologyGraphStats st_scalar, st_device;
    build_homology_graph(mg.sequences, cfg_scalar, &st_scalar);
    build_homology_graph(mg.sequences, cfg_device, &st_device);
    for (const HomologyGraphStats* st : {&st_scalar, &st_device}) {
      EXPECT_EQ(st->num_score_alignments, base.num_score_alignments);
      EXPECT_EQ(st->num_traced_alignments, base.num_traced_alignments);
      EXPECT_EQ(st->num_exact_rejects, base.num_exact_rejects);
      EXPECT_EQ(st->num_surviving_pairs, base.num_surviving_pairs);
      EXPECT_EQ(st->num_alignments, base.num_alignments);
      EXPECT_EQ(st->num_edges, base.num_edges);
    }
    EXPECT_GT(st_device.device.num_batches, 1u);
    EXPECT_EQ(ctx.arena().used(), 0u);
  }
}

TEST(HomologyGraph, TracerRecordsPhaseSpansAndCounters) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 3;
  cfg.min_members = 3;
  cfg.max_members = 4;
  cfg.seed = 7;
  const auto mg = seq::generate_metagenome(cfg);

  obs::Tracer tracer;
  HomologyGraphConfig hcfg;
  hcfg.num_threads = 1;
  hcfg.tracer = &tracer;
  HomologyGraphStats stats;
  build_homology_graph(mg.sequences, hcfg, &stats);

  EXPECT_EQ(tracer.counter("homology_candidate_pairs"),
            stats.num_candidate_pairs);
  EXPECT_EQ(tracer.counter("homology_alignments"), stats.num_alignments);
  EXPECT_EQ(tracer.counter("homology_edges"), stats.num_edges);
  // All three phase spans present, all host-measured.
  for (const char* phase : {"homology.seed", "homology.verify",
                            "homology.graph"}) {
    bool found = false;
    for (const auto& e : tracer.events()) {
      if (e.name == phase) {
        found = true;
        EXPECT_EQ(e.domain, obs::Domain::HostMeasured);
      }
    }
    EXPECT_TRUE(found) << phase;
  }
}

TEST(HomologyGraphSeedMode, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_seed_mode("kmer"), SeedMode::KmerCount);
  EXPECT_EQ(parse_seed_mode("maximal"), SeedMode::MaximalMatch);
  EXPECT_EQ(parse_seed_mode("minhash"), SeedMode::MinHashLsh);
  EXPECT_EQ(parse_seed_mode("spgemm"), SeedMode::SpGemm);
  for (const auto mode : {SeedMode::KmerCount, SeedMode::MaximalMatch,
                          SeedMode::MinHashLsh, SeedMode::SpGemm}) {
    EXPECT_EQ(parse_seed_mode(std::string(seed_mode_name(mode))), mode);
  }
  EXPECT_THROW(parse_seed_mode("lsh"), InvalidArgument);
  EXPECT_THROW(parse_seed_mode(""), InvalidArgument);
}

namespace {
seq::SyntheticMetagenome seed_mode_workload(u64 seed) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 8;
  cfg.min_members = 3;
  cfg.max_members = 6;
  cfg.num_background_orfs = 10;
  cfg.seed = seed;
  return seq::generate_metagenome(cfg);
}
}  // namespace

TEST(HomologyGraphSeedMode, DefaultKmerEdgeSetIsPinned) {
  // The default-config edge set predates the SeedMode seam; these digests
  // were captured before it existed and must never move while
  // seed_mode == KmerCount stays the default. (A digest move means the
  // default candidate stream — not just its packaging — changed.)
  struct Pin {
    u64 seed;
    u64 digest;
  };
  for (const auto& pin : {Pin{7, 0x145026cc057940e0ull},
                          Pin{1234, 0xc83772c0497efd44ull}}) {
    const auto mg = seed_mode_workload(pin.seed);
    HomologyGraphConfig cfg;
    cfg.num_threads = 1;
    EXPECT_EQ(build_homology_graph(mg.sequences, cfg).digest(), pin.digest)
        << "seed " << pin.seed;
  }
}

TEST(HomologyGraphSeedMode, SpGemmEmitsBitIdenticalEdges) {
  for (const u64 seed : {u64{7}, u64{1234}}) {
    const auto mg = seed_mode_workload(seed);
    HomologyGraphConfig kmer_cfg;
    kmer_cfg.num_threads = 1;
    HomologyGraphConfig spgemm_cfg = kmer_cfg;
    spgemm_cfg.seed_mode = SeedMode::SpGemm;
    HomologyGraphStats ks, ss;
    const u64 kd = build_homology_graph(mg.sequences, kmer_cfg, &ks).digest();
    const u64 sd = build_homology_graph(mg.sequences, spgemm_cfg, &ss).digest();
    EXPECT_EQ(sd, kd) << "seed " << seed;
    EXPECT_EQ(ss.num_candidate_pairs, ks.num_candidate_pairs);
  }
}

TEST(HomologyGraphSeedMode, MinHashDigestStableAcrossThreadsAndBackends) {
  const auto mg = seed_mode_workload(7);
  HomologyGraphConfig cfg;
  cfg.seed_mode = SeedMode::MinHashLsh;
  cfg.num_threads = 1;
  HomologyGraphStats base_stats;
  const u64 expected =
      build_homology_graph(mg.sequences, cfg, &base_stats).digest();
  EXPECT_GT(base_stats.num_edges, 0u);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    HomologyGraphConfig t = cfg;
    t.num_threads = threads;
    EXPECT_EQ(build_homology_graph(mg.sequences, t).digest(), expected)
        << threads << " threads";
  }
  HomologyGraphConfig scalar = cfg;
  scalar.verify_backend = VerifyBackend::HostScalar;
  EXPECT_EQ(build_homology_graph(mg.sequences, scalar).digest(), expected);
}

TEST(HomologyGraphSeedMode, SeedPeakBytesReportedAndTraced) {
  const auto mg = seed_mode_workload(1234);
  for (const auto mode : {SeedMode::KmerCount, SeedMode::MinHashLsh,
                          SeedMode::SpGemm}) {
    obs::Tracer tracer;
    HomologyGraphConfig cfg;
    cfg.seed_mode = mode;
    cfg.num_threads = 1;
    cfg.tracer = &tracer;
    HomologyGraphStats stats;
    build_homology_graph(mg.sequences, cfg, &stats);
    EXPECT_GT(stats.seed_peak_candidate_bytes, 0u)
        << seed_mode_name(mode);
    EXPECT_EQ(tracer.counter("homology_seed_peak_candidate_bytes"),
              stats.seed_peak_candidate_bytes)
        << seed_mode_name(mode);
    bool sketch_span = false;
    for (const auto& e : tracer.events()) {
      if (e.name == "homology.sketch") sketch_span = true;
    }
    EXPECT_EQ(sketch_span, mode == SeedMode::MinHashLsh)
        << seed_mode_name(mode);
  }
}

}  // namespace
}  // namespace gpclust::align
