#include "align/smith_waterman.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "align/blosum.hpp"
#include "seq/alphabet.hpp"
#include "util/rng.hpp"

namespace gpclust::align {
namespace {

/// Brute-force reference: full 2D Gotoh matrices, no optimizations.
int reference_sw(std::string_view a, std::string_view b,
                 const AlignmentParams& p) {
  const std::size_t n = a.size(), m = b.size();
  const int kNeg = -1000000;
  std::vector<std::vector<int>> H(n + 1, std::vector<int>(m + 1, 0));
  std::vector<std::vector<int>> E(n + 1, std::vector<int>(m + 1, kNeg));
  std::vector<std::vector<int>> F(n + 1, std::vector<int>(m + 1, kNeg));
  int best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      E[i][j] = std::max(E[i - 1][j] - p.gap_extend,
                         H[i - 1][j] - p.gap_open - p.gap_extend);
      F[i][j] = std::max(F[i][j - 1] - p.gap_extend,
                         H[i][j - 1] - p.gap_open - p.gap_extend);
      const int diag = H[i - 1][j - 1] + blosum62(a[i - 1], b[j - 1]);
      H[i][j] = std::max({0, diag, E[i][j], F[i][j]});
      best = std::max(best, H[i][j]);
    }
  }
  return best;
}

std::string random_protein(util::Xoshiro256& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) {
    c = seq::kResidues[rng.next_below(seq::kNumStandardResidues)];
  }
  return s;
}

TEST(SmithWaterman, IdenticalSequencesScoreSelfAlignment) {
  const std::string s = "MKVLAAGGHTREQW";
  int expected = 0;
  for (char c : s) expected += blosum62(c, c);
  const auto result = smith_waterman(s, s);
  EXPECT_EQ(result.score, expected);
  EXPECT_EQ(result.a_end, s.size());
  EXPECT_EQ(result.b_end, s.size());
}

TEST(SmithWaterman, LocalAlignmentIgnoresFlanks) {
  // A shared core with unrelated flanks must score at least the core.
  const std::string core = "WWWHHHKKKFFF";
  const std::string a = "AAAAA" + core + "GGGGG";
  const std::string b = "PPPPP" + core + "LLLLL";
  int core_score = 0;
  for (char c : core) core_score += blosum62(c, c);
  EXPECT_GE(smith_waterman(a, b).score, core_score);
}

TEST(SmithWaterman, EmptyInputsScoreZero) {
  EXPECT_EQ(smith_waterman("", "MKV").score, 0);
  EXPECT_EQ(smith_waterman("MKV", "").score, 0);
  EXPECT_EQ(smith_waterman("", "").score, 0);
}

TEST(SmithWaterman, UnrelatedShortSequencesScoreLow) {
  // Score can never go negative, and dissimilar residues stay near zero.
  const auto r = smith_waterman("CCCC", "GGGG");
  EXPECT_GE(r.score, 0);
  EXPECT_LT(r.score, 4);
}

TEST(SmithWaterman, GapAlignmentBeatsMismatchWhenCheap) {
  // Deleting one residue: "MKVVLA" vs "MKVLA".
  AlignmentParams cheap_gaps{.gap_open = 1, .gap_extend = 1};
  const auto with_gap = smith_waterman("MKVVLA", "MKVLA", cheap_gaps);
  int full = 0;
  for (char c : std::string("MKVLA")) full += blosum62(c, c);
  EXPECT_GE(with_gap.score, full - 2);
}

TEST(SmithWaterman, MatchesBruteForceReferenceOnRandomInputs) {
  util::Xoshiro256 rng(77);
  const AlignmentParams params;
  for (int iter = 0; iter < 40; ++iter) {
    const auto a = random_protein(rng, 5 + rng.next_below(60));
    const auto b = random_protein(rng, 5 + rng.next_below(60));
    EXPECT_EQ(smith_waterman(a, b, params).score,
              reference_sw(a, b, params))
        << "a=" << a << " b=" << b;
  }
}

TEST(SmithWaterman, MatchesReferenceWithVariousGapPenalties) {
  util::Xoshiro256 rng(123);
  for (int go : {0, 2, 5, 11}) {
    for (int ge : {1, 3}) {
      const AlignmentParams p{.gap_open = go, .gap_extend = ge};
      for (int iter = 0; iter < 10; ++iter) {
        const auto a = random_protein(rng, 10 + rng.next_below(40));
        const auto b = random_protein(rng, 10 + rng.next_below(40));
        EXPECT_EQ(smith_waterman(a, b, p).score, reference_sw(a, b, p));
      }
    }
  }
}

TEST(SmithWaterman, NegativeGapPenaltyRejected) {
  AlignmentParams p{.gap_open = -1, .gap_extend = 1};
  EXPECT_THROW(smith_waterman("MKV", "MKV", p), InvalidArgument);
}

TEST(SmithWatermanTraced, IdenticalSequencesFullIdentity) {
  const std::string s = "MKVLAAGGHTREQW";
  const auto t = smith_waterman_traced(s, s);
  EXPECT_EQ(t.score, smith_waterman(s, s).score);
  EXPECT_EQ(t.a_begin, 0u);
  EXPECT_EQ(t.a_end, s.size());
  EXPECT_EQ(t.b_begin, 0u);
  EXPECT_EQ(t.b_end, s.size());
  EXPECT_EQ(t.matches, s.size());
  EXPECT_EQ(t.alignment_length, s.size());
  EXPECT_DOUBLE_EQ(t.identity(), 1.0);
  EXPECT_EQ(t.ops, std::string(s.size(), '|'));
}

TEST(SmithWatermanTraced, ScoreAlwaysMatchesScoreOnlyVariant) {
  util::Xoshiro256 rng(41);
  for (int iter = 0; iter < 30; ++iter) {
    const auto a = random_protein(rng, 5 + rng.next_below(60));
    const auto b = random_protein(rng, 5 + rng.next_below(60));
    EXPECT_EQ(smith_waterman_traced(a, b).score, smith_waterman(a, b).score);
  }
}

TEST(SmithWatermanTraced, LocatesTheSharedCore) {
  const std::string core = "WWWHHHKKKFFF";
  const std::string a = "AAAAA" + core + "GGGGG";
  const std::string b = "PPPPP" + core + "LLLLL";
  const auto t = smith_waterman_traced(a, b);
  // The aligned window must cover the planted core on both sequences.
  EXPECT_LE(t.a_begin, 5u);
  EXPECT_GE(t.a_end, 5u + core.size());
  EXPECT_LE(t.b_begin, 5u);
  EXPECT_GE(t.b_end, 5u + core.size());
  EXPECT_GE(t.matches, core.size());
}

TEST(SmithWatermanTraced, SubstitutionLowersIdentity) {
  const std::string a = "WWWHHHKKKFFF";
  std::string b = a;
  b[5] = 'Y';  // one substitution
  const auto t = smith_waterman_traced(a, b);
  EXPECT_EQ(t.alignment_length, a.size());
  EXPECT_EQ(t.matches, a.size() - 1);
  EXPECT_EQ(t.ops[5], '.');
}

TEST(SmithWatermanTraced, GapOpsRecorded) {
  AlignmentParams cheap{.gap_open = 1, .gap_extend = 1};
  // b lacks the doubled V, so one 'a' column (gap in b) must appear.
  const auto t = smith_waterman_traced("WWWHHVVKKKFFF", "WWWHHVKKKFFF", cheap);
  EXPECT_NE(t.ops.find('a'), std::string::npos);
  // ops length = matches + substitutions + gaps; spans consistent.
  std::size_t a_cols = 0, b_cols = 0;
  for (char op : t.ops) {
    if (op != 'b') ++a_cols;
    if (op != 'a') ++b_cols;
  }
  EXPECT_EQ(a_cols, t.a_end - t.a_begin);
  EXPECT_EQ(b_cols, t.b_end - t.b_begin);
}

TEST(SmithWatermanTraced, ColumnAccountingHoldsOnRandomPairs) {
  util::Xoshiro256 rng(53);
  for (int iter = 0; iter < 25; ++iter) {
    const auto a = random_protein(rng, 10 + rng.next_below(50));
    const auto b = random_protein(rng, 10 + rng.next_below(50));
    const auto t = smith_waterman_traced(a, b);
    std::size_t matches = 0, a_cols = 0, b_cols = 0;
    for (std::size_t c = 0; c < t.ops.size(); ++c) {
      if (t.ops[c] == '|') ++matches;
      if (t.ops[c] != 'b') ++a_cols;
      if (t.ops[c] != 'a') ++b_cols;
    }
    EXPECT_EQ(matches, t.matches);
    EXPECT_EQ(a_cols, t.a_end - t.a_begin);
    EXPECT_EQ(b_cols, t.b_end - t.b_begin);
    EXPECT_EQ(t.alignment_length, t.ops.size());
    EXPECT_LE(t.identity(), 1.0);
  }
}

TEST(SmithWatermanTraced, EmptyInputs) {
  const auto t = smith_waterman_traced("", "MKV");
  EXPECT_EQ(t.score, 0);
  EXPECT_EQ(t.alignment_length, 0u);
  EXPECT_DOUBLE_EQ(t.identity(), 0.0);
}

TEST(SmithWatermanBanded, WideBandMatchesFull) {
  util::Xoshiro256 rng(9);
  for (int iter = 0; iter < 20; ++iter) {
    const auto a = random_protein(rng, 10 + rng.next_below(50));
    const auto b = random_protein(rng, 10 + rng.next_below(50));
    const auto full = smith_waterman(a, b);
    const auto banded =
        smith_waterman_banded(a, b, std::max(a.size(), b.size()));
    EXPECT_EQ(banded.score, full.score);
  }
}

TEST(SmithWatermanBanded, NeverOverestimates) {
  util::Xoshiro256 rng(31);
  for (int iter = 0; iter < 30; ++iter) {
    const auto a = random_protein(rng, 20 + rng.next_below(40));
    const auto b = random_protein(rng, 20 + rng.next_below(40));
    const int full = smith_waterman(a, b).score;
    for (std::size_t band : {0u, 1u, 3u, 8u}) {
      EXPECT_LE(smith_waterman_banded(a, b, band).score, full);
    }
  }
}

TEST(SmithWatermanBanded, DiagonalCoreFoundWithNarrowBand) {
  const std::string s = "MKVLAAGGHTREQWMKVLAAGGHTREQW";
  const auto full = smith_waterman(s, s);
  const auto banded = smith_waterman_banded(s, s, 0);
  EXPECT_EQ(banded.score, full.score);  // perfect diagonal needs band 0
}

TEST(SmithWatermanTracedBanded, WideBandMatchesFullTraceback) {
  util::Xoshiro256 rng(71);
  for (int iter = 0; iter < 30; ++iter) {
    const auto a = random_protein(rng, 10 + rng.next_below(50));
    const auto b = random_protein(rng, 10 + rng.next_below(50));
    const auto full = smith_waterman_traced(a, b);
    const auto banded =
        smith_waterman_traced_banded(a, b, std::max(a.size(), b.size()));
    EXPECT_EQ(banded.score, full.score);
    // Same optimum and same deterministic tie-breaks -> identical trace.
    EXPECT_EQ(banded.a_begin, full.a_begin);
    EXPECT_EQ(banded.a_end, full.a_end);
    EXPECT_EQ(banded.b_begin, full.b_begin);
    EXPECT_EQ(banded.b_end, full.b_end);
    EXPECT_EQ(banded.ops, full.ops);
    EXPECT_EQ(banded.matches, full.matches);
  }
}

TEST(SmithWatermanTracedBanded, ScoreMonotoneNonIncreasingAsBandShrinks) {
  util::Xoshiro256 rng(83);
  for (int iter = 0; iter < 25; ++iter) {
    const auto a = random_protein(rng, 20 + rng.next_below(40));
    const auto b = random_protein(rng, 20 + rng.next_below(40));
    int prev = smith_waterman_traced_banded(a, b, std::max(a.size(), b.size()))
                   .score;
    EXPECT_EQ(prev, smith_waterman(a, b).score);
    for (std::size_t band : {32u, 16u, 8u, 4u, 2u, 1u, 0u}) {
      const auto t = smith_waterman_traced_banded(a, b, band);
      EXPECT_LE(t.score, prev) << "band=" << band;
      prev = t.score;
    }
  }
}

TEST(SmithWatermanTracedBanded, ColumnAccountingHoldsInsideTheBand) {
  util::Xoshiro256 rng(97);
  for (int iter = 0; iter < 20; ++iter) {
    const auto a = random_protein(rng, 15 + rng.next_below(40));
    const auto b = random_protein(rng, 15 + rng.next_below(40));
    const auto t = smith_waterman_traced_banded(a, b, 6);
    std::size_t matches = 0, a_cols = 0, b_cols = 0;
    for (char op : t.ops) {
      if (op == '|') ++matches;
      if (op != 'b') ++a_cols;
      if (op != 'a') ++b_cols;
    }
    EXPECT_EQ(matches, t.matches);
    EXPECT_EQ(a_cols, t.a_end - t.a_begin);
    EXPECT_EQ(b_cols, t.b_end - t.b_begin);
    EXPECT_EQ(t.alignment_length, t.ops.size());
  }
}

TEST(SmithWatermanTracedBanded, EmptyAndBandZero) {
  EXPECT_EQ(smith_waterman_traced_banded("", "MKV", 4).score, 0);
  EXPECT_EQ(smith_waterman_traced_banded("MKV", "", 4).score, 0);
  const std::string s = "MKVLAAGGHTREQW";
  const auto t = smith_waterman_traced_banded(s, s, 0);
  EXPECT_EQ(t.score, smith_waterman(s, s).score);
  EXPECT_EQ(t.ops, std::string(s.size(), '|'));
}

}  // namespace
}  // namespace gpclust::align
