#include "align/suffix_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "util/rng.hpp"

namespace gpclust::align {
namespace {

TEST(SuffixArray, BananaReference) {
  const auto sa = SuffixArray::build("banana");
  // Suffixes sorted: a(5) ana(3) anana(1) banana(0) na(4) nana(2).
  EXPECT_EQ(sa.sa(), (std::vector<u32>{5, 3, 1, 0, 4, 2}));
  // LCPs:             -   1      3        0         0     2
  EXPECT_EQ(sa.lcp(), (std::vector<u32>{0, 1, 3, 0, 0, 2}));
}

TEST(SuffixArray, EmptyAndSingle) {
  const auto empty = SuffixArray::build("");
  EXPECT_TRUE(empty.sa().empty());
  const auto one = SuffixArray::build("x");
  EXPECT_EQ(one.sa(), (std::vector<u32>{0}));
}

TEST(SuffixArray, MatchesNaiveConstructionOnRandomStrings) {
  util::Xoshiro256 rng(77);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = 1 + rng.next_below(300);
    std::string s(n, 'a');
    for (auto& c : s) c = static_cast<char>('a' + rng.next_below(4));

    const auto sa = SuffixArray::build(s);
    std::vector<u32> naive(n);
    std::iota(naive.begin(), naive.end(), 0u);
    std::sort(naive.begin(), naive.end(), [&](u32 a, u32 b) {
      return s.substr(a) < s.substr(b);
    });
    EXPECT_EQ(sa.sa(), naive);

    // LCP check against direct computation.
    for (std::size_t r = 1; r < n; ++r) {
      const std::string_view sv(s);
      const auto a = sv.substr(sa.sa()[r - 1]);
      const auto b = sv.substr(sa.sa()[r]);
      u32 expected = 0;
      while (expected < a.size() && expected < b.size() &&
             a[expected] == b[expected]) {
        ++expected;
      }
      EXPECT_EQ(sa.lcp()[r], expected);
    }
  }
}

TEST(SuffixArray, RankIsInverseOfSa) {
  const auto sa = SuffixArray::build("mississippi");
  for (std::size_t r = 0; r < sa.sa().size(); ++r) {
    EXPECT_EQ(sa.rank()[sa.sa()[r]], r);
  }
}

seq::SequenceSet make_set(std::vector<std::string> residues) {
  seq::SequenceSet set;
  for (std::size_t i = 0; i < residues.size(); ++i) {
    set.push_back({"s" + std::to_string(i), std::move(residues[i])});
  }
  return set;
}

TEST(MaximalMatchPairs, FindsSharedSubstring) {
  const auto set = make_set({"AAAAAWWHHKKFFRRAAAAA",
                             "GGGGGWWHHKKFFRRGGGGG",
                             "CCCCCCCCCCCCCCCC"});
  MaximalMatchConfig cfg;
  cfg.min_match_length = 10;  // "WWHHKKFFRR"
  const auto pairs = find_candidate_pairs_suffix_array(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_GE(pairs[0].shared_kmers, 10u);  // match length
}

TEST(MaximalMatchPairs, MatchLengthThresholdRespected) {
  const auto set = make_set({"AAAAAWWHHKAAAAA", "GGGGGWWHHKGGGGG"});
  MaximalMatchConfig cfg;
  cfg.min_match_length = 5;  // "WWHHK" qualifies
  EXPECT_EQ(find_candidate_pairs_suffix_array(set, cfg).size(), 1u);
  cfg.min_match_length = 6;  // no 6-residue shared match
  EXPECT_TRUE(find_candidate_pairs_suffix_array(set, cfg).empty());
}

TEST(MaximalMatchPairs, MatchesNeverSpanSequenceBoundary) {
  // s0 ends with "WWW" and s1 starts with "HHH": the concatenation contains
  // "WWWHHH" only across the separator — must not count.
  const auto set = make_set({"KKKKKWWW", "HHHKKKKK", "RRRWWWHHHRRR"});
  MaximalMatchConfig cfg;
  cfg.min_match_length = 6;
  const auto pairs = find_candidate_pairs_suffix_array(set, cfg);
  for (const auto& p : pairs) {
    EXPECT_FALSE(p.a == 0 && p.b == 1) << "boundary-spanning match leaked";
  }
}

TEST(MaximalMatchPairs, RunCapSkipsUbiquitousMatches) {
  std::vector<std::string> residues(10, "AAAAAWWHHKKAAAAA");
  const auto set = make_set(std::move(residues));
  MaximalMatchConfig cfg;
  cfg.min_match_length = 5;
  cfg.max_run_sequences = 4;
  EXPECT_TRUE(find_candidate_pairs_suffix_array(set, cfg).empty());
}

TEST(MaximalMatchPairs, AgreesWithBruteForceOnRandomSets) {
  util::Xoshiro256 rng(12);
  for (int iter = 0; iter < 10; ++iter) {
    // Random sequences with occasional shared blocks.
    std::vector<std::string> residues;
    const std::string block = "WWHHKKFFRRYY";
    for (int i = 0; i < 8; ++i) {
      std::string s;
      for (int j = 0; j < 30; ++j) {
        s += static_cast<char>('A' + rng.next_below(4));  // A C D E... use ACDE
      }
      if (rng.next_below(2) == 1) {
        const std::size_t pos = rng.next_below(s.size());
        s.insert(pos, block);
      }
      residues.push_back(s);
    }
    const auto set = make_set(std::move(residues));
    MaximalMatchConfig cfg;
    cfg.min_match_length = 12;

    const auto pairs = find_candidate_pairs_suffix_array(set, cfg);
    // Brute force: longest common substring >= 12?
    auto has_long_match = [&](const std::string& a, const std::string& b) {
      for (std::size_t i = 0; i + 12 <= a.size(); ++i) {
        if (b.find(a.substr(i, 12)) != std::string::npos) return true;
      }
      return false;
    };
    std::set<std::pair<u32, u32>> expected;
    for (u32 a = 0; a < set.size(); ++a) {
      for (u32 b = a + 1; b < set.size(); ++b) {
        if (has_long_match(set[a].residues, set[b].residues)) {
          expected.insert({a, b});
        }
      }
    }
    std::set<std::pair<u32, u32>> actual;
    for (const auto& p : pairs) actual.insert({p.a, p.b});
    EXPECT_EQ(actual, expected);
  }
}

TEST(MaximalMatchPairs, Validation) {
  const auto set = make_set({"MKVLA"});
  MaximalMatchConfig cfg;
  cfg.min_match_length = 1;
  EXPECT_THROW(find_candidate_pairs_suffix_array(set, cfg), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::align
