#include "align/lsh_seeds.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "align/kmer_index.hpp"
#include "obs/trace.hpp"
#include "seq/alphabet.hpp"
#include "seq/family_model.hpp"
#include "seq/sketch.hpp"

namespace gpclust::align {
namespace {

seq::SequenceSet lsh_workload(u64 seed = 4100) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 8;
  cfg.min_members = 4;
  cfg.max_members = 9;
  cfg.substitution_rate = 0.1;
  cfg.indel_rate = 0.01;
  cfg.num_background_orfs = 12;
  cfg.seed = seed;
  return seq::generate_metagenome(cfg).sequences;
}

/// Reference shared-distinct-k-mer count, straight off the definition.
std::size_t reference_shared(const seq::ProteinSequence& a,
                             const seq::ProteinSequence& b, std::size_t k) {
  std::vector<u64> ca, cb;
  seq::distinct_kmer_codes(a.residues, k, ca);
  seq::distinct_kmer_codes(b.residues, k, cb);
  std::vector<u64> both;
  std::set_intersection(ca.begin(), ca.end(), cb.begin(), cb.end(),
                        std::back_inserter(both));
  return both.size();
}

TEST(LshSeeds, ValidateRejectsDegenerateConfigs) {
  const seq::SequenceSet set;
  LshSeedConfig cfg;
  cfg.k = 1;
  EXPECT_THROW(find_candidate_pairs_lsh(set, cfg), InvalidArgument);
  cfg = {};
  cfg.num_bands = 0;
  EXPECT_THROW(find_candidate_pairs_lsh(set, cfg), InvalidArgument);
  cfg = {};
  cfg.rows_per_band = 0;
  EXPECT_THROW(find_candidate_pairs_lsh(set, cfg), InvalidArgument);
  cfg = {};
  cfg.min_band_hits = cfg.num_bands + 1;
  EXPECT_THROW(find_candidate_pairs_lsh(set, cfg), InvalidArgument);
  cfg = {};
  cfg.min_shared_kmers = 0;
  EXPECT_THROW(find_candidate_pairs_lsh(set, cfg), InvalidArgument);
  cfg = {};
  cfg.max_bucket_size = 1;
  EXPECT_THROW(find_candidate_pairs_lsh(set, cfg), InvalidArgument);
}

TEST(LshSeeds, EmptyAndTooShortInputsYieldNoPairs) {
  EXPECT_TRUE(find_candidate_pairs_lsh({}).empty());

  // Sequences shorter than k sketch to all-empty signatures; they must
  // never collide with each other (or anything else) in any bucket.
  seq::SequenceSet set;
  set.push_back({"tiny0", "MK"});
  set.push_back({"tiny1", "MK"});
  set.push_back({"tiny2", "MKV"});
  EXPECT_TRUE(find_candidate_pairs_lsh(set).empty());
}

TEST(LshSeeds, PairsAreSortedDeduplicatedAndOriented) {
  const auto set = lsh_workload();
  const auto pairs = find_candidate_pairs_lsh(set);
  ASSERT_FALSE(pairs.empty());
  std::set<std::pair<u32, u32>> seen;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].a, pairs[i].b);
    EXPECT_LT(pairs[i].b, set.size());
    EXPECT_TRUE(seen.insert({pairs[i].a, pairs[i].b}).second)
        << "duplicate pair (" << pairs[i].a << ", " << pairs[i].b << ")";
    if (i > 0) {
      EXPECT_TRUE(pairs[i - 1].a < pairs[i].a ||
                  (pairs[i - 1].a == pairs[i].a && pairs[i - 1].b < pairs[i].b))
          << "(a, b) order broken at index " << i;
    }
  }
}

TEST(LshSeeds, SharedCountsAreExactAndThresholded) {
  const auto set = lsh_workload();
  LshSeedConfig cfg;
  cfg.min_shared_kmers = 3;
  const auto pairs = find_candidate_pairs_lsh(set, cfg);
  ASSERT_FALSE(pairs.empty());
  for (const auto& p : pairs) {
    EXPECT_EQ(p.shared_kmers, reference_shared(set[p.a], set[p.b], cfg.k));
    EXPECT_GE(p.shared_kmers, cfg.min_shared_kmers);
    EXPECT_EQ(p.diag, 0);  // sketches keep no positions
  }
}

TEST(LshSeeds, DeterministicAcrossRepeatedRuns) {
  const auto set = lsh_workload(4200);
  const auto first = find_candidate_pairs_lsh(set);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(find_candidate_pairs_lsh(set), first);
  }
}

TEST(LshSeeds, MoreBandsRecoverMoreOfTheExactPairSet) {
  const auto set = lsh_workload(4300);
  const auto exact = find_candidate_pairs(set);
  ASSERT_FALSE(exact.empty());
  std::set<std::pair<u32, u32>> exact_keys;
  for (const auto& p : exact) exact_keys.insert({p.a, p.b});

  double prev_recall = -1.0;
  for (const u64 bands : {u64{4}, u64{16}, u64{64}}) {
    LshSeedConfig cfg;
    cfg.num_bands = bands;
    std::size_t hit = 0;
    for (const auto& p : find_candidate_pairs_lsh(set, cfg)) {
      hit += exact_keys.count({p.a, p.b});
    }
    const double recall =
        static_cast<double>(hit) / static_cast<double>(exact_keys.size());
    EXPECT_GE(recall, prev_recall) << bands << " bands";
    prev_recall = recall;
  }
  // At 64 one-row bands a single min-hash agreement promotes the pair, so
  // nearly all exact-path pairs at this divergence must come back.
  EXPECT_GE(prev_recall, 0.9);
}

TEST(LshSeeds, MinBandHitsTightensTheCandidateSet) {
  const auto set = lsh_workload(4400);
  LshSeedConfig loose;
  LshSeedConfig strict = loose;
  strict.min_band_hits = 8;
  const auto loose_pairs = find_candidate_pairs_lsh(set, loose);
  const auto strict_pairs = find_candidate_pairs_lsh(set, strict);
  EXPECT_LE(strict_pairs.size(), loose_pairs.size());
  // Every strict survivor must also survive the loose setting.
  std::set<std::pair<u32, u32>> loose_keys;
  for (const auto& p : loose_pairs) loose_keys.insert({p.a, p.b});
  for (const auto& p : strict_pairs) {
    EXPECT_TRUE(loose_keys.count({p.a, p.b}));
  }
}

TEST(LshSeeds, ReportsSketchSpanAndPeakBytes) {
  const auto set = lsh_workload(4500);
  obs::Tracer tracer;
  std::size_t peak = 0;
  const auto pairs = find_candidate_pairs_lsh(set, {}, &tracer, &peak);
  ASSERT_FALSE(pairs.empty());
  EXPECT_GT(peak, 0u);
  // The signature buffer is always part of the high-water mark.
  const LshSeedConfig defaults;
  EXPECT_GE(peak, set.size() * defaults.num_bands *
                      defaults.rows_per_band * sizeof(u64));
  bool found = false;
  for (const auto& e : tracer.events()) {
    if (e.name == "homology.sketch") {
      found = true;
      EXPECT_EQ(e.domain, obs::Domain::HostMeasured);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gpclust::align
