#include "align/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "align/blosum.hpp"
#include "align/query_profile.hpp"
#include "align/smith_waterman.hpp"
#include "seq/alphabet.hpp"
#include "util/rng.hpp"

namespace gpclust::align {
namespace {

std::string random_protein(util::Xoshiro256& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) {
    c = seq::kResidues[rng.next_below(seq::kNumStandardResidues)];
  }
  return s;
}

/// Derives a related sequence: point substitutions plus optional indels.
std::string mutate(util::Xoshiro256& rng, const std::string& base,
                   double sub_rate, std::size_t indel_len) {
  std::string m = base;
  for (auto& c : m) {
    if (rng.next_below(1000) < static_cast<u64>(sub_rate * 1000)) {
      c = seq::kResidues[rng.next_below(seq::kNumStandardResidues)];
    }
  }
  if (indel_len > 0 && !m.empty()) {
    const std::size_t at = rng.next_below(m.size());
    if (rng.next_below(2) == 0) {
      m.insert(at, random_protein(rng, indel_len));
    } else {
      m.erase(at, std::min(indel_len, m.size() - at));
    }
  }
  return m;
}

TEST(SwSimd, ScoreMatchesScalarOnLargeFuzzCorpus) {
  util::Xoshiro256 rng(2024);
  SimdCounters counters;
  std::size_t checked = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    // Length regimes: mostly short (the metagenomic ORF range), a slice of
    // empty/one-residue edge cases, occasional related pairs with indels.
    const std::size_t la = iter % 97 == 0 ? rng.next_below(2)
                                          : rng.next_below(90);
    std::string a = random_protein(rng, la);
    std::string b;
    if (iter % 5 == 0 && la >= 20) {
      b = mutate(rng, a, 0.1, iter % 10 == 0 ? 12 : 0);  // homolog, long indel
    } else {
      b = random_protein(rng, iter % 97 == 1 ? rng.next_below(2)
                                             : rng.next_below(90));
    }
    const int scalar = smith_waterman(a, b).score;
    const int simd = smith_waterman_simd(a, b, {}, &counters).score;
    ASSERT_EQ(simd, scalar) << "iter=" << iter << " a=" << a << " b=" << b;
    ++checked;
  }
  EXPECT_EQ(checked, 10000u);
  EXPECT_GT(counters.runs_8bit, 0u);
}

TEST(SwSimd, ScoreMatchesScalarAcrossGapPenalties) {
  util::Xoshiro256 rng(501);
  for (int go : {0, 2, 11, 40}) {
    for (int ge : {0, 1, 3}) {
      const AlignmentParams p{.gap_open = go, .gap_extend = ge};
      for (int iter = 0; iter < 150; ++iter) {
        const auto a = random_protein(rng, rng.next_below(70));
        const auto b = random_protein(rng, rng.next_below(70));
        ASSERT_EQ(smith_waterman_simd(a, b, p).score,
                  smith_waterman(a, b, p).score)
            << "go=" << go << " ge=" << ge << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(SwSimd, EightBitSaturationRescuedExactly) {
  // Near-identical long pairs score far past the 8-bit ceiling; the kernel
  // must detect the clip and rerun at 16 bits with the exact result.
  util::Xoshiro256 rng(77);
  SimdCounters counters;
  for (int iter = 0; iter < 20; ++iter) {
    const auto a = random_protein(rng, 400 + rng.next_below(400));
    const auto b = mutate(rng, a, 0.05, iter % 3 == 0 ? 20 : 0);
    ASSERT_EQ(smith_waterman_simd(a, b, {}, &counters).score,
              smith_waterman(a, b).score);
  }
  EXPECT_GT(counters.rescues_16bit, 0u);
  EXPECT_EQ(counters.scalar_fallbacks, 0u);
}

TEST(SwSimd, EndCoordinatesNameAnOptimalCell) {
  // The SIMD end cell may differ from the scalar tie-break, but the DP
  // restricted to the prefixes ending there must reach the full score.
  util::Xoshiro256 rng(31337);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = random_protein(rng, 10 + rng.next_below(80));
    const auto b = iter % 3 == 0 ? mutate(rng, a, 0.15, 6)
                                 : random_protein(rng, 10 + rng.next_below(80));
    const auto r = smith_waterman_simd(a, b);
    if (r.score == 0) continue;
    ASSERT_LE(r.a_end, a.size());
    ASSERT_LE(r.b_end, b.size());
    const auto prefix = smith_waterman(std::string_view(a).substr(0, r.a_end),
                                       std::string_view(b).substr(0, r.b_end));
    EXPECT_EQ(prefix.score, r.score) << "a=" << a << " b=" << b;
  }
}

TEST(SwSimd, EmptyAndSingleResidueInputs) {
  EXPECT_EQ(smith_waterman_simd("", "").score, 0);
  EXPECT_EQ(smith_waterman_simd("", "MKV").score, 0);
  EXPECT_EQ(smith_waterman_simd("MKV", "").score, 0);
  EXPECT_EQ(smith_waterman_simd("W", "W").score, blosum62('W', 'W'));
  EXPECT_EQ(smith_waterman_simd("W", "A").score, smith_waterman("W", "A").score);
}

TEST(SwSimd, ProfileReuseGivesSameResultAsOneShot) {
  util::Xoshiro256 rng(8);
  const auto query = random_protein(rng, 60);
  const QueryProfile profile(query);
  for (int iter = 0; iter < 50; ++iter) {
    const auto target = random_protein(rng, rng.next_below(120));
    std::vector<u8> encoded(target.size());
    for (std::size_t i = 0; i < target.size(); ++i) {
      encoded[i] = seq::residue_index(target[i]);
    }
    EXPECT_EQ(smith_waterman_simd(profile, encoded).score,
              smith_waterman_simd(query, target).score);
  }
}

TEST(SwSimd, QueryProfileCacheRebuildsOnlyOnNewId) {
  QueryProfileCache cache;
  const std::string q0 = "MKVLAAGGHTREQW";
  const std::string q1 = "WWWHHHKKKFFF";
  cache.get(5, q0);
  cache.get(5, q0);
  cache.get(5, q0);
  EXPECT_EQ(cache.builds(), 1u);
  cache.get(9, q1);
  EXPECT_EQ(cache.builds(), 2u);
  EXPECT_EQ(cache.get(9, q1).query(), q1);
  // id 0 must behave like any other id, not like "empty slot".
  QueryProfileCache zero;
  zero.get(0, q0);
  zero.get(0, q0);
  EXPECT_EQ(zero.builds(), 1u);
}

TEST(SwSimd, ProfilePaddingNeverInflatesScores) {
  // Query lengths straddling the stripe boundaries (15, 16, 17 residues at
  // 16 lanes) exercise maximal padding; scores must still be exact.
  util::Xoshiro256 rng(64);
  for (std::size_t len : {1u, 15u, 16u, 17u, 31u, 32u, 33u}) {
    for (int iter = 0; iter < 30; ++iter) {
      const auto a = random_protein(rng, len);
      const auto b = random_protein(rng, rng.next_below(80));
      ASSERT_EQ(smith_waterman_simd(a, b).score, smith_waterman(a, b).score)
          << "len=" << len << " a=" << a << " b=" << b;
    }
  }
}

TEST(SwSimd, CountersPartitionAllRuns) {
  util::Xoshiro256 rng(99);
  SimdCounters counters;
  std::size_t nonempty_runs = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const auto a = random_protein(rng, rng.next_below(300));
    const auto b =
        iter % 4 == 0 && a.size() > 50 ? mutate(rng, a, 0.02, 0)
                                       : random_protein(rng, rng.next_below(300));
    smith_waterman_simd(a, b, {}, &counters);
    if (!a.empty() && !b.empty()) ++nonempty_runs;
  }
  EXPECT_EQ(counters.runs_8bit + counters.rescues_16bit +
                counters.scalar_fallbacks,
            nonempty_runs);
}

}  // namespace
}  // namespace gpclust::align
