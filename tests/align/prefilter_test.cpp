#include "align/prefilter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>

#include "align/blosum.hpp"
#include "align/homology_graph.hpp"
#include "align/smith_waterman.hpp"
#include "seq/alphabet.hpp"
#include "seq/family_model.hpp"
#include "util/rng.hpp"

namespace gpclust::align {
namespace {

std::string random_protein(util::Xoshiro256& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) {
    c = seq::kResidues[rng.next_below(seq::kNumStandardResidues)];
  }
  return s;
}

/// Reference for the x-drop scan with an unbounded drop: the best-scoring
/// contiguous segment on the diagonal (Kadane).
int kadane_diagonal(std::string_view a, std::string_view b, i32 diag) {
  const i64 i_begin = std::max<i64>(0, diag);
  const i64 i_end =
      std::min<i64>(static_cast<i64>(a.size()), static_cast<i64>(b.size()) + diag);
  int best = 0, run = 0;
  for (i64 i = i_begin; i < i_end; ++i) {
    run += blosum62(a[static_cast<std::size_t>(i)],
                    b[static_cast<std::size_t>(i - diag)]);
    best = std::max(best, run);
    if (run < 0) run = 0;
  }
  return best;
}

TEST(Prefilter, UpperBoundHoldsOnFuzzedPairs) {
  util::Xoshiro256 rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    const auto a = random_protein(rng, rng.next_below(80));
    const auto b = random_protein(rng, rng.next_below(80));
    EXPECT_LE(smith_waterman(a, b).score,
              alignment_score_upper_bound(a.size(), b.size()));
  }
  // Self-alignment of tryptophans attains the bound exactly.
  EXPECT_EQ(smith_waterman("WWWW", "WWWW").score,
            alignment_score_upper_bound(4, 4));
}

TEST(Prefilter, ExactRejectIsAdmissible) {
  // A rejected pair must genuinely fail the thresholds under the full DP —
  // this is the property that makes skipping its DP edge-set-preserving.
  util::Xoshiro256 rng(23);
  std::size_t rejects = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const auto a = random_protein(rng, rng.next_below(30));
    const auto b = random_protein(rng, rng.next_below(30));
    const int min_score = static_cast<int>(rng.next_below(200));
    const double per_residue = static_cast<double>(rng.next_below(160)) / 10.0;
    if (!exact_reject(a.size(), b.size(), min_score, per_residue)) continue;
    ++rejects;
    const int score = smith_waterman(a, b).score;
    const double needed =
        per_residue * static_cast<double>(std::min(a.size(), b.size()));
    EXPECT_TRUE(score < min_score || static_cast<double>(score) < needed)
        << "a=" << a << " b=" << b << " score=" << score;
  }
  EXPECT_GT(rejects, 0u);
}

TEST(Prefilter, ExactRejectTriggersOnHopelessLengths) {
  // 5 residues * 11 max = 55 < 100.
  EXPECT_TRUE(exact_reject(5, 500, 100, 0.0));
  EXPECT_FALSE(exact_reject(10, 500, 100, 0.0));
  // Per-residue demand above the matrix maximum is unsatisfiable.
  EXPECT_TRUE(exact_reject(50, 50, 0, 11.5));
  EXPECT_FALSE(exact_reject(50, 50, 0, 11.0));
  EXPECT_FALSE(exact_reject(0, 10, 0, 0.0));  // thresholds at zero
}

TEST(Prefilter, UngappedXdropMatchesKadaneWithUnboundedDrop) {
  util::Xoshiro256 rng(37);
  for (int iter = 0; iter < 400; ++iter) {
    const auto a = random_protein(rng, rng.next_below(60));
    const auto b = random_protein(rng, rng.next_below(60));
    const i32 diag = static_cast<i32>(rng.next_below(41)) - 20;
    EXPECT_EQ(ungapped_xdrop_score(a, b, diag,
                                   std::numeric_limits<int>::max() / 2),
              kadane_diagonal(a, b, diag))
        << "a=" << a << " b=" << b << " diag=" << diag;
  }
}

TEST(Prefilter, UngappedScoreLowerBoundsFullAlignment) {
  // An ungapped diagonal segment is one feasible local alignment, so its
  // score can never exceed the gapped optimum.
  util::Xoshiro256 rng(41);
  for (int iter = 0; iter < 300; ++iter) {
    const auto a = random_protein(rng, rng.next_below(60));
    const auto b = random_protein(rng, rng.next_below(60));
    const i32 diag = static_cast<i32>(rng.next_below(21)) - 10;
    for (int xdrop : {0, 5, 20, 1 << 20}) {
      const int u = ungapped_xdrop_score(a, b, diag, xdrop);
      EXPECT_GE(u, 0);
      EXPECT_LE(u, smith_waterman(a, b).score);
    }
  }
}

TEST(Prefilter, UngappedFindsPlantedDiagonalCore) {
  const std::string core = "WWWHHHKKKFFFMMM";
  const std::string a = "AAAAAAA" + core;      // core at offset 7
  const std::string b = "PP" + core + "LLLLL";  // core at offset 2
  int core_score = 0;
  for (char c : core) core_score += blosum62(c, c);
  EXPECT_GE(ungapped_xdrop_score(a, b, 5, 30), core_score);
  // A far-off diagonal has no overlap with the core.
  EXPECT_LT(ungapped_xdrop_score(a, b, -12, 30), core_score);
  // No overlap at all -> 0.
  EXPECT_EQ(ungapped_xdrop_score(a, b, 1000, 30), 0);
  EXPECT_EQ(ungapped_xdrop_score("", "MKV", 0, 30), 0);
}

TEST(Prefilter, NegativeXdropRejected) {
  EXPECT_THROW(ungapped_xdrop_score("MKV", "MKV", 0, -1), InvalidArgument);
}

TEST(Prefilter, HeuristicTierOffByDefaultAndNeutralAtZeroThresholds) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 5;
  cfg.min_members = 4;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.1;
  cfg.seed = 17;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig base;
  base.num_threads = 1;
  EXPECT_FALSE(base.prefilter.enabled);

  HomologyGraphConfig neutral = base;
  neutral.prefilter.enabled = true;
  neutral.prefilter.min_shared_seeds = 0;
  neutral.prefilter.min_ungapped_score = 0;

  HomologyGraphStats base_stats, neutral_stats;
  const auto g0 = build_homology_graph(mg.sequences, base, &base_stats);
  const auto g1 = build_homology_graph(mg.sequences, neutral, &neutral_stats);
  EXPECT_EQ(g0.adjacency(), g1.adjacency());
  EXPECT_EQ(g0.offsets(), g1.offsets());
  EXPECT_EQ(neutral_stats.num_heuristic_rejects, 0u);
}

TEST(Prefilter, HeuristicTierProducesEdgeSubset) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 5;
  cfg.min_members = 4;
  cfg.max_members = 6;
  cfg.substitution_rate = 0.15;
  cfg.seed = 29;
  const auto mg = seq::generate_metagenome(cfg);

  HomologyGraphConfig base;
  base.num_threads = 1;
  HomologyGraphConfig filtered = base;
  // Aggressive thresholds so the tier demonstrably fires on this workload
  // (the defaults are gentler; any setting must still yield a subset).
  filtered.prefilter.enabled = true;
  filtered.prefilter.min_shared_seeds = 10;
  filtered.prefilter.xdrop = 15;
  filtered.prefilter.min_ungapped_score = 90;

  HomologyGraphStats fstats;
  const auto g_base = build_homology_graph(mg.sequences, base);
  const auto g_filt = build_homology_graph(mg.sequences, filtered, &fstats);

  // Every filtered edge must exist in the unfiltered graph.
  ASSERT_EQ(g_base.num_vertices(), g_filt.num_vertices());
  for (std::size_t u = 0; u < g_filt.num_vertices(); ++u) {
    const auto base_nbrs = g_base.neighbors(static_cast<VertexId>(u));
    for (VertexId v : g_filt.neighbors(static_cast<VertexId>(u))) {
      EXPECT_TRUE(std::find(base_nbrs.begin(), base_nbrs.end(), v) !=
                  base_nbrs.end())
          << "edge " << u << "-" << v << " not in the unfiltered graph";
    }
  }
  // The heuristic tier actually skipped DP work on this workload.
  EXPECT_GT(fstats.num_heuristic_rejects, 0u);
  EXPECT_LT(fstats.num_score_alignments,
            fstats.num_candidate_pairs - fstats.num_exact_rejects);
}

}  // namespace
}  // namespace gpclust::align
