#include "align/kmer_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"
#include "util/rng.hpp"

namespace gpclust::align {
namespace {

seq::SequenceSet make_set(std::vector<std::string> residues) {
  seq::SequenceSet set;
  for (std::size_t i = 0; i < residues.size(); ++i) {
    set.push_back({"s" + std::to_string(i), std::move(residues[i])});
  }
  return set;
}

TEST(KmerIndex, FindsSharedKmerPair) {
  // Two sequences sharing a 12-residue block -> many shared 5-mers.
  const auto set = make_set({"AAAAAWWHHKKFFRRAAAAA",
                             "GGGGGWWHHKKFFRRGGGGG",
                             "CCCCCCCCCCCCCCCC"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 2;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_GE(pairs[0].shared_kmers, 2u);
}

TEST(KmerIndex, NoPairsForDissimilarSequences) {
  const auto set = make_set({"ACDEFGHIKLMNPQRSTVWY", "YWVTSRQPNMLKIHGFEDCA"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, MinSharedThresholdFilters) {
  // Exactly one shared 5-mer ("WWHHK").
  const auto set = make_set({"AAAAAWWHHKAAAAA", "GGGGGWWHHKGGGGG"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  EXPECT_EQ(find_candidate_pairs(set, cfg).size(), 1u);
  cfg.min_shared_kmers = 3;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, RepeatMaskingDropsUbiquitousKmers) {
  // A k-mer present in every sequence is masked when it exceeds the
  // occurrence cap, so no pairs are promoted through it.
  std::vector<std::string> residues(10, "AAAAAWWHHKAAAAA");
  const auto set = make_set(std::move(residues));
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  cfg.max_kmer_occurrences = 5;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, DuplicateKmersWithinOneSequenceCountOnce) {
  // "WWHHK" appears twice in each sequence but shared count must be 1.
  const auto set = make_set({"WWHHKAAAAAWWHHK", "WWHHKGGGGGWWHHK"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].shared_kmers, 1u);
}

TEST(KmerIndex, SequencesShorterThanKIgnored) {
  const auto set = make_set({"MKV", "MKV"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, PairsAreOrderedAndUnique) {
  const auto set = make_set({"AAAAAWWHHKKFFRR", "GGGGWWHHKKFFRRG",
                             "CCCWWHHKKFFRRCC"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& p : pairs) EXPECT_LT(p.a, p.b);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end(),
                             [](const auto& p, const auto& q) {
                               return std::pair(p.a, p.b) <
                                      std::pair(q.a, q.b);
                             }));
}

TEST(KmerIndex, SortBasedCountingMatchesMapReference) {
  // The production path counts shared seeds by sorting flat packed keys;
  // this in-test reference keeps the old hash-map formulation. The two
  // must agree on pair set, order, and counts for any input.
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::string> residues;
    const std::size_t count = 3 + rng.next_below(12);
    std::string motif;
    for (int i = 0; i < 8; ++i) {
      motif += seq::kResidues[rng.next_below(seq::kNumStandardResidues)];
    }
    for (std::size_t s = 0; s < count; ++s) {
      std::string r;
      const std::size_t len = 6 + rng.next_below(30);
      for (std::size_t i = 0; i < len; ++i) {
        r += seq::kResidues[rng.next_below(6)];  // small alphabet: collisions
      }
      if (s % 2 == 0) r.insert(rng.next_below(r.size()), motif);
      residues.push_back(std::move(r));
    }
    const auto set = make_set(std::move(residues));
    KmerIndexConfig cfg;
    cfg.k = 4;
    cfg.min_shared_kmers = 1 + rng.next_below(2);
    cfg.max_kmer_occurrences = 4 + rng.next_below(10);
    const auto pairs = find_candidate_pairs(set, cfg);

    // Reference: distinct k-mers per sequence, hash-map pair counting.
    auto distinct = [&](const std::string& s) {
      std::set<std::string> out;
      for (std::size_t p = 0; p + cfg.k <= s.size(); ++p) {
        out.insert(s.substr(p, cfg.k));
      }
      return out;
    };
    std::map<std::string, std::vector<u32>> postings;
    for (std::size_t i = 0; i < set.size(); ++i) {
      for (const auto& kmer : distinct(set[i].residues)) {
        postings[kmer].push_back(static_cast<u32>(i));
      }
    }
    std::map<std::pair<u32, u32>, u32> counts;
    for (const auto& [kmer, seqs] : postings) {
      if (seqs.size() < 2 || seqs.size() > cfg.max_kmer_occurrences) continue;
      for (std::size_t x = 0; x < seqs.size(); ++x) {
        for (std::size_t y = x + 1; y < seqs.size(); ++y) {
          ++counts[{seqs[x], seqs[y]}];
        }
      }
    }
    std::vector<CandidatePair> expected;
    for (const auto& [key, c] : counts) {
      if (c >= cfg.min_shared_kmers) {
        expected.push_back({key.first, key.second, c, 0});
      }
    }
    ASSERT_EQ(pairs.size(), expected.size()) << "trial=" << trial;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(pairs[i].a, expected[i].a);
      EXPECT_EQ(pairs[i].b, expected[i].b);
      EXPECT_EQ(pairs[i].shared_kmers, expected[i].shared_kmers);
    }
  }
}

TEST(KmerIndex, SeedDiagonalTracksOffset) {
  // b is a by 4 residues shifted: every shared seed sits on diagonal +4.
  const std::string core = "WWHHKKFFRRMMNNQQEE";
  const auto set = make_set({"ACDE" + core, core});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].diag, 4);

  // Identical sequences share every seed on the main diagonal.
  const auto same = make_set({core, core});
  const auto self_pairs = find_candidate_pairs(same, cfg);
  ASSERT_EQ(self_pairs.size(), 1u);
  EXPECT_EQ(self_pairs[0].diag, 0);
}

TEST(KmerIndex, SeedDiagonalIsTheModeOverSharedSeeds) {
  // Two shared blocks: a long one on diagonal 0 (more seeds) and a short
  // one on diagonal +6; the mode must pick the long block's diagonal.
  const std::string long_block = "WWHHKKFFRRMMNN";  // 10 distinct 5-mers
  const std::string short_block = "QQEEYY";         // 2 distinct 5-mers
  const auto set = make_set({long_block + "AAAAAA" + short_block,
                             long_block + short_block});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].diag, 0);
}

TEST(KmerIndex, Validation) {
  const auto set = make_set({"MKVLA"});
  KmerIndexConfig cfg;
  cfg.k = 1;
  EXPECT_THROW(find_candidate_pairs(set, cfg), InvalidArgument);
  cfg = KmerIndexConfig{};
  cfg.min_shared_kmers = 0;
  EXPECT_THROW(find_candidate_pairs(set, cfg), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::align
