#include "align/kmer_index.hpp"

#include <gtest/gtest.h>

namespace gpclust::align {
namespace {

seq::SequenceSet make_set(std::vector<std::string> residues) {
  seq::SequenceSet set;
  for (std::size_t i = 0; i < residues.size(); ++i) {
    set.push_back({"s" + std::to_string(i), std::move(residues[i])});
  }
  return set;
}

TEST(KmerIndex, FindsSharedKmerPair) {
  // Two sequences sharing a 12-residue block -> many shared 5-mers.
  const auto set = make_set({"AAAAAWWHHKKFFRRAAAAA",
                             "GGGGGWWHHKKFFRRGGGGG",
                             "CCCCCCCCCCCCCCCC"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 2;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_GE(pairs[0].shared_kmers, 2u);
}

TEST(KmerIndex, NoPairsForDissimilarSequences) {
  const auto set = make_set({"ACDEFGHIKLMNPQRSTVWY", "YWVTSRQPNMLKIHGFEDCA"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, MinSharedThresholdFilters) {
  // Exactly one shared 5-mer ("WWHHK").
  const auto set = make_set({"AAAAAWWHHKAAAAA", "GGGGGWWHHKGGGGG"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  EXPECT_EQ(find_candidate_pairs(set, cfg).size(), 1u);
  cfg.min_shared_kmers = 3;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, RepeatMaskingDropsUbiquitousKmers) {
  // A k-mer present in every sequence is masked when it exceeds the
  // occurrence cap, so no pairs are promoted through it.
  std::vector<std::string> residues(10, "AAAAAWWHHKAAAAA");
  const auto set = make_set(std::move(residues));
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  cfg.max_kmer_occurrences = 5;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, DuplicateKmersWithinOneSequenceCountOnce) {
  // "WWHHK" appears twice in each sequence but shared count must be 1.
  const auto set = make_set({"WWHHKAAAAAWWHHK", "WWHHKGGGGGWWHHK"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].shared_kmers, 1u);
}

TEST(KmerIndex, SequencesShorterThanKIgnored) {
  const auto set = make_set({"MKV", "MKV"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  EXPECT_TRUE(find_candidate_pairs(set, cfg).empty());
}

TEST(KmerIndex, PairsAreOrderedAndUnique) {
  const auto set = make_set({"AAAAAWWHHKKFFRR", "GGGGWWHHKKFFRRG",
                             "CCCWWHHKKFFRRCC"});
  KmerIndexConfig cfg;
  cfg.k = 5;
  cfg.min_shared_kmers = 1;
  const auto pairs = find_candidate_pairs(set, cfg);
  ASSERT_EQ(pairs.size(), 3u);
  for (const auto& p : pairs) EXPECT_LT(p.a, p.b);
  EXPECT_TRUE(std::is_sorted(pairs.begin(), pairs.end(),
                             [](const auto& p, const auto& q) {
                               return std::pair(p.a, p.b) <
                                      std::pair(q.a, q.b);
                             }));
}

TEST(KmerIndex, Validation) {
  const auto set = make_set({"MKVLA"});
  KmerIndexConfig cfg;
  cfg.k = 1;
  EXPECT_THROW(find_candidate_pairs(set, cfg), InvalidArgument);
  cfg = KmerIndexConfig{};
  cfg.min_shared_kmers = 0;
  EXPECT_THROW(find_candidate_pairs(set, cfg), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::align
