#include "align/spgemm_seeds.hpp"

#include <gtest/gtest.h>

#include "align/kmer_index.hpp"
#include "seq/family_model.hpp"

namespace gpclust::align {
namespace {

seq::SequenceSet spgemm_workload(u64 seed) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 7;
  cfg.min_members = 4;
  cfg.max_members = 9;
  cfg.substitution_rate = 0.1;
  cfg.indel_rate = 0.01;
  cfg.num_background_orfs = 10;
  cfg.seed = seed;
  return seq::generate_metagenome(cfg).sequences;
}

/// The ablation's contract: same (a, b, shared_kmers) triples as the
/// postings path, in the same order. Only `diag` may differ (the SpGEMM
/// formulation keeps no positions, so it reports 0).
void expect_same_triples(const std::vector<CandidatePair>& spgemm,
                         const std::vector<CandidatePair>& exact) {
  ASSERT_EQ(spgemm.size(), exact.size());
  for (std::size_t i = 0; i < spgemm.size(); ++i) {
    EXPECT_EQ(spgemm[i].a, exact[i].a) << i;
    EXPECT_EQ(spgemm[i].b, exact[i].b) << i;
    EXPECT_EQ(spgemm[i].shared_kmers, exact[i].shared_kmers) << i;
    EXPECT_EQ(spgemm[i].diag, 0) << i;
  }
}

TEST(SpGemmSeeds, MatchesExactPathOnFamilyWorkloads) {
  for (const u64 seed : {u64{5100}, u64{5200}, u64{5300}}) {
    const auto set = spgemm_workload(seed);
    const KmerIndexConfig cfg;
    const auto exact = find_candidate_pairs(set, cfg);
    ASSERT_FALSE(exact.empty());
    expect_same_triples(find_candidate_pairs_spgemm(set, cfg), exact);
  }
}

TEST(SpGemmSeeds, MatchesExactPathUnderAggressiveMasking) {
  const auto set = spgemm_workload(5400);
  // Tight occupancy mask: high-occupancy k-mer columns drop out of the
  // product exactly as they drop out of the postings expansion.
  KmerIndexConfig cfg;
  cfg.max_kmer_occurrences = 4;
  const auto exact = find_candidate_pairs(set, cfg);
  const auto masked = find_candidate_pairs_spgemm(set, cfg);
  expect_same_triples(masked, exact);

  // And a tighter promotion threshold prunes both paths identically.
  cfg.max_kmer_occurrences = 200;
  cfg.min_shared_kmers = 6;
  expect_same_triples(find_candidate_pairs_spgemm(set, cfg),
                      find_candidate_pairs(set, cfg));
}

TEST(SpGemmSeeds, EmptyAndShortInputs) {
  EXPECT_TRUE(find_candidate_pairs_spgemm({}).empty());
  seq::SequenceSet set;
  set.push_back({"a", "MKV"});
  set.push_back({"b", "MK"});
  EXPECT_TRUE(find_candidate_pairs_spgemm(set).empty());
}

TEST(SpGemmSeeds, ReportsPeakBytes) {
  const auto set = spgemm_workload(5500);
  std::size_t peak = 0;
  const auto pairs = find_candidate_pairs_spgemm(set, {}, &peak);
  ASSERT_FALSE(pairs.empty());
  EXPECT_GT(peak, 0u);
}

}  // namespace
}  // namespace gpclust::align
