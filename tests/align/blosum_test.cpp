#include "align/blosum.hpp"

#include <gtest/gtest.h>

namespace gpclust::align {
namespace {

TEST(Blosum62, KnownEntries) {
  EXPECT_EQ(blosum62('A', 'A'), 4);
  EXPECT_EQ(blosum62('W', 'W'), 11);
  EXPECT_EQ(blosum62('C', 'C'), 9);
  EXPECT_EQ(blosum62('A', 'R'), -1);
  EXPECT_EQ(blosum62('W', 'G'), -2);
  EXPECT_EQ(blosum62('I', 'L'), 2);
  EXPECT_EQ(blosum62('D', 'E'), 2);
  EXPECT_EQ(blosum62('*', '*'), 1);
  EXPECT_EQ(blosum62('A', '*'), -4);
}

TEST(Blosum62, MatrixIsSymmetric) {
  for (char a : seq::kResidues) {
    for (char b : seq::kResidues) {
      EXPECT_EQ(blosum62(a, b), blosum62(b, a)) << a << " vs " << b;
    }
  }
}

TEST(Blosum62, DiagonalDominates) {
  // Every standard residue scores at least as well against itself as
  // against any other residue.
  for (std::size_t i = 0; i < seq::kNumStandardResidues; ++i) {
    const char a = seq::kResidues[i];
    for (std::size_t j = 0; j < seq::kNumStandardResidues; ++j) {
      if (i == j) continue;
      EXPECT_GE(blosum62(a, a), blosum62(a, seq::kResidues[j]));
    }
  }
}

TEST(Blosum62, CaseInsensitive) {
  EXPECT_EQ(blosum62('a', 'a'), 4);
  EXPECT_EQ(blosum62('w', 'G'), -2);
}

TEST(Blosum62, InvalidResidueThrows) {
  EXPECT_THROW(blosum62('J', 'A'), InvalidArgument);
  EXPECT_THROW(blosum62_by_index(24, 0), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::align
