#include "align/blosum.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace gpclust::align {
namespace {

TEST(Blosum62, KnownEntries) {
  EXPECT_EQ(blosum62('A', 'A'), 4);
  EXPECT_EQ(blosum62('W', 'W'), 11);
  EXPECT_EQ(blosum62('C', 'C'), 9);
  EXPECT_EQ(blosum62('A', 'R'), -1);
  EXPECT_EQ(blosum62('W', 'G'), -2);
  EXPECT_EQ(blosum62('I', 'L'), 2);
  EXPECT_EQ(blosum62('D', 'E'), 2);
  EXPECT_EQ(blosum62('*', '*'), 1);
  EXPECT_EQ(blosum62('A', '*'), -4);
}

TEST(Blosum62, MatrixIsSymmetric) {
  for (char a : seq::kResidues) {
    for (char b : seq::kResidues) {
      EXPECT_EQ(blosum62(a, b), blosum62(b, a)) << a << " vs " << b;
    }
  }
}

TEST(Blosum62, DiagonalDominates) {
  // Every standard residue scores at least as well against itself as
  // against any other residue.
  for (std::size_t i = 0; i < seq::kNumStandardResidues; ++i) {
    const char a = seq::kResidues[i];
    for (std::size_t j = 0; j < seq::kNumStandardResidues; ++j) {
      if (i == j) continue;
      EXPECT_GE(blosum62(a, a), blosum62(a, seq::kResidues[j]));
    }
  }
}

TEST(Blosum62, StandardDiagonalIsStrictlyPositive) {
  // Every standard residue rewards a self-match — the property the
  // score-per-residue edge threshold and the SIMD bias both lean on.
  for (std::size_t i = 0; i < seq::kNumStandardResidues; ++i) {
    const char a = seq::kResidues[i];
    EXPECT_GT(blosum62(a, a), 0) << a;
  }
}

TEST(Blosum62, ExtremeHelpersScanTheWholeMatrix) {
  int lo = blosum62_by_index(0, 0), hi = lo;
  for (u8 a = 0; a < seq::kNumResidues; ++a) {
    for (u8 b = 0; b < seq::kNumResidues; ++b) {
      lo = std::min(lo, blosum62_by_index(a, b));
      hi = std::max(hi, blosum62_by_index(a, b));
    }
  }
  EXPECT_EQ(blosum62_max_score(), hi);
  EXPECT_EQ(blosum62_min_score(), lo);
  EXPECT_EQ(blosum62_max_score(), 11);  // W vs W
  EXPECT_EQ(blosum62_min_score(), -4);
}

TEST(Blosum62, ResidueIndexRoundTrips) {
  for (std::size_t i = 0; i < seq::kNumResidues; ++i) {
    const char c = seq::kResidues[i];
    EXPECT_EQ(seq::residue_index(c), static_cast<u8>(i));
    EXPECT_EQ(seq::residue_char(seq::residue_index(c)), c);
    // Index-based and character-based lookups agree.
    EXPECT_EQ(blosum62_by_index(seq::residue_index(c), seq::residue_index('A')),
              blosum62(c, 'A'));
  }
}

TEST(Blosum62, CaseInsensitive) {
  EXPECT_EQ(blosum62('a', 'a'), 4);
  EXPECT_EQ(blosum62('w', 'G'), -2);
}

TEST(Blosum62, InvalidResidueThrows) {
  EXPECT_THROW(blosum62('J', 'A'), InvalidArgument);
  EXPECT_THROW(blosum62_by_index(24, 0), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::align
