// FaultPlan: spec grammar round trips, deterministic per-site call
// counting, and thread-safety of the shared schedule.

#include <gtest/gtest.h>

#include <thread>

#include "fault/fault_plan.hpp"
#include "fault/resilience.hpp"

namespace gpclust::fault {
namespace {

TEST(FaultPlan, ParsesEverySiteAndRoundTrips) {
  const std::string spec =
      "oom@alloc:17,xfer_fail@h2d:3,xfer_fail@d2h:0,kernel_fail@kernel:5,"
      "comm_fail@send:2,comm_fail@recv:9,rank_down@2";
  auto plan = FaultPlan::parse(spec);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.is_rank_down(2));
  EXPECT_FALSE(plan.is_rank_down(0));
  EXPECT_EQ(plan.num_ranks_down(), 1u);
  // Canonical string parses back to an equivalent plan.
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());
}

TEST(FaultPlan, RangesCollapseInCanonicalForm) {
  auto plan = FaultPlan::parse("kernel_fail@kernel:3-6,kernel_fail@kernel:7");
  EXPECT_EQ(plan.to_string(), "kernel_fail@kernel:3-7");
  auto sparse = FaultPlan::parse("oom@alloc:1,oom@alloc:3");
  EXPECT_EQ(sparse.to_string(), "oom@alloc:1,oom@alloc:3");
}

TEST(FaultPlan, ShouldFaultFiresAtExactCallIndices) {
  auto plan = FaultPlan::parse("xfer_fail@h2d:1,xfer_fail@h2d:3-4");
  // Calls 0..5 at the h2d site: fires at 1, 3, 4 only.
  const bool expected[] = {false, true, false, true, true, false};
  for (bool e : expected) EXPECT_EQ(plan.should_fault(FaultSite::H2D), e);
  EXPECT_EQ(plan.calls(FaultSite::H2D), 6u);
  EXPECT_EQ(plan.injected(), 3u);
  // Other sites have independent counters.
  EXPECT_EQ(plan.calls(FaultSite::D2H), 0u);
  EXPECT_FALSE(plan.should_fault(FaultSite::D2H));
}

TEST(FaultPlan, ResetCountersReplaysIdentically) {
  auto plan = FaultPlan::parse("oom@alloc:0");
  EXPECT_TRUE(plan.should_fault(FaultSite::Alloc));
  EXPECT_FALSE(plan.should_fault(FaultSite::Alloc));
  plan.reset_counters();
  EXPECT_EQ(plan.injected(), 0u);
  EXPECT_TRUE(plan.should_fault(FaultSite::Alloc));
}

TEST(FaultPlan, CopyPreservesScheduleAndCounters) {
  auto plan = FaultPlan::parse("oom@alloc:1");
  EXPECT_FALSE(plan.should_fault(FaultSite::Alloc));
  FaultPlan copy = plan;  // counter at 1: next alloc call fires
  EXPECT_TRUE(copy.should_fault(FaultSite::Alloc));
  EXPECT_TRUE(plan.should_fault(FaultSite::Alloc));  // original unaffected
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("oom"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("oom@alloc"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("oom@gpu:1"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("oom@alloc:x"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("oom@alloc:5-2"), InvalidArgument);
  // Kind/site mismatch: an OOM cannot happen on a transfer.
  EXPECT_THROW(FaultPlan::parse("oom@h2d:0"), InvalidArgument);
  EXPECT_THROW(FaultPlan::parse("xfer_fail@kernel:0"), InvalidArgument);
}

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  auto plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.to_string(), "");
}

TEST(FaultPlan, ConcurrentCallsCountEveryAttemptExactlyOnce) {
  auto plan = FaultPlan::parse("kernel_fail@kernel:0-999");
  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&plan] {
      for (int i = 0; i < kCallsPerThread; ++i) {
        plan.should_fault(FaultSite::Kernel);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(plan.calls(FaultSite::Kernel), kThreads * kCallsPerThread);
  // First 1000 calls fired, regardless of thread interleaving.
  EXPECT_EQ(plan.injected(), 1000u);
}

TEST(ResilienceMode, ParsesAndNames) {
  EXPECT_EQ(parse_resilience_mode("off"), ResilienceMode::Off);
  EXPECT_EQ(parse_resilience_mode("retry"), ResilienceMode::Retry);
  EXPECT_EQ(parse_resilience_mode("fallback"), ResilienceMode::Fallback);
  EXPECT_THROW(parse_resilience_mode("bogus"), InvalidArgument);
  for (auto mode : {ResilienceMode::Off, ResilienceMode::Retry,
                    ResilienceMode::Fallback}) {
    EXPECT_EQ(parse_resilience_mode(std::string(resilience_mode_name(mode))),
              mode);
  }
}

TEST(ResiliencePolicy, ModePredicates) {
  ResiliencePolicy policy;
  EXPECT_FALSE(policy.enabled());
  policy.mode = ResilienceMode::Retry;
  EXPECT_TRUE(policy.enabled());
  EXPECT_FALSE(policy.fallback_enabled());
  policy.mode = ResilienceMode::Fallback;
  EXPECT_TRUE(policy.fallback_enabled());
}

}  // namespace
}  // namespace gpclust::fault
