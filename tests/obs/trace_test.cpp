// obs layer: span nesting, counter monotonicity, the host-measured /
// device-modeled domain separation (compile-time and runtime), and the
// chrome://tracing export schema — validated against a real pipeline run.

#include <gtest/gtest.h>

#include <set>

#include "core/gpclust.hpp"
#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gpclust::obs {
namespace {

// ---------------------------------------------------------------------------
// Domain typing: mixing measured and modeled seconds must not compile.
// ---------------------------------------------------------------------------

// (The checks go through dependent variable templates so an ill-formed
// mixed-domain expression is a SFINAE "false", not a hard error here.)
template <typename A, typename B>
constexpr bool kAddable = requires(A a, B b) { a + b; };
template <typename A, typename B>
constexpr bool kSubtractable = requires(A a, B b) { a - b; };
template <typename A, typename B>
constexpr bool kCompoundAddable = requires(A a, B b) { a += b; };
template <typename A, typename B>
constexpr bool kAssignable = requires(A a, B b) { a = b; };
template <typename A, typename B>
constexpr bool kComparable = requires(A a, B b) { a < b; };

static_assert(!kAddable<HostSeconds, ModeledSeconds>,
              "adding modeled seconds to measured seconds must be ill-formed");
static_assert(!kSubtractable<HostSeconds, ModeledSeconds>);
static_assert(!kCompoundAddable<HostSeconds, ModeledSeconds>);
static_assert(!kAssignable<HostSeconds&, ModeledSeconds>);
static_assert(!kComparable<HostSeconds, ModeledSeconds>);
static_assert(!kAddable<HostSeconds, double>,
              "strong seconds must not mix with raw doubles");
static_assert(kAddable<HostSeconds, HostSeconds>);
static_assert(kSubtractable<HostSeconds, HostSeconds>);
static_assert(kCompoundAddable<HostSeconds, HostSeconds>);
static_assert(kComparable<HostSeconds, HostSeconds>);
static_assert(kAddable<ModeledSeconds, ModeledSeconds>);

TEST(DomainTyping, SumOfRejectsMixedDomains) {
  std::vector<TraceEvent> events;
  events.push_back(
      {"load", "cpu", Domain::HostMeasured, 0.0, 1.0, 0, 0});
  events.push_back(
      {"pass1.kernel", "kernel", Domain::DeviceModeled, 0.0, 2.0, 0, 0});
  EXPECT_THROW(sum_of<Domain::HostMeasured>(events), InvalidArgument);
  EXPECT_THROW(sum_of<Domain::DeviceModeled>(events), InvalidArgument);

  events.pop_back();
  EXPECT_DOUBLE_EQ(sum_of<Domain::HostMeasured>(events).value, 1.0);
}

TEST(DomainTyping, Labels) {
  EXPECT_EQ(domain_label(Domain::HostMeasured), "host_measured");
  EXPECT_EQ(domain_label(Domain::DeviceModeled), "device_modeled");
}

// ---------------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------------

TEST(Counters, AddAccumulatesAndRaiseIsMonotonic) {
  Tracer t;
  EXPECT_EQ(t.counter("tuples"), 0u);
  t.add_counter("tuples", 5);
  t.add_counter("tuples", 7);
  EXPECT_EQ(t.counter("tuples"), 12u);

  t.raise_counter("arena_peak_bytes", 100);
  t.raise_counter("arena_peak_bytes", 40);  // lower: high-water stays
  EXPECT_EQ(t.counter("arena_peak_bytes"), 100u);
  t.raise_counter("arena_peak_bytes", 150);
  EXPECT_EQ(t.counter("arena_peak_bytes"), 150u);

  const auto all = t.counters();
  EXPECT_EQ(all.at("tuples"), 12u);
  EXPECT_EQ(all.at("arena_peak_bytes"), 150u);
}

TEST(Counters, NullSafeHelpersAreNoOps) {
  add_counter(nullptr, "x", 1);
  raise_counter(nullptr, "x", 1);
  Tracer t;
  add_counter(&t, "x", 3);
  raise_counter(&t, "y", 9);
  EXPECT_EQ(t.counter("x"), 3u);
  EXPECT_EQ(t.counter("y"), 9u);
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

TEST(Spans, RaiiHostSpansRecordNestingDepth) {
  Tracer t;
  {
    HostSpan outer(&t, "phase");
    { HostSpan inner(&t, "phase.step"); }
  }
  { HostSpan other(&t, "other"); }

  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  // Inner spans close (and record) before their parents.
  EXPECT_EQ(evs[0].name, "phase.step");
  EXPECT_EQ(evs[0].depth, 1);
  EXPECT_EQ(evs[1].name, "phase");
  EXPECT_EQ(evs[1].depth, 0);
  EXPECT_EQ(evs[2].name, "other");
  EXPECT_EQ(evs[2].depth, 0);
  for (const TraceEvent& e : evs) {
    EXPECT_EQ(e.domain, Domain::HostMeasured);
    EXPECT_EQ(e.category, "cpu");
    EXPECT_GE(e.duration_seconds, 0.0);
  }
}

TEST(Spans, NullTracerSpansAreNoOps) {
  HostSpan span(nullptr, "ignored");
  DevicePhaseScope scope(nullptr, "ignored");
}

TEST(Spans, HostBusySumsOnlyDepthZeroSpans) {
  Tracer t;
  t.record_host_span("pass1", 0.0, 10.0, 0);
  t.record_host_span("pass1.stage", 1.0, 4.0, 1);  // nested detail
  t.record_host_span("report", 10.0, 2.0, 0);
  EXPECT_DOUBLE_EQ(t.host_busy().value, 12.0);
}

TEST(Spans, HostTotalMatchesPhasePrefixExactly) {
  Tracer t;
  t.record_host_span("pass1.stage", 0.0, 1.0, 0);
  t.record_host_span("pass1.consume", 1.0, 2.0, 0);
  t.record_host_span("pass10", 3.0, 100.0, 0);  // NOT phase "pass1"
  EXPECT_DOUBLE_EQ(t.host_total("pass1").value, 3.0);
  EXPECT_DOUBLE_EQ(t.host_total("pass10").value, 100.0);
}

TEST(Spans, ModeledOpsAreAttributedToTheDevicePhase) {
  Tracer t;
  t.record_modeled_op("kernel", 0.0, 1.5, /*stream=*/0);  // no phase set
  {
    DevicePhaseScope scope(&t, "pass1");
    t.record_modeled_op("kernel", 1.5, 2.0, 0);
    t.record_modeled_op("copy_h2d", 0.0, 0.5, 1);
    {
      DevicePhaseScope nested(&t, "aggregate1");
      t.record_modeled_op("copy_d2h", 3.5, 0.25, 1);
    }
    EXPECT_EQ(t.device_phase(), "pass1");  // restored by the nested scope
  }
  EXPECT_EQ(t.device_phase(), "");

  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].name, "kernel");
  EXPECT_EQ(evs[1].name, "pass1.kernel");
  EXPECT_EQ(evs[2].name, "pass1.copy_h2d");
  EXPECT_EQ(evs[2].track, 1u);
  EXPECT_EQ(evs[3].name, "aggregate1.copy_d2h");

  EXPECT_DOUBLE_EQ(t.modeled_busy().value, 4.25);
  EXPECT_DOUBLE_EQ(t.modeled_total("pass1").value, 2.5);
  EXPECT_DOUBLE_EQ(t.modeled_category_total("kernel").value, 3.5);
  EXPECT_DOUBLE_EQ(t.modeled_category_total("copy_h2d").value, 0.5);
  // Modeled ops never leak into the measured aggregate (and vice versa).
  EXPECT_DOUBLE_EQ(t.host_busy().value, 0.0);
}

// ---------------------------------------------------------------------------
// Chrome trace schema, validated on a real pipeline run.
// ---------------------------------------------------------------------------

graph::CsrGraph schema_test_graph() {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 8;
  cfg.min_family_size = 5;
  cfg.max_family_size = 16;
  cfg.num_singletons = 6;
  cfg.seed = 42;
  return graph::generate_planted_families(cfg).graph;
}

TEST(ChromeTrace, PipelineRunEmitsLabeledSchemaValidTrace) {
  const auto g = schema_test_graph();
  core::ShinglingParams params;
  params.c1 = 12;
  params.c2 = 6;

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
  Tracer tracer;
  core::GpClustOptions options;
  options.max_batch_elements = 64;  // force several batches
  options.tracer = &tracer;
  core::GpClust(ctx, params, options).cluster(g);

  // Every pipeline phase shows up in the trace.
  std::set<std::string> phases;
  for (const TraceEvent& e : tracer.events()) {
    phases.insert(std::string(e.name.substr(0, e.name.find('.'))));
  }
  for (const char* phase :
       {"pass1", "aggregate1", "pass2", "aggregate2", "report"}) {
    EXPECT_TRUE(phases.contains(phase)) << "missing phase " << phase;
  }

  // The pipeline counters advanced.
  EXPECT_EQ(tracer.counter("sequences"), g.num_vertices());
  for (const char* counter : {"tuples", "shingles", "batches", "h2d_bytes",
                              "d2h_bytes", "arena_peak_bytes"}) {
    EXPECT_GT(tracer.counter(counter), 0u) << "counter " << counter;
  }

  // Parse the export and check the schema: every span is a complete ("X")
  // event labeled host_measured or device_modeled, on the matching pid.
  const auto doc = json::parse(chrome_trace_json(tracer));
  const auto& events = doc.at("traceEvents").array();
  std::size_t complete = 0, counters_seen = 0;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").string();
    if (ph == "M") continue;
    if (ph == "C") {
      ++counters_seen;
      EXPECT_GE(e.at("args").at("value").number(), 0.0);
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_FALSE(e.at("name").string().empty());
    EXPECT_GE(e.at("ts").number(), 0.0);
    EXPECT_GE(e.at("dur").number(), 0.0);
    const std::string& domain = e.at("args").at("domain").string();
    const bool host = domain == "host_measured";
    EXPECT_TRUE(host || domain == "device_modeled") << domain;
    EXPECT_DOUBLE_EQ(e.at("pid").number(), host ? 0.0 : 1.0);
  }
  EXPECT_EQ(complete, tracer.num_events());
  EXPECT_EQ(counters_seen, tracer.counters().size());

  // The plain-text summary carries both labeled columns.
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("host measured (s)"), std::string::npos);
  EXPECT_NE(summary.find("device modeled (s)"), std::string::npos);
  EXPECT_NE(summary.find("counters:"), std::string::npos);
}

TEST(ChromeTrace, TracingDoesNotChangeTheClustering) {
  const auto g = schema_test_graph();
  core::ShinglingParams params;
  params.c1 = 12;
  params.c2 = 6;

  device::DeviceContext ctx1(device::DeviceSpec::small_test_device(4 << 20));
  auto untraced = core::GpClust(ctx1, params).cluster(g);

  device::DeviceContext ctx2(device::DeviceSpec::small_test_device(4 << 20));
  Tracer tracer;
  core::GpClustOptions options;
  options.tracer = &tracer;
  auto traced = core::GpClust(ctx2, params, options).cluster(g);

  untraced.normalize();
  traced.normalize();
  EXPECT_EQ(untraced.digest(), traced.digest());
  EXPECT_GT(tracer.num_events(), 0u);
}

// ---------------------------------------------------------------------------
// The bundled JSON parser itself.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsArraysAndObjects) {
  const auto v = json::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"nested": true}, "c": null, "s": "x\ny"})");
  EXPECT_DOUBLE_EQ(v.at("a").array()[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(v.at("a").array()[2].number(), -300.0);
  EXPECT_TRUE(v.at("b").at("nested").boolean());
  EXPECT_TRUE(v.at("c").is_null());
  EXPECT_EQ(v.at("s").string(), "x\ny");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("missing"));
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), ParseError);
  EXPECT_THROW(json::parse("[1,]"), ParseError);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), ParseError);
  EXPECT_THROW(json::parse("nul"), ParseError);
  const auto v = json::parse("[0]");
  EXPECT_THROW(v.at("key"), ParseError);       // not an object
  EXPECT_THROW(v.array()[0].string(), ParseError);  // wrong kind
}

}  // namespace
}  // namespace gpclust::obs
