// obs::Histogram: log2 bucketing, quantile interpolation and clamping,
// exact merge, and the Tracer latency-histogram surface (including the
// chrome://tracing counter-event export).

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gpclust::obs {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_seconds(), 0.0);
  EXPECT_EQ(h.mean_seconds(), 0.0);
  EXPECT_EQ(h.min_seconds(), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleSampleQuantilesAreTheSample) {
  Histogram h;
  h.record(0.0035);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.0035);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0035);
  // Interpolation is clamped to [min, max], so every quantile of a
  // one-sample histogram is that sample exactly.
  EXPECT_DOUBLE_EQ(h.p50(), 0.0035);
  EXPECT_DOUBLE_EQ(h.p95(), 0.0035);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0035);
}

TEST(Histogram, CountMeanAndBounds) {
  Histogram h;
  h.record(0.001);
  h.record(0.002);
  h.record(0.003);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 0.006);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 0.002);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.001);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.003);
}

TEST(Histogram, NegativeAndZeroClampToFirstBucket) {
  Histogram h;
  h.record(-1.0);
  h.record(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.min_seconds(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, QuantilesOrderedAndWithinBounds) {
  Histogram h;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(1e-6, 1e-1);
  for (int i = 0; i < 10000; ++i) h.record(dist(rng));
  const double p50 = h.p50(), p95 = h.p95(), p99 = h.p99();
  EXPECT_LE(h.min_seconds(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_seconds());
  // Bounded relative error: the winning bucket's edges are within 2x of
  // the true quantile, and interpolation stays inside the bucket.
  EXPECT_NEAR(p50, 0.05, 0.05 * 0.5);  // uniform median ~0.05
}

TEST(Histogram, QuantileRankMatchesExactOnPowerOfTwoSamples) {
  // Samples placed exactly on bucket boundaries: quantile() must walk to
  // the right bucket. 2^k nanoseconds land at the lower edge of bucket k.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(1e-6);  // ~bucket 10 (1024ns ~ 2^10)
  h.record(1.0);                                // ~bucket 30
  EXPECT_LT(h.p50(), 1e-5);
  // The 1.0s outlier lands in the [2^29, 2^30) ns bucket; the top
  // quantile must come from that bucket (bounded 2x relative error).
  EXPECT_GT(h.quantile(1.0), 0.5);
  EXPECT_LE(h.quantile(1.0), 1.0);
}

TEST(Histogram, MergeIsExactBucketwiseAddition) {
  Histogram a, b, both;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(1e-6, 1.0);
  for (int i = 0; i < 500; ++i) {
    const double x = dist(rng);
    a.record(x);
    both.record(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double y = dist(rng);
    b.record(y);
    both.record(y);
  }
  a += b;
  EXPECT_EQ(a.count(), both.count());
  EXPECT_DOUBLE_EQ(a.total_seconds(), both.total_seconds());
  EXPECT_DOUBLE_EQ(a.min_seconds(), both.min_seconds());
  EXPECT_DOUBLE_EQ(a.max_seconds(), both.max_seconds());
  for (std::size_t bucket = 0; bucket < Histogram::kNumBuckets; ++bucket) {
    EXPECT_EQ(a.bucket_count(bucket), both.bucket_count(bucket));
  }
  EXPECT_DOUBLE_EQ(a.p50(), both.p50());
  EXPECT_DOUBLE_EQ(a.p99(), both.p99());
}

TEST(Histogram, SummaryMentionsCountAndQuantiles) {
  Histogram h;
  h.record(0.002);
  const auto s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(TracerLatency, RecordAndReadBack) {
  Tracer tracer;
  tracer.record_latency("serve.latency", 0.001);
  tracer.record_latency("serve.latency", 0.004);
  tracer.record_latency("other", 0.5);
  const auto h = tracer.latency_histogram("serve.latency");
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 0.001);
  const auto all = tracer.latency_histograms();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("other").count(), 1u);
  // Unknown name reads as empty, not as an error.
  EXPECT_EQ(tracer.latency_histogram("missing").count(), 0u);
}

TEST(TracerLatency, MergeLatencyFoldsWorkerLocalHistograms) {
  Tracer tracer;
  Histogram worker1, worker2;
  worker1.record(0.001);
  worker1.record(0.002);
  worker2.record(0.003);
  tracer.merge_latency("serve.latency", worker1);
  tracer.merge_latency("serve.latency", worker2);
  EXPECT_EQ(tracer.latency_histogram("serve.latency").count(), 3u);
}

TEST(TracerLatency, ChromeTraceExportsHistogramCounters) {
  Tracer tracer;
  for (int i = 0; i < 100; ++i) tracer.record_latency("serve.latency", 0.001);
  const auto doc = json::parse(chrome_trace_json(tracer));
  bool found = false;
  for (const auto& event : doc.at("traceEvents").array()) {
    if (event.at("name").string() != "latency:serve.latency") continue;
    found = true;
    EXPECT_EQ(event.at("ph").string(), "C");
    EXPECT_EQ(event.at("args").at("count").number(), 100.0);
    EXPECT_GT(event.at("args").at("p50_us").number(), 0.0);
    EXPECT_GE(event.at("args").at("p99_us").number(),
              event.at("args").at("p50_us").number());
  }
  EXPECT_TRUE(found);
}

TEST(JsonDump, RoundTripsThroughParse) {
  const auto doc = json::object({
      {"name", json::string("x\"y\n")},
      {"count", json::number(123)},
      {"ratio", json::number(0.25)},
      {"flag", json::boolean(true)},
      {"items", json::array({json::number(1), json::number(2)})},
  });
  const auto text = json::dump(doc);
  const auto back = json::parse(text);
  EXPECT_EQ(back.at("name").string(), "x\"y\n");
  EXPECT_EQ(back.at("count").number(), 123.0);
  EXPECT_EQ(back.at("ratio").number(), 0.25);
  EXPECT_TRUE(back.at("flag").boolean());
  EXPECT_EQ(back.at("items").array().size(), 2u);
  // Integers print without a decimal point (stable, diff-friendly files).
  EXPECT_NE(text.find("\"count\":123"), std::string::npos);
}

}  // namespace
}  // namespace gpclust::obs
