// QueryService hot reload (DESIGN.md §15): reload()/reload_with_delta()
// swap the served store without pausing or draining the worker pool.
// Queries dequeued after the swap classify against the new store (even if
// they were queued before it), answers over the reloaded store are
// bit-identical to a service constructed over it directly, worker profile
// caches reset across generations (rep ids change meaning), and a failed
// delta reload leaves the old generation serving.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "seq/family_model.hpp"
#include "serve/query_service.hpp"
#include "store/delta.hpp"

namespace gpclust::serve {
namespace {

struct Workload {
  seq::SequenceSet sequences;
  std::vector<u32> family;
};

Workload make_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 6;
  config.min_members = 3;
  config.max_members = 8;
  config.num_background_orfs = 2;
  config.seed = 29;
  auto mg = seq::generate_metagenome(config);
  return {std::move(mg.sequences), std::move(mg.family)};
}

/// Base = store over the first half of the workload, next = store over all
/// of it — the prefix-extension shape snapshot deltas require.
struct Fixture {
  Workload w = make_workload();
  store::FamilyStore base = prefix_store(w.sequences.size() / 2);
  store::FamilyStore next = prefix_store(w.sequences.size());

  store::FamilyStore prefix_store(std::size_t n) const {
    const seq::SequenceSet head(w.sequences.begin(),
                                w.sequences.begin() +
                                    static_cast<std::ptrdiff_t>(n));
    const std::vector<u32> fam(w.family.begin(),
                               w.family.begin() +
                                   static_cast<std::ptrdiff_t>(n));
    return store::build_family_store(head, fam);
  }

  std::vector<std::string> queries() const {
    std::vector<std::string> out;
    for (const auto& record : w.sequences) out.push_back(record.residues);
    return out;
  }

  std::vector<ClassifyResult> direct(const store::FamilyStore& store,
                                     const ClassifyParams& params) const {
    FamilyIndex index(store);
    ClassifyScratch scratch;
    std::vector<ClassifyResult> out;
    for (const auto& q : queries()) {
      out.push_back(index.classify(q, params, scratch));
    }
    return out;
  }
};

std::vector<ClassifyResult> results_of(std::vector<QueryOutcome> outcomes) {
  std::vector<ClassifyResult> out;
  for (auto& o : outcomes) {
    EXPECT_EQ(o.rejected, RejectReason::None);
    out.push_back(o.result);
  }
  return out;
}

TEST(QueryServiceReload, SwapsAnswersToTheNewStore) {
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.base, config);
  EXPECT_EQ(service.generation(), 0u);

  const auto before = results_of(service.classify_batch(queries));
  service.reload(fx.next);
  EXPECT_EQ(service.generation(), 1u);
  const auto after = results_of(service.classify_batch(queries));

  const auto base_direct = fx.direct(fx.base, config.classify);
  const auto next_direct = fx.direct(fx.next, config.classify);
  EXPECT_EQ(before, base_direct);
  EXPECT_EQ(after, next_direct);
  // The swap is observable: the two stores really answer differently
  // (tail-half members are unknown to the base).
  EXPECT_NE(base_direct, next_direct);
}

TEST(QueryServiceReload, QueuedQueriesDequeueAgainstTheSwappedGeneration) {
  // Queries admitted BEFORE the reload but dequeued after it classify
  // against the new store — the queue is never drained for a swap.
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = queries.size() + 1;
  config.start_paused = true;
  QueryService service(fx.base, config);

  std::vector<std::future<QueryOutcome>> futures;
  for (const auto& q : queries) futures.push_back(service.submit(q));
  service.reload(fx.next);
  service.resume();

  std::vector<QueryOutcome> outcomes;
  for (auto& f : futures) outcomes.push_back(f.get());
  EXPECT_EQ(results_of(std::move(outcomes)),
            fx.direct(fx.next, config.classify));
}

TEST(QueryServiceReload, DeltaReloadMatchesDirectServiceOverNext) {
  Fixture fx;
  const auto queries = fx.queries();
  const store::SnapshotDelta delta =
      store::build_snapshot_delta(fx.base, fx.next, 1);

  ServiceConfig config;
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.base, config);
  service.reload_with_delta(delta);
  EXPECT_EQ(service.generation(), 1u);
  EXPECT_EQ(results_of(service.classify_batch(queries)),
            fx.direct(fx.next, config.classify));
}

TEST(QueryServiceReload, FailedDeltaReloadKeepsServingTheOldGeneration) {
  Fixture fx;
  const auto queries = fx.queries();
  // A delta built against `next` cannot apply to `base`: wrong base CRC.
  const store::SnapshotDelta skewed =
      store::build_snapshot_delta(fx.next, fx.next, 1);

  ServiceConfig config;
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.base, config);
  EXPECT_THROW(service.reload_with_delta(skewed), store::SnapshotError);
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(results_of(service.classify_batch(queries)),
            fx.direct(fx.base, config.classify));
}

TEST(QueryServiceReload, BucketedSeedIndexIsRebuiltForTheNewStore) {
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.queue_capacity = queries.size() + 1;
  config.seed_index = SeedIndex::Bucketed;
  config.bucket = BucketIndexParams{0, 1};  // full recall: bit-identity
  QueryService service(fx.base, config);
  service.reload(fx.next);
  EXPECT_EQ(results_of(service.classify_batch(queries)),
            fx.direct(fx.next, config.classify));
}

TEST(QueryServiceReload, ProfileCacheResetsAndCountersStayMonotone) {
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.base, config);

  service.classify_batch(queries);
  service.classify_batch(queries);  // warm: second pass hits the LRU
  const auto warm = service.stats();
  EXPECT_GE(warm.profile_hits, 1u);

  // Reloading the SAME content still starts a new generation: the cache
  // must be rebuilt (rep ids are only trusted within one store), so a
  // re-query costs builds again — and the retired counters keep the
  // stats monotone rather than dropping to zero.
  service.reload(fx.prefix_store(fx.w.sequences.size() / 2));
  service.classify_batch(queries);
  const auto reloaded = service.stats();
  EXPECT_GT(reloaded.profile_builds, warm.profile_builds);
  EXPECT_GE(reloaded.profile_hits, warm.profile_hits);
}

TEST(QueryServiceReload, ReloadsUnderConcurrentLoadServeEveryQuery) {
  // Hammer the service from two submitter threads while the main thread
  // flips between the two stores; every outcome must be exactly the
  // base-store or next-store answer for its query — never a blend.
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 1024;
  QueryService service(fx.base, config);

  const auto base_direct = fx.direct(fx.base, config.classify);
  const auto next_direct = fx.direct(fx.next, config.classify);

  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> served{0};
  auto submitter = [&] {
    for (int round = 0; round < 10; ++round) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const QueryOutcome outcome = service.submit(queries[i]).get();
        if (outcome.rejected != RejectReason::None) continue;
        ++served;
        if (outcome.result != base_direct[i] &&
            outcome.result != next_direct[i]) {
          ++mismatches;
        }
      }
    }
  };
  std::thread a(submitter), b(submitter);
  for (int flip = 0; flip < 6; ++flip) {
    service.reload(flip % 2 == 0 ? fx.next : fx.base);
  }
  a.join();
  b.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(served.load(), queries.size());
  EXPECT_EQ(service.generation(), 6u);
}

}  // namespace
}  // namespace gpclust::serve
