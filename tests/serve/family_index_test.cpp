// serve::FamilyIndex — round-trip identity (planted family members
// classify back to their own family), determinism across scratch and
// cache states, and the outcome taxonomy (InvalidQuery / NoSeeds /
// BelowThreshold / Assigned).

#include <gtest/gtest.h>

#include "seq/family_model.hpp"
#include "serve/family_index.hpp"
#include "store/snapshot.hpp"

namespace gpclust::serve {
namespace {

seq::SyntheticMetagenome make_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 8;
  config.min_members = 3;
  config.max_members = 10;
  config.num_background_orfs = 4;
  config.seed = 17;
  return seq::generate_metagenome(config);
}

struct Fixture {
  seq::SyntheticMetagenome mg = make_workload();
  store::FamilyStore store =
      store::build_family_store(mg.sequences, mg.family);
  FamilyIndex index{store};
  ClassifyParams params;
};

TEST(FamilyIndex, MembersClassifyBackToTheirOwnFamily) {
  Fixture fx;
  ClassifyScratch scratch;
  std::size_t assigned_home = 0;
  for (std::size_t i = 0; i < fx.store.num_sequences(); ++i) {
    const auto result =
        fx.index.classify(fx.store.sequence(i), fx.params, scratch);
    if (result.outcome != ClassifyOutcome::Assigned) continue;
    ASSERT_LT(result.family, fx.store.num_families);
    ASSERT_LT(result.best_rep, fx.store.num_sequences());
    EXPECT_EQ(fx.store.family_of[result.best_rep], result.family);
    if (result.family == fx.store.family_of[i]) ++assigned_home;
  }
  // The round-trip identity floor the serving layer documents: at least
  // 70% of source ORFs classify back to the family they came from (in
  // practice ~100% on this workload — the floor leaves seed headroom).
  const double fraction = static_cast<double>(assigned_home) /
                          static_cast<double>(fx.store.num_sequences());
  EXPECT_GE(fraction, 0.7) << assigned_home << " of "
                           << fx.store.num_sequences();
}

TEST(FamilyIndex, RepresentativesClassifyToTheirOwnFamily) {
  Fixture fx;
  ClassifyScratch scratch;
  for (u32 rep_seq : fx.store.representatives) {
    const auto result =
        fx.index.classify(fx.store.sequence(rep_seq), fx.params, scratch);
    ASSERT_EQ(result.outcome, ClassifyOutcome::Assigned)
        << "representative " << rep_seq;
    EXPECT_EQ(result.family, fx.store.family_of[rep_seq]);
  }
}

TEST(FamilyIndex, DeterministicAcrossScratchAndCacheStates) {
  Fixture fx;
  ClassifyScratch warm;  // reused across all queries (stateful LRU)
  ClassifyScratch tiny(1);  // capacity-1 cache: every query evicts
  for (std::size_t i = 0; i < fx.store.num_sequences(); i += 3) {
    const std::string_view query = fx.store.sequence(i);
    ClassifyScratch fresh;
    const auto a = fx.index.classify(query, fx.params, fresh);
    const auto b = fx.index.classify(query, fx.params, warm);
    const auto c = fx.index.classify(query, fx.params, tiny);
    const auto d = fx.index.classify(query, fx.params, warm);  // re-ask
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_EQ(a, d);
  }
}

TEST(FamilyIndex, InvalidQueriesAreTyped) {
  Fixture fx;
  ClassifyScratch scratch;
  for (const char* bad : {"", "PROTE1N", "acgt nope"}) {
    const auto result = fx.index.classify(bad, fx.params, scratch);
    EXPECT_EQ(result.outcome, ClassifyOutcome::InvalidQuery) << bad;
    EXPECT_EQ(result.family, kNoFamily);
    EXPECT_EQ(result.num_alignments, 0u);
  }
}

TEST(FamilyIndex, QueryShorterThanKHasNoSeeds) {
  Fixture fx;
  ASSERT_GE(fx.store.kmer_k, 2u);
  const std::string query(fx.store.kmer_k - 1, 'A');  // valid but seedless
  ClassifyScratch scratch;
  const auto result = fx.index.classify(query, fx.params, scratch);
  EXPECT_EQ(result.outcome, ClassifyOutcome::NoSeeds);
  EXPECT_EQ(result.family, kNoFamily);
  EXPECT_EQ(result.num_candidates, 0u);
}

TEST(FamilyIndex, UnreachableSeedFloorMeansNoSeeds) {
  Fixture fx;
  fx.params.min_shared_kmers = 1u << 20;
  ClassifyScratch scratch;
  const auto result =
      fx.index.classify(fx.store.sequence(0), fx.params, scratch);
  EXPECT_EQ(result.outcome, ClassifyOutcome::NoSeeds);
  EXPECT_EQ(result.num_alignments, 0u);
}

TEST(FamilyIndex, BelowThresholdReportsBestScoreWithoutAFamily) {
  Fixture fx;
  fx.params.min_score = 1 << 24;  // no alignment can clear this
  ClassifyScratch scratch;
  const auto result =
      fx.index.classify(fx.store.sequence(0), fx.params, scratch);
  EXPECT_EQ(result.outcome, ClassifyOutcome::BelowThreshold);
  EXPECT_EQ(result.family, kNoFamily);
  EXPECT_GE(result.num_alignments, 1u);
  EXPECT_GT(result.score, 0);  // best raw score still reported
  EXPECT_LT(result.best_rep, fx.store.num_sequences());
}

TEST(FamilyIndex, MaxCandidatesBoundsAlignmentWork) {
  Fixture fx;
  const std::string_view query = fx.store.sequence(0);
  ClassifyScratch scratch;
  const auto wide = fx.index.classify(query, fx.params, scratch);
  fx.params.max_candidates = 1;
  const auto narrow = fx.index.classify(query, fx.params, scratch);
  EXPECT_EQ(narrow.num_alignments, 1u);
  EXPECT_GE(wide.num_alignments, narrow.num_alignments);
  // Truncation keeps the best-seeded candidate, and the candidate count
  // (pre-truncation) is unchanged.
  EXPECT_EQ(wide.num_candidates, narrow.num_candidates);
}

}  // namespace
}  // namespace gpclust::serve
