// serve::BucketIndex — the bucketed seed index's contract against the
// postings ground truth (DESIGN.md §13):
//
//   * full-recall configuration (num_bands == 0): bit-identical
//     CandidateScores and ClassifyResults for EVERY query, including
//     invalid and sub-k ones — the identity the CI tier 1e smoke pins
//     end-to-end;
//   * default banding: every surviving candidate carries the exact
//     postings-path shared count and Smith-Waterman score (subset-with-
//     exact-counts), and assignment recall against the postings path's
//     assigned set stays >= 0.95 on mutated family members;
//   * sharding: per-shard bucket tables partition the single-node
//     candidate set, so the sharded tier under --seed-index=bucketed is
//     digest-identical to single-node (postings at full recall, bucketed
//     single-node under banding), fail-over included;
//   * signatures: build-time (postings-derived) and serve-time
//     (residue-derived) sketches of the same sequence are bit-identical,
//     and parameter validation is typed.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "seq/alphabet.hpp"
#include "seq/family_model.hpp"
#include "serve/bucket_index.hpp"
#include "serve/family_index.hpp"
#include "serve/sharded_service.hpp"
#include "store/signature.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace gpclust::serve {
namespace {

seq::SyntheticMetagenome make_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 8;
  config.min_members = 3;
  config.max_members = 10;
  config.num_background_orfs = 4;
  config.seed = 17;
  return seq::generate_metagenome(config);
}

/// 8% point substitutions over the standard residues — the "new ORF from
/// a known family" query shape of the recall measurements.
std::string mutate(std::string_view residues, u64 seed) {
  util::SplitMix64 rng(seed);
  std::string out(residues);
  for (char& c : out) {
    if (rng.next() % 100 < 8) {
      c = seq::kResidues[rng.next() % seq::kNumStandardResidues];
    }
  }
  return out;
}

struct Fixture {
  seq::SyntheticMetagenome mg = make_workload();
  store::FamilyStore store =
      store::build_family_store(mg.sequences, mg.family);
  FamilyIndex index{store};
  ClassifyParams params;

  /// Member sequences, mutated members, plus the taxonomy edge cases.
  std::vector<std::string> queries() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < store.num_sequences(); ++i) {
      out.emplace_back(store.sequence(i));
      out.push_back(mutate(store.sequence(i), 0xb0c4e7 + i));
    }
    out.emplace_back("");                                // InvalidQuery
    out.emplace_back("PROTE1N");                         // InvalidQuery
    out.emplace_back(std::string(store.kmer_k - 1, 'A'));  // sub-k: NoSeeds
    out.emplace_back("ACD");                             // NoSeeds
    return out;
  }
};

void expect_scores_equal(const CandidateScores& a, const CandidateScores& b,
                         const std::string& label) {
  EXPECT_EQ(a.invalid, b.invalid) << label;
  EXPECT_EQ(a.num_candidates, b.num_candidates) << label;
  EXPECT_EQ(a.scored, b.scored) << label;
}

// ---------------------------------------------------------------------------
// Full recall: bit-identity with the postings path
// ---------------------------------------------------------------------------

TEST(BucketIndex, FullRecallIsBitIdenticalToPostings) {
  Fixture fx;
  const BucketIndex buckets(fx.store, BucketIndexParams{0, 1});
  ClassifyScratch postings_scratch;
  ClassifyScratch bucket_scratch;
  for (const std::string& q : fx.queries()) {
    const auto via_postings =
        fx.index.score_candidates(q, fx.params, postings_scratch);
    const auto via_buckets =
        fx.index.score_candidates(q, fx.params, bucket_scratch, buckets);
    expect_scores_equal(via_postings, via_buckets, q);
    EXPECT_EQ(fx.index.classify(q, fx.params, postings_scratch),
              fx.index.classify(q, fx.params, bucket_scratch, buckets))
        << q;
  }
}

TEST(BucketIndex, FullRecallHoldsForAnyMinBandHitsBelowTheSeedFloor) {
  // In full-recall mode collisions ARE shared k-mers, so any
  // min_band_hits <= min_shared_kmers filters nothing the seed floor
  // would keep — identity must survive the whole legal range.
  Fixture fx;
  ASSERT_GE(fx.params.min_shared_kmers, 2u);
  const BucketIndex buckets(fx.store,
                            BucketIndexParams{0, fx.params.min_shared_kmers});
  ClassifyScratch a;
  ClassifyScratch b;
  for (const std::string& q : fx.queries()) {
    expect_scores_equal(fx.index.score_candidates(q, fx.params, a),
                        fx.index.score_candidates(q, fx.params, b, buckets),
                        q);
  }
}

// ---------------------------------------------------------------------------
// Default banding: exactness of survivors + the recall floor
// ---------------------------------------------------------------------------

TEST(BucketIndex, BandedCandidatesAreASubsetWithExactCounts) {
  Fixture fx;
  // No truncation: every floor-meeting postings candidate gets scored, so
  // subset checks see the full ground-truth list.
  fx.params.max_candidates = 1u << 20;
  const BucketIndex buckets(fx.store, BucketIndexParams{});
  ClassifyScratch a;
  ClassifyScratch b;
  for (const std::string& q : fx.queries()) {
    const auto truth = fx.index.score_candidates(q, fx.params, a);
    const auto banded = fx.index.score_candidates(q, fx.params, b, buckets);
    EXPECT_EQ(truth.invalid, banded.invalid) << q;
    EXPECT_LE(banded.num_candidates, truth.num_candidates) << q;
    for (const ScoredCandidate& cand : banded.scored) {
      // Same rep, same exact shared count, same exact SW score.
      const auto it =
          std::find_if(truth.scored.begin(), truth.scored.end(),
                       [&](const ScoredCandidate& t) {
                         return t.rep == cand.rep;
                       });
      ASSERT_NE(it, truth.scored.end()) << q << " rep " << cand.rep;
      EXPECT_EQ(*it, cand) << q;
    }
  }
}

TEST(BucketIndex, DefaultBandingRecallFloorOnMutatedMembers) {
  Fixture fx;
  const BucketIndex buckets(fx.store, BucketIndexParams{});
  ClassifyScratch a;
  ClassifyScratch b;
  std::size_t assigned = 0;
  std::size_t recalled = 0;
  for (std::size_t i = 0; i < fx.store.num_sequences(); ++i) {
    const std::string q = mutate(fx.store.sequence(i), 0x5eca11 + i);
    const auto truth = fx.index.classify(q, fx.params, a);
    if (truth.outcome != ClassifyOutcome::Assigned) continue;
    ++assigned;
    const auto banded = fx.index.classify(q, fx.params, b, buckets);
    if (banded.outcome == ClassifyOutcome::Assigned &&
        banded.family == truth.family) {
      ++recalled;
    }
  }
  ASSERT_GT(assigned, 0u);
  const double recall =
      static_cast<double>(recalled) / static_cast<double>(assigned);
  EXPECT_GE(recall, 0.95) << recalled << " of " << assigned;
}

// ---------------------------------------------------------------------------
// Sharding: per-shard tables partition the single-node candidate set
// ---------------------------------------------------------------------------

TEST(BucketIndex, ShardSubsetsPartitionTheGlobalCandidateSet) {
  Fixture fx;
  fx.params.max_candidates = 1u << 20;
  const BucketIndexParams params;  // default banding
  const BucketIndex global(fx.store, params);
  const std::size_t num_shards = 3;
  std::vector<BucketIndex> shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::vector<u32> reps;
    for (u32 r = 0; r < fx.store.representatives.size(); ++r) {
      if (shard_of_rep(r, num_shards) == s) reps.push_back(r);
    }
    shards.emplace_back(fx.store, params, std::span<const u32>(reps));
  }
  ClassifyScratch scratch;
  for (const std::string& q : fx.queries()) {
    const auto whole = fx.index.score_candidates(q, fx.params, scratch, global);
    CandidateScores merged;
    merged.invalid = whole.invalid;
    for (const BucketIndex& shard : shards) {
      const auto part = fx.index.score_candidates(q, fx.params, scratch, shard);
      merged.num_candidates += part.num_candidates;
      merged.scored.insert(merged.scored.end(), part.scored.begin(),
                           part.scored.end());
    }
    std::sort(merged.scored.begin(), merged.scored.end(),
              [](const ScoredCandidate& x, const ScoredCandidate& y) {
                return std::pair(y.shared, x.rep) < std::pair(x.shared, y.rep);
              });
    expect_scores_equal(whole, merged, q);
  }
}

TEST(BucketIndex, ShardedFullRecallMatchesPostingsDigestAcrossGrid) {
  Fixture fx;
  const auto queries = fx.queries();
  ClassifyScratch scratch;
  std::vector<ClassifyResult> expected;
  for (const auto& q : queries) {
    expected.push_back(fx.index.classify(q, fx.params, scratch));
  }
  for (std::size_t num_ranks : {1u, 4u}) {
    for (std::size_t replication : {1u, 2u}) {
      if (replication > num_ranks) continue;
      ShardedConfig config;
      config.num_ranks = num_ranks;
      config.replication = replication;
      config.num_workers = 2;
      config.seed_index = SeedIndex::Bucketed;
      config.bucket = BucketIndexParams{0, 1};
      const auto results = sharded_classify_batch(fx.store, queries, config);
      EXPECT_EQ(results_digest(results), results_digest(expected))
          << "ranks=" << num_ranks << " repl=" << replication;
    }
  }
}

TEST(BucketIndex, ShardedBandedWithFailoverMatchesSingleNodeBucketed) {
  Fixture fx;
  const auto queries = fx.queries();
  const BucketIndex buckets(fx.store, BucketIndexParams{});
  ClassifyScratch scratch;
  std::vector<ClassifyResult> expected;
  for (const auto& q : queries) {
    expected.push_back(fx.index.classify(q, fx.params, scratch, buckets));
  }
  ShardedConfig config;
  config.num_ranks = 4;
  config.replication = 2;
  config.seed_index = SeedIndex::Bucketed;  // default BucketIndexParams
  config.kill_rank = 1;
  config.kill_after_requests = 5;
  config.resilience.mode = fault::ResilienceMode::Fallback;
  ShardedStats stats;
  const auto results =
      sharded_classify_batch(fx.store, queries, config, &stats);
  EXPECT_EQ(results_digest(results), results_digest(expected));
  EXPECT_EQ(stats.rank_failures, 1u);
}

// ---------------------------------------------------------------------------
// Signatures + parameter validation
// ---------------------------------------------------------------------------

TEST(BucketIndex, BuildTimeAndServeTimeSketchesAgree) {
  // A rep's persisted signature (postings-derived at build time) must be
  // bit-identical to sketching its residues the way the serve tier
  // sketches a query — otherwise a rep could miss its own buckets.
  Fixture fx;
  const store::SignatureHashes hashes(fx.store.sig_num_hashes,
                                      fx.store.sig_seed);
  for (std::size_t r = 0; r < fx.store.representatives.size(); ++r) {
    const std::string_view residues =
        fx.store.sequence(fx.store.representatives[r]);
    std::vector<u64> codes;
    const std::size_t k = fx.store.kmer_k;
    for (std::size_t pos = 0; pos + k <= residues.size(); ++pos) {
      u64 code = 0;
      for (std::size_t j = 0; j < k; ++j) {
        code = code * seq::kNumResidues + seq::residue_index(residues[pos + j]);
      }
      codes.push_back(code);
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    std::vector<u64> sketch(fx.store.sig_num_hashes);
    hashes.sketch(codes, sketch);
    const std::span<const u64> stored =
        std::span<const u64>(fx.store.signatures)
            .subspan(r * fx.store.sig_num_hashes, fx.store.sig_num_hashes);
    EXPECT_TRUE(std::equal(sketch.begin(), sketch.end(), stored.begin(),
                           stored.end()))
        << "rep " << r;
  }
}

TEST(BucketIndex, RepsShorterThanKStayOutOfEveryBucket) {
  seq::SequenceSet sequences;
  sequences.push_back({"long", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"});
  sequences.push_back({"tiny", "MKT"});  // shorter than k = 5
  const auto store = store::build_family_store(sequences, {0, 1});
  // The short rep's signature is all-empty...
  const std::size_t tiny_rep = 1;
  ASSERT_EQ(store.representatives[tiny_rep], 1u);
  for (u64 slot : std::span<const u64>(store.signatures)
                      .subspan(tiny_rep * store.sig_num_hashes,
                               store.sig_num_hashes)) {
    EXPECT_EQ(slot, store::kEmptySignatureSlot);
  }
  // ...and it never becomes a candidate, in either mode, even for itself.
  const FamilyIndex index(store);
  ClassifyScratch scratch;
  for (const u64 bands : {u64{0}, store::kDefaultSignatureHashes}) {
    const BucketIndex buckets(store, BucketIndexParams{bands, 1});
    const auto result = index.classify("MKT", {}, scratch, buckets);
    EXPECT_EQ(result.outcome, ClassifyOutcome::NoSeeds) << bands;
    EXPECT_EQ(result.num_candidates, 0u) << bands;
  }
}

TEST(BucketIndex, ParameterValidationIsTyped) {
  Fixture fx;
  ASSERT_EQ(fx.store.sig_num_hashes, store::kDefaultSignatureHashes);
  // min_band_hits must be >= 1.
  EXPECT_THROW(BucketIndex(fx.store, BucketIndexParams{0, 0}),
               InvalidArgument);
  // num_bands must divide the signature width.
  EXPECT_THROW(BucketIndex(fx.store, BucketIndexParams{7, 1}),
               InvalidArgument);
  // min_band_hits cannot exceed num_bands.
  EXPECT_THROW(BucketIndex(fx.store, BucketIndexParams{4, 5}),
               InvalidArgument);
  // Covered reps must exist.
  const std::vector<u32> bogus{static_cast<u32>(
      fx.store.representatives.size())};
  EXPECT_THROW(BucketIndex(fx.store, BucketIndexParams{},
                           std::span<const u32>(bogus)),
               InvalidArgument);
}

TEST(BucketIndex, SeedIndexNamesRoundTrip) {
  EXPECT_EQ(seed_index_name(SeedIndex::Postings), "postings");
  EXPECT_EQ(seed_index_name(SeedIndex::Bucketed), "bucketed");
  EXPECT_EQ(parse_seed_index("postings"), SeedIndex::Postings);
  EXPECT_EQ(parse_seed_index("bucketed"), SeedIndex::Bucketed);
  EXPECT_THROW(parse_seed_index("lsh"), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::serve
