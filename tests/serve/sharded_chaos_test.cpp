// Sharded-serving chaos tier (ctest label: chaos; tools/ci.sh runs this
// binary under ASan). Three properties of the fault-tolerant serving
// tier (DESIGN.md §12):
//
//   1. Acceptance grid — {1 rank, 4 ranks} x {replication 1, 2} x
//      {no faults, rank_down leaving >= 1 replica per shard}: results are
//      digest-identical to single-node classification.
//   2. Seeded random fault schedules (comm_fail bursts, static rank_down,
//      the mid-stream kill seam, every resilience mode): every run either
//      completes bit-identical or throws a typed CommError. Never a wrong
//      answer, never an untyped error, never a hang (completion of the
//      test IS the no-hang witness; the comm layer wakes every blocked
//      rank on abort).
//   3. World abort semantics under concurrent serving: a rank blocked in
//      recv or barrier while a peer dies mid-scatter wakes with a typed
//      CommError (op "abort"), and the originating failure stays primary.
//
// Plus the arena invariant: a store built by the device-backed clustering
// pipeline and then served through the sharded tier leaves the device
// arena empty — serving is host-only.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "align/homology_graph.hpp"
#include "core/gpclust.hpp"
#include "dist/comm.hpp"
#include "fault/fault_plan.hpp"
#include "seq/family_model.hpp"
#include "serve/sharded_service.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace gpclust::serve {
namespace {

seq::SyntheticMetagenome chaos_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 5;
  config.min_members = 3;
  config.max_members = 7;
  config.num_background_orfs = 2;
  config.seed = 31;
  return seq::generate_metagenome(config);
}

struct Fixture {
  seq::SyntheticMetagenome mg = chaos_workload();
  store::FamilyStore store =
      store::build_family_store(mg.sequences, mg.family);

  std::vector<std::string> queries() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < store.num_sequences(); ++i) {
      out.emplace_back(store.sequence(i));
    }
    out.emplace_back("");     // InvalidQuery rides every schedule
    out.emplace_back("ACD");  // NoSeeds too
    return out;
  }

  u64 expected_digest(const std::vector<std::string>& queries) const {
    const FamilyIndex index(store);
    ClassifyScratch scratch;
    std::vector<ClassifyResult> results;
    for (const auto& q : queries) {
      results.push_back(index.classify(q, {}, scratch));
    }
    return results_digest(results);
  }
};

// ---------------------------------------------------------------------------
// 1. Acceptance grid
// ---------------------------------------------------------------------------

TEST(ShardedChaos, DigestIdentityAcceptanceGrid) {
  Fixture fx;
  const auto queries = fx.queries();
  const u64 expected = fx.expected_digest(queries);

  for (std::size_t num_ranks : {1u, 4u}) {
    for (std::size_t replication : {1u, 2u}) {
      if (replication > num_ranks) continue;
      for (const bool with_fault : {false, true}) {
        // A static rank_down only leaves every shard a replica when the
        // shards are replicated.
        if (with_fault && replication < 2) continue;
        for (const auto seed_index :
             {SeedIndex::Postings, SeedIndex::Bucketed}) {
          fault::FaultPlan plan;
          if (with_fault) plan.add_rank_down(num_ranks - 1);
          ShardedConfig config;
          config.num_ranks = num_ranks;
          config.replication = replication;
          config.num_workers = 2;
          config.fault_plan = with_fault ? &plan : nullptr;
          config.resilience.mode = fault::ResilienceMode::Fallback;
          config.seed_index = seed_index;
          // Full-recall banding: the bucketed path is digest-identical to
          // the postings expectation, fail-over included.
          config.bucket = BucketIndexParams{0, 1};
          ShardedStats stats;
          const auto results =
              sharded_classify_batch(fx.store, queries, config, &stats);
          EXPECT_EQ(results_digest(results), expected)
              << "ranks=" << num_ranks << " repl=" << replication
              << " fault=" << with_fault << " seed_index="
              << seed_index_name(seed_index);
          EXPECT_EQ(stats.rank_failures, with_fault ? 1u : 0u);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Seeded random fault schedules
// ---------------------------------------------------------------------------

/// Random comm-layer schedule: point faults and persistent bursts on
/// send/recv, an occasional static rank_down. Global call indices, so a
/// burst can land on any rank — including the router.
fault::FaultPlan random_comm_plan(u64 seed, std::size_t num_ranks) {
  util::SplitMix64 rng(seed);
  fault::FaultPlan plan;
  const std::size_t num_faults = rng.next() % 3;
  for (std::size_t i = 0; i < num_faults; ++i) {
    const auto site = rng.next() % 2 == 0 ? fault::FaultSite::Send
                                          : fault::FaultSite::Recv;
    const u64 index = rng.next() % 256;
    if (rng.next() % 3 == 0) {
      plan.add_range(site, index, index + 8 + rng.next() % 128);
    } else {
      plan.add(site, index);
    }
  }
  if (rng.next() % 3 == 0) {
    plan.add_rank_down(static_cast<std::size_t>(rng.next() % num_ranks));
  }
  return plan;
}

class ShardedChaosSchedule : public ::testing::TestWithParam<int> {};

TEST_P(ShardedChaosSchedule, CompletesIdenticallyOrFailsTyped) {
  Fixture fx;
  const auto queries = fx.queries();
  const u64 expected = fx.expected_digest(queries);

  const u64 seed = 0x5AADEDULL * 1000003ULL + static_cast<u64>(GetParam());
  util::SplitMix64 knob_rng(seed ^ 0x5eedULL);

  const std::size_t num_ranks = 1 + knob_rng.next() % 4;
  const std::size_t replication =
      1 + knob_rng.next() % std::min<std::size_t>(2, num_ranks);

  for (const auto mode :
       {fault::ResilienceMode::Off, fault::ResilienceMode::Retry,
        fault::ResilienceMode::Fallback}) {
    auto plan = random_comm_plan(seed, num_ranks);
    const std::string spec = plan.to_string();
    ShardedConfig config;
    config.num_ranks = num_ranks;
    config.replication = replication;
    config.num_workers = 1 + knob_rng.next() % 2;
    config.queue_capacity = 1 + knob_rng.next() % 8;
    config.fault_plan = &plan;
    config.resilience.mode = mode;
    if (knob_rng.next() % 3 == 0) {
      config.kill_rank = static_cast<std::size_t>(knob_rng.next() % num_ranks);
      config.kill_after_requests = knob_rng.next() % 8;
    }
    // Half the schedules serve through the bucketed seed index at the
    // full-recall setting — same digest expectation, and the bucket
    // tables get exercised under every fault shape (and under ASan when
    // ci.sh runs this binary in the chaos tier).
    if (knob_rng.next() % 2 == 0) {
      config.seed_index = SeedIndex::Bucketed;
      config.bucket = BucketIndexParams{0, 1};
    }
    const std::string label =
        "seed=" + std::to_string(seed) +
        " mode=" + std::string(fault::resilience_mode_name(mode)) +
        " ranks=" + std::to_string(num_ranks) +
        " repl=" + std::to_string(replication) + " plan=\"" + spec +
        "\" seed_index=" + std::string(seed_index_name(config.seed_index));
    try {
      const auto results = sharded_classify_batch(fx.store, queries, config);
      // Outcome (a): completion must be bit-identical to single-node.
      EXPECT_EQ(results_digest(results), expected) << label;
    } catch (const dist::CommError& e) {
      // Outcome (b): typed comm failure. Any other exception type escaping
      // fails the harness — the "never a third outcome" half.
      EXPECT_FALSE(std::string(e.what()).empty()) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, ShardedChaosSchedule,
                         ::testing::Range(0, 24));

// ---------------------------------------------------------------------------
// 3. Abort semantics under concurrent serving
// ---------------------------------------------------------------------------

TEST(ShardedAbortSemantics, BlockedRecvWakesTypedWhenPeerDiesMidScatter) {
  // A serving-shaped topology: rank 2 scatters, rank 0 dies hard after
  // taking one request, rank 1 sits blocked in recv with no traffic. Both
  // survivors must wake with a typed "abort" CommError — no hang — and
  // the originating "recv" failure stays primary through run_ranks.
  std::atomic<int> woken{0};
  try {
    dist::run_ranks(3, [&](dist::Communicator& comm) {
      if (comm.rank() == 0) {
        (void)comm.recv<u8>(2, 7);
        throw dist::CommError(0, "recv", "simulated hard death mid-scatter");
      } else if (comm.rank() == 1) {
        try {
          (void)comm.recv<u8>(2, 7);  // no request ever comes
          ADD_FAILURE() << "rank 1 recv returned without a message";
        } catch (const dist::CommError& e) {
          EXPECT_EQ(e.op(), "abort");
          ++woken;
          throw;
        }
      } else {
        comm.send(0, 7, std::vector<u8>{1});
        try {
          (void)comm.recv<u8>(0, 8);  // the response that never comes
          ADD_FAILURE() << "rank 2 recv returned without a message";
        } catch (const dist::CommError& e) {
          EXPECT_EQ(e.op(), "abort");
          ++woken;
          throw;
        }
      }
    });
    FAIL() << "expected CommError";
  } catch (const dist::CommError& e) {
    EXPECT_EQ(e.op(), "recv");
    EXPECT_EQ(e.rank(), 0u);
  }
  EXPECT_EQ(woken.load(), 2);
}

TEST(ShardedAbortSemantics, BlockedBarrierWakesTypedWhenPeerDies) {
  std::atomic<int> woken{0};
  try {
    dist::run_ranks(2, [&](dist::Communicator& comm) {
      if (comm.rank() == 0) {
        throw dist::CommError(0, "rank_main", "dies before the barrier");
      }
      try {
        comm.barrier();
        ADD_FAILURE() << "barrier completed with a dead peer";
      } catch (const dist::CommError& e) {
        EXPECT_EQ(e.op(), "abort");
        ++woken;
        throw;
      }
    });
    FAIL() << "expected CommError";
  } catch (const dist::CommError& e) {
    EXPECT_EQ(e.op(), "rank_main");
  }
  EXPECT_EQ(woken.load(), 1);
}

TEST(ShardedAbortSemantics, HardRouterDeathNeverHangsServers) {
  // Resilience Off + a persistent recv-fault burst: some rank (possibly
  // the router) throws the injected fault, the world aborts, every
  // blocked peer wakes typed. The call completing at all is the no-hang
  // assertion.
  Fixture fx;
  const auto queries = fx.queries();
  auto plan = fault::FaultPlan::parse("comm_fail@recv:2-999999");
  ShardedConfig config;
  config.num_ranks = 3;
  config.replication = 2;
  config.fault_plan = &plan;  // resilience Off: first hit is terminal
  try {
    sharded_classify_batch(fx.store, queries, config);
    FAIL() << "expected CommError";
  } catch (const dist::CommError& e) {
    EXPECT_EQ(e.op(), "recv");  // the injected fault, not a bystander abort
  }
}

// ---------------------------------------------------------------------------
// Arena hygiene: device-built store, host-only serving
// ---------------------------------------------------------------------------

TEST(ShardedChaos, DeviceBuiltStoreServesWithEmptyArena) {
  const auto mg = chaos_workload();
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
  const auto graph = align::build_homology_graph(mg.sequences, {});
  core::ShinglingParams params;
  params.c1 = 6;
  params.c2 = 3;
  const auto clustering = core::GpClust(ctx, params).cluster(graph);
  const auto store =
      store::build_family_store(mg.sequences, clustering.labels());

  std::vector<std::string> queries;
  for (std::size_t i = 0; i < store.num_sequences(); ++i) {
    queries.emplace_back(store.sequence(i));
  }
  const FamilyIndex index(store);
  ClassifyScratch scratch;
  std::vector<ClassifyResult> expected;
  for (const auto& q : queries) {
    expected.push_back(index.classify(q, {}, scratch));
  }

  ShardedConfig config;
  config.num_ranks = 4;
  config.replication = 2;
  config.kill_rank = 2;
  config.kill_after_requests = 4;
  config.resilience.mode = fault::ResilienceMode::Fallback;
  const auto results = sharded_classify_batch(store, queries, config);
  EXPECT_EQ(results_digest(results), results_digest(expected));

  // Clustering used the device; serving must not have (host-only tier).
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);
  EXPECT_GT(ctx.arena().peak(), 0u);
}

}  // namespace
}  // namespace gpclust::serve
