// serve::sharded_classify_batch — the sharded fault-tolerant serving
// tier (DESIGN.md §12). The headline invariant: for any {num_ranks,
// replication, worker count, fault plan leaving >= 1 live replica per
// shard}, results are bit-identical to single-node FamilyIndex::classify.
// Plus the fail-over state machine: static rank_down and the
// deterministic mid-stream kill seam fail over with counted reissues;
// resilience Off makes the first death fatal (op "rank_down"); a shard
// with no surviving replica is a typed "shard_down" / "retry_exhausted"
// error, never a wrong answer or a hang.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"
#include "seq/family_model.hpp"
#include "serve/sharded_service.hpp"
#include "store/snapshot.hpp"

namespace gpclust::serve {
namespace {

seq::SyntheticMetagenome make_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 6;
  config.min_members = 3;
  config.max_members = 8;
  config.num_background_orfs = 2;
  config.seed = 23;
  return seq::generate_metagenome(config);
}

struct Fixture {
  seq::SyntheticMetagenome mg = make_workload();
  store::FamilyStore store =
      store::build_family_store(mg.sequences, mg.family);

  std::vector<std::string> queries() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < store.num_sequences(); ++i) {
      out.emplace_back(store.sequence(i));
    }
    // Edge queries ride along: empty (InvalidQuery), non-protein
    // (InvalidQuery), too short to seed (NoSeeds).
    out.emplace_back("");
    out.emplace_back("not a protein!");
    out.emplace_back("ACD");
    return out;
  }

  std::vector<ClassifyResult> single_node(
      const std::vector<std::string>& queries,
      const ClassifyParams& params = {}) const {
    const FamilyIndex index(store);
    ClassifyScratch scratch;
    std::vector<ClassifyResult> results;
    results.reserve(queries.size());
    for (const auto& q : queries) {
      results.push_back(index.classify(q, params, scratch));
    }
    return results;
  }
};

fault::ResiliencePolicy failover_policy() {
  fault::ResiliencePolicy policy;
  policy.mode = fault::ResilienceMode::Fallback;
  return policy;
}

// ---------------------------------------------------------------------------
// Shard map + classify decomposition
// ---------------------------------------------------------------------------

TEST(ShardMap, ReplicasAreDistinctConsecutiveAndCovering) {
  for (std::size_t num_ranks : {1u, 3u, 4u}) {
    for (std::size_t replication = 1; replication <= num_ranks;
         ++replication) {
      for (std::size_t shard = 0; shard < num_ranks; ++shard) {
        const auto replicas = shard_replicas(shard, num_ranks, replication);
        ASSERT_EQ(replicas.size(), replication);
        EXPECT_EQ(replicas[0], shard);  // home rank serves its own shard
        const std::set<dist::RankId> distinct(replicas.begin(),
                                              replicas.end());
        EXPECT_EQ(distinct.size(), replication);
        for (dist::RankId r : replicas) EXPECT_LT(r, num_ranks);
      }
    }
  }
  EXPECT_THROW(shard_replicas(4, 4, 1), InvalidArgument);
  EXPECT_THROW(shard_replicas(0, 4, 5), InvalidArgument);
}

TEST(ShardMap, ScoreCandidatesOverShardPostingsMergesToClassify) {
  // The decomposition the tier rests on, without any ranks: score each
  // shard's postings subset, merge (concat, re-sort, re-truncate), decide
  // — must equal plain classify for every query.
  Fixture fx;
  const FamilyIndex index(fx.store);
  const ClassifyParams params;
  const std::size_t num_shards = 3;

  std::vector<std::vector<store::RepPosting>> per_shard(num_shards);
  for (const store::RepPosting& p : fx.store.postings) {
    per_shard[shard_of_rep(p.rep, num_shards)].push_back(p);
  }

  ClassifyScratch scratch;
  for (const auto& query : fx.queries()) {
    CandidateScores merged;
    for (const auto& postings : per_shard) {
      const CandidateScores part = index.score_candidates(
          query, params, scratch,
          std::span<const store::RepPosting>(postings));
      merged.invalid = merged.invalid || part.invalid;
      merged.num_candidates += part.num_candidates;
      merged.scored.insert(merged.scored.end(), part.scored.begin(),
                           part.scored.end());
    }
    std::sort(merged.scored.begin(), merged.scored.end(),
              [](const ScoredCandidate& a, const ScoredCandidate& b) {
                return std::pair(b.shared, a.rep) < std::pair(a.shared, b.rep);
              });
    if (merged.scored.size() > params.max_candidates) {
      merged.scored.resize(params.max_candidates);
    }
    EXPECT_EQ(index.decide(query, params, merged),
              index.classify(query, params, scratch))
        << "query of length " << query.size();
  }
}

TEST(ShardedConfigValidation, RejectsBadTopologies) {
  Fixture fx;
  const std::vector<std::string> queries = {"ACDEFGHIKL"};
  {
    ShardedConfig config;
    config.num_ranks = 2;
    config.replication = 3;  // more replicas than ranks
    EXPECT_THROW(sharded_classify_batch(fx.store, queries, config),
                 InvalidArgument);
  }
  {
    ShardedConfig config;
    config.num_ranks = 2;
    config.replication = 0;
    EXPECT_THROW(sharded_classify_batch(fx.store, queries, config),
                 InvalidArgument);
  }
  {
    ShardedConfig config;
    config.num_ranks = 2;
    config.kill_rank = 2;  // not a serving rank
    EXPECT_THROW(sharded_classify_batch(fx.store, queries, config),
                 InvalidArgument);
  }
  {
    // The router rides rank num_ranks and must not be killable.
    ShardedConfig config;
    config.num_ranks = 2;
    fault::FaultPlan plan;
    plan.add_rank_down(2);
    config.fault_plan = &plan;
    config.resilience = failover_policy();
    EXPECT_THROW(sharded_classify_batch(fx.store, queries, config),
                 InvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity without faults
// ---------------------------------------------------------------------------

TEST(ShardedService, BitIdenticalAcrossRanksReplicationAndWorkers) {
  Fixture fx;
  const auto queries = fx.queries();
  const auto expected = fx.single_node(queries);
  const u64 expected_digest = results_digest(expected);

  for (std::size_t num_ranks : {1u, 2u, 4u}) {
    for (std::size_t replication : {1u, 2u}) {
      if (replication > num_ranks) continue;
      for (std::size_t num_workers : {1u, 2u}) {
        ShardedConfig config;
        config.num_ranks = num_ranks;
        config.replication = replication;
        config.num_workers = num_workers;
        ShardedStats stats;
        const auto results =
            sharded_classify_batch(fx.store, queries, config, &stats);
        ASSERT_EQ(results.size(), queries.size());
        EXPECT_EQ(results, expected)
            << "ranks=" << num_ranks << " repl=" << replication
            << " workers=" << num_workers;
        EXPECT_EQ(results_digest(results), expected_digest);
        EXPECT_EQ(stats.num_shards, num_ranks);
        // Every (query, shard) pair is scored exactly once.
        EXPECT_EQ(stats.shard_requests, queries.size() * num_ranks);
        EXPECT_EQ(stats.rank_failures, 0u);
        EXPECT_EQ(stats.query_reissues, 0u);
        EXPECT_EQ(stats.shard_failovers, 0u);
        EXPECT_EQ(stats.latency.count(), queries.size());
      }
    }
  }
}

TEST(ShardedService, TinyWindowStillBitIdentical) {
  // queue_capacity 1 forces a drain before every second send to a rank —
  // the maximal-backpressure schedule.
  Fixture fx;
  const auto queries = fx.queries();
  ShardedConfig config;
  config.num_ranks = 4;
  config.replication = 2;
  config.num_workers = 2;
  config.queue_capacity = 1;
  const auto results = sharded_classify_batch(fx.store, queries, config);
  EXPECT_EQ(results, fx.single_node(queries));
}

// ---------------------------------------------------------------------------
// Fail-over
// ---------------------------------------------------------------------------

TEST(ShardedService, StaticRankDownFailsOverBitIdentical) {
  Fixture fx;
  const auto queries = fx.queries();
  const auto expected = fx.single_node(queries);

  fault::FaultPlan plan;
  plan.add_rank_down(1);
  ShardedConfig config;
  config.num_ranks = 4;
  config.replication = 2;
  config.fault_plan = &plan;
  config.resilience = failover_policy();

  ShardedStats stats;
  const auto results =
      sharded_classify_batch(fx.store, queries, config, &stats);
  EXPECT_EQ(results, expected);
  EXPECT_EQ(stats.rank_failures, 1u);
  // Rank 1 was the home (primary) replica of shard 1: its in-flight
  // requests moved to rank 2, and the shard failed over exactly once.
  EXPECT_EQ(stats.shard_failovers, 1u);
  EXPECT_GE(stats.query_reissues, 1u);
  // Reissued pairs are scored exactly once by the surviving replica.
  EXPECT_EQ(stats.shard_requests, queries.size() * config.num_ranks);
}

TEST(ShardedService, MidStreamKillFailsOverBitIdentical) {
  Fixture fx;
  const auto queries = fx.queries();
  const auto expected = fx.single_node(queries);

  ShardedConfig config;
  config.num_ranks = 4;
  config.replication = 2;
  config.kill_rank = 1;
  config.kill_after_requests = 3;
  config.resilience = failover_policy();

  ShardedStats stats;
  const auto results =
      sharded_classify_batch(fx.store, queries, config, &stats);
  EXPECT_EQ(results, expected);
  EXPECT_EQ(stats.rank_failures, 1u);
  EXPECT_EQ(stats.shard_failovers, 1u);
  // Rank 1 answered exactly 3 requests before dying; every other (query,
  // shard) pair was scored exactly once somewhere.
  EXPECT_EQ(stats.shard_requests, queries.size() * config.num_ranks);
  EXPECT_GE(stats.query_reissues, 1u);
}

TEST(ShardedService, KillAtZeroRequestsIsFullFailover) {
  Fixture fx;
  const auto queries = fx.queries();
  ShardedConfig config;
  config.num_ranks = 2;
  config.replication = 2;
  config.kill_rank = 0;
  config.kill_after_requests = 0;  // dies on first contact
  config.resilience = failover_policy();
  ShardedStats stats;
  const auto results =
      sharded_classify_batch(fx.store, queries, config, &stats);
  EXPECT_EQ(results, fx.single_node(queries));
  EXPECT_EQ(stats.rank_failures, 1u);
  EXPECT_EQ(stats.shard_requests, queries.size() * config.num_ranks);
}

TEST(ShardedService, RankDownWithResilienceOffIsTypedFatal) {
  Fixture fx;
  const auto queries = fx.queries();
  fault::FaultPlan plan;
  plan.add_rank_down(0);
  ShardedConfig config;
  config.num_ranks = 2;
  config.replication = 2;
  config.fault_plan = &plan;  // resilience stays Off
  try {
    sharded_classify_batch(fx.store, queries, config);
    FAIL() << "expected CommError";
  } catch (const dist::CommError& e) {
    EXPECT_EQ(e.op(), "rank_down");
    EXPECT_EQ(e.rank(), 0u);
  }
}

TEST(ShardedService, AllReplicasDownIsTypedShardDown) {
  Fixture fx;
  const auto queries = fx.queries();
  fault::FaultPlan plan;
  plan.add_rank_down(1);
  ShardedConfig config;
  config.num_ranks = 2;
  config.replication = 1;  // shard 1 lives only on rank 1
  config.fault_plan = &plan;
  config.resilience = failover_policy();
  try {
    sharded_classify_batch(fx.store, queries, config);
    FAIL() << "expected CommError";
  } catch (const dist::CommError& e) {
    EXPECT_EQ(e.op(), "shard_down");
  }
}

TEST(ShardedService, ExhaustedRetryBudgetIsTyped) {
  Fixture fx;
  const auto queries = fx.queries();
  fault::FaultPlan plan;
  plan.add_rank_down(0);
  ShardedConfig config;
  config.num_ranks = 2;
  config.replication = 2;
  config.fault_plan = &plan;
  config.resilience = failover_policy();
  config.resilience.max_retries = 0;  // any reissue exceeds the budget
  try {
    sharded_classify_batch(fx.store, queries, config);
    FAIL() << "expected CommError";
  } catch (const dist::CommError& e) {
    EXPECT_EQ(e.op(), "retry_exhausted");
  }
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

TEST(ShardedService, TracerSeesSpansCountersAndLatency) {
  Fixture fx;
  const auto queries = fx.queries();
  obs::Tracer tracer;
  ShardedConfig config;
  config.num_ranks = 2;
  config.replication = 2;
  config.kill_rank = 1;
  config.kill_after_requests = 2;
  config.resilience = failover_policy();
  config.tracer = &tracer;
  ShardedStats stats;
  const auto results =
      sharded_classify_batch(fx.store, queries, config, &stats);
  EXPECT_EQ(results, fx.single_node(queries));

  std::size_t route = 0, shard = 0, merge = 0;
  for (const auto& event : tracer.events()) {
    EXPECT_EQ(event.domain, obs::Domain::HostMeasured) << event.name;
    EXPECT_EQ(event.depth, 1) << event.name;
    if (event.name == "sharded.route") ++route;
    if (event.name == "sharded.shard") ++shard;
    if (event.name == "sharded.merge") ++merge;
  }
  EXPECT_EQ(route, 1u);
  EXPECT_EQ(merge, 1u);
  EXPECT_GE(shard, 2u);  // both ranks served at least one batch

  EXPECT_EQ(tracer.counter("rank_failures"), stats.rank_failures);
  EXPECT_EQ(tracer.counter("query_reissues"), stats.query_reissues);
  EXPECT_EQ(tracer.counter("shard_failovers"), stats.shard_failovers);
  EXPECT_EQ(tracer.counter("shard_requests"), stats.shard_requests);
  EXPECT_EQ(tracer.latency_histogram("sharded.latency").count(),
            queries.size());
  EXPECT_EQ(stats.latency.count(), queries.size());
  EXPECT_GT(stats.latency.max_seconds(), 0.0);
}

TEST(ShardedService, DigestDistinguishesDifferentResults) {
  Fixture fx;
  const auto queries = fx.queries();
  const auto results = fx.single_node(queries);
  auto mutated = results;
  mutated[0].score += 1;
  EXPECT_NE(results_digest(results), results_digest(mutated));
  EXPECT_EQ(results_digest(results), results_digest(fx.single_node(queries)));
}

}  // namespace
}  // namespace gpclust::serve
