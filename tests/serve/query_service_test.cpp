// serve::QueryService — worker-pool invariance (bit-identical outcomes
// across pool sizes), bounded-queue backpressure (Off rejects
// immediately, Retry takes counted deterministic backoffs), queue
// timeouts, drain-on-destruction, and the stats/tracer surface.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "seq/family_model.hpp"
#include "serve/query_service.hpp"
#include "store/snapshot.hpp"

namespace gpclust::serve {
namespace {

seq::SyntheticMetagenome make_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 6;
  config.min_members = 3;
  config.max_members = 8;
  config.num_background_orfs = 2;
  config.seed = 23;
  return seq::generate_metagenome(config);
}

struct Fixture {
  seq::SyntheticMetagenome mg = make_workload();
  store::FamilyStore store =
      store::build_family_store(mg.sequences, mg.family);

  std::vector<std::string> queries() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < store.num_sequences(); ++i) {
      out.emplace_back(store.sequence(i));
    }
    return out;
  }
};

TEST(QueryService, BatchMatchesDirectClassification) {
  Fixture fx;
  const auto queries = fx.queries();

  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.store, config);
  const auto outcomes = service.classify_batch(queries);

  FamilyIndex index(fx.store);
  ClassifyScratch scratch;
  ASSERT_EQ(outcomes.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(outcomes[i].rejected, RejectReason::None);
    EXPECT_GT(outcomes[i].latency_seconds, 0.0);
    EXPECT_EQ(outcomes[i].result,
              index.classify(queries[i], config.classify, scratch));
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, queries.size());
  EXPECT_EQ(stats.accepted, queries.size());
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.rejected_expired, 0u);
  EXPECT_EQ(service.latency_histogram().count(), queries.size());
}

TEST(QueryService, BucketedSeedIndexAtFullRecallMatchesPostingsService) {
  Fixture fx;
  const auto queries = fx.queries();

  ServiceConfig postings;
  postings.queue_capacity = queries.size() + 1;
  ServiceConfig bucketed = postings;
  bucketed.seed_index = SeedIndex::Bucketed;
  bucketed.bucket = BucketIndexParams{0, 1};  // full recall: bit-identity
  bucketed.num_workers = 2;

  QueryService truth(fx.store, postings);
  QueryService fast(fx.store, bucketed);
  const auto expected = truth.classify_batch(queries);
  const auto outcomes = fast.classify_batch(queries);
  ASSERT_EQ(outcomes.size(), expected.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(outcomes[i].rejected, RejectReason::None);
    EXPECT_EQ(outcomes[i].result, expected[i].result) << queries[i];
  }
}

TEST(QueryService, BucketedSeedIndexWithDefaultBandingServes) {
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.seed_index = SeedIndex::Bucketed;  // default banding
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.store, config);
  const auto outcomes = service.classify_batch(queries);
  std::size_t assigned = 0;
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.rejected, RejectReason::None);
    if (o.result.outcome == ClassifyOutcome::Assigned) ++assigned;
  }
  // Unmutated members against their own store: banding loses nothing.
  EXPECT_GE(assigned, queries.size() / 2);
}

TEST(QueryService, OutcomesAreIdenticalAcrossWorkerCounts) {
  Fixture fx;
  const auto queries = fx.queries();
  std::vector<std::vector<ClassifyResult>> runs;
  for (std::size_t workers : {1u, 2u, 4u}) {
    ServiceConfig config;
    config.num_workers = workers;
    config.queue_capacity = queries.size() + 1;
    QueryService service(fx.store, config);
    std::vector<ClassifyResult> results;
    for (auto& outcome : service.classify_batch(queries)) {
      ASSERT_EQ(outcome.rejected, RejectReason::None);
      results.push_back(outcome.result);
    }
    runs.push_back(std::move(results));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(QueryService, OffPolicyRejectsImmediatelyWhenQueueIsFull) {
  Fixture fx;
  const auto queries = fx.queries();
  ASSERT_GE(queries.size(), 10u);

  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 4;
  config.start_paused = true;  // queue fills deterministically
  // admission defaults to Off: reject, never wait.
  QueryService service(fx.store, config);

  std::vector<std::future<QueryOutcome>> futures;
  for (std::size_t i = 0; i < 10; ++i) {
    futures.push_back(service.submit(queries[i]));
  }
  {
    const auto stats = service.stats();
    EXPECT_EQ(stats.submitted, 10u);
    EXPECT_EQ(stats.accepted, 4u);
    EXPECT_EQ(stats.rejected_queue_full, 6u);
    EXPECT_EQ(stats.admission_retries, 0u);
    EXPECT_EQ(stats.completed, 0u);  // still paused
  }
  service.resume();

  std::size_t completed = 0, rejected = 0;
  for (auto& future : futures) {
    const auto outcome = future.get();
    if (outcome.rejected == RejectReason::QueueFull) {
      ++rejected;
      EXPECT_EQ(outcome.latency_seconds, 0.0);
    } else {
      ++completed;
      EXPECT_EQ(outcome.rejected, RejectReason::None);
    }
  }
  EXPECT_EQ(completed, 4u);
  EXPECT_EQ(rejected, 6u);

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, stats.accepted);  // every admitted query ran
}

TEST(QueryService, RetryPolicyTakesBoundedBackoffsThenRejects) {
  Fixture fx;
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.start_paused = true;  // nothing drains, so retries cannot win
  config.admission.mode = fault::ResilienceMode::Retry;
  config.admission.max_retries = 3;
  config.admission.retry_backoff_seconds = 1e-5;
  QueryService service(fx.store, config);

  auto accepted = service.submit(fx.queries()[0]);
  auto rejected = service.submit(fx.queries()[1]);
  EXPECT_EQ(rejected.get().rejected, RejectReason::QueueFull);

  const auto stats = service.stats();
  EXPECT_EQ(stats.admission_retries, 3u);  // the full deterministic ladder
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.accepted, 1u);

  service.resume();
  EXPECT_EQ(accepted.get().rejected, RejectReason::None);
}

TEST(QueryService, QueueTimeoutExpiresStaleQueries) {
  Fixture fx;
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 8;
  config.start_paused = true;
  config.queue_timeout_seconds = 1e-4;
  QueryService service(fx.store, config);

  std::vector<std::future<QueryOutcome>> futures;
  for (std::size_t i = 0; i < 3; ++i) {
    futures.push_back(service.submit(fx.queries()[i]));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.resume();
  for (auto& future : futures) {
    const auto outcome = future.get();
    EXPECT_EQ(outcome.rejected, RejectReason::Expired);
    EXPECT_GT(outcome.latency_seconds, config.queue_timeout_seconds);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_expired, 3u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(service.latency_histogram().count(), 0u);  // completions only
}

TEST(QueryService, DestructionDrainsEveryAcceptedQuery) {
  Fixture fx;
  std::vector<std::future<QueryOutcome>> futures;
  {
    ServiceConfig config;
    config.num_workers = 1;
    config.queue_capacity = 8;
    config.start_paused = true;
    QueryService service(fx.store, config);
    for (std::size_t i = 0; i < 3; ++i) {
      futures.push_back(service.submit(fx.queries()[i]));
    }
    // Destroyed while paused with a full queue: the destructor implies
    // resume() and must complete every admitted query.
  }
  FamilyIndex index(fx.store);
  ClassifyScratch scratch;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto outcome = futures[i].get();
    EXPECT_EQ(outcome.rejected, RejectReason::None);
    EXPECT_EQ(outcome.result,
              index.classify(fx.queries()[i], ClassifyParams{}, scratch));
  }
}

TEST(QueryService, TracerSeesCountersSpansAndLatency) {
  Fixture fx;
  const auto queries = fx.queries();
  obs::Tracer tracer;
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = queries.size() + 1;
  config.tracer = &tracer;
  QueryService service(fx.store, config);
  service.classify_batch(queries);

  EXPECT_EQ(tracer.counter("serve.submitted"), queries.size());
  EXPECT_EQ(tracer.counter("serve.accepted"), queries.size());
  EXPECT_EQ(tracer.counter("serve.completed"), queries.size());
  EXPECT_EQ(tracer.counter("serve.rejected_queue_full"), 0u);
  const auto latency = tracer.latency_histogram("serve.latency");
  EXPECT_EQ(latency.count(), queries.size());
  EXPECT_GT(latency.p50(), 0.0);
  EXPECT_LE(latency.p50(), latency.p99());
}

TEST(QueryService, ProfileCacheCountersAggregateAcrossWorkers) {
  Fixture fx;
  const auto queries = fx.queries();
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = queries.size() + 1;
  QueryService service(fx.store, config);
  service.classify_batch(queries);
  service.classify_batch(queries);  // second pass re-hits cached profiles

  const auto stats = service.stats();
  EXPECT_GE(stats.profile_builds, 1u);
  EXPECT_GE(stats.profile_hits, 1u);
  EXPECT_EQ(stats.completed, 2 * queries.size());
}

TEST(QueryService, InvalidConfigIsRejectedAtConstruction) {
  Fixture fx;
  ServiceConfig no_workers;
  no_workers.num_workers = 0;
  EXPECT_THROW(QueryService(fx.store, no_workers), InvalidArgument);
  ServiceConfig no_queue;
  no_queue.queue_capacity = 0;
  EXPECT_THROW(QueryService(fx.store, no_queue), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::serve
