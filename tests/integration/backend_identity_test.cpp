// Cross-backend bit-identity (CLAUDE.md invariant): SerialShingler,
// GpClust under every batching/async/aggregation configuration, and
// dist::distributed_cluster at several rank counts all produce the same
// partition digest for identical ShinglingParams. Complements the
// parameter sweep in core/equivalence_sweep_test.cpp, which varies params
// on one device configuration; here one param set meets every backend
// configuration.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/gpclust.hpp"
#include "core/serial_pclust.hpp"
#include "dist/dist_shingling.hpp"
#include "graph/generators.hpp"

namespace gpclust {
namespace {

// (graph seed, hash seed, c1, report mode)
using IdentityParam = std::tuple<u64, u64, u32, core::ReportMode>;

graph::CsrGraph identity_test_graph(u64 graph_seed) {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 10;
  cfg.min_family_size = 5;
  cfg.max_family_size = 24;
  cfg.num_singletons = 12;
  cfg.seed = graph_seed;
  return graph::generate_planted_families(cfg).graph;
}

core::ShinglingParams identity_test_params(const IdentityParam& p) {
  core::ShinglingParams params;
  params.s1 = params.s2 = 2;
  params.c1 = std::get<2>(p);  // small trial counts keep batch=1 fast
  params.c2 = std::max<u32>(1, std::get<2>(p) / 2);
  params.seed = std::get<1>(p);
  params.mode = std::get<3>(p);
  return params;
}

u64 serial_digest(const graph::CsrGraph& g,
                  const core::ShinglingParams& params) {
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();
  return serial.digest();
}

class BackendIdentity : public ::testing::TestWithParam<IdentityParam> {};

TEST_P(BackendIdentity, DeviceConfigurationsMatchSerial) {
  const auto g = identity_test_graph(std::get<0>(GetParam()));
  const auto params = identity_test_params(GetParam());
  const auto expected = serial_digest(g, params);

  struct DeviceConfig {
    std::size_t max_batch_elements;  // 0 = whole graph in one batch
    bool device_aggregation;
    std::size_t num_streams = 1;  // 1 == the sync engine
    u32 agg_shards = 1;
  };
  const DeviceConfig configs[] = {
      {1, false},      // one element per batch: every list splits
      {1, true, 2},
      {97, false},     // prime-sized batches force odd splits
      {97, false, 2},
      {97, true},
      {97, true, 2},
      {0, false},      // memory-derived batch size (all at once here)
      {0, true, 2},
      // DESIGN.md §8 pipeline shapes: multi-lane schedules and sharded
      // host aggregation must not move a single vertex.
      {1, false, 4, 4},   // every list splits across lanes
      {97, false, 4, 16},
      {97, true, 8, 4},   // device agg ignores shards; streams apply
      {97, false, 3, 7},  // odd stream count: shared last lane
      {0, false, 8, 16},  // memory-derived batch size, lane-split
  };

  for (const DeviceConfig& cfg : configs) {
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
    core::GpClustOptions options;
    options.max_batch_elements = cfg.max_batch_elements;
    options.device_aggregation = cfg.device_aggregation;
    options.pipeline.num_streams = cfg.num_streams;
    options.pipeline.agg_shards = cfg.agg_shards;
    auto result = core::GpClust(ctx, params, options).cluster(g);
    result.normalize();
    EXPECT_EQ(result.digest(), expected)
        << "batch=" << cfg.max_batch_elements
        << " devagg=" << cfg.device_aggregation
        << " streams=" << cfg.num_streams << " shards=" << cfg.agg_shards;
  }
}

TEST_P(BackendIdentity, DistributedRankCountsMatchSerial) {
  const auto g = identity_test_graph(std::get<0>(GetParam()));
  const auto params = identity_test_params(GetParam());
  const auto expected = serial_digest(g, params);

  for (std::size_t ranks : {1u, 2u, 4u}) {
    auto result = dist::distributed_cluster(g, params, ranks);
    result.normalize();
    EXPECT_EQ(result.digest(), expected) << "ranks=" << ranks;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndParams, BackendIdentity,
    ::testing::Combine(::testing::Values<u64>(20130520, 4242),  // graph seed
                       ::testing::Values<u64>(777, 31337),      // hash seed
                       ::testing::Values<u32>(10, 7),           // c1
                       ::testing::Values(core::ReportMode::Partition,
                                         core::ReportMode::Overlapping)));

}  // namespace
}  // namespace gpclust
