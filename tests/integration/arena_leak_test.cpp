// Device-arena hygiene (CLAUDE.md invariant): the arena must be empty
// after every pipeline run — including runs that die mid-batch with a
// DeviceError — and the tracer's "arena_peak_bytes" high-water counter
// must agree with the arena's own accounting on both paths.

#include <gtest/gtest.h>

#include "core/gpclust.hpp"
#include "device/device_vector.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"

namespace gpclust {
namespace {

graph::CsrGraph leak_test_graph() {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 9;
  cfg.min_family_size = 5;
  cfg.max_family_size = 18;
  cfg.num_singletons = 8;
  cfg.seed = 99;
  return graph::generate_planted_families(cfg).graph;
}

core::ShinglingParams leak_test_params() {
  core::ShinglingParams params;
  params.c1 = 10;
  params.c2 = 5;
  return params;
}

TEST(ArenaLeak, EmptyAfterEveryPipelineConfiguration) {
  const auto g = leak_test_graph();
  const auto params = leak_test_params();

  struct Config {
    std::size_t num_streams;
    bool device_aggregation;
  };
  for (const Config& cfg :
       {Config{1, false}, Config{2, false}, Config{1, true}, Config{2, true},
        // Multi-lane pipelines keep several batches' buffers co-resident
        // mid-run; they too must all be back in the arena at the end.
        Config{4, false}, Config{8, true}, Config{3, false}}) {
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
    obs::Tracer tracer;
    core::GpClustOptions options;
    options.max_batch_elements = 73;  // several batches per pass
    options.device_aggregation = cfg.device_aggregation;
    options.pipeline.num_streams = cfg.num_streams;
    options.tracer = &tracer;
    core::GpClust(ctx, params, options).cluster(g);

    EXPECT_EQ(ctx.arena().used(), 0u)
        << "devagg=" << cfg.device_aggregation
        << " streams=" << cfg.num_streams;
    EXPECT_EQ(ctx.arena().num_allocations(), 0u);
    EXPECT_GT(ctx.arena().peak(), 0u);
    EXPECT_EQ(tracer.counter("arena_peak_bytes"), ctx.arena().peak());
    // The tracer binding is scoped to the run.
    EXPECT_EQ(ctx.tracer(), nullptr);
  }
}

TEST(ArenaLeak, EmptyAfterMidRunOutOfMemoryError) {
  const auto g = leak_test_graph();
  const auto params = leak_test_params();

  // Size the arena so the batch's member upload fits but the per-trial
  // permutation buffer cannot: the pass throws DeviceError mid-batch,
  // after some allocations already succeeded.
  const std::size_t elems = g.adjacency().size();
  const std::size_t segs = g.num_vertices();
  const std::size_t capacity =
      sizeof(u32) * elems + sizeof(u64) * (segs + 1) + sizeof(u64) * elems / 2;
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(capacity));

  obs::Tracer tracer;
  core::GpClustOptions options;
  options.max_batch_elements = elems;  // force one oversized batch
  options.tracer = &tracer;
  core::GpClust gp(ctx, params, options);
  EXPECT_THROW(gp.cluster(g), DeviceError);

  // The unwind released everything that had been allocated.
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);
  // Allocations did happen before the failure, and the tracer's high-water
  // counter tracked them even though the run never finished.
  EXPECT_GT(ctx.arena().peak(), 0u);
  EXPECT_EQ(tracer.counter("arena_peak_bytes"), ctx.arena().peak());
  // The scoped tracer binding is undone even on the error path.
  EXPECT_EQ(ctx.tracer(), nullptr);
}

TEST(ArenaLeak, EmptyAfterMidTransferFaults) {
  const auto g = leak_test_graph();
  const auto params = leak_test_params();

  // Kill the pipeline at a transfer (H2D, then D2H) while device buffers
  // are live: the strong exception guarantee of DeviceVector plus RAII
  // unwind must leave the arena empty even though the fault fired between
  // an allocation and its matching release.
  for (const char* spec :
       {"xfer_fail@h2d:0", "xfer_fail@h2d:3", "xfer_fail@d2h:1",
        "kernel_fail@kernel:7"}) {
    auto plan = fault::FaultPlan::parse(spec);
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
    obs::Tracer tracer;
    core::GpClustOptions options;
    options.max_batch_elements = 73;
    options.tracer = &tracer;
    options.fault_plan = &plan;
    core::GpClust gp(ctx, params, options);
    EXPECT_THROW(gp.cluster(g), DeviceError) << spec;

    EXPECT_EQ(ctx.arena().used(), 0u) << spec;
    EXPECT_EQ(ctx.arena().num_allocations(), 0u) << spec;
    EXPECT_EQ(tracer.counter("faults_injected"), 1u) << spec;
    // Scoped bindings undone on the error path.
    EXPECT_EQ(ctx.tracer(), nullptr) << spec;
    EXPECT_EQ(ctx.fault_plan(), nullptr) << spec;
  }
}

TEST(ArenaLeak, EmptyAfterEveryResilienceRecoveryPath) {
  const auto g = leak_test_graph();
  const auto params = leak_test_params();

  // Recovery (not just unwind) must also keep the arena clean: replans,
  // retries and the CPU fallback all drain every device allocation.
  for (const char* spec :
       {"oom@alloc:3", "xfer_fail@h2d:2,xfer_fail@d2h:4",
        "kernel_fail@kernel:0-999999"}) {
    auto plan = fault::FaultPlan::parse(spec);
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
    core::GpClustOptions options;
    options.max_batch_elements = 73;
    options.fault_plan = &plan;
    options.resilience.mode = fault::ResilienceMode::Fallback;
    core::GpClust(ctx, params, options).cluster(g);

    EXPECT_EQ(ctx.arena().used(), 0u) << spec;
    EXPECT_EQ(ctx.arena().num_allocations(), 0u) << spec;
  }
}

TEST(ArenaLeak, DeviceVectorConstructionFaultReleasesReservation) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(1 << 20));
  {
    auto plan = fault::FaultPlan::parse("oom@alloc:1");
    ctx.set_fault_plan(&plan);
    device::DeviceVector<u64> ok(ctx, 128);  // alloc #0 succeeds
    EXPECT_EQ(ctx.arena().used(), 128 * sizeof(u64));
    EXPECT_THROW(device::DeviceVector<u64>(ctx, 64), DeviceError);
    // The failed vector holds nothing; only `ok` remains accounted.
    EXPECT_EQ(ctx.arena().used(), 128 * sizeof(u64));
    EXPECT_EQ(ctx.arena().num_allocations(), 1u);
    ctx.set_fault_plan(nullptr);
  }
  EXPECT_EQ(ctx.arena().used(), 0u);
}

}  // namespace
}  // namespace gpclust
