// Randomized chaos property test (ctest label: chaos). Fifty seeded
// random fault schedules, each run under every resilience mode, with one
// dist sweep on top. The property: every run lands in exactly one of two
// states —
//   (a) it completes, bit-identical to the fault-free SerialShingler
//       partition, or
//   (b) it throws a typed error (DeviceError family or CommError).
// In both states the device arena is empty afterwards. There is never a
// third outcome (wrong result, untyped error, leak, hang). Fallback mode
// must always land in (a).
//
// Schedules are derived from a SplitMix64 stream, so every failure
// reproduces from the iteration's seed; the failing plan's canonical spec
// string is printed on assertion failures.

#include <gtest/gtest.h>

#include "core/gpclust.hpp"
#include "core/serial_pclust.hpp"
#include "dist/dist_shingling.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace gpclust {
namespace {

graph::CsrGraph chaos_graph() {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 7;
  cfg.min_family_size = 5;
  cfg.max_family_size = 14;
  cfg.num_singletons = 6;
  cfg.seed = 60613;
  return graph::generate_planted_families(cfg).graph;
}

core::ShinglingParams chaos_params() {
  core::ShinglingParams params;
  params.c1 = 6;
  params.c2 = 3;
  return params;
}

/// A random device-side schedule: a handful of point faults plus an
/// occasional persistent burst, spread over the call ranges a run of this
/// size actually exercises.
fault::FaultPlan random_device_plan(u64 seed) {
  util::SplitMix64 rng(seed);
  fault::FaultPlan plan;
  const fault::FaultSite sites[] = {
      fault::FaultSite::Alloc, fault::FaultSite::H2D, fault::FaultSite::D2H,
      fault::FaultSite::Kernel};
  const std::size_t num_faults = 1 + rng.next() % 4;
  for (std::size_t i = 0; i < num_faults; ++i) {
    const auto site = sites[rng.next() % 4];
    const u64 index = rng.next() % 96;
    if (rng.next() % 4 == 0) {
      plan.add_range(site, index, index + rng.next() % 64);
    } else {
      plan.add(site, index);
    }
  }
  if (rng.next() % 5 == 0) {
    // A persistent tail that outlasts any retry budget.
    plan.add_range(fault::FaultSite::Kernel, 16 + rng.next() % 32, 1u << 20);
  }
  return plan;
}

class ChaosSchedule : public ::testing::TestWithParam<int> {};

TEST_P(ChaosSchedule, CompletesIdenticallyOrFailsTyped) {
  const auto g = chaos_graph();
  const auto params = chaos_params();
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();
  const u64 expected = serial.digest();

  const u64 seed = 0xC4A05ULL * 1000003ULL + static_cast<u64>(GetParam());
  util::SplitMix64 knob_rng(seed ^ 0x5eedULL);

  for (const auto mode :
       {fault::ResilienceMode::Off, fault::ResilienceMode::Retry,
        fault::ResilienceMode::Fallback}) {
    auto plan = random_device_plan(seed);
    const std::string spec = plan.to_string();
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
    obs::Tracer tracer;
    core::GpClustOptions options;
    // Vary the pipeline shape along with the schedule.
    options.max_batch_elements = 16 + knob_rng.next() % 120;
    options.pipeline.num_streams = knob_rng.next() % 2 == 0 ? 2 : 1;
    options.device_aggregation = knob_rng.next() % 2 == 0;
    options.tracer = &tracer;
    options.fault_plan = &plan;
    options.resilience.mode = mode;

    const std::string label = "seed=" + std::to_string(seed) + " mode=" +
                              std::string(fault::resilience_mode_name(mode)) +
                              " plan=\"" + spec + "\"";
    bool completed = false;
    try {
      auto result = core::GpClust(ctx, params, options).cluster(g);
      result.normalize();
      // Outcome (a): completion must be bit-identical to serial.
      EXPECT_EQ(result.digest(), expected) << label;
      completed = true;
    } catch (const DeviceError&) {
      // Outcome (b): typed device failure. Legal in Off and Retry only.
      EXPECT_NE(mode, fault::ResilienceMode::Fallback) << label;
    }
    // A different exception type escaping would fail the test harness —
    // that is the "never a third outcome" half of the property.
    if (mode == fault::ResilienceMode::Fallback) {
      EXPECT_TRUE(completed) << label;
    }
    // Arena hygiene on every path.
    EXPECT_EQ(ctx.arena().used(), 0u) << label;
    EXPECT_EQ(ctx.arena().num_allocations(), 0u) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, ChaosSchedule, ::testing::Range(0, 50));

class DistChaosSchedule : public ::testing::TestWithParam<int> {};

TEST_P(DistChaosSchedule, CompletesIdenticallyOrFailsTyped) {
  const auto g = chaos_graph();
  const auto params = chaos_params();
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();
  const u64 expected = serial.digest();

  const u64 seed = 0xD157ULL * 999983ULL + static_cast<u64>(GetParam());
  util::SplitMix64 rng(seed);
  const std::size_t num_ranks = 2 + rng.next() % 3;

  fault::FaultPlan plan;
  const std::size_t num_faults = 1 + rng.next() % 3;
  for (std::size_t i = 0; i < num_faults; ++i) {
    const auto site =
        rng.next() % 2 == 0 ? fault::FaultSite::Send : fault::FaultSite::Recv;
    plan.add(site, rng.next() % 64);
  }
  if (rng.next() % 3 == 0) plan.add_rank_down(rng.next() % num_ranks);

  for (const auto mode :
       {fault::ResilienceMode::Off, fault::ResilienceMode::Retry,
        fault::ResilienceMode::Fallback}) {
    fault::FaultPlan run_plan = plan;
    run_plan.reset_counters();
    fault::ResiliencePolicy policy;
    policy.mode = mode;
    const std::string label = "seed=" + std::to_string(seed) + " ranks=" +
                              std::to_string(num_ranks) + " mode=" +
                              std::string(fault::resilience_mode_name(mode)) +
                              " plan=\"" + plan.to_string() + "\"";
    bool completed = false;
    try {
      auto result = dist::distributed_cluster(g, params, num_ranks, nullptr,
                                              nullptr, &run_plan, policy);
      result.normalize();
      EXPECT_EQ(result.digest(), expected) << label;
      completed = true;
    } catch (const dist::CommError&) {
      // Typed comm failure; never legal in Fallback for these schedules
      // (point faults are retried away, down ranks are reassigned —
      // rank counts here always leave a survivor).
    }
    if (mode == fault::ResilienceMode::Fallback) {
      EXPECT_TRUE(completed) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, DistChaosSchedule, ::testing::Range(0, 10));

}  // namespace
}  // namespace gpclust
