// Integration of the full DNA front end (paper §I): community genomes ->
// shotgun reads -> six-frame ORFs -> suffix-array seeded homology graph ->
// clustering, checked for family purity; plus cross-implementation
// agreement (gpClust vs distributed) on the resulting real-ish graph.

#include <gtest/gtest.h>

#include <map>

#include "align/homology_graph.hpp"
#include "core/gpclust.hpp"
#include "dist/dist_shingling.hpp"
#include "seq/community_model.hpp"
#include "seq/orf_finder.hpp"

namespace gpclust {
namespace {

class DnaPipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    seq::CommunityConfig cfg;
    cfg.families.num_families = 8;
    cfg.families.min_members = 4;
    cfg.families.max_members = 8;
    cfg.families.substitution_rate = 0.05;
    cfg.families.fragment_min_fraction = 1.0;
    cfg.families.min_ancestor_length = 80;
    cfg.families.max_ancestor_length = 140;
    cfg.families.seed = 4;
    cfg.num_genomes = 5;
    cfg.coverage = 2.5;
    cfg.read_length = 400;
    cfg.seed = 99;
    community_ = seq::generate_community(cfg);

    seq::OrfFinderConfig orf_cfg;
    orf_cfg.min_length = 40;
    orfs_ = seq::find_orfs(community_.reads, orf_cfg);

    align::HomologyGraphConfig hcfg;
    hcfg.seed_mode = align::SeedMode::MaximalMatch;
    hcfg.maximal_matches.min_match_length = 12;
    hcfg.num_threads = 1;
    graph_ = align::build_homology_graph(orfs_, hcfg);
  }

  /// Family of an ORF via a central 12-mer found in a source protein;
  /// -1 if untraceable (intergenic or error-laden).
  int orf_family(std::size_t orf_index) const {
    const auto& residues = orfs_[orf_index].residues;
    if (residues.size() < 12) return -1;
    const auto probe = residues.substr(residues.size() / 2, 12);
    for (std::size_t p = 0; p < community_.proteins.size(); ++p) {
      if (community_.proteins[p].residues.find(probe) != std::string::npos) {
        return static_cast<int>(community_.family[p]);
      }
    }
    return -1;
  }

  seq::SyntheticCommunity community_;
  seq::SequenceSet orfs_;
  graph::CsrGraph graph_;
};

TEST_F(DnaPipelineFixture, PipelineProducesNonTrivialGraph) {
  EXPECT_GT(orfs_.size(), community_.proteins.size());
  EXPECT_GT(graph_.num_edges(), 50u);
}

TEST_F(DnaPipelineFixture, ClustersArePureAtFamilyLevel) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(16 << 20));
  core::ShinglingParams params;
  params.c1 = 60;
  params.c2 = 30;
  const auto clustering =
      core::GpClust(ctx, params).cluster(graph_).filtered(3);
  ASSERT_GT(clustering.num_clusters(), 0u);

  u64 same = 0, cross = 0;
  for (const auto& cluster : clustering.clusters()) {
    std::vector<int> families;
    for (VertexId v : cluster) {
      const int f = orf_family(v);
      if (f >= 0) families.push_back(f);
    }
    for (std::size_t i = 0; i < families.size(); ++i) {
      for (std::size_t j = i + 1; j < families.size(); ++j) {
        (families[i] == families[j] ? same : cross) += 1;
      }
    }
  }
  ASSERT_GT(same + cross, 0u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(same + cross),
            0.95);
}

TEST_F(DnaPipelineFixture, DistributedMatchesDeviceOnRealisticGraph) {
  core::ShinglingParams params;
  params.c1 = 40;
  params.c2 = 20;
  params.seed = 13;

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(16 << 20));
  auto via_device = core::GpClust(ctx, params).cluster(graph_);
  auto via_dist = dist::distributed_cluster(graph_, params, 3);
  via_device.normalize();
  via_dist.normalize();
  EXPECT_EQ(via_device.digest(), via_dist.digest());
}

}  // namespace
}  // namespace gpclust
