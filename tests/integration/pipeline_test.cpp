// End-to-end integration: synthetic metagenome -> homology graph (pGraph
// analog) -> gpClust / GOS baseline -> quality metrics. Verifies the
// qualitative relationships of the paper's §IV-D at small scale.

#include <gtest/gtest.h>

#include "align/homology_graph.hpp"
#include "baseline/gos_kneighbor.hpp"
#include "core/gpclust.hpp"
#include "eval/cluster_stats.hpp"
#include "eval/density.hpp"
#include "eval/partition_metrics.hpp"
#include "seq/family_model.hpp"

namespace gpclust {
namespace {

struct PipelineFixture : public ::testing::Test {
  void SetUp() override {
    seq::FamilyModelConfig cfg;
    cfg.num_families = 12;
    cfg.min_members = 6;
    cfg.max_members = 25;
    cfg.substitution_rate = 0.08;
    cfg.fragment_min_fraction = 0.8;
    cfg.num_background_orfs = 20;
    cfg.seed = 17;
    mg_ = seq::generate_metagenome(cfg);

    align::HomologyGraphConfig hcfg;
    hcfg.num_threads = 1;
    graph_ = align::build_homology_graph(mg_.sequences, hcfg);
  }

  seq::SyntheticMetagenome mg_;
  graph::CsrGraph graph_;
};

TEST_F(PipelineFixture, EndToEndFamilyRecovery) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(16 << 20));
  core::ShinglingParams params;
  params.c1 = 60;
  params.c2 = 30;
  core::GpClust gp(ctx, params);
  const auto clustering = gp.cluster(graph_);
  ASSERT_TRUE(clustering.is_partition());

  // Compare against the planted families over the full universe.
  const auto test_labels =
      eval::labels_with_singletons(clustering.filtered(2));
  const auto confusion = eval::compare_partitions(test_labels, mg_.family);

  // The clustering recovers family cores: near-perfect PPV, decent SE.
  EXPECT_GT(confusion.ppv(), 0.95);
  EXPECT_GT(confusion.sensitivity(), 0.4);
  EXPECT_GT(confusion.specificity(), 0.99);
}

TEST_F(PipelineFixture, GpClustAtLeastAsSensitiveAsGos) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(16 << 20));
  core::ShinglingParams params;
  params.c1 = 60;
  params.c2 = 30;
  const auto ours = core::GpClust(ctx, params).cluster(graph_);
  const auto gos = baseline::gos_kneighbor_cluster(graph_);

  const auto ours_conf = eval::compare_partitions(
      eval::labels_with_singletons(ours.filtered(2)), mg_.family);
  const auto gos_conf = eval::compare_partitions(
      eval::labels_with_singletons(gos.filtered(2)), mg_.family);

  EXPECT_GE(ours_conf.sensitivity() + 1e-9, gos_conf.sensitivity());
  EXPECT_GT(ours_conf.ppv(), 0.9);
}

TEST_F(PipelineFixture, ReportedClustersAreDense) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(16 << 20));
  core::ShinglingParams params;
  params.c1 = 60;
  params.c2 = 30;
  const auto clustering =
      core::GpClust(ctx, params).cluster(graph_).filtered(4);
  const auto density = eval::density_stats(graph_, clustering);
  ASSERT_GT(density.count(), 0u);
  EXPECT_GT(density.mean(), 0.5);
}

}  // namespace
}  // namespace gpclust
