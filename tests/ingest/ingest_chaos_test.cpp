// Chaos-tier fault schedules for the streaming-ingest subsystem (ctest
// label: chaos). Randomized device fault plans — injected into both the
// device shingling engine and the DeviceBatched verify cascade of an
// IngestSession — must leave every batch in exactly one of two states:
//   (a) it completes, bit-identical to the fault-free serial reference
//       over the same batch split, or
//   (b) it throws a typed error (DeviceError family), after which the
//       session still holds its pre-batch state (strong guarantee) and
//       the delta chain written so far is loadable with a tip equal to
//       the session's surviving store — a partial batch never corrupts
//       the base or an already-written link.
// In both states the device arena is empty. Fallback mode must always
// land in (a). Deterministic oom@alloc / xfer_fail@h2d schedules and a
// kill mid-delta-write round out the randomized sweep.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/serial_pclust.hpp"
#include "device/device_context.hpp"
#include "fault/fault_plan.hpp"
#include "ingest/ingest_session.hpp"
#include "seq/family_model.hpp"
#include "store/delta.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace gpclust {
namespace {

core::ShinglingParams chaos_params() {
  core::ShinglingParams params;
  params.c1 = 20;
  params.c2 = 10;
  return params;
}

seq::SequenceSet chaos_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 4;
  config.min_members = 3;
  config.max_members = 7;
  config.substitution_rate = 0.08;
  config.num_background_orfs = 4;
  config.seed = 6706;
  return seq::generate_metagenome(config).sequences;
}

std::vector<seq::SequenceSet> three_batches(const seq::SequenceSet& all) {
  const std::size_t n = all.size();
  const std::size_t third = n / 3;
  std::vector<seq::SequenceSet> batches;
  batches.emplace_back(all.begin(), all.begin() + third);
  batches.emplace_back(all.begin() + third, all.begin() + 2 * third);
  batches.emplace_back(all.begin() + 2 * third, all.end());
  return batches;
}

ingest::IngestConfig serial_config() {
  ingest::IngestConfig config;
  config.shingling = chaos_params();
  return config;
}

ingest::IngestConfig device_config(device::DeviceContext& ctx) {
  ingest::IngestConfig config = serial_config();
  config.engine = ingest::ClusterEngine::Device;
  config.device = &ctx;
  config.graph.verify_backend = align::VerifyBackend::DeviceBatched;
  config.graph.device_verify.context = &ctx;
  return config;
}

/// Fault-free serial replay of the same batch split: the per-batch digest
/// reference every faulted run is held to.
std::vector<u64> reference_digests(const std::vector<seq::SequenceSet>& batches) {
  ingest::IngestSession session(serial_config());
  std::vector<u64> digests;
  for (const auto& batch : batches) {
    session.ingest(batch);
    digests.push_back(session.partition_digest());
  }
  return digests;
}

/// Same random schedule shape as the pipeline chaos sweep
/// (tests/integration/chaos_test.cpp): a handful of point faults plus an
/// occasional persistent burst.
fault::FaultPlan random_device_plan(u64 seed) {
  util::SplitMix64 rng(seed);
  fault::FaultPlan plan;
  const fault::FaultSite sites[] = {
      fault::FaultSite::Alloc, fault::FaultSite::H2D, fault::FaultSite::D2H,
      fault::FaultSite::Kernel};
  const std::size_t num_faults = 1 + rng.next() % 4;
  for (std::size_t i = 0; i < num_faults; ++i) {
    const auto site = sites[rng.next() % 4];
    const u64 index = rng.next() % 96;
    if (rng.next() % 4 == 0) {
      plan.add_range(site, index, index + rng.next() % 64);
    } else {
      plan.add(site, index);
    }
  }
  if (rng.next() % 5 == 0) {
    plan.add_range(fault::FaultSite::Kernel, 16 + rng.next() % 32, 1u << 20);
  }
  return plan;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void remove_chain_files(const std::string& base_path) {
  std::filesystem::remove(base_path);
  std::filesystem::remove(store::delta_chain_path(base_path, 1));
  std::filesystem::remove(store::delta_chain_path(base_path, 2));
}

class IngestChaosSchedule : public ::testing::TestWithParam<int> {};

TEST_P(IngestChaosSchedule, BatchesCompleteIdenticallyOrFailTyped) {
  const seq::SequenceSet all = chaos_workload();
  const std::vector<seq::SequenceSet> batches = three_batches(all);
  const std::vector<u64> expected = reference_digests(batches);

  const u64 seed = 0x1C4E57ULL * 1000003ULL + static_cast<u64>(GetParam());
  for (const auto mode :
       {fault::ResilienceMode::Off, fault::ResilienceMode::Retry,
        fault::ResilienceMode::Fallback}) {
    auto plan = random_device_plan(seed);
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
    // Expose every stage: the context plan feeds the arena and the
    // DeviceBatched verify pipeline; the engine plan feeds GpClust (which
    // scopes the context plan to its own during cluster()).
    ctx.set_fault_plan(&plan);
    ingest::IngestConfig config = device_config(ctx);
    config.device_options.fault_plan = &plan;
    config.device_options.resilience.mode = mode;
    config.graph.device_verify.resilience.mode = mode;

    const std::string label =
        "seed=" + std::to_string(seed) + " mode=" +
        std::string(fault::resilience_mode_name(mode)) + " plan=\"" +
        plan.to_string() + "\"";
    const std::string base_path = temp_path(
        "gpclust_ingest_chaos_" + std::to_string(GetParam()) + "_" +
        std::string(fault::resilience_mode_name(mode)) + ".gpfi");
    remove_chain_files(base_path);

    ingest::IngestSession session(config);
    u64 last_digest = session.partition_digest();
    std::size_t completed = 0;
    bool failed_typed = false;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      try {
        if (b == 0) {
          // The base of the chain: the first batch's snapshot.
          session.ingest(batches[b]);
          store::write_snapshot(session.store(), base_path);
        } else {
          const store::SnapshotDelta delta =
              session.ingest_with_delta(batches[b], static_cast<u64>(b));
          store::write_delta(delta,
                             store::delta_chain_path(base_path,
                                                     static_cast<u64>(b)));
        }
        // Outcome (a): bit-identical to the fault-free serial reference.
        EXPECT_EQ(session.partition_digest(), expected[b])
            << label << " batch=" << b;
        last_digest = session.partition_digest();
        ++completed;
      } catch (const DeviceError&) {
        // Outcome (b): typed failure, legal in Off and Retry only. The
        // strong guarantee: the session still holds its pre-batch state.
        EXPECT_NE(mode, fault::ResilienceMode::Fallback)
            << label << " batch=" << b;
        EXPECT_EQ(session.partition_digest(), last_digest)
            << label << " batch=" << b;
        failed_typed = true;
      }
      // Arena hygiene after every batch, success or failure.
      EXPECT_EQ(ctx.arena().used(), 0u) << label << " batch=" << b;
      EXPECT_EQ(ctx.arena().num_allocations(), 0u) << label << " batch=" << b;
      if (failed_typed) break;
    }
    if (mode == fault::ResilienceMode::Fallback) {
      EXPECT_EQ(completed, batches.size()) << label;
    }
    // Whatever was written before the failure must still be a loadable
    // chain whose tip is the session's surviving state — a mid-batch
    // fault never leaves a corrupt base or link behind.
    if (completed > 0) {
      const store::DeltaChainTip tip = store::follow_delta_chain(base_path);
      EXPECT_EQ(tip.chain_length, static_cast<u64>(completed - 1)) << label;
      EXPECT_EQ(store::serialize_snapshot(tip.store),
                store::serialize_snapshot(session.store()))
          << label;
    }
    remove_chain_files(base_path);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, IngestChaosSchedule,
                         ::testing::Range(0, 12));

TEST(IngestChaosDeterministic, TransferFaultInVerifyLeavesSessionUsable) {
  // xfer_fail@h2d, resilience off, injected ONLY through the context plan
  // — GpClust scopes the context plan to its own (unset) plan during
  // cluster(), so the fault lands in the DeviceBatched verify stage. The
  // batch must fail typed, roll back, and succeed on a fault-free retry.
  const seq::SequenceSet all = chaos_workload();
  const std::vector<seq::SequenceSet> batches = three_batches(all);
  const std::vector<u64> expected = reference_digests(batches);

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  ingest::IngestSession session(device_config(ctx));
  session.ingest(batches[0]);
  ASSERT_EQ(session.partition_digest(), expected[0]);
  const u64 pre_batch = session.partition_digest();

  fault::FaultPlan plan;
  plan.add_range(fault::FaultSite::H2D, 0, 1u << 20);
  ctx.set_fault_plan(&plan);
  EXPECT_THROW(session.ingest(batches[1]), DeviceError);
  EXPECT_EQ(session.partition_digest(), pre_batch);
  EXPECT_EQ(session.num_sequences(), batches[0].size());
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);

  // The session is still usable: clear the plan and replay the batch.
  ctx.set_fault_plan(nullptr);
  session.ingest(batches[1]);
  EXPECT_EQ(session.partition_digest(), expected[1]);
  session.ingest(batches[2]);
  EXPECT_EQ(session.partition_digest(), expected[2]);
  EXPECT_EQ(ctx.arena().used(), 0u);
}

TEST(IngestChaosDeterministic, AllocFaultInShinglingLeavesSessionUsable) {
  // oom@alloc, resilience off, injected through the engine plan so the
  // device shingling stage hits it. Same contract: typed failure, strong
  // guarantee, fault-free replay succeeds.
  const seq::SequenceSet all = chaos_workload();
  const std::vector<seq::SequenceSet> batches = three_batches(all);
  const std::vector<u64> expected = reference_digests(batches);

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  fault::FaultPlan plan;
  plan.add_range(fault::FaultSite::Alloc, 0, 1u << 20);
  ingest::IngestConfig config = device_config(ctx);
  config.device_options.fault_plan = &plan;
  ingest::IngestSession session(config);

  EXPECT_THROW(session.ingest(batches[0]), DeviceError);
  EXPECT_EQ(session.num_sequences(), 0u);
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);

  config.device_options.fault_plan = nullptr;
  ingest::IngestSession retry(config);
  retry.ingest(batches[0]);
  EXPECT_EQ(retry.partition_digest(), expected[0]);
  EXPECT_EQ(ctx.arena().used(), 0u);
}

TEST(IngestChaosDeterministic, KillMidDeltaWriteLeavesChainLoadable) {
  // A kill while writing link 2 leaves a truncated file: following the
  // chain is typed corruption, never a wrong answer; removing the partial
  // link recovers the intact prefix; the base is untouched throughout.
  const seq::SequenceSet all = chaos_workload();
  const std::vector<seq::SequenceSet> batches = three_batches(all);

  const std::string base_path = temp_path("gpclust_ingest_chaos_kill.gpfi");
  remove_chain_files(base_path);

  ingest::IngestSession chain(serial_config());
  chain.ingest(batches[0]);
  store::write_snapshot(chain.store(), base_path);
  const std::vector<char> base_bytes =
      store::serialize_snapshot(chain.store());
  store::write_delta(chain.ingest_with_delta(batches[1], 1, nullptr),
                     store::delta_chain_path(base_path, 1));
  const std::vector<char> prefix_bytes =
      store::serialize_snapshot(chain.store());
  store::write_delta(chain.ingest_with_delta(batches[2], 2, nullptr),
                     store::delta_chain_path(base_path, 2));

  // Truncate link 2 at half its length: the kill point.
  const std::string link2 = store::delta_chain_path(base_path, 2);
  std::vector<char> link2_bytes;
  {
    std::ifstream in(link2, std::ios::binary);
    ASSERT_TRUE(in.good());
    link2_bytes.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(link2, std::ios::binary | std::ios::trunc);
    out.write(link2_bytes.data(),
              static_cast<std::streamsize>(link2_bytes.size() / 2));
  }
  EXPECT_THROW(store::follow_delta_chain(base_path), store::SnapshotError);

  // Removing the partial link recovers the prefix; the base is untouched.
  std::filesystem::remove(link2);
  const store::DeltaChainTip prefix = store::follow_delta_chain(base_path);
  EXPECT_EQ(prefix.chain_length, 1u);
  EXPECT_EQ(store::serialize_snapshot(prefix.store), prefix_bytes);
  EXPECT_EQ(store::serialize_snapshot(store::load_snapshot(base_path)),
            base_bytes);

  // Re-writing the link intact completes the chain to the session's tip.
  {
    std::ofstream out(link2, std::ios::binary | std::ios::trunc);
    out.write(link2_bytes.data(),
              static_cast<std::streamsize>(link2_bytes.size()));
  }
  const store::DeltaChainTip tip = store::follow_delta_chain(base_path);
  EXPECT_EQ(tip.chain_length, 2u);
  EXPECT_EQ(store::serialize_snapshot(tip.store),
            store::serialize_snapshot(chain.store()));
  remove_chain_files(base_path);
}

}  // namespace
}  // namespace gpclust
