// The streaming-ingest equivalence contract (DESIGN.md §15): for ANY split
// of an input into batches, IngestSession produces the same partition
// digest — and the same snapshot bytes — as a from-scratch run on the
// concatenated input with the same configuration. Exercised for multiple
// splits (including the batch-size-1 trickle), both supported seed modes,
// a forced repeat-mask crossing that revokes standing edges, resume from a
// persisted snapshot, and the device cluster engine.

#include <gtest/gtest.h>

#include <numeric>

#include "align/homology_graph.hpp"
#include "core/serial_pclust.hpp"
#include "device/device_context.hpp"
#include "ingest/ingest_session.hpp"
#include "seq/family_model.hpp"
#include "store/snapshot.hpp"

namespace gpclust {
namespace {

core::ShinglingParams test_params() {
  core::ShinglingParams params;
  params.c1 = 20;
  params.c2 = 10;
  return params;
}

/// The reference: full cascade + serial shingling over everything at once.
core::Clustering from_scratch(const seq::SequenceSet& sequences,
                              const align::HomologyGraphConfig& graph_config,
                              const core::ShinglingParams& params) {
  const graph::CsrGraph g = align::build_homology_graph(sequences,
                                                        graph_config);
  return core::SerialShingler(params).cluster(g);
}

std::vector<char> from_scratch_snapshot_bytes(
    const seq::SequenceSet& sequences,
    const align::HomologyGraphConfig& graph_config,
    const core::ShinglingParams& params,
    const store::StoreBuildConfig& store_config) {
  const core::Clustering reference =
      from_scratch(sequences, graph_config, params);
  return store::serialize_snapshot(
      store::build_family_store(sequences, reference.labels(), store_config));
}

seq::SequenceSet make_workload(u64 seed, std::size_t num_families) {
  seq::FamilyModelConfig config;
  config.num_families = num_families;
  config.min_members = 3;
  config.max_members = 8;
  config.substitution_rate = 0.08;
  config.fragment_min_fraction = 0.8;
  config.num_background_orfs = 6;
  config.seed = seed;
  return seq::generate_metagenome(config).sequences;
}

/// Splits `sequences` at the given fractions and replays them through a
/// fresh session; expects digest and snapshot-byte identity with the
/// from-scratch reference at the end.
void expect_split_equivalent(const seq::SequenceSet& sequences,
                             const ingest::IngestConfig& config,
                             const std::vector<std::size_t>& batch_sizes) {
  ASSERT_EQ(std::accumulate(batch_sizes.begin(), batch_sizes.end(),
                            std::size_t{0}),
            sequences.size());
  ingest::IngestSession session(config);
  std::size_t offset = 0;
  for (const std::size_t size : batch_sizes) {
    const seq::SequenceSet batch(
        sequences.begin() + static_cast<std::ptrdiff_t>(offset),
        sequences.begin() + static_cast<std::ptrdiff_t>(offset + size));
    session.ingest(batch);
    offset += size;
  }
  const core::Clustering reference =
      from_scratch(sequences, config.graph, config.shingling);
  EXPECT_EQ(session.partition_digest(), reference.digest())
      << batch_sizes.size() << " batches";
  EXPECT_EQ(store::serialize_snapshot(session.store()),
            from_scratch_snapshot_bytes(sequences, config.graph,
                                        config.shingling, config.store))
      << batch_sizes.size() << " batches";
}

TEST(IngestEquivalence, KmerModeBatchSplits) {
  const seq::SequenceSet sequences = make_workload(71, 6);
  ingest::IngestConfig config;
  config.shingling = test_params();
  const std::size_t n = sequences.size();

  expect_split_equivalent(sequences, config, {n});
  expect_split_equivalent(sequences, config, {n / 2, n - n / 2});
  expect_split_equivalent(sequences, config,
                          {n / 3, n / 3, n - 2 * (n / 3)});
}

TEST(IngestEquivalence, KmerModeTrickle) {
  // Batch-size-1: every sequence is its own ingest() call.
  const seq::SequenceSet sequences = make_workload(72, 4);
  ingest::IngestConfig config;
  config.shingling = test_params();
  expect_split_equivalent(sequences, config,
                          std::vector<std::size_t>(sequences.size(), 1));
}

TEST(IngestEquivalence, MinHashModeBatchSplits) {
  const seq::SequenceSet sequences = make_workload(73, 5);
  ingest::IngestConfig config;
  config.shingling = test_params();
  config.graph.seed_mode = align::SeedMode::MinHashLsh;
  config.graph.lsh.num_bands = 16;
  const std::size_t n = sequences.size();

  expect_split_equivalent(sequences, config, {n});
  expect_split_equivalent(sequences, config, {n / 2, n - n / 2});
  expect_split_equivalent(sequences, config,
                          {n / 4, n / 4, n / 4, n - 3 * (n / 4)});
}

TEST(IngestEquivalence, MaskCrossingRevokesStandingEdges) {
  // Five identical sequences and max_kmer_occurrences = 4: after the first
  // four, every shared k-mer is unmasked and the quad is a K4 of strong
  // edges; the fifth copy pushes every k-mer's occupancy to 5 > 4, so a
  // from-scratch run over all five finds NO candidates at all. The
  // incremental run must dirty and revoke all six standing edges — and
  // the new-involving pairs must come up empty — not keep stale clusters.
  std::string motif;
  const std::string alphabet = "ACDEFGHIKLMNPQRSTVWY";
  for (std::size_t i = 0; i < 60; ++i) {
    motif.push_back(alphabet[(i * 7 + 3) % alphabet.size()]);
  }
  seq::SequenceSet all;
  for (int i = 0; i < 5; ++i) {
    all.push_back({"copy" + std::to_string(i), motif});
  }

  ingest::IngestConfig config;
  config.shingling = test_params();
  config.graph.seeds.max_kmer_occurrences = 4;

  ingest::IngestSession session(config);
  session.ingest(seq::SequenceSet(all.begin(), all.begin() + 4));
  ASSERT_EQ(session.edges().size(), 6u);  // K4 over the identical copies

  const ingest::IngestBatchStats stats =
      session.ingest(seq::SequenceSet(all.begin() + 4, all.end()));
  EXPECT_EQ(stats.num_dirty_pairs, 6u);
  EXPECT_EQ(stats.num_revoked_edges, 6u);
  EXPECT_EQ(stats.num_accepted_edges, 0u);
  EXPECT_TRUE(session.edges().empty());
  EXPECT_EQ(session.num_families(), 5u);  // all singletons now

  const core::Clustering reference =
      from_scratch(all, config.graph, config.shingling);
  EXPECT_EQ(session.partition_digest(), reference.digest());
  EXPECT_EQ(store::serialize_snapshot(session.store()),
            from_scratch_snapshot_bytes(all, config.graph, config.shingling,
                                        config.store));
}

TEST(IngestEquivalence, ResumeFromSnapshot) {
  const seq::SequenceSet sequences = make_workload(74, 5);
  ingest::IngestConfig config;
  config.shingling = test_params();
  const std::size_t cut = 2 * sequences.size() / 3;
  const seq::SequenceSet head(sequences.begin(),
                              sequences.begin() +
                                  static_cast<std::ptrdiff_t>(cut));
  const seq::SequenceSet tail(sequences.begin() +
                                  static_cast<std::ptrdiff_t>(cut),
                              sequences.end());

  // Persist the head as a from-scratch snapshot, then resume and ingest
  // the tail.
  const core::Clustering head_reference =
      from_scratch(head, config.graph, config.shingling);
  const store::FamilyStore base =
      store::build_family_store(head, head_reference.labels(), config.store);

  ingest::IngestSession session(config, base);
  EXPECT_EQ(session.num_sequences(), head.size());
  EXPECT_EQ(session.num_families(), base.num_families);
  session.ingest(tail);

  const core::Clustering reference =
      from_scratch(sequences, config.graph, config.shingling);
  EXPECT_EQ(session.partition_digest(), reference.digest());
  EXPECT_EQ(store::serialize_snapshot(session.store()),
            from_scratch_snapshot_bytes(sequences, config.graph,
                                        config.shingling, config.store));
}

TEST(IngestEquivalence, DeviceEngineAndBackendMatchSerial) {
  // Device shingling engine + DeviceBatched verification reproduce the
  // serial session bit-for-bit, and the arena is empty after every batch.
  const seq::SequenceSet sequences = make_workload(75, 4);
  const std::size_t half = sequences.size() / 2;
  const seq::SequenceSet first(sequences.begin(),
                               sequences.begin() +
                                   static_cast<std::ptrdiff_t>(half));
  const seq::SequenceSet second(sequences.begin() +
                                    static_cast<std::ptrdiff_t>(half),
                                sequences.end());

  ingest::IngestConfig serial_config;
  serial_config.shingling = test_params();
  ingest::IngestSession serial(serial_config);
  serial.ingest(first);
  serial.ingest(second);

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  ingest::IngestConfig device_config;
  device_config.shingling = test_params();
  device_config.engine = ingest::ClusterEngine::Device;
  device_config.device = &ctx;
  device_config.graph.verify_backend = align::VerifyBackend::DeviceBatched;
  device_config.graph.device_verify.context = &ctx;
  ingest::IngestSession session(device_config);
  session.ingest(first);
  EXPECT_EQ(ctx.arena().used(), 0u);
  session.ingest(second);
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);

  EXPECT_EQ(session.partition_digest(), serial.partition_digest());
}

TEST(IngestSession, RejectsNonIncrementalConfigs) {
  ingest::IngestConfig maximal;
  maximal.graph.seed_mode = align::SeedMode::MaximalMatch;
  EXPECT_THROW(ingest::IngestSession{maximal}, InvalidArgument);

  ingest::IngestConfig heuristic;
  heuristic.graph.prefilter.enabled = true;
  EXPECT_THROW(ingest::IngestSession{heuristic}, InvalidArgument);

  ingest::IngestConfig device_without_context;
  device_without_context.engine = ingest::ClusterEngine::Device;
  EXPECT_THROW(ingest::IngestSession{device_without_context},
               InvalidArgument);
}

TEST(IngestSession, EmptyBatchIsANoOp) {
  ingest::IngestConfig config;
  config.shingling = test_params();
  ingest::IngestSession session(config);
  session.ingest(make_workload(76, 2));
  const u64 digest = session.partition_digest();
  const ingest::IngestBatchStats stats = session.ingest({});
  EXPECT_EQ(stats.num_new_sequences, 0u);
  EXPECT_EQ(session.partition_digest(), digest);
}

}  // namespace
}  // namespace gpclust
