#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace gpclust::util {
namespace {

TEST(BinnedHistogram, Figure5BinsMatchPaper) {
  auto h = BinnedHistogram::figure5_bins();
  ASSERT_EQ(h.num_bins(), 7u);
  EXPECT_EQ(h.label(0), "20-49");
  EXPECT_EQ(h.label(1), "50-99");
  EXPECT_EQ(h.label(2), "100-199");
  EXPECT_EQ(h.label(3), "200-499");
  EXPECT_EQ(h.label(4), "500-999");
  EXPECT_EQ(h.label(5), "1000-1999");
  EXPECT_EQ(h.label(6), ">=2000");
}

TEST(BinnedHistogram, ValuesLandInCorrectBins) {
  auto h = BinnedHistogram::figure5_bins();
  h.add(20);    // bin 0 lower edge
  h.add(49);    // bin 0 upper edge
  h.add(50);    // bin 1 lower edge
  h.add(199);   // bin 2 upper edge
  h.add(2000);  // open bin
  h.add(50000); // open bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(6), 2u);
}

TEST(BinnedHistogram, UnderflowIsTracked) {
  auto h = BinnedHistogram::figure5_bins();
  h.add(3);
  h.add(19);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(BinnedHistogram, WeightsAccumulate) {
  BinnedHistogram h({0, 10});
  h.add(5, 100);
  h.add(15, 7);
  EXPECT_EQ(h.count(0), 100u);
  EXPECT_EQ(h.count(1), 7u);
  EXPECT_EQ(h.total(), 107u);
}

TEST(BinnedHistogram, RejectsBadEdges) {
  EXPECT_THROW(BinnedHistogram({}), InvalidArgument);
  EXPECT_THROW(BinnedHistogram({5, 5}), InvalidArgument);
  EXPECT_THROW(BinnedHistogram({5, 3}), InvalidArgument);
}

TEST(BinnedHistogram, RenderContainsLabelsAndCounts) {
  BinnedHistogram h({1, 10});
  h.add(2);
  h.add(3);
  h.add(12);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("1-9"), std::string::npos);
  EXPECT_NE(out.find(">=10"), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace gpclust::util
