#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/common.hpp"

namespace gpclust::util {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(AsciiTable, ColumnsAreAligned) {
  AsciiTable t({"a", "b"});
  t.add_row({"xxxx", "1"});
  const std::string out = t.render();
  // Header line must pad "a" to the width of "xxxx".
  const auto first_newline = out.find('\n');
  EXPECT_GE(first_newline, std::string{"xxxx  b"}.size());
}

TEST(AsciiTable, RejectsWrongWidthRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(AsciiTable, FmtFormatsPrecision) {
  EXPECT_EQ(AsciiTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::fmt(2.0, 0), "2");
}

TEST(AsciiTable, PctFormatsPercentages) {
  EXPECT_EQ(AsciiTable::pct(0.9243, 2), "92.43%");
  EXPECT_EQ(AsciiTable::pct(1.0, 2), "100.00%");
}

}  // namespace
}  // namespace gpclust::util
