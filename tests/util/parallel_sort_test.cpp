#include "util/parallel_sort.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace gpclust::util {
namespace {

TEST(ParallelSort, MatchesStdSortOnRandomData) {
  Xoshiro256 rng(8);
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 2u, 100u, 65537u, 200000u}) {
    std::vector<u64> data(n);
    for (auto& x : data) x = rng.next();
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    parallel_sort(data, pool, /*min_parallel_size=*/64);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(ParallelSort, HandlesDuplicatesAndPresorted) {
  ThreadPool pool(3);
  std::vector<u32> dups(10000, 7);
  parallel_sort(dups, pool, 64);
  EXPECT_TRUE(std::is_sorted(dups.begin(), dups.end()));

  std::vector<u32> sorted(10000);
  std::iota(sorted.begin(), sorted.end(), 0u);
  auto expected = sorted;
  parallel_sort(sorted, pool, 64);
  EXPECT_EQ(sorted, expected);

  std::vector<u32> reversed(10001);
  std::iota(reversed.rbegin(), reversed.rend(), 0u);
  parallel_sort(reversed, pool, 64);
  EXPECT_TRUE(std::is_sorted(reversed.begin(), reversed.end()));
}

TEST(ParallelSort, SingleWorkerFallsBackToStdSort) {
  ThreadPool pool(1);
  Xoshiro256 rng(2);
  std::vector<u64> data(100000);
  for (auto& x : data) x = rng.next();
  parallel_sort(data, pool, 64);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(ParallelSort, OddChunkCounts) {
  // Pool of 5 workers gives an odd number of chunks; the merge rounds must
  // carry the trailing chunk correctly.
  ThreadPool pool(5);
  Xoshiro256 rng(3);
  std::vector<u64> data(12345);
  for (auto& x : data) x = rng.next_below(100);
  parallel_sort(data, pool, 64);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  EXPECT_EQ(data.size(), 12345u);
}

}  // namespace
}  // namespace gpclust::util
