#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gpclust::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForHandlesRangeSmallerThanPool) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    total += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ParallelForPropagatesChunkException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::runtime_error("chunk");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SizeMatchesConstruction) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ThreadPool, DefaultPoolIsUsable) {
  std::atomic<int> x{0};
  default_thread_pool().submit([&x] { x = 7; }).get();
  EXPECT_EQ(x.load(), 7);
}

}  // namespace
}  // namespace gpclust::util
