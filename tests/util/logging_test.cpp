#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace gpclust::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LoggingTest, StreamsDoNotCrashAtAnyLevel) {
  for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warning,
                         LogLevel::Error}) {
    set_log_level(level);
    log_debug() << "debug " << 1;
    log_info() << "info " << 2.5;
    log_warn() << "warn " << "text";
    log_error() << "error";
  }
}

TEST_F(LoggingTest, LevelOrderingIsMonotone) {
  EXPECT_LT(static_cast<int>(LogLevel::Debug), static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info),
            static_cast<int>(LogLevel::Warning));
  EXPECT_LT(static_cast<int>(LogLevel::Warning),
            static_cast<int>(LogLevel::Error));
}

}  // namespace
}  // namespace gpclust::util
