#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gpclust::util {
namespace {

TEST(SplitMix64, IsDeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Mix64, IsInjectiveOnSmallSample) {
  std::set<u64> seen;
  for (u64 x = 0; x < 10000; ++x) seen.insert(mix64(x));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Xoshiro256, DeterministicStreams) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowZeroThrows) {
  Xoshiro256 rng(7);
  EXPECT_THROW(rng.next_below(0), InvalidArgument);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr u64 kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.1 * kDraws / kBuckets);
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, JumpProducesIndependentStream) {
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace gpclust::util
