#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gpclust::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 100.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, FormatRendersMeanPlusMinusStd) {
  RunningStats s;
  s.add(70.0);
  s.add(76.0);
  EXPECT_EQ(s.format(0), "73 \xC2\xB1 4");
}

}  // namespace
}  // namespace gpclust::util
