#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace gpclust::util {
namespace {

CliArgs parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesEqualsForm) {
  auto args = parse({"--name=value", "--n=42"});
  EXPECT_EQ(args.get_string("name", ""), "value");
  EXPECT_EQ(args.get_int("n", 0), 42);
}

TEST(CliArgs, ParsesSpaceForm) {
  auto args = parse({"--name", "value", "--n", "7"});
  EXPECT_EQ(args.get_string("name", ""), "value");
  EXPECT_EQ(args.get_int("n", 0), 7);
}

TEST(CliArgs, BareFlagIsTrue) {
  auto args = parse({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(CliArgs, FallbacksApplyWhenMissing) {
  auto args = parse({});
  EXPECT_EQ(args.get_string("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("x", -3), -3);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("x", false));
}

TEST(CliArgs, PositionalArgumentsPreserved) {
  auto args = parse({"input.txt", "--k=3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(CliArgs, DoubleAndBoolParsing) {
  auto args = parse({"--p=0.25", "--on=yes", "--off=0"});
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.25);
  EXPECT_TRUE(args.get_bool("on", false));
  EXPECT_FALSE(args.get_bool("off", true));
}

TEST(CliArgs, ConsecutiveFlagsDoNotConsumeEachOther) {
  auto args = parse({"--a", "--b=2"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

}  // namespace
}  // namespace gpclust::util
