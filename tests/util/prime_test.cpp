#include "util/prime.hpp"

#include <gtest/gtest.h>

namespace gpclust::util {
namespace {

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(100));
}

TEST(Prime, Mersenne61IsPrime) {
  EXPECT_TRUE(is_prime(kMersenne61));
  EXPECT_EQ(kMersenne61, 2305843009213693951ULL);
}

TEST(Prime, KnownLargePrimes) {
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(1000000000039ULL));
  EXPECT_FALSE(is_prime(1000000007ULL * 3));
}

TEST(Prime, CarmichaelNumbersAreComposite) {
  // Classic Fermat pseudoprimes must be rejected.
  EXPECT_FALSE(is_prime(561));
  EXPECT_FALSE(is_prime(1105));
  EXPECT_FALSE(is_prime(41041));
  EXPECT_FALSE(is_prime(825265));
}

TEST(Prime, NextPrimeFindsSmallest) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(3), 3u);
  EXPECT_EQ(next_prime(4), 5u);
  EXPECT_EQ(next_prime(90), 97u);
  EXPECT_EQ(next_prime(1000000), 1000003u);
}

TEST(Prime, NextPrimeOfPrimeIsItself) {
  for (u64 p : {5ULL, 7ULL, 1000000007ULL}) EXPECT_EQ(next_prime(p), p);
}

TEST(Prime, MulmodMatchesWideArithmetic) {
  const u64 m = kMersenne61;
  EXPECT_EQ(mulmod(2, 3, 7), 6u);
  EXPECT_EQ(mulmod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1 mod m
  EXPECT_EQ(mulmod(m - 1, 2, m), m - 2);
}

TEST(Prime, PowmodKnownValues) {
  EXPECT_EQ(powmod(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(powmod(5, 0, 13), 1u);
  // Fermat's little theorem: a^(p-1) = 1 mod p.
  EXPECT_EQ(powmod(123456789ULL, kMersenne61 - 1, kMersenne61), 1u);
}

}  // namespace
}  // namespace gpclust::util
