#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace gpclust::util {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.009);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.seconds(), 0.009);
}

TEST(MetricsRegistry, AccumulatesNamedDurations) {
  MetricsRegistry reg;
  reg.add("gpu", 1.5);
  reg.add("gpu", 0.5);
  reg.add("cpu", 3.0);
  EXPECT_DOUBLE_EQ(reg.get("gpu"), 2.0);
  EXPECT_DOUBLE_EQ(reg.get("cpu"), 3.0);
  EXPECT_DOUBLE_EQ(reg.get("missing"), 0.0);
  EXPECT_TRUE(reg.has("gpu"));
  EXPECT_FALSE(reg.has("missing"));
}

TEST(MetricsRegistry, ClearEmpties) {
  MetricsRegistry reg;
  reg.add("x", 1.0);
  reg.clear();
  EXPECT_FALSE(reg.has("x"));
  EXPECT_TRUE(reg.all().empty());
}

TEST(ScopedTimer, AddsToRegistryOnDestruction) {
  MetricsRegistry reg;
  {
    ScopedTimer timer(reg, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(reg.get("scope"), 0.004);
}

}  // namespace
}  // namespace gpclust::util
