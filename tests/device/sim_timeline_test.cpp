#include "device/sim_timeline.hpp"

#include <gtest/gtest.h>

namespace gpclust::device {
namespace {

TEST(SimTimeline, SingleStreamSerializesOps) {
  SimTimeline t(1);
  EXPECT_DOUBLE_EQ(t.enqueue(0, OpKind::CopyH2D, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(t.enqueue(0, OpKind::Kernel, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(t.enqueue(0, OpKind::CopyD2H, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(t.makespan(), 3.5);
}

TEST(SimTimeline, BusyTotalsPerKind) {
  SimTimeline t(2);
  t.enqueue(0, OpKind::Kernel, 2.0);
  t.enqueue(1, OpKind::Kernel, 3.0);
  t.enqueue(0, OpKind::CopyD2H, 1.0);
  EXPECT_DOUBLE_EQ(t.busy(OpKind::Kernel), 5.0);
  EXPECT_DOUBLE_EQ(t.busy(OpKind::CopyD2H), 1.0);
  EXPECT_DOUBLE_EQ(t.busy(OpKind::CopyH2D), 0.0);
  EXPECT_EQ(t.num_ops(), 3u);
}

TEST(SimTimeline, IndependentStreamsOverlap) {
  SimTimeline t(2);
  t.enqueue(0, OpKind::Kernel, 5.0);
  t.enqueue(1, OpKind::CopyD2H, 3.0);
  // Overlapping ops: makespan is the max, not the sum.
  EXPECT_DOUBLE_EQ(t.makespan(), 5.0);
}

TEST(SimTimeline, CrossStreamDependencyDelaysStart) {
  SimTimeline t(2);
  const double kernel_done = t.enqueue(0, OpKind::Kernel, 4.0);
  // Copy depends on the kernel's output: starts at 4.0, ends at 6.0.
  const double copy_done = t.enqueue(1, OpKind::CopyD2H, 2.0, kernel_done);
  EXPECT_DOUBLE_EQ(copy_done, 6.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 6.0);
}

TEST(SimTimeline, PipelineOverlapModel) {
  // Two iterations: kernel_i on stream 0, copy of result_i on stream 1.
  // Copy of iteration 0 overlaps kernel of iteration 1 — the async pattern
  // the paper's future-work section describes.
  SimTimeline t(2);
  const double k0 = t.enqueue(0, OpKind::Kernel, 4.0);
  const double k1 = t.enqueue(0, OpKind::Kernel, 4.0);
  const double c0 = t.enqueue(1, OpKind::CopyD2H, 3.0, k0);
  const double c1 = t.enqueue(1, OpKind::CopyD2H, 3.0, k1);
  EXPECT_DOUBLE_EQ(k1, 8.0);
  EXPECT_DOUBLE_EQ(c0, 7.0);
  EXPECT_DOUBLE_EQ(c1, 11.0);          // max(8, 7) + 3
  EXPECT_DOUBLE_EQ(t.makespan(), 11.0);  // sync would be 4+3+4+3 = 14
}

TEST(SimTimeline, ResetClearsState) {
  SimTimeline t(2);
  t.enqueue(0, OpKind::Kernel, 1.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(t.busy(OpKind::Kernel), 0.0);
  EXPECT_EQ(t.num_ops(), 0u);
}

TEST(SimTimeline, Validation) {
  EXPECT_THROW(SimTimeline(0), InvalidArgument);
  SimTimeline t(1);
  EXPECT_THROW(t.enqueue(5, OpKind::Kernel, 1.0), InvalidArgument);
  EXPECT_THROW(t.enqueue(0, OpKind::Kernel, -1.0), InvalidArgument);
  EXPECT_THROW(t.stream_cursor(9), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::device
