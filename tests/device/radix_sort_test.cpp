#include "device/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace gpclust::device {
namespace {

class RadixSortTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{DeviceSpec::small_test_device(32 << 20)};

  template <typename T>
  DeviceVector<T> upload(const std::vector<T>& host) {
    DeviceVector<T> dev(ctx_, host.size());
    copy_to_device<T>(dev, host);
    return dev;
  }

  template <typename T>
  std::vector<T> download(const DeviceVector<T>& dev) {
    std::vector<T> host(dev.size());
    copy_to_host<T>(host, dev);
    return host;
  }
};

TEST_F(RadixSortTest, MatchesStdSortU64) {
  util::Xoshiro256 rng(1);
  std::vector<u64> host(20000);
  for (auto& x : host) x = rng.next();
  auto dev = upload(host);
  radix_sort(dev);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(download(dev), host);
}

TEST_F(RadixSortTest, MatchesStdSortU32) {
  util::Xoshiro256 rng(2);
  std::vector<u32> host(10000);
  for (auto& x : host) x = static_cast<u32>(rng.next());
  auto dev = upload(host);
  radix_sort(dev);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(download(dev), host);
}

TEST_F(RadixSortTest, HandlesDuplicatesAndExtremes) {
  std::vector<u64> host = {0, ~0ULL, 5, 5, 5, 0, ~0ULL, 1};
  auto dev = upload(host);
  radix_sort(dev);
  EXPECT_EQ(download(dev),
            (std::vector<u64>{0, 0, 1, 5, 5, 5, ~0ULL, ~0ULL}));
}

TEST_F(RadixSortTest, EmptyVector) {
  DeviceVector<u64> dev(ctx_, 0);
  radix_sort(dev);
  EXPECT_EQ(dev.size(), 0u);
}

TEST_F(RadixSortTest, ByKeyPermutesValues) {
  auto keys = upload<u64>({300, 100, 200});
  auto values = upload<u32>({3, 1, 2});
  radix_sort_by_key(keys, values);
  EXPECT_EQ(download(keys), (std::vector<u64>{100, 200, 300}));
  EXPECT_EQ(download(values), (std::vector<u32>{1, 2, 3}));
}

TEST_F(RadixSortTest, ByKeyIsStable) {
  auto keys = upload<u64>({1, 0, 1, 0, 1});
  auto values = upload<u32>({10, 20, 30, 40, 50});
  radix_sort_by_key(keys, values);
  EXPECT_EQ(download(values), (std::vector<u32>{20, 40, 10, 30, 50}));
}

TEST_F(RadixSortTest, ByKeyMatchesStableSortReference) {
  util::Xoshiro256 rng(3);
  std::vector<u64> keys_h(5000);
  std::vector<u32> values_h(5000);
  for (std::size_t i = 0; i < keys_h.size(); ++i) {
    keys_h[i] = rng.next_below(100);  // many duplicates stress stability
    values_h[i] = static_cast<u32>(i);
  }
  auto keys = upload(keys_h);
  auto values = upload(values_h);
  radix_sort_by_key(keys, values);

  std::vector<u64> order(keys_h.size());
  std::iota(order.begin(), order.end(), u64{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](u64 a, u64 b) { return keys_h[a] < keys_h[b]; });
  std::vector<u32> expected_values(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    expected_values[i] = values_h[order[i]];
  }
  EXPECT_EQ(download(values), expected_values);
}

TEST_F(RadixSortTest, ScratchReleasedAfterCall) {
  auto dev = upload<u64>(std::vector<u64>(1000, 1));
  const std::size_t used_before = ctx_.arena().used();
  radix_sort(dev);
  EXPECT_EQ(ctx_.arena().used(), used_before);
}

TEST_F(RadixSortTest, ScratchRespectsDeviceCapacity) {
  DeviceContext tiny(DeviceSpec::small_test_device(1 << 10));
  DeviceVector<u64> dev(tiny, 100);  // 800 of 1024 bytes
  EXPECT_THROW(radix_sort(dev), DeviceError);  // scratch cannot fit
}

TEST_F(RadixSortTest, ChargesSortCost) {
  auto dev = upload<u64>(std::vector<u64>(5000, 7));
  ctx_.reset_timeline();
  radix_sort(dev);
  EXPECT_NEAR(ctx_.gpu_seconds(), ctx_.sort_cost(5000), 1e-12);
}

}  // namespace
}  // namespace gpclust::device
