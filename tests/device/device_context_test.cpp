#include "device/device_context.hpp"

#include <gtest/gtest.h>

namespace gpclust::device {
namespace {

TEST(DeviceSpec, K20PresetMatchesPaperHardware) {
  const auto spec = DeviceSpec::tesla_k20();
  EXPECT_EQ(spec.num_cores, 2496u);          // paper §IV-B
  EXPECT_EQ(spec.global_memory_bytes, 5ULL << 30);  // 5 GB board
  EXPECT_NEAR(spec.clock_ghz, 0.706, 1e-9);
  EXPECT_EQ(spec.warp_size, 32u);
}

TEST(DeviceSpec, TestPresetHasTinyMemory) {
  const auto spec = DeviceSpec::small_test_device(4096);
  EXPECT_EQ(spec.global_memory_bytes, 4096u);
}

TEST(DeviceContext, CostsScaleLinearlyInSize) {
  DeviceContext ctx(DeviceSpec::small_test_device());
  const double t1 = ctx.transform_cost(1000);
  const double t2 = ctx.transform_cost(2000);
  const double launch = ctx.spec().kernel_launch_sec;
  EXPECT_NEAR(t2 - launch, 2.0 * (t1 - launch), 1e-12);

  const double c1 = ctx.h2d_cost(1 << 20);
  const double c2 = ctx.h2d_cost(2 << 20);
  const double latency = ctx.spec().transfer_latency_sec;
  EXPECT_NEAR(c2 - latency, 2.0 * (c1 - latency), 1e-12);
}

TEST(DeviceContext, ZeroElementsStillPayLaunchLatency) {
  DeviceContext ctx(DeviceSpec::small_test_device());
  EXPECT_DOUBLE_EQ(ctx.transform_cost(0), ctx.spec().kernel_launch_sec);
  EXPECT_DOUBLE_EQ(ctx.d2h_cost(0), ctx.spec().transfer_latency_sec);
}

TEST(DeviceContext, SortCostsMoreThanTransformPerElement) {
  DeviceContext ctx(DeviceSpec::tesla_k20());
  EXPECT_GT(ctx.sort_cost(1 << 20), ctx.transform_cost(1 << 20));
}

TEST(DeviceContext, ResetTimelineClearsAccounting) {
  DeviceContext ctx(DeviceSpec::small_test_device());
  ctx.timeline().enqueue(0, OpKind::Kernel, 1.0);
  EXPECT_GT(ctx.gpu_seconds(), 0.0);
  ctx.reset_timeline();
  EXPECT_DOUBLE_EQ(ctx.gpu_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(ctx.makespan(), 0.0);
}

TEST(DeviceContext, ArenaMatchesSpecCapacity) {
  DeviceContext ctx(DeviceSpec::small_test_device(12345));
  EXPECT_EQ(ctx.arena().capacity(), 12345u);
}

}  // namespace
}  // namespace gpclust::device
