#include "device/device_vector.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gpclust::device {
namespace {

class DeviceVectorTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{DeviceSpec::small_test_device(1 << 16)};
};

TEST_F(DeviceVectorTest, AllocationChargesArena) {
  DeviceVector<u32> v(ctx_, 100);
  EXPECT_EQ(ctx_.arena().used(), 400u);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.bytes(), 400u);
}

TEST_F(DeviceVectorTest, DestructionReleasesArena) {
  {
    DeviceVector<u64> v(ctx_, 10);
    EXPECT_EQ(ctx_.arena().used(), 80u);
  }
  EXPECT_EQ(ctx_.arena().used(), 0u);
}

TEST_F(DeviceVectorTest, OversizedAllocationThrows) {
  EXPECT_THROW(DeviceVector<u64>(ctx_, 1 << 20), DeviceError);
  EXPECT_EQ(ctx_.arena().used(), 0u);
}

TEST_F(DeviceVectorTest, MoveTransfersOwnership) {
  DeviceVector<u32> a(ctx_, 50);
  DeviceVector<u32> b = std::move(a);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(a.context(), nullptr);
  EXPECT_EQ(ctx_.arena().used(), 200u);

  DeviceVector<u32> c(ctx_, 10);
  c = std::move(b);
  EXPECT_EQ(c.size(), 50u);
  EXPECT_EQ(ctx_.arena().used(), 200u);  // the 10-element block was freed
}

TEST_F(DeviceVectorTest, CopyRoundTrip) {
  std::vector<u32> host(64);
  std::iota(host.begin(), host.end(), 1u);
  DeviceVector<u32> dev(ctx_, 64);
  copy_to_device<u32>(dev, host);

  std::vector<u32> back(64, 0);
  copy_to_host<u32>(back, dev);
  EXPECT_EQ(back, host);
}

TEST_F(DeviceVectorTest, CopiesChargeModeledTransferTime) {
  std::vector<u32> host(100, 1);
  DeviceVector<u32> dev(ctx_, 100);
  copy_to_device<u32>(dev, host);
  EXPECT_GT(ctx_.h2d_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(ctx_.d2h_seconds(), 0.0);

  std::vector<u32> back(100);
  copy_to_host<u32>(back, dev);
  EXPECT_GT(ctx_.d2h_seconds(), 0.0);
  // Modeled, not wall time: 400 bytes over the test device's 100 MB/s plus
  // fixed latency.
  EXPECT_NEAR(ctx_.h2d_seconds(),
              ctx_.spec().transfer_latency_sec + 400.0 / 100e6, 1e-12);
}

TEST_F(DeviceVectorTest, PartialCopyToHost) {
  std::vector<u32> host = {1, 2, 3, 4};
  DeviceVector<u32> dev(ctx_, 4);
  copy_to_device<u32>(dev, host);
  std::vector<u32> front(2);
  copy_to_host<u32>(front, dev);
  EXPECT_EQ(front, (std::vector<u32>{1, 2}));
}

TEST_F(DeviceVectorTest, SizeMismatchesThrow) {
  DeviceVector<u32> dev(ctx_, 4);
  std::vector<u32> big(8, 0);
  EXPECT_THROW(copy_to_device<u32>(dev, big), InvalidArgument);
  EXPECT_THROW(copy_to_host<u32>(big, dev), InvalidArgument);
}

TEST_F(DeviceVectorTest, UnallocatedVectorRejectsCopies) {
  DeviceVector<u32> empty;
  std::vector<u32> host(1);
  EXPECT_THROW(copy_to_device<u32>(empty, host), InvalidArgument);
  EXPECT_THROW(copy_to_host<u32>(host, empty), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::device
