// The k-stream pipeline scheduler (DESIGN.md §8): engine-exclusive
// SimTimeline semantics, exposed critical-path accounting, the modeled
// makespan's behavior over the stream count, and bit-identity of the
// partition for every {streams} x {shards} x {resilience} combination
// (CLAUDE.md invariant) — including under a chaos fault plan, with the
// arena empty after every run.

#include <gtest/gtest.h>

#include "core/gpclust.hpp"
#include "core/serial_pclust.hpp"
#include "device/sim_timeline.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generators.hpp"

namespace gpclust {
namespace {

// --- SimTimeline semantics ------------------------------------------------

TEST(StreamOverlap, EngineExclusiveSerializesSameKindAcrossStreams) {
  device::SimTimeline tl(4, /*engine_exclusive=*/true);
  const double k0 = tl.enqueue(0, device::OpKind::Kernel, 1.0);
  const double k1 = tl.enqueue(2, device::OpKind::Kernel, 1.0);
  EXPECT_DOUBLE_EQ(k0, 1.0);
  EXPECT_DOUBLE_EQ(k1, 2.0);  // one compute front-end: no same-kind overlap

  // A copy overlaps both kernels: different engine.
  const double c0 = tl.enqueue(1, device::OpKind::CopyD2H, 0.5);
  EXPECT_DOUBLE_EQ(c0, 0.5);
  EXPECT_DOUBLE_EQ(tl.makespan(), 2.0);
}

TEST(StreamOverlap, NonExclusiveTimelineKeepsLegacyOverlap) {
  device::SimTimeline tl(4, /*engine_exclusive=*/false);
  tl.enqueue(0, device::OpKind::Kernel, 1.0);
  const double k1 = tl.enqueue(2, device::OpKind::Kernel, 1.0);
  EXPECT_DOUBLE_EQ(k1, 1.0);  // same-kind ops overlap freely
}

TEST(StreamOverlap, ExposedSecondsSumToMakespan) {
  device::SimTimeline tl(4, /*engine_exclusive=*/true);
  tl.enqueue(0, device::OpKind::CopyH2D, 0.25);
  tl.enqueue(0, device::OpKind::Kernel, 1.0);
  tl.enqueue(1, device::OpKind::CopyD2H, 0.75);  // overlaps the kernel
  tl.enqueue(0, device::OpKind::Kernel, 0.5);
  tl.enqueue(1, device::OpKind::CopyD2H, 1.25);  // outruns the kernel frontier

  const double sum = tl.exposed(device::OpKind::Kernel) +
                     tl.exposed(device::OpKind::CopyH2D) +
                     tl.exposed(device::OpKind::CopyD2H);
  EXPECT_DOUBLE_EQ(sum, tl.makespan());
  // The H2D ran on an empty timeline: fully exposed.
  EXPECT_DOUBLE_EQ(tl.exposed(device::OpKind::CopyH2D), 0.25);
  // First D2H (0.00-0.75) hid entirely behind the kernel frontier; the
  // second (0.75-2.00) ran past it by 0.25 s — only that tail is exposed.
  EXPECT_DOUBLE_EQ(tl.exposed(device::OpKind::CopyD2H), 0.25);
  EXPECT_DOUBLE_EQ(tl.busy(device::OpKind::CopyD2H), 2.0);
}

TEST(StreamOverlap, EnsureStreamsGrowsAndNeverShrinks) {
  device::SimTimeline tl(1);
  EXPECT_EQ(tl.num_streams(), 1u);
  tl.ensure_streams(6);
  EXPECT_EQ(tl.num_streams(), 6u);
  tl.ensure_streams(2);
  EXPECT_EQ(tl.num_streams(), 6u);
  tl.enqueue(5, device::OpKind::Kernel, 1.0);
  EXPECT_DOUBLE_EQ(tl.makespan(), 1.0);
}

// --- pipeline makespan behavior ------------------------------------------

graph::CsrGraph overlap_test_graph() {
  graph::PlantedFamilyConfig cfg;
  cfg.num_families = 14;
  cfg.min_family_size = 6;
  cfg.max_family_size = 30;
  cfg.num_singletons = 10;
  cfg.seed = 777;
  return graph::generate_planted_families(cfg).graph;
}

core::ShinglingParams overlap_test_params() {
  core::ShinglingParams params;
  params.c1 = 12;
  params.c2 = 6;
  return params;
}

core::GpClustReport run_with_streams(const graph::CsrGraph& g,
                                     std::size_t streams,
                                     std::size_t agg_shards = 1) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  core::GpClustOptions options;
  options.max_batch_elements = 97;  // same batch partition for every k
  options.pipeline.num_streams = streams;
  options.pipeline.agg_shards = static_cast<u32>(agg_shards);
  core::GpClustReport report;
  core::GpClust(ctx, overlap_test_params(), options).cluster(g, &report);
  EXPECT_EQ(ctx.arena().used(), 0u) << "streams=" << streams;
  return report;
}

TEST(StreamOverlap, MakespanMonotonicallyNonIncreasingInStreamCount) {
  const auto g = overlap_test_graph();
  double previous = -1.0;
  for (std::size_t streams : {1u, 2u, 4u, 8u}) {
    const auto report = run_with_streams(g, streams);
    EXPECT_EQ(report.pass1.num_lanes, (streams + 1) / 2);
    if (previous >= 0.0) {
      EXPECT_LE(report.device_makespan, previous) << "streams=" << streams;
    }
    previous = report.device_makespan;
  }
}

TEST(StreamOverlap, OneStreamMatchesSynchronousEngine) {
  const auto g = overlap_test_graph();
  const auto report = run_with_streams(g, 1);
  // The paper's synchronous behavior: no overlap at all, so the makespan
  // degenerates to the sum of the per-component busy times.
  EXPECT_NEAR(report.device_makespan,
              report.gpu_seconds + report.h2d_seconds + report.d2h_seconds,
              1e-12);
  // And everything is on the critical path.
  EXPECT_NEAR(report.gpu_exposed_seconds, report.gpu_seconds, 1e-12);
  EXPECT_NEAR(report.h2d_exposed_seconds, report.h2d_seconds, 1e-12);
  EXPECT_NEAR(report.d2h_exposed_seconds, report.d2h_seconds, 1e-12);
}

TEST(StreamOverlap, TwoStreamsHideTransfersBehindCompute) {
  const auto g = overlap_test_graph();
  const auto one = run_with_streams(g, 1);
  const auto two = run_with_streams(g, 2);
  // Same modeled work, overlapped: busy totals match the synchronous
  // engine exactly while the dedicated copy stream shrinks the makespan.
  EXPECT_DOUBLE_EQ(two.gpu_seconds, one.gpu_seconds);
  EXPECT_DOUBLE_EQ(two.d2h_seconds, one.d2h_seconds);
  EXPECT_LT(two.device_makespan, one.device_makespan);
  EXPECT_LT(two.d2h_exposed_seconds, one.d2h_exposed_seconds);
}

TEST(StreamOverlap, FourStreamsBeatTwoByHidingBatchUploads) {
  const auto g = overlap_test_graph();
  const auto two = run_with_streams(g, 2);
  const auto four = run_with_streams(g, 4);
  // Two lanes upload batch i+1 while batch i computes: a strict gain over
  // the single-lane async overlap whenever a pass has several batches.
  ASSERT_GT(two.pass1.num_batches, 2u);
  EXPECT_LT(four.device_makespan, two.device_makespan);
  EXPECT_LT(four.h2d_exposed_seconds, two.h2d_exposed_seconds);
}

TEST(StreamOverlap, ExposedReportColumnsSumToMakespan) {
  const auto g = overlap_test_graph();
  for (std::size_t streams : {1u, 2u, 4u, 8u}) {
    const auto report = run_with_streams(g, streams);
    EXPECT_NEAR(report.gpu_exposed_seconds + report.h2d_exposed_seconds +
                    report.d2h_exposed_seconds,
                report.device_makespan, 1e-9)
        << "streams=" << streams;
  }
}

// --- bit-identity across the whole pipeline parameter space ---------------

TEST(StreamOverlap, StreamsShardsAndResilienceAllMatchSerial) {
  const auto g = overlap_test_graph();
  const auto params = overlap_test_params();
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();
  const u64 expected = serial.digest();

  // A chaos-style schedule touching every fault site; Fallback mode must
  // absorb all of it without changing a single cluster.
  const char* kChaosSpec =
      "xfer_fail@h2d:2,kernel_fail@kernel:9,oom@alloc:11,xfer_fail@d2h:25";

  for (std::size_t streams : {1u, 2u, 4u, 8u}) {
    for (std::size_t shards : {1u, 4u, 16u}) {
      for (bool chaos : {false, true}) {
        fault::FaultPlan plan;
        device::DeviceContext ctx(
            device::DeviceSpec::small_test_device(8 << 20));
        core::GpClustOptions options;
        options.max_batch_elements = 97;
        options.pipeline.num_streams = streams;
        options.pipeline.agg_shards = static_cast<u32>(shards);
        if (chaos) {
          plan = fault::FaultPlan::parse(kChaosSpec);
          options.fault_plan = &plan;
          options.resilience.mode = fault::ResilienceMode::Fallback;
        }
        auto result = core::GpClust(ctx, params, options).cluster(g);
        result.normalize();
        EXPECT_EQ(result.digest(), expected)
            << "streams=" << streams << " shards=" << shards
            << " chaos=" << chaos;
        EXPECT_EQ(ctx.arena().used(), 0u)
            << "streams=" << streams << " shards=" << shards
            << " chaos=" << chaos;
        EXPECT_EQ(ctx.arena().num_allocations(), 0u);
      }
    }
  }
}

TEST(StreamOverlap, MidPipelineOomDrainsLanesAndRetriesAtFullSize) {
  const auto g = overlap_test_graph();
  const auto params = overlap_test_params();
  auto serial = core::SerialShingler(params).cluster(g);
  serial.normalize();

  // With 4 lanes several batches are co-resident; an injected OOM while
  // other lanes hold buffers must drain the pipeline and retry the same
  // batch size (the drain freed the memory) instead of halving it.
  auto plan = fault::FaultPlan::parse("oom@alloc:17");
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  core::GpClustOptions options;
  options.max_batch_elements = 97;
  options.pipeline.num_streams = 8;
  options.fault_plan = &plan;
  options.resilience.mode = fault::ResilienceMode::Retry;
  core::GpClustReport report;
  auto result = core::GpClust(ctx, params, options).cluster(g, &report);
  result.normalize();

  EXPECT_EQ(result.digest(), serial.digest());
  EXPECT_GE(report.pass1.num_pipeline_drains, 1u);
  EXPECT_EQ(report.pass1.num_batch_replans, 0u);
  EXPECT_EQ(ctx.arena().used(), 0u);
}

TEST(StreamOverlap, SingleLaneKeepsSeedResilienceSemantics) {
  const auto g = overlap_test_graph();
  const auto params = overlap_test_params();

  // streams=1: nothing is ever co-resident, so a fault can never count a
  // pipeline drain and OOM goes straight to the batch-halving ladder.
  auto plan = fault::FaultPlan::parse("oom@alloc:6");
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(8 << 20));
  core::GpClustOptions options;
  options.max_batch_elements = 97;
  options.pipeline.num_streams = 1;
  options.fault_plan = &plan;
  options.resilience.mode = fault::ResilienceMode::Retry;
  core::GpClustReport report;
  core::GpClust(ctx, params, options).cluster(g, &report);

  EXPECT_EQ(report.pass1.num_pipeline_drains +
                report.pass2.num_pipeline_drains,
            0u);
  EXPECT_GE(report.pass1.num_batch_replans +
                report.pass2.num_batch_replans,
            1u);
}

}  // namespace
}  // namespace gpclust
