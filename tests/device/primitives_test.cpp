#include "device/primitives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace gpclust::device {
namespace {

class PrimitivesTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{DeviceSpec::small_test_device(8 << 20)};

  template <typename T>
  DeviceVector<T> upload(const std::vector<T>& host) {
    DeviceVector<T> dev(ctx_, host.size());
    copy_to_device<T>(dev, host);
    return dev;
  }

  template <typename T>
  std::vector<T> download(const DeviceVector<T>& dev) {
    std::vector<T> host(dev.size());
    copy_to_host<T>(host, dev);
    return host;
  }
};

TEST_F(PrimitivesTest, TransformAppliesFunctor) {
  auto in = upload<u32>({1, 2, 3, 4});
  DeviceVector<u32> out(ctx_, 4);
  transform(in, out, [](u32 x) { return x * x; });
  EXPECT_EQ(download(out), (std::vector<u32>{1, 4, 9, 16}));
}

TEST_F(PrimitivesTest, TransformChargesKernelTime) {
  auto in = upload<u32>(std::vector<u32>(1000, 1));
  DeviceVector<u32> out(ctx_, 1000);
  const double before = ctx_.gpu_seconds();
  transform(in, out, [](u32 x) { return x; });
  EXPECT_GT(ctx_.gpu_seconds(), before);
}

TEST_F(PrimitivesTest, TabulateGeneratesByIndex) {
  DeviceVector<u64> v(ctx_, 5);
  tabulate(v, [](std::size_t i) { return static_cast<u64>(i * 10); });
  EXPECT_EQ(download(v), (std::vector<u64>{0, 10, 20, 30, 40}));
}

TEST_F(PrimitivesTest, SortMatchesStdSort) {
  util::Xoshiro256 rng(4);
  std::vector<u64> host(5000);
  for (auto& x : host) x = rng.next();
  auto dev = upload(host);
  sort(dev);
  std::sort(host.begin(), host.end());
  EXPECT_EQ(download(dev), host);
}

TEST_F(PrimitivesTest, SortWithCustomComparator) {
  auto dev = upload<u32>({3, 1, 2});
  sort(dev, std::greater<u32>{});
  EXPECT_EQ(download(dev), (std::vector<u32>{3, 2, 1}));
}

TEST_F(PrimitivesTest, SegmentedSortSortsWithinSegmentsOnly) {
  auto dev = upload<u32>({5, 3, 9, 2, 8, 1, 7});
  const std::vector<u64> offsets = {0, 3, 3, 7};  // middle segment is empty
  segmented_sort(dev, offsets);
  EXPECT_EQ(download(dev), (std::vector<u32>{3, 5, 9, 1, 2, 7, 8}));
}

TEST_F(PrimitivesTest, SegmentedSortMatchesPerSegmentStdSort) {
  util::Xoshiro256 rng(11);
  std::vector<u64> host(2000);
  for (auto& x : host) x = rng.next_below(1000);
  // Random segment boundaries.
  std::vector<u64> offsets = {0};
  while (offsets.back() < host.size()) {
    offsets.push_back(
        std::min<u64>(host.size(), offsets.back() + 1 + rng.next_below(50)));
  }
  auto dev = upload(host);
  segmented_sort(dev, offsets);
  auto expected = host;
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    std::sort(expected.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
              expected.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
  }
  EXPECT_EQ(download(dev), expected);
}

TEST_F(PrimitivesTest, SegmentedSortValidatesOffsets) {
  auto dev = upload<u32>({1, 2, 3});
  const std::vector<u64> bad = {0, 2};
  EXPECT_THROW(segmented_sort(dev, bad), InvalidArgument);
  EXPECT_THROW(segmented_sort(dev, std::span<const u64>{}), InvalidArgument);
}

TEST_F(PrimitivesTest, SortByKeyReordersValuesWithKeys) {
  auto keys = upload<u64>({30, 10, 20});
  auto values = upload<u32>({3, 1, 2});
  sort_by_key(keys, values);
  EXPECT_EQ(download(keys), (std::vector<u64>{10, 20, 30}));
  EXPECT_EQ(download(values), (std::vector<u32>{1, 2, 3}));
}

TEST_F(PrimitivesTest, SortByKeyIsStable) {
  auto keys = upload<u64>({1, 0, 1, 0});
  auto values = upload<u32>({10, 20, 30, 40});
  sort_by_key(keys, values);
  EXPECT_EQ(download(values), (std::vector<u32>{20, 40, 10, 30}));
}

TEST_F(PrimitivesTest, ReduceSums) {
  auto dev = upload<u64>({1, 2, 3, 4, 5});
  EXPECT_EQ(reduce(dev, u64{100}), 115u);
}

TEST_F(PrimitivesTest, ExclusiveScan) {
  auto dev = upload<u64>({3, 1, 4, 1, 5});
  exclusive_scan(dev, u64{0});
  EXPECT_EQ(download(dev), (std::vector<u64>{0, 3, 4, 8, 9}));
}

TEST_F(PrimitivesTest, Gather) {
  auto src = upload<u32>({10, 20, 30, 40});
  auto map = upload<u64>({3, 0, 2});
  DeviceVector<u32> out(ctx_, 3);
  gather(src, map, out);
  EXPECT_EQ(download(out), (std::vector<u32>{40, 10, 30}));
}

TEST_F(PrimitivesTest, GatherRejectsOutOfRangeIndex) {
  auto src = upload<u32>({1, 2});
  auto map = upload<u64>({5});
  DeviceVector<u32> out(ctx_, 1);
  EXPECT_THROW(gather(src, map, out), InvalidArgument);
}

TEST_F(PrimitivesTest, MixedContextsRejected) {
  DeviceContext other(DeviceSpec::small_test_device(1 << 20));
  auto a = upload<u32>({1, 2, 3});
  DeviceVector<u32> b(other, 3);
  EXPECT_THROW(transform(a, b, [](u32 x) { return x; }), InvalidArgument);
}

TEST_F(PrimitivesTest, KernelCostScalesWithElements) {
  auto small = upload<u32>(std::vector<u32>(100, 1));
  auto big = upload<u32>(std::vector<u32>(100000, 1));
  DeviceVector<u32> out_small(ctx_, 100), out_big(ctx_, 100000);

  ctx_.reset_timeline();
  transform(small, out_small, [](u32 x) { return x; });
  const double t_small = ctx_.gpu_seconds();
  ctx_.reset_timeline();
  transform(big, out_big, [](u32 x) { return x; });
  const double t_big = ctx_.gpu_seconds();
  EXPECT_GT(t_big, t_small * 10);
}

}  // namespace
}  // namespace gpclust::device
