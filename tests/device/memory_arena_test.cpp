#include "device/memory_arena.hpp"

#include <gtest/gtest.h>

namespace gpclust::device {
namespace {

TEST(MemoryArena, TracksUsedAndAvailable) {
  MemoryArena arena(1000);
  EXPECT_EQ(arena.capacity(), 1000u);
  EXPECT_EQ(arena.available(), 1000u);
  arena.allocate(300);
  EXPECT_EQ(arena.used(), 300u);
  EXPECT_EQ(arena.available(), 700u);
  EXPECT_EQ(arena.num_allocations(), 1u);
}

TEST(MemoryArena, ThrowsOnOverCapacity) {
  MemoryArena arena(100);
  arena.allocate(60);
  EXPECT_THROW(arena.allocate(50), DeviceError);
  EXPECT_EQ(arena.used(), 60u) << "failed allocation must not leak";
  arena.allocate(40);  // exact fit succeeds
  EXPECT_EQ(arena.available(), 0u);
}

TEST(MemoryArena, ReleaseReturnsCapacity) {
  MemoryArena arena(100);
  arena.allocate(80);
  arena.release(80);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.num_allocations(), 0u);
  arena.allocate(100);
  EXPECT_EQ(arena.used(), 100u);
}

TEST(MemoryArena, PeakIsHighWaterMark) {
  MemoryArena arena(100);
  arena.allocate(70);
  arena.release(70);
  arena.allocate(30);
  EXPECT_EQ(arena.peak(), 70u);
}

TEST(MemoryArena, OverReleaseThrows) {
  MemoryArena arena(100);
  arena.allocate(10);
  EXPECT_THROW(arena.release(20), InvalidArgument);
}

TEST(MemoryArena, ZeroByteAllocationCounts) {
  MemoryArena arena(10);
  arena.allocate(0);
  EXPECT_EQ(arena.num_allocations(), 1u);
  arena.release(0);
  EXPECT_EQ(arena.num_allocations(), 0u);
}

}  // namespace
}  // namespace gpclust::device
