// Tests for the extended Thrust-parity primitives (fill, scans, unique,
// count_if/copy_if, reduce_by_key).

#include <gtest/gtest.h>

#include "device/primitives.hpp"
#include "util/rng.hpp"

namespace gpclust::device {
namespace {

class PrimitivesExtraTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{DeviceSpec::small_test_device(8 << 20)};

  template <typename T>
  DeviceVector<T> upload(const std::vector<T>& host) {
    DeviceVector<T> dev(ctx_, host.size());
    copy_to_device<T>(dev, host);
    return dev;
  }

  template <typename T>
  std::vector<T> download(const DeviceVector<T>& dev, std::size_t count = 0) {
    std::vector<T> host(count == 0 ? dev.size() : count);
    copy_to_host<T>(host, dev);
    return host;
  }
};

TEST_F(PrimitivesExtraTest, Fill) {
  DeviceVector<u32> dev(ctx_, 5);
  fill(dev, 9u);
  EXPECT_EQ(download(dev), (std::vector<u32>{9, 9, 9, 9, 9}));
}

TEST_F(PrimitivesExtraTest, InclusiveScan) {
  auto dev = upload<u64>({1, 2, 3, 4});
  inclusive_scan(dev);
  EXPECT_EQ(download(dev), (std::vector<u64>{1, 3, 6, 10}));
}

TEST_F(PrimitivesExtraTest, ScansAgree) {
  // inclusive[i] == exclusive[i+1] for the same input.
  util::Xoshiro256 rng(4);
  std::vector<u64> host(100);
  for (auto& x : host) x = rng.next_below(50);
  auto inc = upload(host);
  auto exc = upload(host);
  inclusive_scan(inc);
  exclusive_scan(exc, u64{0});
  const auto iv = download(inc);
  const auto ev = download(exc);
  for (std::size_t i = 0; i + 1 < host.size(); ++i) {
    EXPECT_EQ(iv[i], ev[i + 1]);
  }
}

TEST_F(PrimitivesExtraTest, UniqueCollapsesRuns) {
  auto dev = upload<u32>({1, 1, 2, 3, 3, 3, 4});
  const std::size_t count = unique(dev);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(download(dev, count), (std::vector<u32>{1, 2, 3, 4}));
}

TEST_F(PrimitivesExtraTest, CountIf) {
  auto dev = upload<u32>({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(count_if(dev, [](u32 x) { return x % 2 == 0; }), 3u);
  EXPECT_EQ(count_if(dev, [](u32 x) { return x > 100; }), 0u);
}

TEST_F(PrimitivesExtraTest, CopyIfCompactsStably) {
  auto in = upload<u32>({5, 2, 8, 1, 9, 4});
  DeviceVector<u32> out(ctx_, 6);
  const std::size_t count = copy_if(in, out, [](u32 x) { return x >= 5; });
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(download(out, count), (std::vector<u32>{5, 8, 9}));
}

TEST_F(PrimitivesExtraTest, ReduceByKeySumsRuns) {
  auto keys = upload<u64>({1, 1, 2, 2, 2, 7});
  auto values = upload<u32>({10, 20, 1, 2, 3, 5});
  DeviceVector<u64> out_keys(ctx_, 6);
  DeviceVector<u32> out_values(ctx_, 6);
  const std::size_t runs =
      reduce_by_key(keys, values, out_keys, out_values);
  EXPECT_EQ(runs, 3u);
  EXPECT_EQ(download(out_keys, runs), (std::vector<u64>{1, 2, 7}));
  EXPECT_EQ(download(out_values, runs), (std::vector<u32>{30, 6, 5}));
}

TEST_F(PrimitivesExtraTest, ReduceByKeyNonAdjacentKeysStaySeparate) {
  auto keys = upload<u64>({1, 2, 1});
  auto values = upload<u32>({5, 5, 5});
  DeviceVector<u64> out_keys(ctx_, 3);
  DeviceVector<u32> out_values(ctx_, 3);
  EXPECT_EQ(reduce_by_key(keys, values, out_keys, out_values), 3u);
}

TEST_F(PrimitivesExtraTest, ReduceByKeyCustomOp) {
  auto keys = upload<u64>({1, 1, 1});
  auto values = upload<u32>({3, 7, 5});
  DeviceVector<u64> out_keys(ctx_, 3);
  DeviceVector<u32> out_values(ctx_, 3);
  const std::size_t runs = reduce_by_key(
      keys, values, out_keys, out_values,
      [](u32 a, u32 b) { return std::max(a, b); });
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(download(out_values, runs), (std::vector<u32>{7}));
}

TEST_F(PrimitivesExtraTest, SizeValidation) {
  auto keys = upload<u64>({1, 2});
  auto values = upload<u32>({1, 2, 3});
  DeviceVector<u64> out_keys(ctx_, 3);
  DeviceVector<u32> out_values(ctx_, 3);
  EXPECT_THROW(reduce_by_key(keys, values, out_keys, out_values),
               InvalidArgument);

  auto in = upload<u32>({1, 2, 3});
  DeviceVector<u32> small(ctx_, 1);
  EXPECT_THROW(copy_if(in, small, [](u32) { return true; }), InvalidArgument);
}

TEST_F(PrimitivesExtraTest, AllChargeKernelTime) {
  auto dev = upload<u32>(std::vector<u32>(1000, 1));
  ctx_.reset_timeline();
  fill(dev, 2u);
  inclusive_scan(dev);
  unique(dev);
  count_if(dev, [](u32) { return true; });
  EXPECT_GT(ctx_.gpu_seconds(), 0.0);
  EXPECT_GT(ctx_.timeline().num_ops(), 3u);
}

}  // namespace
}  // namespace gpclust::device
