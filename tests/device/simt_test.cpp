#include "device/simt.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace gpclust::device {
namespace {

class SimtTest : public ::testing::Test {
 protected:
  DeviceContext ctx_{DeviceSpec::small_test_device(1 << 20)};
};

TEST_F(SimtTest, EveryThreadExecutesOnce) {
  std::vector<int> hits(1000, 0);
  LaunchConfig cfg;
  cfg.num_threads = hits.size();
  simt_launch(ctx_, cfg, [&](const ThreadIdx& idx, LaneCtx&) {
    ++hits[idx.global];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(SimtTest, ThreadCoordinatesAreConsistent) {
  LaunchConfig cfg;
  cfg.num_threads = 300;
  cfg.block_dim = 128;
  simt_launch(ctx_, cfg, [&](const ThreadIdx& idx, LaneCtx&) {
    EXPECT_EQ(idx.global, idx.block * 128 + idx.thread);
    EXPECT_EQ(idx.lane, idx.global % ctx_.spec().warp_size);
    EXPECT_EQ(idx.warp, idx.global / ctx_.spec().warp_size);
    EXPECT_LT(idx.thread, 128u);
  });
}

TEST_F(SimtTest, UniformBranchesDoNotDiverge) {
  LaunchConfig cfg;
  cfg.num_threads = 256;
  const auto stats = simt_launch(ctx_, cfg, [](const ThreadIdx&, LaneCtx& lane) {
    lane.branch(true);   // every lane takes the same path
    lane.branch(false);
  });
  EXPECT_EQ(stats.warps_executed, 8u);
  EXPECT_EQ(stats.divergent_warps, 0u);
  EXPECT_EQ(stats.branch_rounds, 0u);
  EXPECT_DOUBLE_EQ(stats.divergence_rate(), 0.0);
}

TEST_F(SimtTest, AlternatingBranchDivergesEveryWarp) {
  LaunchConfig cfg;
  cfg.num_threads = 256;
  const auto stats =
      simt_launch(ctx_, cfg, [](const ThreadIdx& idx, LaneCtx& lane) {
        lane.branch(idx.global % 2 == 0);
      });
  EXPECT_EQ(stats.warps_executed, 8u);
  EXPECT_EQ(stats.divergent_warps, 8u);
  EXPECT_EQ(stats.branch_rounds, 8u);
  EXPECT_DOUBLE_EQ(stats.divergence_rate(), 1.0);
}

TEST_F(SimtTest, WarpAlignedBranchDoesNotDiverge) {
  // Branch decided per warp: lanes of any one warp agree.
  LaunchConfig cfg;
  cfg.num_threads = 256;
  const auto stats =
      simt_launch(ctx_, cfg, [](const ThreadIdx& idx, LaneCtx& lane) {
        lane.branch(idx.warp % 2 == 0);
      });
  EXPECT_EQ(stats.divergent_warps, 0u);
}

TEST_F(SimtTest, SingleDivergentWarpCounted) {
  // Only the warp containing the 40-boundary splits (threads 32..63).
  LaunchConfig cfg;
  cfg.num_threads = 128;
  const auto stats =
      simt_launch(ctx_, cfg, [](const ThreadIdx& idx, LaneCtx& lane) {
        lane.branch(idx.global < 40);
      });
  EXPECT_EQ(stats.warps_executed, 4u);
  EXPECT_EQ(stats.divergent_warps, 1u);
}

TEST_F(SimtTest, MultipleBranchPointsAccumulateRounds) {
  LaunchConfig cfg;
  cfg.num_threads = 32;  // one warp
  const auto stats =
      simt_launch(ctx_, cfg, [](const ThreadIdx& idx, LaneCtx& lane) {
        lane.branch(idx.lane < 16);  // diverges
        lane.branch(idx.lane % 2 == 0);  // diverges
        lane.branch(true);  // uniform
      });
  EXPECT_EQ(stats.divergent_warps, 1u);
  EXPECT_EQ(stats.branch_rounds, 2u);
}

TEST_F(SimtTest, EarlyExitLanesDoNotForceDivergenceAlone) {
  // Lanes that record fewer votes (early return) only diverge branches
  // they actually reached.
  LaunchConfig cfg;
  cfg.num_threads = 32;
  const auto stats =
      simt_launch(ctx_, cfg, [](const ThreadIdx& idx, LaneCtx& lane) {
        if (idx.lane >= 16) return;  // untracked structural exit
        lane.branch(true);           // all reaching lanes agree
      });
  EXPECT_EQ(stats.divergent_warps, 0u);
}

TEST_F(SimtTest, PartialWarpPaddingCounted) {
  LaunchConfig cfg;
  cfg.num_threads = 40;  // one full warp + 8 of 32
  const auto stats = simt_launch(ctx_, cfg, [](const ThreadIdx&, LaneCtx&) {});
  EXPECT_EQ(stats.warps_executed, 2u);
  EXPECT_EQ(stats.inactive_lanes, 24u);
}

TEST_F(SimtTest, DivergenceChargesExtraModeledTime) {
  LaunchConfig cfg;
  cfg.num_threads = 1024;

  ctx_.reset_timeline();
  simt_launch(ctx_, cfg, [](const ThreadIdx&, LaneCtx& lane) {
    lane.branch(true);
  });
  const double uniform_time = ctx_.gpu_seconds();

  ctx_.reset_timeline();
  simt_launch(ctx_, cfg, [](const ThreadIdx& idx, LaneCtx& lane) {
    lane.branch(idx.lane % 2 == 0);
  });
  EXPECT_GT(ctx_.gpu_seconds(), uniform_time);
}

TEST_F(SimtTest, Validation) {
  LaunchConfig cfg;
  cfg.num_threads = 8;
  cfg.block_dim = 0;
  EXPECT_THROW(simt_launch(ctx_, cfg, [](const ThreadIdx&, LaneCtx&) {}),
               InvalidArgument);
}

TEST_F(SimtTest, EmptyLaunchIsNoop) {
  LaunchConfig cfg;
  cfg.num_threads = 0;
  const auto stats =
      simt_launch(ctx_, cfg, [](const ThreadIdx&, LaneCtx&) { FAIL(); });
  EXPECT_EQ(stats.warps_executed, 0u);
}

}  // namespace
}  // namespace gpclust::device
