#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <map>

#include "graph/connected_components.hpp"
#include "graph/graph_stats.hpp"

namespace gpclust::graph {
namespace {

PlantedFamilyConfig small_config() {
  PlantedFamilyConfig cfg;
  cfg.num_families = 20;
  cfg.min_family_size = 5;
  cfg.max_family_size = 50;
  cfg.intra_family_edge_prob = 0.8;
  cfg.intra_superfamily_edge_prob = 0.02;
  cfg.noise_edges_per_vertex = 0.05;
  cfg.num_singletons = 30;
  cfg.seed = 7;
  return cfg;
}

TEST(PlantedFamilies, DeterministicForSameSeed) {
  const auto a = generate_planted_families(small_config());
  const auto b = generate_planted_families(small_config());
  EXPECT_EQ(a.graph.num_vertices(), b.graph.num_vertices());
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.family, b.family);
  EXPECT_EQ(a.superfamily, b.superfamily);
}

TEST(PlantedFamilies, DifferentSeedsDiffer) {
  auto cfg = small_config();
  const auto a = generate_planted_families(cfg);
  cfg.seed = 8;
  const auto b = generate_planted_families(cfg);
  EXPECT_NE(a.graph.num_edges(), b.graph.num_edges());
}

TEST(PlantedFamilies, LabelsCoverEveryVertex) {
  const auto pg = generate_planted_families(small_config());
  ASSERT_EQ(pg.family.size(), pg.graph.num_vertices());
  ASSERT_EQ(pg.superfamily.size(), pg.graph.num_vertices());
}

TEST(PlantedFamilies, SingletonsAreIsolatedWithUniqueLabels) {
  const auto cfg = small_config();
  const auto pg = generate_planted_families(cfg);
  std::map<u32, int> family_count;
  std::size_t isolated = 0;
  for (std::size_t v = 0; v < pg.graph.num_vertices(); ++v) {
    if (pg.graph.degree(static_cast<VertexId>(v)) == 0) {
      ++isolated;
      EXPECT_GE(pg.family[v], cfg.num_families) << "singleton label reused";
      ++family_count[pg.family[v]];
    }
  }
  EXPECT_GE(isolated, cfg.num_singletons);
  for (const auto& [label, count] : family_count) EXPECT_EQ(count, 1);
}

TEST(PlantedFamilies, FamiliesRefineSuperfamilies) {
  const auto pg = generate_planted_families(small_config());
  std::map<u32, u32> family_to_super;
  for (std::size_t v = 0; v < pg.family.size(); ++v) {
    auto [it, inserted] =
        family_to_super.emplace(pg.family[v], pg.superfamily[v]);
    EXPECT_EQ(it->second, pg.superfamily[v])
        << "family split across superfamilies";
  }
}

TEST(PlantedFamilies, IntraFamilyDensityNearConfig) {
  auto cfg = small_config();
  cfg.num_families = 5;
  cfg.min_family_size = 40;
  cfg.max_family_size = 40;
  cfg.intra_superfamily_edge_prob = 0.0;
  cfg.noise_edges_per_vertex = 0.0;
  cfg.num_singletons = 0;
  const auto pg = generate_planted_families(cfg);
  // Count intra-family edges per family.
  std::map<u32, u64> edges_in;
  for (std::size_t u = 0; u < pg.graph.num_vertices(); ++u) {
    for (VertexId v : pg.graph.neighbors(static_cast<VertexId>(u))) {
      if (v > u && pg.family[u] == pg.family[v]) ++edges_in[pg.family[u]];
    }
  }
  for (const auto& [fam, count] : edges_in) {
    const double density = static_cast<double>(count) / (40.0 * 39.0 / 2.0);
    EXPECT_NEAR(density, cfg.intra_family_edge_prob, 0.12);
  }
}

TEST(PlantedFamilies, ZeroCrossEdgesKeepsFamiliesSeparate) {
  auto cfg = small_config();
  cfg.intra_superfamily_edge_prob = 0.0;
  cfg.noise_edges_per_vertex = 0.0;
  const auto pg = generate_planted_families(cfg);
  for (std::size_t u = 0; u < pg.graph.num_vertices(); ++u) {
    for (VertexId v : pg.graph.neighbors(static_cast<VertexId>(u))) {
      EXPECT_EQ(pg.family[u], pg.family[v]);
    }
  }
}

TEST(PlantedFamilies, ValidatesConfig) {
  PlantedFamilyConfig cfg;
  cfg.num_families = 0;
  EXPECT_THROW(generate_planted_families(cfg), InvalidArgument);
  cfg = PlantedFamilyConfig{};
  cfg.min_family_size = 1;
  EXPECT_THROW(generate_planted_families(cfg), InvalidArgument);
  cfg = PlantedFamilyConfig{};
  cfg.min_family_size = 100;
  cfg.max_family_size = 10;
  EXPECT_THROW(generate_planted_families(cfg), InvalidArgument);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const std::size_t n = 500;
  const double p = 0.02;
  const auto g = generate_erdos_renyi(n, p, 13);
  const double expected = p * static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.15 * expected);
}

TEST(ErdosRenyi, ProbabilityZeroAndOne) {
  const auto empty = generate_erdos_renyi(50, 0.0, 1);
  EXPECT_EQ(empty.num_edges(), 0u);
  const auto complete = generate_erdos_renyi(20, 1.0, 1);
  EXPECT_EQ(complete.num_edges(), 190u);
}

TEST(ErdosRenyi, RejectsBadProbability) {
  EXPECT_THROW(generate_erdos_renyi(10, -0.1, 1), InvalidArgument);
  EXPECT_THROW(generate_erdos_renyi(10, 1.5, 1), InvalidArgument);
}

TEST(PowerLaw, AverageDegreeApproximatelyRequested) {
  const auto g = generate_power_law(5000, 10.0, 2.0, 99);
  // Dedup and self-loop removal lose some edges; allow slack.
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / 5000.0;
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 11.0);
}

TEST(PowerLaw, DegreeDistributionIsSkewed) {
  const auto g = generate_power_law(5000, 8.0, 1.8, 5);
  std::size_t max_degree = 0;
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(static_cast<VertexId>(v)));
  }
  const auto stats = compute_graph_stats(g);
  // Heavy tail: the max degree should far exceed the mean.
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * stats.degree.mean());
}

}  // namespace
}  // namespace gpclust::graph
