#include "graph/union_find.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace gpclust::graph {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMergesSets) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.set_size(1), 2u);
}

TEST(UnionFind, UniteSameSetReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_FALSE(uf.unite(0, 0));
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFind, TransitivityViaChain) {
  UnionFind uf(100);
  for (std::size_t i = 0; i + 1 < 100; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.connected(0, 99));
  EXPECT_EQ(uf.set_size(50), 100u);
}

TEST(UnionFind, ComponentLabelsAreDenseAndConsistent) {
  UnionFind uf(6);
  uf.unite(0, 2);
  uf.unite(2, 4);
  uf.unite(1, 5);
  auto labels = uf.component_labels();
  ASSERT_EQ(labels.size(), 6u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[2], labels[4]);
  EXPECT_EQ(labels[1], labels[5]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[3]);
  std::set<u32> distinct(labels.begin(), labels.end());
  EXPECT_EQ(distinct.size(), uf.num_sets());
  for (u32 l : distinct) EXPECT_LT(l, uf.num_sets());
}

TEST(UnionFind, OutOfRangeThrows) {
  UnionFind uf(3);
  EXPECT_THROW(uf.find(3), InvalidArgument);
}

TEST(UnionFind, RandomizedEquivalenceInvariant) {
  // Property: connected(a, b) must agree with a brute-force reference that
  // tracks set membership explicitly.
  util::Xoshiro256 rng(17);
  constexpr std::size_t n = 64;
  UnionFind uf(n);
  std::vector<std::size_t> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = i;

  for (int step = 0; step < 200; ++step) {
    const std::size_t a = rng.next_below(n);
    const std::size_t b = rng.next_below(n);
    uf.unite(a, b);
    const std::size_t ra = ref[a], rb = ref[b];
    if (ra != rb) {
      for (auto& r : ref) {
        if (r == rb) r = ra;
      }
    }
    const std::size_t x = rng.next_below(n);
    const std::size_t y = rng.next_below(n);
    EXPECT_EQ(uf.connected(x, y), ref[x] == ref[y]);
  }
}

}  // namespace
}  // namespace gpclust::graph
