#include "graph/connected_components.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gpclust::graph {
namespace {

TEST(ConnectedComponents, TwoTrianglesAndIsolated) {
  EdgeList e(7);
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(3, 4);
  e.add(4, 5);
  e.add(3, 5);
  const auto g = CsrGraph::from_edge_list(std::move(e));
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.num_components, 3u);  // two triangles + isolated vertex 6
  EXPECT_EQ(cc.labels[0], cc.labels[1]);
  EXPECT_EQ(cc.labels[3], cc.labels[5]);
  EXPECT_NE(cc.labels[0], cc.labels[3]);
  EXPECT_NE(cc.labels[6], cc.labels[0]);
  EXPECT_EQ(cc.largest(), 3u);
}

TEST(ConnectedComponents, SizesSumToVertexCount) {
  const auto g = generate_erdos_renyi(500, 0.004, 11);
  const auto cc = connected_components(g);
  const auto sizes = cc.component_sizes();
  u64 total = 0;
  for (u64 s : sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(ConnectedComponents, GroupsPartitionVertices) {
  const auto g = generate_erdos_renyi(200, 0.01, 5);
  const auto cc = connected_components(g);
  const auto groups = cc.groups();
  std::vector<bool> seen(g.num_vertices(), false);
  for (const auto& group : groups) {
    for (VertexId v : group) {
      EXPECT_FALSE(seen[v]) << "vertex in two groups";
      seen[v] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ConnectedComponents, BfsAndUnionFindVariantsAgree) {
  const auto g = generate_erdos_renyi(300, 0.008, 23);
  const auto bfs = connected_components(g);

  EdgeList edges(g.num_vertices());
  for (std::size_t u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      if (v > u) edges.add(static_cast<VertexId>(u), v);
    }
  }
  const auto uf = connected_components(g.num_vertices(), edges.edges());

  ASSERT_EQ(bfs.num_components, uf.num_components);
  // Labels may differ; co-membership must agree.
  for (std::size_t i = 0; i < 300; i += 7) {
    for (std::size_t j = i + 1; j < 300; j += 13) {
      EXPECT_EQ(bfs.labels[i] == bfs.labels[j], uf.labels[i] == uf.labels[j]);
    }
  }
}

TEST(ConnectedComponents, EmptyGraph) {
  const CsrGraph g;
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.num_components, 0u);
  EXPECT_EQ(cc.largest(), 0u);
}

TEST(ConnectedComponents, PathGraphIsOneComponent) {
  EdgeList e;
  for (VertexId i = 0; i < 99; ++i) e.add(i, i + 1);
  const auto g = CsrGraph::from_edge_list(std::move(e));
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.num_components, 1u);
  EXPECT_EQ(cc.largest(), 100u);
}

}  // namespace
}  // namespace gpclust::graph
