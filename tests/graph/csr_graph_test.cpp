#include "graph/csr_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace gpclust::graph {
namespace {

CsrGraph triangle_plus_pendant() {
  // 0-1, 1-2, 0-2 triangle; 3 attached to 2; 4 isolated.
  EdgeList e(5);
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  e.add(2, 3);
  return CsrGraph::from_edge_list(std::move(e));
}

TEST(CsrGraph, BasicCounts) {
  const auto g = triangle_plus_pendant();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_adjacency_entries(), 8u);
  EXPECT_EQ(g.num_singletons(), 1u);
}

TEST(CsrGraph, DegreesAndNeighbors) {
  const auto g = triangle_plus_pendant();
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 0u);
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n2.size(), 3u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
  EXPECT_EQ(n2[2], 3u);
}

TEST(CsrGraph, AdjacencyListsAreSorted) {
  const auto g = generate_erdos_renyi(200, 0.05, 7);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(static_cast<VertexId>(v));
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(CsrGraph, SymmetryHolds) {
  const auto g = generate_erdos_renyi(100, 0.1, 3);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    for (VertexId w : g.neighbors(static_cast<VertexId>(v))) {
      EXPECT_TRUE(g.has_edge(w, static_cast<VertexId>(v)));
    }
  }
}

TEST(CsrGraph, HasEdge) {
  const auto g = triangle_plus_pendant();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(4, 0));
  EXPECT_FALSE(g.has_edge(0, 99));  // out of range is just "no edge"
}

TEST(CsrGraph, DuplicateEdgesCollapse) {
  EdgeList e;
  e.add(0, 1);
  e.add(1, 0);
  e.add(0, 1);
  const auto g = CsrGraph::from_edge_list(std::move(e));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(CsrGraph, FromCsrRoundTrip) {
  const auto g = triangle_plus_pendant();
  auto g2 = CsrGraph::from_csr(g.offsets(), g.adjacency());
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_adjacency_entries(), g.num_adjacency_entries());
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(static_cast<VertexId>(v));
    const auto b = g2.neighbors(static_cast<VertexId>(v));
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(CsrGraph, FromCsrValidatesShape) {
  EXPECT_THROW(CsrGraph::from_csr({}, {}), InvalidArgument);
  EXPECT_THROW(CsrGraph::from_csr({0, 5}, {1}), InvalidArgument);
  EXPECT_THROW(CsrGraph::from_csr({0, 2, 1}, {1}), InvalidArgument);
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CsrGraph, MemoryBytesIsPlausible) {
  const auto g = triangle_plus_pendant();
  EXPECT_EQ(g.memory_bytes(),
            g.offsets().size() * sizeof(u64) +
                g.adjacency().size() * sizeof(VertexId));
}

}  // namespace
}  // namespace gpclust::graph
