#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

namespace gpclust::graph {
namespace {

TEST(EdgeList, AddCanonicalizesEndpointOrder) {
  EdgeList e;
  e.add(5, 2);
  ASSERT_EQ(e.raw_size(), 1u);
  EXPECT_EQ(e.edges()[0], (Edge{2, 5}));
}

TEST(EdgeList, SelfLoopsAreDropped) {
  EdgeList e;
  e.add(3, 3);
  EXPECT_EQ(e.raw_size(), 0u);
}

TEST(EdgeList, NumVerticesTracksMaxEndpoint) {
  EdgeList e;
  EXPECT_EQ(e.num_vertices(), 0u);
  e.add(0, 9);
  EXPECT_EQ(e.num_vertices(), 10u);
  e.add(1, 2);
  EXPECT_EQ(e.num_vertices(), 10u);
}

TEST(EdgeList, ConstructorHintIsFloor) {
  EdgeList e(100);
  e.add(0, 1);
  EXPECT_EQ(e.num_vertices(), 100u);
  e.add(0, 200);
  EXPECT_EQ(e.num_vertices(), 201u);
}

TEST(EdgeList, CanonicalizeRemovesDuplicates) {
  EdgeList e;
  e.add(1, 2);
  e.add(2, 1);
  e.add(1, 2);
  e.add(0, 3);
  e.canonicalize();
  ASSERT_EQ(e.edges().size(), 2u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 3}));
  EXPECT_EQ(e.edges()[1], (Edge{1, 2}));
}

TEST(EdgeList, MergeCombinesEdgesAndVertexCounts) {
  EdgeList a(10), b;
  a.add(0, 1);
  b.add(20, 21);
  a.merge(b);
  EXPECT_EQ(a.raw_size(), 2u);
  EXPECT_EQ(a.num_vertices(), 22u);
}

}  // namespace
}  // namespace gpclust::graph
