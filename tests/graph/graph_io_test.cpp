#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace gpclust::graph {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "gpclust_io_test";
    std::filesystem::create_directories(dir);
    paths_.push_back((dir / name).string());
    return paths_.back();
  }

  void TearDown() override {
    for (const auto& p : paths_) std::filesystem::remove(p);
  }

  std::vector<std::string> paths_;
};

void expect_same_graph(const CsrGraph& a, const CsrGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(static_cast<VertexId>(v));
    const auto nb = b.neighbors(static_cast<VertexId>(v));
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "adjacency mismatch at vertex " << v;
  }
}

TEST_F(GraphIoTest, TextRoundTrip) {
  const auto g = generate_erdos_renyi(150, 0.05, 9);
  const auto path = temp_path("roundtrip.txt");
  write_edge_list_text(g, path);
  const auto g2 = read_edge_list_text(path);
  // Text format drops trailing isolated vertices; compare on shared prefix.
  ASSERT_LE(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST_F(GraphIoTest, BinaryRoundTripIsExact) {
  const auto g = generate_erdos_renyi(200, 0.03, 4);
  const auto path = temp_path("roundtrip.bin");
  write_csr_binary(g, path);
  const auto g2 = read_csr_binary(path);
  expect_same_graph(g, g2);
}

TEST_F(GraphIoTest, TextReaderSkipsCommentsAndBlanks) {
  const auto path = temp_path("comments.txt");
  {
    std::ofstream out(path);
    out << "# header\n\n0 1\n# mid comment\n1 2\n";
  }
  const auto g = read_edge_list_text(path);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST_F(GraphIoTest, TextReaderRejectsMalformedLine) {
  const auto path = temp_path("bad.txt");
  {
    std::ofstream out(path);
    out << "0 1\nnot-a-number 3\n";
  }
  EXPECT_THROW(read_edge_list_text(path), ParseError);
}

TEST_F(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_text("/nonexistent/gp.txt"), ParseError);
  EXPECT_THROW(read_csr_binary("/nonexistent/gp.bin"), ParseError);
}

TEST_F(GraphIoTest, BinaryRejectsCorruptMagic) {
  const auto path = temp_path("corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[64] = {1, 2, 3};
    out.write(junk, sizeof(junk));
  }
  EXPECT_THROW(read_csr_binary(path), ParseError);
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedFile) {
  const auto g = generate_erdos_renyi(100, 0.05, 2);
  const auto path = temp_path("trunc.bin");
  write_csr_binary(g, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW(read_csr_binary(path), ParseError);
}

}  // namespace
}  // namespace gpclust::graph
