// Verify-cascade test wall (ctest label: chaos — runs under the ASan
// preset in tools/ci.sh tier 3). Three layers lock the device-batched
// verification backend to the host reference:
//
//   1. identity — the homology graph's CSR digest is bit-identical across
//      HostScalar / HostSimd / DeviceBatched for every batch-size x
//      stream-count combination (and with the identity-traceback gate on);
//   2. fuzz — 10k random pair tasks: the batched score-only kernel body
//      agrees exactly with both the scalar reference and the striped SIMD
//      kernel, scores and scan-order end cells;
//   3. chaos — deterministic oom@alloc / xfer_fail@h2d schedules plus
//      seeded random plans: every run either completes bit-identically or
//      throws a typed DeviceError, Fallback mode always completes
//      (bit-identical CPU fallback), and the arena is empty afterwards.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/homology_graph.hpp"
#include "align/simd.hpp"
#include "align/smith_waterman.hpp"
#include "align/verify_pipeline.hpp"
#include "device/device_context.hpp"
#include "fault/fault_plan.hpp"
#include "seq/alphabet.hpp"
#include "seq/family_model.hpp"
#include "util/rng.hpp"

namespace gpclust::align {
namespace {

seq::SequenceSet verify_workload(u64 seed = 7100) {
  seq::FamilyModelConfig cfg;
  cfg.num_families = 8;
  cfg.min_members = 3;
  cfg.max_members = 7;
  cfg.substitution_rate = 0.12;
  cfg.indel_rate = 0.02;
  cfg.num_background_orfs = 16;
  cfg.seed = seed;
  return seq::generate_metagenome(cfg).sequences;
}

HomologyGraphConfig base_config() {
  HomologyGraphConfig cfg;
  cfg.num_threads = 1;
  return cfg;
}

/// Builds with the given backend config and returns the graph digest,
/// asserting the counter-attribution invariant on the way out.
u64 build_digest(const seq::SequenceSet& sequences, HomologyGraphConfig cfg,
                 HomologyGraphStats* stats_out = nullptr) {
  HomologyGraphStats stats;
  const auto graph = build_homology_graph(sequences, cfg, &stats);
  EXPECT_EQ(stats.num_score_alignments, stats.num_surviving_pairs)
      << "every backend scores each surviving pair exactly once";
  if (stats_out != nullptr) *stats_out = stats;
  return graph.digest();
}

// --- layer 1: backend identity -------------------------------------------

TEST(VerifyPipelineIdentity, DigestIdenticalAcrossBackendsBatchesAndStreams) {
  const auto sequences = verify_workload();

  auto scalar_cfg = base_config();
  scalar_cfg.verify_backend = VerifyBackend::HostScalar;
  const u64 expected = build_digest(sequences, scalar_cfg);

  auto simd_cfg = base_config();
  simd_cfg.verify_backend = VerifyBackend::HostSimd;
  EXPECT_EQ(build_digest(sequences, simd_cfg), expected);

  for (const std::size_t batch_pairs : {std::size_t{0},  // auto from arena
                                        std::size_t{3}, std::size_t{17}}) {
    for (const std::size_t streams :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
      auto cfg = base_config();
      cfg.verify_backend = VerifyBackend::DeviceBatched;
      cfg.device_verify.context = &ctx;
      cfg.device_verify.max_batch_pairs = batch_pairs;
      cfg.device_verify.num_streams = streams;
      HomologyGraphStats stats;
      const std::string label = "batch_pairs=" + std::to_string(batch_pairs) +
                                " streams=" + std::to_string(streams);
      EXPECT_EQ(build_digest(sequences, cfg, &stats), expected) << label;
      EXPECT_EQ(stats.device.num_lanes, streams / 2 + streams % 2) << label;
      if (batch_pairs == 3) {
        EXPECT_GT(stats.device.num_batches, 1u) << label;
      }
      EXPECT_EQ(ctx.arena().used(), 0u) << label;
      EXPECT_EQ(ctx.arena().num_allocations(), 0u) << label;
      EXPECT_GT(stats.device.makespan_modeled_s, 0.0) << label;
      // The exposed critical-path split is a partition of the makespan.
      EXPECT_NEAR(stats.device.kernel_exposed_modeled_s +
                      stats.device.h2d_exposed_modeled_s +
                      stats.device.d2h_exposed_modeled_s,
                  stats.device.makespan_modeled_s, 1e-12)
          << label;
    }
  }
}

TEST(VerifyPipelineIdentity, DigestIdenticalWithIdentityTracebackGate) {
  const auto sequences = verify_workload(7200);

  auto scalar_cfg = base_config();
  scalar_cfg.verify_backend = VerifyBackend::HostScalar;
  scalar_cfg.min_identity = 0.3;
  HomologyGraphStats scalar_stats;
  const u64 expected = build_digest(sequences, scalar_cfg, &scalar_stats);
  ASSERT_GT(scalar_stats.num_traced_alignments, 0u);

  device::DeviceContext ctx(device::DeviceSpec::small_test_device(4 << 20));
  auto cfg = base_config();
  cfg.verify_backend = VerifyBackend::DeviceBatched;
  cfg.device_verify.context = &ctx;
  cfg.device_verify.num_streams = 2;
  cfg.min_identity = 0.3;
  HomologyGraphStats stats;
  EXPECT_EQ(build_digest(sequences, cfg, &stats), expected);
  // The traced gate resumes from the kernel's end cells, so the traceback
  // count must match the scalar reference's too.
  EXPECT_EQ(stats.num_traced_alignments, scalar_stats.num_traced_alignments);
  EXPECT_EQ(ctx.arena().used(), 0u);
}

// --- layer 2: kernel-body fuzz -------------------------------------------

std::string random_protein(util::Xoshiro256& rng, std::size_t len) {
  std::string s(len, 'A');
  for (auto& c : s) {
    c = seq::kResidues[rng.next_below(seq::kNumStandardResidues)];
  }
  return s;
}

TEST(VerifyPipelineFuzz, BatchedScoresMatchSimdAndScalarOn10kPairs) {
  util::Xoshiro256 rng(41000);
  constexpr std::size_t kPairs = 10000;
  constexpr std::size_t kBatch = 128;  // pairs per packed batch

  std::size_t checked = 0;
  std::vector<std::string> a_seqs, b_seqs;
  std::vector<char> residues;
  std::vector<PairTask> tasks;
  const AlignmentParams params;

  auto flush = [&] {
    std::vector<PairScore> out(tasks.size());
    score_pairs_batch(residues, tasks, out, params);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const auto& a = a_seqs[i];
      const auto& b = b_seqs[i];
      const AlignmentResult scalar = smith_waterman(a, b, params);
      const AlignmentResult simd = smith_waterman_simd(a, b, params);
      ASSERT_EQ(out[i].score, scalar.score) << "a=" << a << " b=" << b;
      ASSERT_EQ(out[i].score, simd.score) << "a=" << a << " b=" << b;
      // The batched body IS the scalar DP, so scan-order end cells match
      // exactly (SIMD guarantees only a co-optimal end, not this one).
      ASSERT_EQ(out[i].a_end, scalar.a_end) << "a=" << a << " b=" << b;
      ASSERT_EQ(out[i].b_end, scalar.b_end) << "a=" << a << " b=" << b;
      // Singleton-task scoring must agree with the batched pass.
      const PairScore solo = score_pair_task(residues, tasks[i], params);
      ASSERT_EQ(solo.score, out[i].score);
      ASSERT_EQ(solo.a_end, out[i].a_end);
      ASSERT_EQ(solo.b_end, out[i].b_end);
      ++checked;
    }
    a_seqs.clear();
    b_seqs.clear();
    residues.clear();
    tasks.clear();
  };

  for (std::size_t iter = 0; iter < kPairs; ++iter) {
    // Mostly short metagenomic-ORF lengths with an empty/one-residue slice.
    const std::size_t la =
        iter % 97 == 0 ? rng.next_below(2) : rng.next_below(80);
    const std::size_t lb =
        iter % 97 == 1 ? rng.next_below(2) : rng.next_below(80);
    std::string a = random_protein(rng, la);
    std::string b = random_protein(rng, lb);
    PairTask task;
    task.a_begin = static_cast<u32>(residues.size());
    task.a_len = static_cast<u32>(a.size());
    residues.insert(residues.end(), a.begin(), a.end());
    task.b_begin = static_cast<u32>(residues.size());
    task.b_len = static_cast<u32>(b.size());
    residues.insert(residues.end(), b.begin(), b.end());
    tasks.push_back(task);
    a_seqs.push_back(std::move(a));
    b_seqs.push_back(std::move(b));
    if (tasks.size() == kBatch) flush();
  }
  flush();
  EXPECT_EQ(checked, kPairs);
}

// --- layer 3: chaos -------------------------------------------------------

/// Runs the device backend under `plan` in Fallback mode and checks the
/// bit-identical-completion + empty-arena property.
void expect_fallback_identical(const seq::SequenceSet& sequences, u64 expected,
                               fault::FaultPlan plan,
                               const std::string& label) {
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(1 << 20));
  ctx.set_fault_plan(&plan);
  auto cfg = base_config();
  cfg.verify_backend = VerifyBackend::DeviceBatched;
  cfg.device_verify.context = &ctx;
  cfg.device_verify.max_batch_pairs = 8;
  cfg.device_verify.num_streams = 2;
  cfg.device_verify.resilience.mode = fault::ResilienceMode::Fallback;
  HomologyGraphStats stats;
  EXPECT_EQ(build_digest(sequences, cfg, &stats), expected) << label;
  EXPECT_GT(plan.injected(), 0u) << label << " (schedule never fired)";
  EXPECT_EQ(ctx.arena().used(), 0u) << label;
  EXPECT_EQ(ctx.arena().num_allocations(), 0u) << label;
}

TEST(VerifyPipelineChaos, DeterministicSchedulesFallBackBitIdentically) {
  const auto sequences = verify_workload(7300);
  auto scalar_cfg = base_config();
  scalar_cfg.verify_backend = VerifyBackend::HostScalar;
  const u64 expected = build_digest(sequences, scalar_cfg);

  for (const char* spec :
       {"oom@alloc:0", "oom@alloc:4", "oom@alloc:2-1048576",
        "xfer_fail@h2d:0", "xfer_fail@h2d:3", "xfer_fail@h2d:1-1048576",
        "xfer_fail@d2h:1", "kernel_fail@kernel:2-1048576"}) {
    expect_fallback_identical(sequences, expected, fault::FaultPlan::parse(spec),
                              spec);
  }
}

TEST(VerifyPipelineChaos, PersistentFaultsForceCpuFallbackCompletion) {
  const auto sequences = verify_workload(7300);
  auto scalar_cfg = base_config();
  scalar_cfg.verify_backend = VerifyBackend::HostScalar;
  const u64 expected = build_digest(sequences, scalar_cfg);

  auto plan = fault::FaultPlan::parse("kernel_fail@kernel:0-1048576");
  device::DeviceContext ctx(device::DeviceSpec::small_test_device(1 << 20));
  ctx.set_fault_plan(&plan);
  auto cfg = base_config();
  cfg.verify_backend = VerifyBackend::DeviceBatched;
  cfg.device_verify.context = &ctx;
  cfg.device_verify.num_streams = 2;
  cfg.device_verify.resilience.mode = fault::ResilienceMode::Fallback;
  HomologyGraphStats stats;
  EXPECT_EQ(build_digest(sequences, cfg, &stats), expected);
  EXPECT_TRUE(stats.device.cpu_fallback);
  EXPECT_EQ(ctx.arena().used(), 0u);
  EXPECT_EQ(ctx.arena().num_allocations(), 0u);
}

/// A random device-side schedule over the sites the verify path exercises
/// (same shape as the shingling chaos suite).
fault::FaultPlan random_device_plan(u64 seed) {
  util::SplitMix64 rng(seed);
  fault::FaultPlan plan;
  const fault::FaultSite sites[] = {
      fault::FaultSite::Alloc, fault::FaultSite::H2D, fault::FaultSite::D2H,
      fault::FaultSite::Kernel};
  const std::size_t num_faults = 1 + rng.next() % 4;
  for (std::size_t i = 0; i < num_faults; ++i) {
    const auto site = sites[rng.next() % 4];
    const u64 index = rng.next() % 64;
    if (rng.next() % 4 == 0) {
      plan.add_range(site, index, index + rng.next() % 48);
    } else {
      plan.add(site, index);
    }
  }
  if (rng.next() % 5 == 0) {
    plan.add_range(fault::FaultSite::Kernel, 8 + rng.next() % 16, 1u << 20);
  }
  return plan;
}

class VerifyChaosSchedule : public ::testing::TestWithParam<int> {};

TEST_P(VerifyChaosSchedule, CompletesIdenticallyOrFailsTyped) {
  static const seq::SequenceSet sequences = verify_workload(7400);
  auto scalar_cfg = base_config();
  scalar_cfg.verify_backend = VerifyBackend::HostScalar;
  static const u64 expected = build_digest(sequences, scalar_cfg);

  const u64 seed = 0x5EA1ULL * 1000003ULL + static_cast<u64>(GetParam());
  util::SplitMix64 knob_rng(seed ^ 0x5eedULL);

  for (const auto mode :
       {fault::ResilienceMode::Off, fault::ResilienceMode::Retry,
        fault::ResilienceMode::Fallback}) {
    auto plan = random_device_plan(seed);
    const std::string label = "seed=" + std::to_string(seed) + " mode=" +
                              std::string(fault::resilience_mode_name(mode)) +
                              " plan=\"" + plan.to_string() + "\"";
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(1 << 20));
    ctx.set_fault_plan(&plan);
    auto cfg = base_config();
    cfg.verify_backend = VerifyBackend::DeviceBatched;
    cfg.device_verify.context = &ctx;
    cfg.device_verify.max_batch_pairs = 4 + knob_rng.next() % 28;
    cfg.device_verify.num_streams = 1 + knob_rng.next() % 4;
    cfg.device_verify.resilience.mode = mode;

    bool completed = false;
    try {
      HomologyGraphStats stats;
      EXPECT_EQ(build_digest(sequences, cfg, &stats), expected) << label;
      completed = true;
    } catch (const DeviceError&) {
      // Typed device failure — legal in Off and Retry only.
      EXPECT_NE(mode, fault::ResilienceMode::Fallback) << label;
    }
    // Any other exception type escapes and fails the harness: that is the
    // "never a third outcome" half of the property.
    if (mode == fault::ResilienceMode::Fallback) {
      EXPECT_TRUE(completed) << label;
    }
    EXPECT_EQ(ctx.arena().used(), 0u) << label;
    EXPECT_EQ(ctx.arena().num_allocations(), 0u) << label;
  }
}

INSTANTIATE_TEST_SUITE_P(ThirtySeeds, VerifyChaosSchedule,
                         ::testing::Range(0, 30));

TEST(VerifyPipelineChaos, MinHashSeedsSurviveDeviceFaultsBitIdentically) {
  // The LSH candidate stream feeds the same verify cascade; a device
  // fault schedule under Fallback must still land on the host MinHash
  // digest — the seed mode changes which pairs are verified, never how
  // faults resolve — and the arena must drain.
  const auto sequences = verify_workload(7500);
  auto host_cfg = base_config();
  host_cfg.seed_mode = SeedMode::MinHashLsh;
  host_cfg.verify_backend = VerifyBackend::HostScalar;
  const u64 expected = build_digest(sequences, host_cfg);

  for (const char* spec :
       {"oom@alloc:1", "xfer_fail@h2d:0", "kernel_fail@kernel:0-1048576"}) {
    auto plan = fault::FaultPlan::parse(spec);
    device::DeviceContext ctx(device::DeviceSpec::small_test_device(1 << 20));
    ctx.set_fault_plan(&plan);
    auto cfg = base_config();
    cfg.seed_mode = SeedMode::MinHashLsh;
    cfg.verify_backend = VerifyBackend::DeviceBatched;
    cfg.device_verify.context = &ctx;
    cfg.device_verify.num_streams = 2;
    cfg.device_verify.resilience.mode = fault::ResilienceMode::Fallback;
    HomologyGraphStats stats;
    EXPECT_EQ(build_digest(sequences, cfg, &stats), expected) << spec;
    EXPECT_GT(plan.injected(), 0u) << spec;
    EXPECT_GT(stats.seed_peak_candidate_bytes, 0u) << spec;
    EXPECT_EQ(ctx.arena().used(), 0u) << spec;
    EXPECT_EQ(ctx.arena().num_allocations(), 0u) << spec;
  }
}

}  // namespace
}  // namespace gpclust::align
