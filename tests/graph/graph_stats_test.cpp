#include "graph/graph_stats.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gpclust::graph {
namespace {

TEST(GraphStats, CountsMatchHandComputation) {
  // Triangle 0-1-2 plus isolated 3, 4.
  EdgeList e(5);
  e.add(0, 1);
  e.add(1, 2);
  e.add(0, 2);
  const auto g = CsrGraph::from_edge_list(std::move(e));
  const auto stats = compute_graph_stats(g);
  EXPECT_EQ(stats.num_vertices, 5u);
  EXPECT_EQ(stats.num_non_singletons, 3u);
  EXPECT_EQ(stats.num_edges, 3u);
  EXPECT_DOUBLE_EQ(stats.degree.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.degree.stddev(), 0.0);
  EXPECT_EQ(stats.largest_cc, 3u);
  EXPECT_EQ(stats.num_components, 1u);
}

TEST(GraphStats, AverageDegreeEqualsHandshakeLemma) {
  const auto g = generate_erdos_renyi(400, 0.02, 21);
  const auto stats = compute_graph_stats(g);
  const double expected =
      2.0 * static_cast<double>(g.num_edges()) /
      static_cast<double>(stats.num_non_singletons);
  EXPECT_NEAR(stats.degree.mean(), expected, 1e-9);
}

TEST(GraphStats, SummaryMentionsKeyNumbers) {
  const auto g = generate_erdos_renyi(50, 0.1, 2);
  const auto stats = compute_graph_stats(g);
  const auto s = stats.summary();
  EXPECT_NE(s.find("V=50"), std::string::npos);
  EXPECT_NE(s.find("largestCC="), std::string::npos);
}

}  // namespace
}  // namespace gpclust::graph
