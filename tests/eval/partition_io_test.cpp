#include "eval/partition_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace gpclust::eval {
namespace {

class PartitionIoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "gpclust_pio";
    std::filesystem::create_directories(dir);
    paths_.push_back((dir / name).string());
    return paths_.back();
  }
  void TearDown() override {
    for (const auto& p : paths_) std::filesystem::remove(p);
  }
  std::vector<std::string> paths_;
};

TEST_F(PartitionIoTest, RoundTrip) {
  core::Clustering original({{0, 1, 2}, {5}, {3, 4}}, 6);
  const auto path = temp_path("clusters.txt");
  write_clusters(original, path);
  const auto loaded = read_clusters(path, 6);
  ASSERT_EQ(loaded.num_clusters(), 3u);
  EXPECT_EQ(loaded.clusters(), original.clusters());
  EXPECT_EQ(loaded.num_vertices(), 6u);
}

TEST_F(PartitionIoTest, InfersUniverseSize) {
  core::Clustering original({{0, 7}}, 8);
  const auto path = temp_path("infer.txt");
  write_clusters(original, path);
  EXPECT_EQ(read_clusters(path).num_vertices(), 8u);
}

TEST_F(PartitionIoTest, SkipsCommentsAndBlankLines) {
  const auto path = temp_path("comments.txt");
  {
    std::ofstream out(path);
    out << "# hdr\n\n1 2\n# more\n3\n";
  }
  const auto c = read_clusters(path, 4);
  ASSERT_EQ(c.num_clusters(), 2u);
  EXPECT_EQ(c.cluster(0), (std::vector<VertexId>{1, 2}));
}

TEST_F(PartitionIoTest, RejectsMalformedLine) {
  const auto path = temp_path("bad.txt");
  {
    std::ofstream out(path);
    out << "1 2 x\n";
  }
  EXPECT_THROW(read_clusters(path, 4), ParseError);
}

TEST_F(PartitionIoTest, ExplicitUniverseValidatesMembers) {
  const auto path = temp_path("oob.txt");
  {
    std::ofstream out(path);
    out << "0 9\n";
  }
  EXPECT_THROW(read_clusters(path, 5), InvalidArgument);
}

TEST_F(PartitionIoTest, MissingFileThrows) {
  EXPECT_THROW(read_clusters("/nonexistent/c.txt", 1), ParseError);
}

}  // namespace
}  // namespace gpclust::eval
