#include "eval/partition_metrics.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gpclust::eval {
namespace {

/// O(n^2) reference implementation classifying every pair explicitly.
PairConfusion brute_force(const std::vector<u32>& test,
                          const std::vector<u32>& bench) {
  PairConfusion out;
  for (std::size_t i = 0; i < test.size(); ++i) {
    for (std::size_t j = i + 1; j < test.size(); ++j) {
      const bool t = test[i] == test[j];
      const bool b = bench[i] == bench[j];
      if (t && b) ++out.tp;
      else if (t && !b) ++out.fp;
      else if (!t && b) ++out.fn;
      else ++out.tn;
    }
  }
  return out;
}

TEST(PairConfusion, IdenticalPartitionsArePerfect) {
  const std::vector<u32> labels = {0, 0, 1, 1, 2};
  const auto c = compare_partitions(labels, labels);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_EQ(c.fn, 0u);
  EXPECT_DOUBLE_EQ(c.ppv(), 1.0);
  EXPECT_DOUBLE_EQ(c.npv(), 1.0);
  EXPECT_DOUBLE_EQ(c.specificity(), 1.0);
  EXPECT_DOUBLE_EQ(c.sensitivity(), 1.0);
}

TEST(PairConfusion, HandComputedExample) {
  // test:  {0,1} {2,3}      bench: {0,1,2} {3}
  const std::vector<u32> test = {5, 5, 7, 7};
  const std::vector<u32> bench = {1, 1, 1, 2};
  const auto c = compare_partitions(test, bench);
  // Pairs: (0,1): TP. (0,2): FN. (0,3): TN. (1,2): FN. (1,3): TN. (2,3): FP.
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.fn, 2u);
  EXPECT_EQ(c.tn, 2u);
  EXPECT_DOUBLE_EQ(c.ppv(), 0.5);
  EXPECT_DOUBLE_EQ(c.sensitivity(), 1.0 / 3.0);
}

TEST(PairConfusion, SubPartitionGivesPerfectPpvLowSensitivity) {
  // The paper's core observation: clusters that are strict refinements of
  // the benchmark families ("core sets") give PPV = 100% and SE < 100%.
  const std::vector<u32> test = {0, 0, 1, 1, 2, 2};
  const std::vector<u32> bench = {9, 9, 9, 9, 8, 8};  // test refines bench
  const auto c = compare_partitions(test, bench);
  EXPECT_EQ(c.fp, 0u);
  EXPECT_DOUBLE_EQ(c.ppv(), 1.0);
  EXPECT_LT(c.sensitivity(), 1.0);
  EXPECT_GT(c.fn, 0u);
}

TEST(PairConfusion, MatchesBruteForceOnRandomPartitions) {
  util::Xoshiro256 rng(55);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 50 + rng.next_below(100);
    std::vector<u32> test(n), bench(n);
    for (std::size_t i = 0; i < n; ++i) {
      test[i] = static_cast<u32>(rng.next_below(8));
      bench[i] = static_cast<u32>(rng.next_below(5));
    }
    const auto fast = compare_partitions(test, bench);
    const auto slow = brute_force(test, bench);
    EXPECT_EQ(fast.tp, slow.tp);
    EXPECT_EQ(fast.fp, slow.fp);
    EXPECT_EQ(fast.fn, slow.fn);
    EXPECT_EQ(fast.tn, slow.tn);
  }
}

TEST(PairConfusion, ConfusionSumsToAllPairs) {
  util::Xoshiro256 rng(66);
  const std::size_t n = 200;
  std::vector<u32> test(n), bench(n);
  for (std::size_t i = 0; i < n; ++i) {
    test[i] = static_cast<u32>(rng.next_below(10));
    bench[i] = static_cast<u32>(rng.next_below(10));
  }
  const auto c = compare_partitions(test, bench);
  EXPECT_EQ(c.tp + c.fp + c.fn + c.tn, n * (n - 1) / 2);
}

TEST(PairConfusion, MismatchedSizesThrow) {
  EXPECT_THROW(compare_partitions({0, 1}, {0}), InvalidArgument);
}

TEST(LabelsWithSingletons, FilteredClustersPlusSingletons) {
  core::Clustering c({{0, 1, 2}, {4, 5}}, 7);  // 3 and 6 unclustered
  const auto labels = labels_with_singletons(c);
  ASSERT_EQ(labels.size(), 7u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_NE(labels[3], labels[6]);
  EXPECT_NE(labels[3], labels[0]);
}

TEST(LabelsWithSingletons, RejectsOverlap) {
  core::Clustering c({{0, 1}, {1, 2}}, 3);
  EXPECT_THROW(labels_with_singletons(c), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::eval
