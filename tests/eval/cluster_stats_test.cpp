#include "eval/cluster_stats.hpp"

#include <gtest/gtest.h>

namespace gpclust::eval {
namespace {

core::Clustering sample() {
  std::vector<std::vector<VertexId>> clusters;
  // Sizes 25, 60, 150, 2500, 3 (below the Figure 5 bins).
  VertexId next = 0;
  for (std::size_t size : {25u, 60u, 150u, 2500u, 3u}) {
    std::vector<VertexId> c(size);
    for (auto& v : c) v = next++;
    clusters.push_back(std::move(c));
  }
  return core::Clustering(std::move(clusters), next);
}

TEST(PartitionStats, MatchesHandCounts) {
  const auto stats = partition_stats(sample());
  EXPECT_EQ(stats.num_groups, 5u);
  EXPECT_EQ(stats.num_sequences, 25u + 60 + 150 + 2500 + 3);
  EXPECT_EQ(stats.largest, 2500u);
  EXPECT_NEAR(stats.group_size.mean(), (25.0 + 60 + 150 + 2500 + 3) / 5, 1e-9);
}

TEST(GroupSizeHistogram, BinsGroupsLikeFigure5a) {
  const auto hist = group_size_histogram(sample());
  EXPECT_EQ(hist.count(0), 1u);  // 25 in [20,50)
  EXPECT_EQ(hist.count(1), 1u);  // 60 in [50,100)
  EXPECT_EQ(hist.count(2), 1u);  // 150 in [100,200)
  EXPECT_EQ(hist.count(3), 0u);
  EXPECT_EQ(hist.count(6), 1u);  // 2500 in >=2000
  EXPECT_EQ(hist.underflow(), 1u);  // the size-3 cluster
}

TEST(SequenceDistributionHistogram, WeightsBySizeLikeFigure5b) {
  const auto hist = sequence_distribution_histogram(sample());
  EXPECT_EQ(hist.count(0), 25u);
  EXPECT_EQ(hist.count(1), 60u);
  EXPECT_EQ(hist.count(2), 150u);
  EXPECT_EQ(hist.count(6), 2500u);
  EXPECT_EQ(hist.underflow(), 3u);
}

TEST(PartitionStats, EmptyClustering) {
  const auto stats = partition_stats(core::Clustering({}, 0));
  EXPECT_EQ(stats.num_groups, 0u);
  EXPECT_EQ(stats.num_sequences, 0u);
  EXPECT_EQ(stats.largest, 0u);
}

}  // namespace
}  // namespace gpclust::eval
