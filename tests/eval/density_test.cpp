#include "eval/density.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace gpclust::eval {
namespace {

TEST(Density, CliqueHasDensityOne) {
  graph::EdgeList e;
  for (VertexId i = 0; i < 6; ++i) {
    for (VertexId j = i + 1; j < 6; ++j) e.add(i, j);
  }
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  core::Clustering c({{0, 1, 2, 3, 4, 5}}, 6);
  const auto d = cluster_densities(g, c);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
}

TEST(Density, PathHasKnownDensity) {
  graph::EdgeList e;
  for (VertexId i = 0; i < 4; ++i) e.add(i, i + 1);  // path of 5 vertices
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  core::Clustering c({{0, 1, 2, 3, 4}}, 5);
  // 4 edges out of C(5,2) = 10 possible.
  EXPECT_DOUBLE_EQ(cluster_densities(g, c)[0], 0.4);
}

TEST(Density, SingletonConventionIsOne) {
  // Paper: "if each vertex ... is reported as an individual cluster by
  // itself, then the average density of the reported clusters is 1".
  const auto g = graph::generate_erdos_renyi(10, 0.3, 1);
  std::vector<std::vector<VertexId>> singles;
  for (VertexId v = 0; v < 10; ++v) singles.push_back({v});
  core::Clustering c(std::move(singles), 10);
  const auto stats = density_stats(g, c);
  EXPECT_DOUBLE_EQ(stats.mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Density, EdgesOutsideClusterDoNotCount) {
  graph::EdgeList e;
  e.add(0, 1);
  e.add(1, 2);  // 2 is outside the cluster
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  core::Clustering c({{0, 1}}, 3);
  EXPECT_DOUBLE_EQ(cluster_densities(g, c)[0], 1.0);
}

TEST(Density, MultipleClustersReportedInOrder) {
  graph::EdgeList e(7);
  e.add(0, 1);                     // pair: density 1
  e.add(2, 3);
  e.add(3, 4);                     // path of 3: 2 of 3 edges
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  core::Clustering c({{0, 1}, {2, 3, 4}, {5, 6}}, 7);
  const auto d = cluster_densities(g, c);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_NEAR(d[1], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(d[2], 0.0);  // 5-6 not adjacent
}

TEST(Density, StatsAggregateCorrectly) {
  graph::EdgeList e(4);
  e.add(0, 1);
  const auto g = graph::CsrGraph::from_edge_list(std::move(e));
  core::Clustering c({{0, 1}, {2, 3}}, 4);
  const auto stats = density_stats(g, c);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.5);
}

TEST(Density, MemberOutsideGraphThrows) {
  const auto g = graph::generate_erdos_renyi(3, 1.0, 1);
  core::Clustering c({{0, 4}}, 5);  // vertex 4 not in g
  EXPECT_THROW(cluster_densities(g, c), InvalidArgument);
}

}  // namespace
}  // namespace gpclust::eval
