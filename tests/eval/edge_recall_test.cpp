#include "eval/edge_recall.hpp"

#include <gtest/gtest.h>

#include "align/homology_graph.hpp"
#include "graph/edge_list.hpp"
#include "seq/family_model.hpp"

namespace gpclust::eval {
namespace {

graph::CsrGraph make_graph(std::size_t vertices,
                           std::initializer_list<std::pair<u32, u32>> edges) {
  graph::EdgeList list(vertices);
  for (const auto& [u, v] : edges) list.add(u, v);
  return graph::CsrGraph::from_edge_list(std::move(list));
}

TEST(EdgeRecall, CountsOnlyIntraFamilyTruthEdges) {
  // Vertices 0-2 are family 0, vertex 3 is family 1, vertex 4 background.
  const std::vector<u32> family = {0, 0, 0, 1, 2};
  const auto truth = make_graph(
      5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
  const auto test = make_graph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});

  const auto r = planted_edge_recall(test, truth, family, 2);
  // Denominator: the three intra-family-0 truth edges; the family-0 to
  // family-1 edge {2,3} and anything touching the background vertex are
  // out of scope. Recovered: {0,1} and {1,2}.
  EXPECT_EQ(r.truth_intra_edges, 3u);
  EXPECT_EQ(r.recovered_intra_edges, 2u);
  EXPECT_DOUBLE_EQ(r.recall(), 2.0 / 3.0);
}

TEST(EdgeRecall, PerfectAndZeroRecall) {
  const std::vector<u32> family = {0, 0, 0};
  const auto truth = make_graph(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(planted_edge_recall(truth, truth, family, 1).recall(), 1.0);
  const auto empty = make_graph(3, {});
  EXPECT_DOUBLE_EQ(planted_edge_recall(empty, truth, family, 1).recall(), 0.0);
}

TEST(EdgeRecall, EmptyDenominatorIsPerfect) {
  // All vertices background: no intra-family truth edges exist, and
  // recovering nothing from nothing reads as perfect recall.
  const std::vector<u32> family = {5, 6, 7};
  const auto truth = make_graph(3, {{0, 1}, {1, 2}});
  const auto r = planted_edge_recall(make_graph(3, {}), truth, family, 3);
  EXPECT_EQ(r.truth_intra_edges, 0u);
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
}

TEST(EdgeRecall, RejectsMismatchedShapes) {
  const std::vector<u32> family = {0, 0};
  const auto two = make_graph(2, {{0, 1}});
  const auto three = make_graph(3, {{0, 1}});
  EXPECT_THROW(planted_edge_recall(two, three, family, 1), InvalidArgument);
  EXPECT_THROW(planted_edge_recall(three, three, family, 1), InvalidArgument);
}

TEST(EdgeRecall, MinHashSeedsRecoverPlantedFamilies) {
  // End-to-end harness check at the default operating point: the LSH
  // seed stage must keep nearly all of the exact path's planted edges.
  seq::FamilyModelConfig cfg;
  cfg.num_families = 10;
  cfg.min_members = 5;
  cfg.max_members = 12;
  cfg.substitution_rate = 0.1;
  cfg.indel_rate = 0.01;
  cfg.num_background_orfs = 20;
  cfg.seed = 6100;
  const auto mg = seq::generate_metagenome(cfg);

  align::HomologyGraphConfig exact_cfg;
  exact_cfg.num_threads = 1;
  const auto truth = align::build_homology_graph(mg.sequences, exact_cfg);

  align::HomologyGraphConfig lsh_cfg = exact_cfg;
  lsh_cfg.seed_mode = align::SeedMode::MinHashLsh;
  const auto test = align::build_homology_graph(mg.sequences, lsh_cfg);

  const auto r = planted_edge_recall(test, truth, mg.family,
                                     static_cast<u32>(mg.num_families));
  EXPECT_GT(r.truth_intra_edges, 0u);
  EXPECT_GE(r.recall(), 0.95);
}

}  // namespace
}  // namespace gpclust::eval
