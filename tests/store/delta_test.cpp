// Versioned snapshot deltas (store/delta.hpp): build/apply byte-exactness,
// the serialized format's self-validation (truncation, bit flips, version
// skew, wrong magic), chain-order enforcement via base CRCs, and the
// committed on-disk fixture that pins the version-1 delta format.
//
// The fixture (tests/store/data/family_delta_v1.gpfd) was generated with
// build_snapshot_delta over the SAME pinned workload as the v1 snapshot
// fixture (generate_metagenome({num_families=6, min_members=3,
// max_members=8, num_background_orfs=3, seed=77})): base = the store over
// the first half of the sequences, next = the store over all of them,
// chain_index = 1. Regenerating it after a format change would defeat the
// pin — the version assertion below catches that.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "seq/family_model.hpp"
#include "store/delta.hpp"

namespace gpclust::store {
namespace {

struct Workload {
  seq::SequenceSet sequences;
  std::vector<u32> family;
};

Workload pinned_workload() {
  seq::FamilyModelConfig config;
  config.num_families = 6;
  config.min_members = 3;
  config.max_members = 8;
  config.num_background_orfs = 3;
  config.seed = 77;
  auto mg = seq::generate_metagenome(config);
  return {std::move(mg.sequences), std::move(mg.family)};
}

/// Base = store over the first `cut` sequences, next = store over all of
/// them — the "next extends base" shape build_snapshot_delta requires.
struct StorePair {
  FamilyStore base;
  FamilyStore next;
};

StorePair pinned_stores(std::size_t cut) {
  const Workload w = pinned_workload();
  const seq::SequenceSet head(w.sequences.begin(),
                              w.sequences.begin() +
                                  static_cast<std::ptrdiff_t>(cut));
  const std::vector<u32> head_family(w.family.begin(),
                                     w.family.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
  return {build_family_store(head, head_family),
          build_family_store(w.sequences, w.family)};
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string fixture_path() {
  return std::string(GPCLUST_TEST_DATA_DIR) + "/family_delta_v1.gpfd";
}

TEST(SnapshotDelta, BuildApplyReproducesNextByteForByte) {
  const auto [base, next] = pinned_stores(pinned_workload().sequences.size() / 2);
  const SnapshotDelta delta = build_snapshot_delta(base, next, 1);
  EXPECT_EQ(delta.num_new_sequences(),
            next.num_sequences() - base.num_sequences());

  const FamilyStore applied = apply_snapshot_delta(base, delta);
  EXPECT_EQ(applied, next);
  EXPECT_EQ(serialize_snapshot(applied), serialize_snapshot(next));
}

TEST(SnapshotDelta, SerializationRoundTripsAndIsDeterministic) {
  const auto [base, next] = pinned_stores(5);
  const SnapshotDelta delta = build_snapshot_delta(base, next, 3);
  const std::vector<char> bytes = serialize_delta(delta);
  EXPECT_EQ(bytes, serialize_delta(delta));  // deterministic
  const SnapshotDelta reloaded = deserialize_delta(bytes);
  EXPECT_EQ(reloaded, delta);
  EXPECT_EQ(serialize_delta(reloaded), bytes);

  const std::string path = temp_path("gpclust_delta_test.gpfd");
  write_delta(delta, path);
  EXPECT_EQ(load_delta(path), delta);
  std::filesystem::remove(path);
}

TEST(SnapshotDelta, TruncationIsTypedCorruption) {
  // A kill mid-write leaves a prefix of the file; every truncation point
  // must be SnapshotError (never a crash or a half-applied delta).
  const auto [base, next] = pinned_stores(6);
  const std::vector<char> bytes =
      serialize_delta(build_snapshot_delta(base, next, 1));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{15}, std::size_t{40},
        bytes.size() / 2, bytes.size() - 1}) {
    const std::vector<char> cut(bytes.begin(),
                                bytes.begin() +
                                    static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(deserialize_delta(cut), SnapshotError) << keep;
  }
}

TEST(SnapshotDelta, BitFlipIsTypedCorruption) {
  const auto [base, next] = pinned_stores(6);
  const std::vector<char> bytes =
      serialize_delta(build_snapshot_delta(base, next, 1));
  // Flip one byte in every region: magic, section table, payloads.
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{20}, bytes.size() / 2,
        bytes.size() - 9}) {
    std::vector<char> corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    EXPECT_THROW(deserialize_delta(corrupted), SnapshotError) << pos;
  }
}

TEST(SnapshotDelta, VersionSkewIsTypedCorruption) {
  const auto [base, next] = pinned_stores(6);
  std::vector<char> bytes =
      serialize_delta(build_snapshot_delta(base, next, 1));
  bytes[8] = 2;  // version field (u32 LE at offset 8)
  try {
    deserialize_delta(bytes);
    FAIL() << "version skew not detected";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SnapshotDelta, OutOfOrderChainApplicationIsTypedCorruption) {
  // Two chained deltas: base -> mid -> next. Applying the second link to
  // the base (skipping the first) or re-applying the first to its own
  // result must fail the recorded base CRC, not drift silently.
  const Workload w = pinned_workload();
  const std::size_t third = w.sequences.size() / 3;
  auto prefix_store = [&](std::size_t n) {
    const seq::SequenceSet head(w.sequences.begin(),
                                w.sequences.begin() +
                                    static_cast<std::ptrdiff_t>(n));
    const std::vector<u32> fam(w.family.begin(),
                               w.family.begin() +
                                   static_cast<std::ptrdiff_t>(n));
    return build_family_store(head, fam);
  };
  const FamilyStore base = prefix_store(third);
  const FamilyStore mid = prefix_store(2 * third);
  const FamilyStore next = prefix_store(w.sequences.size());
  const SnapshotDelta d1 = build_snapshot_delta(base, mid, 1);
  const SnapshotDelta d2 = build_snapshot_delta(mid, next, 2);

  // In order: fine.
  EXPECT_EQ(apply_snapshot_delta(apply_snapshot_delta(base, d1), d2), next);
  // Out of order: typed failures.
  EXPECT_THROW(apply_snapshot_delta(base, d2), SnapshotError);
  EXPECT_THROW(apply_snapshot_delta(mid, d1), SnapshotError);
}

TEST(SnapshotDelta, MissingFileIsIoErrorNotCorruption) {
  EXPECT_THROW(load_delta(temp_path("gpclust_no_such_delta.gpfd")),
               SnapshotIoError);
}

TEST(SnapshotDelta, FollowDeltaChainWalksAndStopsAtGaps) {
  const Workload w = pinned_workload();
  const std::size_t third = w.sequences.size() / 3;
  auto prefix_store = [&](std::size_t n) {
    const seq::SequenceSet head(w.sequences.begin(),
                                w.sequences.begin() +
                                    static_cast<std::ptrdiff_t>(n));
    const std::vector<u32> fam(w.family.begin(),
                               w.family.begin() +
                                   static_cast<std::ptrdiff_t>(n));
    return build_family_store(head, fam);
  };
  const FamilyStore base = prefix_store(third);
  const FamilyStore mid = prefix_store(2 * third);
  const FamilyStore next = prefix_store(w.sequences.size());

  const std::string base_path = temp_path("gpclust_chain_test.gpfi");
  write_snapshot(base, base_path);
  write_delta(build_snapshot_delta(base, mid, 1),
              delta_chain_path(base_path, 1));
  write_delta(build_snapshot_delta(mid, next, 2),
              delta_chain_path(base_path, 2));

  const DeltaChainTip tip = follow_delta_chain(base_path);
  EXPECT_EQ(tip.chain_length, 2u);
  EXPECT_EQ(tip.store, next);

  // A truncated final link (kill mid-write) is typed corruption — and
  // removing it leaves the earlier chain fully loadable; the base file is
  // never modified.
  {
    std::ifstream in(delta_chain_path(base_path, 2), std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(delta_chain_path(base_path, 2),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(follow_delta_chain(base_path), SnapshotError);
  std::filesystem::remove(delta_chain_path(base_path, 2));
  const DeltaChainTip prefix = follow_delta_chain(base_path);
  EXPECT_EQ(prefix.chain_length, 1u);
  EXPECT_EQ(prefix.store, mid);
  EXPECT_EQ(load_snapshot(base_path), base);

  // A gap ends the chain: with link 1 gone, link 2 (even valid) is an
  // orphan and the tip is the base itself.
  std::filesystem::remove(delta_chain_path(base_path, 1));
  write_delta(build_snapshot_delta(mid, next, 2),
              delta_chain_path(base_path, 2));
  const DeltaChainTip only_base = follow_delta_chain(base_path);
  EXPECT_EQ(only_base.chain_length, 0u);
  EXPECT_EQ(only_base.store, base);

  std::filesystem::remove(base_path);
  std::filesystem::remove(delta_chain_path(base_path, 2));
}

TEST(SnapshotDeltaCompat, FixtureIsStillAtVersionOne) {
  std::ifstream in(fixture_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << fixture_path();
  std::vector<char> head(16);
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  ASSERT_EQ(in.gcount(), 16);
  EXPECT_EQ(std::string(head.data(), 8), "GPCLDLTA");
  EXPECT_EQ(static_cast<unsigned char>(head[8]), 1u);
}

TEST(SnapshotDeltaCompat, FixtureAppliesToThePinnedBase) {
  const auto [base, next] = pinned_stores(pinned_workload().sequences.size() / 2);
  const SnapshotDelta delta = load_delta(fixture_path());
  EXPECT_EQ(delta.chain_index, 1u);
  const FamilyStore applied = apply_snapshot_delta(base, delta);
  EXPECT_EQ(applied, next);
  EXPECT_EQ(serialize_snapshot(applied), serialize_snapshot(next));
  // The current builder still produces the committed bytes.
  EXPECT_EQ(serialize_delta(build_snapshot_delta(base, next, 1)),
            serialize_delta(delta));
}

}  // namespace
}  // namespace gpclust::store
