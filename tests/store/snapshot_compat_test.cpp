// Snapshot forward/backward compatibility (DESIGN.md §10): a checked-in
// version-1 fixture — written by the pre-signature builder over a pinned
// synthetic workload — must keep loading, serving and migrating as the
// format moves forward. Guards the v2 signature-section change: the v1
// read path reconstructs signatures on load with the default parameters,
// so a migrated store is byte-identical to a fresh build of the same
// inputs and serves bit-identical answers through both seed indexes.
//
// The fixture (tests/store/data/family_index_v1.gpfi) was generated
// BEFORE the v2 format change with build_family_store defaults over
// generate_metagenome({num_families=6, min_members=3, max_members=8,
// num_background_orfs=3, seed=77}). Regenerating it at the current
// version would defeat the test — the version pin below catches that.

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "seq/family_model.hpp"
#include "serve/bucket_index.hpp"
#include "serve/family_index.hpp"
#include "store/snapshot.hpp"

namespace gpclust::store {
namespace {

std::string fixture_path() {
  return std::string(GPCLUST_TEST_DATA_DIR) + "/family_index_v1.gpfi";
}

FamilyStore fresh_build() {
  seq::FamilyModelConfig config;
  config.num_families = 6;
  config.min_members = 3;
  config.max_members = 8;
  config.num_background_orfs = 3;
  config.seed = 77;
  const auto mg = seq::generate_metagenome(config);
  return build_family_store(mg.sequences, mg.family);
}

TEST(SnapshotCompat, FixtureIsStillAtThePreviousFormatVersion) {
  std::ifstream in(fixture_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << fixture_path();
  std::vector<char> head(16);
  in.read(head.data(), static_cast<std::streamsize>(head.size()));
  ASSERT_EQ(in.gcount(), 16);
  EXPECT_EQ(std::string(head.data(), 8), "GPCLFIDX");
  // Version field (u32 LE at offset 8) must stay 1: the fixture is only a
  // compatibility witness while it predates the current format.
  EXPECT_EQ(static_cast<unsigned char>(head[8]), 1u);
}

TEST(SnapshotCompat, V1FixtureLoadsAndEqualsAFreshBuild) {
  const FamilyStore migrated = load_snapshot(fixture_path());
  const FamilyStore fresh = fresh_build();
  // On-load signature reconstruction must land exactly where the current
  // builder does — field-for-field, including the signature block.
  EXPECT_EQ(migrated.sig_num_hashes, kDefaultSignatureHashes);
  EXPECT_EQ(migrated.sig_seed, kDefaultSignatureSeed);
  EXPECT_EQ(migrated, fresh);
}

TEST(SnapshotCompat, V1MigratesToTheCurrentFormatByteIdentically) {
  const FamilyStore migrated = load_snapshot(fixture_path());
  const std::vector<char> upgraded = serialize_snapshot(migrated);
  EXPECT_EQ(upgraded, serialize_snapshot(fresh_build()));
  // And the upgraded bytes are a stable fixed point of the current format.
  EXPECT_EQ(serialize_snapshot(deserialize_snapshot(upgraded)), upgraded);
}

TEST(SnapshotCompat, V1FixtureServesIdenticallyToAFreshBuild) {
  const FamilyStore migrated = load_snapshot(fixture_path());
  const FamilyStore fresh = fresh_build();
  const serve::FamilyIndex old_index(migrated);
  const serve::FamilyIndex new_index(fresh);
  const serve::BucketIndex old_buckets(migrated, {});
  const serve::BucketIndex new_buckets(fresh, {});
  serve::ClassifyScratch a;
  serve::ClassifyScratch b;
  for (std::size_t i = 0; i < fresh.num_sequences(); ++i) {
    const std::string q(fresh.sequence(i));
    EXPECT_EQ(old_index.classify(q, {}, a), new_index.classify(q, {}, b))
        << q;
    EXPECT_EQ(old_index.classify(q, {}, a, old_buckets),
              new_index.classify(q, {}, b, new_buckets))
        << q;
  }
}

}  // namespace
}  // namespace gpclust::store
