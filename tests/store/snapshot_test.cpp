// store layer: build determinism, serialize/deserialize round trips,
// byte-identity of repeated builds, and the corruption contract — every
// truncation, bit flip, or header lie must surface as a typed
// SnapshotError, never a crash or a silently partial index.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "seq/family_model.hpp"
#include "store/snapshot.hpp"

namespace gpclust::store {
namespace {

seq::SyntheticMetagenome make_workload(u64 seed = 5) {
  seq::FamilyModelConfig config;
  config.num_families = 8;
  config.min_members = 3;
  config.max_members = 10;
  config.num_background_orfs = 4;  // singleton families exercise rep logic
  config.seed = seed;
  return seq::generate_metagenome(config);
}

FamilyStore make_store(u64 seed = 5) {
  const auto mg = make_workload(seed);
  return build_family_store(mg.sequences, mg.family);
}

// ---------------------------------------------------------------------------
// Build semantics
// ---------------------------------------------------------------------------

TEST(StoreBuild, IndexesEverySequenceAndFamily) {
  const auto mg = make_workload();
  const auto store = build_family_store(mg.sequences, mg.family);
  ASSERT_EQ(store.num_sequences(), mg.sequences.size());
  for (std::size_t i = 0; i < mg.sequences.size(); ++i) {
    EXPECT_EQ(store.sequence(i), mg.sequences[i].residues);
    EXPECT_EQ(store.id(i), mg.sequences[i].id);
    EXPECT_EQ(store.family_of[i], mg.family[i]);
  }
  // Every family has at least one representative; every representative
  // belongs to the family it represents.
  for (u32 f = 0; f < store.num_families; ++f) {
    const auto reps = store.family_reps(f);
    ASSERT_GE(reps.size(), 1u) << "family " << f;
    for (u32 rep : reps) EXPECT_EQ(store.family_of[rep], f);
  }
}

TEST(StoreBuild, KeepsLongestMembersAsRepresentatives) {
  const auto mg = make_workload();
  StoreBuildConfig config;
  config.reps_per_family = 1;
  const auto store = build_family_store(mg.sequences, mg.family, config);
  for (u32 f = 0; f < store.num_families; ++f) {
    const auto reps = store.family_reps(f);
    ASSERT_EQ(reps.size(), 1u);
    for (std::size_t i = 0; i < store.num_sequences(); ++i) {
      if (store.family_of[i] == f) {
        EXPECT_LE(store.sequence(i).size(), store.sequence(reps[0]).size());
      }
    }
  }
}

TEST(StoreBuild, PostingsAreSortedAndDistinct) {
  const auto store = make_store();
  ASSERT_FALSE(store.postings.empty());
  for (std::size_t i = 1; i < store.postings.size(); ++i) {
    const auto& prev = store.postings[i - 1];
    const auto& cur = store.postings[i];
    EXPECT_TRUE(prev.code < cur.code ||
                (prev.code == cur.code && prev.rep < cur.rep));
  }
}

TEST(StoreBuild, RejectsInvalidInputs) {
  const auto mg = make_workload();
  auto bad_labels = mg.family;
  bad_labels.pop_back();
  EXPECT_THROW(build_family_store(mg.sequences, bad_labels), InvalidArgument);
  StoreBuildConfig bad_k;
  bad_k.k = 1;
  EXPECT_THROW(build_family_store(mg.sequences, mg.family, bad_k),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Serialization: round trip + determinism
// ---------------------------------------------------------------------------

TEST(StoreSnapshot, RoundTripPreservesEverything) {
  const auto store = make_store();
  const auto bytes = serialize_snapshot(store);
  const auto loaded = deserialize_snapshot(bytes);
  EXPECT_EQ(loaded, store);
}

TEST(StoreSnapshot, BuildTwiceIsByteIdentical) {
  const auto once = serialize_snapshot(make_store());
  const auto twice = serialize_snapshot(make_store());
  EXPECT_EQ(once, twice);
  // And serialize(deserialize(x)) == x: no hidden non-determinism on the
  // load path either.
  EXPECT_EQ(serialize_snapshot(deserialize_snapshot(once)), once);
}

TEST(StoreSnapshot, DifferentInputsProduceDifferentBytes) {
  EXPECT_NE(serialize_snapshot(make_store(5)),
            serialize_snapshot(make_store(6)));
}

TEST(StoreSnapshot, FileRoundTrip) {
  const auto store = make_store();
  const auto path =
      (std::filesystem::temp_directory_path() / "gpclust_snapshot_test.gpfi")
          .string();
  write_snapshot(store, path);
  const auto loaded = load_snapshot(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded, store);
}

TEST(StoreSnapshot, LoadMissingFileThrowsIoErrorNotCorruption) {
  // Missing/unreadable files are SnapshotIoError — distinct from the
  // SnapshotError corruption type so callers (gpclust-query exit codes)
  // can tell "wrong path" from "damaged index".
  EXPECT_THROW(load_snapshot("/nonexistent/gpclust.gpfi"), SnapshotIoError);
  try {
    load_snapshot("/nonexistent/gpclust.gpfi");
    FAIL() << "expected SnapshotIoError";
  } catch (const SnapshotError&) {
    FAIL() << "missing file must not be reported as corruption";
  } catch (const SnapshotIoError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Corruption contract: typed error, never a crash or partial index
// ---------------------------------------------------------------------------

TEST(StoreCorruption, EveryTruncationThrowsTyped) {
  const auto bytes = serialize_snapshot(make_store());
  // Sweep all short prefixes at a byte stride (every length near the
  // header, then sampled through the payload — keeps the sweep O(seconds)).
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 256 ? 1 : 97)) {
    std::vector<char> cut(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(deserialize_snapshot(cut), SnapshotError) << "len=" << len;
  }
}

TEST(StoreCorruption, EveryBitFlipThrowsOrPreservesEquality) {
  const auto store = make_store();
  const auto bytes = serialize_snapshot(store);
  // Flip one bit at a sampled set of byte offsets covering header, section
  // table, and every payload section. A flip must either be caught (CRC,
  // magic, bounds) — the common case — or, never, produce a different
  // store that loads cleanly.
  for (std::size_t pos = 0; pos < bytes.size();
       pos += (pos < 300 ? 7 : 131)) {
    auto corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    try {
      const auto loaded = deserialize_snapshot(corrupt);
      // A flip inside ignored padding can legitimately... no: padding is
      // CRC-covered too, so any surviving load means the flip was a no-op
      // on content, which a XOR by 0x10 never is.
      ADD_FAILURE() << "bit flip at byte " << pos << " loaded cleanly";
      (void)loaded;
    } catch (const SnapshotError&) {
      // expected
    }
  }
}

TEST(StoreCorruption, WrongMagicAndVersionAreTyped) {
  const auto bytes = serialize_snapshot(make_store());
  {
    auto bad = bytes;
    bad[0] = 'X';
    try {
      deserialize_snapshot(bad);
      FAIL() << "bad magic accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
  }
  {
    auto bad = bytes;
    bad[8] = 99;  // format version field
    try {
      deserialize_snapshot(bad);
      FAIL() << "bad version accepted";
    } catch (const SnapshotError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
  }
}

TEST(StoreCorruption, CrossSectionLiesAreCaught) {
  // A snapshot whose sections are individually CRC-valid but mutually
  // inconsistent must still be rejected: rebuild a store with an
  // out-of-range family label and check the serializer itself refuses.
  auto store = make_store();
  store.family_of[0] = static_cast<u32>(store.num_families + 7);
  const auto bytes = serialize_snapshot(store);  // serializer is trusting
  EXPECT_THROW(deserialize_snapshot(bytes), SnapshotError);
}

TEST(StoreCorruption, SnapshotErrorIsAlsoAParseError) {
  // Callers that already handle the repo-wide ParseError taxonomy keep
  // working.
  const std::vector<char> empty;
  EXPECT_THROW(deserialize_snapshot(empty), ParseError);
}

}  // namespace
}  // namespace gpclust::store
