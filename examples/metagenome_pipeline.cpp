// The complete metagenomics protein-family pipeline, end to end — the
// workflow the paper's introduction describes:
//
//   ORF sequences (FASTA)                          [seq::generate_metagenome]
//     -> homology detection: k-mer seeds + Smith-Waterman   [pGraph analog]
//     -> similarity graph
//     -> gpClust dense-subgraph detection          [the paper's algorithm]
//     -> protein family "core sets" + quality report vs the planted truth
//
//   ./metagenome_pipeline [--families=40] [--out-dir=/tmp] [--keep-fasta]

#include <cstdio>
#include <filesystem>

#include "align/homology_graph.hpp"
#include "baseline/gos_kneighbor.hpp"
#include "core/gpclust.hpp"
#include "eval/cluster_stats.hpp"
#include "eval/density.hpp"
#include "eval/partition_metrics.hpp"
#include "seq/family_model.hpp"
#include "seq/fasta.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gpclust;
  const util::CliArgs args(argc, argv);

  // --- 1. Sequence data: a synthetic ocean-survey ORF set ---------------
  seq::FamilyModelConfig model;
  model.num_families = static_cast<std::size_t>(args.get_int("families", 40));
  model.min_members = 6;
  model.max_members = 50;
  model.substitution_rate = 0.08;
  model.fragment_min_fraction = 0.7;
  model.num_background_orfs = 3 * model.num_families;
  model.seed = static_cast<u64>(args.get_int("seed", 2013));
  const auto metagenome = seq::generate_metagenome(model);
  std::printf("generated %zu ORFs in %zu families (+%zu background)\n",
              metagenome.sequences.size(), metagenome.num_families,
              model.num_background_orfs);

  // Round-trip through FASTA, as a real pipeline would.
  const auto fasta_path =
      (std::filesystem::path(args.get_string("out-dir", "/tmp")) /
       "metagenome_orfs.fa")
          .string();
  seq::write_fasta(metagenome.sequences, fasta_path);
  const auto sequences = seq::read_fasta(fasta_path);
  if (!args.get_bool("keep-fasta", false)) {
    std::filesystem::remove(fasta_path);
  }

  // --- 2. Homology graph (pGraph analog) --------------------------------
  util::WallTimer homology_timer;
  align::HomologyGraphConfig hcfg;
  // Opt-in heuristic prefilter: skips pairs whose ungapped seed-diagonal
  // score is hopeless. Changes the edge set (unlike the always-on exact
  // filters), so it is off unless requested.
  hcfg.prefilter.enabled = args.get_bool("xdrop-prefilter", false);
  align::HomologyGraphStats hstats;
  const auto graph = align::build_homology_graph(sequences, hcfg, &hstats);
  std::printf("homology graph: %zu candidate pairs -> %zu edges "
              "(%.1fs, Smith-Waterman verified)\n",
              hstats.num_candidate_pairs, graph.num_edges(),
              homology_timer.seconds());
  std::printf("  filter cascade: %zu exact rejects, %zu heuristic rejects; "
              "%zu score DPs (%llu simd-8bit / %llu simd-16bit / %llu scalar), "
              "%zu traced\n",
              hstats.num_exact_rejects, hstats.num_heuristic_rejects,
              hstats.num_score_alignments,
              static_cast<unsigned long long>(hstats.simd.runs_8bit),
              static_cast<unsigned long long>(hstats.simd.rescues_16bit),
              static_cast<unsigned long long>(hstats.simd.scalar_fallbacks),
              hstats.num_traced_alignments);

  // --- 3. gpClust --------------------------------------------------------
  device::DeviceContext device(device::DeviceSpec::tesla_k20());
  core::ShinglingParams params;
  core::GpClust clusterer(device, params);
  core::GpClustReport report;
  const auto families = clusterer.cluster(graph, &report);
  std::printf("gpClust: %s\n", families.summary().c_str());

  // --- 4. Quality vs the planted truth, next to the GOS baseline --------
  const auto gos = baseline::gos_kneighbor_cluster(graph);

  util::AsciiTable table({"approach", "#clusters(>=3)", "PPV", "SE",
                          "avg density"});
  auto add_row = [&](const std::string& name, const core::Clustering& c) {
    const auto filtered = c.filtered(3);
    const auto conf = eval::compare_partitions(
        eval::labels_with_singletons(filtered), metagenome.family);
    const auto density = eval::density_stats(graph, filtered);
    table.add_row({name, std::to_string(filtered.num_clusters()),
                   util::AsciiTable::pct(conf.ppv(), 1),
                   util::AsciiTable::pct(conf.sensitivity(), 1),
                   util::AsciiTable::fmt(density.mean(), 2)});
  };
  add_row("gpClust", families);
  add_row("GOS k-neighbor", gos);
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
