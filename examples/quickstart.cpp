// Quickstart: cluster a small similarity graph with gpClust.
//
// Builds a synthetic protein-similarity graph with planted families, runs
// the GPU-accelerated Shingling pipeline on the simulated device, and
// prints the recovered clusters next to the planted truth.
//
//   ./quickstart [--families=12] [--seed=7]

#include <cstdio>

#include "core/gpclust.hpp"
#include "eval/partition_metrics.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gpclust;
  const util::CliArgs args(argc, argv);

  // 1. A similarity graph with planted protein families. In a real
  //    pipeline this comes from pGraph-style homology detection (see the
  //    metagenome_pipeline example); here we plant the truth directly.
  graph::PlantedFamilyConfig cfg;
  cfg.num_families =
      static_cast<std::size_t>(args.get_int("families", 12));
  cfg.min_family_size = 8;
  cfg.max_family_size = 60;
  cfg.intra_family_edge_prob = 0.7;
  cfg.intra_superfamily_edge_prob = 0.0;  // families are fully separate here
  cfg.noise_edges_per_vertex = 0.01;
  cfg.num_singletons = 15;
  cfg.seed = static_cast<u64>(args.get_int("seed", 7));
  const auto pg = graph::generate_planted_families(cfg);
  std::printf("input graph: %zu vertices, %zu edges, %zu planted families\n",
              pg.graph.num_vertices(), pg.graph.num_edges(), pg.num_families);

  // 2. A simulated Tesla K20 and the gpClust pipeline with the paper's
  //    default parameters (s=2, c1=200, c2=100).
  device::DeviceContext device(device::DeviceSpec::tesla_k20());
  core::ShinglingParams params;
  core::GpClust clusterer(device, params);

  core::GpClustReport report;
  const auto clustering = clusterer.cluster(pg.graph, &report);

  // 3. Results: clusters of size >= 2, plus agreement with the truth.
  const auto real_clusters = clustering.filtered(2);
  std::printf("\nrecovered %zu clusters (>= 2 members):\n",
              real_clusters.num_clusters());
  for (std::size_t i = 0; i < real_clusters.num_clusters(); ++i) {
    const auto& c = real_clusters.cluster(i);
    std::printf("  cluster %2zu: %3zu members, e.g. vertices", i, c.size());
    for (std::size_t j = 0; j < std::min<std::size_t>(5, c.size()); ++j) {
      std::printf(" %u", c[j]);
    }
    std::printf("%s\n", c.size() > 5 ? " ..." : "");
  }

  const auto confusion = eval::compare_partitions(
      eval::labels_with_singletons(real_clusters), pg.family);
  std::printf("\nagreement with planted families: PPV %.1f%%  SE %.1f%%\n",
              100.0 * confusion.ppv(), 100.0 * confusion.sensitivity());
  std::printf("device: %.3fs modeled GPU, %.3fs modeled transfers, "
              "%.3fs measured CPU\n",
              report.gpu_seconds, report.h2d_seconds + report.d2h_seconds,
              report.cpu_seconds);
  return 0;
}
