// Shingling in its original habitat: discovering large dense subgraphs in
// web-scale link graphs (Gibson, Kumar & Tomkins, VLDB 2005 — reference
// [9] of the paper). This example clusters a synthetic web-host graph with
// planted link farms using the *overlapping* Phase III mode (connected
// components of G_II, paper §III-B option 1), which the protein pipeline
// does not use — hosts can genuinely belong to several communities.
//
//   ./web_communities [--hosts-per-farm=80] [--farms=15]

#include <cstdio>

#include "core/gpclust.hpp"
#include "core/serial_pclust.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gpclust;
  const util::CliArgs args(argc, argv);
  const std::size_t farms =
      static_cast<std::size_t>(args.get_int("farms", 15));
  const std::size_t hosts =
      static_cast<std::size_t>(args.get_int("hosts-per-farm", 80));

  // A web graph: link farms (dense), a power-law "organic web" background,
  // and a handful of hub hosts participating in several farms.
  graph::EdgeList edges;
  util::Xoshiro256 rng(99);
  const std::size_t n = farms * hosts + 4000;
  for (std::size_t f = 0; f < farms; ++f) {
    const auto base = static_cast<VertexId>(f * hosts);
    for (VertexId i = 0; i < hosts; ++i) {
      for (VertexId j = i + 1; j < hosts; ++j) {
        if (rng.next_double() < 0.4) edges.add(base + i, base + j);
      }
    }
  }
  // Hub hosts: the last 10 organic hosts each join three random farms.
  for (VertexId hub = 0; hub < 10; ++hub) {
    const auto v = static_cast<VertexId>(farms * hosts + hub);
    for (int pick = 0; pick < 3; ++pick) {
      const auto f = rng.next_below(farms);
      for (int link = 0; link < 25; ++link) {
        edges.add(v, static_cast<VertexId>(f * hosts + rng.next_below(hosts)));
      }
    }
  }
  // Organic background links.
  const auto organic = graph::generate_power_law(n, 3.0, 2.2, 5);
  for (std::size_t u = 0; u < organic.num_vertices(); ++u) {
    for (VertexId v : organic.neighbors(static_cast<VertexId>(u))) {
      if (v > u) edges.add(static_cast<VertexId>(u), v);
    }
  }
  const auto web = graph::CsrGraph::from_edge_list(std::move(edges));
  std::printf("web graph: %zu hosts, %zu links, %zu planted link farms\n",
              web.num_vertices(), web.num_edges(), farms);

  // Overlapping-mode Shingling, as Gibson et al. run it.
  device::DeviceContext device(device::DeviceSpec::tesla_k20());
  core::ShinglingParams params;
  params.mode = core::ReportMode::Overlapping;
  params.c1 = 120;
  params.c2 = 60;
  core::GpClust clusterer(device, params);
  const auto communities = clusterer.cluster(web).filtered(hosts / 2);

  std::printf("\nfound %zu dense communities (>= %zu hosts):\n",
              communities.num_clusters(), hosts / 2);
  std::size_t multi_membership = 0;
  std::vector<int> seen(web.num_vertices(), 0);
  for (const auto& community : communities.clusters()) {
    for (VertexId v : community) {
      if (++seen[v] == 2) ++multi_membership;
    }
  }
  util::AsciiTable table({"community", "#hosts"});
  for (std::size_t i = 0; i < communities.num_clusters(); ++i) {
    table.add_row({std::to_string(i),
                   std::to_string(communities.cluster(i).size())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("hosts in more than one community (hubs): %zu — overlap is "
              "allowed in this mode, unlike the protein-family partition.\n",
              multi_membership);
  return 0;
}
