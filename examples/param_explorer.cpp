// Interactive-style parameter exploration: how s (shingle size) and c
// (trial count) trade sensitivity against cluster tightness, the knob the
// paper credits for gpClust's sensitivity edge over GOS ("this higher
// sensitivity is contributed by the high configurable s and c parameters",
// §IV-D). Prints one row per setting over a fixed planted graph.
//
//   ./param_explorer [--vertices-scale=1.0] [--s-list=1,2,3] [--c-list=25,100,200]

#include <cstdio>
#include <sstream>

#include "core/gpclust.hpp"
#include "eval/density.hpp"
#include "eval/partition_metrics.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {
std::vector<long> parse_list(const std::string& csv) {
  std::vector<long> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stol(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace gpclust;
  const util::CliArgs args(argc, argv);
  const auto s_list = parse_list(args.get_string("s-list", "1,2,3"));
  const auto c_list = parse_list(args.get_string("c-list", "25,100,200"));
  const double scale = args.get_double("vertices-scale", 1.0);

  graph::PlantedFamilyConfig cfg;
  cfg.num_families = static_cast<std::size_t>(60 * scale);
  cfg.min_family_size = 10;
  cfg.max_family_size = 120;
  cfg.intra_family_edge_prob = 0.45;  // deliberately sparse families
  cfg.num_singletons = 200;
  cfg.seed = 31;
  const auto pg = graph::generate_planted_families(cfg);
  std::printf("graph: %zu vertices, %zu edges, %zu planted families "
              "(intra-density %.2f)\n\n",
              pg.graph.num_vertices(), pg.graph.num_edges(), pg.num_families,
              cfg.intra_family_edge_prob);

  device::DeviceContext device(device::DeviceSpec::tesla_k20());
  util::AsciiTable table({"s", "c1/c2", "#clusters(>=5)", "PPV", "SE",
                          "avg density", "modeled GPU s"});
  for (long s : s_list) {
    for (long c : c_list) {
      core::ShinglingParams params;
      params.s1 = params.s2 = static_cast<u32>(s);
      params.c1 = static_cast<u32>(c);
      params.c2 = static_cast<u32>(std::max<long>(1, c / 2));
      core::GpClust clusterer(device, params);
      core::GpClustReport report;
      const auto clustering =
          clusterer.cluster(pg.graph, &report).filtered(5);
      const auto conf = eval::compare_partitions(
          eval::labels_with_singletons(clustering), pg.family);
      const auto density = eval::density_stats(pg.graph, clustering);
      table.add_row({std::to_string(s),
                     std::to_string(params.c1) + "/" +
                         std::to_string(params.c2),
                     std::to_string(clustering.num_clusters()),
                     util::AsciiTable::pct(conf.ppv(), 1),
                     util::AsciiTable::pct(conf.sensitivity(), 1),
                     util::AsciiTable::fmt(density.mean(), 2),
                     util::AsciiTable::fmt(report.gpu_seconds, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading the table: larger c recruits more of each family "
              "(SE up, runtime up); larger s demands stricter neighborhood "
              "agreement (PPV/density up, SE down).\n");
  return 0;
}
