// The complete workflow of the paper's §I, starting from raw shotgun DNA:
//
//   synthetic microbial community genomes            [seq::generate_community]
//     -> shotgun reads (few hundred bp, with errors)
//     -> six-frame translation -> ORFs               [seq::find_orfs]
//     -> homology graph: suffix-array maximal-match seeds + Smith-Waterman
//        verification                                 [pGraph's heuristic]
//     -> gpClust dense-subgraph detection
//     -> protein family "core sets" vs the embedded truth
//
//   ./shotgun_to_families [--families=15] [--coverage=3] [--seed=7]

#include <cstdio>
#include <map>

#include "align/homology_graph.hpp"
#include "core/gpclust.hpp"
#include "eval/density.hpp"
#include "eval/partition_metrics.hpp"
#include "seq/community_model.hpp"
#include "seq/orf_finder.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace gpclust;
  const util::CliArgs args(argc, argv);

  // --- 1. Community + shotgun sequencing --------------------------------
  seq::CommunityConfig cfg;
  cfg.families.num_families =
      static_cast<std::size_t>(args.get_int("families", 15));
  cfg.families.min_members = 4;
  cfg.families.max_members = 12;
  cfg.families.substitution_rate = 0.06;
  cfg.families.fragment_min_fraction = 1.0;  // fragmentation comes from reads
  cfg.families.min_ancestor_length = 90;
  cfg.families.max_ancestor_length = 160;
  cfg.num_genomes = 8;
  cfg.coverage = args.get_double("coverage", 3.0);
  cfg.read_length = 450;
  cfg.seed = static_cast<u64>(args.get_int("seed", 7));
  const auto community = seq::generate_community(cfg);
  std::size_t genome_bases = 0;
  for (const auto& g : community.genomes) genome_bases += g.residues.size();
  std::printf("community: %zu genomes (%zu bp), %zu embedded proteins in "
              "%zu families\n",
              community.genomes.size(), genome_bases,
              community.proteins.size(), community.num_families);
  std::printf("shotgun: %zu reads of %zu bp at %.1fx coverage\n",
              community.reads.size(), cfg.read_length, cfg.coverage);

  // --- 2. Six-frame ORF calling ------------------------------------------
  seq::OrfFinderConfig orf_cfg;
  orf_cfg.min_length = 40;
  const auto orfs = seq::find_orfs(community.reads, orf_cfg);
  std::printf("ORFs (6-frame, >= %zu aa): %zu\n", orf_cfg.min_length,
              orfs.size());

  // --- 3. Homology graph with pGraph's maximal-match heuristic ------------
  util::WallTimer timer;
  align::HomologyGraphConfig hcfg;
  hcfg.seed_mode = align::SeedMode::MaximalMatch;
  hcfg.maximal_matches.min_match_length = 12;
  hcfg.num_threads = 1;
  // Opt-in heuristic prefilter (ungapped x-drop on the seed diagonal);
  // off by default because it can change the edge set.
  hcfg.prefilter.enabled = args.get_bool("xdrop-prefilter", false);
  align::HomologyGraphStats hstats;
  const auto graph = align::build_homology_graph(orfs, hcfg, &hstats);
  std::printf("homology graph: %zu SW verifications (%zu score + %zu traced, "
              "%zu pairs prefiltered) -> %zu edges (%.1fs)\n",
              hstats.num_alignments, hstats.num_score_alignments,
              hstats.num_traced_alignments,
              hstats.num_exact_rejects + hstats.num_heuristic_rejects,
              graph.num_edges(), timer.seconds());

  // --- 4. gpClust ---------------------------------------------------------
  device::DeviceContext device(device::DeviceSpec::tesla_k20());
  core::ShinglingParams params;
  params.c1 = 120;
  params.c2 = 60;
  const auto clustering = core::GpClust(device, params).cluster(graph);
  const auto families = clustering.filtered(3);
  std::printf("gpClust: %zu ORF clusters (>= 3 members)\n",
              families.num_clusters());

  // --- 5. Evaluate against the embedded families --------------------------
  // An ORF descends from the family whose protein its read overlapped; we
  // approximate truth by best-matching each clustered ORF to a source
  // protein via substring containment (exact for error-free segments).
  // Simpler robust proxy: two ORFs are "truly related" if their clusters'
  // members predominantly match the same family's proteins. Here we just
  // report cluster purity via the source-protein match.
  std::size_t clustered_orfs = 0, matched_orfs = 0, pure_pairs = 0,
              total_pairs = 0;
  std::vector<int> orf_family(orfs.size(), -1);
  for (std::size_t i = 0; i < orfs.size(); ++i) {
    const auto& residues = orfs[i].residues;
    for (std::size_t p = 0; p < community.proteins.size(); ++p) {
      const auto& protein = community.proteins[p].residues;
      // Overlap check via a 12-mer of the ORF appearing in the protein.
      if (residues.size() >= 12 &&
          protein.find(residues.substr(residues.size() / 2, 12)) !=
              std::string::npos) {
        orf_family[i] = static_cast<int>(community.family[p]);
        break;
      }
    }
  }
  for (const auto& cluster : families.clusters()) {
    std::map<int, std::size_t> votes;
    for (VertexId v : cluster) {
      ++clustered_orfs;
      if (orf_family[v] >= 0) {
        ++matched_orfs;
        ++votes[orf_family[v]];
      }
    }
    for (auto [fam, count] : votes) {
      pure_pairs += count * (count - 1) / 2;
    }
    if (matched_orfs >= 2) {
      std::size_t in_cluster = 0;
      for (VertexId v : cluster) {
        if (orf_family[v] >= 0) ++in_cluster;
      }
      total_pairs += in_cluster * (in_cluster - 1) / 2;
    }
  }
  std::printf("\nclustered ORFs: %zu (%zu traceable to a source family)\n",
              clustered_orfs, matched_orfs);
  if (total_pairs > 0) {
    std::printf("cluster purity (same-family pair fraction): %.1f%%\n",
                100.0 * static_cast<double>(pure_pairs) /
                    static_cast<double>(total_pairs));
  }
  return 0;
}
