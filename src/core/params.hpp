#pragma once
// Parameters of the two-pass Shingling heuristic (paper §III-D):
// default s1=2, c1=200 for the first level and s2=2, c2=100 for the
// second level, chosen by the authors' preliminary empirical tests.

#include "util/common.hpp"
#include "util/prime.hpp"

namespace gpclust::core {

/// How Phase III turns the level-2 shingle graph into clusters
/// (paper §III-B, "Phase III - Reporting dense subgraphs").
enum class ReportMode {
  /// Option 1: connected components of G_II; clusters may overlap.
  Overlapping,
  /// Option 2: union-find over all vertices; a strict partition.
  /// This is the mode the paper uses for all experiments.
  Partition,
};

/// Execution-shape knobs of the CPU-GPU pipeline (DESIGN.md §8): how many
/// device streams the batch scheduler pipelines over, and how many
/// hash-prefix shards the host-side tuple aggregation uses. Neither knob
/// affects the clustering result — the bit-identity invariant (§5.1) holds
/// for every combination — only modeled device time (streams) and measured
/// host time (shards).
struct PipelineParams {
  /// Device streams available to the batch pipeline.
  ///   1  — fully synchronous (the paper's Thrust behavior): every op on
  ///        one stream, makespan == sum of all modeled durations.
  ///   2  — one lane with a dedicated copy stream: D2H copies double-buffer
  ///        behind the next trial's kernels (the legacy `async` mode).
  ///   2L — L lanes, each a (compute, copy) stream pair: up to L batches
  ///        in flight, so batch i's D2H overlaps batch i+1's H2D and
  ///        kernels. Odd counts: the last lane shares one stream for
  ///        compute and copies.
  std::size_t num_streams = 1;

  /// Hash-prefix shards of the CPU tuple aggregation. 1 = the flat gather
  /// sort; >1 = shard-by-shingle-prefix (cache-sized sorts, one scatter
  /// allocation). Values beyond the tuple count waste nothing — empty
  /// shards are skipped.
  u32 agg_shards = 1;

  /// Lane count implied by num_streams (ceil(num_streams / 2)).
  std::size_t num_lanes() const { return num_streams / 2 + num_streams % 2; }

  void validate() const {
    GPCLUST_CHECK(num_streams >= 1, "need at least one device stream");
    GPCLUST_CHECK(agg_shards >= 1, "need at least one aggregation shard");
  }
};

struct ShinglingParams {
  u32 s1 = 2;   ///< shingle size, first level
  u32 c1 = 200; ///< number of random trials, first level
  u32 s2 = 2;   ///< shingle size, second level
  u32 c2 = 100; ///< number of random trials, second level

  /// Seed for the fixed set of random pairs <A_j, B_j>.
  u64 seed = 20130520;

  /// The "big prime number" P of the min-wise permutation v -> (A*v+B)%P.
  /// Must exceed every vertex id in the input graph.
  u64 prime = util::kMersenne61;

  ReportMode mode = ReportMode::Partition;

  /// Clusters smaller than this are still computed, but helpers exist to
  /// filter (the GOS comparison only reports clusters of size >= 20).
  std::size_t min_cluster_size = 1;

  void validate(std::size_t num_vertices) const {
    GPCLUST_CHECK(s1 >= 1 && s2 >= 1, "shingle size must be >= 1");
    GPCLUST_CHECK(c1 >= 1 && c2 >= 1, "trial count must be >= 1");
    GPCLUST_CHECK(prime > num_vertices,
                  "prime must exceed the vertex id universe");
    GPCLUST_CHECK(util::is_prime(prime), "modulus must be prime");
  }
};

}  // namespace gpclust::core
