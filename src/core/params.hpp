#pragma once
// Parameters of the two-pass Shingling heuristic (paper §III-D):
// default s1=2, c1=200 for the first level and s2=2, c2=100 for the
// second level, chosen by the authors' preliminary empirical tests.

#include "util/common.hpp"
#include "util/prime.hpp"

namespace gpclust::core {

/// How Phase III turns the level-2 shingle graph into clusters
/// (paper §III-B, "Phase III - Reporting dense subgraphs").
enum class ReportMode {
  /// Option 1: connected components of G_II; clusters may overlap.
  Overlapping,
  /// Option 2: union-find over all vertices; a strict partition.
  /// This is the mode the paper uses for all experiments.
  Partition,
};

struct ShinglingParams {
  u32 s1 = 2;   ///< shingle size, first level
  u32 c1 = 200; ///< number of random trials, first level
  u32 s2 = 2;   ///< shingle size, second level
  u32 c2 = 100; ///< number of random trials, second level

  /// Seed for the fixed set of random pairs <A_j, B_j>.
  u64 seed = 20130520;

  /// The "big prime number" P of the min-wise permutation v -> (A*v+B)%P.
  /// Must exceed every vertex id in the input graph.
  u64 prime = util::kMersenne61;

  ReportMode mode = ReportMode::Partition;

  /// Clusters smaller than this are still computed, but helpers exist to
  /// filter (the GOS comparison only reports clusters of size >= 20).
  std::size_t min_cluster_size = 1;

  void validate(std::size_t num_vertices) const {
    GPCLUST_CHECK(s1 >= 1 && s2 >= 1, "shingle size must be >= 1");
    GPCLUST_CHECK(c1 >= 1 && c2 >= 1, "trial count must be >= 1");
    GPCLUST_CHECK(prime > num_vertices,
                  "prime must exceed the vertex id universe");
    GPCLUST_CHECK(util::is_prime(prime), "modulus must be prime");
  }
};

}  // namespace gpclust::core
