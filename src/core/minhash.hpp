#pragma once
// The min-wise independent permutation family of Broder et al. [4], as
// instantiated by the paper (§III-B): a fixed set of c random pairs
// <A_j, B_j> defines bijections v -> (A_j * v + B_j) mod P over the id
// universe [0, P). Applying hash j to an adjacency list Gamma(u) yields a
// random permutation whose s smallest images identify a shingle.

#include <vector>

#include "util/common.hpp"
#include "util/prime.hpp"

namespace gpclust::core {

/// One affine permutation v -> (A*v + B) mod P.
struct AffineHash {
  u64 a = 1;
  u64 b = 0;
  u64 p = util::kMersenne61;

  u64 operator()(u64 v) const {
    return (util::mulmod(a, v % p, p) + b) % p;
  }
};

/// The fixed set {<A_j, B_j> | j in [0, c)} for one shingling level.
/// Deterministically derived from (seed, level) so the serial and the
/// device implementations share identical permutations.
class HashFamily {
 public:
  HashFamily(u32 count, u64 prime, u64 seed, u32 level);

  u32 size() const { return static_cast<u32>(hashes_.size()); }
  const AffineHash& operator[](u32 j) const { return hashes_[j]; }

 private:
  std::vector<AffineHash> hashes_;
};

}  // namespace gpclust::core
