#include "core/clustering.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"

namespace gpclust::core {

Clustering::Clustering(std::vector<std::vector<VertexId>> clusters,
                       std::size_t num_vertices)
    : clusters_(std::move(clusters)), num_vertices_(num_vertices) {
  for (const auto& c : clusters_) {
    for (VertexId v : c) {
      GPCLUST_CHECK(v < num_vertices_, "cluster member out of range");
    }
  }
}

std::size_t Clustering::total_members() const {
  std::size_t total = 0;
  for (const auto& c : clusters_) total += c.size();
  return total;
}

Clustering Clustering::filtered(std::size_t min_size) const {
  std::vector<std::vector<VertexId>> kept;
  for (const auto& c : clusters_) {
    if (c.size() >= min_size) kept.push_back(c);
  }
  return Clustering(std::move(kept), num_vertices_);
}

bool Clustering::is_partition() const {
  std::vector<u8> seen(num_vertices_, 0);
  for (const auto& c : clusters_) {
    for (VertexId v : c) {
      if (seen[v]) return false;
      seen[v] = 1;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](u8 s) { return s == 1; });
}

std::vector<u32> Clustering::labels() const {
  GPCLUST_CHECK(is_partition(), "labels() requires a partition");
  std::vector<u32> labels(num_vertices_);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (VertexId v : clusters_[c]) labels[v] = static_cast<u32>(c);
  }
  return labels;
}

void Clustering::normalize() {
  for (auto& c : clusters_) std::sort(c.begin(), c.end());
  std::sort(clusters_.begin(), clusters_.end(),
            [](const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
}

u64 Clustering::digest() const {
  u64 h = util::mix64(num_vertices_);
  for (const auto& c : clusters_) {
    h = util::mix64(h ^ util::mix64(c.size()));
    for (VertexId v : c) h = util::mix64(h ^ v);
  }
  return h;
}

std::string Clustering::summary() const {
  std::size_t largest = 0;
  for (const auto& c : clusters_) largest = std::max(largest, c.size());
  return std::to_string(clusters_.size()) + " clusters over " +
         std::to_string(num_vertices_) + " vertices (largest " +
         std::to_string(largest) + ", members " +
         std::to_string(total_members()) + ")";
}

}  // namespace gpclust::core
