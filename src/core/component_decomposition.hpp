#pragma once
// pClust's divide-and-conquer preprocessing (paper §I-B): "In order to
// process the large scale input graph, connected component detection is
// applied to the input graph to break down the large problem instance
// into subproblems of much smaller size. For each connected component,
// [Shingling is applied] to report clusters."
//
// Shingling never merges vertices from different components (shingles are
// neighborhood samples), so decomposition preserves the result while
// letting each component's pass run on a smaller id universe — and
// components below a size threshold can skip shingling entirely: a
// connected component smaller than the shingle size cannot produce one.

#include <functional>

#include "core/clustering.hpp"
#include "core/params.hpp"
#include "graph/csr_graph.hpp"

namespace gpclust::core {

struct ComponentDecompositionStats {
  std::size_t num_components = 0;
  std::size_t num_shingled_components = 0;  ///< components actually clustered
  std::size_t largest_component = 0;
};

/// Splits g into connected components, relabels each component's vertices
/// into a compact local id space, runs `cluster_component` on every
/// component with more vertices than `min_component_size` (smaller ones
/// are emitted as single clusters — they are already tightly connected at
/// that size), and stitches the per-component clusters back into a global
/// Clustering over g's vertex ids.
///
/// `cluster_component` receives the component subgraph and must return a
/// partition of its (local) vertices — e.g. a SerialShingler or GpClust
/// bound via lambda.
Clustering cluster_by_components(
    const graph::CsrGraph& g,
    const std::function<Clustering(const graph::CsrGraph&)>& cluster_component,
    std::size_t min_component_size = 3,
    ComponentDecompositionStats* stats = nullptr);

/// Extracts the subgraph induced by `vertices` (sorted ascending), with
/// vertices relabeled to 0..vertices.size()-1 in that order.
graph::CsrGraph induced_subgraph(const graph::CsrGraph& g,
                                 const std::vector<VertexId>& vertices);

}  // namespace gpclust::core
