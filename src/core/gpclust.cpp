#include "core/gpclust.hpp"

#include "graph/graph_io.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace gpclust::core {

namespace {

/// Binds the run's tracer to the device context for the duration of the
/// run (and unbinds on any exit path, including exceptions), so modeled
/// ops, transfer bytes and the arena high-water mark land in the tracer.
class ScopedDeviceTracer {
 public:
  ScopedDeviceTracer(device::DeviceContext& ctx, obs::Tracer* tracer)
      : ctx_(ctx), previous_(ctx.tracer()) {
    ctx_.set_tracer(tracer);
  }
  ~ScopedDeviceTracer() { ctx_.set_tracer(previous_); }

  ScopedDeviceTracer(const ScopedDeviceTracer&) = delete;
  ScopedDeviceTracer& operator=(const ScopedDeviceTracer&) = delete;

 private:
  device::DeviceContext& ctx_;
  obs::Tracer* previous_;
};

/// Binds the run's fault plan to the device context for the duration of
/// the run (restoring the previous binding on any exit path), mirroring
/// ScopedDeviceTracer.
class ScopedDeviceFault {
 public:
  ScopedDeviceFault(device::DeviceContext& ctx, fault::FaultPlan* plan)
      : ctx_(ctx), previous_(ctx.fault_plan()) {
    ctx_.set_fault_plan(plan);
  }
  ~ScopedDeviceFault() { ctx_.set_fault_plan(previous_); }

  ScopedDeviceFault(const ScopedDeviceFault&) = delete;
  ScopedDeviceFault& operator=(const ScopedDeviceFault&) = delete;

 private:
  device::DeviceContext& ctx_;
  fault::FaultPlan* previous_;
};

/// Device aggregation under the resilience policy. The tuples are kept
/// intact until the device path succeeds, so a transient fault can retry
/// (with the backoff charged to the modeled timeline) and an unrecoverable
/// fault can degrade to the CPU aggregation — which is shared code with
/// the serial pipeline, so the result stays bit-identical.
BipartiteShingleGraph aggregate_resilient(device::DeviceContext& ctx,
                                          ShingleTuples&& tuples,
                                          const fault::ResiliencePolicy& policy,
                                          u32 agg_shards,
                                          util::MetricsRegistry& reg,
                                          obs::Tracer* tracer,
                                          const std::string& trace_phase) {
  if (!policy.enabled()) {
    return aggregate_tuples_device(ctx, std::move(tuples), 0, &reg, "cpu",
                                   trace_phase);
  }
  int attempt = 0;
  for (;;) {
    try {
      ShingleTuples working = tuples;
      return aggregate_tuples_device(ctx, std::move(working), 0, &reg, "cpu",
                                     trace_phase);
    } catch (const DeviceError& e) {
      const bool transient = dynamic_cast<const TransferError*>(&e) ||
                             dynamic_cast<const KernelError*>(&e);
      if (transient && attempt < policy.max_retries) {
        ++attempt;
        device::charge_retry_backoff(ctx, policy, attempt, trace_phase);
        obs::add_counter(tracer, "retries", 1);
        continue;
      }
      if (!policy.fallback_enabled()) throw;
      obs::add_counter(tracer, "cpu_fallbacks", 1);
      util::ScopedTimer t(reg, "cpu");
      obs::HostSpan span(tracer, trace_phase + ".cpu_fallback");
      return aggregate_tuples_sharded(std::move(tuples), agg_shards);
    }
  }
}

}  // namespace

GpClust::GpClust(device::DeviceContext& ctx, ShinglingParams params,
                 GpClustOptions options)
    : ctx_(ctx), params_(params), options_(options) {}

Clustering GpClust::cluster(const graph::CsrGraph& g, GpClustReport* report) {
  return run(g, report, /*disk_seconds=*/0.0);
}

Clustering GpClust::cluster_file(const std::string& path,
                                 GpClustReport* report) {
  util::WallTimer disk;
  double disk_seconds = 0.0;
  graph::CsrGraph g;
  {
    obs::HostSpan span(options_.tracer, "load");
    g = graph::read_csr_binary(path);
    disk_seconds = disk.seconds();
  }
  return run(g, report, disk_seconds);
}

Clustering GpClust::run(const graph::CsrGraph& g, GpClustReport* report,
                        double disk_seconds) {
  params_.validate(g.num_vertices());
  ctx_.reset_timeline();

  obs::Tracer* tracer = options_.tracer;
  ScopedDeviceTracer bind(ctx_, tracer);
  ScopedDeviceFault bind_fault(ctx_, options_.fault_plan);
  obs::add_counter(tracer, "sequences", g.num_vertices());

  options_.pipeline.validate();
  util::MetricsRegistry reg;
  DevicePassOptions pass_options;
  pass_options.num_streams = options_.pipeline.num_streams;
  pass_options.max_batch_elements = options_.max_batch_elements;
  pass_options.resilience = options_.resilience;

  const HashFamily family1(params_.c1, params_.prime, params_.seed, 1);
  const HashFamily family2(params_.c2, params_.prime, params_.seed, 2);

  DevicePassStats stats1, stats2;

  // First level shingling on the device (Algorithm 2 lines 10-14).
  ShingleTuples tuples1 =
      extract_shingles_device(ctx_, g.offsets(), g.adjacency(), family1,
                              params_.s1, pass_options, &reg, "cpu", &stats1,
                              "pass1");

  // Aggregate the shingle graph (Algorithm 2 line 16) — on the CPU as the
  // paper does, or on the device when the extension flag is set.
  BipartiteShingleGraph gi;
  if (options_.device_aggregation) {
    // Host merge/group time accrues to "cpu" inside; the radix sort is
    // device work on the modeled timeline.
    gi = aggregate_resilient(ctx_, std::move(tuples1), options_.resilience,
                             options_.pipeline.agg_shards, reg, tracer,
                             "aggregate1");
  } else {
    util::ScopedTimer t(reg, "cpu");
    obs::HostSpan span(tracer, "aggregate1");
    gi = aggregate_tuples_sharded(std::move(tuples1),
                                  options_.pipeline.agg_shards);
  }
  obs::add_counter(tracer, "shingles", gi.num_left());

  // Second level shingling on the device (lines 17-21).
  ShingleTuples tuples2 =
      extract_shingles_device(ctx_, gi.offsets, gi.members, family2,
                              params_.s2, pass_options, &reg, "cpu", &stats2,
                              "pass2");

  // Final aggregation + dense subgraph reporting (lines 22-23).
  Clustering result;
  {
    BipartiteShingleGraph gii;
    if (options_.device_aggregation) {
      gii = aggregate_resilient(ctx_, std::move(tuples2), options_.resilience,
                                options_.pipeline.agg_shards, reg, tracer,
                                "aggregate2");
    } else {
      util::ScopedTimer t(reg, "cpu");
      obs::HostSpan span(tracer, "aggregate2");
      gii = aggregate_tuples_sharded(std::move(tuples2),
                                     options_.pipeline.agg_shards);
    }
    obs::add_counter(tracer, "shingles", gii.num_left());
    util::ScopedTimer t(reg, "cpu");
    obs::HostSpan span(tracer, "report");
    result = report_dense_subgraphs(gi, gii, g.num_vertices(), params_.mode);
  }

  if (report != nullptr) {
    report->cpu_seconds = reg.get("cpu");
    report->gpu_seconds = ctx_.gpu_seconds();
    report->h2d_seconds = ctx_.h2d_seconds();
    report->d2h_seconds = ctx_.d2h_seconds();
    report->disk_seconds = disk_seconds;
    report->device_makespan = ctx_.makespan();
    report->gpu_exposed_seconds = ctx_.gpu_exposed_seconds();
    report->h2d_exposed_seconds = ctx_.h2d_exposed_seconds();
    report->d2h_exposed_seconds = ctx_.d2h_exposed_seconds();
    report->pass1 = stats1;
    report->pass2 = stats2;
  }
  return result;
}

}  // namespace gpclust::core
