#include "core/device_shingling.hpp"

#include <unordered_map>

#include "core/shingle.hpp"
#include "device/primitives.hpp"
#include "device/retry.hpp"
#include "obs/trace.hpp"

namespace gpclust::core {

namespace {

/// One pipeline lane: a (compute, copy) stream pair plus the device
/// buffers of the batch currently in flight on it. The buffers outlive the
/// batch's (synchronously executed) computation until the lane is reused —
/// or a fault drains the pipeline — so the arena accounts for every batch
/// the modeled schedule keeps co-resident, exactly like real
/// double-buffered staging would.
struct Lane {
  device::StreamId compute = device::kDefaultStream;
  device::StreamId copy = device::kDefaultStream;

  struct Buffers {
    device::DeviceVector<u32> members;
    device::DeviceVector<u64> offsets;
    device::DeviceVector<u64> perm;
    device::DeviceVector<u64> minima[2];

    bool live() const { return members.context() != nullptr; }
  } buffers;
};

/// Lane layout for a stream budget k: L = ceil(k/2) lanes, lane l
/// computing on stream 2l and copying on stream 2l+1 (the last lane shares
/// one stream when k is odd; k=1 degenerates to the fully synchronous
/// single-stream schedule).
std::vector<Lane> make_lanes(std::size_t num_streams) {
  const std::size_t count = num_streams / 2 + num_streams % 2;
  std::vector<Lane> lanes(count);
  for (std::size_t l = 0; l < count; ++l) {
    lanes[l].compute = static_cast<device::StreamId>(2 * l);
    lanes[l].copy = static_cast<device::StreamId>(
        std::min(2 * l + 1, num_streams - 1));
  }
  return lanes;
}

/// Per-split-list accumulator: s minima per trial, merged piece by piece.
struct PendingList {
  std::vector<u64> minima;  // family.size() * s entries, kNoValue padded
};

using PendingMap = std::unordered_map<u32, PendingList>;

/// A batch's uncommitted side effects. Batches are transactional under
/// resilience: all tuple appends and split-list merges land here first and
/// are applied to the committed state only after every device op of the
/// batch succeeded, so a faulted batch can be retried (or replanned at a
/// smaller size) without double-counting.
struct BatchEffects {
  ShingleTuples tuples;
  PendingMap updated;         ///< overlay over the committed pending map
  std::vector<u32> erased;    ///< lists completed (and removed) this batch
};

void commit_effects(BatchEffects&& fx, ShingleTuples& tuples,
                    PendingMap& pending) {
  for (u32 id : fx.erased) pending.erase(id);
  for (auto& [id, acc] : fx.updated) pending[id] = std::move(acc);
  for (std::size_t i = 0; i < fx.tuples.size(); ++i) {
    tuples.append(fx.tuples.shingle[i], fx.tuples.owner[i]);
  }
}

/// Shared consume step (identical for the device and CPU-fallback paths):
/// fold one segment's per-trial minima into the overlay, emitting a tuple
/// when the segment completes its list for this trial.
void consume_segment_minima(u32 list_id, bool starts, bool ends, u32 trial,
                            u32 num_trials, u32 s,
                            std::span<const u64> seg_minima,
                            const PendingMap& committed, BatchEffects& fx) {
  if (starts && ends) {
    const ShingleId id = hash_shingle(trial, seg_minima);
    GPCLUST_CHECK(id != kNoValue, "complete list shorter than s");
    fx.tuples.append(id, list_id);
    return;
  }
  // Piece of a split list: accumulate across batches (via the overlay).
  auto it = fx.updated.find(list_id);
  if (it == fx.updated.end()) {
    auto cit = committed.find(list_id);
    if (cit != committed.end()) {
      it = fx.updated.emplace(list_id, cit->second).first;
    } else {
      PendingList fresh;
      fresh.minima.assign(static_cast<std::size_t>(num_trials) * s, kNoValue);
      it = fx.updated.emplace(list_id, std::move(fresh)).first;
    }
  }
  std::span<u64> acc{it->second.minima.data() + std::size_t{trial} * s, s};
  merge_minima(acc, seg_minima);
  if (ends) {
    const ShingleId id = hash_shingle(trial, acc);
    GPCLUST_CHECK(id != kNoValue, "split list shorter than s");
    fx.tuples.append(id, list_id);
    if (trial + 1 == num_trials) {
      fx.updated.erase(it);
      fx.erased.push_back(list_id);
    }
  }
}

/// Runs one batch on the device (Algorithm 1 over the batch's segments ×
/// the family's trials). Throws DeviceError/TransferError/KernelError on
/// any (injected or real) fault; in that case no state was committed and
/// the RAII DeviceVectors have already drained the arena.
BatchEffects process_batch_device(device::DeviceContext& ctx,
                                  const Batch& batch,
                                  std::span<const u32> members,
                                  const HashFamily& family, u32 s,
                                  util::MetricsRegistry& reg,
                                  const std::string& cpu_metric,
                                  obs::Tracer* tracer,
                                  const std::string& trace_phase,
                                  const PendingMap& committed, Lane& lane,
                                  std::vector<u32>& staging,
                                  std::vector<u64>& host_minima) {
  BatchEffects fx;
  const u32 c = family.size();
  const std::size_t nsegs = batch.num_segments();
  const std::size_t nelems = batch.num_elements();

  {  // CPU aggregates the batch for the device (Figure 3, step 1).
    util::ScopedTimer t(reg, cpu_metric);
    obs::HostSpan span(tracer, trace_phase + ".stage");
    batch.stage(members, staging);
  }

  // Upload members and segment boundaries once per batch, into the lane's
  // in-flight buffer set (kept allocated until the lane is reused).
  Lane::Buffers& bufs = lane.buffers;
  bufs.members = device::DeviceVector<u32>(ctx, nelems);
  device::copy_to_device<u32>(bufs.members, staging, lane.compute);
  bufs.offsets = device::DeviceVector<u64>(ctx, nsegs + 1);
  device::copy_to_device<u64>(bufs.offsets, batch.seg_offsets, lane.compute);

  bufs.perm = device::DeviceVector<u64>(ctx, nelems);
  // Double-buffered minima so a copy-stream D2H can overlap the next trial.
  bufs.minima[0] = device::DeviceVector<u64>(ctx, nsegs * s);
  bufs.minima[1] = device::DeviceVector<u64>(ctx, nsegs * s);
  double copy_done[2] = {0.0, 0.0};

  const auto seg_span = bufs.offsets.device_span();

  for (u32 j = 0; j < c; ++j) {
    const std::size_t buf = j % 2;
    const AffineHash h = family[j];

    // hi() over every member of the batch (thrust::transform).
    device::transform(
        bufs.members, bufs.perm, [h](u32 v) { return h(v); }, lane.compute);
    // Per-segment sort (thrust-style segmented sort).
    device::segmented_sort(bufs.perm, batch.seg_offsets, lane.compute);
    // Top-s selection into the trial's minima buffer. Must wait until
    // the previous copy out of this buffer has completed.
    const auto perm_span = bufs.perm.device_span();
    const u32 s_local = s;
    const double select_done = device::tabulate(
        bufs.minima[buf],
        [perm_span, seg_span, s_local](std::size_t i) {
          const std::size_t seg = i / s_local;
          const u64 pos = seg_span[seg] + (i % s_local);
          return pos < seg_span[seg + 1] ? perm_span[pos] : kNoValue;
        },
        lane.compute, copy_done[buf]);

    host_minima.resize(nsegs * s);
    copy_done[buf] = device::copy_to_host<u64>(host_minima, bufs.minima[buf],
                                               lane.copy, select_done);

    // CPU consumes the trial's minima: merge split pieces, hash complete
    // lists into tuples (Figure 3, step 2 + the split-list merge).
    util::ScopedTimer t(reg, cpu_metric);
    obs::HostSpan span(tracer, trace_phase + ".consume");
    for (std::size_t seg = 0; seg < nsegs; ++seg) {
      consume_segment_minima(
          batch.seg_list_ids[seg], batch.seg_starts_list[seg] != 0,
          batch.seg_ends_list[seg] != 0, j, c, s,
          {host_minima.data() + seg * s, s}, committed, fx);
    }
  }
  return fx;
}

/// Bit-identical CPU continuation: processes the remaining pieces with the
/// serial s-minima scan (min_s_images produces exactly the sorted
/// front-s the select kernel produces), feeding the same consume step, so
/// partially merged split lists complete correctly.
void process_pieces_cpu(std::span<const ListPiece> pieces,
                        std::span<const u32> members,
                        const HashFamily& family, u32 s,
                        ShingleTuples& tuples, PendingMap& pending) {
  const u32 c = family.size();
  std::vector<u64> minima(s);
  BatchEffects fx;
  for (u32 j = 0; j < c; ++j) {
    for (const ListPiece& piece : pieces) {
      min_s_images({members.data() + piece.global_begin,
                    static_cast<std::size_t>(piece.length)},
                   family[j], s, {minima.data(), s});
      consume_segment_minima(piece.list_id, piece.starts_list,
                             piece.ends_list, j, c, s, {minima.data(), s},
                             pending, fx);
    }
  }
  commit_effects(std::move(fx), tuples, pending);
}

}  // namespace

std::size_t default_batch_elements(const device::DeviceContext& ctx, u32 s,
                                   std::size_t lanes) {
  // Per member element: u32 member + u64 permuted image = 12 bytes. The
  // minima buffers are 2 * num_segments * s * 8 bytes; in the worst case
  // every segment holds a single element, so bound them by 16*s bytes per
  // element. Offsets add 8 bytes per segment. Use half the free memory to
  // leave headroom for the auxiliary structures, split across the lanes
  // whose batches the pipeline keeps co-resident.
  const std::size_t per_element = 12 + 16 * static_cast<std::size_t>(s) + 8;
  const std::size_t budget =
      ctx.arena().available() / (2 * std::max<std::size_t>(1, lanes));
  return std::max<std::size_t>(1, budget / per_element);
}

ShingleTuples extract_shingles_device(device::DeviceContext& ctx,
                                      std::span<const u64> offsets,
                                      std::span<const u32> members,
                                      const HashFamily& family, u32 s,
                                      const DevicePassOptions& options,
                                      util::MetricsRegistry* metrics,
                                      const std::string& cpu_metric,
                                      DevicePassStats* stats,
                                      const std::string& trace_phase) {
  GPCLUST_CHECK(!offsets.empty() && offsets.back() == members.size(),
                "offsets must cover the member array");
  util::MetricsRegistry local;
  util::MetricsRegistry& reg = metrics ? *metrics : local;
  obs::Tracer* tracer = ctx.tracer();
  obs::DevicePhaseScope phase_scope(tracer, trace_phase);

  const std::size_t num_streams = options.num_streams;
  GPCLUST_CHECK(num_streams >= 1, "need at least one device stream");
  ctx.timeline().ensure_streams(num_streams);
  std::vector<Lane> lanes = make_lanes(num_streams);

  const fault::ResiliencePolicy& policy = options.resilience;
  std::size_t cur_max =
      options.max_batch_elements > 0
          ? options.max_batch_elements
          : default_batch_elements(ctx, s, lanes.size());

  std::vector<ListPiece> pieces;
  {
    util::ScopedTimer t(reg, cpu_metric);
    obs::HostSpan span(tracer, trace_phase + ".plan");
    pieces = list_pieces(offsets, s);
  }

  ShingleTuples tuples;
  PendingMap pending;
  std::vector<u32> staging;
  std::vector<u64> host_minima;

  DevicePassStats run_stats;
  run_stats.num_lanes = lanes.size();
  int consecutive_failures = 0;
  bool cpu_mode = false;
  std::size_t next_lane = 0;

  while (!pieces.empty() && !cpu_mode) {
    BatchPlan plan;
    {
      util::ScopedTimer t(reg, cpu_metric);
      obs::HostSpan span(tracer, trace_phase + ".plan");
      plan = plan_batches_from_pieces(pieces, cur_max);
    }

    std::size_t consumed = 0;
    bool replan = false;
    for (const Batch& batch : plan.batches) {
      int attempt = 0;
      Lane& lane = lanes[next_lane];
      for (;;) {
        // Reusing a lane retires its previous in-flight batch: the modeled
        // schedule can no longer overlap that batch, so its device buffers
        // return to the arena before this batch allocates.
        lane.buffers = Lane::Buffers{};
        try {
          BatchEffects fx = process_batch_device(
              ctx, batch, members, family, s, reg, cpu_metric, tracer,
              trace_phase, pending, lane, staging, host_minima);
          {
            util::ScopedTimer t(reg, cpu_metric);
            commit_effects(std::move(fx), tuples, pending);
          }
          for (std::size_t seg = 0; seg < batch.num_segments(); ++seg) {
            if (batch.seg_starts_list[seg] && !batch.seg_ends_list[seg]) {
              ++run_stats.num_split_lists;
            }
          }
          ++run_stats.num_batches;
          consumed += batch.num_elements();
          consecutive_failures = 0;
          next_lane = (next_lane + 1) % lanes.size();
          break;
        } catch (const DeviceError& e) {
          // A fault drains the pipeline: every lane's in-flight buffers are
          // released before the recovery ladder runs, so retries and
          // replans see the arena exactly as a fresh pass would. With one
          // lane nothing else is ever in flight and the ladder below is
          // byte-for-byte the non-pipelined behavior.
          bool others_held = false;
          for (std::size_t l = 0; l < lanes.size(); ++l) {
            if (l != next_lane && lanes[l].buffers.live()) others_held = true;
            lanes[l].buffers = Lane::Buffers{};
          }
          if (others_held) {
            ++run_stats.num_pipeline_drains;
            obs::add_counter(tracer, "pipeline_drains", 1);
          }
          if (!policy.enabled()) throw;
          const bool transient = dynamic_cast<const TransferError*>(&e) ||
                                 dynamic_cast<const KernelError*>(&e);
          if (transient && attempt < policy.max_retries) {
            // Bounded retry of the whole (uncommitted) batch, with the
            // deterministic backoff charged to the faulted lane's compute
            // stream on the modeled timeline.
            ++attempt;
            device::charge_retry_backoff(ctx, policy, attempt, trace_phase,
                                          lane.compute);
            ++run_stats.num_retries;
            obs::add_counter(tracer, "retries", 1);
            continue;
          }
          if (!transient && others_held) {
            // Structural OOM while other batches were co-resident: the
            // drain just returned their memory, so retry at the same size
            // before concluding the batch size itself is the problem.
            continue;
          }
          if (!transient && cur_max > policy.min_batch_elements) {
            // Adaptive batch backoff: halve the batch size and replan the
            // remaining pieces (the split-list merge keeps the partition
            // bit-identical across any re-batching).
            cur_max = std::max(policy.min_batch_elements, cur_max / 2);
            ++run_stats.num_batch_replans;
            obs::add_counter(tracer, "batch_replans", 1);
            replan = true;
            break;
          }
          // Unrecoverable here: retries exhausted or OOM at the batch-size
          // floor. In Fallback mode tolerate up to max_consecutive_failures
          // full re-attempts, then degrade the rest of the pass to the CPU.
          if (!policy.fallback_enabled()) throw;
          ++consecutive_failures;
          if (consecutive_failures >= policy.max_consecutive_failures) {
            cpu_mode = true;
          }
          replan = true;
          break;
        }
      }
      if (replan || cpu_mode) break;
    }
    pieces = remaining_pieces(pieces, consumed);
  }

  if (cpu_mode && !pieces.empty()) {
    run_stats.cpu_fallback = true;
    obs::add_counter(tracer, "cpu_fallbacks", 1);
    util::ScopedTimer t(reg, cpu_metric);
    obs::HostSpan span(tracer, trace_phase + ".cpu_fallback");
    process_pieces_cpu(pieces, members, family, s, tuples, pending);
    pieces.clear();
  }
  GPCLUST_CHECK(pending.empty(), "unfinished split lists after final batch");

  obs::add_counter(tracer, "batches", run_stats.num_batches);
  obs::add_counter(tracer, "tuples", tuples.size());

  if (stats != nullptr) {
    *stats = run_stats;
    stats->num_tuples = tuples.size();
  }
  return tuples;
}

}  // namespace gpclust::core
