#include "core/device_shingling.hpp"

#include <unordered_map>

#include "core/shingle.hpp"
#include "device/primitives.hpp"
#include "obs/trace.hpp"

namespace gpclust::core {

namespace {

/// Streams used by the pass: kernels and H2D on 0, async D2H on 1.
constexpr device::StreamId kComputeStream = 0;
constexpr device::StreamId kCopyStream = 1;

/// Per-split-list accumulator: s minima per trial, merged piece by piece.
struct PendingList {
  std::vector<u64> minima;  // family.size() * s entries, kNoValue padded
};

}  // namespace

std::size_t default_batch_elements(const device::DeviceContext& ctx, u32 s) {
  // Per member element: u32 member + u64 permuted image = 12 bytes. The
  // minima buffers are 2 * num_segments * s * 8 bytes; in the worst case
  // every segment holds a single element, so bound them by 16*s bytes per
  // element. Offsets add 8 bytes per segment. Use half the free memory to
  // leave headroom for the auxiliary structures.
  const std::size_t per_element = 12 + 16 * static_cast<std::size_t>(s) + 8;
  const std::size_t budget = ctx.arena().available() / 2;
  return std::max<std::size_t>(1, budget / per_element);
}

ShingleTuples extract_shingles_device(device::DeviceContext& ctx,
                                      std::span<const u64> offsets,
                                      std::span<const u32> members,
                                      const HashFamily& family, u32 s,
                                      const DevicePassOptions& options,
                                      util::MetricsRegistry* metrics,
                                      const std::string& cpu_metric,
                                      DevicePassStats* stats,
                                      const std::string& trace_phase) {
  GPCLUST_CHECK(!offsets.empty() && offsets.back() == members.size(),
                "offsets must cover the member array");
  util::MetricsRegistry local;
  util::MetricsRegistry& reg = metrics ? *metrics : local;
  obs::Tracer* tracer = ctx.tracer();
  obs::DevicePhaseScope phase_scope(tracer, trace_phase);

  const std::size_t max_batch =
      options.max_batch_elements > 0 ? options.max_batch_elements
                                     : default_batch_elements(ctx, s);

  BatchPlan plan;
  {
    util::ScopedTimer t(reg, cpu_metric);
    obs::HostSpan span(tracer, trace_phase + ".plan");
    plan = plan_batches(offsets, s, max_batch);
  }

  const u32 c = family.size();
  ShingleTuples tuples;
  std::unordered_map<u32, PendingList> pending;
  std::vector<u32> staging;
  std::vector<u64> host_minima;

  for (const Batch& batch : plan.batches) {
    const std::size_t nsegs = batch.num_segments();
    const std::size_t nelems = batch.num_elements();

    {  // CPU aggregates the batch for the device (Figure 3, step 1).
      util::ScopedTimer t(reg, cpu_metric);
      obs::HostSpan span(tracer, trace_phase + ".stage");
      batch.stage(members, staging);
    }

    // Upload members and segment boundaries once per batch.
    device::DeviceVector<u32> d_members(ctx, nelems);
    device::copy_to_device<u32>(d_members, staging, kComputeStream);
    device::DeviceVector<u64> d_offsets(ctx, nsegs + 1);
    device::copy_to_device<u64>(d_offsets, batch.seg_offsets, kComputeStream);

    device::DeviceVector<u64> d_perm(ctx, nelems);
    // Double-buffered minima so an async D2H can overlap the next trial.
    device::DeviceVector<u64> d_minima[2] = {
        device::DeviceVector<u64>(ctx, nsegs * s),
        device::DeviceVector<u64>(ctx, nsegs * s)};
    double copy_done[2] = {0.0, 0.0};

    const auto seg_span = d_offsets.device_span();

    for (u32 j = 0; j < c; ++j) {
      const std::size_t buf = j % 2;
      const AffineHash h = family[j];

      // hi() over every member of the batch (thrust::transform).
      device::transform(
          d_members, d_perm, [h](u32 v) { return h(v); }, kComputeStream);
      // Per-segment sort (thrust-style segmented sort).
      device::segmented_sort(d_perm, batch.seg_offsets, kComputeStream);
      // Top-s selection into the trial's minima buffer. Must wait until
      // the previous copy out of this buffer has completed.
      const auto perm_span = d_perm.device_span();
      const u32 s_local = s;
      const double select_done = device::tabulate(
          d_minima[buf],
          [perm_span, seg_span, s_local](std::size_t i) {
            const std::size_t seg = i / s_local;
            const u64 pos = seg_span[seg] + (i % s_local);
            return pos < seg_span[seg + 1] ? perm_span[pos] : kNoValue;
          },
          kComputeStream, copy_done[buf]);

      host_minima.resize(nsegs * s);
      copy_done[buf] = device::copy_to_host<u64>(
          host_minima, d_minima[buf],
          options.async ? kCopyStream : kComputeStream, select_done);

      // CPU consumes the trial's minima: merge split pieces, hash complete
      // lists into tuples (Figure 3, step 2 + the split-list merge).
      util::ScopedTimer t(reg, cpu_metric);
      obs::HostSpan span(tracer, trace_phase + ".consume");
      for (std::size_t seg = 0; seg < nsegs; ++seg) {
        const u32 list_id = batch.seg_list_ids[seg];
        const bool starts = batch.seg_starts_list[seg] != 0;
        const bool ends = batch.seg_ends_list[seg] != 0;
        std::span<const u64> seg_minima{host_minima.data() + seg * s, s};

        if (starts && ends) {
          const ShingleId id = hash_shingle(j, seg_minima);
          GPCLUST_CHECK(id != kNoValue, "complete list shorter than s");
          tuples.append(id, list_id);
          continue;
        }
        // Piece of a split list: accumulate across batches.
        auto [it, inserted] = pending.try_emplace(list_id);
        if (inserted) {
          it->second.minima.assign(static_cast<std::size_t>(c) * s, kNoValue);
        }
        std::span<u64> acc{it->second.minima.data() + std::size_t{j} * s, s};
        merge_minima(acc, seg_minima);
        if (ends) {
          const ShingleId id = hash_shingle(j, acc);
          GPCLUST_CHECK(id != kNoValue, "split list shorter than s");
          tuples.append(id, list_id);
          if (j + 1 == c) pending.erase(it);
        }
      }
    }
  }
  GPCLUST_CHECK(pending.empty(), "unfinished split lists after final batch");

  obs::add_counter(tracer, "batches", plan.batches.size());
  obs::add_counter(tracer, "tuples", tuples.size());

  if (stats != nullptr) {
    stats->num_batches = plan.batches.size();
    stats->num_split_lists = plan.num_split_lists();
    stats->num_tuples = tuples.size();
  }
  return tuples;
}

}  // namespace gpclust::core
