#pragma once
// The bipartite shingle graph G_I(S, V', E') in adjacency-list form
// (paper §III-B): left nodes are distinct shingles, and each left node's
// list is L(s) — the set of right-side nodes that generated shingle s.
// The CPU-side aggregation that builds it from raw <shingle, owner>
// tuples is the "compute shingle graph" box of the paper's Figure 3.

#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"
#include "util/timer.hpp"

namespace gpclust::core {

/// Raw output of a shingling pass: tuple i says `owner[i]` generated
/// shingle `shingle[i]` during some trial (the trial index is already
/// folded into the shingle id so trials do not mix).
struct ShingleTuples {
  std::vector<ShingleId> shingle;
  std::vector<u32> owner;

  std::size_t size() const { return shingle.size(); }
  void append(ShingleId s, u32 o) {
    shingle.push_back(s);
    owner.push_back(o);
  }
};

/// G_I / G_II in CSR-like form. Left node i owns
/// members[offsets[i] .. offsets[i+1]), sorted ascending and de-duplicated.
struct BipartiteShingleGraph {
  std::vector<u64> offsets;   // num_left + 1 entries
  std::vector<u32> members;   // right-node ids

  std::size_t num_left() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::span<const u32> list(std::size_t i) const {
    return {members.data() + offsets[i], members.data() + offsets[i + 1]};
  }
};

/// Sorts tuples by shingle id and groups equal ids into one left node each
/// ("a sorting is done to gather all vertices that generated each
/// shingle"). Duplicate (shingle, owner) pairs collapse. Consumes the
/// tuples to bound peak memory.
BipartiteShingleGraph aggregate_tuples(ShingleTuples&& tuples);

/// Sharded variant of aggregate_tuples (DESIGN.md §8): scatters the packed
/// tuples by the top bits of the shingle id into `shards` contiguous
/// regions of one allocation (count / prefix-sum / place), sorts each
/// region independently, and groups the concatenation. The shard map
/// floor(shingle * shards / 2^64) is monotone in the shingle id, so the
/// concatenation of sorted shards *is* the globally sorted order and the
/// graph is identical to aggregate_tuples for every shard count. The
/// per-shard sorts are cache-sized at realistic shard counts, which is the
/// entire point — this is measured host time, not modeled device time.
/// `shards` <= 1 degenerates to the flat gather sort.
BipartiteShingleGraph aggregate_tuples_sharded(ShingleTuples&& tuples,
                                               u32 shards);

}  // namespace gpclust::core

// Device-accelerated aggregation lives in a separate header to keep the
// CPU-only path free of device dependencies.
namespace gpclust::device {
class DeviceContext;
}

namespace gpclust::core {

/// Extension beyond the paper (its Figure 3 aggregates on the CPU): the
/// gather sort runs on the device as a batched radix sort_by_key — the
/// same Merrill radix sorting [15] Thrust uses — and only the linear
/// grouping pass stays on the host. Produces a graph identical to
/// aggregate_tuples. `max_batch_elements` = 0 derives the batch size from
/// free device memory; tuples beyond one batch are sorted per batch and
/// merged on the host.
///
/// When `metrics` is given, only the host-side phases (packing, run
/// merging, grouping) accrue wall time under `cpu_metric`; the sort itself
/// is device work and is accounted on the context's modeled timeline, like
/// every other kernel.
/// When a tracer is attached to `ctx`, host-side packing/merging becomes
/// host-measured spans under `trace_phase` and modeled sort/copy ops are
/// attributed to the phase.
BipartiteShingleGraph aggregate_tuples_device(
    device::DeviceContext& ctx, ShingleTuples&& tuples,
    std::size_t max_batch_elements = 0,
    util::MetricsRegistry* metrics = nullptr,
    const std::string& cpu_metric = "cpu",
    const std::string& trace_phase = "aggregate");

}  // namespace gpclust::core
