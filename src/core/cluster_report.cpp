#include "core/cluster_report.hpp"

#include <algorithm>
#include <limits>

#include "graph/union_find.hpp"

namespace gpclust::core {

namespace {

/// Groups first-level shingle indices by G_II connectivity: two S1 nodes
/// are connected iff they co-occur in some second-level shingle's list.
std::vector<std::vector<u32>> s1_components(const BipartiteShingleGraph& gii,
                                            std::size_t num_s1) {
  graph::UnionFind uf(num_s1);
  for (std::size_t t = 0; t < gii.num_left(); ++t) {
    const auto list = gii.list(t);
    for (std::size_t i = 1; i < list.size(); ++i) {
      uf.unite(list[0], list[i]);
    }
  }
  // Only S1 nodes that appear in G_II belong to a component.
  std::vector<u8> present(num_s1, 0);
  for (std::size_t t = 0; t < gii.num_left(); ++t) {
    for (u32 f : gii.list(t)) present[f] = 1;
  }
  constexpr u32 kUnset = std::numeric_limits<u32>::max();
  std::vector<u32> comp_of_root(num_s1, kUnset);
  std::vector<std::vector<u32>> comps;
  for (std::size_t f = 0; f < num_s1; ++f) {
    if (!present[f]) continue;
    const std::size_t r = uf.find(f);
    if (comp_of_root[r] == kUnset) {
      comp_of_root[r] = static_cast<u32>(comps.size());
      comps.emplace_back();
    }
    comps[comp_of_root[r]].push_back(static_cast<u32>(f));
  }
  return comps;
}

}  // namespace

Clustering report_dense_subgraphs(const BipartiteShingleGraph& gi,
                                  const BipartiteShingleGraph& gii,
                                  std::size_t num_vertices, ReportMode mode) {
  for (u32 f : gii.members) {
    GPCLUST_CHECK(f < gi.num_left(), "G_II references unknown S1 shingle");
  }
  const auto comps = s1_components(gii, gi.num_left());

  if (mode == ReportMode::Overlapping) {
    std::vector<std::vector<VertexId>> clusters;
    clusters.reserve(comps.size());
    for (const auto& comp : comps) {
      std::vector<VertexId> cluster;
      for (u32 f : comp) {
        const auto l = gi.list(f);
        cluster.insert(cluster.end(), l.begin(), l.end());
      }
      std::sort(cluster.begin(), cluster.end());
      cluster.erase(std::unique(cluster.begin(), cluster.end()),
                    cluster.end());
      clusters.push_back(std::move(cluster));
    }
    return Clustering(std::move(clusters), num_vertices);
  }

  // Partition mode: union the induced vertex set of every component.
  graph::UnionFind uf(num_vertices);
  for (const auto& comp : comps) {
    VertexId anchor = 0;
    bool have_anchor = false;
    for (u32 f : comp) {
      for (u32 v : gi.list(f)) {
        if (!have_anchor) {
          anchor = v;
          have_anchor = true;
        } else {
          uf.unite(anchor, v);
        }
      }
    }
  }
  const auto labels = uf.component_labels();
  std::vector<std::vector<VertexId>> clusters(uf.num_sets());
  for (std::size_t v = 0; v < num_vertices; ++v) {
    clusters[labels[v]].push_back(static_cast<VertexId>(v));
  }
  return Clustering(std::move(clusters), num_vertices);
}

}  // namespace gpclust::core
