#include "core/batching.hpp"

#include <algorithm>

namespace gpclust::core {

bool Batch::has_split() const {
  for (std::size_t i = 0; i < num_segments(); ++i) {
    if (!seg_starts_list[i] || !seg_ends_list[i]) return true;
  }
  return false;
}

void Batch::stage(std::span<const u32> members,
                  std::vector<u32>& staging) const {
  staging.resize(num_elements());
  for (std::size_t seg = 0; seg < num_segments(); ++seg) {
    const u64 len = seg_offsets[seg + 1] - seg_offsets[seg];
    GPCLUST_CHECK(seg_global_begin[seg] + len <= members.size(),
                  "batch segment out of member range");
    std::copy_n(members.begin() +
                    static_cast<std::ptrdiff_t>(seg_global_begin[seg]),
                len,
                staging.begin() + static_cast<std::ptrdiff_t>(seg_offsets[seg]));
  }
}

std::size_t BatchPlan::total_elements() const {
  std::size_t total = 0;
  for (const auto& b : batches) total += b.num_elements();
  return total;
}

std::size_t BatchPlan::num_split_lists() const {
  std::size_t count = 0;
  for (const auto& b : batches) {
    for (std::size_t i = 0; i < b.num_segments(); ++i) {
      // Count each split list once, at its first piece.
      if (b.seg_starts_list[i] && !b.seg_ends_list[i]) ++count;
    }
  }
  return count;
}

std::vector<ListPiece> list_pieces(std::span<const u64> offsets, u32 s) {
  GPCLUST_CHECK(!offsets.empty(), "offsets must have at least one entry");
  std::vector<ListPiece> pieces;
  const std::size_t num_lists = offsets.size() - 1;
  for (std::size_t i = 0; i < num_lists; ++i) {
    const u64 len = offsets[i + 1] - offsets[i];
    if (len < s) continue;  // cannot produce a shingle; skip entirely
    pieces.push_back({static_cast<u32>(i), offsets[i], len, true, true});
  }
  return pieces;
}

BatchPlan plan_batches_from_pieces(std::span<const ListPiece> pieces,
                                   std::size_t max_batch_elements) {
  GPCLUST_CHECK(max_batch_elements >= 1, "batch capacity must be positive");

  BatchPlan plan;
  Batch current;
  current.seg_offsets.push_back(0);
  std::size_t used = 0;

  auto flush = [&] {
    if (current.num_segments() > 0) {
      plan.batches.push_back(std::move(current));
    }
    current = Batch{};
    current.seg_offsets.push_back(0);
    used = 0;
  };

  for (const ListPiece& piece : pieces) {
    GPCLUST_CHECK(piece.length >= 1, "empty list piece");
    u64 consumed = 0;
    bool first_fragment = true;
    while (consumed < piece.length) {
      if (used == max_batch_elements) flush();
      const u64 take =
          std::min<u64>(piece.length - consumed, max_batch_elements - used);
      current.seg_list_ids.push_back(piece.list_id);
      current.seg_global_begin.push_back(piece.global_begin + consumed);
      current.seg_starts_list.push_back(
          piece.starts_list && first_fragment ? 1 : 0);
      consumed += take;
      current.seg_ends_list.push_back(
          piece.ends_list && consumed == piece.length ? 1 : 0);
      used += take;
      current.seg_offsets.push_back(used);
      first_fragment = false;
    }
  }
  flush();
  return plan;
}

std::vector<ListPiece> remaining_pieces(std::span<const ListPiece> pieces,
                                        std::size_t consumed_elements) {
  std::vector<ListPiece> remaining;
  u64 to_skip = consumed_elements;
  for (const ListPiece& piece : pieces) {
    if (to_skip >= piece.length) {
      to_skip -= piece.length;
      continue;
    }
    ListPiece tail = piece;
    tail.global_begin += to_skip;
    tail.length -= to_skip;
    if (to_skip > 0) tail.starts_list = false;
    to_skip = 0;
    remaining.push_back(tail);
  }
  GPCLUST_CHECK(to_skip == 0, "consumed more elements than planned");
  return remaining;
}

BatchPlan plan_batches(std::span<const u64> offsets, u32 s,
                       std::size_t max_batch_elements) {
  return plan_batches_from_pieces(list_pieces(offsets, s),
                                  max_batch_elements);
}

}  // namespace gpclust::core
