#include "core/batching.hpp"

#include <algorithm>

namespace gpclust::core {

bool Batch::has_split() const {
  for (std::size_t i = 0; i < num_segments(); ++i) {
    if (!seg_starts_list[i] || !seg_ends_list[i]) return true;
  }
  return false;
}

void Batch::stage(std::span<const u32> members,
                  std::vector<u32>& staging) const {
  staging.resize(num_elements());
  for (std::size_t seg = 0; seg < num_segments(); ++seg) {
    const u64 len = seg_offsets[seg + 1] - seg_offsets[seg];
    GPCLUST_CHECK(seg_global_begin[seg] + len <= members.size(),
                  "batch segment out of member range");
    std::copy_n(members.begin() +
                    static_cast<std::ptrdiff_t>(seg_global_begin[seg]),
                len,
                staging.begin() + static_cast<std::ptrdiff_t>(seg_offsets[seg]));
  }
}

std::size_t BatchPlan::total_elements() const {
  std::size_t total = 0;
  for (const auto& b : batches) total += b.num_elements();
  return total;
}

std::size_t BatchPlan::num_split_lists() const {
  std::size_t count = 0;
  for (const auto& b : batches) {
    for (std::size_t i = 0; i < b.num_segments(); ++i) {
      // Count each split list once, at its first piece.
      if (b.seg_starts_list[i] && !b.seg_ends_list[i]) ++count;
    }
  }
  return count;
}

BatchPlan plan_batches(std::span<const u64> offsets, u32 s,
                       std::size_t max_batch_elements) {
  GPCLUST_CHECK(!offsets.empty(), "offsets must have at least one entry");
  GPCLUST_CHECK(max_batch_elements >= 1, "batch capacity must be positive");

  BatchPlan plan;
  Batch current;
  current.seg_offsets.push_back(0);
  std::size_t used = 0;

  auto flush = [&] {
    if (current.num_segments() > 0) {
      plan.batches.push_back(std::move(current));
    }
    current = Batch{};
    current.seg_offsets.push_back(0);
    used = 0;
  };

  const std::size_t num_lists = offsets.size() - 1;
  for (std::size_t i = 0; i < num_lists; ++i) {
    const u64 len = offsets[i + 1] - offsets[i];
    if (len < s) continue;  // cannot produce a shingle; skip entirely

    u64 consumed = 0;
    bool first_piece = true;
    while (consumed < len) {
      if (used == max_batch_elements) flush();
      const u64 take =
          std::min<u64>(len - consumed, max_batch_elements - used);
      current.seg_list_ids.push_back(static_cast<u32>(i));
      current.seg_global_begin.push_back(offsets[i] + consumed);
      current.seg_starts_list.push_back(first_piece ? 1 : 0);
      consumed += take;
      current.seg_ends_list.push_back(consumed == len ? 1 : 0);
      used += take;
      current.seg_offsets.push_back(used);
      first_piece = false;
    }
  }
  flush();
  return plan;
}

}  // namespace gpclust::core
