#include "core/component_decomposition.hpp"

#include <algorithm>

#include "graph/connected_components.hpp"

namespace gpclust::core {

graph::CsrGraph induced_subgraph(const graph::CsrGraph& g,
                                 const std::vector<VertexId>& vertices) {
  GPCLUST_CHECK(std::is_sorted(vertices.begin(), vertices.end()),
                "vertex list must be sorted");
  graph::EdgeList edges(vertices.size());
  for (std::size_t local_u = 0; local_u < vertices.size(); ++local_u) {
    const VertexId u = vertices[local_u];
    GPCLUST_CHECK(u < g.num_vertices(), "vertex outside graph");
    for (VertexId w : g.neighbors(u)) {
      if (w <= u) continue;  // each edge once
      const auto it = std::lower_bound(vertices.begin(), vertices.end(), w);
      if (it != vertices.end() && *it == w) {
        edges.add(static_cast<VertexId>(local_u),
                  static_cast<VertexId>(it - vertices.begin()));
      }
    }
  }
  return graph::CsrGraph::from_edge_list(std::move(edges));
}

Clustering cluster_by_components(
    const graph::CsrGraph& g,
    const std::function<Clustering(const graph::CsrGraph&)>& cluster_component,
    std::size_t min_component_size, ComponentDecompositionStats* stats) {
  const auto cc = graph::connected_components(g);
  const auto groups = cc.groups();

  std::vector<std::vector<VertexId>> clusters;
  std::size_t shingled = 0;
  std::size_t largest = 0;
  for (const auto& component : groups) {
    largest = std::max(largest, component.size());
    if (component.size() <= min_component_size) {
      clusters.push_back(component);  // already a tight group (or singleton)
      continue;
    }
    ++shingled;
    const auto sub = induced_subgraph(g, component);
    const Clustering local = cluster_component(sub);
    GPCLUST_CHECK(local.is_partition(),
                  "component clusterer must return a partition");
    for (const auto& local_cluster : local.clusters()) {
      std::vector<VertexId> global_cluster;
      global_cluster.reserve(local_cluster.size());
      for (VertexId local_v : local_cluster) {
        global_cluster.push_back(component[local_v]);
      }
      clusters.push_back(std::move(global_cluster));
    }
  }

  if (stats != nullptr) {
    stats->num_components = groups.size();
    stats->num_shingled_components = shingled;
    stats->largest_component = largest;
  }
  return Clustering(std::move(clusters), g.num_vertices());
}

}  // namespace gpclust::core
