#pragma once
// Internal helpers shared by the CPU and device tuple-aggregation paths.
// Not part of the public API.

#include <vector>

#include "core/shingle_graph.hpp"

namespace gpclust::core::detail {

/// Packs a tuple into one 128-bit key ordered by (shingle, owner).
inline __uint128_t pack_tuple(ShingleId shingle, u32 owner) {
  return (static_cast<__uint128_t>(shingle) << 32) | owner;
}

/// Moves the tuple arrays into a packed key vector, releasing the inputs.
std::vector<__uint128_t> pack_tuples(ShingleTuples&& tuples);

/// Deduplicates a sorted packed array and groups it into the bipartite
/// shingle graph.
BipartiteShingleGraph group_packed(std::vector<__uint128_t>&& packed);

}  // namespace gpclust::core::detail
