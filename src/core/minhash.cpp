#include "core/minhash.hpp"

#include "util/rng.hpp"

namespace gpclust::core {

HashFamily::HashFamily(u32 count, u64 prime, u64 seed, u32 level) {
  GPCLUST_CHECK(count >= 1, "hash family needs at least one member");
  GPCLUST_CHECK(prime >= 2, "modulus must be at least 2");
  util::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (level + 1)));
  hashes_.reserve(count);
  for (u32 j = 0; j < count; ++j) {
    AffineHash h;
    h.p = prime;
    h.a = 1 + sm.next() % (prime - 1);  // A in [1, P): keeps the map bijective
    h.b = sm.next() % prime;
    hashes_.push_back(h);
  }
}

}  // namespace gpclust::core
