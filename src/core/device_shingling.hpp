#pragma once
// Algorithm 1 of the paper — "Shingling on GPU (D, s, c)" — executed over
// every batch of a pass, plus the CPU-side merge of split adjacency lists.
//
// Per batch: the staged member array is uploaded once; then for each of
// the family's c trials the device runs
//     transform (hash h_j over every member)           [Figure 4, hi()]
//   -> segmented sort (per adjacency-list segment)     [Figure 4]
//   -> select kernel (front s of each segment)         [top-s elements]
// and the s-minima per segment are copied back to the host, which hashes
// them into <shingle, owner> tuples ("it is safe to transfer the generated
// shingles back to the host memory after each iteration").
//
// Stream pipelining (DESIGN.md §8): the pass schedules batches over
// `num_streams` device streams organized as lanes — each lane a
// (compute, copy) stream pair holding one batch in flight, with the
// trial minima double-buffered inside the lane so D2H copies overlap the
// next trial's kernels, and up to lane-count batches co-resident so batch
// i's D2H overlaps batch i+1's H2D and kernels. num_streams=1 is the
// paper's synchronous Thrust behavior; num_streams=2 is one lane with a
// dedicated copy stream (the single-lane overlap engine).

#include "core/batching.hpp"
#include "core/minhash.hpp"
#include "core/params.hpp"
#include "core/shingle_graph.hpp"
#include "device/device_context.hpp"
#include "device/retry.hpp"
#include "fault/resilience.hpp"
#include "util/timer.hpp"

namespace gpclust::core {

struct DevicePassOptions {
  std::size_t max_batch_elements = 0;  ///< 0: derive from device memory

  /// Device streams available to the pipeline scheduler (1 = the paper's
  /// synchronous behavior). See PipelineParams::num_streams.
  std::size_t num_streams = 1;

  /// How the pass reacts to device faults (injected or real): adaptive
  /// batch backoff on OOM, bounded retries for transient transfer/kernel
  /// faults, and (in Fallback mode) bit-identical CPU processing of the
  /// remaining pieces after repeated unrecoverable faults. Faults compose
  /// with the stream pipeline by draining every in-flight batch buffer
  /// before the recovery ladder runs (see DevicePassStats).
  fault::ResiliencePolicy resilience;
};

struct DevicePassStats {
  std::size_t num_batches = 0;
  std::size_t num_split_lists = 0;
  std::size_t num_tuples = 0;
  std::size_t num_lanes = 0;  ///< pipeline lanes used ((streams + 1) / 2)

  // Recovery bookkeeping (all zero on a fault-free run).
  std::size_t num_retries = 0;       ///< transient-fault batch retries
  std::size_t num_batch_replans = 0; ///< OOM-driven batch-size halvings
  std::size_t num_pipeline_drains = 0; ///< faults that flushed in-flight lanes
  bool cpu_fallback = false;         ///< pass finished on the CPU
};

/// Derives the largest safe batch size (in member elements) from the
/// device's free memory, accounting for the member, permutation, offset
/// and double-buffered minima arrays — of `lanes` co-resident batches when
/// the pipeline keeps several in flight.
std::size_t default_batch_elements(const device::DeviceContext& ctx, u32 s,
                                   std::size_t lanes = 1);

/// Runs one full shingling pass on the device over CSR-style lists
/// (left node i owns members[offsets[i]..offsets[i+1])). Produces exactly
/// the tuples extract_shingles_serial would produce, in a different order.
/// CPU-side staging/merging wall time is recorded under `cpu_metric` when
/// `metrics` is non-null. When a tracer is attached to `ctx`, the same
/// CPU sections become host-measured spans under `trace_phase` (".plan",
/// ".stage", ".consume"), modeled device ops are attributed to the phase,
/// and the "batches"/"tuples" counters advance.
ShingleTuples extract_shingles_device(device::DeviceContext& ctx,
                                      std::span<const u64> offsets,
                                      std::span<const u32> members,
                                      const HashFamily& family, u32 s,
                                      const DevicePassOptions& options,
                                      util::MetricsRegistry* metrics = nullptr,
                                      const std::string& cpu_metric = "gpclust.cpu",
                                      DevicePassStats* stats = nullptr,
                                      const std::string& trace_phase = "pass");

}  // namespace gpclust::core
