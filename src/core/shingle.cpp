#include "core/shingle.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace gpclust::core {

void min_s_images(std::span<const VertexId> gamma, const AffineHash& h, u32 s,
                  std::span<u64> out) {
  GPCLUST_CHECK(out.size() >= s, "output span too small");
  std::fill(out.begin(), out.begin() + s, kNoValue);
  for (VertexId v : gamma) {
    u64 value = h(v);
    if (value >= out[s - 1]) continue;
    // Insertion into the sorted s-prefix.
    u32 pos = s - 1;
    while (pos > 0 && out[pos - 1] > value) {
      out[pos] = out[pos - 1];
      --pos;
    }
    out[pos] = value;
  }
}

void min_s_images_heap(std::span<const VertexId> gamma, const AffineHash& h,
                       u32 s, std::span<u64> out) {
  GPCLUST_CHECK(out.size() >= s, "output span too small");
  // Max-heap over the current s smallest values in out[0..s).
  std::fill(out.begin(), out.begin() + s, kNoValue);
  auto heap_begin = out.begin();
  auto heap_end = out.begin() + s;
  std::make_heap(heap_begin, heap_end);  // all kNoValue: already a heap
  for (VertexId v : gamma) {
    const u64 value = h(v);
    if (value >= out[0]) continue;
    std::pop_heap(heap_begin, heap_end);
    *(heap_end - 1) = value;
    std::push_heap(heap_begin, heap_end);
  }
  std::sort_heap(heap_begin, heap_end);
}

void merge_minima(std::span<u64> into, std::span<const u64> other) {
  GPCLUST_CHECK(into.size() == other.size(), "minima arrays differ in size");
  const std::size_t s = into.size();
  std::vector<u64> merged(s, kNoValue);
  std::size_t i = 0, j = 0;
  for (std::size_t k = 0; k < s; ++k) {
    if (j >= s || (i < s && into[i] <= other[j])) {
      merged[k] = into[i++];
    } else {
      merged[k] = other[j++];
    }
  }
  std::copy(merged.begin(), merged.end(), into.begin());
}

ShingleId hash_shingle(u32 trial, std::span<const u64> minima) {
  u64 id = util::mix64(0x5179'6e67'6c65ULL ^ (u64{trial} + 1));
  for (u64 value : minima) {
    if (value == kNoValue) return kNoValue;  // degree < s: no shingle
    id = util::mix64(id ^ util::mix64(value));
  }
  return id;
}

}  // namespace gpclust::core
