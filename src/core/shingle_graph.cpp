#include "core/shingle_graph.hpp"

#include <algorithm>

#include "core/shingle_graph_detail.hpp"
#include "util/parallel_sort.hpp"

namespace gpclust::core {

namespace detail {

BipartiteShingleGraph group_packed(std::vector<__uint128_t>&& packed) {
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());

  BipartiteShingleGraph g;
  g.offsets.push_back(0);
  ShingleId current = 0;
  bool in_group = false;
  for (__uint128_t key : packed) {
    const ShingleId s = static_cast<ShingleId>(key >> 32);
    const u32 o = static_cast<u32>(key & 0xffffffffu);
    if (!in_group || s != current) {
      if (in_group) g.offsets.push_back(g.members.size());  // close group
      current = s;
      in_group = true;
    }
    g.members.push_back(o);
  }
  if (in_group) g.offsets.push_back(g.members.size());
  return g;
}

std::vector<__uint128_t> pack_tuples(ShingleTuples&& tuples) {
  const std::size_t n = tuples.size();
  GPCLUST_CHECK(tuples.owner.size() == n, "tuple arrays out of sync");
  std::vector<__uint128_t> packed(n);
  for (std::size_t i = 0; i < n; ++i) {
    packed[i] = pack_tuple(tuples.shingle[i], tuples.owner[i]);
  }
  tuples.shingle.clear();
  tuples.shingle.shrink_to_fit();
  tuples.owner.clear();
  tuples.owner.shrink_to_fit();
  return packed;
}

}  // namespace detail

BipartiteShingleGraph aggregate_tuples(ShingleTuples&& tuples) {
  // The gather sort is the dominant CPU-side cost at scale; pack the
  // (shingle, owner) pairs into contiguous 128-bit PODs before sorting.
  auto packed = detail::pack_tuples(std::move(tuples));
  util::parallel_sort(packed, util::default_thread_pool());
  return detail::group_packed(std::move(packed));
}

}  // namespace gpclust::core
