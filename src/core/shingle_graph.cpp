#include "core/shingle_graph.hpp"

#include <algorithm>

#include "core/shingle_graph_detail.hpp"
#include "util/parallel_sort.hpp"

namespace gpclust::core {

namespace detail {

BipartiteShingleGraph group_packed(std::vector<__uint128_t>&& packed) {
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());

  BipartiteShingleGraph g;
  g.offsets.push_back(0);
  ShingleId current = 0;
  bool in_group = false;
  for (__uint128_t key : packed) {
    const ShingleId s = static_cast<ShingleId>(key >> 32);
    const u32 o = static_cast<u32>(key & 0xffffffffu);
    if (!in_group || s != current) {
      if (in_group) g.offsets.push_back(g.members.size());  // close group
      current = s;
      in_group = true;
    }
    g.members.push_back(o);
  }
  if (in_group) g.offsets.push_back(g.members.size());
  return g;
}

std::vector<__uint128_t> pack_tuples(ShingleTuples&& tuples) {
  const std::size_t n = tuples.size();
  GPCLUST_CHECK(tuples.owner.size() == n, "tuple arrays out of sync");
  std::vector<__uint128_t> packed(n);
  for (std::size_t i = 0; i < n; ++i) {
    packed[i] = pack_tuple(tuples.shingle[i], tuples.owner[i]);
  }
  tuples.shingle.clear();
  tuples.shingle.shrink_to_fit();
  tuples.owner.clear();
  tuples.owner.shrink_to_fit();
  return packed;
}

}  // namespace detail

BipartiteShingleGraph aggregate_tuples(ShingleTuples&& tuples) {
  // The gather sort is the dominant CPU-side cost at scale; pack the
  // (shingle, owner) pairs into contiguous 128-bit PODs before sorting.
  auto packed = detail::pack_tuples(std::move(tuples));
  util::parallel_sort(packed, util::default_thread_pool());
  return detail::group_packed(std::move(packed));
}

namespace {

/// Monotone multiply-shift bucket map: floor(shingle * shards / 2^64).
/// Shingle ids are (salted) hashes, so they spread uniformly over the u64
/// range and the shards come out balanced without any sampling pass.
inline u32 shard_of(ShingleId shingle, u32 shards) {
  return static_cast<u32>(
      (static_cast<__uint128_t>(shingle) * shards) >> 64);
}

}  // namespace

BipartiteShingleGraph aggregate_tuples_sharded(ShingleTuples&& tuples,
                                               u32 shards) {
  if (shards <= 1) return aggregate_tuples(std::move(tuples));
  const std::size_t n = tuples.size();
  GPCLUST_CHECK(tuples.owner.size() == n, "tuple arrays out of sync");

  // Counting-sort scatter: one histogram pass, a prefix sum, then every
  // tuple placed straight into its shard's region of a single packed
  // allocation — no per-shard vectors, no reallocation.
  std::vector<std::size_t> bounds(static_cast<std::size_t>(shards) + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++bounds[shard_of(tuples.shingle[i], shards) + 1];
  }
  for (u32 sh = 0; sh < shards; ++sh) bounds[sh + 1] += bounds[sh];

  std::vector<__uint128_t> packed(n);
  std::vector<std::size_t> cursor(bounds.begin(), bounds.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const u32 sh = shard_of(tuples.shingle[i], shards);
    packed[cursor[sh]++] = detail::pack_tuple(tuples.shingle[i], tuples.owner[i]);
  }
  tuples.shingle.clear();
  tuples.shingle.shrink_to_fit();
  tuples.owner.clear();
  tuples.owner.shrink_to_fit();

  // Each shard sorts independently (cache-sized working sets); because the
  // shard map is monotone, the concatenation is already globally sorted.
  for (u32 sh = 0; sh < shards; ++sh) {
    std::sort(packed.begin() + static_cast<std::ptrdiff_t>(bounds[sh]),
              packed.begin() + static_cast<std::ptrdiff_t>(bounds[sh + 1]));
  }
  return detail::group_packed(std::move(packed));
}

}  // namespace gpclust::core
