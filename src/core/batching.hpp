#pragma once
// Partitioning of adjacency lists into device-sized batches (paper §III-C:
// "the input graph for the first and second level shingling can be
// partitioned into batches of adjacency lists, and subsequently moved to
// the device memory batch by batch. In case an adjacency list has to be
// split between two batches, a subsequent data aggregation on the CPU side
// will ... merge the different copies of shingles into one correct copy").
//
// Lists shorter than the shingle size s are skipped entirely — they can
// never produce a shingle — so a batch's members are gathered (not sliced)
// from the global member array into a staging buffer before upload.

#include <span>
#include <vector>

#include "util/common.hpp"

namespace gpclust::core {

/// One device batch: a set of segments, each a (piece of a) left node's
/// member list. seg_offsets are relative to the batch staging buffer.
struct Batch {
  std::vector<u64> seg_offsets;       ///< num_segments + 1, starts at 0
  std::vector<u32> seg_list_ids;      ///< global left-node id per segment
  std::vector<u64> seg_global_begin;  ///< source offset in the member array
  std::vector<u8> seg_starts_list;    ///< segment begins its list
  std::vector<u8> seg_ends_list;      ///< segment ends its list

  std::size_t num_segments() const { return seg_list_ids.size(); }
  std::size_t num_elements() const {
    return seg_offsets.empty() ? 0 : seg_offsets.back();
  }
  /// True if any segment is a piece of a split list.
  bool has_split() const;

  /// Gathers this batch's member values into `staging` (resized to fit).
  void stage(std::span<const u32> members, std::vector<u32>& staging) const;
};

struct BatchPlan {
  std::vector<Batch> batches;

  std::size_t total_elements() const;
  std::size_t num_split_lists() const;
};

/// A contiguous run of one list's members still to be shingled. The unit
/// of work the resilient pass driver replans over: after a device fault,
/// the committed prefix of the piece stream is dropped and the remainder
/// is re-batched (possibly at a smaller batch size) or handed to the CPU.
struct ListPiece {
  u32 list_id = 0;
  u64 global_begin = 0;  ///< offset into the member array
  u64 length = 0;
  bool starts_list = true;  ///< piece begins its list
  bool ends_list = true;    ///< piece ends its list
};

/// One piece per list with >= s members (lists shorter than s can never
/// produce a shingle and are skipped, as plan_batches does).
std::vector<ListPiece> list_pieces(std::span<const u64> offsets, u32 s);

/// Plans batches over explicit pieces; pieces longer than
/// max_batch_elements are split, fragment flags derived from the piece's.
/// plan_batches(offsets, s, m) == plan_batches_from_pieces(list_pieces(
/// offsets, s), m), so replanning a full piece set is bit-identical to the
/// direct plan.
BatchPlan plan_batches_from_pieces(std::span<const ListPiece> pieces,
                                   std::size_t max_batch_elements);

/// The piece stream left after the first `consumed_elements` elements
/// (in piece order) have been committed: fully consumed pieces are
/// dropped; a partially consumed piece keeps its tail with
/// starts_list=false. `consumed_elements` must not exceed the total.
std::vector<ListPiece> remaining_pieces(std::span<const ListPiece> pieces,
                                        std::size_t consumed_elements);

/// Plans batches over CSR-style lists. Lists with fewer than s members are
/// skipped; lists longer than max_batch_elements are split across batches.
/// Requires max_batch_elements >= 1.
BatchPlan plan_batches(std::span<const u64> offsets, u32 s,
                       std::size_t max_batch_elements);

}  // namespace gpclust::core
