#pragma once
// Partitioning of adjacency lists into device-sized batches (paper §III-C:
// "the input graph for the first and second level shingling can be
// partitioned into batches of adjacency lists, and subsequently moved to
// the device memory batch by batch. In case an adjacency list has to be
// split between two batches, a subsequent data aggregation on the CPU side
// will ... merge the different copies of shingles into one correct copy").
//
// Lists shorter than the shingle size s are skipped entirely — they can
// never produce a shingle — so a batch's members are gathered (not sliced)
// from the global member array into a staging buffer before upload.

#include <span>
#include <vector>

#include "util/common.hpp"

namespace gpclust::core {

/// One device batch: a set of segments, each a (piece of a) left node's
/// member list. seg_offsets are relative to the batch staging buffer.
struct Batch {
  std::vector<u64> seg_offsets;       ///< num_segments + 1, starts at 0
  std::vector<u32> seg_list_ids;      ///< global left-node id per segment
  std::vector<u64> seg_global_begin;  ///< source offset in the member array
  std::vector<u8> seg_starts_list;    ///< segment begins its list
  std::vector<u8> seg_ends_list;      ///< segment ends its list

  std::size_t num_segments() const { return seg_list_ids.size(); }
  std::size_t num_elements() const {
    return seg_offsets.empty() ? 0 : seg_offsets.back();
  }
  /// True if any segment is a piece of a split list.
  bool has_split() const;

  /// Gathers this batch's member values into `staging` (resized to fit).
  void stage(std::span<const u32> members, std::vector<u32>& staging) const;
};

struct BatchPlan {
  std::vector<Batch> batches;

  std::size_t total_elements() const;
  std::size_t num_split_lists() const;
};

/// Plans batches over CSR-style lists. Lists with fewer than s members are
/// skipped; lists longer than max_batch_elements are split across batches.
/// Requires max_batch_elements >= 1.
BatchPlan plan_batches(std::span<const u64> offsets, u32 s,
                       std::size_t max_batch_elements);

}  // namespace gpclust::core
