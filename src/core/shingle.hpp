#pragma once
// Shingle extraction: the s smallest images of an adjacency list under a
// min-wise permutation, and the hashing of that s-subset into an integer
// shingle id (paper §III-B).
//
// Both the serial path (insertion sort over an s-sized array, as pClust
// does) and the device path (segmented sort + take-front-s, as gpClust's
// Figure 4 does) reduce a list to the same minima vector, so both produce
// bit-identical shingle ids — the central cross-implementation invariant.

#include <span>
#include <vector>

#include "core/minhash.hpp"
#include "util/common.hpp"

namespace gpclust::core {

/// Sentinel for "no value": larger than any permuted value (which are < P).
inline constexpr u64 kNoValue = ~0ULL;

/// Computes the s smallest values of {h(v) : v in gamma} into out[0..s),
/// ascending, padding with kNoValue when gamma.size() < s. Uses the
/// paper's s-sized insertion sort ("the small values of s expected to be
/// used in practice, typically under 10, justify a simple insertion
/// sort-based approach").
void min_s_images(std::span<const VertexId> gamma, const AffineHash& h, u32 s,
                  std::span<u64> out);

/// Reference alternative to min_s_images using a max-heap instead of the
/// insertion sort. Same contract and output. Exists to back the ablation
/// justifying the paper's choice ("the small values of s expected to be
/// used in practice... justify a simple insertion sort-based approach"):
/// for s <= ~10 the branchy heap loses to the insertion scan.
void min_s_images_heap(std::span<const VertexId> gamma, const AffineHash& h,
                       u32 s, std::span<u64> out);

/// Merges two ascending minima arrays (each of length s, kNoValue-padded)
/// into `into`: the s smallest of the union. Used by the CPU to combine
/// the partial results of an adjacency list split across device batches.
void merge_minima(std::span<u64> into, std::span<const u64> other);

/// Hashes an s-minima vector (ascending, kNoValue-padded) plus the trial
/// index into a 64-bit shingle id. Returns kNoValue if fewer than s values
/// are present (the vertex has < s links and generates no shingle).
ShingleId hash_shingle(u32 trial, std::span<const u64> minima);

}  // namespace gpclust::core
