#pragma once
// gpClust — the paper's contribution (Algorithm 2): the CPU-GPU pipeline
// that loads the similarity graph on the host, runs both shingling levels
// on the device batch by batch, aggregates shingle graphs on the CPU, and
// reports dense subgraphs on the CPU.
//
// Produces bit-identical clusters to SerialShingler for the same
// parameters (the tuples are the same set; aggregation and reporting are
// shared code) — enforced by the integration tests.

#include "core/cluster_report.hpp"
#include "core/clustering.hpp"
#include "core/device_shingling.hpp"
#include "core/params.hpp"
#include "core/serial_pclust.hpp"
#include "device/device_context.hpp"
#include "fault/fault_plan.hpp"
#include "graph/csr_graph.hpp"

namespace gpclust::obs {
class Tracer;
}

namespace gpclust::core {

struct GpClustOptions {
  /// Execution shape of the CPU-GPU pipeline (DESIGN.md §8): device
  /// streams for the batch scheduler and hash-prefix shards for the
  /// CPU-side tuple aggregation. Neither knob changes the clustering
  /// result — only modeled device time and measured host time. The shard
  /// count applies to the CPU aggregation path (including the resilience
  /// fallback of device aggregation); the device radix sort is unsharded.
  PipelineParams pipeline;

  /// Cap on member elements per device batch; 0 derives it from free
  /// device memory. Tests use small values to force splits.
  std::size_t max_batch_elements = 0;

  /// Run the shingle-graph gather sort on the device too (radix
  /// sort_by_key; extension beyond the paper's CPU-side aggregation).
  /// Results are identical; the CPU column shrinks and the GPU/transfer
  /// columns grow.
  bool device_aggregation = false;

  /// Deterministic fault injection: when non-null, the plan is bound to
  /// the device context for the duration of the run (alloc/h2d/d2h/kernel
  /// sites fire at their scheduled call indices). The same plan object can
  /// be shared with dist runs for comm-site faults.
  fault::FaultPlan* fault_plan = nullptr;

  /// How the pipeline reacts to device faults (injected or real): see
  /// fault::ResiliencePolicy. Off (the default) propagates the first
  /// fault; Fallback guarantees a bit-identical result to SerialShingler
  /// for any finite fault schedule.
  fault::ResiliencePolicy resilience;

  /// Observability: when non-null, the run records host-measured and
  /// device-modeled phase spans (load, pass1, aggregate1, pass2,
  /// aggregate2, report) and the pipeline counters (sequences, tuples,
  /// shingles, batches, h2d/d2h bytes, arena high-water mark) into this
  /// tracer. The tracer is bound to the device context for the duration of
  /// the run only. Tracing never affects the clustering result.
  obs::Tracer* tracer = nullptr;
};

/// Per-component runtime breakdown in the shape of the paper's Table I.
/// CPU and disk seconds are measured wall time; GPU and transfer seconds
/// come from the device cost model (see DESIGN.md §1).
struct GpClustReport {
  double cpu_seconds = 0.0;       ///< host-side staging/aggregation/report
  double gpu_seconds = 0.0;       ///< modeled kernel time
  double h2d_seconds = 0.0;       ///< modeled Data_c->g
  double d2h_seconds = 0.0;       ///< modeled Data_g->c
  double disk_seconds = 0.0;      ///< measured input-load time (if any)
  double device_makespan = 0.0;   ///< modeled device wall (respects overlap)

  /// Critical-path decomposition of the makespan (the three sum to
  /// device_makespan): modeled seconds each component actually added to
  /// the device wall clock after stream overlap hid the rest. The busy
  /// columns above ignore overlap; busy - exposed is the overlap won.
  double gpu_exposed_seconds = 0.0;
  double h2d_exposed_seconds = 0.0;
  double d2h_exposed_seconds = 0.0;

  DevicePassStats pass1;
  DevicePassStats pass2;

  /// Paper's "Total runtime" analog: CPU + disk + modeled device makespan
  /// (in sync mode the makespan equals gpu + h2d + d2h).
  double total_seconds() const {
    return cpu_seconds + disk_seconds + device_makespan;
  }
};

class GpClust {
 public:
  GpClust(device::DeviceContext& ctx, ShinglingParams params,
          GpClustOptions options = {});

  const ShinglingParams& params() const { return params_; }

  /// Clusters the similarity graph; fills `report` (if non-null) with the
  /// per-component breakdown of this run.
  Clustering cluster(const graph::CsrGraph& g,
                     GpClustReport* report = nullptr);

  /// Convenience: load the graph from a binary CSR file (disk I/O is
  /// measured into the report) and cluster it.
  Clustering cluster_file(const std::string& path,
                          GpClustReport* report = nullptr);

 private:
  Clustering run(const graph::CsrGraph& g, GpClustReport* report,
                 double disk_seconds);

  device::DeviceContext& ctx_;
  ShinglingParams params_;
  GpClustOptions options_;
};

}  // namespace gpclust::core
