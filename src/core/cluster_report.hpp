#pragma once
// Phase III of the Shingling heuristic (paper §III-B): turn the level-2
// shingle graph G_II into clusters of original vertices, in either of the
// paper's two modes.
//
// G_II's left nodes are second-level shingles whose member lists are
// indices of first-level shingles; G_I maps each first-level shingle to
// L(s) — the original vertices that generated it. A connected component of
// G_II therefore induces a vertex set: the union of L(s) over its
// first-level shingles.

#include "core/clustering.hpp"
#include "core/params.hpp"
#include "core/shingle_graph.hpp"

namespace gpclust::core {

/// Reports clusters from the two shingle graphs.
///   gi: first-level shingle graph (left = S1, members = vertex ids)
///   gii: second-level shingle graph (left = S2, members = S1 indices)
///   num_vertices: |V| of the original graph G
///
/// Partition mode: union-find of size n, all vertices start as singleton
/// clusters, each G_II component unions its induced vertex set; the result
/// is a partition of V including size-1 clusters (the paper's choice).
/// Overlapping mode: one (deduplicated) cluster per G_II component;
/// vertices that appear in no component are NOT reported.
Clustering report_dense_subgraphs(const BipartiteShingleGraph& gi,
                                  const BipartiteShingleGraph& gii,
                                  std::size_t num_vertices, ReportMode mode);

}  // namespace gpclust::core
