#include "core/serial_pclust.hpp"

#include <array>

#include "core/shingle.hpp"
#include "obs/trace.hpp"

namespace gpclust::core {

namespace {
constexpr u32 kMaxShingleSize = 64;
}

ShingleTuples extract_shingles_serial(std::span<const u64> offsets,
                                      std::span<const u32> members,
                                      const HashFamily& family, u32 s) {
  GPCLUST_CHECK(!offsets.empty() && offsets.back() == members.size(),
                "offsets must cover the member array");
  GPCLUST_CHECK(s >= 1 && s <= kMaxShingleSize, "unsupported shingle size");
  const std::size_t num_left = offsets.size() - 1;

  ShingleTuples tuples;
  std::array<u64, kMaxShingleSize> minima;
  for (u32 j = 0; j < family.size(); ++j) {
    const AffineHash& h = family[j];
    for (std::size_t i = 0; i < num_left; ++i) {
      const std::size_t len =
          static_cast<std::size_t>(offsets[i + 1] - offsets[i]);
      if (len < s) continue;  // fewer than s links: no shingle (paper §III-B)
      min_s_images({members.data() + offsets[i], len}, h, s,
                   {minima.data(), s});
      const ShingleId id = hash_shingle(j, {minima.data(), s});
      tuples.append(id, static_cast<u32>(i));
    }
  }
  return tuples;
}

Clustering SerialShingler::cluster(const graph::CsrGraph& g,
                                   util::MetricsRegistry* metrics,
                                   obs::Tracer* tracer) const {
  params_.validate(g.num_vertices());
  util::MetricsRegistry local;
  util::MetricsRegistry& reg = metrics ? *metrics : local;
  obs::add_counter(tracer, "sequences", g.num_vertices());

  const HashFamily family1(params_.c1, params_.prime, params_.seed, 1);
  const HashFamily family2(params_.c2, params_.prime, params_.seed, 2);

  ShingleTuples tuples1;
  {
    util::ScopedTimer t(reg, "serial.shingling1");
    obs::HostSpan span(tracer, "shingling1");
    tuples1 = extract_shingles_serial(g.offsets(), g.adjacency(), family1,
                                      params_.s1);
  }
  obs::add_counter(tracer, "tuples", tuples1.size());
  BipartiteShingleGraph gi;
  {
    util::ScopedTimer t(reg, "serial.aggregate1");
    obs::HostSpan span(tracer, "aggregate1");
    gi = aggregate_tuples(std::move(tuples1));
  }
  obs::add_counter(tracer, "shingles", gi.num_left());

  ShingleTuples tuples2;
  {
    util::ScopedTimer t(reg, "serial.shingling2");
    obs::HostSpan span(tracer, "shingling2");
    tuples2 =
        extract_shingles_serial(gi.offsets, gi.members, family2, params_.s2);
  }
  obs::add_counter(tracer, "tuples", tuples2.size());
  BipartiteShingleGraph gii;
  {
    util::ScopedTimer t(reg, "serial.aggregate2");
    obs::HostSpan span(tracer, "aggregate2");
    gii = aggregate_tuples(std::move(tuples2));
  }
  obs::add_counter(tracer, "shingles", gii.num_left());

  util::ScopedTimer t(reg, "serial.report");
  obs::HostSpan span(tracer, "report");
  return report_dense_subgraphs(gi, gii, g.num_vertices(), params_.mode);
}

}  // namespace gpclust::core
