#pragma once
// The serial Shingling implementation (pClust, Wu & Kalyanaraman 2008) —
// the baseline every speedup in the paper's Table I is measured against.
// Two shingling passes with an s-sized insertion sort per (list, trial),
// aggregation into shingle graphs, and Phase III reporting.

#include "core/cluster_report.hpp"
#include "core/clustering.hpp"
#include "core/minhash.hpp"
#include "core/params.hpp"
#include "core/shingle_graph.hpp"
#include "graph/csr_graph.hpp"
#include "util/timer.hpp"

namespace gpclust::obs {
class Tracer;
}

namespace gpclust::core {

/// Serial shingle extraction over generic CSR-style lists: left node i owns
/// members[offsets[i] .. offsets[i+1]). For each of the family's trials,
/// every list with >= s elements contributes one <shingle, i> tuple.
ShingleTuples extract_shingles_serial(std::span<const u64> offsets,
                                      std::span<const u32> members,
                                      const HashFamily& family, u32 s);

/// pClust: the complete serial pipeline.
class SerialShingler {
 public:
  explicit SerialShingler(ShinglingParams params) : params_(params) {}

  const ShinglingParams& params() const { return params_; }

  /// Clusters the similarity graph. When `metrics` is provided, wall time
  /// is recorded under "serial.shingling1", "serial.aggregate1",
  /// "serial.shingling2", "serial.aggregate2", "serial.report" — the
  /// profile the paper uses to show ~80% of serial time is in shingling.
  /// When `tracer` is provided, the same phases are recorded as
  /// host-measured spans ("shingling1", "aggregate1", ...) plus the
  /// "sequences"/"tuples"/"shingles" counters; every span of a serial run
  /// is host-measured (there is no device).
  Clustering cluster(const graph::CsrGraph& g,
                     util::MetricsRegistry* metrics = nullptr,
                     obs::Tracer* tracer = nullptr) const;

 private:
  ShinglingParams params_;
};

}  // namespace gpclust::core
