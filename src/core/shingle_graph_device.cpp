#include <algorithm>

#include "core/shingle_graph.hpp"
#include "core/shingle_graph_detail.hpp"
#include "device/radix_sort.hpp"
#include "obs/trace.hpp"

namespace gpclust::core {

BipartiteShingleGraph aggregate_tuples_device(device::DeviceContext& ctx,
                                              ShingleTuples&& tuples,
                                              std::size_t max_batch_elements,
                                              util::MetricsRegistry* metrics,
                                              const std::string& cpu_metric,
                                              const std::string& trace_phase) {
  util::MetricsRegistry local;
  util::MetricsRegistry& reg = metrics ? *metrics : local;
  obs::Tracer* tracer = ctx.tracer();
  obs::DevicePhaseScope phase_scope(tracer, trace_phase);
  const std::size_t n = tuples.size();
  GPCLUST_CHECK(tuples.owner.size() == n, "tuple arrays out of sync");

  std::size_t batch = max_batch_elements;
  if (batch == 0) {
    // Per tuple on the device: shingle u64 + owner u32, doubled for the
    // radix scratch arrays; keep half the free memory in reserve.
    batch = std::max<std::size_t>(1, ctx.arena().available() / 2 / 24);
  }

  // Sort each device-sized chunk by (shingle, owner) on the device, then
  // merge the sorted chunks on the host.
  std::vector<__uint128_t> merged;
  merged.reserve(n);
  std::vector<std::size_t> run_bounds = {0};

  std::vector<u64> shingles_h;
  std::vector<u32> owners_h;
  for (std::size_t begin = 0; begin < n; begin += batch) {
    const std::size_t count = std::min(batch, n - begin);

    device::DeviceVector<u64> d_shingles(ctx, count);
    device::DeviceVector<u32> d_owners(ctx, count);
    device::copy_to_device<u64>(
        d_shingles, {tuples.shingle.data() + begin, count});
    device::copy_to_device<u32>(d_owners,
                                {tuples.owner.data() + begin, count});

    // Least-significant key first: a stable radix pass over the owners,
    // then over the shingles, yields (shingle, owner) order.
    device::radix_sort_by_key(d_owners, d_shingles);
    device::radix_sort_by_key(d_shingles, d_owners);

    shingles_h.resize(count);
    owners_h.resize(count);
    device::copy_to_host<u64>(shingles_h, d_shingles);
    device::copy_to_host<u32>(owners_h, d_owners);

    util::ScopedTimer t(reg, cpu_metric);
    obs::HostSpan span(tracer, trace_phase + ".pack");
    for (std::size_t i = 0; i < count; ++i) {
      merged.push_back(detail::pack_tuple(shingles_h[i], owners_h[i]));
    }
    run_bounds.push_back(merged.size());
  }
  tuples.shingle.clear();
  tuples.shingle.shrink_to_fit();
  tuples.owner.clear();
  tuples.owner.shrink_to_fit();

  // Pairwise-merge the sorted runs.
  util::ScopedTimer t(reg, cpu_metric);
  obs::HostSpan span(tracer, trace_phase + ".merge");
  while (run_bounds.size() > 2) {
    std::vector<std::size_t> next = {0};
    for (std::size_t i = 2; i < run_bounds.size(); i += 2) {
      std::inplace_merge(
          merged.begin() + static_cast<std::ptrdiff_t>(run_bounds[i - 2]),
          merged.begin() + static_cast<std::ptrdiff_t>(run_bounds[i - 1]),
          merged.begin() + static_cast<std::ptrdiff_t>(run_bounds[i]));
      next.push_back(run_bounds[i]);
    }
    if (run_bounds.size() % 2 == 0) next.push_back(run_bounds.back());
    run_bounds = std::move(next);
  }
  return detail::group_packed(std::move(merged));
}

}  // namespace gpclust::core
