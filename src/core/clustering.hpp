#pragma once
// The result type of pClust/gpClust: a set of clusters of vertex ids.
// In Partition mode clusters are disjoint and cover every vertex; in
// Overlapping mode a vertex may appear in several clusters.

#include <string>
#include <vector>

#include "util/common.hpp"

namespace gpclust::core {

class Clustering {
 public:
  Clustering() = default;
  Clustering(std::vector<std::vector<VertexId>> clusters,
             std::size_t num_vertices);

  std::size_t num_clusters() const { return clusters_.size(); }
  std::size_t num_vertices() const { return num_vertices_; }
  const std::vector<std::vector<VertexId>>& clusters() const {
    return clusters_;
  }
  const std::vector<VertexId>& cluster(std::size_t i) const {
    return clusters_.at(i);
  }

  /// Total membership entries (= num_vertices for a partition).
  std::size_t total_members() const;

  /// Clusters with size >= min_size, preserving order. (The GOS study only
  /// reports clusters of size >= 20; Table III/IV comparisons use this.)
  Clustering filtered(std::size_t min_size) const;

  /// True iff every vertex appears in exactly one cluster.
  bool is_partition() const;

  /// Per-vertex cluster labels; requires is_partition().
  std::vector<u32> labels() const;

  /// Sorts members within clusters and clusters by (descending size,
  /// ascending first member) for deterministic comparison and output.
  void normalize();

  /// Deterministic content digest; equal clusterings hash equal after
  /// normalize(). Used by the serial==device equivalence tests.
  u64 digest() const;

  std::string summary() const;

 private:
  std::vector<std::vector<VertexId>> clusters_;
  std::size_t num_vertices_ = 0;
};

}  // namespace gpclust::core
