#include "dist/comm.hpp"

#include <exception>
#include <thread>

#include "util/logging.hpp"

namespace gpclust::dist {

namespace {

/// True when the exception is a secondary failure: a bystander rank woken
/// by World::abort after some other rank already died. Those must not
/// shadow the originating error when run_ranks rethrows.
bool is_abort_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const CommError& e) {
    return e.op() == "abort";
  } catch (...) {
    return false;
  }
}

}  // namespace

void run_ranks(std::size_t num_ranks,
               const std::function<void(Communicator&)>& fn,
               const RankRunOptions& options) {
  GPCLUST_CHECK(num_ranks >= 1, "need at least one rank");
  World world(num_ranks);
  world.set_fault_plan(options.fault_plan);
  world.set_resilience(options.resilience);
  world.set_tracer(options.tracer);

  std::vector<std::exception_ptr> errors(num_ranks);
  std::vector<std::thread> threads;
  threads.reserve(num_ranks);
  for (RankId r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, r] {
      Communicator comm(world, r);
      try {
        fn(comm);
      } catch (const CommError&) {
        errors[r] = std::current_exception();
        world.abort();
      } catch (const std::exception& e) {
        // Wrap foreign exceptions so the failure keeps its rank identity.
        errors[r] = std::make_exception_ptr(
            CommError(r, "rank_main", e.what()));
        world.abort();
      } catch (...) {
        errors[r] = std::make_exception_ptr(
            CommError(r, "rank_main", "unknown exception"));
        world.abort();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Rethrow the originating failure; bystander aborts only if nothing else.
  std::exception_ptr primary, secondary;
  for (RankId r = 0; r < num_ranks; ++r) {
    if (!errors[r]) continue;
    if (is_abort_error(errors[r])) {
      if (!secondary) secondary = errors[r];
    } else if (!primary) {
      primary = errors[r];
    }
  }
  const std::exception_ptr error = primary ? primary : secondary;
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const CommError& e) {
      util::log_warn() << "dist: rank " << e.rank() << " failed in "
                       << e.op() << ": " << e.what();
      obs::add_counter(options.tracer, "rank_failures", 1);
      throw;
    } catch (const std::exception& e) {
      util::log_warn() << "dist: rank failed: " << e.what();
      obs::add_counter(options.tracer, "rank_failures", 1);
      throw;
    }
  }
}

}  // namespace gpclust::dist
