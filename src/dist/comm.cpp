#include "dist/comm.hpp"

#include <exception>
#include <thread>

namespace gpclust::dist {

void run_ranks(std::size_t num_ranks,
               const std::function<void(Communicator&)>& fn) {
  GPCLUST_CHECK(num_ranks >= 1, "need at least one rank");
  World world(num_ranks);
  std::vector<std::exception_ptr> errors(num_ranks);
  std::vector<std::thread> threads;
  threads.reserve(num_ranks);
  for (RankId r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&world, &fn, &errors, r] {
      Communicator comm(world, r);
      try {
        fn(comm);
      } catch (...) {
        // NOTE: a rank failing mid-collective leaves peers blocked, as a
        // crashed MPI rank would; callers must not throw between matching
        // collective calls.
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace gpclust::dist
