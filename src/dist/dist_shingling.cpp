#include "dist/dist_shingling.hpp"

#include <algorithm>

#include "core/cluster_report.hpp"
#include "core/minhash.hpp"
#include "core/serial_pclust.hpp"
#include "core/shingle.hpp"
#include "core/shingle_graph.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace gpclust::dist {

namespace {

using core::BipartiteShingleGraph;
using core::HashFamily;
using core::ShingleTuples;

/// Shingle extraction over the block of lists [lo, hi) of a shared
/// CSR-style structure; owners are global left-node ids.
ShingleTuples extract_block(std::span<const u64> offsets,
                            std::span<const u32> members,
                            const HashFamily& family, u32 s, std::size_t lo,
                            std::size_t hi, u64 owner_base = 0) {
  ShingleTuples tuples;
  std::vector<u64> minima(s);
  for (u32 j = 0; j < family.size(); ++j) {
    const core::AffineHash& h = family[j];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t len =
          static_cast<std::size_t>(offsets[i + 1] - offsets[i]);
      if (len < s) continue;
      core::min_s_images({members.data() + offsets[i], len}, h, s,
                         {minima.data(), s});
      const ShingleId id = core::hash_shingle(j, {minima.data(), s});
      tuples.append(id, static_cast<u32>(owner_base + i));
    }
  }
  return tuples;
}

/// Exchanges tuples so that shingle id S lands on rank S % size.
ShingleTuples exchange_by_shingle(Communicator& comm, ShingleTuples&& tuples) {
  const std::size_t ranks = comm.size();
  std::vector<std::vector<u64>> shingle_out(ranks);
  std::vector<std::vector<u32>> owner_out(ranks);
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    const auto dst = static_cast<RankId>(tuples.shingle[i] % ranks);
    shingle_out[dst].push_back(tuples.shingle[i]);
    owner_out[dst].push_back(tuples.owner[i]);
  }
  tuples = ShingleTuples{};
  const auto shingle_in = comm.all_to_all(shingle_out, /*tag=*/10);
  const auto owner_in = comm.all_to_all(owner_out, /*tag=*/11);

  ShingleTuples received;
  for (RankId s = 0; s < ranks; ++s) {
    GPCLUST_CHECK(shingle_in[s].size() == owner_in[s].size(),
                  "tuple exchange out of sync");
    for (std::size_t i = 0; i < shingle_in[s].size(); ++i) {
      received.append(shingle_in[s][i], owner_in[s][i]);
    }
  }
  return received;
}

/// Gathers per-rank bipartite pieces at the root, concatenated in rank
/// order (matching the global id assignment).
BipartiteShingleGraph gather_pieces(Communicator& comm,
                                    const BipartiteShingleGraph& local,
                                    int tag_base) {
  std::vector<u64> sizes;
  sizes.reserve(local.num_left());
  for (std::size_t i = 0; i < local.num_left(); ++i) {
    sizes.push_back(local.offsets[i + 1] - local.offsets[i]);
  }
  const auto all_sizes = comm.gather_to_root(sizes, 0, tag_base);
  const auto all_members = comm.gather_to_root(local.members, 0, tag_base + 1);

  BipartiteShingleGraph full;
  if (comm.rank() == 0) {
    full.offsets.reserve(all_sizes.size() + 1);
    full.offsets.push_back(0);
    for (u64 size : all_sizes) full.offsets.push_back(full.offsets.back() + size);
    full.members = all_members;
    GPCLUST_CHECK(full.offsets.back() == full.members.size(),
                  "gathered shingle graph inconsistent");
  }
  return full;
}

/// Block bounds of rank r over n items.
std::pair<std::size_t, std::size_t> block_of(std::size_t n, RankId r,
                                             std::size_t ranks) {
  const std::size_t chunk = (n + ranks - 1) / ranks;
  const std::size_t lo = std::min(n, r * chunk);
  return {lo, std::min(n, lo + chunk)};
}

}  // namespace

core::Clustering distributed_cluster(const graph::CsrGraph& g,
                                     const core::ShinglingParams& params,
                                     std::size_t num_ranks, DistStats* stats,
                                     obs::Tracer* tracer,
                                     fault::FaultPlan* fault_plan,
                                     fault::ResiliencePolicy resilience) {
  params.validate(g.num_vertices());
  GPCLUST_CHECK(num_ranks >= 1, "need at least one rank");
  obs::add_counter(tracer, "sequences", g.num_vertices());

  // Rank-down handling: a down rank never comes up. Without resilience
  // that is fatal; with it the run is re-sharded over the survivors (the
  // clustering is bit-identical for any rank count, so reassignment is
  // exactly "run with fewer ranks").
  std::size_t down = 0;
  std::size_t live = num_ranks;
  if (fault_plan != nullptr) {
    std::size_t first_down = num_ranks;
    for (std::size_t r = 0; r < num_ranks; ++r) {
      if (fault_plan->is_rank_down(r)) {
        ++down;
        if (first_down == num_ranks) first_down = r;
      }
    }
    if (down > 0) {
      if (!resilience.enabled()) {
        throw CommError(first_down, "rank_down",
                        "rank marked down by fault plan (resilience off)");
      }
      live = num_ranks - down;
      if (live == 0) {
        throw CommError(first_down, "rank_down",
                        "every rank marked down; nothing to reassign to");
      }
      util::log_warn() << "dist: " << down << " rank(s) down, reassigning "
                       << "shards across " << live << " surviving rank(s)";
      obs::add_counter(tracer, "rank_reassignments", down);
    }
  }

  core::Clustering result;
  u64 exchanged1 = 0, exchanged2 = 0;

  obs::HostSpan ensemble_span(tracer, "dist.cluster");
  run_ranks(live, [&](Communicator& comm) {
    const HashFamily family1(params.c1, params.prime, params.seed, 1);
    const HashFamily family2(params.c2, params.prime, params.seed, 2);

    // ---- Pass I over the shared input graph -----------------------------
    const auto [lo, hi] = block_of(g.num_vertices(), comm.rank(), comm.size());
    ShingleTuples local =
        extract_block(g.offsets(), g.adjacency(), family1, params.s1, lo, hi);
    ShingleTuples mine = exchange_by_shingle(comm, std::move(local));
    const u64 pass1_count = comm.all_reduce_sum(mine.size());

    // Local aggregation of my shingle range; global S1 ids by prefix sum.
    BipartiteShingleGraph gi_local = core::aggregate_tuples(std::move(mine));
    const u64 s1_base = comm.exclusive_prefix_sum(gi_local.num_left());

    // ---- Pass II over my local piece of G_I ------------------------------
    ShingleTuples local2 =
        extract_block(gi_local.offsets, gi_local.members, family2, params.s2,
                      0, gi_local.num_left(), s1_base);
    ShingleTuples mine2 = exchange_by_shingle(comm, std::move(local2));
    const u64 pass2_count = comm.all_reduce_sum(mine2.size());
    BipartiteShingleGraph gii_local = core::aggregate_tuples(std::move(mine2));

    // ---- Gather and report at the root -----------------------------------
    const auto gi_full = gather_pieces(comm, gi_local, 20);
    const auto gii_full = gather_pieces(comm, gii_local, 30);
    if (comm.rank() == 0) {
      result = core::report_dense_subgraphs(gi_full, gii_full,
                                            g.num_vertices(), params.mode);
      exchanged1 = pass1_count;
      exchanged2 = pass2_count;
    }
  }, RankRunOptions{fault_plan, resilience, tracer});

  obs::add_counter(tracer, "tuples", exchanged1 + exchanged2);

  if (stats != nullptr) {
    stats->num_ranks = live;
    stats->tuples_exchanged_pass1 = exchanged1;
    stats->tuples_exchanged_pass2 = exchanged2;
    stats->ranks_reassigned = down;
  }
  return result;
}

}  // namespace gpclust::dist
