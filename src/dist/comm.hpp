#pragma once
// A small in-process message-passing runtime in the style of MPI: a World
// of N ranks, each running on its own thread with a Communicator handle
// providing point-to-point send/recv and the collectives the distributed
// shingling implementation needs (barrier, all-to-all, gather, broadcast,
// all-reduce). This is the substrate standing in for the MPI clusters of
// the paper's lineage (pGraph ran on thousands of distributed-memory
// processors [25]; pClust was ported to distributed memory in [18]).
//
// Messages are typed POD vectors; matching is by (source, tag) with FIFO
// order per (source, destination, tag) channel, like MPI's non-overtaking
// guarantee.

#include <atomic>
#include <condition_variable>
#include <functional>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/resilience.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace gpclust::dist {

using RankId = std::size_t;

/// Typed communication failure: carries the rank it happened on and the
/// operation ("send", "recv", "barrier", "rank_down", "rank_main" for a
/// wrapped foreign exception, "abort" for a peer-failure unblock). Derives
/// std::runtime_error so untyped handlers still catch it.
class CommError : public std::runtime_error {
 public:
  CommError(RankId rank, std::string op, const std::string& detail)
      : std::runtime_error("rank " + std::to_string(rank) + " " + op + ": " +
                           detail),
        rank_(rank),
        op_(std::move(op)) {}

  RankId rank() const { return rank_; }
  const std::string& op() const { return op_; }

 private:
  RankId rank_;
  std::string op_;
};

namespace detail {

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  // (source, tag) -> FIFO of raw payloads.
  std::map<std::pair<RankId, int>, std::deque<std::vector<u8>>> queues;
};

struct BarrierState {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t waiting = 0;
  u64 generation = 0;
};

}  // namespace detail

/// Shared state of one rank group. Construct once, hand to every rank.
class World {
 public:
  explicit World(std::size_t num_ranks) : mailboxes_(num_ranks) {
    GPCLUST_CHECK(num_ranks >= 1, "world needs at least one rank");
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  std::size_t size() const { return mailboxes_.size(); }

  /// Fault-injection / resilience bindings, shared by every rank. Set them
  /// before the rank threads start; the plan's send/recv schedules fire at
  /// global call indices across all ranks.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }
  fault::FaultPlan* fault_plan() const { return fault_plan_; }
  void set_resilience(const fault::ResiliencePolicy& policy) {
    resilience_ = policy;
  }
  const fault::ResiliencePolicy& resilience() const { return resilience_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Marks the world dead and wakes every rank blocked in recv/barrier so
  /// a failed rank cannot leave its peers deadlocked: woken ranks throw
  /// CommError instead of waiting forever. Idempotent; callable from any
  /// thread.
  void abort() {
    aborted_.store(true, std::memory_order_release);
    for (auto& box : mailboxes_) {
      std::lock_guard lock(box.mutex);
      box.cv.notify_all();
    }
    std::lock_guard lock(barrier_.mutex);
    barrier_.cv.notify_all();
  }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

 private:
  friend class Communicator;
  std::vector<detail::Mailbox> mailboxes_;
  detail::BarrierState barrier_;
  fault::FaultPlan* fault_plan_ = nullptr;
  fault::ResiliencePolicy resilience_;
  obs::Tracer* tracer_ = nullptr;
  std::atomic<bool> aborted_{false};
};

/// Per-rank handle. Not thread-safe across callers; each rank thread owns
/// exactly one.
class Communicator {
 public:
  Communicator(World& world, RankId rank) : world_(world), rank_(rank) {
    GPCLUST_CHECK(rank < world.size(), "rank out of range");
  }

  RankId rank() const { return rank_; }
  std::size_t size() const { return world_.size(); }

  /// Sends a typed payload to `dst` (self-sends are allowed). Non-blocking
  /// (buffered, like MPI_Bsend).
  template <typename T>
  void send(RankId dst, int tag, const std::vector<T>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    GPCLUST_CHECK(dst < size(), "destination rank out of range");
    check_alive("send");
    maybe_inject(fault::FaultSite::Send, "send");
    std::vector<u8> bytes(payload.size() * sizeof(T));
    // Empty payloads are legal messages; memcpy requires non-null pointers
    // even for zero bytes.
    if (!bytes.empty()) {
      std::memcpy(bytes.data(), payload.data(), bytes.size());
    }
    auto& box = world_.mailboxes_[dst];
    {
      std::lock_guard lock(box.mutex);
      box.queues[{rank_, tag}].push_back(std::move(bytes));
    }
    box.cv.notify_all();
  }

  /// Blocks until a message with the given source and tag arrives.
  template <typename T>
  std::vector<T> recv(RankId src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    GPCLUST_CHECK(src < size(), "source rank out of range");
    check_alive("recv");
    maybe_inject(fault::FaultSite::Recv, "recv");
    auto& box = world_.mailboxes_[rank_];
    std::unique_lock lock(box.mutex);
    auto& queue = box.queues[{src, tag}];
    // Also wake on world abort: a message that will never arrive (its
    // sender died) must become an error, not a deadlock.
    box.cv.wait(lock, [&] { return !queue.empty() || world_.aborted(); });
    if (queue.empty()) {
      throw CommError(rank_, "abort", "peer rank failed while receiving");
    }
    std::vector<u8> bytes = std::move(queue.front());
    queue.pop_front();
    lock.unlock();
    GPCLUST_CHECK(bytes.size() % sizeof(T) == 0, "payload size mismatch");
    std::vector<T> payload(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(payload.data(), bytes.data(), bytes.size());
    }
    return payload;
  }

  /// Non-blocking probe+receive: if a message with the given source and
  /// tag is already queued, moves it into `out` and returns true;
  /// otherwise returns false without waiting. Faults are only injected
  /// when a message is actually dequeued — an empty poll is not a
  /// communication event, so a fault schedule cannot be burned down by
  /// spinning. Used by the sharded serving tier's server loop to drain a
  /// batch of requests without committing to a blocking recv per peer.
  template <typename T>
  bool try_recv(RankId src, int tag, std::vector<T>& out) {
    static_assert(std::is_trivially_copyable_v<T>);
    GPCLUST_CHECK(src < size(), "source rank out of range");
    check_alive("recv");
    auto& box = world_.mailboxes_[rank_];
    {
      std::lock_guard lock(box.mutex);
      const auto it = box.queues.find({src, tag});
      if (it == box.queues.end() || it->second.empty()) return false;
    }
    // A message is waiting and this rank is the queue's only consumer, so
    // the blocking recv below returns immediately (and runs the usual
    // fault-injection hook).
    out = recv<T>(src, tag);
    return true;
  }

  /// All ranks must call; returns when every rank has arrived.
  void barrier() {
    check_alive("barrier");
    auto& b = world_.barrier_;
    std::unique_lock lock(b.mutex);
    const u64 my_generation = b.generation;
    if (++b.waiting == size()) {
      b.waiting = 0;
      ++b.generation;
      b.cv.notify_all();
      return;
    }
    b.cv.wait(lock,
              [&] { return b.generation != my_generation || world_.aborted(); });
    if (b.generation == my_generation) {
      throw CommError(rank_, "abort", "peer rank failed at barrier");
    }
  }

  /// Personalized all-to-all: outgoing[d] goes to rank d; returns
  /// incoming[s] from rank s. Every rank must call with size() buckets.
  template <typename T>
  std::vector<std::vector<T>> all_to_all(
      const std::vector<std::vector<T>>& outgoing, int tag = kAllToAllTag) {
    GPCLUST_CHECK(outgoing.size() == size(), "need one bucket per rank");
    for (RankId d = 0; d < size(); ++d) send(d, tag, outgoing[d]);
    std::vector<std::vector<T>> incoming(size());
    for (RankId s = 0; s < size(); ++s) incoming[s] = recv<T>(s, tag);
    return incoming;
  }

  /// Root receives the concatenation of every rank's payload in rank
  /// order; non-roots receive an empty vector.
  template <typename T>
  std::vector<T> gather_to_root(const std::vector<T>& payload,
                                RankId root = 0, int tag = kGatherTag) {
    send(root, tag, payload);
    std::vector<T> all;
    if (rank_ == root) {
      for (RankId s = 0; s < size(); ++s) {
        auto part = recv<T>(s, tag);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }

  /// Root's payload is distributed to every rank.
  template <typename T>
  std::vector<T> broadcast(const std::vector<T>& payload, RankId root = 0,
                           int tag = kBroadcastTag) {
    if (rank_ == root) {
      for (RankId d = 0; d < size(); ++d) send(d, tag, payload);
    }
    return recv<T>(root, tag);
  }

  /// Sum of every rank's value, available on all ranks.
  u64 all_reduce_sum(u64 value, int tag = kReduceTag) {
    const auto all = gather_to_root(std::vector<u64>{value}, 0, tag);
    u64 total = 0;
    if (rank_ == 0) {
      for (u64 v : all) total += v;
    }
    return broadcast(std::vector<u64>{total}, 0, tag)[0];
  }

  /// Exclusive prefix sum over rank order (rank r gets sum of values of
  /// ranks < r), available on all ranks.
  u64 exclusive_prefix_sum(u64 value, int tag = kScanTag) {
    const auto all = gather_to_root(std::vector<u64>{value}, 0, tag);
    std::vector<u64> prefixes(size(), 0);
    if (rank_ == 0) {
      u64 running = 0;
      for (RankId r = 0; r < size(); ++r) {
        prefixes[r] = running;
        running += all[r];
      }
    }
    return broadcast(prefixes, 0, tag)[rank_];
  }

 private:
  static constexpr int kAllToAllTag = -1;
  static constexpr int kGatherTag = -2;
  static constexpr int kBroadcastTag = -3;
  static constexpr int kReduceTag = -4;
  static constexpr int kScanTag = -5;

  /// Once a peer has died, every further comm op on a live rank fails
  /// fast instead of queueing work for (or waiting on) a corpse.
  void check_alive(const char* op) const {
    if (world_.aborted()) {
      throw CommError(rank_, "abort",
                      std::string("peer rank failed before ") + op);
    }
  }

  /// Fault-plan hook on send/recv entry. Under the world's resilience
  /// policy a scheduled fault is retried in place (each retry re-asks the
  /// plan, advancing the site's call counter, so a finite schedule is
  /// always defeated eventually); with resilience off — or once the retry
  /// budget is spent against a persistent schedule — it becomes a typed
  /// CommError on this rank.
  void maybe_inject(fault::FaultSite site, const char* op) {
    fault::FaultPlan* plan = world_.fault_plan();
    if (plan == nullptr) return;
    const fault::ResiliencePolicy& policy = world_.resilience();
    int attempt = 0;
    while (plan->should_fault(site)) {
      obs::add_counter(world_.tracer(), "faults_injected", 1);
      if (!policy.enabled() || attempt >= policy.max_retries) {
        throw CommError(rank_, op,
                        std::string("injected communication fault at ") +
                            std::string(site_name(site)) + " call " +
                            std::to_string(plan->calls(site) - 1));
      }
      ++attempt;
      obs::add_counter(world_.tracer(), "comm_retries", 1);
    }
  }

  World& world_;
  RankId rank_;
};

/// Fault/resilience bindings for one rank ensemble (see World setters).
struct RankRunOptions {
  fault::FaultPlan* fault_plan = nullptr;
  fault::ResiliencePolicy resilience;
  obs::Tracer* tracer = nullptr;
};

/// Runs fn(comm) on `num_ranks` threads. A rank that throws aborts the
/// world (waking any peer blocked in recv/barrier, which then throws
/// CommError instead of deadlocking); after all ranks have joined, the
/// originating failure is rethrown — wrapped into a CommError carrying the
/// rank id if it was not already one — in preference to the secondary
/// abort errors of the bystander ranks. Failures are logged and counted
/// ("rank_failures") on options.tracer.
void run_ranks(std::size_t num_ranks,
               const std::function<void(Communicator&)>& fn,
               const RankRunOptions& options = {});

}  // namespace gpclust::dist
