#pragma once
// A small in-process message-passing runtime in the style of MPI: a World
// of N ranks, each running on its own thread with a Communicator handle
// providing point-to-point send/recv and the collectives the distributed
// shingling implementation needs (barrier, all-to-all, gather, broadcast,
// all-reduce). This is the substrate standing in for the MPI clusters of
// the paper's lineage (pGraph ran on thousands of distributed-memory
// processors [25]; pClust was ported to distributed memory in [18]).
//
// Messages are typed POD vectors; matching is by (source, tag) with FIFO
// order per (source, destination, tag) channel, like MPI's non-overtaking
// guarantee.

#include <condition_variable>
#include <functional>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "util/common.hpp"

namespace gpclust::dist {

using RankId = std::size_t;

namespace detail {

struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  // (source, tag) -> FIFO of raw payloads.
  std::map<std::pair<RankId, int>, std::deque<std::vector<u8>>> queues;
};

struct BarrierState {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t waiting = 0;
  u64 generation = 0;
};

}  // namespace detail

/// Shared state of one rank group. Construct once, hand to every rank.
class World {
 public:
  explicit World(std::size_t num_ranks) : mailboxes_(num_ranks) {
    GPCLUST_CHECK(num_ranks >= 1, "world needs at least one rank");
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  std::size_t size() const { return mailboxes_.size(); }

 private:
  friend class Communicator;
  std::vector<detail::Mailbox> mailboxes_;
  detail::BarrierState barrier_;
};

/// Per-rank handle. Not thread-safe across callers; each rank thread owns
/// exactly one.
class Communicator {
 public:
  Communicator(World& world, RankId rank) : world_(world), rank_(rank) {
    GPCLUST_CHECK(rank < world.size(), "rank out of range");
  }

  RankId rank() const { return rank_; }
  std::size_t size() const { return world_.size(); }

  /// Sends a typed payload to `dst` (self-sends are allowed). Non-blocking
  /// (buffered, like MPI_Bsend).
  template <typename T>
  void send(RankId dst, int tag, const std::vector<T>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    GPCLUST_CHECK(dst < size(), "destination rank out of range");
    std::vector<u8> bytes(payload.size() * sizeof(T));
    // Empty payloads are legal messages; memcpy requires non-null pointers
    // even for zero bytes.
    if (!bytes.empty()) {
      std::memcpy(bytes.data(), payload.data(), bytes.size());
    }
    auto& box = world_.mailboxes_[dst];
    {
      std::lock_guard lock(box.mutex);
      box.queues[{rank_, tag}].push_back(std::move(bytes));
    }
    box.cv.notify_all();
  }

  /// Blocks until a message with the given source and tag arrives.
  template <typename T>
  std::vector<T> recv(RankId src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    GPCLUST_CHECK(src < size(), "source rank out of range");
    auto& box = world_.mailboxes_[rank_];
    std::unique_lock lock(box.mutex);
    auto& queue = box.queues[{src, tag}];
    box.cv.wait(lock, [&] { return !queue.empty(); });
    std::vector<u8> bytes = std::move(queue.front());
    queue.pop_front();
    lock.unlock();
    GPCLUST_CHECK(bytes.size() % sizeof(T) == 0, "payload size mismatch");
    std::vector<T> payload(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(payload.data(), bytes.data(), bytes.size());
    }
    return payload;
  }

  /// All ranks must call; returns when every rank has arrived.
  void barrier() {
    auto& b = world_.barrier_;
    std::unique_lock lock(b.mutex);
    const u64 my_generation = b.generation;
    if (++b.waiting == size()) {
      b.waiting = 0;
      ++b.generation;
      b.cv.notify_all();
      return;
    }
    b.cv.wait(lock, [&] { return b.generation != my_generation; });
  }

  /// Personalized all-to-all: outgoing[d] goes to rank d; returns
  /// incoming[s] from rank s. Every rank must call with size() buckets.
  template <typename T>
  std::vector<std::vector<T>> all_to_all(
      const std::vector<std::vector<T>>& outgoing, int tag = kAllToAllTag) {
    GPCLUST_CHECK(outgoing.size() == size(), "need one bucket per rank");
    for (RankId d = 0; d < size(); ++d) send(d, tag, outgoing[d]);
    std::vector<std::vector<T>> incoming(size());
    for (RankId s = 0; s < size(); ++s) incoming[s] = recv<T>(s, tag);
    return incoming;
  }

  /// Root receives the concatenation of every rank's payload in rank
  /// order; non-roots receive an empty vector.
  template <typename T>
  std::vector<T> gather_to_root(const std::vector<T>& payload,
                                RankId root = 0, int tag = kGatherTag) {
    send(root, tag, payload);
    std::vector<T> all;
    if (rank_ == root) {
      for (RankId s = 0; s < size(); ++s) {
        auto part = recv<T>(s, tag);
        all.insert(all.end(), part.begin(), part.end());
      }
    }
    return all;
  }

  /// Root's payload is distributed to every rank.
  template <typename T>
  std::vector<T> broadcast(const std::vector<T>& payload, RankId root = 0,
                           int tag = kBroadcastTag) {
    if (rank_ == root) {
      for (RankId d = 0; d < size(); ++d) send(d, tag, payload);
    }
    return recv<T>(root, tag);
  }

  /// Sum of every rank's value, available on all ranks.
  u64 all_reduce_sum(u64 value, int tag = kReduceTag) {
    const auto all = gather_to_root(std::vector<u64>{value}, 0, tag);
    u64 total = 0;
    if (rank_ == 0) {
      for (u64 v : all) total += v;
    }
    return broadcast(std::vector<u64>{total}, 0, tag)[0];
  }

  /// Exclusive prefix sum over rank order (rank r gets sum of values of
  /// ranks < r), available on all ranks.
  u64 exclusive_prefix_sum(u64 value, int tag = kScanTag) {
    const auto all = gather_to_root(std::vector<u64>{value}, 0, tag);
    std::vector<u64> prefixes(size(), 0);
    if (rank_ == 0) {
      u64 running = 0;
      for (RankId r = 0; r < size(); ++r) {
        prefixes[r] = running;
        running += all[r];
      }
    }
    return broadcast(prefixes, 0, tag)[rank_];
  }

 private:
  static constexpr int kAllToAllTag = -1;
  static constexpr int kGatherTag = -2;
  static constexpr int kBroadcastTag = -3;
  static constexpr int kReduceTag = -4;
  static constexpr int kScanTag = -5;

  World& world_;
  RankId rank_;
};

/// Runs fn(comm) on `num_ranks` threads; rethrows the first exception
/// after all ranks have joined.
void run_ranks(std::size_t num_ranks,
               const std::function<void(Communicator&)>& fn);

}  // namespace gpclust::dist
