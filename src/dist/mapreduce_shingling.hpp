#pragma once
// Shingling expressed as two MapReduce jobs — the Hadoop-pClust dataflow
// of Rytsareva et al. [18]:
//
//   Job 1: map(vertex)            -> emit <shingle_1, vertex>  (c1 per vertex)
//          reduce(shingle_1, L)   -> a G_I adjacency list
//   Job 2: map(G_I list)          -> emit <shingle_2, s1-index> (c2 per list)
//          reduce(shingle_2, M)   -> a G_II adjacency list
//   Driver: Phase III reporting over the collected G_I / G_II.
//
// Bit-identical to SerialShingler for the same parameters (tested),
// because the shingle values depend only on the hash family and the
// adjacency content, never on the execution shape.

#include "core/clustering.hpp"
#include "core/params.hpp"
#include "dist/mapreduce.hpp"
#include "graph/csr_graph.hpp"

namespace gpclust::dist {

/// Clusters `g` through the two-job MapReduce dataflow with
/// `num_workers`-way mapper parallelism.
core::Clustering mapreduce_cluster(const graph::CsrGraph& g,
                                   const core::ShinglingParams& params,
                                   std::size_t num_workers = 1);

}  // namespace gpclust::dist
