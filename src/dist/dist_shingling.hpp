#pragma once
// Distributed-memory Shingling over the in-process message-passing runtime
// — the dpClust direction of the paper's lineage ([18] ported pClust to
// distributed memory; [25] ran homology detection on thousands of ranks).
//
// Plan (per pass): each rank extracts shingles from a block of the
// adjacency lists, tuples are exchanged all-to-all keyed by a hash of the
// shingle id (so all owners of one shingle meet on one rank), every rank
// aggregates its shingle range locally, and first-level shingles receive
// globally unique ids via an exclusive prefix sum over local counts.
// After the second pass the root gathers both bipartite shingle graphs
// and reports dense subgraphs exactly like the serial implementation, so
// the final clustering is **identical to SerialShingler's** for the same
// parameters (verified by tests).

#include "core/clustering.hpp"
#include "core/params.hpp"
#include "dist/comm.hpp"
#include "graph/csr_graph.hpp"

namespace gpclust::obs {
class Tracer;
}

namespace gpclust::dist {

struct DistStats {
  std::size_t num_ranks = 0;  ///< live ranks the run actually used
  std::size_t tuples_exchanged_pass1 = 0;
  std::size_t tuples_exchanged_pass2 = 0;
  std::size_t ranks_reassigned = 0;  ///< ranks down per the fault plan
};

/// Clusters `g` with `num_ranks` communicating ranks. The graph is shared
/// read-only across ranks (shared-memory style); only shingle tuples and
/// the gathered shingle graphs travel as messages.
///
/// When `tracer` is provided, the run records one host-measured
/// "dist.cluster" span (wall time of the whole rank ensemble — all rank
/// work is real host time) plus the "sequences"/"tuples" counters (tuples
/// = total exchanged over both passes).
///
/// When `fault_plan` is provided, its send/recv schedules fire inside the
/// comm layer and its rank_down entries mark ranks as never coming up.
/// With `resilience` off any such fault is a CommError; otherwise comm
/// faults are retried per the policy and down ranks are reassigned: the
/// run proceeds on the surviving ranks only, which re-shards every block
/// decomposition — the partition is bit-identical for any rank count, so
/// the result is unchanged ("rank_reassignments" counter records it).
core::Clustering distributed_cluster(const graph::CsrGraph& g,
                                     const core::ShinglingParams& params,
                                     std::size_t num_ranks,
                                     DistStats* stats = nullptr,
                                     obs::Tracer* tracer = nullptr,
                                     fault::FaultPlan* fault_plan = nullptr,
                                     fault::ResiliencePolicy resilience = {});

}  // namespace gpclust::dist
