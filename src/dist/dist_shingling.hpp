#pragma once
// Distributed-memory Shingling over the in-process message-passing runtime
// — the dpClust direction of the paper's lineage ([18] ported pClust to
// distributed memory; [25] ran homology detection on thousands of ranks).
//
// Plan (per pass): each rank extracts shingles from a block of the
// adjacency lists, tuples are exchanged all-to-all keyed by a hash of the
// shingle id (so all owners of one shingle meet on one rank), every rank
// aggregates its shingle range locally, and first-level shingles receive
// globally unique ids via an exclusive prefix sum over local counts.
// After the second pass the root gathers both bipartite shingle graphs
// and reports dense subgraphs exactly like the serial implementation, so
// the final clustering is **identical to SerialShingler's** for the same
// parameters (verified by tests).

#include "core/clustering.hpp"
#include "core/params.hpp"
#include "dist/comm.hpp"
#include "graph/csr_graph.hpp"

namespace gpclust::obs {
class Tracer;
}

namespace gpclust::dist {

struct DistStats {
  std::size_t num_ranks = 0;
  std::size_t tuples_exchanged_pass1 = 0;
  std::size_t tuples_exchanged_pass2 = 0;
};

/// Clusters `g` with `num_ranks` communicating ranks. The graph is shared
/// read-only across ranks (shared-memory style); only shingle tuples and
/// the gathered shingle graphs travel as messages.
///
/// When `tracer` is provided, the run records one host-measured
/// "dist.cluster" span (wall time of the whole rank ensemble — all rank
/// work is real host time) plus the "sequences"/"tuples" counters (tuples
/// = total exchanged over both passes).
core::Clustering distributed_cluster(const graph::CsrGraph& g,
                                     const core::ShinglingParams& params,
                                     std::size_t num_ranks,
                                     DistStats* stats = nullptr,
                                     obs::Tracer* tracer = nullptr);

}  // namespace gpclust::dist
