#pragma once
// A minimal in-process MapReduce engine — the other branch of the paper's
// pClust parallelization lineage: Rytsareva et al. [18] implemented
// Shingling on Hadoop MapReduce ("the OpenMP implementation was
// significantly faster than the Hadoop implementation due to the
// expensive disk I/O operations involved in the Hadoop platform"); this
// engine expresses the same dataflow shape (map -> shuffle/group-by-key
// -> reduce) without the disk.
//
// Deterministic: reducers see keys in sorted order and each key's values
// in emission order (mapper-index-major), so jobs are reproducible
// regardless of worker count.

#include <algorithm>
#include <functional>
#include <numeric>
#include <vector>

#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace gpclust::dist {

struct MapReduceConfig {
  std::size_t num_workers = 1;  ///< mapper parallelism (thread pool size)
};

/// Runs a MapReduce job over `inputs`.
///   map_fn(index, input, emit)       — calls emit(key, value) any number
///                                      of times;
///   reduce_fn(key, values)           — called once per distinct key with
///                                      all its values, keys ascending.
/// K must be orderable; V is copied through the shuffle.
template <typename Input, typename K, typename V>
void run_mapreduce(
    const std::vector<Input>& inputs,
    const std::function<void(std::size_t, const Input&,
                             const std::function<void(K, V)>&)>& map_fn,
    const std::function<void(const K&, const std::vector<V>&)>& reduce_fn,
    const MapReduceConfig& config = {}) {
  GPCLUST_CHECK(config.num_workers >= 1, "need at least one worker");

  // --- map phase: per-chunk local emit buffers (no locking) -------------
  const std::size_t workers =
      std::min<std::size_t>(std::max<std::size_t>(1, config.num_workers),
                            std::max<std::size_t>(1, inputs.size()));
  std::vector<std::vector<std::pair<K, V>>> emitted(workers);

  auto map_chunk = [&](std::size_t w, std::size_t lo, std::size_t hi) {
    auto emit = [&](K key, V value) {
      emitted[w].emplace_back(std::move(key), std::move(value));
    };
    for (std::size_t i = lo; i < hi; ++i) map_fn(i, inputs[i], emit);
  };

  if (workers == 1) {
    map_chunk(0, 0, inputs.size());
  } else {
    util::ThreadPool pool(workers);
    const std::size_t chunk = (inputs.size() + workers - 1) / workers;
    std::vector<std::future<void>> futures;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t lo = std::min(inputs.size(), w * chunk);
      const std::size_t hi = std::min(inputs.size(), lo + chunk);
      if (lo >= hi) break;
      futures.push_back(pool.submit([&, w, lo, hi] { map_chunk(w, lo, hi); }));
    }
    for (auto& f : futures) f.get();
  }

  // --- shuffle: concatenate mapper outputs in mapper order, then a stable
  // sort by key keeps each key's values in emission order ----------------
  std::vector<std::pair<K, V>> all;
  std::size_t total = 0;
  for (const auto& part : emitted) total += part.size();
  all.reserve(total);
  for (auto& part : emitted) {
    for (auto& kv : part) all.push_back(std::move(kv));
    part.clear();
  }
  std::stable_sort(all.begin(), all.end(), [](const auto& x, const auto& y) {
    return x.first < y.first;
  });

  // --- reduce phase: one call per key run --------------------------------
  std::size_t begin = 0;
  while (begin < all.size()) {
    std::size_t end = begin + 1;
    while (end < all.size() && !(all[begin].first < all[end].first)) ++end;
    std::vector<V> values;
    values.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      values.push_back(std::move(all[i].second));
    }
    reduce_fn(all[begin].first, values);
    begin = end;
  }
}

}  // namespace gpclust::dist
