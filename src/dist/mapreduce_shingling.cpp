#include "dist/mapreduce_shingling.hpp"

#include <algorithm>

#include "core/cluster_report.hpp"
#include "core/minhash.hpp"
#include "core/shingle.hpp"

namespace gpclust::dist {

namespace {

using core::AffineHash;
using core::BipartiteShingleGraph;
using core::HashFamily;

/// All c shingles of one member list under the family (kNoValue entries
/// are skipped by the caller; lists shorter than s emit nothing).
void emit_shingles(std::span<const u32> members, const HashFamily& family,
                   u32 s, const std::function<void(ShingleId)>& emit) {
  if (members.size() < s) return;
  std::vector<u64> minima(s);
  for (u32 j = 0; j < family.size(); ++j) {
    core::min_s_images(members, family[j], s, minima);
    emit(core::hash_shingle(j, minima));
  }
}

/// One MapReduce shingling job over CSR-style lists: returns the next
/// level's bipartite shingle graph.
BipartiteShingleGraph shingling_job(std::span<const u64> offsets,
                                    std::span<const u32> members,
                                    const HashFamily& family, u32 s,
                                    std::size_t num_workers) {
  const std::size_t num_lists = offsets.empty() ? 0 : offsets.size() - 1;
  std::vector<u32> list_ids(num_lists);
  for (std::size_t i = 0; i < num_lists; ++i) list_ids[i] = static_cast<u32>(i);

  BipartiteShingleGraph out;
  out.offsets.push_back(0);

  MapReduceConfig config;
  config.num_workers = num_workers;
  run_mapreduce<u32, ShingleId, u32>(
      list_ids,
      [&](std::size_t, const u32& list, const std::function<void(ShingleId, u32)>& emit) {
        const std::span<const u32> gamma{
            members.data() + offsets[list],
            static_cast<std::size_t>(offsets[list + 1] - offsets[list])};
        emit_shingles(gamma, family, s,
                      [&](ShingleId id) { emit(id, list); });
      },
      [&](const ShingleId&, const std::vector<u32>& owners) {
        // Reducer builds L(shingle): sorted, de-duplicated owners.
        std::vector<u32> sorted = owners;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
        out.members.insert(out.members.end(), sorted.begin(), sorted.end());
        out.offsets.push_back(out.members.size());
      },
      config);
  return out;
}

}  // namespace

core::Clustering mapreduce_cluster(const graph::CsrGraph& g,
                                   const core::ShinglingParams& params,
                                   std::size_t num_workers) {
  params.validate(g.num_vertices());
  GPCLUST_CHECK(num_workers >= 1, "need at least one worker");

  const HashFamily family1(params.c1, params.prime, params.seed, 1);
  const HashFamily family2(params.c2, params.prime, params.seed, 2);

  const BipartiteShingleGraph gi = shingling_job(
      g.offsets(), g.adjacency(), family1, params.s1, num_workers);
  const BipartiteShingleGraph gii =
      shingling_job(gi.offsets, gi.members, family2, params.s2, num_workers);
  return core::report_dense_subgraphs(gi, gii, g.num_vertices(), params.mode);
}

}  // namespace gpclust::dist
