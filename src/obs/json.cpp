#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

// GCC 12 false-fires -Wmaybe-uninitialized on inlined std::variant copies
// at -O2. Value's special members are defined out-of-line so the noise is
// confined to this one TU, where it can be suppressed without hiding real
// diagnostics anywhere else.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace gpclust::obs::json {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw ParseError("json: " + what + " at offset " + std::to_string(pos));
}

// GCC 12 at -O2 flags the moved-from variant temporaries of this mutually
// recursive parser as maybe-uninitialized (a known std::variant false
// positive); the suppression is scoped to the parser only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(Value::Storage(parse_string()));
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return Value(Value::Storage(true));
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return Value(Value::Storage(false));
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Value(Value::Storage(nullptr));
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(Value::Storage(std::move(obj)));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(Value::Storage(std::move(obj)));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(Value::Storage(std::move(arr)));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(Value::Storage(std::move(arr)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_, "bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (no surrogate-pair handling;
          // the traces we emit never need it).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number");
    return Value(Value::Storage(v));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};
#pragma GCC diagnostic pop

[[noreturn]] void wrong_kind(const char* want) {
  throw ParseError(std::string("json: value is not ") + want);
}

}  // namespace

Value::Value(const Value& other) = default;
Value::Value(Value&& other) noexcept = default;
Value& Value::operator=(const Value& other) = default;
Value& Value::operator=(Value&& other) noexcept = default;
Value::~Value() = default;

bool Value::boolean() const {
  if (!is_bool()) wrong_kind("a bool");
  return std::get<bool>(storage_);
}

double Value::number() const {
  if (!is_number()) wrong_kind("a number");
  return std::get<double>(storage_);
}

const std::string& Value::string() const {
  if (!is_string()) wrong_kind("a string");
  return std::get<std::string>(storage_);
}

const Array& Value::array() const {
  if (!is_array()) wrong_kind("an array");
  return std::get<Array>(storage_);
}

const Object& Value::object() const {
  if (!is_object()) wrong_kind("an object");
  return std::get<Object>(storage_);
}

const Value& Value::at(std::string_view key) const {
  const Object& obj = object();
  auto it = obj.find(std::string(key));
  if (it == obj.end()) {
    throw ParseError("json: missing member '" + std::string(key) + "'");
  }
  return it->second;
}

bool Value::contains(std::string_view key) const {
  return is_object() && object().count(std::string(key)) > 0;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value number(double v) { return Value(Value::Storage(v)); }
Value string(std::string v) { return Value(Value::Storage(std::move(v))); }
Value boolean(bool v) { return Value(Value::Storage(v)); }
Value array(Array items) { return Value(Value::Storage(std::move(items))); }
Value object(Object members) {
  return Value(Value::Storage(std::move(members)));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Integers (the common case for counts) print exactly; everything else
  // gets 12 significant digits — enough for timing data, and stable.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void append_value(std::string& out, const Value& value) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.boolean() ? "true" : "false";
  } else if (value.is_number()) {
    append_number(out, value.number());
  } else if (value.is_string()) {
    append_escaped(out, value.string());
  } else if (value.is_array()) {
    out += '[';
    bool first = true;
    for (const Value& v : value.array()) {
      if (!first) out += ',';
      first = false;
      append_value(out, v);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [key, v] : value.object()) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, key);
      out += ':';
      append_value(out, v);
    }
    out += '}';
  }
}

}  // namespace

std::string dump(const Value& value) {
  std::string out;
  append_value(out, value);
  return out;
}

}  // namespace gpclust::obs::json
