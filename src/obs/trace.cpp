#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "util/table.hpp"

namespace gpclust::obs {

namespace {

/// Phase key of a span name: everything before the first '.'.
std::string_view phase_of(std::string_view name) {
  const auto dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

bool in_phase(std::string_view name, std::string_view phase) {
  if (!name.starts_with(phase)) return false;
  return name.size() == phase.size() || name[phase.size()] == '.';
}

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string_view domain_label(Domain d) {
  return d == Domain::HostMeasured ? "host_measured" : "device_modeled";
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

void Tracer::add_counter(std::string_view name, u64 delta) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Tracer::raise_counter(std::string_view name, u64 value) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = std::max(it->second, value);
  }
}

u64 Tracer::counter(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, u64> Tracer::counters() const {
  std::lock_guard lock(mu_);
  return {counters_.begin(), counters_.end()};
}

void Tracer::record_latency(std::string_view name, double seconds) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second.record(seconds);
}

void Tracer::merge_latency(std::string_view name, const Histogram& samples) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  it->second += samples;
}

Histogram Tracer::latency_histogram(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::map<std::string, Histogram> Tracer::latency_histograms() const {
  std::lock_guard lock(mu_);
  return {histograms_.begin(), histograms_.end()};
}

double Tracer::host_now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Tracer::record_host_span(std::string name, double start_seconds,
                              double duration_seconds, int depth) {
  std::lock_guard lock(mu_);
  events_.push_back(TraceEvent{std::move(name), "cpu", Domain::HostMeasured,
                               start_seconds, duration_seconds, /*track=*/0,
                               depth});
}

void Tracer::record_modeled_op(std::string_view category, double start_seconds,
                               double duration_seconds, std::size_t stream) {
  std::lock_guard lock(mu_);
  std::string name = device_phase_.empty()
                         ? std::string(category)
                         : device_phase_ + "." + std::string(category);
  events_.push_back(TraceEvent{std::move(name), std::string(category),
                               Domain::DeviceModeled, start_seconds,
                               duration_seconds, stream, /*depth=*/0});
}

void Tracer::set_device_phase(std::string phase) {
  std::lock_guard lock(mu_);
  device_phase_ = std::move(phase);
}

std::string Tracer::device_phase() const {
  std::lock_guard lock(mu_);
  return device_phase_;
}

HostSeconds Tracer::host_busy() const {
  std::lock_guard lock(mu_);
  HostSeconds total;
  for (const TraceEvent& e : events_) {
    if (e.domain == Domain::HostMeasured && e.depth == 0) {
      total += HostSeconds{e.duration_seconds};
    }
  }
  return total;
}

HostSeconds Tracer::host_total(std::string_view phase) const {
  std::lock_guard lock(mu_);
  HostSeconds total;
  for (const TraceEvent& e : events_) {
    if (e.domain == Domain::HostMeasured && in_phase(e.name, phase)) {
      total += HostSeconds{e.duration_seconds};
    }
  }
  return total;
}

ModeledSeconds Tracer::modeled_busy() const {
  std::lock_guard lock(mu_);
  ModeledSeconds total;
  for (const TraceEvent& e : events_) {
    if (e.domain == Domain::DeviceModeled) {
      total += ModeledSeconds{e.duration_seconds};
    }
  }
  return total;
}

ModeledSeconds Tracer::modeled_total(std::string_view phase) const {
  std::lock_guard lock(mu_);
  ModeledSeconds total;
  for (const TraceEvent& e : events_) {
    if (e.domain == Domain::DeviceModeled && in_phase(e.name, phase)) {
      total += ModeledSeconds{e.duration_seconds};
    }
  }
  return total;
}

ModeledSeconds Tracer::modeled_category_total(std::string_view category) const {
  std::lock_guard lock(mu_);
  ModeledSeconds total;
  for (const TraceEvent& e : events_) {
    if (e.domain == Domain::DeviceModeled && e.category == category) {
      total += ModeledSeconds{e.duration_seconds};
    }
  }
  return total;
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::size_t Tracer::num_events() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

int Tracer::open_host_span() {
  std::lock_guard lock(mu_);
  return open_host_spans_++;
}

void Tracer::close_host_span() {
  std::lock_guard lock(mu_);
  --open_host_spans_;
}

std::string Tracer::summary() const {
  const auto evs = events();

  std::set<std::string> phases;
  for (const TraceEvent& e : evs) phases.emplace(phase_of(e.name));

  util::AsciiTable table(
      {"phase", "host measured (s)", "device modeled (s)"});
  for (const std::string& phase : phases) {
    // Host column: depth-0 spans of the phase (nested spans are detail).
    HostSeconds host;
    ModeledSeconds modeled;
    for (const TraceEvent& e : evs) {
      if (!in_phase(e.name, phase)) continue;
      if (e.domain == Domain::HostMeasured) {
        if (e.depth == 0) host += HostSeconds{e.duration_seconds};
      } else {
        modeled += ModeledSeconds{e.duration_seconds};
      }
    }
    table.add_row({phase, fmt_double(host.value), fmt_double(modeled.value)});
  }

  std::string out = table.render();
  const auto ctrs = counters();
  if (!ctrs.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : ctrs) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
  }
  const auto hists = latency_histograms();
  if (!hists.empty()) {
    out += "latency histograms (host-measured):\n";
    for (const auto& [name, hist] : hists) {
      out += "  " + name + ": " + hist.summary() + "\n";
    }
  }
  return out;
}

HostSpan::HostSpan(Tracer* tracer, std::string_view name)
    : tracer_(tracer), name_(name) {
  if (tracer_ != nullptr) {
    depth_ = tracer_->open_host_span();
    begin_ = std::chrono::steady_clock::now();
    start_ = tracer_->host_now();
  }
}

HostSpan::~HostSpan() {
  if (tracer_ != nullptr) {
    const double dur =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin_)
            .count();
    tracer_->record_host_span(std::move(name_), start_, dur, depth_);
    tracer_->close_host_span();
  }
}

DevicePhaseScope::DevicePhaseScope(Tracer* tracer, std::string_view phase)
    : tracer_(tracer) {
  if (tracer_ != nullptr) {
    previous_ = tracer_->device_phase();
    tracer_->set_device_phase(std::string(phase));
  }
}

DevicePhaseScope::~DevicePhaseScope() {
  if (tracer_ != nullptr) tracer_->set_device_phase(std::move(previous_));
}

std::string chrome_trace_json(const Tracer& tracer) {
  const auto evs = tracer.events();
  const auto ctrs = tracer.counters();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"host (measured)\"}},";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"device (modeled)\"}}";

  double max_end = 0.0;
  for (const TraceEvent& e : evs) {
    max_end = std::max(max_end, e.start_seconds + e.duration_seconds);
    const bool host = e.domain == Domain::HostMeasured;
    out += ",{\"ph\":\"X\",\"name\":\"" + escape_json(e.name) +
           "\",\"cat\":\"" + escape_json(e.category) +
           "\",\"pid\":" + (host ? "0" : "1") +
           ",\"tid\":" + std::to_string(e.track) +
           ",\"ts\":" + fmt_double(e.start_seconds * 1e6) +
           ",\"dur\":" + fmt_double(e.duration_seconds * 1e6) +
           ",\"args\":{\"domain\":\"" + std::string(domain_label(e.domain)) +
           "\",\"depth\":" + std::to_string(e.depth) + "}}";
  }
  for (const auto& [name, value] : ctrs) {
    out += ",{\"ph\":\"C\",\"name\":\"" + escape_json(name) +
           "\",\"pid\":0,\"tid\":0,\"ts\":" + fmt_double(max_end * 1e6) +
           ",\"args\":{\"value\":" + std::to_string(value) + "}}";
  }
  for (const auto& [name, hist] : tracer.latency_histograms()) {
    // Histograms are host-measured by definition (record_latency takes
    // wall seconds), so they live on the host pid like the counters.
    out += ",{\"ph\":\"C\",\"name\":\"latency:" + escape_json(name) +
           "\",\"pid\":0,\"tid\":0,\"ts\":" + fmt_double(max_end * 1e6) +
           ",\"args\":{\"count\":" + std::to_string(hist.count()) +
           ",\"p50_us\":" + fmt_double(hist.p50() * 1e6) +
           ",\"p95_us\":" + fmt_double(hist.p95() * 1e6) +
           ",\"p99_us\":" + fmt_double(hist.p99() * 1e6) + "}}";
  }
  out += "]}";
  return out;
}

void write_chrome_trace(const Tracer& tracer, const std::string& path) {
  const std::string json = chrome_trace_json(tracer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace output file: " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    throw std::runtime_error("short write to trace output file: " + path);
  }
}

}  // namespace gpclust::obs
