#pragma once
// Minimal recursive-descent JSON parser — just enough to validate the
// chrome://tracing files the obs layer emits (schema tests, tooling).
// Full JSON value model; no streaming, no comments, UTF-8 passthrough.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/common.hpp"

namespace gpclust::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : storage_(nullptr) {}
  explicit Value(Storage s) : storage_(std::move(s)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(storage_); }
  bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  bool is_number() const { return std::holds_alternative<double>(storage_); }
  bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  bool is_array() const { return std::holds_alternative<Array>(storage_); }
  bool is_object() const { return std::holds_alternative<Object>(storage_); }

  /// Typed accessors; throw ParseError when the value has another kind.
  bool boolean() const;
  double number() const;
  const std::string& string() const;
  const Array& array() const;
  const Object& object() const;

  /// Object member access; throws ParseError when absent or not an object.
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const;

 private:
  Storage storage_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws ParseError with a byte offset on malformed input.
Value parse(std::string_view text);

}  // namespace gpclust::obs::json
