#pragma once
// Minimal recursive-descent JSON parser — just enough to validate the
// chrome://tracing files the obs layer emits (schema tests, tooling).
// Full JSON value model; no streaming, no comments, UTF-8 passthrough.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/common.hpp"

namespace gpclust::obs::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : storage_(nullptr) {}
  explicit Value(Storage s) : storage_(std::move(s)) {}

  // Out-of-line special members: GCC 12's -Wmaybe-uninitialized false-fires
  // on inlined variant copies inside nested Object/Array initializer lists
  // (the writers in bench/*). Keeping the copy opaque sidesteps that
  // without suppressing the warning globally.
  Value(const Value& other);
  Value(Value&& other) noexcept;
  Value& operator=(const Value& other);
  Value& operator=(Value&& other) noexcept;
  ~Value();

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(storage_); }
  bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  bool is_number() const { return std::holds_alternative<double>(storage_); }
  bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  bool is_array() const { return std::holds_alternative<Array>(storage_); }
  bool is_object() const { return std::holds_alternative<Object>(storage_); }

  /// Typed accessors; throw ParseError when the value has another kind.
  bool boolean() const;
  double number() const;
  const std::string& string() const;
  const Array& array() const;
  const Object& object() const;

  /// Object member access; throws ParseError when absent or not an object.
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const;

 private:
  Storage storage_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws ParseError with a byte offset on malformed input.
Value parse(std::string_view text);

/// Serializes a Value back to JSON text. Deterministic: object members
/// come out in the map's key order, numbers via shortest round-trip-ish
/// "%.12g" (integers print without a decimal point). parse(dump(v))
/// reproduces v for every value this writer emits — the bench drivers'
/// `--json` outputs go through here so their schema tests can reparse
/// them.
std::string dump(const Value& value);

/// Convenience constructors for writers (the Value(Storage) ctor is
/// explicit so readers never build values by accident). Out-of-line for
/// the same -Wmaybe-uninitialized reason as the special members above.
Value number(double v);
Value string(std::string v);
Value boolean(bool v);
Value array(Array items);
Value object(Object members);

}  // namespace gpclust::obs::json
