#pragma once
// obs — the pipeline observability layer: phase spans, monotonic counters,
// a chrome://tracing exporter and a per-phase summary table.
//
// The repo-wide rule "device time is modeled, host time is measured; never
// mix the two in one number without labeling" (CLAUDE.md) is enforced by
// the type system here: every span carries a Domain, per-domain totals are
// returned as Seconds<Domain> strong types, and Seconds of different
// domains cannot be added, assigned or compared to each other — summing a
// modeled span into a measured total is a compile error, and sum_of<D>()
// throws if a span of the other domain sneaks into a dynamic event set.
//
// A Tracer is optional everywhere it is plumbed (GpClust, SerialShingler,
// dist::distributed_cluster, the device layer): the handle is a plain
// pointer defaulting to nullptr and every recording helper is a no-op on
// null, so untraced runs pay nothing.

#include <chrono>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.hpp"
#include "util/common.hpp"

namespace gpclust::obs {

/// Which clock a span's duration comes from. HostMeasured spans are real
/// wall time on this machine; DeviceModeled spans are seconds on the
/// simulated device's SimTimeline (the K20-calibrated cost model).
enum class Domain { HostMeasured, DeviceModeled };

/// The label the trace JSON carries per span: "host_measured" or
/// "device_modeled".
std::string_view domain_label(Domain d);

/// Strong seconds type tagged by domain. Arithmetic and comparison are
/// only defined between the same domain; there is no implicit conversion
/// to or from double or the other domain.
template <Domain D>
struct Seconds {
  double value = 0.0;

  constexpr Seconds& operator+=(Seconds other) {
    value += other.value;
    return *this;
  }
  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds{a.value + b.value};
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds{a.value - b.value};
  }
  friend constexpr auto operator<=>(Seconds a, Seconds b) = default;
};

using HostSeconds = Seconds<Domain::HostMeasured>;
using ModeledSeconds = Seconds<Domain::DeviceModeled>;

/// One completed span. `name` is phase-qualified ("pass1.consume",
/// "pass1.kernel", "aggregate2", ...); `category` is the kind of work:
/// "cpu" for host spans, "kernel"/"copy_h2d"/"copy_d2h" for modeled ops.
/// Host spans position `start_seconds` on the tracer's wall clock (zero at
/// Tracer construction); modeled spans position it on the device timeline.
struct TraceEvent {
  std::string name;
  std::string category;
  Domain domain;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  std::size_t track = 0;  ///< host: 0; modeled: device stream id
  int depth = 0;          ///< host span nesting depth; modeled: 0
};

/// Sums durations over `events`, requiring every event to belong to domain
/// D — the runtime guard behind the static one. Throws InvalidArgument on
/// the first event of the other domain.
template <Domain D>
Seconds<D> sum_of(std::span<const TraceEvent> events) {
  Seconds<D> total;
  for (const TraceEvent& e : events) {
    if (e.domain != D) {
      throw InvalidArgument("sum_of: event '" + e.name + "' is " +
                            std::string(domain_label(e.domain)) +
                            " but the total is " +
                            std::string(domain_label(D)));
    }
    total += Seconds<D>{e.duration_seconds};
  }
  return total;
}

/// Collects spans and counters for one pipeline run. Thread-safe (the
/// distributed backend and the device thread pool may record
/// concurrently); aggregates and exports may be read at any time.
class Tracer {
 public:
  Tracer();

  // --- monotonic counters ------------------------------------------------
  /// counters[name] += delta. Counters only ever grow (deltas are
  /// unsigned); decrementing has no API.
  void add_counter(std::string_view name, u64 delta);
  /// counters[name] = max(counters[name], value) — for high-water marks
  /// (e.g. "arena_peak_bytes"); still monotonic.
  void raise_counter(std::string_view name, u64 value);
  u64 counter(std::string_view name) const;
  std::map<std::string, u64> counters() const;

  // --- latency histograms -------------------------------------------------
  /// Records one host-measured latency sample into the named log2
  /// histogram (created on first use). Thread-safe, like the counters.
  void record_latency(std::string_view name, double seconds);
  /// Merges `samples` into the named histogram in one lock acquisition —
  /// how QueryService folds worker-local histograms in.
  void merge_latency(std::string_view name, const Histogram& samples);
  /// Copy of one histogram (empty when never recorded) / of all of them.
  Histogram latency_histogram(std::string_view name) const;
  std::map<std::string, Histogram> latency_histograms() const;

  // --- spans ---------------------------------------------------------------
  /// Seconds since this tracer was constructed (host wall clock).
  double host_now() const;
  void record_host_span(std::string name, double start_seconds,
                        double duration_seconds, int depth);
  /// Records one modeled device op. The span name becomes
  /// "<device_phase>.<category>" (or just the category when no phase is
  /// set), so kernels and copies are attributed to the pipeline phase that
  /// issued them.
  void record_modeled_op(std::string_view category, double start_seconds,
                         double duration_seconds, std::size_t stream);

  /// Sets the phase label modeled ops are attributed to (see
  /// DevicePhaseScope for the RAII form).
  void set_device_phase(std::string phase);
  std::string device_phase() const;

  // --- domain-typed aggregates --------------------------------------------
  /// Total measured host seconds (depth-0 spans only, so nested spans are
  /// not double counted).
  HostSeconds host_busy() const;
  /// Measured host seconds of one phase: spans named `phase` or
  /// "`phase`.*".
  HostSeconds host_total(std::string_view phase) const;
  /// Total modeled device seconds across all ops.
  ModeledSeconds modeled_busy() const;
  /// Modeled seconds attributed to one phase.
  ModeledSeconds modeled_total(std::string_view phase) const;
  /// Modeled seconds of one op category over all phases: "kernel",
  /// "copy_h2d" or "copy_d2h" — the Table I GPU / Data_c->g / Data_g->c
  /// columns.
  ModeledSeconds modeled_category_total(std::string_view category) const;

  std::vector<TraceEvent> events() const;
  std::size_t num_events() const;

  /// Plain-text per-phase table: host-measured and device-modeled seconds
  /// in separate, labeled columns, plus the counters.
  std::string summary() const;

  // HostSpan bookkeeping (public for the RAII helper only).
  int open_host_span();
  void close_host_span();

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::map<std::string, u64, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::string device_phase_;
  int open_host_spans_ = 0;
};

/// RAII host-measured span; records its wall time on destruction. No-op
/// when `tracer` is null.
class HostSpan {
 public:
  HostSpan(Tracer* tracer, std::string_view name);
  ~HostSpan();

  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

 private:
  Tracer* tracer_;
  std::string name_;
  double start_ = 0.0;
  int depth_ = 0;
  std::chrono::steady_clock::time_point begin_{};
};

/// RAII device-phase label: modeled ops enqueued inside the scope are
/// attributed to `phase`. No-op when `tracer` is null.
class DevicePhaseScope {
 public:
  DevicePhaseScope(Tracer* tracer, std::string_view phase);
  ~DevicePhaseScope();

  DevicePhaseScope(const DevicePhaseScope&) = delete;
  DevicePhaseScope& operator=(const DevicePhaseScope&) = delete;

 private:
  Tracer* tracer_;
  std::string previous_;
};

/// Convenience no-op-safe counter helpers.
inline void add_counter(Tracer* tracer, std::string_view name, u64 delta) {
  if (tracer != nullptr) tracer->add_counter(name, delta);
}
inline void raise_counter(Tracer* tracer, std::string_view name, u64 value) {
  if (tracer != nullptr) tracer->raise_counter(name, value);
}

/// Serializes the trace in the chrome://tracing "traceEvents" format:
/// complete ("X") events carrying args.domain = host_measured |
/// device_modeled, pid 0 = host (measured), pid 1 = device (modeled), one
/// tid per device stream, one counter ("C") event per counter, and one
/// "C" event per latency histogram (name "latency:<name>", args carrying
/// count and p50/p95/p99 microseconds — host-measured by definition).
/// Timestamps are microseconds, host and device clocks each starting at 0.
std::string chrome_trace_json(const Tracer& tracer);

/// Writes chrome_trace_json() to `path` (throws ParseError's sibling
/// std::runtime_error on I/O failure).
void write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace gpclust::obs
