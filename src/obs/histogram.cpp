#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace gpclust::obs {

namespace {

/// Bucket index of a latency: floor(log2(nanoseconds)), clamped.
std::size_t bucket_of(double seconds) {
  const double ns = seconds * 1e9;
  if (!(ns >= 1.0)) return 0;  // sub-nanosecond, negative, or NaN
  const u64 n = static_cast<u64>(std::min(ns, 1.8e18));
  return static_cast<std::size_t>(std::bit_width(n) - 1);
}

/// Lower edge of a bucket, in seconds.
double bucket_lo(std::size_t bucket) {
  return static_cast<double>(u64{1} << bucket) * 1e-9;
}

}  // namespace

void Histogram::record(double seconds) {
  const double v = seconds > 0.0 ? seconds : 0.0;
  ++buckets_[bucket_of(v)];
  if (count_ == 0) {
    min_seconds_ = max_seconds_ = v;
  } else {
    min_seconds_ = std::min(min_seconds_, v);
    max_seconds_ = std::max(max_seconds_, v);
  }
  ++count_;
  total_seconds_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count]: the smallest bucket whose cumulative count reaches
  // it holds the quantile.
  const u64 rank = std::max<u64>(
      1, static_cast<u64>(std::ceil(clamped * static_cast<double>(count_))));
  u64 cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (cumulative + buckets_[b] >= rank) {
      // Linear interpolation across the bucket's width by intra-bucket
      // rank; clamp to the observed extremes so tiny samples don't report
      // a quantile outside [min, max].
      const double lo = bucket_lo(b);
      const double width = lo;  // [2^b, 2^(b+1)) ns is one lo wide
      const double frac = buckets_[b] == 1
                              ? 0.5
                              : static_cast<double>(rank - cumulative - 1) /
                                    static_cast<double>(buckets_[b] - 1);
      return std::clamp(lo + frac * width, min_seconds_, max_seconds_);
    }
    cumulative += buckets_[b];
  }
  return max_seconds_;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  if (other.count_ == 0) return *this;
  for (std::size_t b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_seconds_ = other.min_seconds_;
    max_seconds_ = other.max_seconds_;
  } else {
    min_seconds_ = std::min(min_seconds_, other.min_seconds_);
    max_seconds_ = std::max(max_seconds_, other.max_seconds_);
  }
  count_ += other.count_;
  total_seconds_ += other.total_seconds_;
  return *this;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.6fs p50=%.6fs p95=%.6fs p99=%.6fs max=%.6fs",
                static_cast<unsigned long long>(count_), mean_seconds(), p50(),
                p95(), p99(), max_seconds());
  return buf;
}

}  // namespace gpclust::obs
