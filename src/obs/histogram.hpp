#pragma once
// Fixed-bucket latency histogram for the serving layer (DESIGN.md §10):
// 64 log2 buckets over nanoseconds, so one cache line of counters covers
// sub-microsecond spins to hour-long stalls with bounded relative error.
// Recording is O(1) and allocation-free; quantiles interpolate linearly
// inside the winning bucket. Merging worker-local histograms is exact
// (bucket-wise addition), which is how QueryService keeps its hot path
// off any shared lock: each worker records into its own histogram and the
// service merges on read.
//
// Not thread-safe by itself — share one per thread, or guard externally
// (Tracer::record_latency does the latter).

#include <array>
#include <cstddef>
#include <string>

#include "util/common.hpp"

namespace gpclust::obs {

class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 64;

  /// Records one latency. Negative values clamp to 0; values are bucketed
  /// by floor(log2(nanoseconds)).
  void record(double seconds);

  u64 count() const { return count_; }
  double total_seconds() const { return total_seconds_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : total_seconds_ / static_cast<double>(count_);
  }
  double min_seconds() const { return count_ == 0 ? 0.0 : min_seconds_; }
  double max_seconds() const { return count_ == 0 ? 0.0 : max_seconds_; }
  u64 bucket_count(std::size_t bucket) const { return buckets_.at(bucket); }

  /// Quantile estimate in seconds, q in [0, 1]: walks the cumulative
  /// counts to the winning bucket, then interpolates linearly between the
  /// bucket's edges (clamped to the observed min/max). 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Exact merge: bucket-wise addition (quantiles of the merged histogram
  /// equal quantiles of the concatenated streams up to bucket resolution).
  Histogram& operator+=(const Histogram& other);

  /// One-line rendering: count, mean, p50/p95/p99, max (seconds).
  std::string summary() const;

 private:
  std::array<u64, kNumBuckets> buckets_{};
  u64 count_ = 0;
  double total_seconds_ = 0.0;
  double min_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

}  // namespace gpclust::obs
