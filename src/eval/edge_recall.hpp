#pragma once
// Planted-family edge recall — the quality axis of the seed-stage
// recall/speed frontier (DESIGN.md §14). Given a truth graph (the exact
// k-mer postings path's edge set), a test graph built over the same
// vertex set (e.g. the banded MinHash/LSH path's), and the generator's
// planted family labels, this measures what fraction of the truth
// graph's intra-family edges the test graph recovered. Background ORFs
// (labels >= num_families, unique per sequence) never form intra-family
// truth edges, so chance edges between them are excluded from the
// denominator — the frontier grades recall of planted signal, not of
// background noise.

#include <span>

#include "graph/csr_graph.hpp"
#include "util/common.hpp"

namespace gpclust::eval {

struct EdgeRecallResult {
  /// Intra-family edges in the truth graph (the denominator).
  std::size_t truth_intra_edges = 0;
  /// Of those, edges also present in the test graph.
  std::size_t recovered_intra_edges = 0;

  /// 1.0 on an empty denominator: recovering nothing from nothing is
  /// perfect recall, which keeps tiny sweep points well-defined.
  double recall() const {
    return truth_intra_edges == 0
               ? 1.0
               : static_cast<double>(recovered_intra_edges) /
                     static_cast<double>(truth_intra_edges);
  }
};

/// Both graphs must cover the same vertices and `family` must label each
/// one (seq::SyntheticMetagenome::family); labels >= num_families are
/// background.
EdgeRecallResult planted_edge_recall(const graph::CsrGraph& test,
                                     const graph::CsrGraph& truth,
                                     std::span<const u32> family,
                                     u32 num_families);

}  // namespace gpclust::eval
