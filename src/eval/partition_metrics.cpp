#include "eval/partition_metrics.hpp"

#include <unordered_map>

namespace gpclust::eval {

namespace {
double ratio(u64 num, u64 den) {
  return den == 0 ? 1.0 : static_cast<double>(num) / static_cast<double>(den);
}

u64 choose2(u64 n) { return n * (n - 1) / 2; }
}  // namespace

double PairConfusion::ppv() const { return ratio(tp, tp + fp); }
double PairConfusion::npv() const { return ratio(tn, fn + tn); }
double PairConfusion::specificity() const { return ratio(tn, fp + tn); }
double PairConfusion::sensitivity() const { return ratio(tp, tp + fn); }

std::vector<u32> labels_with_singletons(const core::Clustering& clustering) {
  constexpr u32 kUnset = ~0u;
  std::vector<u32> labels(clustering.num_vertices(), kUnset);
  u32 next = 0;
  for (const auto& cluster : clustering.clusters()) {
    const u32 label = next++;
    for (VertexId v : cluster) {
      GPCLUST_CHECK(labels[v] == kUnset,
                    "labels_with_singletons requires disjoint clusters");
      labels[v] = label;
    }
  }
  for (auto& l : labels) {
    if (l == kUnset) l = next++;
  }
  return labels;
}

PairConfusion compare_partitions(const std::vector<u32>& test_labels,
                                 const std::vector<u32>& benchmark_labels) {
  GPCLUST_CHECK(test_labels.size() == benchmark_labels.size(),
                "label vectors must describe the same universe");
  const u64 n = test_labels.size();

  // Contingency counting: pairs co-clustered in both = sum over joint
  // (test, bench) cells of C(cell, 2); in test = sum over test clusters of
  // C(size, 2); likewise for benchmark.
  std::unordered_map<u64, u64> cell, test_size, bench_size;
  for (u64 v = 0; v < n; ++v) {
    ++test_size[test_labels[v]];
    ++bench_size[benchmark_labels[v]];
    ++cell[(static_cast<u64>(test_labels[v]) << 32) | benchmark_labels[v]];
  }

  PairConfusion out;
  u64 test_pairs = 0, bench_pairs = 0;
  for (const auto& [label, size] : test_size) test_pairs += choose2(size);
  for (const auto& [label, size] : bench_size) bench_pairs += choose2(size);
  for (const auto& [key, size] : cell) out.tp += choose2(size);

  out.fp = test_pairs - out.tp;
  out.fn = bench_pairs - out.tp;
  out.tn = choose2(n) - out.tp - out.fp - out.fn;
  return out;
}

}  // namespace gpclust::eval
