#pragma once
// Cluster/partition serialization: one cluster per line, members as
// whitespace-separated vertex ids, '#' comments. Interoperable with the
// simple formats used by MCL and the GOS cluster dumps.

#include <string>

#include "core/clustering.hpp"

namespace gpclust::eval {

/// Writes one line per cluster ("id id id ..."), preceded by a comment
/// header with counts.
void write_clusters(const core::Clustering& clustering,
                    const std::string& path);

/// Reads a cluster file. `num_vertices` is the universe size (must be
/// larger than every id in the file); pass 0 to infer max id + 1.
core::Clustering read_clusters(const std::string& path,
                               std::size_t num_vertices = 0);

}  // namespace gpclust::eval
