#pragma once
// Partition statistics (paper Table IV: #groups, #sequences included,
// largest and average group size) and group-size distributions
// (Figure 5a: groups per size bin; Figure 5b: sequences per size bin).

#include "core/clustering.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace gpclust::eval {

struct PartitionStats {
  std::size_t num_groups = 0;
  std::size_t num_sequences = 0;  ///< total members across groups
  std::size_t largest = 0;
  util::RunningStats group_size;
};

PartitionStats partition_stats(const core::Clustering& clustering);

/// Figure 5(a): number of groups per size bin.
util::BinnedHistogram group_size_histogram(const core::Clustering& clustering);

/// Figure 5(b): number of sequences per group-size bin.
util::BinnedHistogram sequence_distribution_histogram(
    const core::Clustering& clustering);

}  // namespace gpclust::eval
