#pragma once
// Cluster density (paper equation 6): edges inside a cluster divided by
// the total number of possible edges. Density 1 means a clique. The paper
// reports avg +/- std density per partition (0.75 for gpClust, 0.40 for
// GOS, 0.09 for the benchmark on the 2M data set).

#include <vector>

#include "core/clustering.hpp"
#include "graph/csr_graph.hpp"
#include "util/stats.hpp"

namespace gpclust::eval {

/// Density of every cluster, in cluster order. Size-1 clusters have
/// density 1 by convention (a single vertex is trivially a clique —
/// the convention the paper's discussion of equation 6 uses).
std::vector<double> cluster_densities(const graph::CsrGraph& g,
                                      const core::Clustering& clustering);

/// Mean/std/min/max of cluster densities.
util::RunningStats density_stats(const graph::CsrGraph& g,
                                 const core::Clustering& clustering);

}  // namespace gpclust::eval
