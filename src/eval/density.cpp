#include "eval/density.hpp"

#include <algorithm>

namespace gpclust::eval {

std::vector<double> cluster_densities(const graph::CsrGraph& g,
                                      const core::Clustering& clustering) {
  std::vector<double> out;
  out.reserve(clustering.num_clusters());
  for (const auto& cluster : clustering.clusters()) {
    if (cluster.size() <= 1) {
      out.push_back(1.0);
      continue;
    }
    // Sorted member list -> binary-search membership per neighbor.
    std::vector<VertexId> sorted(cluster.begin(), cluster.end());
    std::sort(sorted.begin(), sorted.end());
    u64 internal = 0;
    for (VertexId v : sorted) {
      GPCLUST_CHECK(v < g.num_vertices(), "cluster member outside graph");
      for (VertexId w : g.neighbors(v)) {
        if (w > v && std::binary_search(sorted.begin(), sorted.end(), w)) {
          ++internal;
        }
      }
    }
    const u64 possible =
        static_cast<u64>(sorted.size()) * (sorted.size() - 1) / 2;
    out.push_back(static_cast<double>(internal) /
                  static_cast<double>(possible));
  }
  return out;
}

util::RunningStats density_stats(const graph::CsrGraph& g,
                                 const core::Clustering& clustering) {
  util::RunningStats stats;
  for (double d : cluster_densities(g, clustering)) stats.add(d);
  return stats;
}

}  // namespace gpclust::eval
