#include "eval/partition_io.hpp"

#include <fstream>
#include <sstream>

namespace gpclust::eval {

void write_clusters(const core::Clustering& clustering,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open cluster file for writing: " + path);
  out << "# gpclust clusters: " << clustering.num_clusters() << " clusters, "
      << clustering.num_vertices() << " vertices\n";
  for (const auto& cluster : clustering.clusters()) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (i > 0) out << ' ';
      out << cluster[i];
    }
    out << '\n';
  }
  if (!out) throw ParseError("write failed: " + path);
}

core::Clustering read_clusters(const std::string& path,
                               std::size_t num_vertices) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open cluster file: " + path);
  std::vector<std::vector<VertexId>> clusters;
  std::size_t max_id = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::vector<VertexId> cluster;
    u64 id;
    while (ss >> id) {
      cluster.push_back(static_cast<VertexId>(id));
      max_id = std::max<std::size_t>(max_id, id);
    }
    if (!ss.eof()) {
      throw ParseError("malformed cluster line at " + path + ":" +
                       std::to_string(lineno));
    }
    if (!cluster.empty()) clusters.push_back(std::move(cluster));
  }
  const std::size_t n =
      num_vertices > 0 ? num_vertices
                       : (clusters.empty() ? 0 : max_id + 1);
  return core::Clustering(std::move(clusters), n);
}

}  // namespace gpclust::eval
