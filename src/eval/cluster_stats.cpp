#include "eval/cluster_stats.hpp"

namespace gpclust::eval {

PartitionStats partition_stats(const core::Clustering& clustering) {
  PartitionStats stats;
  stats.num_groups = clustering.num_clusters();
  for (const auto& c : clustering.clusters()) {
    stats.num_sequences += c.size();
    stats.largest = std::max(stats.largest, c.size());
    stats.group_size.add(static_cast<double>(c.size()));
  }
  return stats;
}

util::BinnedHistogram group_size_histogram(const core::Clustering& clustering) {
  auto hist = util::BinnedHistogram::figure5_bins();
  for (const auto& c : clustering.clusters()) hist.add(c.size());
  return hist;
}

util::BinnedHistogram sequence_distribution_histogram(
    const core::Clustering& clustering) {
  auto hist = util::BinnedHistogram::figure5_bins();
  for (const auto& c : clustering.clusters()) hist.add(c.size(), c.size());
  return hist;
}

}  // namespace gpclust::eval
