#pragma once
// Pair-counting quality metrics of the paper's §IV-D: every pair of
// sequences is classified TP/FP/FN/TN by comparing co-membership in the
// test partition against the benchmark partition, yielding
// PPV, NPV, specificity and sensitivity (equations 2-5). Computed via
// contingency counting over cluster intersections — O(n) space/time —
// never by enumerating the O(n^2) pairs.

#include <vector>

#include "core/clustering.hpp"
#include "util/common.hpp"

namespace gpclust::eval {

struct PairConfusion {
  u64 tp = 0;  ///< co-clustered in test and in benchmark
  u64 fp = 0;  ///< co-clustered in test only
  u64 fn = 0;  ///< co-clustered in benchmark only
  u64 tn = 0;  ///< separated in both

  double ppv() const;          ///< TP / (TP + FP), equation (2)
  double npv() const;          ///< TN / (FN + TN), equation (3)
  double specificity() const;  ///< TN / (FP + TN), equation (4)
  double sensitivity() const;  ///< TP / (TP + FN), equation (5)
};

/// Per-vertex labels where vertices outside any reported cluster behave as
/// singletons (each gets a unique label). This is how a size-filtered
/// partition ("clusters of size >= 20 only") is compared over the full
/// sequence universe.
std::vector<u32> labels_with_singletons(const core::Clustering& clustering);

/// Classifies all n-choose-2 pairs. Both label vectors must have the same
/// length (one label per vertex of the universe).
PairConfusion compare_partitions(const std::vector<u32>& test_labels,
                                 const std::vector<u32>& benchmark_labels);

}  // namespace gpclust::eval
