#include "eval/edge_recall.hpp"

namespace gpclust::eval {

EdgeRecallResult planted_edge_recall(const graph::CsrGraph& test,
                                     const graph::CsrGraph& truth,
                                     std::span<const u32> family,
                                     u32 num_families) {
  GPCLUST_CHECK(test.num_vertices() == truth.num_vertices(),
                "recall needs graphs over the same vertex set");
  GPCLUST_CHECK(family.size() == truth.num_vertices(),
                "family labels must cover every vertex");
  EdgeRecallResult result;
  for (VertexId u = 0; u < truth.num_vertices(); ++u) {
    if (family[u] >= num_families) continue;  // background ORF
    for (VertexId v : truth.neighbors(u)) {
      if (v <= u || family[v] != family[u]) continue;
      ++result.truth_intra_edges;
      if (test.has_edge(u, v)) ++result.recovered_intra_edges;
    }
  }
  return result;
}

}  // namespace gpclust::eval
