#pragma once
// Accounting allocator for simulated device global memory. The backing
// bytes live in host RAM (this is a simulation), but capacity is enforced
// exactly like cudaMalloc on a 5 GB board: exceeding it throws
// DeviceError, which is what forces gpClust's batch partitioning.

#include <cstddef>

#include "util/common.hpp"

namespace gpclust::obs {
class Tracer;
}
namespace gpclust::fault {
class FaultPlan;
}

namespace gpclust::device {

class MemoryArena {
 public:
  explicit MemoryArena(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  std::size_t peak() const { return peak_; }
  std::size_t available() const { return capacity_ - used_; }
  std::size_t num_allocations() const { return live_allocations_; }

  /// Reserve `bytes`; throws DeviceError("out of device memory") on OOM.
  void allocate(std::size_t bytes);

  /// Release `bytes` previously allocated.
  void release(std::size_t bytes);

  /// Mirrors the high-water mark into the tracer's "arena_peak_bytes"
  /// counter on every allocation. Null detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Fault injection: allocate() consults the plan's "alloc" site and
  /// throws an injected OOM when scheduled. Null detaches.
  void set_fault_plan(fault::FaultPlan* plan) { fault_plan_ = plan; }
  fault::FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::size_t live_allocations_ = 0;
  obs::Tracer* tracer_ = nullptr;
  fault::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace gpclust::device
