#pragma once
// The device-layer fault points: tiny guards called at the top of every
// transfer and kernel primitive. When the context carries a FaultPlan and
// the plan schedules a fault at this call index, a typed transient error
// is thrown (TransferError / KernelError) and the "faults_injected"
// counter advances on the attached tracer. Without a plan the guard is a
// single null check.

#include <string>

#include "device/device_context.hpp"
#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"

namespace gpclust::device::detail {

inline void maybe_inject_transfer_fault(DeviceContext& ctx,
                                        fault::FaultSite site,
                                        std::size_t bytes) {
  fault::FaultPlan* plan = ctx.fault_plan();
  if (plan == nullptr || !plan->should_fault(site)) return;
  obs::add_counter(ctx.tracer(), "faults_injected", 1);
  throw TransferError("injected " + std::string(fault::site_name(site)) +
                      " transfer fault (fault plan, " +
                      std::to_string(bytes) + " bytes)");
}

inline void maybe_inject_kernel_fault(DeviceContext& ctx,
                                      const char* primitive) {
  fault::FaultPlan* plan = ctx.fault_plan();
  if (plan == nullptr || !plan->should_fault(fault::FaultSite::Kernel)) return;
  obs::add_counter(ctx.tracer(), "faults_injected", 1);
  throw KernelError(std::string("injected kernel fault (fault plan, ") +
                    primitive + ")");
}

}  // namespace gpclust::device::detail
