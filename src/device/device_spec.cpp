#include "device/device_spec.hpp"

namespace gpclust::device {

DeviceSpec DeviceSpec::tesla_k20() {
  DeviceSpec spec;
  spec.name = "Tesla K20 (simulated)";
  spec.global_memory_bytes = 5ULL << 30;
  spec.num_cores = 2496;
  spec.clock_ghz = 0.706;
  // Calibration: the K20's aggregate core-cycles (2496 cores x 0.706 GHz
  // = 1762 GHz-core) give it a raw ~700x advantage over one ~2 GHz host
  // core; the effective pipeline throughputs below assume a few percent
  // SIMT/memory efficiency on the hash and segmented-sort kernels, which
  // lands the accelerated-part speedup in the regime the paper reports
  // (~45x on the 20K graph) relative to a single-core serial baseline.
  spec.transform_elems_per_sec = 8.0e9;
  spec.sort_elems_per_sec = 3.0e9;
  // Batched SW verification: inter-task parallel kernels on Kepler-class
  // parts reach tens of GCUPS (CUDASW++-style); 25 GCUPS effective keeps
  // the verify stage in the same calibration regime as the other kernels.
  spec.align_cells_per_sec = 2.5e10;
  spec.kernel_launch_sec = 10e-6;
  spec.h2d_bytes_per_sec = 3.0e9;
  spec.d2h_bytes_per_sec = 2.5e9;
  spec.transfer_latency_sec = 20e-6;
  return spec;
}

DeviceSpec DeviceSpec::tesla_c2050() {
  DeviceSpec spec = tesla_k20();
  spec.name = "Tesla C2050 (simulated)";
  spec.global_memory_bytes = 3ULL << 30;
  spec.num_cores = 448;
  spec.clock_ghz = 1.15;
  // Aggregate cycles: 448 * 1.15 = 515 GHz-core vs the K20's 1762 —
  // scale the effective pipeline throughputs by the same ~0.29 factor.
  spec.transform_elems_per_sec = 2.3e9;
  spec.sort_elems_per_sec = 0.9e9;
  spec.align_cells_per_sec = 7.3e9;
  spec.shared_memory_per_block = 48 << 10;
  spec.h2d_bytes_per_sec = 2.5e9;
  spec.d2h_bytes_per_sec = 2.0e9;
  return spec;
}

DeviceSpec DeviceSpec::small_test_device(std::size_t memory_bytes) {
  DeviceSpec spec;
  spec.name = "tiny test device";
  spec.global_memory_bytes = memory_bytes;
  spec.num_cores = 64;
  spec.transform_elems_per_sec = 1e8;
  spec.sort_elems_per_sec = 5e7;
  spec.align_cells_per_sec = 2.5e8;
  spec.h2d_bytes_per_sec = 100e6;
  spec.d2h_bytes_per_sec = 100e6;
  return spec;
}

}  // namespace gpclust::device
