#pragma once
// Warp-granular SIMT kernel execution (paper §II): "Threads inside a SM
// are executed in a fixed sized group, called warp... it runs most
// efficiently if all the threads inside a warp execute same instructions.
// In case different instructions are programmed into the threads of a
// warp, the hardware will automatically handle the instruction divergence
// through multiple rounds of executions."
//
// simt_launch runs a kernel over a 1-D index space in warp-sized groups.
// Kernels observe their coordinates through ThreadIdx and report
// data-dependent branches through LaneCtx::branch(); a warp whose lanes
// disagree on a branch is *divergent* and is charged a second execution
// round in the cost model, exactly the serialization the paper describes.

#include <cstddef>
#include <functional>

#include "device/device_context.hpp"

namespace gpclust::device {

struct LaunchConfig {
  std::size_t num_threads = 0;   ///< total 1-D launch size
  std::size_t block_dim = 256;   ///< threads per block
};

struct ThreadIdx {
  std::size_t global;  ///< global thread id in [0, num_threads)
  std::size_t block;   ///< blockIdx.x
  std::size_t thread;  ///< threadIdx.x
  std::size_t lane;    ///< id within the warp, [0, warp_size)
  std::size_t warp;    ///< global warp id
};

struct SimtStats {
  std::size_t warps_executed = 0;
  std::size_t divergent_warps = 0;   ///< warps with >= 1 split branch vote
  std::size_t branch_rounds = 0;     ///< total extra execution rounds
  std::size_t inactive_lanes = 0;    ///< padding lanes of partial warps

  /// Fraction of warps that diverged (0 when nothing ran).
  double divergence_rate() const {
    return warps_executed == 0
               ? 0.0
               : static_cast<double>(divergent_warps) /
                     static_cast<double>(warps_executed);
  }
};

/// Per-lane handle a kernel uses to report data-dependent control flow.
class LaneCtx {
 public:
  /// Records a branch decision; returns `taken` so it can wrap the
  /// condition in place: if (lane.branch(x > 0)) { ... }.
  bool branch(bool taken) {
    votes_.push_back(taken);
    return taken;
  }

 private:
  friend SimtStats simt_launch(DeviceContext&, const LaunchConfig&,
                               const std::function<void(const ThreadIdx&,
                                                        LaneCtx&)>&,
                               StreamId, double);
  std::vector<bool> votes_;
};

/// Executes the kernel over every index, warp by warp, collecting
/// divergence statistics and charging modeled kernel time on the context
/// timeline: base transform cost for the launch plus one extra warp-round
/// per divergent branch (the "multiple rounds of executions" of §II).
SimtStats simt_launch(
    DeviceContext& ctx, const LaunchConfig& config,
    const std::function<void(const ThreadIdx&, LaneCtx&)>& kernel,
    StreamId stream = kDefaultStream, double ready_after = 0.0);

}  // namespace gpclust::device
