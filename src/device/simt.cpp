#include "device/simt.hpp"

#include <algorithm>

namespace gpclust::device {

SimtStats simt_launch(
    DeviceContext& ctx, const LaunchConfig& config,
    const std::function<void(const ThreadIdx&, LaneCtx&)>& kernel,
    StreamId stream, double ready_after) {
  GPCLUST_CHECK(config.block_dim >= 1, "block_dim must be positive");
  const std::size_t warp_size = ctx.spec().warp_size;
  const std::size_t n = config.num_threads;

  SimtStats stats;
  std::vector<std::vector<bool>> warp_votes(warp_size);

  for (std::size_t warp_start = 0; warp_start < n; warp_start += warp_size) {
    const std::size_t active = std::min(warp_size, n - warp_start);
    ++stats.warps_executed;
    stats.inactive_lanes += warp_size - active;

    // Execute the warp's lanes (sequentially here; conceptually lock-step)
    // and collect each lane's branch votes.
    std::size_t max_votes = 0;
    for (std::size_t lane = 0; lane < active; ++lane) {
      const std::size_t global = warp_start + lane;
      const ThreadIdx idx{
          .global = global,
          .block = global / config.block_dim,
          .thread = global % config.block_dim,
          .lane = lane,
          .warp = warp_start / warp_size,
      };
      LaneCtx lane_ctx;
      kernel(idx, lane_ctx);
      warp_votes[lane] = std::move(lane_ctx.votes_);
      max_votes = std::max(max_votes, warp_votes[lane].size());
    }

    // A branch point diverges when active lanes that reached it disagree.
    bool diverged = false;
    for (std::size_t b = 0; b < max_votes; ++b) {
      bool any_true = false, any_false = false;
      for (std::size_t lane = 0; lane < active; ++lane) {
        if (b >= warp_votes[lane].size()) continue;  // lane exited early
        (warp_votes[lane][b] ? any_true : any_false) = true;
      }
      if (any_true && any_false) {
        diverged = true;
        ++stats.branch_rounds;  // both sides execute: one extra round
      }
    }
    if (diverged) ++stats.divergent_warps;
    for (std::size_t lane = 0; lane < active; ++lane) warp_votes[lane].clear();
  }

  // Cost: every launched lane (padding included) executes once; each
  // divergent branch round re-executes one warp.
  const std::size_t lanes_launched =
      (n + warp_size - 1) / warp_size * warp_size;
  const std::size_t effective =
      lanes_launched + stats.branch_rounds * warp_size;
  ctx.timeline().enqueue(stream, OpKind::Kernel, ctx.transform_cost(effective),
                         ready_after);
  return stats;
}

}  // namespace gpclust::device
