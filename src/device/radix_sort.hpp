#pragma once
// LSD radix sort device primitive for unsigned integer keys — the sorting
// algorithm behind Thrust's integer sorts on real GPUs (Merrill &
// Grimshaw, reference [15] of the paper: "High Performance and Scalable
// Radix Sorting"). 8-bit digits, stable, with an optional value array
// permuted alongside the keys.

#include <array>
#include <type_traits>

#include "device/primitives.hpp"

namespace gpclust::device {

namespace detail {

template <typename K>
void radix_pass(std::span<K> keys, std::span<K> scratch, int shift) {
  std::array<std::size_t, 257> buckets{};
  for (K key : keys) ++buckets[((key >> shift) & 0xff) + 1];
  for (std::size_t d = 1; d <= 256; ++d) buckets[d] += buckets[d - 1];
  for (K key : keys) scratch[buckets[(key >> shift) & 0xff]++] = key;
  std::copy(scratch.begin(), scratch.end(), keys.begin());
}

template <typename K, typename V>
void radix_pass_kv(std::span<K> keys, std::span<V> values,
                   std::span<K> key_scratch, std::span<V> value_scratch,
                   int shift) {
  std::array<std::size_t, 257> buckets{};
  for (K key : keys) ++buckets[((key >> shift) & 0xff) + 1];
  for (std::size_t d = 1; d <= 256; ++d) buckets[d] += buckets[d - 1];
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::size_t slot = buckets[(keys[i] >> shift) & 0xff]++;
    key_scratch[slot] = keys[i];
    value_scratch[slot] = values[i];
  }
  std::copy(key_scratch.begin(), key_scratch.end(), keys.begin());
  std::copy(value_scratch.begin(), value_scratch.end(), values.begin());
}

}  // namespace detail

/// Sorts unsigned integer keys ascending with an LSD byte-wise radix sort.
/// Allocates sizeof(K) * n of device scratch for the duration of the call
/// (throws DeviceError if it does not fit, like any device allocation).
template <typename K>
double radix_sort(DeviceVector<K>& keys, StreamId stream = kDefaultStream,
                  double ready_after = 0.0) {
  static_assert(std::is_unsigned_v<K>, "radix_sort requires unsigned keys");
  DeviceContext& ctx = detail::ctx_of(keys);
  detail::maybe_inject_kernel_fault(ctx, "radix_sort");
  DeviceVector<K> scratch(ctx, keys.size());
  auto ks = keys.device_span();
  for (int shift = 0; shift < static_cast<int>(sizeof(K)) * 8; shift += 8) {
    detail::radix_pass<K>(ks, scratch.device_span(), shift);
  }
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.sort_cost(ks.size()), ready_after);
}

/// Stable key-value radix sort (thrust::sort_by_key with radix backend).
template <typename K, typename V>
double radix_sort_by_key(DeviceVector<K>& keys, DeviceVector<V>& values,
                         StreamId stream = kDefaultStream,
                         double ready_after = 0.0) {
  static_assert(std::is_unsigned_v<K>, "radix_sort requires unsigned keys");
  DeviceContext& ctx = detail::ctx_of(keys);
  GPCLUST_CHECK(values.context() == &ctx, "vectors belong to different devices");
  GPCLUST_CHECK(keys.size() == values.size(), "key/value size mismatch");
  detail::maybe_inject_kernel_fault(ctx, "radix_sort_by_key");
  DeviceVector<K> key_scratch(ctx, keys.size());
  DeviceVector<V> value_scratch(ctx, values.size());
  auto ks = keys.device_span();
  auto vs = values.device_span();
  for (int shift = 0; shift < static_cast<int>(sizeof(K)) * 8; shift += 8) {
    detail::radix_pass_kv<K, V>(ks, vs, key_scratch.device_span(),
                                value_scratch.device_span(), shift);
  }
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.sort_cost(ks.size()), ready_after);
}

}  // namespace gpclust::device
