#pragma once
// Discrete-event timeline for the simulated device.
//
// Every device operation (kernel, H2D copy, D2H copy) is enqueued on a
// stream with a modeled duration. Operations on the same stream execute
// in order; operations on different streams may overlap unless linked by
// an explicit dependency (completion time of a prior op). The makespan of
// the timeline is the modeled device-side wall time — with one stream it
// degenerates to the paper's synchronous Thrust behavior (sum of all
// durations); with two streams it models the asynchronous copy/compute
// overlap the paper lists as future work.

#include <array>
#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace gpclust::obs {
class Tracer;
}

namespace gpclust::device {

enum class OpKind : int { Kernel = 0, CopyH2D = 1, CopyD2H = 2 };
inline constexpr std::size_t kNumOpKinds = 3;

using StreamId = std::size_t;
inline constexpr StreamId kDefaultStream = 0;

class SimTimeline {
 public:
  explicit SimTimeline(std::size_t num_streams = 4);

  std::size_t num_streams() const { return cursors_.size(); }

  /// Schedules an op of `duration` seconds on `stream`, starting no earlier
  /// than the stream's cursor and `ready_after` (a completion time returned
  /// by a previous enqueue, for cross-stream dependencies).
  /// Returns the op's completion time.
  double enqueue(StreamId stream, OpKind kind, double duration,
                 double ready_after = 0.0);

  /// Completion time of the last op on `stream`.
  double stream_cursor(StreamId stream) const;

  /// Modeled device wall time: max completion over all streams.
  double makespan() const;

  /// Total busy seconds per op kind (sum of durations, ignoring overlap) —
  /// these are the Table I per-component columns.
  double busy(OpKind kind) const {
    return busy_[static_cast<std::size_t>(kind)];
  }

  std::size_t num_ops() const { return num_ops_; }

  void reset();

  /// Every subsequently enqueued op is also recorded as a device-modeled
  /// span on `tracer` (category "kernel"/"copy_h2d"/"copy_d2h", one track
  /// per stream). Null detaches; reset() keeps the attachment.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  std::vector<double> cursors_;
  std::array<double, kNumOpKinds> busy_{};
  std::size_t num_ops_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace gpclust::device
