#pragma once
// Discrete-event timeline for the simulated device.
//
// Every device operation (kernel, H2D copy, D2H copy) is enqueued on a
// stream with a modeled duration. Operations on the same stream execute
// in order; operations on different streams may overlap unless linked by
// an explicit dependency (completion time of a prior op). The makespan of
// the timeline is the modeled device-side wall time — with one stream it
// degenerates to the paper's synchronous Thrust behavior (sum of all
// durations); with more streams it models the asynchronous copy/compute
// overlap the paper lists as future work, generalized to the k-stream
// batch pipeline of DESIGN.md §8.
//
// Engine exclusivity: a real board has one compute front-end and one DMA
// engine per copy direction, so two streams can *issue* concurrently but
// same-kind ops still serialize on their engine. When the timeline is
// constructed engine-exclusive (DeviceContext does this), an op starts no
// earlier than the completion of the previous op of the same kind,
// whatever stream issued it. Cross-kind overlap (kernel vs copies) is
// unrestricted — exactly the overlap CUDA streams expose.
//
// Critical-path accounting: each enqueue records how far the op pushed the
// global completion frontier ("exposed" seconds, attributed to the op's
// kind). Summed over kinds this equals the makespan, so
// exposed(CopyH2D) + exposed(CopyD2H) is the modeled transfer time an
// observer of the device wall clock actually waits for — the number the
// stream-pipeline ablation drives toward zero.

#include <array>
#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace gpclust::obs {
class Tracer;
}

namespace gpclust::device {

enum class OpKind : int { Kernel = 0, CopyH2D = 1, CopyD2H = 2 };
inline constexpr std::size_t kNumOpKinds = 3;

using StreamId = std::size_t;
inline constexpr StreamId kDefaultStream = 0;

class SimTimeline {
 public:
  explicit SimTimeline(std::size_t num_streams = 4,
                       bool engine_exclusive = false);

  std::size_t num_streams() const { return cursors_.size(); }
  bool engine_exclusive() const { return engine_exclusive_; }

  /// Grows the stream set to at least `n` streams (never shrinks; new
  /// streams start idle at t=0). Used by the k-stream pipeline scheduler.
  void ensure_streams(std::size_t n);

  /// Schedules an op of `duration` seconds on `stream`, starting no earlier
  /// than the stream's cursor, `ready_after` (a completion time returned
  /// by a previous enqueue, for cross-stream dependencies) and — when the
  /// timeline is engine-exclusive — the completion of the previous op of
  /// the same kind. Returns the op's completion time.
  double enqueue(StreamId stream, OpKind kind, double duration,
                 double ready_after = 0.0);

  /// Completion time of the last op on `stream`.
  double stream_cursor(StreamId stream) const;

  /// Modeled device wall time: max completion over all streams.
  double makespan() const;

  /// Total busy seconds per op kind (sum of durations, ignoring overlap) —
  /// these are the Table I per-component columns.
  double busy(OpKind kind) const {
    return busy_[static_cast<std::size_t>(kind)];
  }

  /// Critical-path seconds per op kind: how much ops of this kind advanced
  /// the makespan frontier (busy time minus whatever other streams hid).
  /// The three kinds sum to makespan(); busy(kind) - exposed(kind) is the
  /// overlap the schedule achieved for that kind.
  double exposed(OpKind kind) const {
    return exposed_[static_cast<std::size_t>(kind)];
  }

  std::size_t num_ops() const { return num_ops_; }

  void reset();

  /// Every subsequently enqueued op is also recorded as a device-modeled
  /// span on `tracer` (category "kernel"/"copy_h2d"/"copy_d2h", one track
  /// per stream). Null detaches; reset() keeps the attachment.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  std::vector<double> cursors_;
  std::array<double, kNumOpKinds> busy_{};
  std::array<double, kNumOpKinds> engines_{};
  std::array<double, kNumOpKinds> exposed_{};
  double frontier_ = 0.0;  ///< running max completion (== makespan)
  std::size_t num_ops_ = 0;
  bool engine_exclusive_ = false;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace gpclust::device
