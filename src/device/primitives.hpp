#pragma once
// Thrust-style parallel primitives over DeviceVector.
//
// These are the building blocks the paper names explicitly (§III-C): the
// shingling kernel is "two efficient primitives transform() and sorting()
// implemented in the Thrust library". Each primitive executes its real
// computation on the host thread pool (the simulated device's cores) and
// charges modeled device time on the context timeline. Every function
// returns the op's completion time so callers can express cross-stream
// dependencies (used by the asynchronous pipeline).

#include <algorithm>
#include <functional>
#include <numeric>

#include "device/device_vector.hpp"
#include "device/fault_points.hpp"

namespace gpclust::device {

namespace detail {
template <typename T>
DeviceContext& ctx_of(const DeviceVector<T>& v) {
  GPCLUST_CHECK(v.context() != nullptr, "device vector is not allocated");
  return *v.context();
}
}  // namespace detail

/// out[i] = f(in[i]) for i in [0, n). n defaults to in.size().
/// Models one map kernel of n elements.
template <typename T, typename U, typename F>
double transform(const DeviceVector<T>& in, DeviceVector<U>& out, F f,
                 StreamId stream = kDefaultStream, double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(in);
  detail::maybe_inject_kernel_fault(ctx, "transform");
  GPCLUST_CHECK(out.context() == &ctx, "vectors belong to different devices");
  GPCLUST_CHECK(out.size() >= in.size(), "output too small");
  auto src = in.device_span();
  auto dst = out.device_span();
  ctx.pool().parallel_for(0, src.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] = f(src[i]);
  });
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.transform_cost(src.size()), ready_after);
}

/// out[i] = f(in[i]) like transform(), but for kernels whose per-element
/// work is data-dependent: the modeled duration is charged from the
/// caller-supplied total work via DeviceContext::align_cost instead of the
/// element count. This is the batched Smith-Waterman verification kernel's
/// shape — one task per candidate pair, |a| * |b| DP cells per task.
template <typename T, typename U, typename F>
double transform_weighted(const DeviceVector<T>& in, DeviceVector<U>& out, F f,
                          std::size_t total_cells,
                          StreamId stream = kDefaultStream,
                          double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(in);
  detail::maybe_inject_kernel_fault(ctx, "transform_weighted");
  GPCLUST_CHECK(out.context() == &ctx, "vectors belong to different devices");
  GPCLUST_CHECK(out.size() >= in.size(), "output too small");
  auto src = in.device_span();
  auto dst = out.device_span();
  ctx.pool().parallel_for(0, src.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] = f(src[i]);
  });
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.align_cost(total_cells), ready_after);
}

/// data[i] = f(i) — a grid-stride "generate" kernel.
template <typename T, typename F>
double tabulate(DeviceVector<T>& data, F f, StreamId stream = kDefaultStream,
                double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "tabulate");
  auto dst = data.device_span();
  ctx.pool().parallel_for(0, dst.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) dst[i] = f(i);
  });
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.transform_cost(dst.size()), ready_after);
}

/// Whole-buffer comparison sort (thrust::sort).
template <typename T, typename Cmp = std::less<T>>
double sort(DeviceVector<T>& data, Cmp cmp = Cmp{},
            StreamId stream = kDefaultStream, double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "sort");
  auto sp = data.device_span();
  std::sort(sp.begin(), sp.end(), cmp);
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.sort_cost(sp.size()), ready_after);
}

/// Sorts each segment [offsets[s], offsets[s+1]) of `data` independently —
/// the segmented sort at the heart of the shingling kernel (Figure 4).
/// `offsets` has num_segments + 1 entries; offsets.back() == data.size().
/// Segments are distributed over the device's worker threads.
template <typename T>
double segmented_sort(DeviceVector<T>& data, std::span<const u64> offsets,
                      StreamId stream = kDefaultStream,
                      double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "segmented_sort");
  GPCLUST_CHECK(!offsets.empty() && offsets.back() == data.size(),
                "offsets must cover the data exactly");
  auto sp = data.device_span();
  u64 max_segment = 0;
  for (std::size_t s = 0; s + 1 < offsets.size(); ++s) {
    max_segment = std::max(max_segment, offsets[s + 1] - offsets[s]);
  }
  ctx.pool().parallel_for(
      0, offsets.size() - 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t s = lo; s < hi; ++s) {
          std::sort(sp.begin() + static_cast<std::ptrdiff_t>(offsets[s]),
                    sp.begin() + static_cast<std::ptrdiff_t>(offsets[s + 1]));
        }
      });
  return ctx.timeline().enqueue(
      stream, OpKind::Kernel,
      ctx.segmented_sort_cost(sp.size(),
                              static_cast<std::size_t>(max_segment) * sizeof(T)),
      ready_after);
}

/// Key-value sort (thrust::sort_by_key): reorders both arrays so keys are
/// ascending, values following their keys. Stable.
template <typename K, typename V>
double sort_by_key(DeviceVector<K>& keys, DeviceVector<V>& values,
                   StreamId stream = kDefaultStream, double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(keys);
  detail::maybe_inject_kernel_fault(ctx, "sort_by_key");
  GPCLUST_CHECK(values.context() == &ctx, "vectors belong to different devices");
  GPCLUST_CHECK(keys.size() == values.size(), "key/value size mismatch");
  auto ks = keys.device_span();
  auto vs = values.device_span();
  std::vector<u64> perm(ks.size());
  std::iota(perm.begin(), perm.end(), u64{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](u64 a, u64 b) { return ks[a] < ks[b]; });
  std::vector<K> tmp_k(ks.size());
  std::vector<V> tmp_v(vs.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    tmp_k[i] = ks[perm[i]];
    tmp_v[i] = vs[perm[i]];
  }
  std::copy(tmp_k.begin(), tmp_k.end(), ks.begin());
  std::copy(tmp_v.begin(), tmp_v.end(), vs.begin());
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.sort_cost(ks.size()), ready_after);
}

/// Sum-reduction (thrust::reduce). The result is returned to the host,
/// so a tiny D2H transfer is also charged, as Thrust does.
template <typename T>
T reduce(const DeviceVector<T>& data, T init,
         StreamId stream = kDefaultStream) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "reduce");
  auto sp = data.device_span();
  const T total = std::accumulate(sp.begin(), sp.end(), init);
  const double done = ctx.timeline().enqueue(
      stream, OpKind::Kernel, ctx.transform_cost(sp.size()), 0.0);
  ctx.timeline().enqueue(stream, OpKind::CopyD2H, ctx.d2h_cost(sizeof(T)),
                         done);
  return total;
}

/// Exclusive prefix sum (thrust::exclusive_scan), in place.
template <typename T>
double exclusive_scan(DeviceVector<T>& data, T init,
                      StreamId stream = kDefaultStream,
                      double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "exclusive_scan");
  auto sp = data.device_span();
  T running = init;
  for (auto& x : sp) {
    const T next = static_cast<T>(running + x);
    x = running;
    running = next;
  }
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.transform_cost(sp.size()), ready_after);
}

/// data[i] = value for all i (thrust::fill).
template <typename T>
double fill(DeviceVector<T>& data, T value, StreamId stream = kDefaultStream,
            double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "fill");
  auto sp = data.device_span();
  ctx.pool().parallel_for(0, sp.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sp[i] = value;
  });
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.transform_cost(sp.size()), ready_after);
}

/// Inclusive prefix sum (thrust::inclusive_scan), in place.
template <typename T>
double inclusive_scan(DeviceVector<T>& data,
                      StreamId stream = kDefaultStream,
                      double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "inclusive_scan");
  auto sp = data.device_span();
  T running{};
  for (auto& x : sp) {
    running = static_cast<T>(running + x);
    x = running;
  }
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.transform_cost(sp.size()), ready_after);
}

/// Removes consecutive duplicates in place (thrust::unique); returns the
/// new logical element count. The allocation keeps its size; callers copy
/// out the leading `count` elements.
template <typename T>
std::size_t unique(DeviceVector<T>& data, StreamId stream = kDefaultStream) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "unique");
  auto sp = data.device_span();
  const auto end = std::unique(sp.begin(), sp.end());
  ctx.timeline().enqueue(stream, OpKind::Kernel, ctx.transform_cost(sp.size()),
                         0.0);
  return static_cast<std::size_t>(end - sp.begin());
}

/// Number of elements satisfying pred (thrust::count_if). Charges the scan
/// kernel plus the scalar result transfer.
template <typename T, typename Pred>
std::size_t count_if(const DeviceVector<T>& data, Pred pred,
                     StreamId stream = kDefaultStream) {
  DeviceContext& ctx = detail::ctx_of(data);
  detail::maybe_inject_kernel_fault(ctx, "count_if");
  auto sp = data.device_span();
  const std::size_t count = static_cast<std::size_t>(
      std::count_if(sp.begin(), sp.end(), pred));
  const double done = ctx.timeline().enqueue(
      stream, OpKind::Kernel, ctx.transform_cost(sp.size()), 0.0);
  ctx.timeline().enqueue(stream, OpKind::CopyD2H,
                         ctx.d2h_cost(sizeof(std::size_t)), done);
  return count;
}

/// Stable-compacts elements satisfying pred into `out` (thrust::copy_if);
/// returns the number written. `out` must be at least as large as `in`.
template <typename T, typename Pred>
std::size_t copy_if(const DeviceVector<T>& in, DeviceVector<T>& out, Pred pred,
                    StreamId stream = kDefaultStream, double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(in);
  detail::maybe_inject_kernel_fault(ctx, "copy_if");
  GPCLUST_CHECK(out.context() == &ctx, "vectors belong to different devices");
  GPCLUST_CHECK(out.size() >= in.size(), "output too small");
  auto src = in.device_span();
  auto dst = out.device_span();
  std::size_t count = 0;
  for (const T& x : src) {
    if (pred(x)) dst[count++] = x;
  }
  ctx.timeline().enqueue(stream, OpKind::Kernel, ctx.transform_cost(src.size()),
                         ready_after);
  return count;
}

/// Segment-reduces runs of equal keys (thrust::reduce_by_key): writes one
/// (key, reduced value) per run into out_keys/out_values and returns the
/// run count. Output vectors must be at least as large as the input.
template <typename K, typename V, typename Op = std::plus<V>>
std::size_t reduce_by_key(const DeviceVector<K>& keys,
                          const DeviceVector<V>& values,
                          DeviceVector<K>& out_keys,
                          DeviceVector<V>& out_values, Op op = Op{},
                          StreamId stream = kDefaultStream) {
  DeviceContext& ctx = detail::ctx_of(keys);
  GPCLUST_CHECK(values.context() == &ctx && out_keys.context() == &ctx &&
                    out_values.context() == &ctx,
                "vectors belong to different devices");
  GPCLUST_CHECK(keys.size() == values.size(), "key/value size mismatch");
  GPCLUST_CHECK(out_keys.size() >= keys.size() &&
                    out_values.size() >= values.size(),
                "output too small");
  auto ks = keys.device_span();
  auto vs = values.device_span();
  auto ok = out_keys.device_span();
  auto ov = out_values.device_span();
  std::size_t runs = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (runs > 0 && ok[runs - 1] == ks[i]) {
      ov[runs - 1] = op(ov[runs - 1], vs[i]);
    } else {
      ok[runs] = ks[i];
      ov[runs] = vs[i];
      ++runs;
    }
  }
  ctx.timeline().enqueue(stream, OpKind::Kernel, ctx.transform_cost(ks.size()),
                         0.0);
  return runs;
}

/// out[i] = in[map[i]] (thrust::gather).
template <typename T>
double gather(const DeviceVector<T>& in, const DeviceVector<u64>& map,
              DeviceVector<T>& out, StreamId stream = kDefaultStream,
              double ready_after = 0.0) {
  DeviceContext& ctx = detail::ctx_of(in);
  detail::maybe_inject_kernel_fault(ctx, "gather");
  GPCLUST_CHECK(out.size() >= map.size(), "output too small");
  auto src = in.device_span();
  auto idx = map.device_span();
  auto dst = out.device_span();
  ctx.pool().parallel_for(0, idx.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      GPCLUST_CHECK(idx[i] < src.size(), "gather index out of range");
      dst[i] = src[idx[i]];
    }
  });
  return ctx.timeline().enqueue(stream, OpKind::Kernel,
                                ctx.transform_cost(idx.size()), ready_after);
}

}  // namespace gpclust::device
