#pragma once
// Shared retry accounting for device-side resilience ladders: the
// deterministic backoff a faulted batch pays before its retry is modeled
// device time, charged to the faulted lane's compute stream. Lives in the
// device layer so every scheduler that retries batches (core's shingling
// pass, align's verify pipeline) charges identically.

#include <string>

#include "device/device_context.hpp"
#include "device/sim_timeline.hpp"
#include "fault/resilience.hpp"

namespace gpclust::device {

/// Charges the deterministic retry backoff for (1-based) retry `attempt`
/// to the context's modeled timeline on `stream` (the faulted batch's
/// compute stream, so the stall lands in the right lane), attributed to
/// phase "<trace_phase>.retry" when a tracer is attached — so retry cost
/// is part of modeled device time and visible in the exported trace.
void charge_retry_backoff(DeviceContext& ctx,
                          const fault::ResiliencePolicy& policy, int attempt,
                          const std::string& trace_phase,
                          StreamId stream = kDefaultStream);

}  // namespace gpclust::device
