#include "device/device_context.hpp"

namespace gpclust::device {

DeviceContext::DeviceContext(DeviceSpec spec, util::ThreadPool* pool)
    : spec_(std::move(spec)),
      arena_(spec_.global_memory_bytes),
      // Engine-exclusive: one compute front-end plus one DMA engine per
      // copy direction, like the K20's — streams overlap across kinds but
      // same-kind ops serialize (DESIGN.md §8).
      timeline_(/*num_streams=*/4, /*engine_exclusive=*/true),
      pool_(pool ? pool : &util::default_thread_pool()) {}

double DeviceContext::transform_cost(std::size_t elements) const {
  return spec_.kernel_launch_sec +
         static_cast<double>(elements) / spec_.transform_elems_per_sec;
}

double DeviceContext::sort_cost(std::size_t elements) const {
  return spec_.kernel_launch_sec +
         static_cast<double>(elements) / spec_.sort_elems_per_sec;
}

double DeviceContext::segmented_sort_cost(std::size_t elements,
                                          std::size_t max_segment_bytes) const {
  const double base = sort_cost(elements);
  if (max_segment_bytes <= spec_.shared_memory_per_block) return base;
  // Oversized segments spill to global memory; model a 4x throughput hit
  // on the whole pass (the spilling segments dominate it).
  return spec_.kernel_launch_sec + (base - spec_.kernel_launch_sec) * 4.0;
}

double DeviceContext::h2d_cost(std::size_t bytes) const {
  return spec_.transfer_latency_sec +
         static_cast<double>(bytes) / spec_.h2d_bytes_per_sec;
}

double DeviceContext::align_cost(std::size_t cells) const {
  return spec_.kernel_launch_sec +
         static_cast<double>(cells) / spec_.align_cells_per_sec;
}

double DeviceContext::d2h_cost(std::size_t bytes) const {
  return spec_.transfer_latency_sec +
         static_cast<double>(bytes) / spec_.d2h_bytes_per_sec;
}

}  // namespace gpclust::device
