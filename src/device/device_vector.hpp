#pragma once
// DeviceVector<T>: the thrust::device_vector analog. Owns a block of
// simulated device memory (capacity-accounted in the context's arena) and
// is only legally touched by the primitives in primitives.hpp or by the
// explicit copy functions below, which charge modeled transfer time on the
// context timeline.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "device/device_context.hpp"
#include "device/fault_points.hpp"
#include "obs/trace.hpp"
#include "util/common.hpp"

namespace gpclust::device {

template <typename T>
class DeviceVector {
 public:
  DeviceVector() = default;

  DeviceVector(DeviceContext& ctx, std::size_t size)
      : ctx_(&ctx), allocated_bytes_(size * sizeof(T)) {
    ctx_->arena().allocate(allocated_bytes_);
    // Strong exception safety: if the backing store cannot be created the
    // arena reservation must not leak (the destructor never runs when the
    // constructor throws).
    try {
      data_.resize(size);
    } catch (...) {
      ctx_->arena().release(allocated_bytes_);
      ctx_ = nullptr;
      allocated_bytes_ = 0;
      throw;
    }
  }

  ~DeviceVector() { release(); }

  DeviceVector(const DeviceVector&) = delete;
  DeviceVector& operator=(const DeviceVector&) = delete;

  DeviceVector(DeviceVector&& other) noexcept { swap(other); }
  DeviceVector& operator=(DeviceVector&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t bytes() const { return data_.size() * sizeof(T); }
  DeviceContext* context() const { return ctx_; }

  /// Frees the device allocation.
  void release() {
    if (ctx_ != nullptr) {
      ctx_->arena().release(allocated_bytes_);
      ctx_ = nullptr;
      allocated_bytes_ = 0;
    }
    data_.clear();
    data_.shrink_to_fit();
  }

  // "Device-side" access for primitives/kernels. Host algorithm code must
  // not dereference these directly (same discipline as raw device pointers
  // in CUDA); use copy_to_host/copy_to_device.
  std::span<T> device_span() { return {data_.data(), data_.size()}; }
  std::span<const T> device_span() const {
    return {data_.data(), data_.size()};
  }

 private:
  void swap(DeviceVector& other) {
    std::swap(ctx_, other.ctx_);
    std::swap(data_, other.data_);
    std::swap(allocated_bytes_, other.allocated_bytes_);
  }

  DeviceContext* ctx_ = nullptr;
  std::vector<T> data_;
  std::size_t allocated_bytes_ = 0;
};

/// Synchronous host->device copy on `stream`; charges modeled H2D time.
/// Returns the op completion time on the timeline.
template <typename T>
double copy_to_device(DeviceVector<T>& dst, std::span<const T> src,
                      StreamId stream = kDefaultStream,
                      double ready_after = 0.0) {
  GPCLUST_CHECK(dst.context() != nullptr, "destination is not allocated");
  GPCLUST_CHECK(src.size() <= dst.size(), "device buffer too small");
  DeviceContext& ctx = *dst.context();
  detail::maybe_inject_transfer_fault(ctx, fault::FaultSite::H2D,
                                      src.size() * sizeof(T));
  std::copy(src.begin(), src.end(), dst.device_span().begin());
  obs::add_counter(ctx.tracer(), "h2d_bytes", src.size() * sizeof(T));
  return ctx.timeline().enqueue(stream, OpKind::CopyH2D,
                                ctx.h2d_cost(src.size() * sizeof(T)),
                                ready_after);
}

/// Synchronous device->host copy of dst.size() elements from the front of
/// `src`; charges modeled D2H time. Returns the op completion time.
template <typename T>
double copy_to_host(std::span<T> dst, const DeviceVector<T>& src,
                    StreamId stream = kDefaultStream,
                    double ready_after = 0.0) {
  GPCLUST_CHECK(src.context() != nullptr, "source is not allocated");
  GPCLUST_CHECK(dst.size() <= src.size(), "host buffer larger than source");
  DeviceContext& ctx = *src.context();
  detail::maybe_inject_transfer_fault(ctx, fault::FaultSite::D2H,
                                      dst.size() * sizeof(T));
  auto sp = src.device_span();
  std::copy(sp.begin(), sp.begin() + static_cast<std::ptrdiff_t>(dst.size()),
            dst.begin());
  obs::add_counter(ctx.tracer(), "d2h_bytes", dst.size() * sizeof(T));
  return ctx.timeline().enqueue(stream, OpKind::CopyD2H,
                                ctx.d2h_cost(dst.size() * sizeof(T)),
                                ready_after);
}

}  // namespace gpclust::device
