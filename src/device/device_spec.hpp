#pragma once
// Description of the simulated GPU device.
//
// There is no physical GPU in this environment (see DESIGN.md §1), so the
// device layer executes "kernels" on host threads while charging *modeled*
// time from the spec below. The tesla_k20() preset is calibrated against
// the device's raw aggregate-cycle advantage over one host core (see the
// comment in device_spec.cpp) so that the speedup *ratios* of the paper's
// Table I — tens-of-X on the accelerated hashing+sorting part — are
// reproduced relative to the measured serial baseline; absolute seconds
// scale with the (much smaller) synthetic workloads.

#include <cstddef>
#include <string>

#include "util/common.hpp"

namespace gpclust::device {

struct DeviceSpec {
  std::string name = "sim";

  /// Device ("global") memory capacity; allocations beyond this throw and
  /// drive the batching logic of gpClust.
  std::size_t global_memory_bytes = 5ULL << 30;

  std::size_t num_cores = 2496;  // K20: 13 SMX x 192 cores
  double clock_ghz = 0.706;
  std::size_t warp_size = 32;

  /// Per-block shared memory (paper §II: "its memory latency is roughly
  /// 100X lower comparing to the latency of the global memory"). Sort
  /// segments that fit run the fast path; larger ones pay the
  /// global-memory penalty in the cost model.
  std::size_t shared_memory_per_block = 48 << 10;

  /// Effective modeled element throughput of a map-style kernel
  /// (hashing one adjacency entry), elements/second.
  double transform_elems_per_sec = 1.0e9;

  /// Effective modeled element throughput of (segmented) sort, already
  /// amortized per element (the n log n factor is folded in, as the
  /// paper's workloads sort fixed-degree-scale segments).
  double sort_elems_per_sec = 2.0e8;

  /// Effective modeled DP-cell throughput of the batched Smith-Waterman
  /// verification kernel, cells/second (GCUPS * 1e9). Unlike transform,
  /// the work per task is data-dependent (|a| * |b| cells), so the verify
  /// primitive charges total cells rather than element count.
  double align_cells_per_sec = 2.0e9;

  /// Per-kernel launch latency, seconds.
  double kernel_launch_sec = 10e-6;

  /// Effective host->device / device->host copy bandwidth, bytes/second.
  /// Calibrated to the paper's synchronous Thrust transfers, not PCIe peak.
  double h2d_bytes_per_sec = 300e6;
  double d2h_bytes_per_sec = 500e6;

  /// Fixed per-transfer overhead, seconds (driver + pageable staging).
  double transfer_latency_sec = 50e-6;

  /// NVIDIA Tesla K20, as used in the paper's experiments (§IV-B),
  /// with effective rates calibrated to Table I.
  static DeviceSpec tesla_k20();

  /// NVIDIA Tesla C2050 — the Fermi generation the paper's §II contrasts
  /// with Kepler ("called SMs in Fermi, and SMXs in Kepler"): 448 cores,
  /// 3 GB, proportionally lower effective throughput. For device sweeps.
  static DeviceSpec tesla_c2050();

  /// Tiny device (a few MB) used by tests to force multi-batch execution
  /// and adjacency-list splitting on small graphs.
  static DeviceSpec small_test_device(std::size_t memory_bytes = 1 << 20);
};

}  // namespace gpclust::device
