#include "device/retry.hpp"

#include "obs/trace.hpp"

namespace gpclust::device {

void charge_retry_backoff(DeviceContext& ctx,
                          const fault::ResiliencePolicy& policy, int attempt,
                          const std::string& trace_phase, StreamId stream) {
  obs::DevicePhaseScope scope(ctx.tracer(), trace_phase + ".retry");
  ctx.timeline().ensure_streams(stream + 1);
  const double backoff = policy.retry_backoff_seconds *
                         static_cast<double>(u64{1} << (attempt - 1));
  ctx.timeline().enqueue(stream, OpKind::Kernel, backoff);
}

}  // namespace gpclust::device
