#include "device/memory_arena.hpp"

#include <algorithm>
#include <string>

#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"

namespace gpclust::device {

void MemoryArena::allocate(std::size_t bytes) {
  if (fault_plan_ != nullptr &&
      fault_plan_->should_fault(fault::FaultSite::Alloc)) {
    obs::add_counter(tracer_, "faults_injected", 1);
    throw DeviceError("injected out of device memory (fault plan, alloc #" +
                      std::to_string(fault_plan_->calls(fault::FaultSite::Alloc) - 1) +
                      ", " + std::to_string(bytes) + " bytes)");
  }
  if (bytes > capacity_ - used_) {
    throw DeviceError("out of device memory: requested " +
                      std::to_string(bytes) + " bytes, " +
                      std::to_string(capacity_ - used_) + " of " +
                      std::to_string(capacity_) + " available");
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  ++live_allocations_;
  if (tracer_ != nullptr) {
    tracer_->raise_counter("arena_peak_bytes", peak_);
  }
}

void MemoryArena::release(std::size_t bytes) {
  GPCLUST_CHECK(bytes <= used_, "releasing more device memory than allocated");
  GPCLUST_CHECK(live_allocations_ > 0, "no live device allocations");
  used_ -= bytes;
  --live_allocations_;
}

}  // namespace gpclust::device
