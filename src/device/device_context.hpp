#pragma once
// DeviceContext: one simulated GPU — memory arena, event timeline, cost
// model and the host thread pool that stands in for the device's cores.
// Mirrors the role of a CUDA context; DeviceVector and the primitives in
// primitives.hpp all operate through one of these.

#include <cstddef>
#include <memory>

#include "device/device_spec.hpp"
#include "device/memory_arena.hpp"
#include "device/sim_timeline.hpp"
#include "util/thread_pool.hpp"

namespace gpclust::fault {
class FaultPlan;
}

namespace gpclust::device {

class DeviceContext {
 public:
  explicit DeviceContext(DeviceSpec spec,
                         util::ThreadPool* pool = nullptr);

  const DeviceSpec& spec() const { return spec_; }
  MemoryArena& arena() { return arena_; }
  const MemoryArena& arena() const { return arena_; }
  SimTimeline& timeline() { return timeline_; }
  const SimTimeline& timeline() const { return timeline_; }
  util::ThreadPool& pool() { return *pool_; }

  // --- cost model -------------------------------------------------------
  double transform_cost(std::size_t elements) const;
  double sort_cost(std::size_t elements) const;
  /// Segmented sort: the base sort cost, multiplied by the global-memory
  /// penalty when the largest segment exceeds per-block shared memory.
  double segmented_sort_cost(std::size_t elements,
                             std::size_t max_segment_bytes) const;
  double h2d_cost(std::size_t bytes) const;
  double d2h_cost(std::size_t bytes) const;
  /// Batched alignment kernel charged by total DP cells (sum of
  /// |a| * |b| over the batch's pair tasks), not element count.
  double align_cost(std::size_t cells) const;

  // --- accounting accessors (Table I columns) ----------------------------
  double gpu_seconds() const { return timeline_.busy(OpKind::Kernel); }
  double h2d_seconds() const { return timeline_.busy(OpKind::CopyH2D); }
  double d2h_seconds() const { return timeline_.busy(OpKind::CopyD2H); }
  /// Modeled device-side wall time respecting stream overlap.
  double makespan() const { return timeline_.makespan(); }
  /// Critical-path (non-overlapped) seconds per component: the share of the
  /// makespan attributable to kernels / H2D / D2H after stream overlap.
  /// The three sum to makespan(); see SimTimeline::exposed.
  double gpu_exposed_seconds() const {
    return timeline_.exposed(OpKind::Kernel);
  }
  double h2d_exposed_seconds() const {
    return timeline_.exposed(OpKind::CopyH2D);
  }
  double d2h_exposed_seconds() const {
    return timeline_.exposed(OpKind::CopyD2H);
  }

  /// Clears timing (not memory) state between runs.
  void reset_timeline() { timeline_.reset(); }

  // --- observability ------------------------------------------------------
  /// Attaches an obs tracer to the whole device: the timeline records each
  /// modeled op as a device-modeled span, the arena mirrors its high-water
  /// mark, and the transfer helpers count H2D/D2H bytes. Null detaches.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    timeline_.set_tracer(tracer);
    arena_.set_tracer(tracer);
  }
  obs::Tracer* tracer() const { return tracer_; }

  // --- fault injection ----------------------------------------------------
  /// Attaches a deterministic fault plan to the whole device: the arena
  /// consults its "alloc" site, the transfer helpers "h2d"/"d2h", and
  /// every kernel primitive "kernel". Null detaches.
  void set_fault_plan(fault::FaultPlan* plan) {
    fault_plan_ = plan;
    arena_.set_fault_plan(plan);
  }
  fault::FaultPlan* fault_plan() const { return fault_plan_; }

 private:
  DeviceSpec spec_;
  MemoryArena arena_;
  SimTimeline timeline_;
  util::ThreadPool* pool_;
  obs::Tracer* tracer_ = nullptr;
  fault::FaultPlan* fault_plan_ = nullptr;
};

}  // namespace gpclust::device
