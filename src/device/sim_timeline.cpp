#include "device/sim_timeline.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace gpclust::device {

namespace {
constexpr std::string_view kOpCategory[kNumOpKinds] = {"kernel", "copy_h2d",
                                                       "copy_d2h"};
}  // namespace

SimTimeline::SimTimeline(std::size_t num_streams, bool engine_exclusive)
    : cursors_(num_streams, 0.0), engine_exclusive_(engine_exclusive) {
  GPCLUST_CHECK(num_streams >= 1, "need at least one stream");
}

void SimTimeline::ensure_streams(std::size_t n) {
  if (n > cursors_.size()) cursors_.resize(n, 0.0);
}

double SimTimeline::enqueue(StreamId stream, OpKind kind, double duration,
                            double ready_after) {
  GPCLUST_CHECK(stream < cursors_.size(), "stream id out of range");
  GPCLUST_CHECK(duration >= 0.0, "negative duration");
  const std::size_t k = static_cast<std::size_t>(kind);
  double start = std::max(cursors_[stream], ready_after);
  if (engine_exclusive_) start = std::max(start, engines_[k]);
  const double end = start + duration;
  cursors_[stream] = end;
  engines_[k] = std::max(engines_[k], end);
  busy_[k] += duration;
  // Critical-path attribution: the op "exposes" only the seconds by which
  // it pushed the global completion frontier; time hidden behind other
  // streams' ops is overlap. Summed over kinds this reconstructs the
  // makespan exactly.
  exposed_[k] += std::max(0.0, end - frontier_);
  frontier_ = std::max(frontier_, end);
  ++num_ops_;
  if (tracer_ != nullptr) {
    tracer_->record_modeled_op(kOpCategory[k], start, duration, stream);
  }
  return end;
}

double SimTimeline::stream_cursor(StreamId stream) const {
  GPCLUST_CHECK(stream < cursors_.size(), "stream id out of range");
  return cursors_[stream];
}

double SimTimeline::makespan() const {
  return *std::max_element(cursors_.begin(), cursors_.end());
}

void SimTimeline::reset() {
  std::fill(cursors_.begin(), cursors_.end(), 0.0);
  busy_.fill(0.0);
  engines_.fill(0.0);
  exposed_.fill(0.0);
  frontier_ = 0.0;
  num_ops_ = 0;
}

}  // namespace gpclust::device
