#include "device/sim_timeline.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace gpclust::device {

namespace {
constexpr std::string_view kOpCategory[kNumOpKinds] = {"kernel", "copy_h2d",
                                                       "copy_d2h"};
}  // namespace

SimTimeline::SimTimeline(std::size_t num_streams) : cursors_(num_streams, 0.0) {
  GPCLUST_CHECK(num_streams >= 1, "need at least one stream");
}

double SimTimeline::enqueue(StreamId stream, OpKind kind, double duration,
                            double ready_after) {
  GPCLUST_CHECK(stream < cursors_.size(), "stream id out of range");
  GPCLUST_CHECK(duration >= 0.0, "negative duration");
  const double start = std::max(cursors_[stream], ready_after);
  cursors_[stream] = start + duration;
  busy_[static_cast<std::size_t>(kind)] += duration;
  ++num_ops_;
  if (tracer_ != nullptr) {
    tracer_->record_modeled_op(kOpCategory[static_cast<std::size_t>(kind)],
                               start, duration, stream);
  }
  return cursors_[stream];
}

double SimTimeline::stream_cursor(StreamId stream) const {
  GPCLUST_CHECK(stream < cursors_.size(), "stream id out of range");
  return cursors_[stream];
}

double SimTimeline::makespan() const {
  return *std::max_element(cursors_.begin(), cursors_.end());
}

void SimTimeline::reset() {
  std::fill(cursors_.begin(), cursors_.end(), 0.0);
  busy_.fill(0.0);
  num_ops_ = 0;
}

}  // namespace gpclust::device
