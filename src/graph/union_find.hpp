#pragma once
// Disjoint-set forest with union by rank and path halving (Tarjan [21] in
// the paper). Phase III of the Shingling heuristic unions first- and
// second-level shingle membership into the final non-overlapping partition.

#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace gpclust::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t size() const { return parent_.size(); }

  /// Representative of x's set (with path halving).
  std::size_t find(std::size_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b);

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const { return num_sets_; }

  /// Size of the set containing x.
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }

  /// Labels each element with a dense set id in [0, num_sets()); elements in
  /// the same set share a label.
  std::vector<u32> component_labels();

 private:
  std::vector<u32> parent_;
  std::vector<u32> rank_;
  std::vector<u32> size_;
  std::size_t num_sets_;
};

}  // namespace gpclust::graph
