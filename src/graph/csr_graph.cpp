#include "graph/csr_graph.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace gpclust::graph {

CsrGraph CsrGraph::from_edge_list(EdgeList edges) {
  edges.canonicalize();
  const std::size_t n = edges.num_vertices();

  CsrGraph g;
  g.num_edges_ = edges.edges().size();
  g.offsets_.assign(n + 1, 0);

  // Counting pass: each undirected edge contributes to both endpoints.
  for (const Edge& e : edges.edges()) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(g.offsets_[n]);
  std::vector<u64> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges.edges()) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  // Edges were sorted by (u,v), so each u's list of v's is already ascending;
  // but the reverse direction entries interleave, so sort per list.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  return g;
}

CsrGraph CsrGraph::from_csr(std::vector<u64> offsets,
                            std::vector<VertexId> adjacency) {
  GPCLUST_CHECK(!offsets.empty(), "offsets must have at least one entry");
  GPCLUST_CHECK(offsets.back() == adjacency.size(),
                "offsets.back() must equal adjacency.size()");
  GPCLUST_CHECK(std::is_sorted(offsets.begin(), offsets.end()),
                "offsets must be non-decreasing");
  CsrGraph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.num_edges_ = g.adjacency_.size() / 2;
  return g;
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

u64 CsrGraph::digest() const {
  u64 h = util::mix64(num_vertices());
  for (u64 off : offsets_) h = util::mix64(h ^ off);
  for (VertexId v : adjacency_) h = util::mix64(h ^ v);
  return h;
}

std::size_t CsrGraph::num_singletons() const {
  std::size_t count = 0;
  for (std::size_t v = 0; v < num_vertices(); ++v) {
    if (degree(static_cast<VertexId>(v)) == 0) ++count;
  }
  return count;
}

}  // namespace gpclust::graph
