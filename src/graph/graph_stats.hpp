#pragma once
// Graph statistics matching the paper's Table II: vertex/edge counts,
// average degree +/- standard deviation, largest connected component.

#include <string>

#include "graph/csr_graph.hpp"
#include "util/stats.hpp"

namespace gpclust::graph {

struct GraphStats {
  std::size_t num_vertices = 0;      // all vertices, incl. singletons
  std::size_t num_non_singletons = 0;
  std::size_t num_edges = 0;
  util::RunningStats degree;         // over non-singleton vertices
  u64 largest_cc = 0;
  std::size_t num_components = 0;    // among non-singleton vertices

  /// One-line summary, e.g. for logging.
  std::string summary() const;
};

GraphStats compute_graph_stats(const CsrGraph& g);

}  // namespace gpclust::graph
