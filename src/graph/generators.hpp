#pragma once
// Synthetic graph generators.
//
// The planted-family generator is the data substitute for the GOS homology
// graphs (see DESIGN.md): it plants a known family partition with dense
// intra-family connectivity, sparser intra-superfamily connectivity
// (mimicking the profile-level relationships of the paper's benchmark
// partition), and background noise edges. The generator returns both the
// graph and the two levels of ground truth.

#include <cstddef>
#include <vector>

#include "graph/csr_graph.hpp"
#include "util/common.hpp"

namespace gpclust::graph {

struct PlantedFamilyConfig {
  std::size_t num_families = 100;
  /// Family sizes are drawn from a truncated Pareto distribution, giving the
  /// heavy-tailed size spectrum seen in Table IV (avg 201, max 20K).
  std::size_t min_family_size = 4;
  std::size_t max_family_size = 2000;
  double pareto_alpha = 1.6;

  /// Probability of an edge between two members of the same family.
  double intra_family_edge_prob = 0.6;

  /// When positive, each family draws its own edge probability uniformly
  /// from [intra_family_edge_prob_min, intra_family_edge_prob] — real
  /// homology graphs mix tight and loose families, which is what makes
  /// fixed-k linkage baselines fragment the loose ones.
  double intra_family_edge_prob_min = 0.0;

  /// Families are grouped into superfamilies of this many families each;
  /// the superfamily labels form the coarser "benchmark" partition.
  std::size_t families_per_superfamily = 3;
  /// Probability of an edge between members of different families within
  /// the same superfamily (profile-level, weaker homology).
  double intra_superfamily_edge_prob = 0.01;

  /// Expected number of uniformly random background edges per vertex.
  double noise_edges_per_vertex = 0.05;

  /// Extra isolated vertices appended after the family vertices (the paper's
  /// input has ~15% singletons which are dropped before clustering).
  std::size_t num_singletons = 0;

  u64 seed = 42;
};

struct PlantedGraph {
  CsrGraph graph;
  /// family[v]: fine-grained planted family of v; singletons get a unique
  /// label each (so truth partitions are total).
  std::vector<u32> family;
  /// superfamily[v]: coarse "benchmark" label (profile-expanded analog).
  std::vector<u32> superfamily;
  std::size_t num_families = 0;
  std::size_t num_superfamilies = 0;
};

PlantedGraph generate_planted_families(const PlantedFamilyConfig& config);

/// Erdos-Renyi G(n, p) via geometric edge skipping; p small.
CsrGraph generate_erdos_renyi(std::size_t n, double p, u64 seed);

/// Chung-Lu graph with Pareto(alpha, min_degree) expected degrees —
/// the scale-test workload for the large-run bench.
CsrGraph generate_power_law(std::size_t n, double avg_degree, double alpha,
                            u64 seed);

}  // namespace gpclust::graph
