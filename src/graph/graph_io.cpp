#include "graph/graph_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace gpclust::graph {

namespace {
constexpr u64 kMagic = 0x67704373725631ULL;  // "gpCsrV1"

void throw_io(const std::string& what, const std::string& path) {
  throw ParseError(what + ": " + path);
}
}  // namespace

void write_edge_list_text(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw_io("cannot open for writing", path);
  out << "# gpclust edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  for (std::size_t u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      if (v > u) out << u << ' ' << v << '\n';
    }
  }
  if (!out) throw_io("write failed", path);
}

CsrGraph read_edge_list_text(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw_io("cannot open for reading", path);
  EdgeList edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    u64 u, v;
    if (!(ss >> u >> v)) {
      throw ParseError("malformed edge at " + path + ":" +
                       std::to_string(lineno));
    }
    edges.add(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return CsrGraph::from_edge_list(std::move(edges));
}

void write_csr_binary(const CsrGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw_io("cannot open for writing", path);
  const u64 header[3] = {kMagic, g.offsets().size(), g.adjacency().size()};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(u64)));
  out.write(
      reinterpret_cast<const char*>(g.adjacency().data()),
      static_cast<std::streamsize>(g.adjacency().size() * sizeof(VertexId)));
  if (!out) throw_io("write failed", path);
}

CsrGraph read_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw_io("cannot open for reading", path);
  u64 header[3];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kMagic) throw_io("bad magic", path);
  std::vector<u64> offsets(header[1]);
  std::vector<VertexId> adjacency(header[2]);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(u64)));
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(adjacency.size() * sizeof(VertexId)));
  if (!in) throw_io("truncated file", path);
  return CsrGraph::from_csr(std::move(offsets), std::move(adjacency));
}

}  // namespace gpclust::graph
