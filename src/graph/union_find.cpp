#include "graph/union_find.hpp"

#include <limits>
#include <numeric>

namespace gpclust::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), num_sets_(n) {
  GPCLUST_CHECK(n <= std::numeric_limits<u32>::max(),
                "UnionFind supports up to 2^32-1 elements");
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::size_t UnionFind::find(std::size_t x) {
  GPCLUST_CHECK(x < parent_.size(), "element out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<u32>(ra);
  size_[ra] += size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<u32> UnionFind::component_labels() {
  std::vector<u32> labels(parent_.size());
  constexpr u32 kUnset = std::numeric_limits<u32>::max();
  std::vector<u32> root_label(parent_.size(), kUnset);
  u32 next = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const std::size_t r = find(i);
    if (root_label[r] == kUnset) root_label[r] = next++;
    labels[i] = root_label[r];
  }
  return labels;
}

}  // namespace gpclust::graph
