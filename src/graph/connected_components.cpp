#include "graph/connected_components.hpp"

#include <algorithm>
#include <limits>

#include "graph/union_find.hpp"

namespace gpclust::graph {

std::vector<u64> ComponentResult::component_sizes() const {
  std::vector<u64> sizes(num_components, 0);
  for (u32 label : labels) ++sizes[label];
  return sizes;
}

u64 ComponentResult::largest() const {
  const auto sizes = component_sizes();
  return sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

std::vector<std::vector<VertexId>> ComponentResult::groups() const {
  std::vector<std::vector<VertexId>> out(num_components);
  const auto sizes = component_sizes();
  for (std::size_t c = 0; c < num_components; ++c) out[c].reserve(sizes[c]);
  for (std::size_t v = 0; v < labels.size(); ++v) {
    out[labels[v]].push_back(static_cast<VertexId>(v));
  }
  return out;  // ascending within each group by construction
}

ComponentResult connected_components(const CsrGraph& g) {
  constexpr u32 kUnvisited = std::numeric_limits<u32>::max();
  ComponentResult result;
  result.labels.assign(g.num_vertices(), kUnvisited);

  std::vector<VertexId> stack;
  u32 next_label = 0;
  for (std::size_t start = 0; start < g.num_vertices(); ++start) {
    if (result.labels[start] != kUnvisited) continue;
    const u32 label = next_label++;
    result.labels[start] = label;
    stack.push_back(static_cast<VertexId>(start));
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId w : g.neighbors(v)) {
        if (result.labels[w] == kUnvisited) {
          result.labels[w] = label;
          stack.push_back(w);
        }
      }
    }
  }
  result.num_components = next_label;
  return result;
}

ComponentResult connected_components(std::size_t num_vertices,
                                     const std::vector<Edge>& edges) {
  UnionFind uf(num_vertices);
  for (const Edge& e : edges) uf.unite(e.u, e.v);
  ComponentResult result;
  result.labels = uf.component_labels();
  result.num_components = uf.num_sets();
  return result;
}

}  // namespace gpclust::graph
