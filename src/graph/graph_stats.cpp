#include "graph/graph_stats.hpp"

#include "graph/connected_components.hpp"

namespace gpclust::graph {

std::string GraphStats::summary() const {
  return "V=" + std::to_string(num_vertices) +
         " (non-singleton=" + std::to_string(num_non_singletons) + ")" +
         " E=" + std::to_string(num_edges) + " deg=" + degree.format(0) +
         " largestCC=" + std::to_string(largest_cc);
}

GraphStats compute_graph_stats(const CsrGraph& g) {
  GraphStats stats;
  stats.num_vertices = g.num_vertices();
  stats.num_edges = g.num_edges();
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.degree(static_cast<VertexId>(v));
    if (d == 0) continue;
    ++stats.num_non_singletons;
    stats.degree.add(static_cast<double>(d));
  }
  const auto cc = connected_components(g);
  stats.largest_cc = cc.largest();
  // Singletons each form a trivial component; exclude them from the count
  // the way the paper's analysis does.
  stats.num_components =
      cc.num_components - (stats.num_vertices - stats.num_non_singletons);
  return stats;
}

}  // namespace gpclust::graph
