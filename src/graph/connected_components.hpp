#pragma once
// Connected-component detection. pClust uses CC detection twice: to break
// the input graph into independent subproblems, and in Phase III to
// enumerate components of the level-2 shingle graph.

#include <vector>

#include "graph/csr_graph.hpp"
#include "util/common.hpp"

namespace gpclust::graph {

struct ComponentResult {
  /// labels[v] in [0, num_components); vertices share a label iff connected.
  std::vector<u32> labels;
  std::size_t num_components = 0;

  /// Vertex count per component label.
  std::vector<u64> component_sizes() const;

  /// Size of the largest component (0 for an empty graph).
  u64 largest() const;

  /// Vertex ids grouped by component, each group sorted ascending.
  std::vector<std::vector<VertexId>> groups() const;
};

/// Iterative BFS over the CSR graph.
ComponentResult connected_components(const CsrGraph& g);

/// Union-find over a raw (canonical or not) edge list with an explicit
/// vertex count; avoids materializing CSR for one-shot CC queries.
ComponentResult connected_components(std::size_t num_vertices,
                                     const std::vector<Edge>& edges);

}  // namespace gpclust::graph
