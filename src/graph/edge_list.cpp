#include "graph/edge_list.hpp"

#include <algorithm>

namespace gpclust::graph {

void EdgeList::add(VertexId u, VertexId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  const std::size_t needed = static_cast<std::size_t>(v) + 1;
  if (needed > num_vertices_) num_vertices_ = needed;
}

void EdgeList::canonicalize() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::merge(const EdgeList& other) {
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
  num_vertices_ = std::max(num_vertices_, other.num_vertices_);
}

}  // namespace gpclust::graph
