#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace gpclust::graph {

namespace {

using util::Xoshiro256;

/// Truncated Pareto sample in [lo, hi].
std::size_t pareto_size(Xoshiro256& rng, std::size_t lo, std::size_t hi,
                        double alpha) {
  const double u = rng.next_double();
  const double x = static_cast<double>(lo) * std::pow(1.0 - u, -1.0 / alpha);
  return std::min<std::size_t>(
      hi, std::max<std::size_t>(lo, static_cast<std::size_t>(x)));
}

/// Decodes lexicographic pair index in [0, C(k,2)) to (a, b), a < b < k.
std::pair<u64, u64> decode_pair(u64 idx, u64 k) {
  // f(a) = number of pairs whose first element is < a = a*(2k-a-1)/2.
  const double kk = static_cast<double>(k);
  double a_est = ((2.0 * kk - 1.0) -
                  std::sqrt((2.0 * kk - 1.0) * (2.0 * kk - 1.0) -
                            8.0 * static_cast<double>(idx))) /
                 2.0;
  u64 a = static_cast<u64>(std::max(0.0, a_est));
  auto f = [&](u64 x) { return x * (2 * k - x - 1) / 2; };
  while (a > 0 && f(a) > idx) --a;
  while (f(a + 1) <= idx) ++a;
  const u64 b = a + 1 + (idx - f(a));
  return {a, b};
}

/// Calls visit(pair_index) for a Bernoulli(p) subset of [0, total) using
/// geometric skipping — O(expected hits), not O(total).
template <typename Visit>
void sample_pairs(Xoshiro256& rng, u64 total, double p, Visit visit) {
  if (total == 0 || p <= 0.0) return;
  if (p >= 1.0) {
    for (u64 i = 0; i < total; ++i) visit(i);
    return;
  }
  const double log1mp = std::log1p(-p);
  u64 i = 0;
  for (;;) {
    const double u = rng.next_double();
    const double skip = std::floor(std::log1p(-u) / log1mp);
    if (skip >= static_cast<double>(total - i)) return;
    i += static_cast<u64>(skip);
    if (i >= total) return;
    visit(i);
    ++i;
    if (i >= total) return;
  }
}

/// O(1) weighted sampling (Walker's alias method).
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    prob_.resize(n);
    alias_.resize(n);
    const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / sum;
    }
    std::vector<u32> small, large;
    for (std::size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<u32>(i));
    }
    while (!small.empty() && !large.empty()) {
      const u32 s = small.back();
      small.pop_back();
      const u32 l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (u32 i : large) prob_[i] = 1.0;
    for (u32 i : small) prob_[i] = 1.0;
  }

  std::size_t sample(Xoshiro256& rng) const {
    const std::size_t i = rng.next_below(prob_.size());
    return rng.next_double() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<u32> alias_;
};

}  // namespace

PlantedGraph generate_planted_families(const PlantedFamilyConfig& config) {
  GPCLUST_CHECK(config.num_families > 0, "need at least one family");
  GPCLUST_CHECK(config.min_family_size >= 2, "families need >= 2 members");
  GPCLUST_CHECK(config.min_family_size <= config.max_family_size,
                "min_family_size must be <= max_family_size");
  Xoshiro256 rng(config.seed);

  // Draw family sizes and lay the members out over a shuffled id space so
  // family membership is uncorrelated with vertex id.
  std::vector<std::size_t> family_sizes(config.num_families);
  std::size_t family_vertices = 0;
  for (auto& size : family_sizes) {
    size = pareto_size(rng, config.min_family_size, config.max_family_size,
                       config.pareto_alpha);
    family_vertices += size;
  }
  const std::size_t n = family_vertices + config.num_singletons;

  std::vector<VertexId> id_of(n);
  std::iota(id_of.begin(), id_of.end(), 0u);
  for (std::size_t i = n; i > 1; --i) {  // Fisher-Yates
    std::swap(id_of[i - 1], id_of[rng.next_below(i)]);
  }

  PlantedGraph out;
  out.num_families = config.num_families;
  out.family.assign(n, 0);
  out.superfamily.assign(n, 0);

  const std::size_t fps = std::max<std::size_t>(1, config.families_per_superfamily);
  out.num_superfamilies = (config.num_families + fps - 1) / fps;

  // members[f] = shuffled vertex ids of family f.
  std::vector<std::vector<VertexId>> members(config.num_families);
  {
    std::size_t next = 0;
    for (std::size_t f = 0; f < config.num_families; ++f) {
      members[f].reserve(family_sizes[f]);
      for (std::size_t i = 0; i < family_sizes[f]; ++i) {
        const VertexId v = id_of[next++];
        members[f].push_back(v);
        out.family[v] = static_cast<u32>(f);
        out.superfamily[v] = static_cast<u32>(f / fps);
      }
    }
    // Singletons: unique labels beyond the family/superfamily ranges.
    u32 next_family = static_cast<u32>(config.num_families);
    u32 next_super = static_cast<u32>(out.num_superfamilies);
    for (std::size_t i = 0; i < config.num_singletons; ++i) {
      const VertexId v = id_of[next++];
      out.family[v] = next_family++;
      out.superfamily[v] = next_super++;
    }
  }

  EdgeList edges(n);

  // Intra-family edges (optionally with per-family density).
  GPCLUST_CHECK(config.intra_family_edge_prob_min <=
                    config.intra_family_edge_prob,
                "intra_family_edge_prob_min must not exceed the max");
  for (std::size_t f = 0; f < config.num_families; ++f) {
    const auto& m = members[f];
    const u64 k = m.size();
    double p = config.intra_family_edge_prob;
    if (config.intra_family_edge_prob_min > 0.0) {
      p = config.intra_family_edge_prob_min +
          rng.next_double() *
              (config.intra_family_edge_prob - config.intra_family_edge_prob_min);
    }
    sample_pairs(rng, k * (k - 1) / 2, p, [&](u64 idx) {
      const auto [a, b] = decode_pair(idx, k);
      edges.add(m[a], m[b]);
    });
  }

  // Intra-superfamily (cross-family) edges.
  if (config.intra_superfamily_edge_prob > 0.0 && fps > 1) {
    for (std::size_t sf = 0; sf < out.num_superfamilies; ++sf) {
      const std::size_t f_lo = sf * fps;
      const std::size_t f_hi = std::min(config.num_families, f_lo + fps);
      for (std::size_t f1 = f_lo; f1 < f_hi; ++f1) {
        for (std::size_t f2 = f1 + 1; f2 < f_hi; ++f2) {
          const u64 cross =
              static_cast<u64>(members[f1].size()) * members[f2].size();
          sample_pairs(rng, cross, config.intra_superfamily_edge_prob,
                       [&](u64 idx) {
                         edges.add(members[f1][idx / members[f2].size()],
                                   members[f2][idx % members[f2].size()]);
                       });
        }
      }
    }
  }

  // Background noise edges among family vertices (singletons stay isolated).
  const u64 noise = static_cast<u64>(config.noise_edges_per_vertex *
                                     static_cast<double>(family_vertices));
  for (u64 e = 0; e < noise; ++e) {
    const VertexId u = id_of[rng.next_below(family_vertices)];
    const VertexId v = id_of[rng.next_below(family_vertices)];
    edges.add(u, v);
  }

  out.graph = CsrGraph::from_edge_list(std::move(edges));
  return out;
}

CsrGraph generate_erdos_renyi(std::size_t n, double p, u64 seed) {
  GPCLUST_CHECK(p >= 0.0 && p <= 1.0, "probability out of range");
  Xoshiro256 rng(seed);
  EdgeList edges(n);
  const u64 total = static_cast<u64>(n) * (n - 1) / 2;
  sample_pairs(rng, total, p, [&](u64 idx) {
    const auto [a, b] = decode_pair(idx, n);
    edges.add(static_cast<VertexId>(a), static_cast<VertexId>(b));
  });
  return CsrGraph::from_edge_list(std::move(edges));
}

CsrGraph generate_power_law(std::size_t n, double avg_degree, double alpha,
                            u64 seed) {
  GPCLUST_CHECK(n >= 2, "need at least two vertices");
  Xoshiro256 rng(seed);

  // Pareto expected-degree sequence rescaled to the requested average.
  std::vector<double> weights(n);
  double sum = 0.0;
  for (auto& w : weights) {
    w = std::pow(1.0 - rng.next_double(), -1.0 / alpha);
    sum += w;
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (auto& w : weights) w *= scale;

  // Chung-Lu via weighted endpoint sampling (expected m = n*avg/2 edges).
  AliasTable table(weights);
  const u64 m = static_cast<u64>(avg_degree * static_cast<double>(n) / 2.0);
  EdgeList edges(n);
  edges.reserve(m);
  for (u64 e = 0; e < m; ++e) {
    const auto u = static_cast<VertexId>(table.sample(rng));
    const auto v = static_cast<VertexId>(table.sample(rng));
    edges.add(u, v);
  }
  return CsrGraph::from_edge_list(std::move(edges));
}

}  // namespace gpclust::graph
