#pragma once
// Immutable undirected graph in Compressed Sparse Row form. This is the
// "adjacency list" representation the Shingling algorithm consumes
// (paper §III-B: "The graph is made available as an adjacency list").

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/common.hpp"

namespace gpclust::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list. Duplicate edges and self-loops are removed.
  /// Each undirected edge appears in both endpoints' adjacency lists; every
  /// adjacency list is sorted ascending.
  static CsrGraph from_edge_list(EdgeList edges);

  /// Builds directly from offsets/adjacency (used by the shingle-graph
  /// aggregation step, where the bipartite structure is already grouped).
  /// offsets.size() must be num_vertices + 1 and offsets.back() must equal
  /// adjacency.size().
  static CsrGraph from_csr(std::vector<u64> offsets,
                           std::vector<VertexId> adjacency);

  std::size_t num_vertices() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Number of undirected edges (adjacency.size() / 2 for symmetric graphs).
  std::size_t num_edges() const { return num_edges_; }

  /// Total adjacency entries (= sum of degrees).
  std::size_t num_adjacency_entries() const { return adjacency_.size(); }

  std::size_t degree(VertexId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending. (Gamma(v) in the paper's notation.)
  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  bool has_edge(VertexId u, VertexId v) const;

  const std::vector<u64>& offsets() const { return offsets_; }
  const std::vector<VertexId>& adjacency() const { return adjacency_; }

  /// Vertices with degree 0 (the paper drops these before clustering).
  std::size_t num_singletons() const;

  /// Deterministic content digest over the CSR arrays; two graphs hash
  /// equal iff they have identical offsets and adjacency. Used by the
  /// verify-backend equivalence tests (edge-set bit-identity).
  u64 digest() const;

  /// Approximate resident bytes of the CSR arrays.
  std::size_t memory_bytes() const {
    return offsets_.size() * sizeof(u64) +
           adjacency_.size() * sizeof(VertexId);
  }

 private:
  std::vector<u64> offsets_ = {0};  // size num_vertices + 1
  std::vector<VertexId> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace gpclust::graph
