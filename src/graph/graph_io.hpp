#pragma once
// Graph serialization. Two formats:
//  * text: one "u v" pair per line, '#' comments — interoperable and
//    human-inspectable (the format pGraph emits).
//  * binary: magic + counts + raw CSR arrays — used by the large-scale
//    bench so disk I/O time is measurable but not dominant.

#include <string>

#include "graph/csr_graph.hpp"

namespace gpclust::graph {

/// Writes "u v" lines (canonical u < v). Throws on I/O failure.
void write_edge_list_text(const CsrGraph& g, const std::string& path);

/// Parses "u v" lines into a graph. Throws ParseError on malformed input.
CsrGraph read_edge_list_text(const std::string& path);

/// Binary CSR dump/load (little-endian host layout).
void write_csr_binary(const CsrGraph& g, const std::string& path);
CsrGraph read_csr_binary(const std::string& path);

}  // namespace gpclust::graph
