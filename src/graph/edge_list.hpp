#pragma once
// Mutable edge-list builder for undirected similarity graphs. Collects raw
// (possibly duplicated, possibly self-loop) pairs and canonicalizes them:
// self-loops dropped, duplicates removed, both directions present exactly
// once in the derived CSR.

#include <cstddef>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace gpclust::graph {

struct Edge {
  VertexId u;
  VertexId v;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class EdgeList {
 public:
  EdgeList() = default;

  /// Hint the number of vertices; grows automatically as edges are added.
  explicit EdgeList(std::size_t num_vertices) : num_vertices_(num_vertices) {}

  /// Records an undirected edge {u, v}. Self-loops are silently dropped.
  void add(VertexId u, VertexId v);

  void reserve(std::size_t edges) { edges_.reserve(edges); }

  /// Number of vertices = max endpoint seen + 1 (or the constructor hint).
  std::size_t num_vertices() const { return num_vertices_; }

  /// Raw (canonicalized u<v, possibly duplicated) edge count.
  std::size_t raw_size() const { return edges_.size(); }

  /// Sorts and deduplicates; after this, edges() is the canonical set of
  /// undirected edges with u < v.
  void canonicalize();

  const std::vector<Edge>& edges() const { return edges_; }

  /// Appends all edges of `other` (vertex count becomes the max of both).
  void merge(const EdgeList& other);

 private:
  std::vector<Edge> edges_;
  std::size_t num_vertices_ = 0;
};

}  // namespace gpclust::graph
