#include "fault/fault_plan.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace gpclust::fault {

namespace {

struct SiteInfo {
  FaultSite site;
  std::string_view name;
  std::string_view kind;  ///< the fault kind legal at this site
};

constexpr SiteInfo kSites[kNumFaultSites] = {
    {FaultSite::Alloc, "alloc", "oom"},
    {FaultSite::H2D, "h2d", "xfer_fail"},
    {FaultSite::D2H, "d2h", "xfer_fail"},
    {FaultSite::Kernel, "kernel", "kernel_fail"},
    {FaultSite::Send, "send", "comm_fail"},
    {FaultSite::Recv, "recv", "comm_fail"},
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

u64 parse_u64(std::string_view s, const std::string& entry) {
  if (s.empty()) throw InvalidArgument("fault spec: empty index in " + entry);
  u64 value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw InvalidArgument("fault spec: bad number '" + std::string(s) +
                            "' in " + entry);
    }
    value = value * 10 + static_cast<u64>(c - '0');
  }
  return value;
}

}  // namespace

std::string_view site_name(FaultSite site) {
  return kSites[static_cast<std::size_t>(site)].name;
}

FaultPlan::FaultPlan(const FaultPlan& other) {
  std::lock_guard lock(other.mu_);
  schedule_ = other.schedule_;
  down_ranks_ = other.down_ranks_;
  calls_ = other.calls_;
  injected_ = other.injected_;
}

FaultPlan& FaultPlan::operator=(const FaultPlan& other) {
  if (this != &other) {
    FaultPlan copy(other);
    std::lock_guard lock(mu_);
    schedule_ = std::move(copy.schedule_);
    down_ranks_ = std::move(copy.down_ranks_);
    calls_ = copy.calls_;
    injected_ = copy.injected_;
  }
  return *this;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream stream(spec);
  std::string raw;
  while (std::getline(stream, raw, ',')) {
    const std::string entry(trim(raw));
    if (entry.empty()) continue;
    const auto at = entry.find('@');
    if (at == std::string::npos) {
      throw InvalidArgument("fault spec: missing '@' in '" + entry + "'");
    }
    const std::string_view kind = trim(std::string_view(entry).substr(0, at));
    const std::string_view rest = trim(std::string_view(entry).substr(at + 1));

    if (kind == "rank_down") {
      plan.add_rank_down(parse_u64(rest, entry));
      continue;
    }

    const auto colon = rest.find(':');
    if (colon == std::string_view::npos) {
      throw InvalidArgument("fault spec: missing ':<index>' in '" + entry +
                            "'");
    }
    const std::string_view site_str = trim(rest.substr(0, colon));
    const std::string_view index_str = trim(rest.substr(colon + 1));

    const SiteInfo* info = nullptr;
    for (const SiteInfo& s : kSites) {
      if (s.name == site_str) {
        info = &s;
        break;
      }
    }
    if (info == nullptr) {
      throw InvalidArgument("fault spec: unknown site '" +
                            std::string(site_str) + "' in '" + entry + "'");
    }
    if (kind != info->kind) {
      throw InvalidArgument("fault spec: fault '" + std::string(kind) +
                            "' is not valid at site '" + std::string(site_str) +
                            "' (expected " + std::string(info->kind) + ")");
    }

    const auto dash = index_str.find('-');
    if (dash == std::string_view::npos) {
      plan.add(info->site, parse_u64(index_str, entry));
    } else {
      const u64 lo = parse_u64(trim(index_str.substr(0, dash)), entry);
      const u64 hi = parse_u64(trim(index_str.substr(dash + 1)), entry);
      if (hi < lo) {
        throw InvalidArgument("fault spec: empty range in '" + entry + "'");
      }
      plan.add_range(info->site, lo, hi);
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::lock_guard lock(mu_);
  std::string out;
  auto emit = [&out](const std::string& entry) {
    if (!out.empty()) out += ',';
    out += entry;
  };
  for (const SiteInfo& info : kSites) {
    const auto& indices = schedule_[static_cast<std::size_t>(info.site)];
    auto it = indices.begin();
    while (it != indices.end()) {
      const u64 lo = *it;
      u64 hi = lo;
      while (std::next(it) != indices.end() && *std::next(it) == hi + 1) {
        hi = *++it;
      }
      ++it;
      std::string entry = std::string(info.kind) + "@" +
                          std::string(info.name) + ":" + std::to_string(lo);
      if (hi != lo) entry += "-" + std::to_string(hi);
      emit(entry);
    }
  }
  for (std::size_t rank : down_ranks_) {
    emit("rank_down@" + std::to_string(rank));
  }
  return out;
}

void FaultPlan::add(FaultSite site, u64 index) {
  std::lock_guard lock(mu_);
  schedule_[static_cast<std::size_t>(site)].insert(index);
}

void FaultPlan::add_range(FaultSite site, u64 lo, u64 hi) {
  GPCLUST_CHECK(lo <= hi, "fault range must be non-empty");
  std::lock_guard lock(mu_);
  auto& indices = schedule_[static_cast<std::size_t>(site)];
  for (u64 i = lo; i <= hi; ++i) indices.insert(i);
}

void FaultPlan::add_rank_down(std::size_t rank) {
  std::lock_guard lock(mu_);
  down_ranks_.insert(rank);
}

bool FaultPlan::empty() const {
  std::lock_guard lock(mu_);
  for (const auto& indices : schedule_) {
    if (!indices.empty()) return false;
  }
  return down_ranks_.empty();
}

bool FaultPlan::should_fault(FaultSite site) {
  std::lock_guard lock(mu_);
  const std::size_t s = static_cast<std::size_t>(site);
  const u64 index = calls_[s]++;
  const bool fire = schedule_[s].count(index) > 0;
  if (fire) ++injected_;
  return fire;
}

bool FaultPlan::is_rank_down(std::size_t rank) const {
  std::lock_guard lock(mu_);
  return down_ranks_.count(rank) > 0;
}

std::size_t FaultPlan::num_ranks_down() const {
  std::lock_guard lock(mu_);
  return down_ranks_.size();
}

u64 FaultPlan::calls(FaultSite site) const {
  std::lock_guard lock(mu_);
  return calls_[static_cast<std::size_t>(site)];
}

u64 FaultPlan::injected() const {
  std::lock_guard lock(mu_);
  return injected_;
}

void FaultPlan::reset_counters() {
  std::lock_guard lock(mu_);
  calls_.fill(0);
  injected_ = 0;
}

}  // namespace gpclust::fault
