#pragma once
// Deterministic, replayable fault injection for the simulated CPU-GPU
// pipeline. A FaultPlan is a schedule of typed faults keyed by injection
// site and 0-based per-site call index: the 17th arena allocation, the 3rd
// host->device copy, rank 2 of a distributed run. Instrumented sites (the
// arena, the transfer helpers, the kernel primitives, dist::comm send/recv)
// ask the plan `should_fault(site)` on every call, so a given plan fires at
// exactly the same points on every run — every failure is replayable from
// the spec string alone.
//
// Spec grammar (comma-separated entries):
//   oom@alloc:IDX          arena allocation IDX throws DeviceError (OOM)
//   xfer_fail@h2d:IDX      host->device copy IDX throws TransferError
//   xfer_fail@d2h:IDX      device->host copy IDX throws TransferError
//   kernel_fail@kernel:IDX kernel launch IDX throws KernelError
//   comm_fail@send:IDX     comm send IDX throws CommError
//   comm_fail@recv:IDX     comm recv IDX throws CommError
//   rank_down@R            rank R never comes up (reassigned or fatal)
// IDX is a single 0-based index N or an inclusive range N-M (persistent
// faults that defeat bounded retries are ranges of consecutive indices).

#include <array>
#include <cstddef>
#include <mutex>
#include <set>
#include <string>

#include "util/common.hpp"

namespace gpclust::fault {

/// Instrumented call sites a plan can fire at.
enum class FaultSite : int {
  Alloc = 0,   ///< MemoryArena::allocate
  H2D = 1,     ///< copy_to_device
  D2H = 2,     ///< copy_to_host
  Kernel = 3,  ///< device primitive entry (transform, sort, ...)
  Send = 4,    ///< Communicator::send
  Recv = 5,    ///< Communicator::recv
};
inline constexpr std::size_t kNumFaultSites = 6;

std::string_view site_name(FaultSite site);

class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan(const FaultPlan& other);
  FaultPlan& operator=(const FaultPlan& other);

  /// Parses the spec grammar above; throws InvalidArgument on malformed
  /// entries or kind/site mismatches (e.g. "oom@h2d:0").
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string (entries sorted, consecutive indices collapsed
  /// into ranges); parse(to_string()) reproduces the plan.
  std::string to_string() const;

  /// Schedules a fault at the given 0-based call index of `site`.
  void add(FaultSite site, u64 index);
  /// Schedules faults at every index in [lo, hi].
  void add_range(FaultSite site, u64 lo, u64 hi);
  /// Marks rank `rank` as down for the whole run.
  void add_rank_down(std::size_t rank);

  bool empty() const;

  /// Called by an instrumented site: advances the site's call counter and
  /// returns true when a fault is scheduled at this call index.
  /// Thread-safe (device pool threads and dist ranks share one plan).
  bool should_fault(FaultSite site);

  bool is_rank_down(std::size_t rank) const;
  std::size_t num_ranks_down() const;

  /// Calls observed at `site` so far (attempts, not faults).
  u64 calls(FaultSite site) const;
  /// Total faults fired so far (excluding rank_down, which is static).
  u64 injected() const;

  /// Rewinds all call counters so the same plan replays identically;
  /// the schedule itself is untouched.
  void reset_counters();

 private:
  mutable std::mutex mu_;
  std::array<std::set<u64>, kNumFaultSites> schedule_;
  std::set<std::size_t> down_ranks_;
  std::array<u64, kNumFaultSites> calls_{};
  u64 injected_ = 0;
};

}  // namespace gpclust::fault
