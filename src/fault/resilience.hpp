#pragma once
// The policy knob for how the pipeline reacts to device and comm faults
// (injected by a FaultPlan or real, like a genuine arena OOM). Shared by
// GpClust, the device shingling pass and dist::distributed_cluster so one
// policy describes the whole run.

#include <cstddef>
#include <string>

#include "util/common.hpp"

namespace gpclust::fault {

enum class ResilienceMode {
  /// Every fault is terminal: the typed error propagates (seed behavior).
  Off,
  /// Adaptive batch backoff on OOM and bounded deterministic retries for
  /// transient transfer/kernel/comm faults; unrecoverable faults still
  /// propagate.
  Retry,
  /// Retry, plus graceful degradation: after max_consecutive_failures
  /// unrecoverable device faults the remaining input is processed on the
  /// CPU (bit-identical partition); downed ranks are reassigned.
  Fallback,
};

/// Parses "off" | "retry" | "fallback"; throws InvalidArgument otherwise.
ResilienceMode parse_resilience_mode(const std::string& name);
std::string_view resilience_mode_name(ResilienceMode mode);

struct ResiliencePolicy {
  ResilienceMode mode = ResilienceMode::Off;

  /// Bounded retries per transient fault (transfer/kernel/comm).
  int max_retries = 3;

  /// Modeled backoff charged to the SimTimeline before retry k (1-based):
  /// retry_backoff_seconds * 2^(k-1). Deterministic — no jitter — so the
  /// modeled cost of a replayed fault schedule is itself replayable.
  double retry_backoff_seconds = 1e-4;

  /// Unrecoverable device faults tolerated back to back before the
  /// remaining work degrades to the CPU (Fallback mode only).
  int max_consecutive_failures = 2;

  /// Floor for the adaptive batch backoff; OOM below this is
  /// unrecoverable.
  std::size_t min_batch_elements = 1;

  bool enabled() const { return mode != ResilienceMode::Off; }
  bool fallback_enabled() const { return mode == ResilienceMode::Fallback; }
};

}  // namespace gpclust::fault
