#include "fault/resilience.hpp"

namespace gpclust::fault {

ResilienceMode parse_resilience_mode(const std::string& name) {
  if (name == "off") return ResilienceMode::Off;
  if (name == "retry") return ResilienceMode::Retry;
  if (name == "fallback") return ResilienceMode::Fallback;
  throw InvalidArgument("unknown resilience mode '" + name +
                        "' (expected off|retry|fallback)");
}

std::string_view resilience_mode_name(ResilienceMode mode) {
  switch (mode) {
    case ResilienceMode::Off:
      return "off";
    case ResilienceMode::Retry:
      return "retry";
    case ResilienceMode::Fallback:
      return "fallback";
  }
  return "off";
}

}  // namespace gpclust::fault
