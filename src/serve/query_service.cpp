#include "serve/query_service.hpp"

#include <algorithm>

#include "store/delta.hpp"

namespace gpclust::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

std::string_view reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue_full";
    case RejectReason::Expired: return "expired";
  }
  return "unknown";
}

QueryService::QueryService(const store::FamilyStore& store,
                           ServiceConfig config)
    : config_(std::move(config)) {
  config_.validate();
  // Generation 0 aliases the caller-owned store (no copy); reloads own
  // theirs.
  current_ = std::make_shared<const Generation>(
      std::shared_ptr<const store::FamilyStore>(
          std::shared_ptr<const store::FamilyStore>(), &store),
      /*id_in=*/0, config_);
  paused_ = config_.start_paused;
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(config_.profile_cache_capacity));
  }
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;  // workers drain the queue, then exit
    paused_ = false;
  }
  queue_nonempty_.notify_all();
  for (auto& worker : workers_) worker->thread.join();
}

std::future<QueryOutcome> QueryService::submit(std::string query) {
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();

  std::unique_lock lock(mu_);
  ++submitted_;
  obs::add_counter(config_.tracer, "serve.submitted", 1);

  // Admission: explicit backpressure on a full queue, per the shared
  // resilience vocabulary. Retry waits are bounded and deterministic in
  // count and spacing (retry_backoff_seconds * 2^(attempt-1), the same
  // ladder the device layer charges to its modeled timeline — here it is
  // real host time, since admission happens on the measured side).
  if (queue_.size() >= config_.queue_capacity &&
      config_.admission.enabled()) {
    for (int attempt = 1; attempt <= config_.admission.max_retries &&
                          queue_.size() >= config_.queue_capacity;
         ++attempt) {
      ++admission_retries_;
      obs::add_counter(config_.tracer, "serve.admission_retries", 1);
      const auto backoff = std::chrono::duration<double>(
          config_.admission.retry_backoff_seconds *
          static_cast<double>(1 << (attempt - 1)));
      queue_has_space_.wait_for(lock, backoff, [&] {
        return queue_.size() < config_.queue_capacity;
      });
    }
  }
  if (queue_.size() >= config_.queue_capacity) {
    ++rejected_queue_full_;
    obs::add_counter(config_.tracer, "serve.rejected_queue_full", 1);
    lock.unlock();
    promise.set_value(QueryOutcome{RejectReason::QueueFull, {}, 0.0});
    return future;
  }

  ++accepted_;
  obs::add_counter(config_.tracer, "serve.accepted", 1);
  queue_.push_back(
      Job{std::move(query), std::move(promise), std::chrono::steady_clock::now()});
  lock.unlock();
  queue_nonempty_.notify_one();
  return future;
}

std::vector<QueryOutcome> QueryService::classify_batch(
    const std::vector<std::string>& queries) {
  std::vector<std::future<QueryOutcome>> futures;
  futures.reserve(queries.size());
  for (const std::string& query : queries) futures.push_back(submit(query));
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(queries.size());
  for (auto& future : futures) outcomes.push_back(future.get());
  return outcomes;
}

void QueryService::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  queue_nonempty_.notify_all();
}

void QueryService::reload(store::FamilyStore store) {
  auto owned = std::make_shared<const store::FamilyStore>(std::move(store));
  u64 id;
  {
    std::lock_guard lock(mu_);
    id = next_generation_++;
  }
  // Index (and bucket-table) construction happens here, outside mu_: the
  // workers keep serving the old generation for the whole build and only
  // ever block on the pointer swap below.
  auto next = std::make_shared<const Generation>(std::move(owned), id, config_);
  std::lock_guard lock(mu_);
  current_ = std::move(next);
}

void QueryService::reload_with_delta(const store::SnapshotDelta& delta) {
  std::shared_ptr<const Generation> base;
  {
    std::lock_guard lock(mu_);
    base = current_;
  }
  // Throws the typed snapshot errors on chain mismatch or corruption
  // before any swap — the old generation keeps serving.
  reload(store::apply_snapshot_delta(*base->store, delta));
}

u64 QueryService::generation() const {
  std::lock_guard lock(mu_);
  return current_->id;
}

void QueryService::worker_loop(Worker& worker) {
  for (;;) {
    std::unique_lock lock(mu_);
    queue_nonempty_.wait(lock, [&] {
      return (!paused_ && !queue_.empty()) || (stopping_ && !paused_);
    });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    // Pin the generation this query classifies against: the copy keeps
    // it alive across a concurrent reload().
    const std::shared_ptr<const Generation> generation = current_;
    lock.unlock();
    queue_has_space_.notify_one();
    finish(worker, std::move(job), *generation);
  }
}

void QueryService::finish(Worker& worker, Job job,
                          const Generation& generation) {
  const auto dequeued_at = std::chrono::steady_clock::now();
  const double waited = seconds_between(job.submitted_at, dequeued_at);
  obs::Tracer* tracer = config_.tracer;
  if (tracer != nullptr) {
    // Worker threads position their spans explicitly at depth 1 (depth 0
    // is the calling thread's domain — host_busy() must not double count
    // concurrent per-query work).
    tracer->record_host_span("serve.wait", tracer->host_now() - waited, waited,
                             /*depth=*/1);
  }

  QueryOutcome outcome;
  if (config_.queue_timeout_seconds > 0.0 &&
      waited > config_.queue_timeout_seconds) {
    outcome.rejected = RejectReason::Expired;
    outcome.latency_seconds = waited;
    obs::add_counter(tracer, "serve.rejected_expired", 1);
    std::lock_guard worker_lock(worker.mu);
    ++worker.expired;
  } else {
    if (worker.generation_seen != generation.id) {
      // Cached profiles are keyed by representative index in the *old*
      // store; against the new one the same key can name a different
      // sequence. Retire the counters, then start the cache fresh.
      std::lock_guard worker_lock(worker.mu);
      worker.retired_profile_builds += worker.scratch.profiles().builds();
      worker.retired_profile_hits += worker.scratch.profiles().hits();
      worker.scratch = ClassifyScratch(config_.profile_cache_capacity);
      worker.generation_seen = generation.id;
    }
    const double classify_start =
        tracer != nullptr ? tracer->host_now() : 0.0;
    outcome.result =
        generation.buckets != nullptr
            ? generation.index.classify(job.query, config_.classify,
                                        worker.scratch, *generation.buckets)
            : generation.index.classify(job.query, config_.classify,
                                        worker.scratch);
    const auto done = std::chrono::steady_clock::now();
    outcome.latency_seconds = seconds_between(job.submitted_at, done);
    if (tracer != nullptr) {
      tracer->record_host_span("serve.classify", classify_start,
                               seconds_between(dequeued_at, done), /*depth=*/1);
      tracer->record_latency("serve.latency", outcome.latency_seconds);
      obs::add_counter(tracer, "serve.completed", 1);
    }
    std::lock_guard worker_lock(worker.mu);
    worker.latency.record(outcome.latency_seconds);
    ++worker.completed;
  }
  job.promise.set_value(std::move(outcome));
}

ServiceStats QueryService::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(mu_);
    out.submitted = submitted_;
    out.accepted = accepted_;
    out.rejected_queue_full = rejected_queue_full_;
    out.admission_retries = admission_retries_;
  }
  for (const auto& worker : workers_) {
    std::lock_guard lock(worker->mu);
    out.completed += worker->completed;
    out.rejected_expired += worker->expired;
    out.profile_builds +=
        worker->retired_profile_builds + worker->scratch.profiles().builds();
    out.profile_hits +=
        worker->retired_profile_hits + worker->scratch.profiles().hits();
  }
  return out;
}

obs::Histogram QueryService::latency_histogram() const {
  obs::Histogram merged;
  for (const auto& worker : workers_) {
    std::lock_guard lock(worker->mu);
    merged += worker->latency;
  }
  return merged;
}

}  // namespace gpclust::serve
