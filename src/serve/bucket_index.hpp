#pragma once
// BucketIndex — the LSH candidate generator of the serve tier
// (DESIGN.md §13): the banded min-hash signatures the store carries per
// representative (store/signature.hpp) are sliced into bands, each band
// hashed to a bucket key, and queries are classified by probing the
// resulting (key, rep) table instead of scanning the exact k-mer
// postings. Candidate cost then scales with bucket occupancy — reps that
// actually collide with the query — rather than with the total
// representative count, which is what makes the bucketed seed index the
// fast path of FamilyIndex at high family counts (MetaCache's reference
// bucketing, PAPERS.md, transplanted to family representatives).
//
// Two modes, selected by BucketIndexParams::num_bands:
//
//   num_bands >  0   banded LSH: `sig_num_hashes / num_bands` signature
//                    slots per band; a rep is a candidate when at least
//                    `min_band_hits` of its band keys collide with the
//                    query's. Probabilistic recall, tunable by banding.
//   num_bands == 0   full recall: the bucket key IS the k-mer code, one
//                    entry per distinct (code, rep) — the degenerate
//                    banding limit in which every bucket collision is a
//                    shared k-mer. Candidates are then a superset of the
//                    postings path's whenever min_band_hits <=
//                    ClassifyParams::min_shared_kmers, which is what the
//                    bit-identity contract (tests + CI tier 1e) pins.
//
// Either way the candidates carry EXACT shared-k-mer counts (full recall
// counts collisions; banded mode re-intersects the query's codes with the
// rep's sorted code list), so downstream ordering, truncation and
// Smith-Waterman scoring are byte-compatible with the postings path for
// every rep that survives the bucket stage.

#include <span>
#include <vector>

#include "serve/family_index.hpp"
#include "store/signature.hpp"
#include "store/snapshot.hpp"
#include "util/common.hpp"

namespace gpclust::serve {

struct BucketIndexParams {
  /// Signature bands; must divide the store's sig_num_hashes. 0 selects
  /// the full-recall mode (bucket per k-mer code, no signatures probed).
  u64 num_bands = 32;

  /// Band-key collisions required before a representative becomes a
  /// candidate. Full-recall mode counts shared k-mers here, so keeping
  /// this <= ClassifyParams::min_shared_kmers preserves bit-identity
  /// with the postings path.
  u32 min_band_hits = 1;

  void validate(u64 sig_num_hashes) const {
    GPCLUST_CHECK(min_band_hits >= 1, "min_band_hits must be >= 1");
    if (num_bands > 0) {
      GPCLUST_CHECK(sig_num_hashes % num_bands == 0,
                    "num_bands must divide the signature width");
      GPCLUST_CHECK(min_band_hits <= num_bands,
                    "min_band_hits cannot exceed num_bands");
    }
  }
};

/// Read-only bucket table over a store's representatives (optionally a
/// subset — the sharded tier builds one per hosted shard, and a shard's
/// table is exactly the global table filtered to its reps, so per-shard
/// candidate sets partition the single-node set). Thread-safe for
/// concurrent candidates() calls with per-caller scratch, like
/// FamilyIndex.
class BucketIndex {
 public:
  /// `reps` lists the covered representative indices (empty = all). The
  /// store must carry signatures (any loaded/built store does) and must
  /// outlive the index.
  BucketIndex(const store::FamilyStore& store, const BucketIndexParams& params,
              std::span<const u32> reps = {});

  const BucketIndexParams& params() const { return params_; }

  /// Candidate generation: appends (rep, exact shared distinct k-mers) to
  /// `out`, rep-ascending, for every covered representative whose bucket
  /// collisions reach min_band_hits. `query_codes` must be sorted and
  /// distinct (ClassifyScratch::query_codes_ as FamilyIndex fills it).
  /// The shared counts equal the postings path's for the same rep.
  void candidates(std::span<const u64> query_codes, ClassifyScratch& scratch,
                  std::vector<std::pair<u32, u32>>& out) const;

 private:
  u64 exact_shared(std::span<const u64> query_codes, u32 rep) const;

  const store::FamilyStore& store_;
  BucketIndexParams params_;
  store::SignatureHashes hashes_;

  /// (bucket key, rep), sorted — band keys in banded mode, raw k-mer
  /// codes in full-recall mode.
  std::vector<std::pair<u64, u32>> table_;

  /// Covered reps' distinct k-mer codes, sorted per rep (the exact-count
  /// side of banded probing): rep r's codes are
  /// `rep_codes_[rep_code_offsets_[r] .. rep_code_offsets_[r+1])`.
  std::vector<u64> rep_code_offsets_;
  std::vector<u64> rep_codes_;
};

}  // namespace gpclust::serve
