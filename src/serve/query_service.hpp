#pragma once
// QueryService — the concurrent serving wrapper around FamilyIndex
// (DESIGN.md §10): a bounded worker pool consuming a bounded admission
// queue, with explicit backpressure instead of unbounded latency growth.
// When the queue is full, admission follows the fault layer's policy
// vocabulary (fault::ResiliencePolicy):
//
//   Off       reject immediately with QueueFull — the caller sees the
//             overload and can shed load upstream;
//   Retry /   bounded deterministic retries: wait retry_backoff_seconds *
//   Fallback  2^(attempt-1) (host-measured sleep, capped by max_retries)
//             for a slot to open, then reject with QueueFull.
//
// Every admitted query completes (destruction drains the queue), every
// result is bit-identical across worker-pool sizes (classification is a
// pure function of query x store), and the whole path is host-only — no
// device allocations, so the arena-empty invariant holds trivially.
//
// Hot reload (DESIGN.md §15): reload() / reload_with_delta() swap in a
// new store without pausing or draining the pool. The (store, index,
// bucket table) triple is an immutable Generation behind a shared_ptr;
// workers copy the pointer at dequeue, so queries already being
// classified finish against the generation they started with, queries
// dequeued after the swap see the new one, and an old generation is
// freed when its last in-flight query completes.
//
// Observability: per-query host-measured spans ("serve.wait" — admission
// to dequeue; "serve.classify" — dequeue to completion), the
// "serve.latency" log2 histogram (submit to completion), and serve.*
// counters, all on the optional Tracer.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/resilience.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "serve/bucket_index.hpp"
#include "serve/family_index.hpp"

namespace gpclust::store {
struct SnapshotDelta;
}

namespace gpclust::serve {

struct ServiceConfig {
  std::size_t num_workers = 1;
  std::size_t queue_capacity = 64;

  /// Candidate generator feeding the exact Smith-Waterman stage
  /// (family_index.hpp); Bucketed builds one BucketIndex at construction
  /// with `bucket` and classifies through it.
  SeedIndex seed_index = SeedIndex::Postings;
  BucketIndexParams bucket;

  /// Admission behavior when the queue is full (see file comment). Only
  /// `mode`, `max_retries` and `retry_backoff_seconds` apply here; the
  /// device-specific knobs are ignored.
  fault::ResiliencePolicy admission;

  /// When > 0: queries that waited longer than this in the queue are
  /// rejected with Expired at dequeue time instead of being classified —
  /// the per-query timeout of an overloaded service (stale answers are
  /// worthless to a caller that already gave up).
  double queue_timeout_seconds = 0.0;

  /// Workers do not dequeue until resume() is called. Lets tests and the
  /// overload bench fill the queue deterministically.
  bool start_paused = false;

  /// Capacity of each worker's LRU over representative profiles.
  std::size_t profile_cache_capacity = 64;

  ClassifyParams classify;

  obs::Tracer* tracer = nullptr;

  void validate() const {
    GPCLUST_CHECK(num_workers >= 1, "need at least one worker");
    GPCLUST_CHECK(queue_capacity >= 1, "need queue capacity >= 1");
    classify.validate();
  }
};

/// Why a query was rejected instead of classified.
enum class RejectReason {
  None,       ///< not rejected — `result` is valid
  QueueFull,  ///< admission queue full (after any policy retries)
  Expired,    ///< exceeded queue_timeout_seconds before a worker got to it
};
std::string_view reject_reason_name(RejectReason reason);

struct QueryOutcome {
  RejectReason rejected = RejectReason::None;
  ClassifyResult result;  ///< valid iff rejected == None
  /// Host-measured submit-to-completion seconds (0 for admission rejects).
  double latency_seconds = 0.0;
};

struct ServiceStats {
  u64 submitted = 0;
  u64 accepted = 0;
  u64 completed = 0;
  u64 rejected_queue_full = 0;
  u64 rejected_expired = 0;
  u64 admission_retries = 0;  ///< backoff waits taken by Retry admission
  u64 profile_builds = 0;     ///< LRU misses across workers
  u64 profile_hits = 0;       ///< LRU hits across workers
};

class QueryService {
 public:
  /// The store must outlive the service — or its last reload()
  /// superseding it, whichever comes first (reloaded stores are owned by
  /// the service).
  QueryService(const store::FamilyStore& store, ServiceConfig config = {});

  /// Drains the queue (every admitted query completes), then joins the
  /// workers. Implies resume().
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query. The future resolves with either a ClassifyResult
  /// or a RejectReason; admission rejects resolve immediately.
  std::future<QueryOutcome> submit(std::string query);

  /// Submits all queries in order and waits for every outcome; outcome i
  /// belongs to queries[i]. Rejected entries are counted, not retried.
  std::vector<QueryOutcome> classify_batch(
      const std::vector<std::string>& queries);

  /// Releases start_paused workers. Idempotent.
  void resume();

  /// Swaps in a new store without pausing or draining the pool (see file
  /// comment). The index — and the bucket table, when configured — is
  /// built before the swap, off the worker path; the service owns the
  /// reloaded store. Queries queued before the swap but dequeued after it
  /// classify against the new store.
  void reload(store::FamilyStore store);

  /// reload() with the result of applying `delta` to the currently served
  /// store. Chain mismatches and corrupt deltas raise the typed snapshot
  /// errors with the old generation still serving — a failed reload never
  /// degrades the service.
  void reload_with_delta(const store::SnapshotDelta& delta);

  /// Which store new queries classify against: 0 at construction,
  /// incremented by every successful reload.
  u64 generation() const;

  ServiceStats stats() const;

  /// Merged submit-to-completion latency histogram across workers.
  obs::Histogram latency_histogram() const;

  const ServiceConfig& config() const { return config_; }

 private:
  struct Job {
    std::string query;
    std::promise<QueryOutcome> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };

  /// One immutable (store, index, bucket table) unit the workers serve
  /// from. reload() constructs the next generation off to the side and
  /// swaps the `current_` pointer under mu_; a worker copies the pointer
  /// at dequeue, which keeps the generation alive for exactly as long as
  /// some query still classifies against it.
  struct Generation {
    Generation(std::shared_ptr<const store::FamilyStore> store_in, u64 id_in,
               const ServiceConfig& config)
        : store(std::move(store_in)), index(*store), id(id_in) {
      if (config.seed_index == SeedIndex::Bucketed) {
        buckets = std::make_unique<const BucketIndex>(*store, config.bucket);
      }
    }
    /// Never null; an aliasing (non-owning) pointer for the
    /// construction-time store, owning for every reloaded one.
    std::shared_ptr<const store::FamilyStore> store;
    FamilyIndex index;
    std::unique_ptr<const BucketIndex> buckets;
    u64 id;
  };

  /// One worker's thread plus everything it owns. The scratch (profile
  /// LRU) and histogram are worker-local so the classify hot path takes
  /// no shared lock; `mu` only guards them against concurrent stats reads.
  struct Worker {
    explicit Worker(std::size_t profile_cache_capacity)
        : scratch(profile_cache_capacity) {}
    std::thread thread;
    ClassifyScratch scratch;
    obs::Histogram latency;
    u64 completed = 0;
    u64 expired = 0;
    /// Generation the scratch was last used against. Cached profiles are
    /// keyed by representative index, which is only meaningful within one
    /// store, so the scratch is rebuilt the first time this worker serves
    /// a newer generation; the retired_* counters keep stats() monotone
    /// across the reset. Only the worker thread touches generation_seen.
    u64 generation_seen = 0;
    u64 retired_profile_builds = 0;
    u64 retired_profile_hits = 0;
    mutable std::mutex mu;
  };

  void worker_loop(Worker& worker);
  void finish(Worker& worker, Job job, const Generation& generation);

  ServiceConfig config_;

  mutable std::mutex mu_;
  /// Guarded by mu_; workers copy it at dequeue, reload() swaps it.
  std::shared_ptr<const Generation> current_;
  u64 next_generation_ = 1;
  std::condition_variable queue_nonempty_;
  std::condition_variable queue_has_space_;
  std::deque<Job> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  u64 submitted_ = 0;
  u64 accepted_ = 0;
  u64 rejected_queue_full_ = 0;
  u64 admission_retries_ = 0;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace gpclust::serve
