#include "serve/bucket_index.hpp"

#include <algorithm>

namespace gpclust::serve {

// Band keys come from the shared sketch module (seq/sketch.hpp) so a
// band's bucket key means the same thing here and in the build-side LSH
// seed stage (align/lsh_seeds).
using seq::band_key;

BucketIndex::BucketIndex(const store::FamilyStore& store,
                         const BucketIndexParams& params,
                         std::span<const u32> reps)
    : store_(store),
      params_(params),
      hashes_(store.sig_num_hashes, store.sig_seed) {
  params_.validate(store.sig_num_hashes);
  GPCLUST_CHECK(store.signatures.size() ==
                    store.representatives.size() * store.sig_num_hashes,
                "store signatures missing or malformed");

  const std::size_t num_reps = store.representatives.size();
  std::vector<char> covered(num_reps, reps.empty() ? 1 : 0);
  for (u32 r : reps) {
    GPCLUST_CHECK(r < num_reps, "covered rep out of range");
    covered[r] = 1;
  }

  // Covered reps' sorted distinct code lists, grouped out of the
  // (code, rep)-sorted postings by count / prefix-sum / place (codes land
  // ascending per rep because the placement pass scans in code order).
  rep_code_offsets_.assign(num_reps + 1, 0);
  for (const store::RepPosting& p : store.postings) {
    if (covered[p.rep]) ++rep_code_offsets_[p.rep + 1];
  }
  for (std::size_t r = 0; r < num_reps; ++r) {
    rep_code_offsets_[r + 1] += rep_code_offsets_[r];
  }
  rep_codes_.resize(rep_code_offsets_.back());
  {
    std::vector<u64> cursor(rep_code_offsets_.begin(),
                            rep_code_offsets_.end() - 1);
    for (const store::RepPosting& p : store.postings) {
      if (covered[p.rep]) rep_codes_[cursor[p.rep]++] = p.code;
    }
  }

  if (params_.num_bands == 0) {
    // Full recall: the table is the covered postings minus positions —
    // already (code, rep)-sorted, every collision an exact shared k-mer.
    table_.reserve(rep_codes_.size());
    for (const store::RepPosting& p : store.postings) {
      if (covered[p.rep]) table_.emplace_back(p.code, p.rep);
    }
    return;
  }

  const u64 rows = store.sig_num_hashes / params_.num_bands;
  table_.reserve(static_cast<std::size_t>(params_.num_bands) * num_reps);
  for (std::size_t r = 0; r < num_reps; ++r) {
    // Reps shorter than k have no codes and an all-empty signature; they
    // can never seed the postings path, so keep them out of every bucket.
    if (!covered[r] || rep_code_offsets_[r] == rep_code_offsets_[r + 1]) {
      continue;
    }
    const std::span<const u64> sig =
        std::span<const u64>(store.signatures)
            .subspan(r * store.sig_num_hashes, store.sig_num_hashes);
    for (u64 b = 0; b < params_.num_bands; ++b) {
      table_.emplace_back(band_key(b, sig.subspan(b * rows, rows)),
                          static_cast<u32>(r));
    }
  }
  std::sort(table_.begin(), table_.end());
}

u64 BucketIndex::exact_shared(std::span<const u64> query_codes,
                              u32 rep) const {
  const u64* lo = rep_codes_.data() + rep_code_offsets_[rep];
  const u64* hi = rep_codes_.data() + rep_code_offsets_[rep + 1];
  u64 shared = 0;
  for (u64 code : query_codes) {
    lo = std::lower_bound(lo, hi, code);
    if (lo == hi) break;
    if (*lo == code) ++shared;
  }
  return shared;
}

void BucketIndex::candidates(std::span<const u64> query_codes,
                             ClassifyScratch& scratch,
                             std::vector<std::pair<u32, u32>>& out) const {
  out.clear();
  if (query_codes.empty()) return;

  // Collect one (rep, 1) hit per bucket collision, then turn the sorted
  // hits into per-rep collision counts — the same shape as the postings
  // path's seed counting.
  auto& hits = scratch.bucket_hits_;
  hits.clear();
  if (params_.num_bands == 0) {
    // Keys are k-mer codes and both sides are sorted: resumed lower_bound
    // per query code, exactly like the postings scan.
    auto it = table_.begin();
    for (u64 code : query_codes) {
      it = std::lower_bound(it, table_.end(), code,
                            [](const std::pair<u64, u32>& e, u64 c) {
                              return e.first < c;
                            });
      for (auto run = it; run != table_.end() && run->first == code; ++run) {
        hits.emplace_back(run->second, 1);
      }
    }
  } else {
    // Sketch the query with the store's permutations, then probe one
    // bucket per band. Band keys are unordered across bands, so each
    // probe is an independent equal_range.
    const u64 rows = store_.sig_num_hashes / params_.num_bands;
    auto& sig = scratch.query_sig_;
    sig.resize(store_.sig_num_hashes);
    hashes_.sketch(query_codes, sig);
    for (u64 b = 0; b < params_.num_bands; ++b) {
      const u64 key = band_key(
          b, std::span<const u64>(sig).subspan(b * rows, rows));
      auto it = std::lower_bound(table_.begin(), table_.end(), key,
                                 [](const std::pair<u64, u32>& e, u64 k) {
                                   return e.first < k;
                                 });
      for (; it != table_.end() && it->first == key; ++it) {
        hits.emplace_back(it->second, 1);
      }
    }
  }
  std::sort(hits.begin(), hits.end());

  for (std::size_t lo = 0; lo < hits.size();) {
    std::size_t hi = lo;
    while (hi < hits.size() && hits[hi].first == hits[lo].first) ++hi;
    const u32 rep = hits[lo].first;
    const u32 collisions = static_cast<u32>(hi - lo);
    if (collisions >= params_.min_band_hits) {
      // Full recall: collisions ARE the exact shared count. Banded: the
      // bucket stage only nominated the rep — recount exactly so ordering
      // and truncation downstream match the postings path bit for bit.
      const u64 shared = params_.num_bands == 0
                             ? collisions
                             : exact_shared(query_codes, rep);
      if (shared > 0) out.emplace_back(rep, static_cast<u32>(shared));
    }
    lo = hi;
  }
}

}  // namespace gpclust::serve
