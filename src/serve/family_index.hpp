#pragma once
// FamilyIndex — the query engine of the serving layer (DESIGN.md §10):
// classifies one ORF against a persisted family store by k-mer seeding
// against the family representatives (the store's sorted postings index)
// followed by exact striped SIMD Smith-Waterman scoring of the
// best-seeded representatives. The whole path is host-only and
// deterministic: a query's result depends on nothing but the query and
// the store, which is what makes QueryService's answers bit-identical
// across worker-pool sizes.

#include <span>
#include <string_view>
#include <vector>

#include "align/query_profile.hpp"
#include "align/simd.hpp"
#include "align/smith_waterman.hpp"
#include "store/snapshot.hpp"
#include "util/common.hpp"

namespace gpclust::serve {

class BucketIndex;

/// Which candidate generator feeds the exact Smith-Waterman stage: the
/// store's sorted k-mer postings (ground truth, cost grows with total
/// representative count) or the banded min-hash bucket table
/// (serve/bucket_index.hpp, cost grows with bucket occupancy). The
/// `--seed-index` seam of gpclust-query and both serving tiers.
enum class SeedIndex {
  Postings,
  Bucketed,
};
std::string_view seed_index_name(SeedIndex seed_index);
/// Parses "postings" / "bucketed"; throws InvalidArgument otherwise.
SeedIndex parse_seed_index(std::string_view name);

struct ClassifyParams {
  /// Representatives sharing at least this many distinct query k-mers are
  /// candidates (same role as align::KmerIndexConfig::min_shared_kmers).
  u32 min_shared_kmers = 2;

  /// Smith-Waterman is run against at most this many candidates, best
  /// seeded first ((shared k-mers desc, rep asc) — deterministic).
  std::size_t max_candidates = 8;

  /// Assignment criterion, mirroring the homology-graph edge criterion:
  /// score >= max(min_score, min_score_per_residue * min(|query|, |rep|)).
  int min_score = 40;
  double min_score_per_residue = 1.2;

  align::AlignmentParams alignment;

  void validate() const {
    GPCLUST_CHECK(min_shared_kmers >= 1, "min_shared_kmers must be >= 1");
    GPCLUST_CHECK(max_candidates >= 1, "max_candidates must be >= 1");
    alignment.validate();
  }
};

/// Why a query did or did not get a family.
enum class ClassifyOutcome {
  Assigned,        ///< best alignment cleared the score criterion
  NoSeeds,         ///< no representative shared enough k-mers
  BelowThreshold,  ///< aligned, but no candidate cleared the criterion
  InvalidQuery,    ///< empty or non-protein residues
};
std::string_view classify_outcome_name(ClassifyOutcome outcome);

constexpr u32 kNoFamily = 0xFFFFFFFFu;

struct ClassifyResult {
  ClassifyOutcome outcome = ClassifyOutcome::NoSeeds;
  u32 family = kNoFamily;      ///< assigned family (kNoFamily unless Assigned)
  u32 best_rep = kNoFamily;    ///< sequence index of the winning representative
  int score = 0;               ///< its Smith-Waterman score
  u32 shared_kmers = 0;        ///< its seed count
  u32 num_candidates = 0;      ///< representatives that met the seed floor
  u32 num_alignments = 0;      ///< Smith-Waterman score passes run

  friend bool operator==(const ClassifyResult&,
                         const ClassifyResult&) = default;
};

/// Per-call scratch a caller thread owns: the LRU over representative
/// profiles (the expensive reusable artifact) plus flat buffers reused
/// across queries. One per worker; never shared.
class ClassifyScratch {
 public:
  explicit ClassifyScratch(std::size_t profile_cache_capacity = 64)
      : profiles_(profile_cache_capacity) {}

  const align::LruQueryProfileCache& profiles() const { return profiles_; }
  const align::SimdCounters& simd() const { return simd_; }

 private:
  friend class FamilyIndex;
  friend class BucketIndex;
  align::LruQueryProfileCache profiles_;
  align::SimdCounters simd_;
  std::vector<u64> query_codes_;
  std::vector<std::pair<u32, u32>> seed_counts_;  ///< (rep, shared kmers)
  std::vector<u8> encoded_query_;
  std::vector<u64> query_sig_;                     ///< bucketed: query sketch
  std::vector<std::pair<u32, u32>> bucket_hits_;   ///< bucketed: (rep, 1) hits
};

/// One Smith-Waterman-scored candidate representative. Trivially copyable
/// on purpose: this is the wire format of the sharded serving tier (a
/// shard returns its scored candidates, the router merges them).
struct ScoredCandidate {
  u32 rep = 0;     ///< index into FamilyStore::representatives
  u32 shared = 0;  ///< distinct query k-mers shared with the rep
  i32 score = 0;   ///< exact Smith-Waterman score against the query

  friend bool operator==(const ScoredCandidate&,
                         const ScoredCandidate&) = default;
};
static_assert(sizeof(ScoredCandidate) == 12, "sharded wire layout is fixed");

/// The seed+score half of classification over one postings (sub)set:
/// everything classify() computes before the best-family decision.
struct CandidateScores {
  bool invalid = false;    ///< empty or non-protein query
  u32 num_candidates = 0;  ///< reps meeting the seed floor (pre-truncation)
  /// The top `max_candidates` candidates by (shared desc, rep asc), each
  /// scored with exact Smith-Waterman. A subset of the floor-meeting reps.
  std::vector<ScoredCandidate> scored;
};

/// Read-only view over a loaded FamilyStore. Thread-safe for concurrent
/// classify() calls as long as each caller passes its own scratch.
class FamilyIndex {
 public:
  /// The store must outlive the index (the index keeps a reference).
  explicit FamilyIndex(const store::FamilyStore& store);

  const store::FamilyStore& store() const { return store_; }

  /// Classifies one query ORF. Deterministic: equal queries yield equal
  /// results regardless of scratch state or thread. Exactly
  /// `decide(query, params, score_candidates(query, params, scratch))`.
  ClassifyResult classify(std::string_view query, const ClassifyParams& params,
                          ClassifyScratch& scratch) const;

  /// Seed counting + candidate truncation + Smith-Waterman scoring against
  /// a postings subset (`postings` must be sorted by (code, rep) — any
  /// rep-partitioned filtering of the store's postings qualifies, and the
  /// full store postings are the default). This is the per-shard half of
  /// the sharded serving tier (DESIGN.md §12).
  CandidateScores score_candidates(
      std::string_view query, const ClassifyParams& params,
      ClassifyScratch& scratch,
      std::span<const store::RepPosting> postings) const;
  CandidateScores score_candidates(std::string_view query,
                                   const ClassifyParams& params,
                                   ClassifyScratch& scratch) const {
    return score_candidates(query, params, scratch,
                            std::span<const store::RepPosting>(store_.postings));
  }

  /// The same seed+truncate+score contract over the bucketed seed index:
  /// candidates come from `buckets` (bucket-collision nomination + exact
  /// shared-k-mer recount) instead of the postings scan, then flow through
  /// the identical floor / ordering / truncation / Smith-Waterman stages.
  /// With a full-recall bucket configuration (num_bands == 0,
  /// min_band_hits <= min_shared_kmers) the result is bit-identical to
  /// the postings overload; `buckets` must be built over this index's
  /// store (or a rep subset of it, for the sharded tier).
  CandidateScores score_candidates(std::string_view query,
                                   const ClassifyParams& params,
                                   ClassifyScratch& scratch,
                                   const BucketIndex& buckets) const;

  /// classify() over the bucketed seed index:
  /// `decide(query, params, score_candidates(query, params, scratch, buckets))`.
  ClassifyResult classify(std::string_view query, const ClassifyParams& params,
                          ClassifyScratch& scratch,
                          const BucketIndex& buckets) const;

  /// The decision half: picks the best family from a scored candidate set.
  /// Order-independent in `scores.scored` (the winner key — qualifies
  /// desc, score desc, family asc, rep asc — is a strict total order), so
  /// the router of the sharded tier can feed it the re-truncated merge of
  /// per-shard candidate lists and get the single-node answer bit for bit.
  ClassifyResult decide(std::string_view query, const ClassifyParams& params,
                        const CandidateScores& scores) const;

 private:
  /// Step 1 of score_candidates, shared by both seed indexes: validity
  /// check + the query's sorted distinct k-mer codes into
  /// `scratch.query_codes_`. Returns false (and flags `result`) on an
  /// invalid query.
  bool prepare_query_codes(std::string_view query, ClassifyScratch& scratch,
                           CandidateScores& result) const;

  /// Steps 3-4, shared by both seed indexes: (shared desc, rep asc) sort,
  /// truncation to max_candidates, and exact Smith-Waterman scoring of the
  /// survivors into `result.scored`.
  void score_top_candidates(std::string_view query,
                            const ClassifyParams& params,
                            ClassifyScratch& scratch,
                            std::vector<std::pair<u32, u32>>& candidates,
                            CandidateScores& result) const;

  const store::FamilyStore& store_;
};

}  // namespace gpclust::serve
