#pragma once
// Sharded fault-tolerant serving tier (DESIGN.md §12): the family index's
// representatives are partitioned deterministically across the ranks of a
// dist::World, each shard replicated on `replication` consecutive ranks,
// and a front-end router rank scatter-gathers every classification over
// per-rank bounded request windows (the PR-5 backpressure discipline,
// ported from QueryService's admission queue to credit-based flow
// control). Per-shard candidate scoring is the score_candidates() half of
// FamilyIndex; the router merges the shard answers — concatenate, re-sort
// by (shared k-mers desc, rep asc), re-truncate to max_candidates — and
// feeds decide(), which is order-independent, so for ANY {num_ranks,
// replication, worker count, fault plan leaving >= 1 live replica per
// shard} the results are bit-identical to single-node classification.
//
// Fail-over: a dying shard rank (static `rank_down@R` in the fault plan,
// the deterministic kill_rank/kill_after_requests seam, or an
// unrecoverable injected comm fault under an enabled ResiliencePolicy)
// sends a typed death notice on its response channel and exits cleanly.
// Channels are FIFO, so the notice arrives after every response the rank
// actually sent: when the router processes it, the rank's in-flight
// (query, shard) pairs are exactly the unanswered ones, and each is
// re-issued to the next surviving replica (bounded by
// ResiliencePolicy::max_retries per pair). All replicas of a shard gone
// => typed CommError (op "shard_down"); resilience Off => the first death
// notice is fatal (op "rank_down"). Never a wrong answer, never a hang:
// a rank that cannot even send its notice aborts the World, which wakes
// every blocked peer with a typed error.
//
// Observability: host-measured spans "sharded.route" (router
// scatter+gather), "sharded.shard" (one per server batch) and
// "sharded.merge" (router merge+decide), the "sharded.latency" histogram
// (per query, first dispatch to last shard response), and the
// "rank_failures" / "query_reissues" / "shard_failovers" /
// "shard_requests" counters. The whole tier is host-only — the
// arena-empty invariant holds trivially.

#include <cstddef>
#include <string>
#include <vector>

#include "dist/comm.hpp"
#include "fault/fault_plan.hpp"
#include "fault/resilience.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "serve/bucket_index.hpp"
#include "serve/family_index.hpp"
#include "store/snapshot.hpp"

namespace gpclust::serve {

/// Sentinel for ShardedConfig::kill_rank: no rank is killed.
inline constexpr std::size_t kNoKill = static_cast<std::size_t>(-1);

struct ShardedConfig {
  /// Shard-serving ranks; the router rides an extra rank, so the World is
  /// num_ranks + 1 wide and `rank_down@R` can never kill the router.
  /// There is one shard per serving rank.
  std::size_t num_ranks = 1;

  /// Ranks holding a copy of each shard (1 = no redundancy). Shard s
  /// lives on ranks (s + j) % num_ranks for j < replication.
  std::size_t replication = 1;

  /// Classify workers per serving rank (each with its own scratch).
  std::size_t num_workers = 1;

  /// Bounded per-rank request window: the router never has more than this
  /// many unanswered requests outstanding to one rank (credit-based
  /// backpressure; when the window is full the router drains that rank's
  /// responses before sending more).
  std::size_t queue_capacity = 64;

  /// Off: the first rank death is fatal (typed CommError, op
  /// "rank_down"). Retry/Fallback: in-flight queries to a dead rank are
  /// re-issued to the next surviving replica, at most `max_retries`
  /// re-issues per (query, shard) pair.
  fault::ResiliencePolicy resilience;

  /// Per-shard candidate generator. Bucketed: every serving rank builds
  /// one BucketIndex per hosted shard over that shard's representatives —
  /// a shard's bucket table is the global table filtered to its reps, so
  /// per-shard candidate sets partition the single-node set and the
  /// router's merge + decide stays bit-identical to single-node bucketed
  /// classification (and to the postings path at the full-recall
  /// setting). Signatures live in the store, so they shard with their
  /// representatives for free; the router and fail-over are untouched.
  SeedIndex seed_index = SeedIndex::Postings;
  BucketIndexParams bucket;

  ClassifyParams classify;

  /// Capacity of each worker's LRU over representative profiles.
  std::size_t profile_cache_capacity = 64;

  /// Optional fault bindings, shared by every rank (rank_down@R and
  /// comm_fail@send/recv schedules apply; device sites are never hit).
  fault::FaultPlan* fault_plan = nullptr;
  obs::Tracer* tracer = nullptr;

  /// Deterministic mid-stream kill seam for tests/benches: rank
  /// `kill_rank` serves exactly `kill_after_requests` requests, then
  /// sends its death notice and exits. kNoKill disables the seam.
  std::size_t kill_rank = kNoKill;
  std::size_t kill_after_requests = 0;

  void validate() const {
    GPCLUST_CHECK(num_ranks >= 1, "need at least one serving rank");
    GPCLUST_CHECK(replication >= 1 && replication <= num_ranks,
                  "replication must be in [1, num_ranks]");
    GPCLUST_CHECK(num_workers >= 1, "need at least one worker per rank");
    GPCLUST_CHECK(queue_capacity >= 1, "need queue capacity >= 1");
    GPCLUST_CHECK(kill_rank == kNoKill || kill_rank < num_ranks,
                  "kill_rank must name a serving rank");
    classify.validate();
  }
};

/// Router-side accounting of one sharded batch.
struct ShardedStats {
  std::size_t num_shards = 0;
  u64 shard_requests = 0;    ///< requests scored across all serving ranks
  u64 rank_failures = 0;     ///< death notices the router processed
  u64 query_reissues = 0;    ///< in-flight (query, shard) pairs re-issued
  u64 shard_failovers = 0;   ///< shards whose serving replica changed
  obs::Histogram latency;    ///< per query: first dispatch -> last response
};

/// Deterministic shard map: representative -> shard.
inline std::size_t shard_of_rep(u32 rep, std::size_t num_shards) {
  return static_cast<std::size_t>(rep) % num_shards;
}

/// The ranks holding shard `shard`, preference order: the router always
/// serves a shard from the first *surviving* rank in this list.
std::vector<dist::RankId> shard_replicas(std::size_t shard,
                                         std::size_t num_ranks,
                                         std::size_t replication);

/// Order-sensitive FNV-style digest over every field of every result —
/// the bit-identity witness of the chaos tests and the CI smoke.
u64 results_digest(const std::vector<ClassifyResult>& results);

/// Classifies `queries` against `store` on a fresh (num_ranks + 1)-rank
/// World (in-process threads, like dist::distributed_cluster). Returns
/// one result per query, in order, bit-identical to
/// FamilyIndex::classify for every query whenever every shard keeps at
/// least one live replica. Throws dist::CommError (typed, never a hang)
/// otherwise. The store must stay alive for the duration of the call.
std::vector<ClassifyResult> sharded_classify_batch(
    const store::FamilyStore& store, const std::vector<std::string>& queries,
    const ShardedConfig& config, ShardedStats* stats = nullptr);

}  // namespace gpclust::serve
