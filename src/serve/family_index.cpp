#include "serve/family_index.hpp"

#include <algorithm>

#include "seq/alphabet.hpp"
#include "serve/bucket_index.hpp"

namespace gpclust::serve {

std::string_view seed_index_name(SeedIndex seed_index) {
  switch (seed_index) {
    case SeedIndex::Postings: return "postings";
    case SeedIndex::Bucketed: return "bucketed";
  }
  return "unknown";
}

SeedIndex parse_seed_index(std::string_view name) {
  if (name == "postings") return SeedIndex::Postings;
  if (name == "bucketed") return SeedIndex::Bucketed;
  throw InvalidArgument("unknown seed index \"" + std::string(name) +
                        "\" (expected postings or bucketed)");
}

std::string_view classify_outcome_name(ClassifyOutcome outcome) {
  switch (outcome) {
    case ClassifyOutcome::Assigned: return "assigned";
    case ClassifyOutcome::NoSeeds: return "no_seeds";
    case ClassifyOutcome::BelowThreshold: return "below_threshold";
    case ClassifyOutcome::InvalidQuery: return "invalid_query";
  }
  return "unknown";
}

FamilyIndex::FamilyIndex(const store::FamilyStore& store) : store_(store) {
  GPCLUST_CHECK(store.kmer_k >= 2 && store.kmer_k <= 12,
                "store has no valid k-mer index");
}

bool FamilyIndex::prepare_query_codes(std::string_view query,
                                      ClassifyScratch& scratch,
                                      CandidateScores& result) const {
  if (query.empty() || !seq::is_valid_protein(query)) {
    result.invalid = true;
    return false;
  }

  // Distinct k-mer codes of the query (same packing as the store's
  // builder and align/kmer_index).
  const std::size_t k = store_.kmer_k;
  auto& codes = scratch.query_codes_;
  codes.clear();
  if (query.size() >= k) {
    for (std::size_t pos = 0; pos + k <= query.size(); ++pos) {
      u64 code = 0;
      for (std::size_t j = 0; j < k; ++j) {
        code = code * seq::kNumResidues + seq::residue_index(query[pos + j]);
      }
      codes.push_back(code);
    }
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  }
  return true;
}

void FamilyIndex::score_top_candidates(
    std::string_view query, const ClassifyParams& params,
    ClassifyScratch& scratch, std::vector<std::pair<u32, u32>>& candidates,
    CandidateScores& result) const {
  result.num_candidates = static_cast<u32>(candidates.size());
  if (candidates.empty()) return;

  // Best-seeded first, deterministically: (shared desc, rep asc).
  std::sort(candidates.begin(), candidates.end(),
            [](const std::pair<u32, u32>& a, const std::pair<u32, u32>& b) {
              return std::pair(b.second, a.first) < std::pair(a.second, b.first);
            });
  if (candidates.size() > params.max_candidates) {
    candidates.resize(params.max_candidates);
  }

  // Exact scoring: the representative's cached striped profile against
  // the encoded query. The SW score is symmetric in its arguments, so
  // profiling the rep (the reusable side) and streaming the query through
  // it gives the same score as the reverse orientation.
  auto& encoded = scratch.encoded_query_;
  encoded.clear();
  encoded.reserve(query.size());
  for (char c : query) encoded.push_back(seq::residue_index(c));

  result.scored.reserve(candidates.size());
  for (const auto& [rep, shared] : candidates) {
    const u32 rep_seq = store_.representatives[rep];
    const std::string_view rep_residues = store_.sequence(rep_seq);
    const align::QueryProfile& profile =
        scratch.profiles_.get(rep_seq, rep_residues);
    const align::AlignmentResult aligned = align::smith_waterman_simd(
        profile, encoded, params.alignment, &scratch.simd_);
    result.scored.push_back(ScoredCandidate{rep, shared, aligned.score});
  }
}

CandidateScores FamilyIndex::score_candidates(
    std::string_view query, const ClassifyParams& params,
    ClassifyScratch& scratch,
    std::span<const store::RepPosting> postings) const {
  params.validate();
  CandidateScores result;
  // 1. Validity + the query's distinct k-mer codes.
  if (!prepare_query_codes(query, scratch, result)) return result;
  const auto& codes = scratch.query_codes_;

  // 2. Seed counting: one lower_bound per distinct query k-mer into the
  // sorted postings, collecting matching reps; a sort + run-length scan
  // turns the hits into per-representative shared-k-mer counts. The
  // postings are distinct per (code, rep), so each hit is one shared
  // distinct k-mer.
  auto& hits = scratch.seed_counts_;
  hits.clear();
  auto it = postings.begin();
  for (u64 code : codes) {
    it = std::lower_bound(it, postings.end(), code,
                          [](const store::RepPosting& p, u64 c) {
                            return p.code < c;
                          });
    for (auto run = it; run != postings.end() && run->code == code; ++run) {
      hits.emplace_back(run->rep, 1);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const std::pair<u32, u32>& a, const std::pair<u32, u32>& b) {
              return a.first < b.first;
            });

  // (rep, shared count) per candidate that clears the seed floor.
  std::vector<std::pair<u32, u32>> candidates;
  for (std::size_t lo = 0; lo < hits.size();) {
    std::size_t hi = lo;
    while (hi < hits.size() && hits[hi].first == hits[lo].first) ++hi;
    const u32 shared = static_cast<u32>(hi - lo);
    if (shared >= params.min_shared_kmers) {
      candidates.emplace_back(hits[lo].first, shared);
    }
    lo = hi;
  }

  // 3-4. Order, truncate, Smith-Waterman — shared with the bucketed path.
  score_top_candidates(query, params, scratch, candidates, result);
  return result;
}

CandidateScores FamilyIndex::score_candidates(std::string_view query,
                                              const ClassifyParams& params,
                                              ClassifyScratch& scratch,
                                              const BucketIndex& buckets) const {
  params.validate();
  CandidateScores result;
  // 1. Validity + the query's distinct k-mer codes.
  if (!prepare_query_codes(query, scratch, result)) return result;

  // 2. Bucket-occupancy candidate generation (exact shared counts), then
  // the same floor the postings path applies.
  std::vector<std::pair<u32, u32>> candidates;
  buckets.candidates(scratch.query_codes_, scratch, candidates);
  std::erase_if(candidates, [&](const std::pair<u32, u32>& c) {
    return c.second < params.min_shared_kmers;
  });

  // 3-4. Order, truncate, Smith-Waterman — shared with the postings path.
  score_top_candidates(query, params, scratch, candidates, result);
  return result;
}

ClassifyResult FamilyIndex::classify(std::string_view query,
                                     const ClassifyParams& params,
                                     ClassifyScratch& scratch,
                                     const BucketIndex& buckets) const {
  return decide(query, params, score_candidates(query, params, scratch, buckets));
}

ClassifyResult FamilyIndex::decide(std::string_view query,
                                   const ClassifyParams& params,
                                   const CandidateScores& scores) const {
  params.validate();
  ClassifyResult result;
  if (scores.invalid) {
    result.outcome = ClassifyOutcome::InvalidQuery;
    return result;
  }
  result.num_candidates = scores.num_candidates;
  if (scores.scored.empty()) {
    result.outcome = ClassifyOutcome::NoSeeds;
    return result;
  }
  result.num_alignments = static_cast<u32>(scores.scored.size());

  // The score floor depends on the representative's length, so whether a
  // candidate qualifies is judged per candidate; the winner is the best
  // *qualifying* candidate, falling back to the best raw score (reported
  // as BelowThreshold) when none qualifies. Winner order is deterministic
  // AND order-independent — (qualifies desc, score desc, family asc,
  // rep_seq asc) is a strict total order because rep_seq values are
  // distinct across representatives — so the sharded router can feed this
  // any permutation of the single-node candidate list.
  bool have_best = false;
  bool best_qualifies = false;
  u32 best_family = kNoFamily;
  for (const ScoredCandidate& cand : scores.scored) {
    const u32 rep_seq = store_.representatives[cand.rep];
    const std::string_view rep_residues = store_.sequence(rep_seq);
    const u32 family = store_.family_of[rep_seq];
    const double floor =
        params.min_score_per_residue *
        static_cast<double>(std::min(query.size(), rep_residues.size()));
    const bool qualifies = cand.score >= params.min_score &&
                           static_cast<double>(cand.score) >= floor;
    const auto key = std::tuple(!qualifies, -cand.score, family, rep_seq);
    if (!have_best || key < std::tuple(!best_qualifies, -result.score,
                                       best_family, result.best_rep)) {
      have_best = true;
      best_qualifies = qualifies;
      result.score = cand.score;
      result.best_rep = rep_seq;
      result.shared_kmers = cand.shared;
      best_family = family;
    }
  }

  if (best_qualifies) {
    result.outcome = ClassifyOutcome::Assigned;
    result.family = best_family;
  } else {
    result.outcome = ClassifyOutcome::BelowThreshold;
  }
  return result;
}

ClassifyResult FamilyIndex::classify(std::string_view query,
                                     const ClassifyParams& params,
                                     ClassifyScratch& scratch) const {
  return decide(query, params, score_candidates(query, params, scratch));
}

}  // namespace gpclust::serve
