#include "serve/sharded_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <map>
#include <optional>
#include <span>
#include <utility>

#include "util/thread_pool.hpp"

namespace gpclust::serve {

namespace {

// --------------------------------------------------------------------------
// Wire format (in-process POD vectors over dist::Communicator channels).
//
//   request   [u64 query_id][u64 shard][residue bytes]
//   response  [u64 query_id][u64 shard][u64 invalid][u64 num_candidates]
//             [u64 num_scored][num_scored x ScoredCandidate]
//
// Control messages reuse the query_id field: kShutdownId on the request
// channel tells a server to exit; kDeathNoticeId on the response channel
// is a dying rank's last word (FIFO channels mean it arrives after every
// response the rank actually sent, so at notice time the router's
// in-flight set for that rank is exactly the unanswered set).
// --------------------------------------------------------------------------

constexpr int kRequestTag = 101;
constexpr int kResponseTag = 102;
constexpr u64 kShutdownId = static_cast<u64>(-1);
constexpr u64 kDeathNoticeId = static_cast<u64>(-2);

void put_u64(std::vector<u8>& out, u64 value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(u64));
  std::memcpy(out.data() + at, &value, sizeof(u64));
}

u64 get_u64(const std::vector<u8>& bytes, std::size_t at) {
  GPCLUST_CHECK(at + sizeof(u64) <= bytes.size(), "sharded: short message");
  u64 value = 0;
  std::memcpy(&value, bytes.data() + at, sizeof(u64));
  return value;
}

std::vector<u8> encode_request(u64 query_id, u64 shard,
                               std::string_view residues) {
  std::vector<u8> out;
  out.reserve(2 * sizeof(u64) + residues.size());
  put_u64(out, query_id);
  put_u64(out, shard);
  const std::size_t at = out.size();
  out.resize(at + residues.size());
  if (!residues.empty()) {
    std::memcpy(out.data() + at, residues.data(), residues.size());
  }
  return out;
}

struct Request {
  u64 query_id = 0;
  u64 shard = 0;
  std::string_view residues;  ///< view into the raw message bytes
};

Request decode_request(const std::vector<u8>& bytes) {
  Request req;
  req.query_id = get_u64(bytes, 0);
  req.shard = get_u64(bytes, sizeof(u64));
  req.residues =
      std::string_view(reinterpret_cast<const char*>(bytes.data()) +
                           2 * sizeof(u64),
                       bytes.size() - 2 * sizeof(u64));
  return req;
}

std::vector<u8> encode_response(u64 query_id, u64 shard,
                                const CandidateScores& scores) {
  std::vector<u8> out;
  out.reserve(5 * sizeof(u64) + scores.scored.size() * sizeof(ScoredCandidate));
  put_u64(out, query_id);
  put_u64(out, shard);
  put_u64(out, scores.invalid ? 1 : 0);
  put_u64(out, scores.num_candidates);
  put_u64(out, scores.scored.size());
  const std::size_t at = out.size();
  out.resize(at + scores.scored.size() * sizeof(ScoredCandidate));
  if (!scores.scored.empty()) {
    std::memcpy(out.data() + at, scores.scored.data(),
                scores.scored.size() * sizeof(ScoredCandidate));
  }
  return out;
}

std::vector<u8> encode_death_notice(dist::RankId rank) {
  std::vector<u8> out;
  put_u64(out, kDeathNoticeId);
  put_u64(out, static_cast<u64>(rank));
  return out;
}

struct Response {
  u64 query_id = 0;
  u64 shard = 0;
  CandidateScores scores;
};

Response decode_response(const std::vector<u8>& bytes) {
  Response resp;
  resp.query_id = get_u64(bytes, 0);
  resp.shard = get_u64(bytes, sizeof(u64));
  if (resp.query_id == kDeathNoticeId) return resp;
  resp.scores.invalid = get_u64(bytes, 2 * sizeof(u64)) != 0;
  resp.scores.num_candidates =
      static_cast<u32>(get_u64(bytes, 3 * sizeof(u64)));
  const u64 num_scored = get_u64(bytes, 4 * sizeof(u64));
  const std::size_t at = 5 * sizeof(u64);
  GPCLUST_CHECK(at + num_scored * sizeof(ScoredCandidate) == bytes.size(),
                "sharded: response size mismatch");
  resp.scores.scored.resize(num_scored);
  if (num_scored > 0) {
    std::memcpy(resp.scores.scored.data(), bytes.data() + at,
                num_scored * sizeof(ScoredCandidate));
  }
  return resp;
}

/// Host-measured span at depth 1 (worker-thread depth discipline of
/// QueryService: depth-0 stays reserved for the caller's phases, and
/// concurrent rank threads must not share the tracer's nesting counter).
struct Depth1Span {
  Depth1Span(obs::Tracer* tracer, std::string_view name)
      : tracer_(tracer), name_(name) {
    if (tracer_ != nullptr) start_ = tracer_->host_now();
  }
  ~Depth1Span() {
    if (tracer_ != nullptr) {
      tracer_->record_host_span(name_, start_, tracer_->host_now() - start_,
                                1);
    }
  }
  obs::Tracer* tracer_;
  std::string name_;
  double start_ = 0.0;
};

// --------------------------------------------------------------------------
// Shard server: one rank, its hosted shards' filtered postings, a worker
// pool, and the deterministic death seams.
// --------------------------------------------------------------------------

void server_main(dist::Communicator& comm, const store::FamilyStore& store,
                 const ShardedConfig& config,
                 std::atomic<u64>& shard_requests) {
  const dist::RankId rank = comm.rank();
  const dist::RankId router = config.num_ranks;
  const std::size_t num_shards = config.num_ranks;

  const auto send_death_notice = [&] {
    comm.send(router, kResponseTag, encode_death_notice(rank));
  };

  // Static rank_down@R: the rank never comes up. The notice is the only
  // thing it ever sends, so the router fails over on first contact.
  if (config.fault_plan != nullptr && config.fault_plan->is_rank_down(rank)) {
    send_death_notice();
    return;
  }

  const FamilyIndex index(store);

  // Per hosted shard, the seed index restricted to that shard's
  // representatives: filtered postings (the (code, rep) sort survives
  // filtering, which score_candidates requires) or, under the bucketed
  // seed index, a BucketIndex over the shard's rep subset — either way a
  // shard's candidates are the single-node candidates for its reps.
  std::map<u64, std::vector<store::RepPosting>> shard_postings;
  std::map<u64, BucketIndex> shard_buckets;
  for (std::size_t shard = 0; shard < num_shards; ++shard) {
    const auto replicas =
        shard_replicas(shard, config.num_ranks, config.replication);
    if (std::find(replicas.begin(), replicas.end(), rank) == replicas.end()) {
      continue;
    }
    if (config.seed_index == SeedIndex::Bucketed) {
      std::vector<u32> shard_reps;
      for (u32 r = 0; r < store.representatives.size(); ++r) {
        if (shard_of_rep(r, num_shards) == shard) shard_reps.push_back(r);
      }
      shard_buckets.try_emplace(shard, store, config.bucket,
                                std::span<const u32>(shard_reps));
      // An empty map entry still marks the shard as hosted.
      shard_postings[shard];
    } else {
      auto& filtered = shard_postings[shard];
      for (const store::RepPosting& p : store.postings) {
        if (shard_of_rep(p.rep, num_shards) == shard) filtered.push_back(p);
      }
    }
  }

  std::vector<ClassifyScratch> scratches;
  scratches.reserve(config.num_workers);
  for (std::size_t w = 0; w < config.num_workers; ++w) {
    scratches.emplace_back(config.profile_cache_capacity);
  }
  std::optional<util::ThreadPool> pool;
  if (config.num_workers > 1) pool.emplace(config.num_workers);

  u64 served = 0;
  bool done = false;
  try {
    while (!done) {
      // Drain a batch: one blocking recv, then everything already queued.
      std::vector<std::vector<u8>> batch;
      {
        std::vector<u8> first = comm.recv<u8>(router, kRequestTag);
        if (get_u64(first, 0) == kShutdownId) break;
        batch.push_back(std::move(first));
      }
      std::vector<u8> more;
      while (comm.try_recv(router, kRequestTag, more)) {
        if (get_u64(more, 0) == kShutdownId) {
          done = true;
          break;
        }
        batch.push_back(std::move(more));
      }

      // Deterministic kill seam: serve exactly kill_after_requests
      // requests in arrival order, then die. Truncated requests were
      // dequeued but never answered — the router re-issues them.
      bool dying = false;
      if (rank == config.kill_rank) {
        const u64 budget = config.kill_after_requests > served
                               ? config.kill_after_requests - served
                               : 0;
        if (batch.size() >= budget) {
          batch.resize(budget);
          dying = true;
        }
      }

      if (!batch.empty()) {
        const Depth1Span span(config.tracer, "sharded.shard");
        std::vector<std::vector<u8>> responses(batch.size());
        const auto score_range = [&](std::size_t worker, std::size_t lo,
                                     std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const Request req = decode_request(batch[i]);
            const auto it = shard_postings.find(req.shard);
            GPCLUST_CHECK(it != shard_postings.end(),
                          "sharded: request for a shard this rank "
                          "does not host");
            const CandidateScores scores =
                config.seed_index == SeedIndex::Bucketed
                    ? index.score_candidates(req.residues, config.classify,
                                             scratches[worker],
                                             shard_buckets.at(req.shard))
                    : index.score_candidates(
                          req.residues, config.classify, scratches[worker],
                          std::span<const store::RepPosting>(it->second));
            responses[i] = encode_response(req.query_id, req.shard, scores);
          }
        };
        if (config.num_workers <= 1 || batch.size() <= 1) {
          score_range(0, 0, batch.size());
        } else {
          const std::size_t chunk =
              (batch.size() + config.num_workers - 1) / config.num_workers;
          std::vector<std::future<void>> futures;
          for (std::size_t w = 0; w < config.num_workers; ++w) {
            const std::size_t lo = w * chunk;
            const std::size_t hi = std::min(lo + chunk, batch.size());
            if (lo >= hi) break;
            futures.push_back(
                pool->submit([&, w, lo, hi] { score_range(w, lo, hi); }));
          }
          for (auto& f : futures) f.get();
        }
        // Responses go out in request order: the per-rank FIFO the router
        // relies on is preserved no matter how the batch was scored.
        for (auto& resp : responses) comm.send(router, kResponseTag, resp);
        served += batch.size();
        shard_requests.fetch_add(batch.size(), std::memory_order_relaxed);
        obs::add_counter(config.tracer, "shard_requests", batch.size());
      }

      if (dying) {
        send_death_notice();
        return;
      }
    }
  } catch (const dist::CommError& e) {
    // "abort" means some other rank already died hard — propagate so
    // run_ranks keeps the originating error primary. An injected fault
    // that survived the comm layer's own retries makes THIS rank the
    // casualty: under an enabled resilience policy it dies cleanly (death
    // notice, then exit) so the router can fail over; with resilience off
    // the typed error is terminal, exactly like every other subsystem.
    if (e.op() == "abort" || !config.resilience.enabled()) throw;
    try {
      send_death_notice();
    } catch (...) {
      throw e;  // cannot even say goodbye: abort the world instead
    }
  }
}

// --------------------------------------------------------------------------
// Router: windowed scatter, FIFO gather, fail-over, merge + decide.
// --------------------------------------------------------------------------

class Router {
 public:
  Router(dist::Communicator& comm, const store::FamilyStore& store,
         const std::vector<std::string>& queries, const ShardedConfig& config,
         ShardedStats& stats)
      : comm_(comm),
        index_(store),
        queries_(queries),
        config_(config),
        stats_(stats),
        num_shards_(config.num_ranks),
        alive_(config.num_ranks, true),
        outstanding_(config.num_ranks, 0),
        inflight_(config.num_ranks),
        partial_(queries.size()),
        remaining_(queries.size(), num_shards_),
        started_(queries.size()),
        completed_(queries.size()) {}

  std::vector<ClassifyResult> run() {
    stats_.num_shards = num_shards_;
    {
      const Depth1Span span(config_.tracer, "sharded.route");
      for (std::size_t q = 0; q < queries_.size(); ++q) {
        started_[q] = Clock::now();
        for (std::size_t s = 0; s < num_shards_; ++s) {
          dispatch(static_cast<u64>(q), static_cast<u64>(s), 0);
        }
      }
      while (total_outstanding_ > 0) drain_one(busiest_rank());
    }
    // Every query answered: release the surviving servers. (Dead ranks
    // already exited; their unread mailboxes are garbage-collected with
    // the World.)
    for (dist::RankId r = 0; r < config_.num_ranks; ++r) {
      if (alive_[r]) {
        comm_.send(r, kRequestTag, encode_request(kShutdownId, 0, {}));
      }
    }

    std::vector<ClassifyResult> results(queries_.size());
    {
      const Depth1Span span(config_.tracer, "sharded.merge");
      for (std::size_t q = 0; q < queries_.size(); ++q) {
        results[q] = merge_and_decide(q);
        const double latency =
            std::chrono::duration<double>(completed_[q] - started_[q])
                .count();
        stats_.latency.record(latency);
        if (config_.tracer != nullptr) {
          config_.tracer->record_latency("sharded.latency", latency);
        }
      }
    }
    return results;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct InFlight {
    u64 query = 0;
    u64 shard = 0;
    int attempts = 0;  ///< re-issues so far (0 = first send)
  };

  dist::RankId router_rank() const { return config_.num_ranks; }

  /// First surviving replica of `shard`; throws the tier's terminal error
  /// when the shard is wholly gone.
  dist::RankId primary(u64 shard) const {
    for (dist::RankId r : shard_replicas(static_cast<std::size_t>(shard),
                                         config_.num_ranks,
                                         config_.replication)) {
      if (alive_[r]) return r;
    }
    throw dist::CommError(router_rank(), "shard_down",
                          "all replicas of shard " + std::to_string(shard) +
                              " are down");
  }

  void dispatch(u64 query, u64 shard, int attempts) {
    for (;;) {
      const dist::RankId target = primary(shard);
      if (outstanding_[target] < config_.queue_capacity) {
        comm_.send(target, kRequestTag,
                   encode_request(query, shard,
                                  queries_[static_cast<std::size_t>(query)]));
        inflight_[target].push_back(InFlight{query, shard, attempts});
        ++outstanding_[target];
        ++total_outstanding_;
        return;
      }
      // Window full: make progress on this rank before sending more (the
      // drain may kill the rank, in which case the loop re-picks).
      drain_one(target);
    }
  }

  /// Blocking receive of one response (or death notice) from rank `r`.
  /// Only ever called with outstanding_[r] > 0, so either a response or
  /// the rank's death notice is on its way — never an indefinite wait.
  void drain_one(dist::RankId r) {
    const std::vector<u8> bytes = comm_.recv<u8>(r, kResponseTag);
    Response resp = decode_response(bytes);
    if (resp.query_id == kDeathNoticeId) {
      handle_death(r);
      return;
    }
    GPCLUST_CHECK(!inflight_[r].empty(), "sharded: unsolicited response");
    const InFlight entry = inflight_[r].front();
    inflight_[r].pop_front();
    GPCLUST_CHECK(entry.query == resp.query_id && entry.shard == resp.shard,
                  "sharded: response out of order");
    --outstanding_[r];
    --total_outstanding_;
    accumulate(entry, std::move(resp.scores));
  }

  void accumulate(const InFlight& entry, CandidateScores&& scores) {
    const std::size_t q = static_cast<std::size_t>(entry.query);
    CandidateScores& acc = partial_[q];
    acc.invalid = acc.invalid || scores.invalid;
    acc.num_candidates += scores.num_candidates;
    acc.scored.insert(acc.scored.end(), scores.scored.begin(),
                      scores.scored.end());
    GPCLUST_CHECK(remaining_[q] > 0, "sharded: duplicate shard response");
    if (--remaining_[q] == 0) completed_[q] = Clock::now();
  }

  void handle_death(dist::RankId r) {
    if (!config_.resilience.enabled()) {
      throw dist::CommError(
          r, "rank_down",
          "rank died while serving and resilience is off");
    }
    // Fail-over accounting: shards this rank was actively serving (it was
    // their first surviving replica) move to their next replica.
    std::vector<u64> was_primary;
    for (std::size_t s = 0; s < num_shards_; ++s) {
      for (dist::RankId replica :
           shard_replicas(s, config_.num_ranks, config_.replication)) {
        if (!alive_[replica]) continue;
        if (replica == r) was_primary.push_back(static_cast<u64>(s));
        break;
      }
    }
    alive_[r] = false;
    ++stats_.rank_failures;
    obs::add_counter(config_.tracer, "rank_failures", 1);
    for (u64 s : was_primary) {
      bool survivor = false;
      for (dist::RankId replica :
           shard_replicas(static_cast<std::size_t>(s), config_.num_ranks,
                          config_.replication)) {
        if (alive_[replica]) {
          survivor = true;
          break;
        }
      }
      if (survivor) {
        ++stats_.shard_failovers;
        obs::add_counter(config_.tracer, "shard_failovers", 1);
      }
    }
    // FIFO channels: every response r sent was processed before this
    // notice, so what is in flight is exactly what went unanswered.
    std::deque<InFlight> pending = std::move(inflight_[r]);
    inflight_[r].clear();
    GPCLUST_CHECK(total_outstanding_ >= pending.size(),
                  "sharded: outstanding accounting broke");
    total_outstanding_ -= pending.size();
    outstanding_[r] = 0;
    for (const InFlight& entry : pending) {
      if (entry.attempts >= config_.resilience.max_retries) {
        throw dist::CommError(
            router_rank(), "retry_exhausted",
            "query " + std::to_string(entry.query) + " shard " +
                std::to_string(entry.shard) + " exceeded " +
                std::to_string(config_.resilience.max_retries) +
                " re-issues");
      }
      ++stats_.query_reissues;
      obs::add_counter(config_.tracer, "query_reissues", 1);
      dispatch(entry.query, entry.shard, entry.attempts + 1);
    }
  }

  /// Deterministic gather order: the rank with the most unanswered
  /// requests (smallest id on ties) — drains the deepest backlog first.
  dist::RankId busiest_rank() const {
    dist::RankId best = 0;
    std::size_t best_depth = 0;
    for (dist::RankId r = 0; r < config_.num_ranks; ++r) {
      if (outstanding_[r] > best_depth) {
        best = r;
        best_depth = outstanding_[r];
      }
    }
    GPCLUST_CHECK(best_depth > 0, "sharded: nothing to drain");
    return best;
  }

  /// Concatenated shard answers -> the single-node candidate list: re-sort
  /// by (shared desc, rep asc) — a strict total order, rep indices are
  /// globally unique — and re-truncate to max_candidates. The result is
  /// exactly what score_candidates over the full postings produces, so
  /// decide() yields the single-node answer bit for bit.
  ClassifyResult merge_and_decide(std::size_t q) {
    CandidateScores& acc = partial_[q];
    std::sort(acc.scored.begin(), acc.scored.end(),
              [](const ScoredCandidate& a, const ScoredCandidate& b) {
                return std::pair(b.shared, a.rep) < std::pair(a.shared, b.rep);
              });
    if (acc.scored.size() > config_.classify.max_candidates) {
      acc.scored.resize(config_.classify.max_candidates);
    }
    return index_.decide(queries_[q], config_.classify, acc);
  }

  dist::Communicator& comm_;
  const FamilyIndex index_;
  const std::vector<std::string>& queries_;
  const ShardedConfig& config_;
  ShardedStats& stats_;
  const std::size_t num_shards_;

  std::vector<char> alive_;
  std::vector<std::size_t> outstanding_;
  std::vector<std::deque<InFlight>> inflight_;
  std::size_t total_outstanding_ = 0;

  std::vector<CandidateScores> partial_;
  std::vector<std::size_t> remaining_;
  std::vector<Clock::time_point> started_;
  std::vector<Clock::time_point> completed_;
};

}  // namespace

std::vector<dist::RankId> shard_replicas(std::size_t shard,
                                         std::size_t num_ranks,
                                         std::size_t replication) {
  GPCLUST_CHECK(shard < num_ranks, "shard out of range");
  GPCLUST_CHECK(replication >= 1 && replication <= num_ranks,
                "replication must be in [1, num_ranks]");
  std::vector<dist::RankId> replicas;
  replicas.reserve(replication);
  for (std::size_t j = 0; j < replication; ++j) {
    replicas.push_back((shard + j) % num_ranks);
  }
  return replicas;
}

u64 results_digest(const std::vector<ClassifyResult>& results) {
  u64 digest = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&digest](u64 value) {
    digest ^= value;
    digest *= 1099511628211ull;  // FNV-1a prime
  };
  mix(results.size());
  for (const ClassifyResult& r : results) {
    mix(static_cast<u64>(r.outcome));
    mix(r.family);
    mix(r.best_rep);
    mix(static_cast<u64>(static_cast<i64>(r.score)));
    mix(r.shared_kmers);
    mix(r.num_candidates);
    mix(r.num_alignments);
  }
  return digest;
}

std::vector<ClassifyResult> sharded_classify_batch(
    const store::FamilyStore& store, const std::vector<std::string>& queries,
    const ShardedConfig& config, ShardedStats* stats) {
  config.validate();
  if (config.fault_plan != nullptr) {
    // A static rank_down must leave the topology validatable up front:
    // the router rank cannot be killed (it is not a serving rank).
    GPCLUST_CHECK(!config.fault_plan->is_rank_down(config.num_ranks),
                  "fault plan kills the router rank");
  }

  ShardedStats local_stats;
  std::atomic<u64> shard_requests{0};
  std::vector<ClassifyResult> results;

  dist::RankRunOptions options;
  options.fault_plan = config.fault_plan;
  options.resilience = config.resilience;
  options.tracer = config.tracer;

  dist::run_ranks(
      config.num_ranks + 1,
      [&](dist::Communicator& comm) {
        if (comm.rank() < config.num_ranks) {
          server_main(comm, store, config, shard_requests);
        } else {
          Router router(comm, store, queries, config, local_stats);
          results = router.run();
        }
      },
      options);

  local_stats.shard_requests = shard_requests.load(std::memory_order_relaxed);
  if (stats != nullptr) *stats = std::move(local_stats);
  return results;
}

}  // namespace gpclust::serve
