#include "util/timer.hpp"

namespace gpclust::util {

double MetricsRegistry::get(const std::string& name) const {
  auto it = totals_.find(name);
  return it == totals_.end() ? 0.0 : it->second;
}

}  // namespace gpclust::util
