#pragma once
// ASCII table rendering for the bench drivers that regenerate the paper's
// Tables I-IV.

#include <string>
#include <vector>

namespace gpclust::util {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column-width alignment and a header separator line.
  std::string render() const;

  static std::string fmt(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpclust::util
