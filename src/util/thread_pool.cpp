#include "util/thread_pool.hpp"

#include <algorithm>

namespace gpclust::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured in the packaged_task's future
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()));
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    futures.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  // Wait for every chunk even when one throws: the queued tasks reference
  // `fn` (caller stack), so returning before they all finish would let a
  // worker run a task whose captures are already destroyed. The first
  // exception is rethrown after the full drain.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gpclust::util
