#pragma once
// Fixed-size worker pool with a blocking task queue and a parallel_for
// helper. The simulated device executes its "kernels" on this pool; the
// homology-graph builder uses it for alignment fan-out.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gpclust::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future observes completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(begin..end) partitioned into roughly `size()` contiguous chunks,
  /// blocking until all chunks complete. fn receives [chunk_begin, chunk_end).
  /// Exceptions from chunks propagate (the first one observed is rethrown).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool, sized to hardware concurrency.
ThreadPool& default_thread_pool();

}  // namespace gpclust::util
