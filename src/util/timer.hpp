#pragma once
// Wall-clock timing and a named-metric registry.
//
// The Table I reproduction needs a per-component runtime breakdown
// (CPU, GPU, Data_c->g, Data_g->c, disk I/O). Real CPU-side work is timed
// with WallTimer; simulated device work charges modeled seconds into the
// same registry via SimClock (src/device/sim_clock.hpp).

#include <chrono>
#include <map>
#include <string>

namespace gpclust::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named durations (seconds). Not thread-safe; each pipeline
/// owns one registry.
class MetricsRegistry {
 public:
  void add(const std::string& name, double seconds) { totals_[name] += seconds; }
  double get(const std::string& name) const;
  bool has(const std::string& name) const { return totals_.count(name) > 0; }
  void clear() { totals_.clear(); }
  const std::map<std::string, double>& all() const { return totals_; }

 private:
  std::map<std::string, double> totals_;
};

/// RAII helper: adds the scope's wall time to `registry[name]` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ~ScopedTimer() { registry_.add(name_, timer_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry& registry_;
  std::string name_;
  WallTimer timer_;
};

}  // namespace gpclust::util
