#pragma once
// Leveled stderr logging. Benches/examples default to Info; tests set
// Warning to keep output clean.

#include <sstream>
#include <string>

namespace gpclust::util {

enum class LogLevel { Debug = 0, Info = 1, Warning = 2, Error = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warning); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace gpclust::util
