#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace gpclust::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warning:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace gpclust::util
