#pragma once
// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320) — the per-section
// checksum of the family-index snapshot format (DESIGN.md §10). Table
// driven, byte-at-a-time; fast enough for load-time validation of
// multi-megabyte sections and has well-known test vectors.

#include <cstddef>

#include "util/common.hpp"

namespace gpclust::util {

/// CRC of `size` bytes starting at `data`. `seed` allows incremental
/// computation: crc32(b, nb, crc32(a, na)) == crc32(concat(a, b)).
u32 crc32(const void* data, std::size_t size, u32 seed = 0);

}  // namespace gpclust::util
