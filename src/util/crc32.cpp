#include "util/crc32.hpp"

#include <array>

namespace gpclust::util {

namespace {

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

u32 crc32(const void* data, std::size_t size, u32 seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  u32 c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gpclust::util
