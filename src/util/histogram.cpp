#include "util/histogram.hpp"

#include <algorithm>
#include <numeric>

namespace gpclust::util {

BinnedHistogram::BinnedHistogram(std::vector<u64> edges)
    : edges_(std::move(edges)) {
  GPCLUST_CHECK(!edges_.empty(), "histogram needs at least one edge");
  GPCLUST_CHECK(std::is_sorted(edges_.begin(), edges_.end()) &&
                    std::adjacent_find(edges_.begin(), edges_.end()) ==
                        edges_.end(),
                "histogram edges must be strictly increasing");
  counts_.assign(edges_.size(), 0);  // last bin is [edges.back(), inf)
}

BinnedHistogram BinnedHistogram::figure5_bins() {
  return BinnedHistogram({20, 50, 100, 200, 500, 1000, 2000});
}

void BinnedHistogram::add(u64 value, u64 weight) {
  if (value < edges_.front()) {
    underflow_ += weight;
    return;
  }
  // First edge > value, minus one, is the owning bin.
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const std::size_t bin = static_cast<std::size_t>(it - edges_.begin()) - 1;
  counts_[bin] += weight;
}

u64 BinnedHistogram::total() const {
  return std::accumulate(counts_.begin(), counts_.end(), u64{0}) + underflow_;
}

std::string BinnedHistogram::label(std::size_t bin) const {
  GPCLUST_CHECK(bin < counts_.size(), "bin out of range");
  if (bin + 1 == counts_.size()) {
    return ">=" + std::to_string(edges_[bin]);
  }
  return std::to_string(edges_[bin]) + "-" + std::to_string(edges_[bin + 1] - 1);
}

std::string BinnedHistogram::render(std::size_t width) const {
  u64 max_count = 1;
  for (u64 c : counts_) max_count = std::max(max_count, c);

  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    std::string lbl = label(b);
    lbl.resize(12, ' ');
    const std::size_t bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(max_count) *
                                 static_cast<double>(width));
    out += lbl + "| " + std::string(bar, '#') + " " +
           std::to_string(counts_[b]) + "\n";
  }
  return out;
}

}  // namespace gpclust::util
