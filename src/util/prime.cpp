#include "util/prime.hpp"

#include <array>

namespace gpclust::util {

u64 mulmod(u64 a, u64 b, u64 m) {
  return static_cast<u64>(static_cast<__uint128_t>(a) * b % m);
}

u64 powmod(u64 base, u64 exp, u64 m) {
  u64 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool is_prime(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Deterministic witness set for 64-bit integers (Sinclair, 2011).
  u64 d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (u64 a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL, 9780504ULL,
                1795265022ULL}) {
    u64 x = powmod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

u64 next_prime(u64 n) {
  GPCLUST_CHECK(n <= kMersenne61, "next_prime bound exceeded");
  if (n <= 2) return 2;
  u64 candidate = n | 1;  // first odd >= n
  while (!is_prime(candidate)) candidate += 2;
  return candidate;
}

}  // namespace gpclust::util
