#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/common.hpp"

namespace gpclust::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  GPCLUST_CHECK(cells.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < row.size()) line += "  ";
    }
    line += "\n";
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string AsciiTable::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace gpclust::util
