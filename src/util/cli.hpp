#pragma once
// Minimal command-line flag parser for the examples and bench drivers.
// Supports --name=value, --name value, and boolean --flag forms.

#include <map>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace gpclust::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  i64 get_int(const std::string& name, i64 fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gpclust::util
