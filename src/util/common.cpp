#include "util/common.hpp"

namespace gpclust::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  throw InvalidArgument(std::string("check failed: ") + expr + " at " + file +
                        ":" + std::to_string(line) + ": " + msg);
}

}  // namespace gpclust::detail
