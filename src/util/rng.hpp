#pragma once
// Deterministic, fast pseudo-random number generation.
//
// All randomized components of the library (min-wise hash families, graph
// generators, the sequence family model) draw from these generators so that
// a run is reproducible from a single 64-bit seed.

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace gpclust::util {

/// SplitMix64: used to seed other generators and for cheap one-shot mixing.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// Stateless mix of a 64-bit value; used for shingle hashing.
u64 mix64(u64 x);

/// Xoshiro256**: general-purpose generator for workload synthesis.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = u64;

  explicit Xoshiro256(u64 seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  u64 next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  u64 next_below(u64 bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Jump ahead 2^128 steps; used to derive independent streams.
  void jump();

 private:
  std::array<u64, 4> s_;
};

}  // namespace gpclust::util
