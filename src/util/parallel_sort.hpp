#pragma once
// Thread-pool merge sort. The shingle-graph gather sort is the dominant
// CPU-side cost of the pipeline (paper §III-C); on multi-core hosts it
// parallelizes the way the OpenMP pClust of Rytsareva et al. [18] does.
// Falls back to std::sort when the pool has a single worker or the input
// is small.

#include <algorithm>
#include <vector>

#include "util/thread_pool.hpp"

namespace gpclust::util {

/// Sorts `data` ascending using up to pool.size() workers. Stable: no.
template <typename T>
void parallel_sort(std::vector<T>& data, ThreadPool& pool,
                   std::size_t min_parallel_size = 1 << 16) {
  const std::size_t n = data.size();
  if (pool.size() <= 1 || n < min_parallel_size) {
    std::sort(data.begin(), data.end());
    return;
  }

  // Sort contiguous chunks in parallel, then merge pairwise.
  const std::size_t num_chunks = std::min<std::size_t>(pool.size(), 64);
  const std::size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::size_t> bounds = {0};
  while (bounds.back() < n) {
    bounds.push_back(std::min(n, bounds.back() + chunk));
  }

  pool.parallel_for(0, bounds.size() - 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
                data.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]));
    }
  });

  // Pairwise merge rounds (inplace_merge; sequential across rounds, the
  // merges within a round are independent but memory-bound anyway).
  while (bounds.size() > 2) {
    std::vector<std::size_t> next = {0};
    for (std::size_t i = 2; i < bounds.size(); i += 2) {
      std::inplace_merge(
          data.begin() + static_cast<std::ptrdiff_t>(bounds[i - 2]),
          data.begin() + static_cast<std::ptrdiff_t>(bounds[i - 1]),
          data.begin() + static_cast<std::ptrdiff_t>(bounds[i]));
      next.push_back(bounds[i]);
    }
    if (bounds.size() % 2 == 0) next.push_back(bounds.back());
    bounds = std::move(next);
  }
}

}  // namespace gpclust::util
