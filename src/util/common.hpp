#pragma once
// Common small utilities shared by all gpclust modules.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace gpclust {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Vertex identifier in similarity/shingle graphs. 32-bit ids cover the
/// paper's largest instance (11M vertices); shingle ids use 64 bits.
using VertexId = u32;
using ShingleId = u64;

/// Thrown when a precondition on a public API is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when the simulated device runs out of memory or is misused.
class DeviceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transient host<->device transfer failure (e.g. injected by a
/// FaultPlan). A DeviceError subtype so untyped handlers still catch it;
/// the resilience layer treats it as retryable, unlike OOM.
class TransferError : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

/// Transient kernel-launch failure (e.g. injected by a FaultPlan).
/// Retryable, like TransferError.
class KernelError : public DeviceError {
 public:
  using DeviceError::DeviceError;
};

/// Thrown on malformed input files.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

/// Precondition check that stays on in release builds; use for public API
/// argument validation where the cost is negligible.
#define GPCLUST_CHECK(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::gpclust::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (0)

}  // namespace gpclust
