#pragma once
// Binned histograms with ASCII bar rendering — used by the Figure 5
// reproduction benches to print the group-size distributions the paper
// plots ("20-49", "50-99", ..., ">2000" bins).

#include <cstddef>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace gpclust::util {

/// Histogram over explicit right-open bins [edges[i], edges[i+1]).
/// A final open bin [edges.back(), inf) is always present.
class BinnedHistogram {
 public:
  /// `edges` must be strictly increasing and non-empty.
  explicit BinnedHistogram(std::vector<u64> edges);

  /// Figure 5's bins: [20,50) [50,100) [100,200) [200,500) [500,1000)
  /// [1000,2000) [2000,inf).
  static BinnedHistogram figure5_bins();

  /// Adds `weight` to the bin containing `value`. Values below the first
  /// edge land in an implicit underflow bin.
  void add(u64 value, u64 weight = 1);

  std::size_t num_bins() const { return counts_.size(); }
  u64 count(std::size_t bin) const { return counts_.at(bin); }
  u64 underflow() const { return underflow_; }
  u64 total() const;

  /// "20-49", "50-99", ..., ">=2000" labels.
  std::string label(std::size_t bin) const;

  /// Multi-line ASCII bar chart (one row per bin), bar scaled to `width`.
  std::string render(std::size_t width = 50) const;

 private:
  std::vector<u64> edges_;
  std::vector<u64> counts_;
  u64 underflow_ = 0;
};

}  // namespace gpclust::util
