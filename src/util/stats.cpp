#include "util/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace gpclust::util {

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::format(int precision) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f \xC2\xB1 %.*f", precision, mean(),
                precision, stddev());
  return buf;
}

}  // namespace gpclust::util
