#pragma once
// Streaming statistics accumulators used for graph/cluster reports
// (Tables II and IV report "avg ± std" columns).

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "util/common.hpp"

namespace gpclust::util {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator (parallel reduction friendly).
  void merge(const RunningStats& other);

  /// Render as "mean ± std" with the given precision, e.g. "73 ± 153".
  std::string format(int precision = 0) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace gpclust::util
