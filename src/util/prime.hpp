#pragma once
// Prime utilities for the min-wise hash family. The shingling permutation
// v -> (A*v + B) mod P requires P to be a prime larger than the universe
// of vertex ids (paper §III-B: "P is a big prime number").

#include "util/common.hpp"

namespace gpclust::util {

/// 2^61 - 1, a Mersenne prime large enough for any vertex/shingle universe
/// used in this library. Default modulus of the min-wise hash family.
inline constexpr u64 kMersenne61 = (1ULL << 61) - 1;

/// Deterministic Miller-Rabin, exact for all 64-bit inputs.
bool is_prime(u64 n);

/// Smallest prime >= n. Requires n <= kMersenne61 (always satisfiable).
u64 next_prime(u64 n);

/// (a * b) mod m without overflow for m < 2^63.
u64 mulmod(u64 a, u64 b, u64 m);

/// (base ^ exp) mod m.
u64 powmod(u64 base, u64 exp, u64 m);

}  // namespace gpclust::util
