#include "util/rng.hpp"

namespace gpclust::util {

u64 mix64(u64 x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(u64 seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

u64 Xoshiro256::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Xoshiro256::next_below(u64 bound) {
  GPCLUST_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire's multiply-shift rejection method: unbiased and division-free in
  // the common case.
  u64 x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 low = static_cast<u64>(m);
  if (low < bound) {
    const u64 threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::jump() {
  static constexpr std::array<u64, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<u64, 4> acc = {0, 0, 0, 0};
  for (u64 word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        for (int i = 0; i < 4; ++i) acc[static_cast<size_t>(i)] ^= s_[static_cast<size_t>(i)];
      }
      next();
    }
  }
  s_ = acc;
}

}  // namespace gpclust::util
