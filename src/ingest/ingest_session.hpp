#pragma once
// Streaming-ingest subsystem (DESIGN.md §15): incremental clustering of
// appended ORF batches against existing clustered state, without
// re-running the full pipeline. An IngestSession owns the accepted
// sequences, the standing seed index, the verified edge set and the
// current partition; each ingest() batch
//
//   1. merges the new sequences' seed-index entries (sorted k-mer
//      postings in KmerCount mode, banded min-hash signatures + bucket
//      entries in MinHashLsh mode) into the standing index instead of
//      rebuilding it, and emits candidate pairs only for new-vs-old and
//      new-vs-new pairs;
//   2. detects standing pairs whose repeat-masking changed (a k-mer or
//      LSH bucket crossing max occupancy can only *remove* old-vs-old
//      candidacy — occupancy is monotone under appends) and revokes the
//      affected edges that no longer qualify;
//   3. runs the unchanged prefilter + verify cascade
//      (align::verify_candidate_pairs, any VerifyBackend) on just the new
//      candidates — a pair's verdict is a pure function of the two
//      sequences and the config, so incremental and from-scratch runs
//      agree per pair;
//   4. re-runs shingling ONLY on the connected components the edge
//      changes touch, splicing the untouched standing clusters through
//      unchanged.
//
// Equivalence contract (enforced by tests/ingest): for ANY split of an
// input into batches, the session's partition digest — and the snapshot
// built from it — is identical to a from-scratch run on the concatenated
// input with the same configuration. The one caveat is the pipeline's
// existing accepted risk: a 64-bit shingle-hash collision across
// components could in principle differ between a scoped and a full
// re-shingle; the probability is the same ~2^-64 the from-scratch
// pipeline already accepts.
//
// Modes not supported: MaximalMatch/SpGemm seeding (no incremental index
// seam) and the heuristic prefilter tier (its shared-seed threshold is
// not append-consistent); both are rejected at construction.

#include <optional>
#include <vector>

#include "align/homology_graph.hpp"
#include "core/clustering.hpp"
#include "core/gpclust.hpp"
#include "core/params.hpp"
#include "graph/edge_list.hpp"
#include "seq/sequence.hpp"
#include "seq/sketch.hpp"
#include "store/delta.hpp"
#include "store/snapshot.hpp"

namespace gpclust::ingest {

/// Which engine re-clusters the touched components. Both are bit-identical
/// for identical ShinglingParams (the repo-wide invariant), so the choice
/// only moves time between measured host seconds and the modeled device
/// timeline.
enum class ClusterEngine {
  Serial,  ///< SerialShingler on the host
  Device,  ///< GpClust on the session's DeviceContext
};

struct IngestConfig {
  /// Cascade configuration shared with build_homology_graph. seed_mode
  /// must be KmerCount or MinHashLsh; prefilter.enabled must be false.
  align::HomologyGraphConfig graph;
  core::ShinglingParams shingling;
  store::StoreBuildConfig store;

  ClusterEngine engine = ClusterEngine::Serial;
  /// Required when engine == Device (and for DeviceBatched verification
  /// config.graph.device_verify.context is required as usual).
  device::DeviceContext* device = nullptr;
  /// Device-engine execution shape, fault plan and resilience policy.
  core::GpClustOptions device_options;

  /// Spans "ingest.seed" / "ingest.verify" / "ingest.recluster" plus the
  /// ingest_* counters; also handed to the cascade and the device engine
  /// when their own tracer slots are unset.
  obs::Tracer* tracer = nullptr;
};

/// Per-batch outcome. Host seconds are measured wall time; the verify
/// stage's device column (stats.verify.device) stays modeled, per the
/// repo's labeling invariant.
struct IngestBatchStats {
  std::size_t num_new_sequences = 0;
  /// New-vs-old and new-vs-new candidate pairs handed to the cascade.
  std::size_t num_candidate_pairs = 0;
  std::size_t num_accepted_edges = 0;
  /// Standing old-vs-old pairs whose repeat-masking changed this batch.
  std::size_t num_dirty_pairs = 0;
  /// Standing edges revoked because their pair lost candidacy.
  std::size_t num_revoked_edges = 0;
  std::size_t num_components = 0;          ///< post-batch, over all vertices
  std::size_t num_touched_components = 0;  ///< re-shingled this batch
  std::size_t num_touched_vertices = 0;    ///< members of touched components
  double touched_fraction = 0.0;           ///< touched vertices / all vertices
  double seed_host_s = 0.0;       ///< index merge + candidate generation
  double verify_host_s = 0.0;     ///< cascade over the new candidates
  double recluster_host_s = 0.0;  ///< scoped shingling + splice
  align::HomologyGraphStats verify;
};

class IngestSession {
 public:
  /// Starts an empty session: the first ingest() IS the from-scratch run.
  explicit IngestSession(IngestConfig config);

  /// Resumes from a persisted snapshot (or a delta-chain tip): adopts its
  /// sequences and partition, then rebuilds the standing seed index and
  /// edge set by replaying the cascade over the adopted sequences — a
  /// one-time cost, after which batches are incremental. The base's
  /// partition must be the pipeline's canonical family order (families
  /// ascending by smallest member).
  IngestSession(IngestConfig config, const store::FamilyStore& base);

  /// Ingests one batch of new sequences. Strong exception guarantee: on
  /// throw (including injected device faults with resilience off) the
  /// session state is unchanged and usable.
  IngestBatchStats ingest(const seq::SequenceSet& batch);

  /// ingest() plus a versioned snapshot delta describing the batch:
  /// applying the returned delta to the pre-batch snapshot reproduces the
  /// post-batch snapshot byte-for-byte (store/delta.hpp). The pre-batch
  /// snapshot is cached between calls, so a chain of ingest_with_delta()
  /// calls serializes each snapshot once.
  store::SnapshotDelta ingest_with_delta(const seq::SequenceSet& batch,
                                         u64 chain_index,
                                         IngestBatchStats* stats = nullptr);

  std::size_t num_sequences() const { return sequences_.size(); }
  std::size_t num_families() const { return clusters_.size(); }
  const seq::SequenceSet& sequences() const { return sequences_; }
  /// Verified edge set (canonical: u < v, ascending, deduplicated).
  const std::vector<graph::Edge>& edges() const { return edges_; }

  /// The current partition, families ascending by smallest member — the
  /// exact cluster order a from-scratch run reports.
  core::Clustering clustering() const;
  u64 partition_digest() const { return clustering().digest(); }

  /// Snapshot of the current state (build_family_store over the session's
  /// sequences and labels).
  store::FamilyStore store() const;

 private:
  struct Posting {
    u64 code;
    u32 seq;
    u32 pos;
  };
  struct BandEntry {
    u64 key;
    u32 band;
    u32 seq;
  };
  struct SeedOutput {
    std::vector<align::CandidatePair> pairs;  ///< new-involving, (a,b)-asc
    std::vector<u64> dirty_keys;              ///< old-old (a<<32|b), sorted
    std::vector<Posting> merged_postings;     ///< KmerCount staging
    std::vector<BandEntry> merged_entries;    ///< MinHashLsh staging
    std::vector<u64> new_signatures;          ///< MinHashLsh staging
  };

  SeedOutput incremental_seed_kmer(std::size_t first_new) const;
  SeedOutput incremental_seed_lsh(std::size_t first_new) const;
  bool still_candidate_kmer(u32 a, u32 b,
                            const std::vector<Posting>& postings) const;
  bool still_candidate_lsh(u32 a, u32 b, const std::vector<u64>& signatures,
                           const std::vector<BandEntry>& entries) const;
  core::Clustering cluster_graph(const graph::CsrGraph& g) const;

  IngestConfig config_;
  seq::SequenceSet sequences_;
  /// Partition, families ascending by smallest member, members ascending.
  std::vector<std::vector<VertexId>> clusters_;
  std::vector<graph::Edge> edges_;

  // Standing seed index (exactly one populated, per config_.graph.seed_mode).
  std::vector<Posting> postings_;      ///< sorted by (code, seq)
  std::vector<BandEntry> entries_;     ///< sorted by (band, key, seq)
  std::vector<u64> signatures_;        ///< per-seq min-hash rows (LSH width)
  std::optional<seq::SketchHashes> sketch_hashes_;

  /// Pre-batch snapshot cache for ingest_with_delta chains.
  std::optional<store::FamilyStore> last_store_;
};

}  // namespace gpclust::ingest
