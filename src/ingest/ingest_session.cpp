#include "ingest/ingest_session.hpp"

#include <algorithm>

#include "core/serial_pclust.hpp"
#include "graph/union_find.hpp"
#include "seq/alphabet.hpp"
#include "util/timer.hpp"

namespace gpclust::ingest {

namespace {

constexpr u64 pair_key(u32 a, u32 b) {
  return (static_cast<u64>(a) << 32) | b;
}

/// One shared seed of a new-involving pair — same packing the from-scratch
/// k-mer index aggregates (kmer_index.cpp), so run counts and mode
/// diagonals come out identical.
struct PairSeed {
  u64 key;
  i32 diag;
};

/// Exact distinct-k-mer intersection of two sorted code lists (the LSH
/// recount, lsh_seeds.cpp).
std::size_t shared_codes(std::span<const u64> a, std::span<const u64> b) {
  std::size_t shared = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++shared;
      ++i;
      ++j;
    }
  }
  return shared;
}

/// Rolls the sequence append back unless the batch commits — the strong
/// exception guarantee for ingest(): a thrown verify fault (injected or
/// real) leaves the session exactly as it was.
struct SequenceRollback {
  seq::SequenceSet& sequences;
  std::size_t old_size;
  bool committed = false;
  ~SequenceRollback() {
    if (!committed) sequences.resize(old_size);
  }
};

}  // namespace

IngestSession::IngestSession(IngestConfig config)
    : config_(std::move(config)) {
  GPCLUST_CHECK(config_.graph.seed_mode == align::SeedMode::KmerCount ||
                    config_.graph.seed_mode == align::SeedMode::MinHashLsh,
                "ingest supports the kmer and minhash seed modes (maximal "
                "and spgemm have no incremental index seam)");
  GPCLUST_CHECK(!config_.graph.prefilter.enabled,
                "the heuristic prefilter tier is not append-consistent; "
                "disable it for ingest");
  GPCLUST_CHECK(config_.shingling.mode == core::ReportMode::Partition,
                "ingest splices strict partitions; use ReportMode::Partition");
  GPCLUST_CHECK(config_.engine == ClusterEngine::Serial ||
                    config_.device != nullptr,
                "the Device engine needs a DeviceContext");
  if (config_.graph.tracer == nullptr) config_.graph.tracer = config_.tracer;
  if (config_.device_options.tracer == nullptr) {
    config_.device_options.tracer = config_.tracer;
  }
}

IngestSession::IngestSession(IngestConfig config,
                             const store::FamilyStore& base)
    : IngestSession(std::move(config)) {
  // Adopt the snapshot's sequences and partition...
  seq::SequenceSet adopted(base.num_sequences());
  for (std::size_t i = 0; i < base.num_sequences(); ++i) {
    adopted[i].id = std::string(base.id(i));
    adopted[i].residues = std::string(base.sequence(i));
  }
  std::vector<std::vector<VertexId>> clusters(base.num_families);
  for (std::size_t i = 0; i < base.family_of.size(); ++i) {
    GPCLUST_CHECK(base.family_of[i] < base.num_families,
                  "snapshot family label out of range");
    clusters[base.family_of[i]].push_back(static_cast<VertexId>(i));
  }
  for (std::size_t f = 0; f < clusters.size(); ++f) {
    GPCLUST_CHECK(!clusters[f].empty(), "snapshot has an empty family");
    GPCLUST_CHECK(f == 0 || clusters[f - 1].front() < clusters[f].front(),
                  "snapshot families are not in canonical order (ascending "
                  "by smallest member)");
  }

  // ...then rebuild the standing index and edge set by replaying the
  // cascade once over the adopted sequences. ingest() of "everything" into
  // an empty session IS the from-scratch run, so reuse it, then restore
  // the snapshot's partition (which the replay just reproduced — the
  // equivalence tests pin this — but adopting the snapshot's own labels
  // keeps resume honest even if the caller's config differs).
  ingest(adopted);
  clusters_ = std::move(clusters);
  last_store_.reset();
}

core::Clustering IngestSession::cluster_graph(const graph::CsrGraph& g) const {
  if (config_.engine == ClusterEngine::Device) {
    core::GpClust engine(*config_.device, config_.shingling,
                         config_.device_options);
    return engine.cluster(g);
  }
  return core::SerialShingler(config_.shingling)
      .cluster(g, nullptr, config_.tracer);
}

core::Clustering IngestSession::clustering() const {
  return core::Clustering(clusters_, sequences_.size());
}

store::FamilyStore IngestSession::store() const {
  std::vector<u32> labels(sequences_.size());
  for (std::size_t f = 0; f < clusters_.size(); ++f) {
    for (const VertexId v : clusters_[f]) labels[v] = static_cast<u32>(f);
  }
  return store::build_family_store(sequences_, labels, config_.store);
}

IngestSession::SeedOutput IngestSession::incremental_seed_kmer(
    std::size_t first_new) const {
  const align::KmerIndexConfig& cfg = config_.graph.seeds;
  GPCLUST_CHECK(cfg.k >= 2 && cfg.k <= 12, "k must be in [2, 12]");
  SeedOutput out;

  // Per-sequence distinct (code, first pos) postings of the batch — the
  // same in-place sort + unique the from-scratch index uses.
  std::vector<Posting> fresh;
  for (std::size_t i = first_new; i < sequences_.size(); ++i) {
    const std::string& r = sequences_[i].residues;
    if (r.size() < cfg.k) continue;
    const auto start = static_cast<std::ptrdiff_t>(fresh.size());
    for (std::size_t pos = 0; pos + cfg.k <= r.size(); ++pos) {
      u64 code = 0;
      for (std::size_t j = 0; j < cfg.k; ++j) {
        code = code * seq::kNumResidues + seq::residue_index(r[pos + j]);
      }
      fresh.push_back({code, static_cast<u32>(i), static_cast<u32>(pos)});
    }
    std::sort(fresh.begin() + start, fresh.end(),
              [](const Posting& x, const Posting& y) {
                return std::pair(x.code, x.pos) < std::pair(y.code, y.pos);
              });
    fresh.erase(std::unique(fresh.begin() + start, fresh.end(),
                            [](const Posting& x, const Posting& y) {
                              return x.code == y.code;
                            }),
                fresh.end());
  }
  const auto by_code_seq = [](const Posting& x, const Posting& y) {
    return std::pair(x.code, x.seq) < std::pair(y.code, y.seq);
  };
  std::sort(fresh.begin(), fresh.end(), by_code_seq);

  // Merge into the standing (code, seq)-sorted array. Old ids < new ids,
  // so within a code run the old prefix / new suffix split is positional.
  out.merged_postings.resize(postings_.size() + fresh.size());
  std::merge(postings_.begin(), postings_.end(), fresh.begin(), fresh.end(),
             out.merged_postings.begin(), by_code_seq);
  const auto& merged = out.merged_postings;

  // Walk each k-mer the batch touched once. Unmasked runs emit seeds for
  // new-involving pairs; a run whose occupancy crossed max this batch
  // dirties its old-old pairs (append-monotone: old-old candidacy can only
  // be lost, never gained — a code shared by two old sequences already
  // counted both before the batch).
  std::vector<PairSeed> seeds;
  for (std::size_t flo = 0; flo < fresh.size();) {
    std::size_t fhi = flo;
    while (fhi < fresh.size() && fresh[fhi].code == fresh[flo].code) ++fhi;
    const u64 code = fresh[flo].code;
    flo = fhi;

    const auto run = std::equal_range(
        merged.begin(), merged.end(), Posting{code, 0, 0},
        [](const Posting& x, const Posting& y) { return x.code < y.code; });
    const std::size_t lo = static_cast<std::size_t>(run.first - merged.begin());
    const std::size_t hi =
        static_cast<std::size_t>(run.second - merged.begin());
    const std::size_t total = hi - lo;
    std::size_t old_end = lo;
    while (old_end < hi && merged[old_end].seq < first_new) ++old_end;
    const std::size_t n_old = old_end - lo;

    if (total >= 2 && total <= cfg.max_kmer_occurrences) {
      for (std::size_t x = lo; x < hi; ++x) {
        // Pairs (x, y), x < y, skipping old-old: when x is old, start y at
        // the new suffix; when x is new, every later y qualifies.
        for (std::size_t y = std::max(x + 1, old_end); y < hi; ++y) {
          seeds.push_back({pair_key(merged[x].seq, merged[y].seq),
                           static_cast<i32>(merged[x].pos) -
                               static_cast<i32>(merged[y].pos)});
        }
      }
    } else if (n_old >= 2 && n_old <= cfg.max_kmer_occurrences &&
               total > cfg.max_kmer_occurrences) {
      for (std::size_t x = lo; x < old_end; ++x) {
        for (std::size_t y = x + 1; y < old_end; ++y) {
          out.dirty_keys.push_back(pair_key(merged[x].seq, merged[y].seq));
        }
      }
    }
  }

  // Aggregate seeds exactly as the from-scratch index does: sort by
  // (key, diag), promote runs of >= min_shared_kmers, mode diagonal with
  // smallest-on-ties from the ascending order.
  std::sort(seeds.begin(), seeds.end(), [](const PairSeed& x,
                                           const PairSeed& y) {
    return std::pair(x.key, x.diag) < std::pair(y.key, y.diag);
  });
  for (std::size_t lo = 0; lo < seeds.size();) {
    std::size_t hi = lo;
    while (hi < seeds.size() && seeds[hi].key == seeds[lo].key) ++hi;
    const u32 count = static_cast<u32>(hi - lo);
    if (count >= cfg.min_shared_kmers) {
      i32 mode_diag = seeds[lo].diag;
      std::size_t mode_len = 0;
      for (std::size_t i = lo; i < hi;) {
        std::size_t j = i;
        while (j < hi && seeds[j].diag == seeds[i].diag) ++j;
        if (j - i > mode_len) {
          mode_len = j - i;
          mode_diag = seeds[i].diag;
        }
        i = j;
      }
      out.pairs.push_back({static_cast<u32>(seeds[lo].key >> 32),
                           static_cast<u32>(seeds[lo].key & 0xffffffffu),
                           count, mode_diag});
    }
    lo = hi;
  }

  std::sort(out.dirty_keys.begin(), out.dirty_keys.end());
  out.dirty_keys.erase(
      std::unique(out.dirty_keys.begin(), out.dirty_keys.end()),
      out.dirty_keys.end());
  return out;
}

IngestSession::SeedOutput IngestSession::incremental_seed_lsh(
    std::size_t first_new) const {
  const align::LshSeedConfig& cfg = config_.graph.lsh;
  cfg.validate();
  const u64 width = cfg.num_bands * cfg.rows_per_band;
  SeedOutput out;

  // Sketch the batch with the session's fixed permutation set.
  const std::size_t num_new = sequences_.size() - first_new;
  out.new_signatures.resize(num_new * width);
  std::vector<u64> scratch;
  for (std::size_t i = 0; i < num_new; ++i) {
    seq::distinct_kmer_codes(sequences_[first_new + i].residues, cfg.k,
                             scratch);
    sketch_hashes_->sketch(
        scratch, std::span<u64>(out.new_signatures).subspan(i * width, width));
  }

  // New bucket entries, merged into the standing (band, key, seq) order.
  // Empty sketches (sequences shorter than k) stay out of every bucket,
  // like both from-scratch paths.
  std::vector<BandEntry> fresh;
  for (u64 band = 0; band < cfg.num_bands; ++band) {
    for (std::size_t i = 0; i < num_new; ++i) {
      const std::span<const u64> rows =
          std::span<const u64>(out.new_signatures)
              .subspan(i * width + band * cfg.rows_per_band,
                       cfg.rows_per_band);
      if (rows.front() == seq::kEmptySketchSlot) continue;
      fresh.push_back({seq::band_key(band, rows), static_cast<u32>(band),
                       static_cast<u32>(first_new + i)});
    }
  }
  const auto by_band_key_seq = [](const BandEntry& x, const BandEntry& y) {
    return std::tuple(x.band, x.key, x.seq) < std::tuple(y.band, y.key, y.seq);
  };
  std::sort(fresh.begin(), fresh.end(), by_band_key_seq);
  out.merged_entries.resize(entries_.size() + fresh.size());
  std::merge(entries_.begin(), entries_.end(), fresh.begin(), fresh.end(),
             out.merged_entries.begin(), by_band_key_seq);
  const auto& merged = out.merged_entries;

  // Walk each bucket the batch touched once. A sequence lands in exactly
  // one bucket per band, so a pair shares at most one bucket per band and
  // the per-pair hit counts need no within-band dedup. Occupancy is
  // monotone under appends: old-old pairs only ever lose buckets (to
  // masking), never gain them.
  std::vector<u64> hits;  ///< one key per (pair, colliding unmasked bucket)
  for (std::size_t flo = 0; flo < fresh.size();) {
    std::size_t fhi = flo;
    while (fhi < fresh.size() && fresh[fhi].band == fresh[flo].band &&
           fresh[fhi].key == fresh[flo].key) {
      ++fhi;
    }
    const BandEntry probe{fresh[flo].key, fresh[flo].band, 0};
    flo = fhi;

    const auto run =
        std::equal_range(merged.begin(), merged.end(), probe,
                         [](const BandEntry& x, const BandEntry& y) {
                           return std::tuple(x.band, x.key) <
                                  std::tuple(y.band, y.key);
                         });
    const std::size_t lo = static_cast<std::size_t>(run.first - merged.begin());
    const std::size_t hi =
        static_cast<std::size_t>(run.second - merged.begin());
    const std::size_t occupancy = hi - lo;
    std::size_t old_end = lo;
    while (old_end < hi && merged[old_end].seq < first_new) ++old_end;
    const std::size_t n_old = old_end - lo;

    if (occupancy >= 2 && occupancy <= cfg.max_bucket_size) {
      for (std::size_t x = lo; x < hi; ++x) {
        for (std::size_t y = std::max(x + 1, old_end); y < hi; ++y) {
          hits.push_back(pair_key(merged[x].seq, merged[y].seq));
        }
      }
    } else if (n_old >= 2 && n_old <= cfg.max_bucket_size &&
               occupancy > cfg.max_bucket_size) {
      for (std::size_t x = lo; x < old_end; ++x) {
        for (std::size_t y = x + 1; y < old_end; ++y) {
          out.dirty_keys.push_back(pair_key(merged[x].seq, merged[y].seq));
        }
      }
    }
  }

  // Band-hit threshold, then the exact recount — identical to the
  // from-scratch tail (lsh_seeds.cpp), including the ascending pair order
  // and the cached `a`-side code list.
  std::sort(hits.begin(), hits.end());
  std::vector<u64> codes_a, codes_b;
  u32 cached_a = ~0u;
  for (std::size_t lo = 0; lo < hits.size();) {
    std::size_t hi = lo;
    while (hi < hits.size() && hits[hi] == hits[lo]) ++hi;
    const u64 key = hits[lo];
    const u32 band_hits = static_cast<u32>(hi - lo);
    lo = hi;
    if (band_hits < cfg.min_band_hits) continue;
    const u32 a = static_cast<u32>(key >> 32);
    const u32 b = static_cast<u32>(key & 0xffffffffu);
    if (a != cached_a) {
      seq::distinct_kmer_codes(sequences_[a].residues, cfg.k, codes_a);
      cached_a = a;
    }
    seq::distinct_kmer_codes(sequences_[b].residues, cfg.k, codes_b);
    const std::size_t shared = shared_codes(codes_a, codes_b);
    if (shared >= cfg.min_shared_kmers) {
      out.pairs.push_back({a, b, static_cast<u32>(shared), 0});
    }
  }

  std::sort(out.dirty_keys.begin(), out.dirty_keys.end());
  out.dirty_keys.erase(
      std::unique(out.dirty_keys.begin(), out.dirty_keys.end()),
      out.dirty_keys.end());
  return out;
}

bool IngestSession::still_candidate_kmer(
    u32 a, u32 b, const std::vector<Posting>& postings) const {
  const align::KmerIndexConfig& cfg = config_.graph.seeds;
  std::vector<u64> codes_a, codes_b;
  seq::distinct_kmer_codes(sequences_[a].residues, cfg.k, codes_a);
  seq::distinct_kmer_codes(sequences_[b].residues, cfg.k, codes_b);
  std::size_t shared = 0;
  std::size_t i = 0, j = 0;
  while (i < codes_a.size() && j < codes_b.size()) {
    if (codes_a[i] < codes_b[j]) {
      ++i;
    } else if (codes_b[j] < codes_a[i]) {
      ++j;
    } else {
      // Shared code: it counts iff its post-batch occupancy is unmasked —
      // the same [2, max] window the from-scratch run applies globally.
      const u64 code = codes_a[i];
      const auto run = std::equal_range(
          postings.begin(), postings.end(), Posting{code, 0, 0},
          [](const Posting& x, const Posting& y) { return x.code < y.code; });
      const std::size_t occ =
          static_cast<std::size_t>(run.second - run.first);
      if (occ >= 2 && occ <= cfg.max_kmer_occurrences) {
        if (++shared >= cfg.min_shared_kmers) return true;
      }
      ++i;
      ++j;
    }
  }
  return false;
}

bool IngestSession::still_candidate_lsh(
    u32 a, u32 b, const std::vector<u64>& signatures,
    const std::vector<BandEntry>& entries) const {
  // The exact recount (unmasked shared codes) is a pure pair function and
  // the pair already passed it when its edge was admitted, so only the
  // band-collision threshold can revoke candidacy.
  const align::LshSeedConfig& cfg = config_.graph.lsh;
  const u64 width = cfg.num_bands * cfg.rows_per_band;
  u32 band_hits = 0;
  for (u64 band = 0; band < cfg.num_bands; ++band) {
    const std::span<const u64> rows_a =
        std::span<const u64>(signatures)
            .subspan(a * width + band * cfg.rows_per_band, cfg.rows_per_band);
    const std::span<const u64> rows_b =
        std::span<const u64>(signatures)
            .subspan(b * width + band * cfg.rows_per_band, cfg.rows_per_band);
    if (rows_a.front() == seq::kEmptySketchSlot ||
        rows_b.front() == seq::kEmptySketchSlot) {
      continue;
    }
    const u64 key_a = seq::band_key(band, rows_a);
    if (key_a != seq::band_key(band, rows_b)) continue;
    const BandEntry probe{key_a, static_cast<u32>(band), 0};
    const auto run =
        std::equal_range(entries.begin(), entries.end(), probe,
                         [](const BandEntry& x, const BandEntry& y) {
                           return std::tuple(x.band, x.key) <
                                  std::tuple(y.band, y.key);
                         });
    const std::size_t occupancy =
        static_cast<std::size_t>(run.second - run.first);
    if (occupancy >= 2 && occupancy <= cfg.max_bucket_size) {
      if (++band_hits >= cfg.min_band_hits) return true;
    }
  }
  return false;
}

IngestBatchStats IngestSession::ingest(const seq::SequenceSet& batch) {
  IngestBatchStats stats;
  stats.num_new_sequences = batch.size();
  if (batch.empty()) return stats;
  const std::size_t first_new = sequences_.size();
  const std::size_t n = first_new + batch.size();
  GPCLUST_CHECK(n <= 0xffffffffull, "sequence ids overflow u32");
  const bool lsh = config_.graph.seed_mode == align::SeedMode::MinHashLsh;
  if (lsh && !sketch_hashes_) {
    sketch_hashes_.emplace(
        config_.graph.lsh.num_bands * config_.graph.lsh.rows_per_band,
        config_.graph.lsh.seed);
  }

  sequences_.insert(sequences_.end(), batch.begin(), batch.end());
  SequenceRollback rollback{sequences_, first_new};

  // Stage 1 (incremental): merge the batch into the standing index and
  // emit new-involving candidates + dirtied old-old pairs. All staging
  // lands in locals; members mutate only at commit.
  util::WallTimer seed_timer;
  SeedOutput seed;
  {
    obs::HostSpan span(config_.tracer, "ingest.seed");
    seed = lsh ? incremental_seed_lsh(first_new)
               : incremental_seed_kmer(first_new);
  }
  stats.seed_host_s = seed_timer.seconds();
  stats.num_candidate_pairs = seed.pairs.size();
  stats.num_dirty_pairs = seed.dirty_keys.size();
  obs::add_counter(config_.tracer, "ingest_candidate_pairs",
                   seed.pairs.size());

  // Revocation: a dirtied pair that is a standing edge keeps it iff it is
  // still a candidate of the post-batch input (its verify verdict is pure,
  // so candidacy is the only thing masking can take away).
  std::vector<graph::Edge> revoked;
  for (const u64 key : seed.dirty_keys) {
    const graph::Edge e{static_cast<u32>(key >> 32),
                        static_cast<u32>(key & 0xffffffffu)};
    if (!std::binary_search(edges_.begin(), edges_.end(), e)) continue;
    const bool keep = lsh ? still_candidate_lsh(e.u, e.v, signatures_,
                                                seed.merged_entries)
                          : still_candidate_kmer(e.u, e.v,
                                                 seed.merged_postings);
    if (!keep) revoked.push_back(e);
  }
  stats.num_revoked_edges = revoked.size();
  obs::add_counter(config_.tracer, "ingest_revoked_edges", revoked.size());

  // Stages 2 + 3: the unchanged cascade over just the new candidates.
  util::WallTimer verify_timer;
  std::vector<u8> accepted;
  {
    obs::HostSpan span(config_.tracer, "ingest.verify");
    accepted = align::verify_candidate_pairs(sequences_, seed.pairs,
                                             config_.graph, &stats.verify);
  }
  stats.verify_host_s = verify_timer.seconds();

  // Updated edge set: standing minus revoked, plus accepted. New-involving
  // edges have their larger endpoint >= first_new while standing edges do
  // not, so the two sorted runs merge without deduplication.
  std::vector<graph::Edge> added;
  for (std::size_t i = 0; i < seed.pairs.size(); ++i) {
    if (accepted[i]) added.push_back({seed.pairs[i].a, seed.pairs[i].b});
  }
  stats.num_accepted_edges = added.size();
  std::vector<graph::Edge> kept;
  kept.reserve(edges_.size() - revoked.size());
  std::set_difference(edges_.begin(), edges_.end(), revoked.begin(),
                      revoked.end(), std::back_inserter(kept));
  std::vector<graph::Edge> updated;
  updated.reserve(kept.size() + added.size());
  std::merge(kept.begin(), kept.end(), added.begin(), added.end(),
             std::back_inserter(updated));

  // Scoped re-cluster: components touched by an edge change or a new
  // vertex are re-shingled on the full vertex-id universe (shingle hashes
  // are functions of original vertex ids, so the scoped pass reproduces
  // the from-scratch clusters of those components bit-for-bit); untouched
  // standing clusters splice through. Every fragment of a changed
  // component contains an endpoint of a changed edge, so first-member
  // tests classify whole clusters soundly.
  util::WallTimer recluster_timer;
  std::vector<std::vector<VertexId>> next_clusters;
  {
    obs::HostSpan span(config_.tracer, "ingest.recluster");
    graph::UnionFind uf(n);
    for (const graph::Edge& e : updated) uf.unite(e.u, e.v);
    std::vector<u8> touched_root(n, 0);
    for (std::size_t v = first_new; v < n; ++v) touched_root[uf.find(v)] = 1;
    for (const graph::Edge& e : revoked) {
      touched_root[uf.find(e.u)] = 1;
      touched_root[uf.find(e.v)] = 1;
    }
    for (const graph::Edge& e : added) touched_root[uf.find(e.u)] = 1;

    graph::EdgeList scoped(n);
    for (const graph::Edge& e : updated) {
      if (touched_root[uf.find(e.u)]) scoped.add(e.u, e.v);
    }
    const core::Clustering reclustered =
        cluster_graph(graph::CsrGraph::from_edge_list(std::move(scoped)));

    for (const auto& cluster : clusters_) {
      if (!touched_root[uf.find(cluster.front())]) {
        next_clusters.push_back(cluster);
      }
    }
    for (const auto& cluster : reclustered.clusters()) {
      if (touched_root[uf.find(cluster.front())]) {
        next_clusters.push_back(cluster);
      }
    }
    std::sort(next_clusters.begin(), next_clusters.end(),
              [](const std::vector<VertexId>& x,
                 const std::vector<VertexId>& y) {
                return x.front() < y.front();
              });

    stats.num_components = uf.num_sets();
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t root = uf.find(v);
      if (touched_root[root]) {
        ++stats.num_touched_vertices;
        if (root == v) ++stats.num_touched_components;
      }
    }
    stats.touched_fraction =
        static_cast<double>(stats.num_touched_vertices) /
        static_cast<double>(n);
  }
  stats.recluster_host_s = recluster_timer.seconds();
  obs::add_counter(config_.tracer, "ingest_touched_vertices",
                   stats.num_touched_vertices);

  // Safety net for the splice: the merged clusters must partition [0, n).
  std::size_t members = 0;
  for (const auto& cluster : next_clusters) members += cluster.size();
  GPCLUST_CHECK(members == n, "spliced clusters do not partition the input");

  // Commit.
  clusters_ = std::move(next_clusters);
  edges_ = std::move(updated);
  if (lsh) {
    entries_ = std::move(seed.merged_entries);
    signatures_.insert(signatures_.end(), seed.new_signatures.begin(),
                       seed.new_signatures.end());
  } else {
    postings_ = std::move(seed.merged_postings);
  }
  rollback.committed = true;
  last_store_.reset();
  return stats;
}

store::SnapshotDelta IngestSession::ingest_with_delta(
    const seq::SequenceSet& batch, u64 chain_index, IngestBatchStats* stats) {
  store::FamilyStore base =
      last_store_ ? std::move(*last_store_) : this->store();
  last_store_.reset();
  IngestBatchStats batch_stats = ingest(batch);
  store::FamilyStore next = this->store();
  store::SnapshotDelta delta =
      store::build_snapshot_delta(base, next, chain_index);
  last_store_ = std::move(next);
  if (stats != nullptr) *stats = batch_stats;
  return delta;
}

}  // namespace gpclust::ingest
