#include "align/smith_waterman.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "align/blosum.hpp"
#include "seq/alphabet.hpp"

namespace gpclust::align {

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

std::vector<u8> encode(std::string_view s) {
  std::vector<u8> out(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    out[i] = seq::residue_index(s[i]);
  }
  return out;
}
}  // namespace

AlignmentResult smith_waterman(std::string_view a, std::string_view b,
                               const AlignmentParams& params) {
  params.validate();
  const auto ea = encode(a);
  const auto eb = encode(b);
  const std::size_t n = ea.size();
  const std::size_t m = eb.size();

  AlignmentResult best;
  if (n == 0 || m == 0) return best;

  // Gotoh recurrences, row-major over a; one row of H (match/mismatch end),
  // E (gap in a, i.e. horizontal) kept; F (gap in b, vertical) is carried
  // per column scan.
  std::vector<int> h(m + 1, 0);
  std::vector<int> e(m + 1, kNegInf);

  for (std::size_t i = 1; i <= n; ++i) {
    int h_diag = 0;  // H[i-1][0]
    int h_left = 0;  // H[i][0]
    int f = kNegInf;
    for (std::size_t j = 1; j <= m; ++j) {
      e[j] = std::max(e[j] - params.gap_extend,
                      h[j] - params.gap_open - params.gap_extend);
      f = std::max(f - params.gap_extend,
                   h_left - params.gap_open - params.gap_extend);
      const int diag = h_diag + blosum62_by_index(ea[i - 1], eb[j - 1]);
      int score = std::max({0, diag, e[j], f});
      h_diag = h[j];
      h[j] = score;
      h_left = score;
      if (score > best.score) {
        best.score = score;
        best.a_end = i;
        best.b_end = j;
      }
    }
  }
  return best;
}

TracedAlignment smith_waterman_traced(std::string_view a, std::string_view b,
                                      const AlignmentParams& params) {
  params.validate();
  const auto ea = encode(a);
  const auto eb = encode(b);
  const std::size_t n = ea.size();
  const std::size_t m = eb.size();
  TracedAlignment out;
  if (n == 0 || m == 0) return out;

  // Full Gotoh matrices (H, E, F) for exact affine traceback.
  const std::size_t w = m + 1;
  std::vector<int> H((n + 1) * w, 0), E((n + 1) * w, kNegInf),
      F((n + 1) * w, kNegInf);
  auto at = [w](std::size_t i, std::size_t j) { return i * w + j; };

  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      E[at(i, j)] = std::max(E[at(i - 1, j)] - params.gap_extend,
                             H[at(i - 1, j)] - params.gap_open -
                                 params.gap_extend);
      F[at(i, j)] = std::max(F[at(i, j - 1)] - params.gap_extend,
                             H[at(i, j - 1)] - params.gap_open -
                                 params.gap_extend);
      const int diag =
          H[at(i - 1, j - 1)] + blosum62_by_index(ea[i - 1], eb[j - 1]);
      H[at(i, j)] = std::max({0, diag, E[at(i, j)], F[at(i, j)]});
      if (H[at(i, j)] > out.score) {
        out.score = H[at(i, j)];
        best_i = i;
        best_j = j;
      }
    }
  }
  if (out.score == 0) return out;

  // Traceback from (best_i, best_j) until H reaches 0. State machine over
  // the three matrices (start in H).
  enum class State { H, E, F };
  State state = State::H;
  std::size_t i = best_i, j = best_j;
  std::string rev_ops;
  while (true) {
    if (state == State::H) {
      if (H[at(i, j)] == 0) break;
      const int diag =
          H[at(i - 1, j - 1)] + blosum62_by_index(ea[i - 1], eb[j - 1]);
      if (H[at(i, j)] == diag) {
        rev_ops.push_back(ea[i - 1] == eb[j - 1] ? '|' : '.');
        if (ea[i - 1] == eb[j - 1]) ++out.matches;
        --i;
        --j;
      } else if (H[at(i, j)] == E[at(i, j)]) {
        state = State::E;
      } else {
        GPCLUST_CHECK(H[at(i, j)] == F[at(i, j)], "traceback inconsistent");
        state = State::F;
      }
    } else if (state == State::E) {
      // Gap in b: consumed a[i-1].
      rev_ops.push_back('a');
      const bool opened = E[at(i, j)] ==
                          H[at(i - 1, j)] - params.gap_open - params.gap_extend;
      --i;
      if (opened) state = State::H;
    } else {
      rev_ops.push_back('b');
      const bool opened = F[at(i, j)] ==
                          H[at(i, j - 1)] - params.gap_open - params.gap_extend;
      --j;
      if (opened) state = State::H;
    }
  }
  out.a_begin = i;
  out.a_end = best_i;
  out.b_begin = j;
  out.b_end = best_j;
  out.ops.assign(rev_ops.rbegin(), rev_ops.rend());
  out.alignment_length = out.ops.size();
  return out;
}

TracedAlignment smith_waterman_traced_banded(std::string_view a,
                                             std::string_view b,
                                             std::size_t band,
                                             const AlignmentParams& params) {
  params.validate();
  const auto ea = encode(a);
  const auto eb = encode(b);
  const std::size_t n = ea.size();
  const std::size_t m = eb.size();
  TracedAlignment out;
  if (n == 0 || m == 0) return out;

  // Row-relative band storage: cell (i, j) with |i - j| <= band lives at
  // column j - i + band of row i, so each row is 2*band+1 wide. Reads
  // outside the band (or at the i = 0 / j = 0 borders) see the local-
  // alignment boundary values H = 0, E = F = -inf, exactly like the
  // score-only banded variant — the band can therefore only miss score,
  // never invent it.
  const std::ptrdiff_t bw = static_cast<std::ptrdiff_t>(band);
  const std::size_t w = 2 * band + 1;
  std::vector<int> H((n + 1) * w, 0), E((n + 1) * w, kNegInf),
      F((n + 1) * w, kNegInf);
  auto in_band = [&](std::size_t i, std::size_t j) {
    const auto d = static_cast<std::ptrdiff_t>(j) - static_cast<std::ptrdiff_t>(i);
    return i >= 1 && j >= 1 && j <= m && i <= n && d >= -bw && d <= bw;
  };
  auto at = [&](std::size_t i, std::size_t j) {
    return i * w + static_cast<std::size_t>(static_cast<std::ptrdiff_t>(j) -
                                            static_cast<std::ptrdiff_t>(i) + bw);
  };
  auto h_at = [&](std::size_t i, std::size_t j) {
    return in_band(i, j) ? H[at(i, j)] : 0;
  };
  auto e_at = [&](std::size_t i, std::size_t j) {
    return in_band(i, j) ? E[at(i, j)] : kNegInf;
  };
  auto f_at = [&](std::size_t i, std::size_t j) {
    return in_band(i, j) ? F[at(i, j)] : kNegInf;
  };

  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const std::ptrdiff_t lo =
        std::max<std::ptrdiff_t>(1, static_cast<std::ptrdiff_t>(i) - bw);
    const std::ptrdiff_t hi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m),
                                 static_cast<std::ptrdiff_t>(i) + bw);
    for (std::ptrdiff_t jj = lo; jj <= hi; ++jj) {
      const auto j = static_cast<std::size_t>(jj);
      const int e = std::max(e_at(i - 1, j) - params.gap_extend,
                             h_at(i - 1, j) - params.gap_open -
                                 params.gap_extend);
      const int f = std::max(f_at(i, j - 1) - params.gap_extend,
                             h_at(i, j - 1) - params.gap_open -
                                 params.gap_extend);
      const int diag = h_at(i - 1, j - 1) + blosum62_by_index(ea[i - 1], eb[j - 1]);
      const int h = std::max({0, diag, e, f});
      E[at(i, j)] = e;
      F[at(i, j)] = f;
      H[at(i, j)] = h;
      if (h > out.score) {
        out.score = h;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (out.score == 0) return out;

  // Same traceback state machine as the full variant, reading through the
  // band-aware accessors.
  enum class State { H, E, F };
  State state = State::H;
  std::size_t i = best_i, j = best_j;
  std::string rev_ops;
  while (true) {
    if (state == State::H) {
      if (h_at(i, j) == 0) break;
      const int diag = h_at(i - 1, j - 1) + blosum62_by_index(ea[i - 1], eb[j - 1]);
      if (h_at(i, j) == diag) {
        rev_ops.push_back(ea[i - 1] == eb[j - 1] ? '|' : '.');
        if (ea[i - 1] == eb[j - 1]) ++out.matches;
        --i;
        --j;
      } else if (h_at(i, j) == e_at(i, j)) {
        state = State::E;
      } else {
        GPCLUST_CHECK(h_at(i, j) == f_at(i, j), "banded traceback inconsistent");
        state = State::F;
      }
    } else if (state == State::E) {
      rev_ops.push_back('a');
      const bool opened = e_at(i, j) ==
                          h_at(i - 1, j) - params.gap_open - params.gap_extend;
      --i;
      if (opened) state = State::H;
    } else {
      rev_ops.push_back('b');
      const bool opened = f_at(i, j) ==
                          h_at(i, j - 1) - params.gap_open - params.gap_extend;
      --j;
      if (opened) state = State::H;
    }
  }
  out.a_begin = i;
  out.a_end = best_i;
  out.b_begin = j;
  out.b_end = best_j;
  out.ops.assign(rev_ops.rbegin(), rev_ops.rend());
  out.alignment_length = out.ops.size();
  return out;
}

AlignmentResult smith_waterman_banded(std::string_view a, std::string_view b,
                                      std::size_t band,
                                      const AlignmentParams& params) {
  params.validate();
  const auto ea = encode(a);
  const auto eb = encode(b);
  const std::size_t n = ea.size();
  const std::size_t m = eb.size();

  AlignmentResult best;
  if (n == 0 || m == 0) return best;

  const std::ptrdiff_t w = static_cast<std::ptrdiff_t>(band);
  // Dense rows but only cells with |i - j| <= band computed; cells outside
  // the band read as kNegInf (H outside reads 0 only at the borders, which
  // is safe because local alignment restarts at 0 anyway).
  std::vector<int> h(m + 1, 0), e(m + 1, kNegInf);

  for (std::size_t i = 1; i <= n; ++i) {
    const std::ptrdiff_t lo =
        std::max<std::ptrdiff_t>(1, static_cast<std::ptrdiff_t>(i) - w);
    const std::ptrdiff_t hi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(m),
                                 static_cast<std::ptrdiff_t>(i) + w);
    if (lo > hi) break;  // band has left the matrix; no cells remain
    int h_diag = (lo == 1) ? 0 : h[static_cast<std::size_t>(lo - 1)];
    int h_left = 0;
    int f = kNegInf;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      e[ju] = std::max(e[ju] - params.gap_extend,
                       h[ju] - params.gap_open - params.gap_extend);
      f = std::max(f - params.gap_extend,
                   h_left - params.gap_open - params.gap_extend);
      const int diag = h_diag + blosum62_by_index(ea[i - 1], eb[ju - 1]);
      int score = std::max({0, diag, e[ju], f});
      h_diag = h[ju];
      h[ju] = score;
      h_left = score;
      if (score > best.score) {
        best.score = score;
        best.a_end = i;
        best.b_end = ju;
      }
    }
    if (hi < static_cast<std::ptrdiff_t>(m)) {
      // Right band edge: the cell just past the band must not leak last
      // row's value into the next row's diagonal.
      h[static_cast<std::size_t>(hi + 1)] = 0;
      e[static_cast<std::size_t>(hi + 1)] = kNegInf;
    }
  }
  return best;
}

}  // namespace gpclust::align
