#pragma once
// Smith-Waterman local alignment [20] with affine gap penalties (Gotoh),
// the optimality-guaranteeing verification stage of the pGraph pipeline:
// "subsequently performing the optimality-guaranteeing Smith-Waterman
// alignment algorithm only on those identified pairs".

#include <string_view>

#include "util/common.hpp"

namespace gpclust::align {

struct AlignmentParams {
  int gap_open = 11;    ///< cost of opening a gap (positive)
  int gap_extend = 1;   ///< cost of extending a gap (positive)

  void validate() const {
    GPCLUST_CHECK(gap_open >= 0 && gap_extend >= 0,
                  "gap penalties must be non-negative");
  }
};

struct AlignmentResult {
  int score = 0;             ///< best local alignment score (>= 0)
  std::size_t a_end = 0;     ///< one-past-last aligned position in a
  std::size_t b_end = 0;     ///< one-past-last aligned position in b
};

/// Full O(|a| * |b|) affine-gap Smith-Waterman. Linear memory.
AlignmentResult smith_waterman(std::string_view a, std::string_view b,
                               const AlignmentParams& params = {});

/// Full alignment with traceback: the aligned region's coordinates, the
/// residue-level identity, and the alignment string. O(|a| * |b|) memory.
struct TracedAlignment {
  int score = 0;
  std::size_t a_begin = 0, a_end = 0;  ///< [begin, end) in a
  std::size_t b_begin = 0, b_end = 0;  ///< [begin, end) in b
  std::size_t matches = 0;             ///< identical aligned residue pairs
  std::size_t alignment_length = 0;    ///< columns incl. gaps
  /// One char per column: '|' match, '.' substitution, 'a' gap in b
  /// (a-residue unmatched), 'b' gap in a.
  std::string ops;

  /// matches / alignment_length (0 for an empty alignment).
  double identity() const {
    return alignment_length == 0
               ? 0.0
               : static_cast<double>(matches) /
                     static_cast<double>(alignment_length);
  }
};

TracedAlignment smith_waterman_traced(std::string_view a, std::string_view b,
                                      const AlignmentParams& params = {});

/// Banded variant restricted to |i - j| <= band. Exact whenever the
/// optimal local alignment's diagonal excursion stays within the band;
/// never overestimates. Used to bound alignment cost on candidate pairs
/// whose seeds already fix the diagonal.
AlignmentResult smith_waterman_banded(std::string_view a, std::string_view b,
                                      std::size_t band,
                                      const AlignmentParams& params = {});

/// Banded variant of smith_waterman_traced: full affine traceback over the
/// cells with |i - j| <= band only, in O((|a| + |b|) * band) time and
/// memory. Like the score-only band, never overestimates, and equals
/// smith_waterman_traced exactly once band >= max(|a|, |b|). The identity
/// pass of the homology-graph fast path calls this on the score-only
/// pass's end-coordinate prefix with a growing band until the known
/// optimal score is reproduced.
TracedAlignment smith_waterman_traced_banded(std::string_view a,
                                             std::string_view b,
                                             std::size_t band,
                                             const AlignmentParams& params = {});

}  // namespace gpclust::align
