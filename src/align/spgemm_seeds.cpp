#include "align/spgemm_seeds.hpp"

#include <algorithm>
#include <span>

#include "seq/sketch.hpp"

namespace gpclust::align {

std::vector<CandidatePair> find_candidate_pairs_spgemm(
    const seq::SequenceSet& sequences, const KmerIndexConfig& config,
    std::size_t* peak_candidate_bytes) {
  GPCLUST_CHECK(config.k >= 2 && config.k <= 12, "k must be in [2, 12]");
  GPCLUST_CHECK(config.min_shared_kmers >= 1,
                "min_shared_kmers must be positive");
  const std::size_t n = sequences.size();

  std::size_t peak_bytes = 0;
  const auto note_peak = [&peak_bytes](std::size_t bytes) {
    peak_bytes = std::max(peak_bytes, bytes);
  };

  // A in CSR: per-sequence sorted distinct k-mer codes.
  std::vector<u64> row_offsets(n + 1, 0);
  std::vector<u64> row_codes;
  {
    std::vector<u64> scratch;
    for (std::size_t i = 0; i < n; ++i) {
      seq::distinct_kmer_codes(sequences[i].residues, config.k, scratch);
      row_codes.insert(row_codes.end(), scratch.begin(), scratch.end());
      row_offsets[i + 1] = row_codes.size();
    }
  }
  const std::size_t rows_bytes =
      row_offsets.size() * sizeof(u64) + row_codes.size() * sizeof(u64);
  note_peak(rows_bytes);

  // A^T in CSC, compacted to the masked columns (occupancy in
  // [2, max_kmer_occurrences] — the same repeat masking the postings
  // path applies). Built by sorting one (code, seq) record per nonzero.
  std::vector<std::pair<u64, u32>> nonzeros;
  nonzeros.reserve(row_codes.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (u64 c = row_offsets[i]; c < row_offsets[i + 1]; ++c) {
      nonzeros.emplace_back(row_codes[c], static_cast<u32>(i));
    }
  }
  std::sort(nonzeros.begin(), nonzeros.end());
  note_peak(rows_bytes + nonzeros.size() * sizeof(nonzeros[0]));

  std::vector<u64> col_keys;
  std::vector<u64> col_offsets{0};
  std::vector<u32> col_seqs;
  for (std::size_t lo = 0; lo < nonzeros.size();) {
    std::size_t hi = lo;
    while (hi < nonzeros.size() && nonzeros[hi].first == nonzeros[lo].first) {
      ++hi;
    }
    const std::size_t occupancy = hi - lo;
    if (occupancy >= 2 && occupancy <= config.max_kmer_occurrences) {
      col_keys.push_back(nonzeros[lo].first);
      for (std::size_t x = lo; x < hi; ++x) {
        col_seqs.push_back(nonzeros[x].second);  // seq-ascending per column
      }
      col_offsets.push_back(col_seqs.size());
    }
    lo = hi;
  }
  const std::size_t cols_bytes = col_keys.size() * sizeof(u64) +
                                 col_offsets.size() * sizeof(u64) +
                                 col_seqs.size() * sizeof(u32);
  note_peak(rows_bytes + nonzeros.size() * sizeof(nonzeros[0]) + cols_bytes);
  nonzeros.clear();
  nonzeros.shrink_to_fit();

  // Row-wise Gustavson over the masked columns: for row i, scatter each
  // shared column's later sequences into a dense count accumulator, then
  // gather the touched entries in order. Rows ascend and touched lists
  // are sorted, so the output is (a, b)-ordered like the postings path.
  std::vector<CandidatePair> pairs;
  std::vector<u32> acc(n, 0);
  std::vector<u32> touched;
  std::size_t touched_peak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (u64 c = row_offsets[i]; c < row_offsets[i + 1]; ++c) {
      const auto key = std::lower_bound(col_keys.begin(), col_keys.end(),
                                        row_codes[c]);
      if (key == col_keys.end() || *key != row_codes[c]) continue;
      const std::size_t col = static_cast<std::size_t>(key - col_keys.begin());
      const auto seqs = std::span<const u32>(col_seqs).subspan(
          col_offsets[col], col_offsets[col + 1] - col_offsets[col]);
      for (auto it = std::upper_bound(seqs.begin(), seqs.end(),
                                      static_cast<u32>(i));
           it != seqs.end(); ++it) {
        if (acc[*it]++ == 0) touched.push_back(*it);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched_peak = std::max(touched_peak, touched.size() * sizeof(u32));
    for (u32 j : touched) {
      if (acc[j] >= config.min_shared_kmers) {
        pairs.push_back({static_cast<u32>(i), j, acc[j], 0});
      }
      acc[j] = 0;
    }
    touched.clear();
  }
  note_peak(rows_bytes + cols_bytes + acc.size() * sizeof(u32) +
            touched_peak + pairs.size() * sizeof(CandidatePair));
  if (peak_candidate_bytes != nullptr) *peak_candidate_bytes = peak_bytes;
  return pairs;
}

}  // namespace gpclust::align
