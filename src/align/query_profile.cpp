#include "align/query_profile.hpp"

#include "align/blosum.hpp"
#include "seq/alphabet.hpp"

namespace gpclust::align {

QueryProfile::QueryProfile(std::string_view query) : query_(query) {
  GPCLUST_CHECK(kBias == -blosum62_min_score(),
                "profile bias must equal -min(BLOSUM62)");
  encoded_.resize(query.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    encoded_[i] = seq::residue_index(query[i]);
  }

  const std::size_t n = encoded_.size();
  seg8_ = std::max<std::size_t>(1, (n + kLanes8 - 1) / kLanes8);
  seg16_ = std::max<std::size_t>(1, (n + kLanes16 - 1) / kLanes16);
  prof8_.assign(seq::kNumResidues * seg8_ * kLanes8, 0);
  prof16_.assign(seq::kNumResidues * seg16_ * kLanes16, 0);

  for (std::size_t r = 0; r < seq::kNumResidues; ++r) {
    u8* row8p = prof8_.data() + r * seg8_ * kLanes8;
    u16* row16p = prof16_.data() + r * seg16_ * kLanes16;
    for (std::size_t stripe = 0; stripe < seg8_; ++stripe) {
      for (std::size_t lane = 0; lane < kLanes8; ++lane) {
        const std::size_t pos = lane * seg8_ + stripe;
        // Positions past the query end score 0; after the kernel subtracts
        // the bias, padding lanes only ever decay toward zero and can
        // never raise the maximum.
        const int s = pos < n
                          ? blosum62_by_index(encoded_[pos],
                                              static_cast<u8>(r)) + kBias
                          : 0;
        row8p[stripe * kLanes8 + lane] = static_cast<u8>(s);
      }
    }
    for (std::size_t stripe = 0; stripe < seg16_; ++stripe) {
      for (std::size_t lane = 0; lane < kLanes16; ++lane) {
        const std::size_t pos = lane * seg16_ + stripe;
        const int s = pos < n
                          ? blosum62_by_index(encoded_[pos],
                                              static_cast<u8>(r)) + kBias
                          : 0;
        row16p[stripe * kLanes16 + lane] = static_cast<u16>(s);
      }
    }
  }
}

LruQueryProfileCache::LruQueryProfileCache(std::size_t capacity)
    : capacity_(capacity) {
  GPCLUST_CHECK(capacity >= 1, "profile cache needs capacity >= 1");
}

const QueryProfile& LruQueryProfileCache::get(u32 id,
                                              std::string_view sequence) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().second;
  }
  if (entries_.size() >= capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
  }
  ++builds_;
  entries_.emplace_front(id, QueryProfile(sequence));
  index_.emplace(id, entries_.begin());
  return entries_.front().second;
}

}  // namespace gpclust::align
