#pragma once
// Generalized suffix array + LCP over a protein sequence set, and the
// maximal-exact-match candidate-pair heuristic of pGraph (paper §I-B:
// "identifying promising pairs of sequences based on a maximal-matching
// heuristic (suffix trees are used in our implementation...)"). A suffix
// array with an LCP table is the standard space-efficient equivalent of
// the suffix tree for this query: any run of adjacent suffixes with LCP
// >= tau identifies sequences sharing an exact match of length >= tau.

#include <string>
#include <vector>

#include "align/kmer_index.hpp"
#include "seq/sequence.hpp"
#include "util/common.hpp"

namespace gpclust::align {

/// Plain suffix array over a byte string (prefix-doubling construction,
/// O(n log^2 n)) with Kasai's LCP array.
class SuffixArray {
 public:
  static SuffixArray build(std::string text);

  const std::string& text() const { return text_; }
  /// sa()[r] = start position of the r-th smallest suffix.
  const std::vector<u32>& sa() const { return sa_; }
  /// rank()[p] = lexicographic rank of the suffix starting at p.
  const std::vector<u32>& rank() const { return rank_; }
  /// lcp()[r] = longest common prefix of suffixes sa()[r-1] and sa()[r];
  /// lcp()[0] = 0.
  const std::vector<u32>& lcp() const { return lcp_; }

 private:
  std::string text_;
  std::vector<u32> sa_;
  std::vector<u32> rank_;
  std::vector<u32> lcp_;
};

struct MaximalMatchConfig {
  /// Minimum exact-match length to promote a pair (pGraph's tau).
  std::size_t min_match_length = 8;
  /// Runs touching more sequences than this are skipped (low-complexity
  /// regions), mirroring the k-mer index's occurrence cap.
  std::size_t max_run_sequences = 200;
};

/// Candidate pairs (a < b) of sequences sharing an exact substring match
/// of at least min_match_length residues. CandidatePair::shared_kmers
/// carries the longest qualifying match length for the pair.
std::vector<CandidatePair> find_candidate_pairs_suffix_array(
    const seq::SequenceSet& sequences, const MaximalMatchConfig& config = {});

}  // namespace gpclust::align
