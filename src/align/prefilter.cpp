#include "align/prefilter.hpp"

#include <algorithm>
#include <limits>

#include "align/blosum.hpp"

namespace gpclust::align {

int alignment_score_upper_bound(std::size_t len_a, std::size_t len_b) {
  const u64 cap = static_cast<u64>(blosum62_max_score()) *
                  static_cast<u64>(std::min(len_a, len_b));
  return static_cast<int>(
      std::min<u64>(cap, std::numeric_limits<int>::max()));
}

bool exact_reject(std::size_t len_a, std::size_t len_b, int min_score,
                  double min_score_per_residue) {
  const int upper = alignment_score_upper_bound(len_a, len_b);
  if (upper < min_score) return true;
  const double needed = min_score_per_residue *
                        static_cast<double>(std::min(len_a, len_b));
  return static_cast<double>(upper) < needed;
}

int ungapped_xdrop_score(std::string_view a, std::string_view b, i32 diag,
                         int xdrop) {
  GPCLUST_CHECK(xdrop >= 0, "xdrop must be non-negative");
  const i64 i_begin = std::max<i64>(0, diag);
  const i64 i_end = std::min<i64>(static_cast<i64>(a.size()),
                                  static_cast<i64>(b.size()) + diag);
  int best = 0;
  int run = 0;
  int run_best = 0;
  for (i64 i = i_begin; i < i_end; ++i) {
    run += blosum62(a[static_cast<std::size_t>(i)],
                    b[static_cast<std::size_t>(i - diag)]);
    run_best = std::max(run_best, run);
    best = std::max(best, run_best);
    if (run < 0 || run <= run_best - xdrop) {
      run = 0;
      run_best = 0;
    }
  }
  return best;
}

}  // namespace gpclust::align
