#include "align/homology_graph.hpp"

#include <algorithm>
#include <mutex>

#include "align/prefilter.hpp"
#include "seq/alphabet.hpp"

namespace gpclust::align {

namespace {

/// Identity traceback that reuses the score pass's end cell: only the
/// prefix rectangle ending at (a_end, b_end) can contain the optimal
/// alignment ending there, and a band grown from the end-cell diagonal
/// almost always holds it. The band doubles until the banded score matches
/// the known optimal score — guaranteed at band >= max(prefix lengths),
/// where banded and full DP coincide.
TracedAlignment traced_from_end(const std::string& a, const std::string& b,
                                const AlignmentResult& scored,
                                const AlignmentParams& params) {
  const std::string_view pa(a.data(), scored.a_end);
  const std::string_view pb(b.data(), scored.b_end);
  const std::size_t full = std::max(pa.size(), pb.size());
  const std::size_t skew = pa.size() > pb.size() ? pa.size() - pb.size()
                                                 : pb.size() - pa.size();
  std::size_t band = std::min(full, skew + 16);
  for (;;) {
    TracedAlignment traced = smith_waterman_traced_banded(pa, pb, band, params);
    if (traced.score == scored.score) return traced;
    GPCLUST_CHECK(band < full, "full-width banded traceback missed the score");
    band = std::min(full, band * 2);
  }
}

/// X-drop used when scanning a seed diagonal purely to pick the SIMD
/// kernel's starting lane width (generous: a better floor skips more
/// doomed 8-bit passes; any value is correct).
constexpr int kDispatchXdrop = 1 << 20;

}  // namespace

graph::CsrGraph build_homology_graph(const seq::SequenceSet& sequences,
                                     const HomologyGraphConfig& config,
                                     HomologyGraphStats* stats) {
  GPCLUST_CHECK(config.min_score_per_residue >= 0.0,
                "score threshold must be non-negative");
  obs::Tracer* tracer = config.tracer;

  std::vector<CandidatePair> pairs;
  {
    obs::HostSpan span(tracer, "homology.seed");
    pairs = config.seed_mode == SeedMode::MaximalMatch
                ? find_candidate_pairs_suffix_array(sequences,
                                                    config.maximal_matches)
                : find_candidate_pairs(sequences, config.seeds);
  }
  obs::add_counter(tracer, "homology_candidate_pairs", pairs.size());

  // The SIMD kernel consumes residue indices; encode every sequence once
  // up front instead of per pair.
  std::vector<std::vector<u8>> encoded;
  if (config.use_simd) {
    encoded.resize(sequences.size());
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const std::string& r = sequences[i].residues;
      encoded[i].resize(r.size());
      for (std::size_t j = 0; j < r.size(); ++j) {
        encoded[i][j] = seq::residue_index(r[j]);
      }
    }
  }

  HomologyGraphStats totals;
  std::mutex totals_mutex;
  std::vector<u8> accepted(pairs.size(), 0);

  auto verify = [&](std::size_t lo, std::size_t hi) {
    // Per-worker state: pairs arrive sorted by query id, so a single-slot
    // profile cache serves nearly every pair in the chunk.
    QueryProfileCache cache;
    SimdCounters simd;
    HomologyGraphStats local;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& p = pairs[i];
      const auto& a = sequences[p.a].residues;
      const auto& b = sequences[p.b].residues;

      // Exact tier: admissible length bounds — skipping the DP here
      // cannot change the edge set.
      if (exact_reject(a.size(), b.size(), config.min_score,
                       config.min_score_per_residue)) {
        ++local.num_exact_rejects;
        continue;
      }

      // Heuristic tier (opt-in): seed-count floor, then an ungapped
      // x-drop scan anchored on the pair's seed diagonal.
      if (config.prefilter.enabled) {
        if (p.shared_kmers < config.prefilter.min_shared_seeds) {
          ++local.num_heuristic_rejects;
          continue;
        }
        if (config.prefilter.min_ungapped_score > 0 &&
            ungapped_xdrop_score(a, b, p.diag, config.prefilter.xdrop) <
                config.prefilter.min_ungapped_score) {
          ++local.num_heuristic_rejects;
          continue;
        }
      }

      AlignmentResult result;
      if (config.use_simd) {
        // The ungapped score along the pair's seed diagonal is itself a
        // local alignment, so it lower-bounds the gapped optimum — a
        // floor already inside the 8-bit clipping margin lets the kernel
        // start at 16 bits instead of paying a doomed 8-bit pass.
        const int floor =
            ungapped_xdrop_score(a, b, p.diag, kDispatchXdrop);
        result = smith_waterman_simd(cache.get(p.a, a), encoded[p.b],
                                     config.alignment, &simd, floor);
      } else {
        result = smith_waterman(a, b, config.alignment);
      }
      ++local.num_score_alignments;
      const double needed = config.min_score_per_residue *
                            static_cast<double>(std::min(a.size(), b.size()));
      if (result.score < config.min_score ||
          static_cast<double>(result.score) < needed) {
        continue;
      }
      if (config.min_identity > 0.0) {
        ++local.num_traced_alignments;
        const auto traced =
            config.use_simd
                ? traced_from_end(a, b, result, config.alignment)
                : smith_waterman_traced(a, b, config.alignment);
        if (traced.identity() < config.min_identity) continue;
      }
      accepted[i] = 1;
    }
    const std::lock_guard<std::mutex> lock(totals_mutex);
    totals.num_score_alignments += local.num_score_alignments;
    totals.num_traced_alignments += local.num_traced_alignments;
    totals.num_exact_rejects += local.num_exact_rejects;
    totals.num_heuristic_rejects += local.num_heuristic_rejects;
    totals.simd += simd;
  };

  {
    obs::HostSpan span(tracer, "homology.verify");
    if (config.num_threads == 1) {
      verify(0, pairs.size());
    } else if (config.num_threads == 0) {
      util::default_thread_pool().parallel_for(0, pairs.size(), verify);
    } else {
      util::ThreadPool pool(config.num_threads);
      pool.parallel_for(0, pairs.size(), verify);
    }
  }
  totals.num_candidate_pairs = pairs.size();
  totals.num_alignments =
      totals.num_score_alignments + totals.num_traced_alignments;
  obs::add_counter(tracer, "homology_alignments", totals.num_alignments);
  obs::add_counter(tracer, "homology_prefilter_rejects",
                   totals.num_exact_rejects + totals.num_heuristic_rejects);

  graph::CsrGraph result;
  {
    obs::HostSpan span(tracer, "homology.graph");
    graph::EdgeList edges(sequences.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (accepted[i]) edges.add(pairs[i].a, pairs[i].b);
    }
    totals.num_edges = edges.raw_size();
    result = graph::CsrGraph::from_edge_list(std::move(edges));
  }
  obs::add_counter(tracer, "homology_edges", totals.num_edges);
  if (stats != nullptr) *stats = totals;
  return result;
}

}  // namespace gpclust::align
