#include "align/homology_graph.hpp"

#include <algorithm>
#include <mutex>

#include "align/prefilter.hpp"
#include "align/spgemm_seeds.hpp"
#include "seq/alphabet.hpp"
#include "util/timer.hpp"

namespace gpclust::align {

namespace {

/// Identity traceback that reuses the score pass's end cell: only the
/// prefix rectangle ending at (a_end, b_end) can contain the optimal
/// alignment ending there, and a band grown from the end-cell diagonal
/// almost always holds it. The band doubles until the banded score matches
/// the known optimal score — guaranteed at band >= max(prefix lengths),
/// where banded and full DP coincide.
TracedAlignment traced_from_end(const std::string& a, const std::string& b,
                                const AlignmentResult& scored,
                                const AlignmentParams& params) {
  const std::string_view pa(a.data(), scored.a_end);
  const std::string_view pb(b.data(), scored.b_end);
  const std::size_t full = std::max(pa.size(), pb.size());
  const std::size_t skew = pa.size() > pb.size() ? pa.size() - pb.size()
                                                 : pb.size() - pa.size();
  std::size_t band = std::min(full, skew + 16);
  for (;;) {
    TracedAlignment traced = smith_waterman_traced_banded(pa, pb, band, params);
    if (traced.score == scored.score) return traced;
    GPCLUST_CHECK(band < full, "full-width banded traceback missed the score");
    band = std::min(full, band * 2);
  }
}

/// X-drop used when scanning a seed diagonal purely to pick the SIMD
/// kernel's starting lane width (generous: a better floor skips more
/// doomed 8-bit passes; any value is correct).
constexpr int kDispatchXdrop = 1 << 20;

/// Stage 2 — the exact admissible tier (always on; provably cannot change
/// the edge set) followed by the opt-in heuristic tier. Returns the
/// indices of the surviving pairs, in candidate-stream order, so every
/// backend scores the identical pair list and the reject counters are
/// attributed identically no matter where stage 3 runs.
std::vector<u32> prefilter_candidates(const seq::SequenceSet& sequences,
                                      std::span<const CandidatePair> pairs,
                                      const HomologyGraphConfig& config,
                                      HomologyGraphStats& totals) {
  std::vector<u32> surviving;
  surviving.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& p = pairs[i];
    const auto& a = sequences[p.a].residues;
    const auto& b = sequences[p.b].residues;
    if (exact_reject(a.size(), b.size(), config.min_score,
                     config.min_score_per_residue)) {
      ++totals.num_exact_rejects;
      continue;
    }
    if (config.prefilter.enabled) {
      if (p.shared_kmers < config.prefilter.min_shared_seeds) {
        ++totals.num_heuristic_rejects;
        continue;
      }
      if (config.prefilter.min_ungapped_score > 0 &&
          ungapped_xdrop_score(a, b, p.diag, config.prefilter.xdrop) <
              config.prefilter.min_ungapped_score) {
        ++totals.num_heuristic_rejects;
        continue;
      }
    }
    surviving.push_back(static_cast<u32>(i));
  }
  return surviving;
}

}  // namespace

SeedMode parse_seed_mode(const std::string& name) {
  if (name == "kmer") return SeedMode::KmerCount;
  if (name == "maximal") return SeedMode::MaximalMatch;
  if (name == "minhash") return SeedMode::MinHashLsh;
  if (name == "spgemm") return SeedMode::SpGemm;
  throw InvalidArgument("unknown seed mode: " + name +
                        " (expected kmer | maximal | minhash | spgemm)");
}

std::string_view seed_mode_name(SeedMode mode) {
  switch (mode) {
    case SeedMode::KmerCount:
      return "kmer";
    case SeedMode::MaximalMatch:
      return "maximal";
    case SeedMode::MinHashLsh:
      return "minhash";
    case SeedMode::SpGemm:
      return "spgemm";
  }
  return "?";
}

std::vector<u8> verify_candidate_pairs(const seq::SequenceSet& sequences,
                                       std::span<const CandidatePair> pairs,
                                       const HomologyGraphConfig& config,
                                       HomologyGraphStats* stats) {
  GPCLUST_CHECK(config.min_score_per_residue >= 0.0,
                "score threshold must be non-negative");
  const bool device = config.verify_backend == VerifyBackend::DeviceBatched;
  const bool simd = config.verify_backend == VerifyBackend::HostSimd;
  GPCLUST_CHECK(!device || config.device_verify.context != nullptr,
                "DeviceBatched verification needs a DeviceContext");
  obs::Tracer* tracer = config.tracer;

  // Stage 2 — CPU prefilter (host-measured; this is the CPU side of the
  // critical-path split reported against the modeled device verify).
  HomologyGraphStats totals;
  std::vector<u32> surviving;
  {
    obs::HostSpan span(tracer, "homology.prefilter");
    util::WallTimer timer;
    surviving = prefilter_candidates(sequences, pairs, config, totals);
    totals.prefilter_host_s = timer.seconds();
  }
  totals.num_surviving_pairs = surviving.size();
  obs::add_counter(tracer, "homology_surviving_pairs", surviving.size());

  // Stage 3 — batched score-only verification on the configured backend,
  // then the (host-side) edge gate over the scores.
  std::vector<u8> accepted(pairs.size(), 0);

  // The SIMD kernel consumes residue indices; encode every sequence once
  // up front instead of per pair.
  std::vector<std::vector<u8>> encoded;
  if (simd) {
    encoded.resize(sequences.size());
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      const std::string& r = sequences[i].residues;
      encoded[i].resize(r.size());
      for (std::size_t j = 0; j < r.size(); ++j) {
        encoded[i][j] = seq::residue_index(r[j]);
      }
    }
  }

  // Shared edge gate: score thresholds, then the optional identity
  // traceback resumed from the score pass's end cell. `from_end` keeps the
  // SIMD and device paths on the banded-prefix traceback; the scalar path
  // keeps the full-matrix reference traceback (both reproduce the optimal
  // score; the suites pin their agreement).
  auto gate = [&](std::size_t pair_index, const AlignmentResult& result,
                  bool from_end, std::size_t& traced_runs) {
    const auto& p = pairs[pair_index];
    const auto& a = sequences[p.a].residues;
    const auto& b = sequences[p.b].residues;
    const double needed = config.min_score_per_residue *
                          static_cast<double>(std::min(a.size(), b.size()));
    if (result.score < config.min_score ||
        static_cast<double>(result.score) < needed) {
      return;
    }
    if (config.min_identity > 0.0) {
      ++traced_runs;
      const auto traced = from_end
                              ? traced_from_end(a, b, result, config.alignment)
                              : smith_waterman_traced(a, b, config.alignment);
      if (traced.identity() < config.min_identity) return;
    }
    accepted[pair_index] = 1;
  };

  if (device) {
    VerifyDeviceStats device_stats;
    const auto scores = device_score_pairs(
        *config.device_verify.context, sequences, pairs, surviving,
        config.alignment, config.device_verify, tracer, &device_stats);
    totals.device = device_stats;
    // Each surviving pair is scored exactly once regardless of batch
    // retries/replans (commits are transactional), matching the host
    // backends' per-pair attribution.
    totals.num_score_alignments += surviving.size();
    obs::HostSpan span(tracer, "homology.verify.gate");
    for (std::size_t k = 0; k < surviving.size(); ++k) {
      AlignmentResult result;
      result.score = scores[k].score;
      result.a_end = scores[k].a_end;
      result.b_end = scores[k].b_end;
      gate(surviving[k], result, /*from_end=*/true,
           totals.num_traced_alignments);
    }
  } else {
    std::mutex totals_mutex;
    auto verify = [&](std::size_t lo, std::size_t hi) {
      // Per-worker state: pairs arrive sorted by query id, so a
      // single-slot profile cache serves nearly every pair in the chunk.
      QueryProfileCache cache;
      SimdCounters simd_counters;
      std::size_t score_runs = 0;
      std::size_t traced_runs = 0;
      for (std::size_t k = lo; k < hi; ++k) {
        const std::size_t i = surviving[k];
        const auto& p = pairs[i];
        const auto& a = sequences[p.a].residues;
        const auto& b = sequences[p.b].residues;
        AlignmentResult result;
        if (simd) {
          // The ungapped score along the pair's seed diagonal is itself a
          // local alignment, so it lower-bounds the gapped optimum — a
          // floor already inside the 8-bit clipping margin lets the kernel
          // start at 16 bits instead of paying a doomed 8-bit pass.
          const int floor = ungapped_xdrop_score(a, b, p.diag, kDispatchXdrop);
          result = smith_waterman_simd(cache.get(p.a, a), encoded[p.b],
                                       config.alignment, &simd_counters, floor);
        } else {
          result = smith_waterman(a, b, config.alignment);
        }
        ++score_runs;
        gate(i, result, /*from_end=*/simd, traced_runs);
      }
      const std::lock_guard<std::mutex> lock(totals_mutex);
      totals.num_score_alignments += score_runs;
      totals.num_traced_alignments += traced_runs;
      totals.simd += simd_counters;
    };
    obs::HostSpan span(tracer, "homology.verify");
    if (config.num_threads == 1) {
      verify(0, surviving.size());
    } else if (config.num_threads == 0) {
      util::default_thread_pool().parallel_for(0, surviving.size(), verify);
    } else {
      util::ThreadPool pool(config.num_threads);
      pool.parallel_for(0, surviving.size(), verify);
    }
  }

  totals.num_candidate_pairs = pairs.size();
  totals.num_alignments =
      totals.num_score_alignments + totals.num_traced_alignments;
  obs::add_counter(tracer, "homology_alignments", totals.num_alignments);
  obs::add_counter(tracer, "homology_prefilter_rejects",
                   totals.num_exact_rejects + totals.num_heuristic_rejects);
  if (stats != nullptr) *stats = totals;
  return accepted;
}

graph::CsrGraph build_homology_graph(const seq::SequenceSet& sequences,
                                     const HomologyGraphConfig& config,
                                     HomologyGraphStats* stats) {
  obs::Tracer* tracer = config.tracer;

  // Stage 1 — candidate stream.
  std::vector<CandidatePair> pairs;
  std::size_t seed_peak_bytes = 0;
  {
    obs::HostSpan span(tracer, "homology.seed");
    switch (config.seed_mode) {
      case SeedMode::MaximalMatch:
        pairs = find_candidate_pairs_suffix_array(sequences,
                                                  config.maximal_matches);
        break;
      case SeedMode::MinHashLsh:
        pairs = find_candidate_pairs_lsh(sequences, config.lsh, tracer,
                                         &seed_peak_bytes);
        break;
      case SeedMode::SpGemm:
        pairs = find_candidate_pairs_spgemm(sequences, config.seeds,
                                            &seed_peak_bytes);
        break;
      case SeedMode::KmerCount:
        pairs = find_candidate_pairs(sequences, config.seeds,
                                     &seed_peak_bytes);
        break;
    }
  }
  obs::add_counter(tracer, "homology_candidate_pairs", pairs.size());
  obs::raise_counter(tracer, "homology_seed_peak_candidate_bytes",
                     seed_peak_bytes);

  // Stages 2 + 3 — shared with the ingest subsystem's incremental path.
  HomologyGraphStats totals;
  const std::vector<u8> accepted =
      verify_candidate_pairs(sequences, pairs, config, &totals);
  totals.seed_peak_candidate_bytes = seed_peak_bytes;

  graph::CsrGraph result;
  {
    obs::HostSpan span(tracer, "homology.graph");
    graph::EdgeList edges(sequences.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (accepted[i]) edges.add(pairs[i].a, pairs[i].b);
    }
    totals.num_edges = edges.raw_size();
    result = graph::CsrGraph::from_edge_list(std::move(edges));
  }
  obs::add_counter(tracer, "homology_edges", totals.num_edges);
  if (stats != nullptr) *stats = totals;
  return result;
}

}  // namespace gpclust::align
