#include "align/homology_graph.hpp"

#include <algorithm>
#include <atomic>

namespace gpclust::align {

graph::CsrGraph build_homology_graph(const seq::SequenceSet& sequences,
                                     const HomologyGraphConfig& config,
                                     HomologyGraphStats* stats) {
  GPCLUST_CHECK(config.min_score_per_residue >= 0.0,
                "score threshold must be non-negative");
  const auto pairs =
      config.seed_mode == SeedMode::MaximalMatch
          ? find_candidate_pairs_suffix_array(sequences, config.maximal_matches)
          : find_candidate_pairs(sequences, config.seeds);

  std::vector<u8> accepted(pairs.size(), 0);
  auto verify = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto& p = pairs[i];
      const auto& a = sequences[p.a].residues;
      const auto& b = sequences[p.b].residues;
      const auto result = smith_waterman(a, b, config.alignment);
      const double needed = config.min_score_per_residue *
                            static_cast<double>(std::min(a.size(), b.size()));
      if (result.score < config.min_score ||
          static_cast<double>(result.score) < needed) {
        continue;
      }
      if (config.min_identity > 0.0) {
        const auto traced = smith_waterman_traced(a, b, config.alignment);
        if (traced.identity() < config.min_identity) continue;
      }
      accepted[i] = 1;
    }
  };

  if (config.num_threads == 1) {
    verify(0, pairs.size());
  } else if (config.num_threads == 0) {
    util::default_thread_pool().parallel_for(0, pairs.size(), verify);
  } else {
    util::ThreadPool pool(config.num_threads);
    pool.parallel_for(0, pairs.size(), verify);
  }

  graph::EdgeList edges(sequences.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (accepted[i]) edges.add(pairs[i].a, pairs[i].b);
  }
  if (stats != nullptr) {
    stats->num_candidate_pairs = pairs.size();
    stats->num_alignments = pairs.size();
    stats->num_edges = edges.raw_size();
  }
  return graph::CsrGraph::from_edge_list(std::move(edges));
}

}  // namespace gpclust::align
