#pragma once
// Filter cascade for homology-graph verification. Two tiers:
//
//  * Exact tier (always on): admissible score upper bounds derived only
//    from sequence lengths and the largest BLOSUM62 entry. A pair rejected
//    here provably cannot clear the edge thresholds, so skipping its DP
//    cannot change the graph.
//
//  * Heuristic tier (HomologyPrefilterConfig, default OFF): shared-seed
//    floors and an ungapped x-drop scan along the pair's seed diagonal.
//    These can reject true edges (a shared-seed count is NOT an admissible
//    bound: distinct-kmer counting and repeat masking both break the
//    count-vs-match-length relation — see DESIGN.md §9), which is why they
//    are opt-in and the default graph stays bit-identical.

#include <string_view>

#include "align/smith_waterman.hpp"

namespace gpclust::align {

/// Admissible upper bound on the Smith-Waterman score of any local
/// alignment between sequences of the given lengths: every aligned column
/// scores at most blosum62_max_score(), and a local alignment has at most
/// min(len_a, len_b) match/mismatch columns (gap columns only subtract).
int alignment_score_upper_bound(std::size_t len_a, std::size_t len_b);

/// True when the exact tier proves the pair cannot clear BOTH edge
/// thresholds (score >= min_score and score >= min_score_per_residue *
/// min(len_a, len_b)). Never rejects a pair the full DP would accept.
bool exact_reject(std::size_t len_a, std::size_t len_b, int min_score,
                  double min_score_per_residue);

/// Best ungapped segment score along one diagonal of the DP matrix
/// (a[i] vs b[i - diag]), with x-drop termination: a segment is abandoned
/// once its running score falls `xdrop` below the segment's best (or below
/// zero), and a fresh segment starts. With a large xdrop this degenerates
/// to the best-scoring contiguous segment on the diagonal, which is a
/// lower bound on the full Smith-Waterman score; small xdrops trade recall
/// for an earlier bail-out. Diagonals with no overlap score 0.
int ungapped_xdrop_score(std::string_view a, std::string_view b, i32 diag,
                         int xdrop);

}  // namespace gpclust::align
