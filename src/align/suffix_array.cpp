#include "align/suffix_array.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

namespace gpclust::align {

SuffixArray SuffixArray::build(std::string text) {
  SuffixArray out;
  out.text_ = std::move(text);
  const std::string& s = out.text_;
  const std::size_t n = s.size();
  out.sa_.resize(n);
  out.rank_.resize(n);
  out.lcp_.assign(n, 0);
  if (n == 0) return out;

  // Prefix doubling: rank by first 2^k characters, k = 0, 1, ...
  std::iota(out.sa_.begin(), out.sa_.end(), 0u);
  std::vector<u32>& rank = out.rank_;
  for (std::size_t i = 0; i < n; ++i) {
    rank[i] = static_cast<u8>(s[i]);
  }
  std::vector<u32> tmp(n);
  for (std::size_t k = 1;; k <<= 1) {
    auto key = [&](u32 p) {
      const u32 second = p + k < n ? rank[p + k] + 1 : 0;
      return std::pair<u32, u32>(rank[p], second);
    };
    std::sort(out.sa_.begin(), out.sa_.end(),
              [&](u32 a, u32 b) { return key(a) < key(b); });
    tmp[out.sa_[0]] = 0;
    for (std::size_t r = 1; r < n; ++r) {
      tmp[out.sa_[r]] = tmp[out.sa_[r - 1]] +
                        (key(out.sa_[r - 1]) < key(out.sa_[r]) ? 1 : 0);
    }
    rank = tmp;
    if (rank[out.sa_[n - 1]] == n - 1) break;  // all ranks distinct
  }

  // Kasai's LCP.
  std::size_t h = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (rank[p] == 0) {
      h = 0;
      continue;
    }
    const std::size_t q = out.sa_[rank[p] - 1];
    while (p + h < n && q + h < n && s[p + h] == s[q + h]) ++h;
    out.lcp_[rank[p]] = static_cast<u32>(h);
    if (h > 0) --h;
  }
  return out;
}

std::vector<CandidatePair> find_candidate_pairs_suffix_array(
    const seq::SequenceSet& sequences, const MaximalMatchConfig& config) {
  GPCLUST_CHECK(config.min_match_length >= 2,
                "min_match_length must be at least 2");

  // Concatenate with '\x01' separators; record each position's sequence id
  // and distance to the next separator so matches never span sequences.
  std::string text;
  std::size_t total = 0;
  for (const auto& seq : sequences) total += seq.residues.size() + 1;
  text.reserve(total);
  std::vector<u32> seq_of;
  std::vector<u32> local_of;  // offset within the owning sequence
  seq_of.reserve(total);
  local_of.reserve(total);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    text += sequences[i].residues;
    text.push_back('\x01');
    for (std::size_t j = 0; j <= sequences[i].residues.size(); ++j) {
      seq_of.push_back(static_cast<u32>(i));
      local_of.push_back(static_cast<u32>(j));
    }
  }
  const std::size_t n = text.size();
  std::vector<u32> dist_to_sep(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    dist_to_sep[i] =
        text[i] == '\x01' ? 0 : dist_to_sep[i + 1] + 1;  // i+1 < n: last is sep
  }

  const auto sa = SuffixArray::build(std::move(text));

  // Effective adjacent-suffix LCP, clamped at the separator.
  auto effective_lcp = [&](std::size_t r) -> u32 {
    const u32 raw = sa.lcp()[r];
    return std::min({raw, dist_to_sep[sa.sa()[r - 1]], dist_to_sep[sa.sa()[r]]});
  };

  // Sweep maximal runs of adjacent suffixes with effective LCP >= tau and
  // emit pairs of the distinct sequences present in each run.
  const u32 tau = static_cast<u32>(config.min_match_length);
  struct BestMatch {
    u32 length;
    i32 diag;  ///< local_pos_in_a - local_pos_in_b of the longest match
  };
  std::unordered_map<u64, BestMatch> best;  // packed pair -> longest match
  std::map<u32, u32> run_seqs;  // seq id -> first local position in the run
  u32 run_min_lcp = 0;

  auto flush_run = [&](std::size_t first_rank, std::size_t last_rank) {
    if (run_seqs.size() < 2 || run_seqs.size() > config.max_run_sequences) {
      return;
    }
    (void)first_rank;
    (void)last_rank;
    for (auto it_a = run_seqs.begin(); it_a != run_seqs.end(); ++it_a) {
      for (auto it_b = std::next(it_a); it_b != run_seqs.end(); ++it_b) {
        const u64 key = (static_cast<u64>(it_a->first) << 32) | it_b->first;
        const i32 diag = static_cast<i32>(it_a->second) -
                         static_cast<i32>(it_b->second);
        auto [entry, inserted] =
            best.try_emplace(key, BestMatch{run_min_lcp, diag});
        if (!inserted && run_min_lcp > entry->second.length) {
          entry->second = {run_min_lcp, diag};
        }
      }
    }
  };

  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t r = 1; r < sa.sa().size(); ++r) {
    const u32 e = effective_lcp(r);
    if (e >= tau) {
      if (!in_run) {
        in_run = true;
        run_start = r - 1;
        run_seqs.clear();
        run_seqs.emplace(seq_of[sa.sa()[r - 1]], local_of[sa.sa()[r - 1]]);
        run_min_lcp = e;
      }
      run_seqs.emplace(seq_of[sa.sa()[r]], local_of[sa.sa()[r]]);
      run_min_lcp = std::min(run_min_lcp, e);
    } else if (in_run) {
      flush_run(run_start, r - 1);
      in_run = false;
    }
  }
  if (in_run) flush_run(run_start, sa.sa().size() - 1);

  std::vector<CandidatePair> pairs;
  pairs.reserve(best.size());
  for (const auto& [key, match] : best) {
    pairs.push_back({static_cast<u32>(key >> 32),
                     static_cast<u32>(key & 0xffffffffu), match.length,
                     match.diag});
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& p, const auto& q) {
    return std::pair(p.a, p.b) < std::pair(q.a, q.b);
  });
  return pairs;
}

}  // namespace gpclust::align
