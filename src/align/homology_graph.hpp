#pragma once
// Homology-graph construction — the pGraph stage [25] of the pipeline:
// promising pairs from the k-mer seed filter are verified with
// Smith-Waterman, and a pair becomes an edge of the similarity graph when
// its normalized alignment score clears a threshold.

#include "align/kmer_index.hpp"
#include "align/simd.hpp"
#include "align/smith_waterman.hpp"
#include "align/suffix_array.hpp"
#include "graph/csr_graph.hpp"
#include "obs/trace.hpp"
#include "seq/sequence.hpp"
#include "util/thread_pool.hpp"

namespace gpclust::align {

/// How promising pairs are generated before Smith-Waterman verification.
enum class SeedMode {
  KmerCount,     ///< shared distinct k-mers (simple, default)
  MaximalMatch,  ///< suffix-array maximal exact matches (pGraph's heuristic)
};

/// Heuristic prefilter tier — can reject pairs the full DP would accept
/// (shared-seed counts and ungapped diagonal scores are NOT admissible
/// bounds on the gapped score; see DESIGN.md §9), so it defaults OFF and
/// the default-config edge set stays bit-identical. The exact tier
/// (length-based admissible bounds) is always on and needs no config.
struct HomologyPrefilterConfig {
  bool enabled = false;
  /// Drop pairs whose seed stage reported fewer shared seeds than this
  /// (shared k-mers in KmerCount mode, match length in MaximalMatch mode).
  u32 min_shared_seeds = 0;
  /// X-drop for the ungapped scan along the pair's seed diagonal.
  int xdrop = 20;
  /// Drop pairs whose ungapped diagonal score falls below this.
  int min_ungapped_score = 25;
};

struct HomologyGraphConfig {
  SeedMode seed_mode = SeedMode::KmerCount;
  KmerIndexConfig seeds;                ///< used when seed_mode == KmerCount
  MaximalMatchConfig maximal_matches;   ///< used when seed_mode == MaximalMatch
  AlignmentParams alignment;
  HomologyPrefilterConfig prefilter;    ///< heuristic tier, default off

  /// Score pairs with the striped SIMD kernel (score-exact vs the scalar
  /// DP, so the edge set is identical either way); false forces the scalar
  /// reference path.
  bool use_simd = true;

  /// Optional phase spans + counters ("homology.seed" / "homology.verify" /
  /// "homology.graph"); nullptr records nothing.
  obs::Tracer* tracer = nullptr;

  /// Edge criterion: score >= min_score_per_residue * min(|a|, |b|).
  /// BLOSUM62 self-alignment averages ~5 per residue; 1.2 admits roughly
  /// >= 35-40% identity over the shorter sequence.
  double min_score_per_residue = 1.2;

  /// Also require an absolute score floor (suppresses tiny-fragment hits).
  int min_score = 40;

  /// When > 0, additionally require this residue identity over the aligned
  /// region (uses the traced alignment; slower but stricter — the usual
  /// ">= 30-40% identity" homology convention).
  double min_identity = 0.0;

  std::size_t num_threads = 0;  ///< 0: default pool
};

struct HomologyGraphStats {
  std::size_t num_candidate_pairs = 0;
  std::size_t num_edges = 0;
  /// DP runs actually performed: num_score_alignments +
  /// num_traced_alignments (a pair that passes the score gate and then
  /// runs the identity traceback counts twice — it ran two DPs).
  std::size_t num_alignments = 0;
  std::size_t num_score_alignments = 0;   ///< score-only passes (SIMD or scalar)
  std::size_t num_traced_alignments = 0;  ///< traceback passes (min_identity)
  std::size_t num_exact_rejects = 0;      ///< skipped by the admissible bounds
  std::size_t num_heuristic_rejects = 0;  ///< skipped by the opt-in tier
  SimdCounters simd;                      ///< how SIMD score passes resolved
};

/// Builds the undirected similarity graph over `sequences` (vertex i is
/// sequences[i]). Alignment verification fans out over a thread pool.
graph::CsrGraph build_homology_graph(const seq::SequenceSet& sequences,
                                     const HomologyGraphConfig& config = {},
                                     HomologyGraphStats* stats = nullptr);

}  // namespace gpclust::align
