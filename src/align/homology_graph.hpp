#pragma once
// Homology-graph construction — the pGraph stage [25] of the pipeline:
// promising pairs from the k-mer seed filter are verified with
// Smith-Waterman, and a pair becomes an edge of the similarity graph when
// its normalized alignment score clears a threshold.

#include "align/kmer_index.hpp"
#include "align/smith_waterman.hpp"
#include "align/suffix_array.hpp"
#include "graph/csr_graph.hpp"
#include "seq/sequence.hpp"
#include "util/thread_pool.hpp"

namespace gpclust::align {

/// How promising pairs are generated before Smith-Waterman verification.
enum class SeedMode {
  KmerCount,     ///< shared distinct k-mers (simple, default)
  MaximalMatch,  ///< suffix-array maximal exact matches (pGraph's heuristic)
};

struct HomologyGraphConfig {
  SeedMode seed_mode = SeedMode::KmerCount;
  KmerIndexConfig seeds;                ///< used when seed_mode == KmerCount
  MaximalMatchConfig maximal_matches;   ///< used when seed_mode == MaximalMatch
  AlignmentParams alignment;

  /// Edge criterion: score >= min_score_per_residue * min(|a|, |b|).
  /// BLOSUM62 self-alignment averages ~5 per residue; 1.2 admits roughly
  /// >= 35-40% identity over the shorter sequence.
  double min_score_per_residue = 1.2;

  /// Also require an absolute score floor (suppresses tiny-fragment hits).
  int min_score = 40;

  /// When > 0, additionally require this residue identity over the aligned
  /// region (uses the traced alignment; slower but stricter — the usual
  /// ">= 30-40% identity" homology convention).
  double min_identity = 0.0;

  std::size_t num_threads = 0;  ///< 0: default pool
};

struct HomologyGraphStats {
  std::size_t num_candidate_pairs = 0;
  std::size_t num_edges = 0;
  std::size_t num_alignments = 0;
};

/// Builds the undirected similarity graph over `sequences` (vertex i is
/// sequences[i]). Alignment verification fans out over a thread pool.
graph::CsrGraph build_homology_graph(const seq::SequenceSet& sequences,
                                     const HomologyGraphConfig& config = {},
                                     HomologyGraphStats* stats = nullptr);

}  // namespace gpclust::align
