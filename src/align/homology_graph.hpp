#pragma once
// Homology-graph construction — the pGraph stage [25] of the pipeline,
// structured as an explicit three-stage cascade (DESIGN.md §11):
//
//   1. candidate stream — the sort-based k-mer index, suffix-array
//      maximal matches, the banded MinHash/LSH sketch stage (§14), or the
//      SpGEMM ablation emits promising pairs;
//   2. exact admissible prefilter — length-bound rejection that provably
//      cannot change the edge set, plus the opt-in heuristic tier;
//   3. batched score-only verification — the survivors are scored on one
//      of three interchangeable backends (host scalar, host SIMD,
//      device-batched; see align/verify_pipeline.hpp), and a pair becomes
//      an edge when its normalized score clears the thresholds.

#include "align/kmer_index.hpp"
#include "align/lsh_seeds.hpp"
#include "align/simd.hpp"
#include "align/smith_waterman.hpp"
#include "align/suffix_array.hpp"
#include "align/verify_pipeline.hpp"
#include "graph/csr_graph.hpp"
#include "obs/trace.hpp"
#include "seq/sequence.hpp"
#include "util/thread_pool.hpp"

namespace gpclust::align {

/// How promising pairs are generated before Smith-Waterman verification.
/// Only the candidate set depends on the mode — stages 2 and 3 are
/// identical, so KmerCount/SpGemm (same exact pair set) yield bit-identical
/// edge sets, and MinHashLsh trades recall for candidate volume.
enum class SeedMode {
  KmerCount,     ///< shared distinct k-mers (simple, default)
  MaximalMatch,  ///< suffix-array maximal exact matches (pGraph's heuristic)
  MinHashLsh,    ///< banded min-hash signatures + LSH buckets (DESIGN.md §14)
  SpGemm,        ///< sparse A * A^T ablation of the exact path (§14)
};

/// Parses "kmer" | "maximal" | "minhash" | "spgemm"; throws
/// InvalidArgument otherwise.
SeedMode parse_seed_mode(const std::string& name);
std::string_view seed_mode_name(SeedMode mode);

/// Heuristic prefilter tier — can reject pairs the full DP would accept
/// (shared-seed counts and ungapped diagonal scores are NOT admissible
/// bounds on the gapped score; see DESIGN.md §9), so it defaults OFF and
/// the default-config edge set stays bit-identical. The exact tier
/// (length-based admissible bounds) is always on and needs no config.
struct HomologyPrefilterConfig {
  bool enabled = false;
  /// Drop pairs whose seed stage reported fewer shared seeds than this
  /// (shared k-mers in KmerCount mode, match length in MaximalMatch mode).
  u32 min_shared_seeds = 0;
  /// X-drop for the ungapped scan along the pair's seed diagonal.
  int xdrop = 20;
  /// Drop pairs whose ungapped diagonal score falls below this.
  int min_ungapped_score = 25;
};

struct HomologyGraphConfig {
  SeedMode seed_mode = SeedMode::KmerCount;
  KmerIndexConfig seeds;   ///< used when seed_mode == KmerCount or SpGemm
  MaximalMatchConfig maximal_matches;   ///< used when seed_mode == MaximalMatch
  LshSeedConfig lsh;                    ///< used when seed_mode == MinHashLsh
  AlignmentParams alignment;
  HomologyPrefilterConfig prefilter;    ///< heuristic tier, default off

  /// Verification backend for stage 3. All three are score-exact against
  /// the scalar reference DP, so the edge set is identical for any choice.
  VerifyBackend verify_backend = VerifyBackend::HostSimd;

  /// DeviceBatched knobs (context, batch cap, streams, resilience); the
  /// context is required when verify_backend == DeviceBatched.
  DeviceVerifyOptions device_verify;

  /// Optional phase spans + counters ("homology.seed" / "homology.verify" /
  /// "homology.graph"); nullptr records nothing.
  obs::Tracer* tracer = nullptr;

  /// Edge criterion: score >= min_score_per_residue * min(|a|, |b|).
  /// BLOSUM62 self-alignment averages ~5 per residue; 1.2 admits roughly
  /// >= 35-40% identity over the shorter sequence.
  double min_score_per_residue = 1.2;

  /// Also require an absolute score floor (suppresses tiny-fragment hits).
  int min_score = 40;

  /// When > 0, additionally require this residue identity over the aligned
  /// region (uses the traced alignment; slower but stricter — the usual
  /// ">= 30-40% identity" homology convention).
  double min_identity = 0.0;

  std::size_t num_threads = 0;  ///< 0: default pool
};

struct HomologyGraphStats {
  std::size_t num_candidate_pairs = 0;
  std::size_t num_edges = 0;
  /// DP runs actually performed: num_score_alignments +
  /// num_traced_alignments (a pair that passes the score gate and then
  /// runs the identity traceback counts twice — it ran two DPs).
  std::size_t num_alignments = 0;
  std::size_t num_score_alignments = 0;   ///< score-only passes (SIMD or scalar)
  std::size_t num_traced_alignments = 0;  ///< traceback passes (min_identity)
  std::size_t num_exact_rejects = 0;      ///< skipped by the admissible bounds
  std::size_t num_heuristic_rejects = 0;  ///< skipped by the opt-in tier
  /// Pairs that cleared both prefilter tiers and were actually scored.
  /// num_score_alignments always equals this, on every backend — a pair is
  /// scored exactly once no matter how batches are retried or replanned.
  std::size_t num_surviving_pairs = 0;
  /// Host-measured wall seconds of stage 2 (the CPU prefilter that feeds
  /// the verify backend).
  double prefilter_host_s = 0.0;
  /// Stage-1 live-buffer high-water mark in bytes (size-based,
  /// deterministic; also raised on the tracer as
  /// "homology_seed_peak_candidate_bytes"). 0 in MaximalMatch mode, which
  /// does not report one.
  std::size_t seed_peak_candidate_bytes = 0;
  SimdCounters simd;                      ///< how SIMD score passes resolved
  VerifyDeviceStats device;  ///< DeviceBatched bookkeeping (else zeros)
};

/// Stages 2 + 3 of the cascade as a standalone pass over an explicit pair
/// list: the exact admissible prefilter (plus the opt-in heuristic tier),
/// batched score-only verification on the configured backend, and the edge
/// gate. Returns one accept flag per input pair. build_homology_graph and
/// the streaming-ingest subsystem (src/ingest) share this path, so an
/// incremental run's verdict on a pair is bit-identical to a from-scratch
/// run's — the verdict is a pure function of the two sequences and the
/// config, never of the surrounding pair set.
std::vector<u8> verify_candidate_pairs(const seq::SequenceSet& sequences,
                                       std::span<const CandidatePair> pairs,
                                       const HomologyGraphConfig& config,
                                       HomologyGraphStats* stats = nullptr);

/// Builds the undirected similarity graph over `sequences` (vertex i is
/// sequences[i]). Alignment verification fans out over a thread pool.
graph::CsrGraph build_homology_graph(const seq::SequenceSet& sequences,
                                     const HomologyGraphConfig& config = {},
                                     HomologyGraphStats* stats = nullptr);

}  // namespace gpclust::align
