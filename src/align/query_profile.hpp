#pragma once
// Striped query profiles for the SIMD Smith-Waterman fast path (Farrar,
// Bioinformatics 2007). The profile pre-resolves the BLOSUM62 row lookups
// of one query sequence into the striped lane layout the kernel consumes,
// so the inner loop is a single vector load per stripe instead of a
// scatter of matrix lookups. One profile serves every candidate pair that
// shares the query, which is why the homology-graph verifier sorts its
// pairs by query id and runs them through a single-slot cache.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/common.hpp"

namespace gpclust::align {

class QueryProfile {
 public:
  /// 8-bit lanes per 128-bit vector, and 16-bit lanes for the rescue pass.
  static constexpr std::size_t kLanes8 = 16;
  static constexpr std::size_t kLanes16 = 8;
  /// Added to every 8/16-bit profile entry so stored scores are
  /// non-negative: -blosum62_min_score() (checked at construction).
  static constexpr int kBias = 4;

  explicit QueryProfile(std::string_view query);

  std::size_t length() const { return encoded_.size(); }
  const std::string& query() const { return query_; }
  const std::vector<u8>& encoded() const { return encoded_; }

  /// Stripe counts: ceil(length / lanes), at least 1.
  std::size_t segments8() const { return seg8_; }
  std::size_t segments16() const { return seg16_; }

  /// Profile row for one target residue index: segments8() * kLanes8
  /// biased scores, entry [stripe * kLanes8 + lane] scoring query position
  /// lane * segments8() + stripe (0 past the query end).
  const u8* row8(u8 residue) const { return prof8_.data() + residue * seg8_ * kLanes8; }
  const u16* row16(u8 residue) const { return prof16_.data() + residue * seg16_ * kLanes16; }

 private:
  std::string query_;
  std::vector<u8> encoded_;
  std::size_t seg8_ = 1;
  std::size_t seg16_ = 1;
  std::vector<u8> prof8_;
  std::vector<u16> prof16_;
};

/// Single-slot profile cache. Candidate pairs arrive sorted by query id,
/// so consecutive verifications overwhelmingly share one query; a deeper
/// cache would only add bookkeeping. Not thread-safe by design — each
/// verification worker owns one.
class QueryProfileCache {
 public:
  const QueryProfile& get(u32 query_id, std::string_view query) {
    if (!slot_.has_value() || id_ != query_id) {
      slot_.emplace(query);
      id_ = query_id;
      ++builds_;
    }
    return *slot_;
  }

  /// Number of profile constructions (cache misses) so far.
  u64 builds() const { return builds_; }

 private:
  u32 id_ = 0;
  u64 builds_ = 0;
  std::optional<QueryProfile> slot_;
};

}  // namespace gpclust::align
